//go:build race

package repro_test

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool intentionally drops a fraction of Puts, so benchmarks asserting
// exact pool-miss counts must not.
const raceEnabled = true
