package masked

// Calibration must never change answers — only which plan runs. These tests
// pin that contract from the public session API: a calibrated session is
// bit-identical to an uncalibrated one across every variant, named semiring
// and mask representation, and the planner's auto path stays bit-identical
// even under adversarially skewed cost models that flip its choices.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/planner"
)

// calibrationOperands builds a skewed product (R-MAT with its own pattern as
// mask — dense mask rows) plus a sparse-frontier mask, the two shapes whose
// plan choice is most sensitive to the cost coefficients.
func calibrationOperands() (g *Matrix, masks map[string]*Pattern) {
	g = RMAT(8, 8, 5)
	masks = map[string]*Pattern{
		"support":  g.Pattern(),
		"frontier": grgen.Random01Mask(g.NRows, g.NCols, 2, 7),
	}
	return g, masks
}

// TestCalibratedSessionsBitIdentical runs all 12 variants × the named
// semirings × every mask representation through an uncalibrated and a
// calibrated session and requires bit-identical outputs. The calibrated
// session probes (or loads) the host model; the env override keeps the
// per-host cache inside the test's temp dir.
func TestCalibratedSessionsBitIdentical(t *testing.T) {
	t.Setenv(planner.CalibrationDirEnv, t.TempDir())
	ctx := context.Background()
	g, masks := calibrationOperands()

	semirings := map[string]Semiring{
		"arithmetic": Arithmetic(),
		"plus-pair":  PlusPair(),
		"min-plus":   MinPlus(),
	}
	reps := map[string]MaskRep{"auto": RepAuto, "csr": RepCSR, "bitmap": RepBitmap, "dense": RepDense}

	sessOff := NewSession(WithCalibration(CalibrationOff))
	sessCal := NewSession(WithCalibration(CalibrationAuto))
	if sessOff.Stats().Calibration.Mode != "off" || sessCal.Stats().Calibration.Mode != "auto" {
		t.Fatalf("calibration modes not reported: off=%q cal=%q",
			sessOff.Stats().Calibration.Mode, sessCal.Stats().Calibration.Mode)
	}

	for maskName, m := range masks {
		for srName, sr := range semirings {
			for repName, rep := range reps {
				base := []Op{WithAccumulate(sr), WithMaskRep(rep)}
				// The planner's auto path plus every pinned variant.
				schemes := map[string][]Op{"auto": base}
				for _, v := range Variants() {
					schemes[v.Name()] = append([]Op{WithVariant(v)}, base...)
				}
				var want *matrix.CSR[float64]
				for scheme, ops := range schemes {
					name := fmt.Sprintf("%s/%s/%s/%s", maskName, srName, repName, scheme)
					cOff, err := sessOff.Multiply(ctx, m, g, g, ops...)
					if err != nil {
						t.Fatalf("%s: uncalibrated: %v", name, err)
					}
					cCal, err := sessCal.Multiply(ctx, m, g, g, ops...)
					if err != nil {
						t.Fatalf("%s: calibrated: %v", name, err)
					}
					if !matrix.Equal(cOff, cCal, func(a, b float64) bool { return a == b }) {
						t.Fatalf("%s: calibrated result differs from uncalibrated", name)
					}
					if want == nil {
						want = cOff
					} else if !matrix.Equal(cOff, want, func(a, b float64) bool { return a == b }) {
						t.Fatalf("%s: scheme differs from the mask/semiring/rep reference", name)
					}
				}
			}
		}
	}
}

// TestSkewedModelsBitIdentical drives the auto path under adversarially
// skewed cost models — each one designed to flip the planner toward a
// different family or phase — and requires every choice to produce the
// bit-identical product. This covers model-induced plan changes that a
// well-fitted host calibration may never exercise.
func TestSkewedModelsBitIdentical(t *testing.T) {
	ctx := context.Background()
	g, masks := calibrationOperands()

	def := planner.DefaultModel()
	skew := func(mut func(*planner.Model)) *planner.Model {
		m := *def
		mut(&m)
		return &m
	}
	models := map[string]*planner.Model{
		"default":      nil,
		"hash-cheap":   skew(func(m *planner.Model) { m.HashUnit = 0.01 }),
		"hash-dear":    skew(func(m *planner.Model) { m.HashUnit = 100 }),
		"heap-cheap":   skew(func(m *planner.Model) { m.HeapUnit = 0.01 }),
		"inner-cheap":  skew(func(m *planner.Model) { m.InnerUnit = 0.001; m.PullMargin = 1 }),
		"mask-dear":    skew(func(m *planner.Model) { m.MaskUnit = 50 }),
		"bitmap-cheap": skew(func(m *planner.Model) { m.BitmapProbeRatio = 0.001 }),
		"dense-dear":   skew(func(m *planner.Model) { m.DenseUnit = 100 }),
	}

	for maskName, m := range masks {
		var want *matrix.CSR[float64]
		plans := map[string]bool{}
		for modelName, mdl := range models {
			s := NewSession()
			s.cache.SetModel(mdl)
			c, err := s.Multiply(ctx, m, g, g)
			if err != nil {
				t.Fatalf("%s/%s: %v", maskName, modelName, err)
			}
			if want == nil {
				want = c
			} else if !matrix.Equal(c, want, func(a, b float64) bool { return a == b }) {
				t.Fatalf("%s/%s: skewed model changed the result", maskName, modelName)
			}
			plans[s.Explain(m, g, g).Explain()] = true
		}
		// The skews are only a meaningful test if at least one of them
		// actually flipped the plan.
		if len(plans) < 2 {
			t.Errorf("%s: all skewed models chose the same plan — skews too weak", maskName)
		}
	}
}
