package masked

// The serving layer: batch and streaming entry points that admit several
// masked multiplies on one Session concurrently. Three mechanisms keep K
// in-flight requests from destroying each other's efficiency:
//
//   - admission: at most WithInflight (default: one per budgeted worker)
//     requests run at once, arbitrated session-wide so overlapping
//     MultiplyBatch and Serve calls share one thread budget;
//   - arbitration: each admitted request gets a worker share proportional
//     to its planner cost estimate (small queries one goroutine, big
//     products the spare budget), and budget released by finishing
//     requests flows to running stragglers between their parallel stages
//     (parallel.Arbiter via core.Options.ThreadsFn);
//   - coalescing: identical concurrent requests — same operand identities,
//     mask mode and semiring — are computed once and share the one result
//     (single-flight). Sound because every execution path in this
//     repository is bit-identical: variant, phase, mask representation,
//     schedule and worker count never change the output, so two requests
//     that agree on operands, mask mode and semiring have exactly one
//     answer. Results are immutable; treat a shared *Matrix as read-only,
//     as everywhere else in the API.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/parallel"
)

// BatchReq is one masked multiply of a batch or serving stream:
// C = M .* (A·B) (or the complement form) under the session defaults
// overridden by Opts.
type BatchReq struct {
	// M is the mask; A and B the operands. All three must be non-nil.
	M *Pattern
	// A and B are the product operands.
	A, B *Matrix
	// Opts are per-request descriptor overrides (WithComplement,
	// WithAccumulate, WithVariant, ...), applied after the call-level and
	// session-level options.
	Opts []Op
	// Tag is an opaque correlation value echoed on the response — the way
	// to match streaming responses to requests, since Serve does not
	// preserve order.
	Tag any
}

// BatchRes is the outcome of one BatchReq.
type BatchRes struct {
	// C is the product, nil on error.
	C *Matrix
	// Plan is the executed plan (nil when the variant was pinned or the
	// request failed before planning).
	Plan *Plan
	// Err is the request error: an operand/validation error, a context
	// cancellation, or a kernel error. Coalesced requests share the
	// leader's outcome, error included.
	Err error
	// Tag echoes the request's Tag.
	Tag any
	// Workers is the arbitrated worker share the computation started with
	// (it may have grown mid-request as other requests finished). 0 for
	// requests that failed before admission.
	Workers int
	// Coalesced reports that this response shares the computation of an
	// identical concurrent request instead of having run its own.
	Coalesced bool
}

// flightKey identifies a coalescable computation. Operands count by
// identity (pointer), not content: serving traffic re-submits the same
// cached operand objects. Everything that can change the outcome — mask
// mode, semiring, and a pinned variant's support errors — is part of the
// key; pure performance knobs (threads, grain, representation, schedule)
// are not, because results are bit-identical across them.
//
// The semiring contributes its Name, its Zero, and its operator identity.
// Named semirings carry a comparable zero-size operator type (Semiring.Ops)
// and key on it directly: two independently constructed Arithmetic()
// values coalesce because both hold semiring.PlusTimesF64{}, with no
// reliance on func-pointer identity. Custom semirings (nil or
// non-comparable Ops) fall back to the code identity of their Add/Mul
// functions, so two different custom semirings never coalesce just because
// both left Name empty. The one residual caveat on that fallback path: two
// semirings built from the *same closure code* capturing different values,
// with equal Name and Zero, are indistinguishable — give custom semirings
// distinct Names (the field exists exactly to identify them).
type flightKey struct {
	m          *Pattern
	a, b       *Matrix
	complement bool
	pinned     bool
	variant    Variant
	sr         string
	srZero     float64
	srOps      any // comparable operator type; srAdd/srMul stay zero
	srAdd      uintptr
	srMul      uintptr
}

// flightCall is one in-flight computation awaited by its coalesced
// followers.
type flightCall struct {
	done    chan struct{}
	c       *Matrix
	plan    *Plan
	err     error
	workers int
}

// reqKey derives the coalescing key of a resolved request.
func reqKey(d opSpec, m *Pattern, a, b *Matrix) flightKey {
	sr := d.semiring()
	k := flightKey{
		m: m, a: a, b: b, complement: d.complement,
		sr: sr.Name, srZero: sr.Zero,
	}
	if sr.Ops != nil && reflect.TypeOf(sr.Ops).Comparable() {
		k.srOps = sr.Ops
	} else {
		k.srAdd = reflect.ValueOf(sr.Add).Pointer()
		k.srMul = reflect.ValueOf(sr.Mul).Pointer()
	}
	if d.pinned {
		k.pinned, k.variant = true, d.variant
	}
	return k
}

// reqCost estimates a request's cost for worker-share arbitration: the
// cached plan's scheduling cost total (flops + mask entries, the unit
// parallel.CostPerWorker is calibrated in) when the plan cache already
// holds a plan for the operands — the steady serving state — and a cheap
// structural proxy (total operand entries) on a cold cache or a pinned
// variant. Cost only shapes worker shares, never results.
func (s *Session) reqCost(d opSpec, o Options, m *Pattern, a, b *Matrix) int64 {
	if !d.pinned {
		if p, ok := s.cache.Peek(m, a.Pattern(), b.Pattern(), o); ok {
			if p.Costs != nil {
				return p.Costs.Total()
			}
			return p.Stats.Flops + p.Stats.NNZM
		}
	}
	return int64(m.NNZ() + a.NNZ() + b.NNZ())
}

// doOne runs one admitted, arbitrated, coalesced multiply. It returns the
// response sans Tag. ctx cancellation while waiting for admission or for a
// coalesced leader returns ctx.Err(); cancellation mid-multiply is honored
// by the drivers as everywhere else.
//
// queue selects the admission discipline: true waits FIFO for a slot
// (MultiplyBatch, Serve), false refuses with ErrSaturated when the
// admission cap is full (TryMultiply, the network front end). Either way a
// request that coalesces onto an identical in-flight leader consumes no
// admission slot — a saturated server still answers duplicates of what it
// is already computing.
func (s *Session) doOne(ctx context.Context, d opSpec, m *Pattern, a, b *Matrix, queue bool) BatchRes {
	if m == nil || a == nil || b == nil {
		return BatchRes{Err: fmt.Errorf("masked: batch request with nil operand (M=%v A=%v B=%v non-nil wanted)", m != nil, a != nil, b != nil)}
	}
	key := reqKey(d, m, a, b)
	for {
		s.flightMu.Lock()
		if fc, ok := s.flight[key]; ok {
			s.flightMu.Unlock()
			select {
			case <-fc.done:
			case <-ctx.Done():
				return BatchRes{Err: ctx.Err()}
			}
			if fc.err != nil && (errors.Is(fc.err, context.Canceled) || errors.Is(fc.err, context.DeadlineExceeded) || errors.Is(fc.err, ErrSaturated)) {
				// The leader was cancelled by its *own* context or refused by
				// its *own* admission mode — transient, caller-specific
				// outcomes that must not be shared with a follower whose
				// context is healthy (or which is willing to wait). The
				// finished flight has already left the map, so retry: become
				// the new leader (or join one).
				continue
			}
			return BatchRes{C: fc.c, Plan: fc.plan, Err: fc.err, Workers: fc.workers, Coalesced: true}
		}
		fc := &flightCall{done: make(chan struct{})}
		s.flight[key] = fc
		s.flightMu.Unlock()
		return s.lead(ctx, d, m, a, b, key, fc, queue)
	}
}

// lead computes one flight as its leader and publishes the outcome to any
// coalesced followers.
func (s *Session) lead(ctx context.Context, d opSpec, m *Pattern, a, b *Matrix, key flightKey, fc *flightCall, queue bool) (res BatchRes) {
	defer func() {
		// Unlink before waking followers: a follower that rejects this
		// outcome (context error) must find the map slot free to retry.
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(fc.done)
	}()
	defer func() {
		// The request-boundary panic barrier. Deferred after the unlink
		// above, so it runs first (LIFO): fc.err is already the PanicError
		// when close(fc.done) wakes coalesced followers, and they share the
		// leader's panic outcome like any other error. The grant-release
		// defer below it has already run by this point, so a panicked
		// request leaks no arbiter budget. PanicError is not in doOne's
		// transient set — followers must not retry a deterministic panic.
		if v := recover(); v != nil {
			pe := newPanicError(v)
			s.panics.Add(1)
			fc.err = pe
			res = BatchRes{Err: pe, Workers: fc.workers}
		}
	}()

	// Chaos point: stall before admission, exercising saturation and drain
	// timing under slow admission. Inert unless a fault registry arms it.
	faultinject.Sleep(faultinject.PointArbiterStall)

	o := s.options(ctx, d)
	var grant *parallel.Grant
	var err error
	if queue {
		grant, err = s.arb.Acquire(ctx, s.reqCost(d, o, m, a, b))
	} else if g, ok := s.arb.TryAcquire(s.reqCost(d, o, m, a, b)); ok {
		grant = g
	} else {
		err = ErrSaturated
	}
	if err != nil {
		fc.err = err
		return BatchRes{Err: err}
	}
	defer grant.Release()
	// The grant's share can grow mid-request (budget rebalanced from
	// finished requests); the drivers observe growth at each parallel stage
	// through ThreadsFn. An explicit WithThreads on the call or request
	// stays a hard per-request ceiling on top of the arbitrated share, as
	// it is everywhere else in the API.
	workers := func() int {
		w := grant.Workers()
		if d.threads > 0 && w > d.threads {
			return d.threads
		}
		return w
	}
	fc.workers = workers()
	o.Threads = workers()
	o.ThreadsFn = workers

	fc.c, fc.plan, fc.err = s.execute(d, o, m, a, b)
	return BatchRes{C: fc.c, Plan: fc.plan, Err: fc.err, Workers: fc.workers}
}

// ErrSaturated is returned by TryMultiply when the session's admission
// cap (WithInflight) is fully occupied and the request would have to
// queue. Network front ends map it to 429 Too Many Requests with a
// Retry-After hint instead of building an unbounded backlog.
var ErrSaturated = errors.New("masked: serving admission saturated")

// TryMultiply is Multiply under non-queuing admission control: the
// request is admitted, arbitrated and coalesced exactly like a
// MultiplyBatch member, but when every WithInflight slot is occupied its
// response carries ErrSaturated immediately instead of waiting for one —
// the load-shedding entry point of the network serving layer. A request
// identical to one already in flight coalesces onto it and succeeds even
// under saturation (it consumes no admission slot). The response's Tag is
// never set; the serving metadata (Workers, Coalesced) is filled like a
// batch member's.
func (s *Session) TryMultiply(ctx context.Context, m *Pattern, a, b *Matrix, opts ...Op) BatchRes {
	d := s.def.apply(opts)
	return s.doOne(ctx, d, m, a, b, false)
}

// MultiplyBatch computes every request of the batch and returns the
// responses in request order. Up to WithInflight requests (from opts or
// the session default; 0 = one per budgeted worker — per-request Opts
// cannot change the cap, since it governs the whole call) run
// concurrently, each on an arbitrated share of the session thread budget;
// duplicate requests inside the batch — and concurrent with other batch or
// Serve traffic — are computed once and share the result (Coalesced
// reports it). Responses are bit-identical to running the requests
// sequentially one at a time.
//
// ctx cancellation applies to the whole batch: requests not yet admitted
// return ctx.Err(), in-flight ones are cancelled mid-multiply.
func (s *Session) MultiplyBatch(ctx context.Context, reqs []BatchReq, opts ...Op) []BatchRes {
	res := make([]BatchRes, len(reqs))
	call := s.def.apply(opts)
	k := s.inflightCap(call)
	// Batch-level dedup: group the requests by coalescing key so a hot
	// query repeated across the batch is computed exactly once, whether or
	// not its duplicates overlap in time (the in-flight single-flight in
	// doOne additionally coalesces against concurrent batches and streams).
	specs := make([]opSpec, len(reqs))
	groups := make(map[flightKey][]int, len(reqs))
	order := make([]flightKey, 0, len(reqs))
	for i := range reqs {
		specs[i] = call.apply(reqs[i].Opts)
		key := reqKey(specs[i], reqs[i].M, reqs[i].A, reqs[i].B)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	sem := make(chan struct{}, k)
	var wg sync.WaitGroup
	for _, key := range order {
		members := groups[key]
		wg.Add(1)
		go func(members []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			lead := members[0]
			r := s.protect(func() BatchRes {
				return s.doOne(ctx, specs[lead], reqs[lead].M, reqs[lead].A, reqs[lead].B, true)
			})
			r.Tag = reqs[lead].Tag
			res[lead] = r
			for _, i := range members[1:] {
				rr := r
				rr.Tag = reqs[i].Tag
				rr.Coalesced = true
				res[i] = rr
			}
		}(members)
	}
	wg.Wait()
	return res
}

// Serve consumes requests from reqs and emits one response per request on
// the returned channel, in completion order (use Tag to correlate). A pool
// of WithInflight workers (0 = one per budgeted worker) serves the stream,
// each request admitted and arbitrated exactly like MultiplyBatch — the
// streaming form of the same serving layer, for callers whose requests
// arrive over time rather than as a slice.
//
// The response channel closes after the request channel is closed and
// every accepted request has been answered, or after ctx is cancelled.
// Cancellation ends the stream early: requests not yet read from reqs are
// never consumed, and responses to requests already in flight are
// delivered best-effort (a worker finding the channel's buffer full once
// ctx is done stops sending rather than block on a consumer that may be
// gone) — treat a closed channel after cancellation as the end of the
// stream and correlate what did arrive by Tag.
func (s *Session) Serve(ctx context.Context, reqs <-chan BatchReq, opts ...Op) <-chan BatchRes {
	call := s.def.apply(opts)
	k := s.inflightCap(call)
	out := make(chan BatchRes, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case req, ok := <-reqs:
					if !ok {
						return
					}
					d := call.apply(req.Opts)
					r := s.protect(func() BatchRes {
						return s.doOne(ctx, d, req.M, req.A, req.B, true)
					})
					r.Tag = req.Tag
					// Prefer delivering the response even when ctx is already
					// done (an accepted request owes its caller an answer);
					// give up only when the buffer is full at that moment —
					// the consumer may be gone, and blocking would leak the
					// worker. See the best-effort note in the Serve doc.
					select {
					case out <- r:
					default:
						select {
						case out <- r:
						case <-ctx.Done():
							return
						}
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// inflightCap resolves one batch/serve call's concurrency bound: the
// call's WithInflight when set, clamped to the arbiter's session-wide
// admission cap (more local concurrency than the session admits is
// unreachable anyway).
func (s *Session) inflightCap(call opSpec) int {
	if k := call.inflight; k > 0 && k <= s.arb.MaxInflight() {
		return k
	}
	return s.arb.MaxInflight()
}

// Admission is one admitted non-multiply request's slot and worker share,
// handed out by TryAdmit. Release it when the request finishes.
type Admission struct {
	g *parallel.Grant
}

// Workers returns the admission's arbitrated worker share (its value at
// admission time; the serving layer may top it up while running, which
// Multiply-path executors observe but a fixed WithThreads does not).
func (a *Admission) Workers() int { return a.g.Workers() }

// Release returns the admission's slot and workers to the arbiter. Safe
// to call more than once.
func (a *Admission) Release() { a.g.Release() }

// TryAdmit claims one admission slot and a cost-proportional worker share
// from the session's serving arbiter without queuing: it refuses (nil,
// false) when every WithInflight slot is occupied. It is the admission
// primitive for session operations that do not go through the multiply
// serving path — the network front end admits application requests
// (triangle count, BFS) with it and runs them under
// WithThreads(adm.Workers()), so one saturated session answers 429 for
// every endpoint consistently. cost is the request's work estimate in the
// planner's flops unit (<= 0 means unknown).
func (s *Session) TryAdmit(cost int64) (*Admission, bool) {
	g, ok := s.arb.TryAcquire(cost)
	if !ok {
		return nil, false
	}
	return &Admission{g: g}, true
}

// ServingStats reports the session's serving-layer counters: the thread
// arbiter's accounting (budget, in-flight, steals, top-ups) for dashboards
// and the serving bench study. Plan-cache counters live on PlanCacheStats.
func (s *Session) ServingStats() parallel.ArbiterStats { return s.arb.Stats() }
