package masked

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/matrix"
)

// sameBits asserts bit-identical matrices (pattern and Float64bits).
func sameBits(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil matrix (got %v, want %v)", label, got == nil, want == nil)
	}
	eq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	if !matrix.Equal(got, want, eq) {
		t.Fatalf("%s: results differ (got nnz=%d, want nnz=%d)", label, got.NNZ(), want.NNZ())
	}
}

// graphStream builds a deterministic insert/delete stream over an n×n
// graph: symmetric pairs so graph invariants (masks = adjacency) hold.
func graphStream(rng *rand.Rand, n Index, rounds, per int) [][]Update {
	out := make([][]Update, rounds)
	for r := range out {
		batch := make([]Update, 0, 2*per)
		for k := 0; k < per; k++ {
			u := Index(rng.Intn(int(n)))
			v := Index(rng.Intn(int(n)))
			if u == v {
				continue
			}
			del := rng.Intn(3) == 0
			batch = append(batch,
				Update{Row: u, Col: v, Val: 1, Delete: del},
				Update{Row: v, Col: u, Val: 1, Delete: del})
		}
		out[r] = batch
	}
	return out
}

// TestStreamEquivalence is the session-level half of the incremental-vs-
// rebuild battery (internal/core/delta_equiv_test.go covers the full
// pinned-variant × rep × semiring × sched matrix): the planner path and a
// sample of pinned variants, under normal and complemented masks and all
// three named semirings, must produce per-prefix output bit-identical to
// a from-scratch Multiply on the compacted graph — including across a
// mid-stream Compact.
func TestStreamEquivalence(t *testing.T) {
	ctx := context.Background()
	const n = 96
	base := Tril(ErdosRenyi(n, 6, 11))
	rng := rand.New(rand.NewSource(77))
	stream := make([][]Update, 6)
	for r := range stream {
		batch := make([]Update, 4)
		for k := range batch {
			// Strictly-lower-triangular entries keep L shape under updates.
			i := Index(rng.Intn(n-1)) + 1
			j := Index(rng.Intn(int(i)))
			batch[k] = Update{Row: i, Col: j, Val: 1, Delete: rng.Intn(3) == 0}
		}
		stream[r] = batch
	}
	configs := []struct {
		name string
		opts []Op
	}{
		{"auto", nil},
		{"auto-complement", []Op{WithComplement()}},
		{"auto-bitmap-cost", []Op{WithMaskRep(RepBitmap), WithSched(SchedCost)}},
		{"pinned-msa1p", []Op{WithVariant(Variant{Alg: MSA, Phase: OnePhase})}},
		{"pinned-heap2p-dense", []Op{WithVariant(Variant{Alg: Heap, Phase: TwoPhase}), WithMaskRep(RepDense)}},
	}
	semirings := []struct {
		name string
		op   Op
	}{
		{"arithmetic", WithAccumulate(Arithmetic())},
		{"plus-pair", WithAccumulate(PlusPair())},
		{"min-plus", WithAccumulate(MinPlus())},
	}
	for _, cfg := range configs {
		for _, sr := range semirings {
			t.Run(cfg.name+"/"+sr.name, func(t *testing.T) {
				s := NewSession(WithThreads(2))
				g, err := NewDeltaMatrix(base.Clone())
				if err != nil {
					t.Fatal(err)
				}
				opts := append([]Op{sr.op}, cfg.opts...)
				p := s.NewDeltaProduct(g, g, g, opts...)
				check := func(round int) {
					t.Helper()
					got, err := s.MultiplyDelta(ctx, p)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					cur := g.Current()
					want, err := s.Multiply(ctx, cur.Pattern(), cur, cur, opts...)
					if err != nil {
						t.Fatalf("round %d rebuild: %v", round, err)
					}
					sameBits(t, cfg.name+"/"+sr.name, got, want)
				}
				check(-1)
				for r, batch := range stream {
					if _, err := s.Update(ctx, p, batch); err != nil {
						t.Fatalf("round %d update: %v", r, err)
					}
					if r == len(stream)/2 {
						p.Compact()
					}
					check(r)
				}
			})
		}
	}
}

// TestStreamUpdateReturnsRefreshedOutput: Update's return value is the
// refreshed full output (same matrix Output() then reports), and clean
// refreshes are no-ops returning the cached output.
func TestStreamUpdateReturnsRefreshedOutput(t *testing.T) {
	ctx := context.Background()
	_, l := tcOperands(7, 4, 5)
	s := NewSession(WithThreads(2))
	g, err := NewDeltaMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewDeltaProduct(g, g, g, WithAccumulate(PlusPair()))
	c1, err := s.Update(ctx, p, []Update{{Row: 1, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Output() != c1 {
		t.Fatal("Output() disagrees with Update's return")
	}
	c2, err := s.MultiplyDelta(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("clean MultiplyDelta rebuilt the output")
	}
}

// TestStreamForeignSessionRejected: refreshing a product through a session
// that did not create it must error rather than split cache ownership.
func TestStreamForeignSessionRejected(t *testing.T) {
	ctx := context.Background()
	_, l := tcOperands(6, 4, 3)
	s1, s2 := NewSession(), NewSession()
	g, _ := NewDeltaMatrix(l)
	p := s1.NewDeltaProduct(g, g, g)
	if _, err := s2.MultiplyDelta(ctx, p); err == nil {
		t.Fatal("foreign session accepted the product")
	}
}

// armDeltaApplyPanic arms the delta.apply chaos point for n firings.
func armDeltaApplyPanic(t *testing.T, n int) {
	t.Helper()
	r := faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointDeltaApply, Every: 1, Limit: n})
	faultinject.Set(r)
	t.Cleanup(func() { faultinject.Set(nil) })
}

// TestStreamPanicRecoveryMidUpdate: an injected panic between batch apply
// and incremental recompute resolves to a *PanicError, retains the batch
// in the dirty frontier, and a retried MultiplyDelta completes the update
// bit-identically to a rebuild — with no arbiter-budget leak and the
// session's panic counter advanced.
func TestStreamPanicRecoveryMidUpdate(t *testing.T) {
	ctx := context.Background()
	_, l := tcOperands(7, 4, 31)
	s := NewSession(WithThreads(2))
	g, err := NewDeltaMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewDeltaProduct(g, g, g, WithAccumulate(PlusPair()))
	if _, err := s.MultiplyDelta(ctx, p); err != nil {
		t.Fatal(err)
	}

	armDeltaApplyPanic(t, 1)
	_, err = s.Update(ctx, p, []Update{{Row: 2, Col: 1, Val: 1}, {Row: 3, Col: 0, Val: 1}})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("faulted update: err %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("panic error carries no stack: %#v", err)
	}
	if got := s.Panics(); got != 1 {
		t.Fatalf("session counted %d panics, want 1", got)
	}
	if st := s.ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("panicked update leaked arbiter budget: %+v", st)
	}

	// The batch landed before the panic; the retry must fold it in.
	got, err := s.MultiplyDelta(ctx, p)
	if err != nil {
		t.Fatalf("retry after recovered panic: %v", err)
	}
	cur := g.Current()
	want, err := s.Multiply(ctx, cur.Pattern(), cur, cur, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "retry", got, want)
}

// TestStreamConcurrentUpdateMultiplyServe mirrors the PR 9 chaos-test
// style for the streaming path: one goroutine streams Updates on a
// DeltaProduct while others run one-shot Multiplies and a Serve stream on
// the same session, under -race in CI. Afterwards the incremental output
// must be bit-identical to a rebuild, every goroutine must exit (leak
// check), and the arbiter budget must drain fully.
func TestStreamConcurrentUpdateMultiplyServe(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	const rounds = 20
	s := NewSession(WithThreads(4), WithInflight(2))
	_, l := tcOperands(8, 6, 17)
	g, err := NewDeltaMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewDeltaProduct(g, g, g, WithAccumulate(PlusPair()))
	if _, err := s.MultiplyDelta(ctx, p); err != nil {
		t.Fatal(err)
	}
	stream := graphStream(rand.New(rand.NewSource(4)), l.NRows, rounds, 3)
	// Keep streamed edges strictly lower-triangular (graph = L).
	for r := range stream {
		keep := stream[r][:0]
		for _, u := range stream[r] {
			if u.Col < u.Row {
				keep = append(keep, u)
			}
		}
		stream[r] = keep
	}

	lp2, l2 := tcOperands(7, 4, 99)
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(2)
	go func() { // streaming updates
		defer wg.Done()
		for _, batch := range stream {
			if _, err := s.Update(ctx, p, batch); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // one-shot multiplies on unrelated operands
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.Multiply(ctx, lp2, l2, l2, WithAccumulate(PlusPair())); err != nil {
				errc <- err
				return
			}
		}
	}()
	reqs := make(chan BatchReq)
	resc := s.Serve(ctx, reqs)
	wg.Add(1)
	go func() { // serve stream on the same session
		defer wg.Done()
		defer close(reqs)
		for i := 0; i < rounds; i++ {
			reqs <- BatchReq{M: lp2, A: l2, B: l2, Opts: []Op{WithAccumulate(PlusPair())}, Tag: i}
		}
	}()
	served := 0
	for res := range resc {
		if res.Err != nil {
			t.Fatalf("serve response %v: %v", res.Tag, res.Err)
		}
		served++
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if served != rounds {
		t.Fatalf("served %d responses, want %d", served, rounds)
	}

	got, err := s.MultiplyDelta(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	cur := g.Current()
	want, err := s.Multiply(ctx, cur.Pattern(), cur, cur, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "concurrent stream", got, want)
	if st := s.ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("arbiter budget leaked: %+v", st)
	}
	if n := s.Panics(); n != 0 {
		t.Fatalf("unexpected recovered panics: %d", n)
	}
	waitGoroutines(t, base, 2)
}
