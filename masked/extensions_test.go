package masked

import (
	"testing"
)

func TestVxMThroughFacade(t *testing.T) {
	b := FromCOO(&COO{
		NRows: 3, NCols: 3,
		Row: []Index{0, 1, 2}, Col: []Index{1, 2, 0}, Val: []float64{2, 3, 4},
	})
	u := NewVector(3, []Index{0, 1}, []float64{10, 100})
	m := NewVector(3, []Index{1, 2}, []float64{1, 1})
	v, err := VxM(MSA, m, u, b, Arithmetic(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// uB = [0, 20, 300]; mask keeps cols 1 and 2.
	if v.NNZ() != 2 || v.Idx[0] != 1 || v.Val[0] != 20 || v.Idx[1] != 2 || v.Val[1] != 300 {
		t.Fatalf("VxM = %v %v", v.Idx, v.Val)
	}
	// Auto variant agrees.
	bcsc := ToCSC(b)
	va, dir, err := VxMAuto(m, u, b, bcsc, Arithmetic(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dir != Push && dir != Pull {
		t.Fatal("direction must be one of push/pull")
	}
	if va.NNZ() != v.NNZ() || va.Val[0] != v.Val[0] {
		t.Fatal("auto disagrees")
	}
}

func TestMultiplyHybridFacade(t *testing.T) {
	g := RMAT(8, 8, 31)
	l := Tril(g)
	want, err := Multiply(l.Pattern(), l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var stats HybridStats
	got, err := MultiplyHybrid(l.Pattern(), l, l, PlusPair(), Options{Threads: 1}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != want.NNZ() || Sum(got) != Sum(want) {
		t.Fatal("hybrid disagrees with MSA")
	}
	if stats.MSARows+stats.HeapRows+stats.PullRows == 0 {
		t.Fatal("no routing recorded")
	}
}

func TestBFSFacade(t *testing.T) {
	g := ErdosRenyi(200, 5, 41)
	res, err := BFS(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Level) != 200 || res.Level[0] != 0 {
		t.Fatal("BFS levels")
	}
	ms, err := MultiSourceBFS(g, []Index{0, 5}, Variants()[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Levels) != 2 {
		t.Fatal("multi-source levels")
	}
	// Single- and multi-source agree for the shared source.
	for v := range res.Level {
		if res.Level[v] != ms.Levels[0][v] {
			t.Fatalf("vertex %d: %d vs %d", v, res.Level[v], ms.Levels[0][v])
		}
	}
}

func TestCosineSimilarityFacade(t *testing.T) {
	f := FromCOO(&COO{
		NRows: 3, NCols: 2,
		Row: []Index{0, 1, 2, 2},
		Col: []Index{0, 0, 0, 1},
		Val: []float64{1, 2, 2, 1},
	})
	cand := FromCOO(&COO{
		NRows: 3, NCols: 3,
		Row: []Index{0, 1}, Col: []Index{1, 0}, Val: []float64{1, 1},
	}).Pattern()
	res, err := CosineSimilarity(f, cand, Variants()[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Items 0 and 1 are colinear: cosine 1.
	cols, vals := res.Scores.Row(0)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 1 {
		t.Fatalf("cosine(0,1) = %v %v", cols, vals)
	}
}

func TestCountOpsFacade(t *testing.T) {
	g := ErdosRenyi(100, 5, 43)
	l := Tril(g)
	c, ops, err := CountOps(MSA, l.Pattern(), l, l, PlusPair())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Multiply(l.Pattern(), l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != ref.NNZ() {
		t.Fatal("instrumented result differs")
	}
	if ops.Total() == 0 && ref.NNZ() > 0 {
		t.Fatal("no ops counted")
	}
}
