package masked

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestSpecializedKernelsZeroAllocsPerRow guards the steady-state allocation
// contract of the monomorphized operator loops: on a warmed session the
// specialized kernels must allocate nothing per row. The loops write into
// pooled accumulators and pooled output buffers, so a warmed multiply's
// allocation count is a small constant (session bookkeeping + result
// headers) — it must not grow when the input gets 4x more rows. A per-row
// allocation of even one object would show up as a ~1500-alloc delta here.
func TestSpecializedKernelsZeroAllocsPerRow(t *testing.T) {
	ctx := context.Background()
	for _, v := range []Variant{
		{Alg: MSA, Phase: OnePhase},
		{Alg: Hash, Phase: OnePhase},
		{Alg: MCA, Phase: OnePhase},
	} {
		t.Run(v.Name(), func(t *testing.T) {
			perRun := func(scale int) float64 {
				lp, l := tcOperands(scale, 8, 9)
				s := NewSession(WithThreads(1), WithVariant(v), WithAccumulate(PlusPair()))
				if p := s.Explain(lp, l, l); p == nil || p.Ops != core.OpsInlined {
					t.Fatalf("expected the specialized (ops=inlined) path for %s + plus-pair", v.Name())
				}
				if _, err := s.Multiply(ctx, lp, l, l); err != nil { // warm pools + plan cache
					t.Fatal(err)
				}
				return testing.AllocsPerRun(10, func() {
					if _, err := s.Multiply(ctx, lp, l, l); err != nil {
						t.Fatal(err)
					}
				})
			}
			small, big := perRun(9), perRun(11)
			// Slack for runtime internals: map growth and, under -race, the
			// race runtime's own size-dependent bookkeeping add a handful of
			// allocations. A single per-row allocation would add ~1536 here
			// (the row delta), three orders of magnitude above the slack.
			if big > small+8 {
				t.Errorf("%s: warmed allocs/op grew with rows: %.0f at 512 rows, %.0f at 2048 rows; specialized kernels must allocate zero per row", v.Name(), small, big)
			}
		})
	}
}

// TestStreamingLoopDriverPoolWarm guards the streaming path's share of the
// steady-state allocation contract: once a delta product has seen one full
// insert/delete cycle of a fixed edge set (warming every driver buffer
// size class the frontier sub-products use), further cycles must take zero
// driver pool misses — the frontier extraction and splice allocate their
// own small arrays, but the kernels' accumulator and output buffers all
// come from the warmed pools.
func TestStreamingLoopDriverPoolWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("exact pool-miss counts do not hold under -race (sync.Pool drops Puts)")
	}
	ctx := context.Background()
	_, l := tcOperands(9, 8, 23)
	s := NewSession(WithThreads(2), WithAccumulate(PlusPair()))
	g, err := NewDeltaMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewDeltaProduct(g, g, g)
	if _, err := s.MultiplyDelta(ctx, p); err != nil {
		t.Fatal(err)
	}
	// A fixed edge set toggled on and off: each cycle returns the graph to
	// its base content, so every iteration's frontier — and therefore the
	// driver buffer size classes — repeats exactly.
	edges := []Update{
		{Row: 40, Col: 3, Val: 1}, {Row: 41, Col: 7, Val: 1}, {Row: 42, Col: 11, Val: 1},
	}
	cycle := func() {
		t.Helper()
		if _, err := s.Update(ctx, p, edges); err != nil {
			t.Fatal(err)
		}
		dels := make([]Update, len(edges))
		for i, e := range edges {
			dels[i] = Update{Row: e.Row, Col: e.Col, Delete: true}
		}
		if _, err := s.Update(ctx, p, dels); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the frontier-shaped pools
	_, missBefore := s.ws.DriverPoolStats()
	for i := 0; i < 8; i++ {
		cycle()
	}
	gets, missAfter := s.ws.DriverPoolStats()
	if missAfter != missBefore {
		t.Fatalf("warmed streaming loop performed %d driver pool misses over 16 updates (gets %d); want 0",
			missAfter-missBefore, gets)
	}
}
