package masked

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestSpecializedKernelsZeroAllocsPerRow guards the steady-state allocation
// contract of the monomorphized operator loops: on a warmed session the
// specialized kernels must allocate nothing per row. The loops write into
// pooled accumulators and pooled output buffers, so a warmed multiply's
// allocation count is a small constant (session bookkeeping + result
// headers) — it must not grow when the input gets 4x more rows. A per-row
// allocation of even one object would show up as a ~1500-alloc delta here.
func TestSpecializedKernelsZeroAllocsPerRow(t *testing.T) {
	ctx := context.Background()
	for _, v := range []Variant{
		{Alg: MSA, Phase: OnePhase},
		{Alg: Hash, Phase: OnePhase},
		{Alg: MCA, Phase: OnePhase},
	} {
		t.Run(v.Name(), func(t *testing.T) {
			perRun := func(scale int) float64 {
				lp, l := tcOperands(scale, 8, 9)
				s := NewSession(WithThreads(1), WithVariant(v), WithAccumulate(PlusPair()))
				if p := s.Explain(lp, l, l); p == nil || p.Ops != core.OpsInlined {
					t.Fatalf("expected the specialized (ops=inlined) path for %s + plus-pair", v.Name())
				}
				if _, err := s.Multiply(ctx, lp, l, l); err != nil { // warm pools + plan cache
					t.Fatal(err)
				}
				return testing.AllocsPerRun(10, func() {
					if _, err := s.Multiply(ctx, lp, l, l); err != nil {
						t.Fatal(err)
					}
				})
			}
			small, big := perRun(9), perRun(11)
			// Slack for runtime internals: map growth and, under -race, the
			// race runtime's own size-dependent bookkeeping add a handful of
			// allocations. A single per-row allocation would add ~1536 here
			// (the row delta), three orders of magnitude above the slack.
			if big > small+8 {
				t.Errorf("%s: warmed allocs/op grew with rows: %.0f at 512 rows, %.0f at 2048 rows; specialized kernels must allocate zero per row", v.Name(), small, big)
			}
		})
	}
}
