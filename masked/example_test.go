package masked_test

import (
	"context"
	"errors"
	"fmt"

	"repro/masked"
)

// diamond returns a small undirected graph with two triangles sharing the
// edge 1-2 (vertices 0-1-2 and 1-2-3), in symmetric CSR storage.
func diamond() *masked.Matrix {
	coo := &masked.COO{NRows: 4, NCols: 4}
	add := func(u, v masked.Index) {
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	add(0, 1)
	add(0, 2)
	add(1, 2)
	add(1, 3)
	add(2, 3)
	return masked.FromCOO(coo)
}

// ExampleSession_Multiply computes a masked product the triangle-counting
// way: C = L .* (L·L) on the plus-pair semiring, where L is the strictly
// lower triangle of the graph. Summing C counts each triangle once.
func ExampleSession_Multiply() {
	s := masked.NewSession(masked.WithThreads(2))
	ctx := context.Background()

	g := diamond()
	l := masked.Tril(g)
	c, err := s.Multiply(ctx, l.Pattern(), l, l,
		masked.WithAccumulate(masked.PlusPair()))
	if err != nil {
		fmt.Println("multiply:", err)
		return
	}
	fmt.Printf("triangles: %.0f\n", masked.Sum(c))
	// Output:
	// triangles: 2
}

// ExampleSession_TriangleCount runs the paper's §8.2 triangle-counting
// application end to end (degree relabeling, masked product, reduction) on
// the session's planner-backed engine.
func ExampleSession_TriangleCount() {
	s := masked.NewSession()
	res, err := s.TriangleCount(context.Background(), diamond())
	if err != nil {
		fmt.Println("triangle count:", err)
		return
	}
	fmt.Println("triangles:", res.Triangles)
	// Output:
	// triangles: 2
}

// ExampleSession_Multiply_cancellation shows that operations honor their
// context: a cancelled context stops the product and surfaces ctx.Err()
// instead of a result.
func ExampleSession_Multiply_cancellation() {
	s := masked.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the multiply starts

	g := diamond()
	l := masked.Tril(g)
	_, err := s.Multiply(ctx, l.Pattern(), l, l)
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))
	// Output:
	// cancelled: true
}

// ExampleSession_Explain previews the plan the adaptive path would run —
// including the mask representation chosen per row block — without
// executing the product.
func ExampleSession_Explain() {
	s := masked.NewSession()
	g := diamond()
	l := masked.Tril(g)

	plan := s.Explain(l.Pattern(), l, l)
	fmt.Println("blocks:", len(plan.Blocks))
	fmt.Println("representation resolved:", plan.Blocks[0].Rep != masked.RepAuto)
	// Output:
	// blocks: 1
	// representation resolved: true
}

// ExampleSession_MultiplyBatch serves a batch of masked products
// concurrently on one session: requests are admitted up to the WithInflight
// cap, each runs on a worker share arbitrated from its planner cost
// estimate, and identical requests — here the repeated hot triangle query —
// are computed once and share the result (Coalesced reports it). Responses
// arrive in request order, bit-identical to sequential execution.
func ExampleSession_MultiplyBatch() {
	s := masked.NewSession(masked.WithThreads(2), masked.WithInflight(2))
	g := diamond()
	l := masked.Tril(g)
	hot := masked.BatchReq{ // the popular query, submitted three times
		M: l.Pattern(), A: l, B: l,
		Opts: []masked.Op{masked.WithAccumulate(masked.PlusPair())},
	}
	cold := masked.BatchReq{M: g.Pattern(), A: g, B: g} // a singleton

	res := s.MultiplyBatch(context.Background(), []masked.BatchReq{hot, hot, hot, cold})
	computed := 0
	for _, r := range res {
		if r.Err != nil {
			fmt.Println("batch:", r.Err)
			return
		}
		if !r.Coalesced {
			computed++
		}
	}
	fmt.Printf("triangles: %.0f (hot query computed %d time(s) for 3 requests)\n",
		masked.Sum(res[0].C), computed-1)
	fmt.Printf("cold result nnz: %d\n", res[3].C.NNZ())
	// Output:
	// triangles: 2 (hot query computed 1 time(s) for 3 requests)
	// cold result nnz: 10
}

// ExampleWithMaskRep pins the bitmap mask representation for one call;
// results are bit-identical to every other representation, only the probe
// strategy changes.
func ExampleWithMaskRep() {
	s := masked.NewSession()
	ctx := context.Background()
	g := diamond()
	l := masked.Tril(g)

	auto, err := s.Multiply(ctx, l.Pattern(), l, l,
		masked.WithAccumulate(masked.PlusPair()))
	if err != nil {
		fmt.Println("multiply:", err)
		return
	}
	bitmap, err := s.Multiply(ctx, l.Pattern(), l, l,
		masked.WithAccumulate(masked.PlusPair()),
		masked.WithMaskRep(masked.RepBitmap))
	if err != nil {
		fmt.Println("multiply:", err)
		return
	}
	fmt.Println("bit-identical:", masked.Sum(auto) == masked.Sum(bitmap))
	// Output:
	// bit-identical: true
}
