package masked

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base+slack, failing the test when it does not within the deadline — the
// leak check of the serving teardown tests.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // flush pooled finalizer work so counts settle
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after serving shutdown: %d live, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeShutdownUnderLoad cancels a Serve stream mid-traffic and
// asserts the teardown contract: the response channel closes, every
// worker goroutine exits (no leaks), and responses delivered before the
// close are well-formed. The PR-2 cancellation tests cover Multiply;
// this covers Serve teardown under load.
func TestServeShutdownUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		s := NewSession(WithThreads(2), WithInflight(2))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		g := ErdosRenyi(256, 8, 42)
		reqs := make(chan BatchReq)
		out := s.Serve(ctx, reqs)
		var sent atomic.Int64
		go func() {
			for i := 0; ; i++ {
				select {
				case reqs <- BatchReq{M: g.Pattern(), A: g, B: g, Tag: i}:
					sent.Add(1)
				case <-ctx.Done():
					return
				}
			}
		}()
		got := 0
		for r := range out {
			if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
				t.Errorf("response %v: %v", r.Tag, r.Err)
			}
			if r.Err == nil && r.C == nil {
				t.Errorf("response %v: nil result without error", r.Tag)
			}
			got++
			if got == 5 {
				cancel()
			}
		}
		// The channel closed: every accepted request was answered or the
		// stream ended on cancellation; either way no worker remains.
		if got < 5 {
			t.Fatalf("stream closed after %d responses, before cancellation", got)
		}
	}()
	waitGoroutines(t, base, 2)
}

// TestServeCloseDrains closes the request channel (the graceful path) and
// asserts every submitted request is answered before the response channel
// closes, with no goroutines left behind.
func TestServeCloseDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	const n = 12
	func() {
		s := NewSession(WithThreads(2), WithInflight(2))
		g := ErdosRenyi(128, 6, 7)
		reqs := make(chan BatchReq, n)
		for i := 0; i < n; i++ {
			reqs <- BatchReq{M: g.Pattern(), A: g, B: g, Tag: i}
		}
		close(reqs)
		got := 0
		for r := range s.Serve(context.Background(), reqs) {
			if r.Err != nil {
				t.Errorf("response %v: %v", r.Tag, r.Err)
			}
			got++
		}
		if got != n {
			t.Fatalf("drained %d responses, want %d", got, n)
		}
	}()
	waitGoroutines(t, base, 2)
}

// TestTryMultiplySaturation exercises the non-queuing admission path: a
// full admission cap refuses with ErrSaturated instead of queuing, an
// identical in-flight request coalesces and succeeds despite saturation,
// and a freed slot admits again.
func TestTryMultiplySaturation(t *testing.T) {
	s := NewSession(WithThreads(2), WithInflight(1))
	ctx := context.Background()
	g := ErdosRenyi(64, 8, 3)
	other := ErdosRenyi(64, 8, 4)
	// Coalescing keys on operand identity: share one Pattern view, since
	// every g.Pattern() call builds a distinct header.
	gp, otherp := g.Pattern(), other.Pattern()

	// A slow custom semiring gates the leader mid-multiply so saturation
	// is a state we control, not a race we hope to win.
	gate := make(chan struct{})
	var once atomic.Bool
	slow := Semiring{
		Name: "slow-test",
		Zero: 0,
		Add:  func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 {
			if once.CompareAndSwap(false, true) {
				<-gate
			}
			return a * b
		},
	}

	leaderDone := make(chan BatchRes, 1)
	go func() {
		res := s.MultiplyBatch(ctx, []BatchReq{{M: gp, A: g, B: g,
			Opts: []Op{WithAccumulate(slow)}}})
		leaderDone <- res[0]
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.ServingStats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached in-flight state")
		}
		time.Sleep(time.Millisecond)
	}

	// Distinct request against a saturated cap: refused, not queued.
	if r := s.TryMultiply(ctx, otherp, other, other); !errors.Is(r.Err, ErrSaturated) {
		t.Fatalf("distinct request under saturation: err %v, want ErrSaturated", r.Err)
	}
	if st := s.ServingStats(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}

	// Identical request: coalesces onto the leader, no slot needed.
	followerDone := make(chan BatchRes, 1)
	go func() {
		followerDone <- s.TryMultiply(ctx, gp, g, g, WithAccumulate(slow))
	}()
	select {
	case r := <-followerDone:
		t.Fatalf("follower finished before the leader: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	leader := <-leaderDone
	follower := <-followerDone
	if leader.Err != nil || follower.Err != nil {
		t.Fatalf("leader err %v, follower err %v", leader.Err, follower.Err)
	}
	if !follower.Coalesced {
		t.Fatal("identical request under saturation did not coalesce")
	}
	if follower.C != leader.C {
		t.Fatal("coalesced follower received a different result object")
	}

	// Cap free again: a fresh distinct request is admitted.
	if r := s.TryMultiply(ctx, otherp, other, other); r.Err != nil {
		t.Fatalf("request after release: %v", r.Err)
	}
}

// TestSessionStats checks the unified snapshot agrees with the three
// component accessors and that its monotonic counters move under load.
func TestSessionStats(t *testing.T) {
	s := NewSession(WithThreads(2))
	ctx := context.Background()
	g := ErdosRenyi(128, 6, 5)
	gp := g.Pattern()
	if _, err := s.Multiply(ctx, gp, g, g); err != nil {
		t.Fatal(err)
	}
	if r := s.TryMultiply(ctx, gp, g, g); r.Err != nil {
		t.Fatal(r.Err)
	}
	st := s.Stats()
	if st.Cache != s.PlanCacheStats() {
		t.Fatalf("Stats.Cache %+v != PlanCacheStats %+v", st.Cache, s.PlanCacheStats())
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Fatal("plan cache counters did not move")
	}
	if st.Arbiter.Admitted == 0 {
		t.Fatal("arbiter admitted counter did not move")
	}
	if st.DriverPool.Gets == 0 {
		t.Fatal("driver pool counters did not move")
	}
}

// TestSemiringByName checks the wire-protocol semiring vocabulary.
func TestSemiringByName(t *testing.T) {
	for _, name := range []string{"", "arithmetic", "plus-pair", "plus-pair-f64",
		"min-plus", "plus-second", "plus-first", "max-times"} {
		if _, err := SemiringByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := SemiringByName("nope"); err == nil {
		t.Error("unknown name resolved")
	}
}
