package masked

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// armKernelPanic installs a registry that panics the first n kernel
// executions, then heals, and uninstalls it on cleanup.
func armKernelPanic(t *testing.T, n int) {
	t.Helper()
	r := faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointKernelPanic, Every: 1, Limit: n})
	faultinject.Set(r)
	t.Cleanup(func() { faultinject.Set(nil) })
}

// TestPanicIsolatedToRequest: an injected kernel panic costs exactly its
// own request — it resolves to a *PanicError wrapping ErrPanic, the arbiter
// budget drains fully, and the next identical request on the same session
// succeeds with a bit-identical result to an unfaulted session.
func TestPanicIsolatedToRequest(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(8, 4, 201)
	want, err := NewSession(WithThreads(2)).Multiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(WithThreads(4))
	armKernelPanic(t, 1)
	r := s.TryMultiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if !errors.Is(r.Err, ErrPanic) {
		t.Fatalf("faulted request: err %v, want ErrPanic", r.Err)
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("panic error carries no stack: %#v", r.Err)
	}
	if st := s.ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("panicked request leaked arbiter budget: %+v", st)
	}
	if got := s.Panics(); got != 1 {
		t.Fatalf("session counted %d panics, want 1", got)
	}

	// The registry's limit is spent; the same session must now succeed.
	r = s.TryMultiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if r.Err != nil {
		t.Fatalf("healed request: %v", r.Err)
	}
	sameCSR(t, "healed", r.C, want)
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
}

// TestPanicSharedWithFollowers: coalesced followers of a panicked leader
// receive the leader's PanicError (a deterministic outcome, not retried),
// and the flight slot is free afterwards.
func TestPanicSharedWithFollowers(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(8, 4, 202)
	s := NewSession(WithThreads(4))
	armKernelPanic(t, 1)

	reqs := make([]BatchReq, 6)
	for i := range reqs {
		reqs[i] = BatchReq{M: lp, A: l, B: l, Opts: []Op{WithAccumulate(PlusPair())}, Tag: i}
	}
	res := s.MultiplyBatch(ctx, reqs, WithInflight(4))
	for i, r := range res {
		if !errors.Is(r.Err, ErrPanic) {
			t.Fatalf("member %d: err %v, want shared ErrPanic", i, r.Err)
		}
	}
	// One panic, shared: the leader recovered once, followers reused it.
	if got := s.Panics(); got != 1 {
		t.Fatalf("session counted %d panics for one coalesced group, want 1", got)
	}
	if st := s.ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("arbiter did not drain after coalesced panic: %+v", st)
	}
}

// TestWorkerPanicCrossesParallelBoundary: a panic injected on a parallel
// worker goroutine (not the request goroutine) still resolves the request
// with ErrPanic and the worker's own stack, via parallel.WorkerPanic.
func TestWorkerPanicCrossesParallelBoundary(t *testing.T) {
	ctx := context.Background()
	// Big enough that the arbiter grants this request several workers
	// (cost >= 2×parallel.CostPerWorker), so the kernels actually spawn
	// worker goroutines for the fault point to fire on.
	g := ErdosRenyi(16384, 10, 203)
	s := NewSession(WithThreads(4))
	r := faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointWorkerPanic, Every: 1, Limit: 1})
	faultinject.Set(r)
	defer faultinject.Set(nil)

	res := s.TryMultiply(ctx, g.Pattern(), g, g)
	if !errors.Is(res.Err, ErrPanic) {
		t.Fatalf("worker-panicked request: err %v, want ErrPanic", res.Err)
	}
	if st := s.ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("worker panic leaked arbiter budget: %+v", st)
	}
	faultinject.Set(nil)
	if res := s.TryMultiply(ctx, g.Pattern(), g, g); res.Err != nil {
		t.Fatalf("session unusable after worker panic: %v", res.Err)
	}
}
