package masked

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// mixedBatch builds a batch exercising different operands, mask modes,
// semirings and a pinned variant.
func mixedBatch() []BatchReq {
	lp1, l1 := tcOperands(7, 4, 101)
	lp2, l2 := tcOperands(8, 8, 102)
	g := ErdosRenyi(256, 4, 103)
	return []BatchReq{
		{M: lp1, A: l1, B: l1, Opts: []Op{WithAccumulate(PlusPair())}, Tag: "tc-small"},
		{M: lp2, A: l2, B: l2, Opts: []Op{WithAccumulate(PlusPair())}, Tag: "tc-big"},
		{M: g.Pattern(), A: g, B: g, Tag: "square"},
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithComplement()}, Tag: "complement"},
		{M: lp1, A: l1, B: l1, Opts: []Op{WithVariant(Variant{Alg: Hash, Phase: TwoPhase}), WithAccumulate(PlusPair())}, Tag: "pinned"},
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithAccumulate(MinPlus())}, Tag: "minplus"},
	}
}

// TestMultiplyBatchMatchesSequential: the batch path returns, per request
// and in request order, exactly what sequential Session.Multiply returns.
func TestMultiplyBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	reqs := mixedBatch()
	seq := NewSession(WithThreads(2))
	want := make([]*Matrix, len(reqs))
	for i, r := range reqs {
		c, err := seq.Multiply(ctx, r.M, r.A, r.B, r.Opts...)
		if err != nil {
			t.Fatalf("sequential %v: %v", r.Tag, err)
		}
		want[i] = c
	}
	s := NewSession(WithThreads(4))
	res := s.MultiplyBatch(ctx, reqs, WithInflight(3))
	if len(res) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(res), len(reqs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %v: %v", reqs[i].Tag, r.Err)
		}
		if r.Tag != reqs[i].Tag {
			t.Fatalf("response %d carries tag %v, want %v (order must be preserved)", i, r.Tag, reqs[i].Tag)
		}
		if r.Workers < 1 {
			t.Errorf("request %v ran with %d workers", r.Tag, r.Workers)
		}
		sameCSR(t, fmt.Sprint(reqs[i].Tag), r.C, want[i])
	}
	if st := s.ServingStats(); st.Admitted == 0 || st.Inflight != 0 || st.Free != st.Budget {
		t.Errorf("arbiter did not drain cleanly: %+v", st)
	}
}

// TestMultiplyBatchCoalesces: duplicate requests in one batch are computed
// once; every duplicate shares the leader's result object.
func TestMultiplyBatchCoalesces(t *testing.T) {
	lp, l := tcOperands(8, 4, 104)
	req := BatchReq{M: lp, A: l, B: l, Opts: []Op{WithAccumulate(PlusPair())}}
	reqs := make([]BatchReq, 12)
	for i := range reqs {
		reqs[i] = req
		reqs[i].Tag = i
	}
	s := NewSession(WithThreads(4))
	res := s.MultiplyBatch(context.Background(), reqs, WithInflight(8))
	computed, coalesced := 0, 0
	var c *Matrix
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Coalesced {
			coalesced++
		} else {
			computed++
		}
		if c == nil {
			c = r.C
		} else if r.C != c {
			t.Fatalf("request %d received a distinct result object; duplicates must share", i)
		}
	}
	if computed == len(reqs) {
		t.Fatal("no request was coalesced")
	}
	if computed+coalesced != len(reqs) {
		t.Fatalf("computed %d + coalesced %d != %d", computed, coalesced, len(reqs))
	}
	// Distinct mask modes must NOT coalesce with each other.
	res2 := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: lp, A: l, B: l},
		{M: lp, A: l, B: l, Opts: []Op{WithComplement()}},
	})
	if res2[0].Err != nil || res2[1].Err != nil {
		t.Fatalf("mask-mode batch errored: %v %v", res2[0].Err, res2[1].Err)
	}
	if res2[0].C == res2[1].C {
		t.Fatal("normal and complemented requests coalesced")
	}
}

// TestBatchDistinctOutcomesNotShared: a pinned variant that cannot run the
// request (MCA under complement) must fail alone — the identical-operand
// auto request succeeds, proving the coalescing key separates them.
func TestBatchDistinctOutcomesNotShared(t *testing.T) {
	g := ErdosRenyi(128, 4, 105)
	s := NewSession(WithThreads(2))
	res := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithComplement()}, Tag: "auto"},
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithComplement(), WithVariant(Variant{Alg: MCA, Phase: OnePhase})}, Tag: "mca"},
	})
	if res[0].Err != nil {
		t.Fatalf("auto complement failed: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("pinned MCA under complement must error")
	}
}

// TestBatchRespectsThreadCeiling: an explicit WithThreads on a batch
// request stays a hard ceiling — the arbiter's grant may be smaller but
// never larger.
func TestBatchRespectsThreadCeiling(t *testing.T) {
	lp, l := tcOperands(9, 8, 114) // big enough to ask for several workers
	s := NewSession(WithThreads(4))
	res := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: lp, A: l, B: l, Opts: []Op{WithAccumulate(PlusPair()), WithThreads(1)}},
	})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Workers > 1 {
		t.Fatalf("request capped at 1 thread ran with %d workers", res[0].Workers)
	}
}

// TestBatchCustomSemiringsNotCoalesced: two different user-built semirings
// that both forgot to set Name must still be told apart by the coalescing
// key (function identity), or one request would receive the other's
// numbers.
func TestBatchCustomSemiringsNotCoalesced(t *testing.T) {
	g := ErdosRenyi(128, 4, 112)
	plus := Semiring{Add: func(a, b float64) float64 { return a + b }, Mul: func(a, b float64) float64 { return a * b }}
	max := Semiring{Add: func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}, Mul: func(a, b float64) float64 { return a * b }}
	s := NewSession(WithThreads(2))
	res := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithAccumulate(plus)}},
		{M: g.Pattern(), A: g, B: g, Opts: []Op{WithAccumulate(max)}},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("custom-semiring batch errored: %v %v", res[0].Err, res[1].Err)
	}
	if res[0].Coalesced || res[1].Coalesced {
		t.Fatal("distinct unnamed semirings were coalesced")
	}
	if Sum(res[0].C) == Sum(res[1].C) {
		t.Fatal("test premise broken: the two semirings should produce different sums")
	}
}

// TestBatchNilOperand: a nil operand yields a per-request error, not a
// panic, and does not poison the rest of the batch.
func TestBatchNilOperand(t *testing.T) {
	lp, l := tcOperands(6, 4, 106)
	s := NewSession()
	res := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: nil, A: l, B: l},
		{M: lp, A: l, B: l},
	})
	if res[0].Err == nil {
		t.Fatal("nil mask must error")
	}
	if res[1].Err != nil {
		t.Fatalf("healthy request poisoned: %v", res[1].Err)
	}
}

// TestBatchCancelled: a cancelled context fails every request with the
// context error.
func TestBatchCancelled(t *testing.T) {
	lp, l := tcOperands(7, 4, 107)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession()
	res := s.MultiplyBatch(ctx, []BatchReq{{M: lp, A: l, B: l}, {M: lp, A: l, B: l}})
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("request %d: err %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestServeMatchesSequential: the streaming form answers every request of
// the stream with the sequential result, correlated by Tag.
func TestServeMatchesSequential(t *testing.T) {
	ctx := context.Background()
	reqs := mixedBatch()
	seq := NewSession(WithThreads(2))
	want := make(map[any]*Matrix, len(reqs))
	for _, r := range reqs {
		c, err := seq.Multiply(ctx, r.M, r.A, r.B, r.Opts...)
		if err != nil {
			t.Fatalf("sequential %v: %v", r.Tag, err)
		}
		want[r.Tag] = c
	}
	s := NewSession(WithThreads(4), WithInflight(3))
	in := make(chan BatchReq)
	out := s.Serve(ctx, in)
	go func() {
		for rep := 0; rep < 3; rep++ { // re-submit the stream: hot traffic
			for _, r := range reqs {
				in <- r
			}
		}
		close(in)
	}()
	got := 0
	for r := range out {
		if r.Err != nil {
			t.Fatalf("stream response %v: %v", r.Tag, r.Err)
		}
		sameCSR(t, fmt.Sprint(r.Tag), r.C, want[r.Tag])
		got++
	}
	if wantN := 3 * len(reqs); got != wantN {
		t.Fatalf("stream answered %d of %d requests", got, wantN)
	}
}

// TestServeCancel: cancelling the context closes the response stream
// without answering unread requests, and the session stays usable.
func TestServeCancel(t *testing.T) {
	lp, l := tcOperands(7, 4, 108)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSession(WithThreads(2))
	in := make(chan BatchReq) // unbuffered: the feeder blocks after cancel
	out := s.Serve(ctx, in, WithInflight(2))
	in <- BatchReq{M: lp, A: l, B: l, Tag: 0}
	<-out
	cancel()
	for range out { // drains whatever raced with the cancel, then closes
	}
	if c, err := s.Multiply(context.Background(), lp, l, l); err != nil || c == nil {
		t.Fatalf("session unusable after cancelled Serve: %v", err)
	}
}

// TestCoalescedFollowerRetriesAfterLeaderCancel: a leader cancelled by its
// own context must not poison healthy followers — a follower that finds a
// context error on the shared flight retries and computes the product
// itself.
func TestCoalescedFollowerRetriesAfterLeaderCancel(t *testing.T) {
	lp, l := tcOperands(6, 4, 115)
	s := NewSession(WithThreads(1))
	d := s.def.apply([]Op{WithAccumulate(PlusPair())})
	key := reqKey(d, lp, l, l)
	// Install a fake in-flight leader for the key.
	fc := &flightCall{done: make(chan struct{})}
	s.flightMu.Lock()
	s.flight[key] = fc
	s.flightMu.Unlock()
	resC := make(chan BatchRes, 1)
	go func() { resC <- s.doOne(context.Background(), d, lp, l, l, true) }()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	// The leader "was cancelled": unlink, publish the context error, wake.
	fc.err = context.Canceled
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(fc.done)
	r := <-resC
	if r.Err != nil {
		t.Fatalf("healthy follower inherited the leader's cancellation: %v", r.Err)
	}
	want, err := s.Multiply(context.Background(), lp, l, l, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	sameCSR(t, "retried follower", r.C, want)
}

// TestServingStress is the -race serving smoke: many goroutines drive mixed
// workloads — single multiplies, batches with duplicates, streaming serves
// and an iterative application — through ONE session concurrently, and
// every result must be bit-identical to the sequential reference. Run with
// -race in CI.
func TestServingStress(t *testing.T) {
	ctx := context.Background()
	lp1, l1 := tcOperands(7, 4, 109)
	lp2, l2 := tcOperands(8, 8, 110)
	g := ErdosRenyi(256, 8, 111)

	ref := NewSession(WithThreads(1))
	wantTC1, err := ref.Multiply(ctx, lp1, l1, l1, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	wantTC2, err := ref.Multiply(ctx, lp2, l2, l2, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	wantSq, err := ref.Multiply(ctx, g.Pattern(), g, g)
	if err != nil {
		t.Fatal(err)
	}
	wantComp, err := ref.Multiply(ctx, g.Pattern(), g, g, WithComplement())
	if err != nil {
		t.Fatal(err)
	}
	wantTri, err := ref.TriangleCount(ctx, l1)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(WithThreads(4), WithInflight(4))
	var wg sync.WaitGroup
	workers := 8
	iters := 4
	if testing.Short() {
		workers, iters = 4, 2
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0: // plain concurrent multiplies
					got, err := s.Multiply(ctx, lp1, l1, l1, WithAccumulate(PlusPair()))
					if err != nil {
						t.Errorf("multiply: %v", err)
						return
					}
					sameCSR(t, "stress multiply", got, wantTC1)
				case 1: // batch with duplicates and mixed modes
					res := s.MultiplyBatch(ctx, []BatchReq{
						{M: lp2, A: l2, B: l2, Opts: []Op{WithAccumulate(PlusPair())}},
						{M: g.Pattern(), A: g, B: g},
						{M: g.Pattern(), A: g, B: g},
						{M: g.Pattern(), A: g, B: g, Opts: []Op{WithComplement()}},
					})
					for j, r := range res {
						if r.Err != nil {
							t.Errorf("batch req %d: %v", j, r.Err)
							return
						}
					}
					sameCSR(t, "stress batch tc", res[0].C, wantTC2)
					sameCSR(t, "stress batch sq", res[1].C, wantSq)
					sameCSR(t, "stress batch dup", res[2].C, wantSq)
					sameCSR(t, "stress batch comp", res[3].C, wantComp)
				case 2: // streaming
					in := make(chan BatchReq, 4)
					for j := 0; j < 4; j++ {
						in <- BatchReq{M: lp1, A: l1, B: l1, Opts: []Op{WithAccumulate(PlusPair())}, Tag: j}
					}
					close(in)
					for r := range s.Serve(ctx, in, WithInflight(2)) {
						if r.Err != nil {
							t.Errorf("serve: %v", r.Err)
							return
						}
						sameCSR(t, "stress serve", r.C, wantTC1)
					}
				case 3: // an application sharing the same session
					res, err := s.TriangleCount(ctx, l1)
					if err != nil {
						t.Errorf("triangles: %v", err)
						return
					}
					if res.Triangles != wantTri.Triangles {
						t.Errorf("triangles %d, want %d", res.Triangles, wantTri.Triangles)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.ServingStats()
	if st.Inflight != 0 || st.Waiting != 0 || st.Free != st.Budget {
		t.Fatalf("arbiter did not drain after stress: %+v", st)
	}
	cs := s.PlanCacheStats()
	if cs.Hits == 0 {
		t.Error("stress run never hit the plan cache")
	}
}

// TestBatchNamedSemiringsCoalesce: named semirings coalesce by their
// comparable operator type, not func-pointer identity — two requests whose
// semirings were constructed independently (as two serving clients would)
// must share one computation, and the executed plan must report the
// inlined operator path.
func TestBatchNamedSemiringsCoalesce(t *testing.T) {
	lp, l := tcOperands(8, 4, 117)
	sr1 := PlusPair() // independently constructed values of the same
	sr2 := PlusPair() // named semiring: equal Ops type, no shared funcs
	s := NewSession(WithThreads(2))
	res := s.MultiplyBatch(context.Background(), []BatchReq{
		{M: lp, A: l, B: l, Opts: []Op{WithAccumulate(sr1)}},
		{M: lp, A: l, B: l, Opts: []Op{WithAccumulate(sr2)}},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("named-semiring batch errored: %v %v", res[0].Err, res[1].Err)
	}
	if !res[0].Coalesced && !res[1].Coalesced {
		t.Fatal("independently constructed named semirings did not coalesce")
	}
	if res[0].C != res[1].C {
		t.Fatal("coalesced requests received distinct result objects")
	}
	// The session's plan must be labeled with the inlined operator path,
	// and a custom semiring's with the funcptr fallback.
	if p := s.Explain(lp, l, l, WithAccumulate(sr1)); p.Ops != core.OpsInlined {
		t.Fatalf("named semiring plan reports ops=%q, want %q", p.Ops, core.OpsInlined)
	}
	custom := Semiring{Add: func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 { return a * b }}
	if p := s.Explain(lp, l, l, WithAccumulate(custom)); p.Ops != core.OpsFuncPtr {
		t.Fatalf("custom semiring plan reports ops=%q, want %q", p.Ops, core.OpsFuncPtr)
	}
	if !strings.Contains(s.Explain(lp, l, l, WithAccumulate(sr1)).Explain(), "ops=inlined") {
		t.Fatal("Explain output does not render the ops= label")
	}
}
