package masked

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/matrix"
)

// Extensions beyond the paper's evaluated kernels: the vector (SpGEVM)
// primitive, the direction-optimized variant, the per-row hybrid kernel
// (the paper's §9 future work), BFS, and masked similarity.

// Vector is a sparse float64 vector.
type Vector = matrix.SparseVec[float64]

// NewVector builds a sparse vector from index/value pairs (duplicates
// summed).
func NewVector(n Index, idx []Index, vals []float64) *Vector {
	return matrix.NewSparseVec(n, idx, vals, func(a, b float64) float64 { return a + b })
}

// VxM computes v = m .* (uᵀB): the masked sparse vector-matrix product the
// paper's §5 algorithms are stated in. alg selects the kernel family.
func VxM(alg core.Algorithm, m *Vector, u *Vector, b *Matrix, sr Semiring, opt Options) (*Vector, error) {
	return core.MaskedSpGEVM(alg, m, u, b, sr, opt)
}

// Direction reports whether a direction-optimized step pushed or pulled.
type Direction = core.Direction

// Push and Pull are the two traversal directions.
const (
	Push = core.Push
	Pull = core.Pull
)

// VxMAuto is the direction-optimized masked vector-matrix product: it
// estimates push vs pull cost per call and picks the cheaper kernel,
// returning the direction taken. bcsc must be B in CSC form (build once
// with ToCSC).
func VxMAuto(m *Vector, u *Vector, b *Matrix, bcsc *CSC, sr Semiring, opt Options) (*Vector, Direction, error) {
	return core.MaskedSpGEVMAuto(m, u, b, bcsc, sr, opt)
}

// CSC is the compressed-sparse-column form used by pull kernels.
type CSC = matrix.CSC[float64]

// ToCSC converts a matrix to CSC (for VxMAuto and repeated pull calls).
func ToCSC(a *Matrix) *CSC { return matrix.ToCSC(a) }

// HybridStats counts per-row kernel routing decisions of MultiplyHybrid.
type HybridStats = core.HybridStats

// MultiplyHybrid computes C = M .* (A·B) with the per-row adaptive kernel
// (the paper's stated future work): each output row routes to the pull,
// heap or MSA sub-kernel by its local mask/flops densities. Complemented
// masks are not supported. stats may be nil.
func MultiplyHybrid(m *Pattern, a, b *Matrix, sr Semiring, opt Options, stats *HybridStats) (*Matrix, error) {
	return core.MaskedSpGEMMHybrid(core.OnePhase, m, a, b, sr, opt, stats)
}

// BFSResult reports a direction-optimized BFS.
type BFSResult = apps.BFSResult

// BFS runs a single-source direction-optimized breadth-first search.
//
// Deprecated: use Session.BFS. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func BFS(g *Matrix, source Index, opt Options) (BFSResult, error) {
	return DefaultSession().BFS(legacyCtx(opt), g, source, legacyOps(opt)...)
}

// MultiSourceBFSResult reports a batched BFS.
type MultiSourceBFSResult = apps.MultiSourceBFSResult

// MultiSourceBFS runs BFS from every source simultaneously with
// complement-masked SpGEMM, using variant v (or the planner with opt.Auto).
//
// Deprecated: use Session.MultiSourceBFS. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func MultiSourceBFS(g *Matrix, sources []Index, v Variant, opt Options) (MultiSourceBFSResult, error) {
	return DefaultSession().MultiSourceBFS(legacyCtx(opt), g, sources,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// SimilarityResult reports a masked similarity computation.
type SimilarityResult = apps.SimilarityResult

// CosineSimilarity scores the candidate item pairs of F·Fᵀ with cosine
// normalization via masked SpGEMM, using variant v (or the planner with
// opt.Auto).
//
// Deprecated: use Session.CosineSimilarity. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func CosineSimilarity(f *Matrix, candidates *Pattern, v Variant, opt Options) (SimilarityResult, error) {
	return DefaultSession().CosineSimilarity(legacyCtx(opt), f, candidates,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// MultiplyColumns computes C = M .* (A·B) with column-by-column (CSC-major)
// execution via the transpose identity Cᵀ = Mᵀ .* (Bᵀ·Aᵀ). Useful when the
// operands are column-major or the consumer wants column access; also a
// built-in cross-check of the row kernels.
func MultiplyColumns(v Variant, m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, error) {
	return core.MaskedSpGEMMColumns(v, m, a, b, sr, opt)
}

// MCLOptions configures Markov clustering.
type MCLOptions = apps.MCLOptions

// MCLResult reports a Markov clustering run.
type MCLResult = apps.MCLResult

// MCL runs Markov clustering (expansion = SpGEMM, optionally masked by the
// iterate's own pattern; inflation = element-wise powering) with variant v
// supplying the masked expansion (or the planner with opt.Auto).
//
// Deprecated: use Session.MCL. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func MCL(g *Matrix, o MCLOptions, v Variant, opt Options) (MCLResult, error) {
	return DefaultSession().MCL(legacyCtx(opt), g, o,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// OpCounts aggregates abstract operation counts of an instrumented run.
type OpCounts = core.OpCounts

// CountOps runs the instrumented sequential implementation of the chosen
// algorithm, returning the product and its abstract operation counts — an
// executable form of the paper's §5 complexity analysis.
func CountOps(alg core.Algorithm, m *Pattern, a, b *Matrix, sr Semiring) (*Matrix, OpCounts, error) {
	return core.CountOps(alg, m, a, b, sr)
}
