// Package masked is the public API of this repository: parallel masked
// sparse matrix-matrix products, C = M .* (A·B), after "Parallel Algorithms
// for Masked Sparse Matrix-Matrix Products" (Milaković, Selvitopi, Nisa,
// Budimlić, Buluç; ICPP 2022).
//
// A masked product computes only the output entries whose positions appear
// in a mask matrix M (or, complemented, only positions absent from M).
// Graph algorithms use it to avoid materializing products they will throw
// away: triangle counting masks L·L by L itself, BFS-style traversals mask
// frontier expansion by the complement of the visited set.
//
// # Sessions
//
// The unit of the API is the Session: a handle owning a plan cache, a
// thread budget, and pooled accumulator workspaces that every operation of
// the session shares. Operations take a context.Context, honored
// cooperatively mid-multiply, and are configured by descriptor options:
//
//	s := masked.NewSession(masked.WithThreads(8))
//	g := masked.RMAT(12, 16, 1)                     // a Graph500-style graph
//	l := masked.Tril(g)                             // strictly lower triangle
//	c, err := s.Multiply(ctx, l.Pattern(), l, l,    // C = L .* (L·L)
//	    masked.WithAccumulate(masked.PlusPair()))
//	triangles := masked.Sum(c)
//
// Iterative applications — BFS, BC, MCL, k-truss, anything that
// re-multiplies against a static graph — should run all their products on
// one session: plans are re-used instead of re-analyzed, and accumulator
// workspaces are recycled instead of reallocated per call.
//
// Choosing an algorithm: by default every operation routes through the
// adaptive planner, which applies the paper's §8 guidance as an explicit
// cost model — Inner for masks much sparser than the inputs, Heap/HeapDot
// for inputs much sparser than the mask, MSA/Hash for the
// comparable-density middle, and one-phase unless memory is tight. On row
// spaces with skewed local density (power-law graphs) the planner may emit
// a *mixed* plan that runs different variants on different row blocks;
// results are bit-identical regardless. WithVariant pins one of the 12
// fixed variants (6 algorithms × one/two phase) instead;
// Session.MultiplyAuto returns the executed Plan and Session.Explain
// previews it.
//
// Orthogonally to the variant, the planner also selects a per-block *mask
// representation* — how kernels answer "is column j in the mask row": the
// sorted-CSR probe, a pooled per-worker bitmap (O(1) probes for dense mask
// rows, the k-truss and multi-source-BFS regime), or direct indexing of
// contiguous mask rows. WithMaskRep pins one globally; Explain reports the
// choice per block. Complement is native to every representation, so
// complemented masks never materialize an explicit complement pattern.
//
// The applications of the paper's evaluation are Session.TriangleCount,
// Session.KTruss and Session.BC; the extensions add Session.BFS,
// Session.MultiSourceBFS, Session.MCL and Session.CosineSimilarity, and
// the SS:GB-style baselines run under the same descriptors via
// Session.SSDot and Session.SSSaxpy.
//
// # Serving concurrent requests
//
// Sessions are multi-tenant serving objects: Session.MultiplyBatch
// answers a batch of products concurrently (responses in request order)
// and Session.Serve runs a worker pool over a request channel. At most
// WithInflight requests run at once; each gets a worker share of the
// session thread budget proportional to its planner cost estimate (small
// queries one goroutine, heavy products the spare budget, released budget
// rebalanced to stragglers mid-request); and identical concurrent requests
// — same operands, mask mode and semiring — are computed once, sharing
// the immutable result (single-flight). The plan cache behind this is
// lock-striped and LRU-bounded (WithPlanCacheCapacity); PlanCacheStats
// and ServingStats expose monotonic counters for dashboards. See
// PERFORMANCE.md for the tuning guide.
//
// # Migrating from the free functions
//
// The pre-session API — free functions taking a positional (Variant,
// Options) pair — remains as thin deprecated wrappers over a lazily
// created DefaultSession and returns bit-identical results:
//
//	Multiply(m, a, b, sr, opt)        → s.Multiply(ctx, m, a, b, WithAccumulate(sr), ...)
//	MultiplyVariant(v, m, a, b, sr, o)→ s.Multiply(ctx, m, a, b, WithVariant(v), WithAccumulate(sr))
//	TriangleCount(g, v, opt)          → s.TriangleCount(ctx, g, WithVariant(v))
//	KTruss(g, k, v, opt)              → s.KTruss(ctx, g, k, WithVariant(v))
//	BetweennessCentrality(g, src, v, o)→ s.BC(ctx, g, src, WithVariant(v))
//	BFS(g, source, opt)               → s.BFS(ctx, g, source)
//	MCL(g, o, v, opt)                 → s.MCL(ctx, g, o, WithVariant(v))
//	CosineSimilarity(f, cand, v, opt) → s.CosineSimilarity(ctx, f, cand, WithVariant(v))
//	SSDot/SSSaxpy(m, a, b, sr, threads)→ s.SSDot/SSSaxpy(ctx, m, a, b, WithAccumulate(sr), WithThreads(threads))
//
// Passing Options{Auto: true} to a wrapper ignores the pinned variant and
// plans adaptively, as before.
package masked

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/planner"
	"repro/internal/semiring"
)

// Index is the 32-bit row/column index type.
type Index = matrix.Index

// Matrix is a sparse matrix in CSR format with float64 values.
type Matrix = matrix.CSR[float64]

// Pattern is a structure-only matrix view; masks are patterns.
type Pattern = matrix.Pattern

// COO is the triplet staging format accepted by FromCOO.
type COO = matrix.COO[float64]

// Semiring supplies the add/multiply pair the product is computed over.
type Semiring = semiring.Semiring[float64]

// Options configures a multiply.
type Options = core.Options

// Variant names one of the paper's 12 algorithm variants.
type Variant = core.Variant

// MaskRep selects the mask representation kernels probe membership with;
// see WithMaskRep.
type MaskRep = core.MaskRep

// Mask representations, re-exported from the core package: RepAuto (the
// planner picks per row block), RepCSR (sorted-row search), RepBitmap
// (per-worker bitmap, O(1) probes) and RepDense (direct indexing of
// contiguous mask rows).
const (
	RepAuto   = core.RepAuto
	RepCSR    = core.RepCSR
	RepBitmap = core.RepBitmap
	RepDense  = core.RepDense
)

// MaskRepByName resolves a representation name ("auto", "csr", "bitmap",
// "dense").
func MaskRepByName(name string) (MaskRep, error) { return core.MaskRepByName(name) }

// Sched selects how the drivers distribute rows across workers; see
// WithSched.
type Sched = core.Sched

// Row-scheduling policies, re-exported from the core package: SchedAuto
// (cost-balanced spans when the planner's row-cost profile is skewed,
// equal-row chunks otherwise), SchedEqualRow (always equal-row dynamic
// chunks) and SchedCost (cost-balanced whenever a profile exists).
const (
	SchedAuto     = core.SchedAuto
	SchedEqualRow = core.SchedEqualRow
	SchedCost     = core.SchedCost
)

// SchedByName resolves a scheduling policy name ("auto", "equal", "cost").
func SchedByName(name string) (Sched, error) { return core.SchedByName(name) }

// Algorithm families, re-exported from the core package.
const (
	MSA     = core.MSA
	Hash    = core.Hash
	MCA     = core.MCA
	Heap    = core.Heap
	HeapDot = core.HeapDot
	Inner   = core.Inner
)

// Phases, re-exported from the core package.
const (
	OnePhase = core.OnePhase
	TwoPhase = core.TwoPhase
)

// Semiring constructors.
var (
	// Arithmetic is the standard (+, ×) semiring.
	Arithmetic = semiring.Arithmetic
	// PlusPair is (+, pair): products are 1, so sums count intersections.
	PlusPair = semiring.PlusPairF
	// MinPlus is the tropical semiring for shortest paths.
	MinPlus = semiring.MinPlus
	// PlusSecond is (+, second): multiplication returns its B operand.
	PlusSecond = semiring.PlusSecond
)

// SemiringByName resolves a named float64 semiring — the vocabulary the
// wire protocol and the CLI use: "arithmetic" (the default, also the
// empty string), "plus-pair" / "plus-pair-f64", "min-plus",
// "plus-second", "plus-first", "max-times".
func SemiringByName(name string) (Semiring, error) {
	switch name {
	case "", "arithmetic":
		return Arithmetic(), nil
	case "plus-pair", "plus-pair-f64":
		return PlusPair(), nil
	case "min-plus":
		return MinPlus(), nil
	case "plus-second":
		return PlusSecond(), nil
	case "plus-first":
		return semiring.PlusFirst(), nil
	case "max-times":
		return semiring.MaxTimes(), nil
	}
	return Semiring{}, fmt.Errorf("masked: unknown semiring %q (want arithmetic, plus-pair, min-plus, plus-second, plus-first or max-times)", name)
}

// Plan is the planner's decision for one masked multiply: the variant (or
// per-row-block variants), the phase, and the statistics that drove the
// choice. Its Explain method renders a human-readable report.
type Plan = planner.Plan

// BlockStat reports what one row block of a plan's execution actually did.
type BlockStat = core.BlockStat

// CacheStats is a snapshot of a session plan cache's hit/miss/eviction
// counters and occupancy; see Session.PlanCacheStats.
type CacheStats = planner.CacheStats

// ExecStats is one observed execution of a plan — measured kernel time and
// the feedback state after recording it — stamped on the plan copies
// MultiplyAuto returns; see planner.ExecStats.
type ExecStats = planner.ExecStats

// FeedbackState is a snapshot of a cached plan's prediction-error feedback
// loop; see planner.FeedbackState.
type FeedbackState = planner.FeedbackState

// Model is the planner's parameterized cost model; sessions install a
// host-calibrated one under WithCalibration. See planner.Model.
type Model = planner.Model

// legacyCtx extracts the context a deprecated free-function call runs
// under: opt.Ctx when set, Background otherwise.
func legacyCtx(opt Options) context.Context {
	if opt.Ctx != nil {
		return opt.Ctx
	}
	return context.Background()
}

// legacyOps translates the positional Options style into descriptor
// options.
func legacyOps(opt Options, extra ...Op) []Op {
	ops := []Op{WithThreads(opt.Threads), WithGrain(opt.Grain), WithMaskRep(opt.MaskRep)}
	if opt.Complement {
		ops = append(ops, WithComplement())
	}
	return append(ops, extra...)
}

// legacyVariant resolves the old (Variant, Options.Auto) pair: Auto wins
// over the pinned variant, as the application entry points documented.
func legacyVariant(v Variant, opt Options) Op {
	if opt.Auto {
		return WithAuto()
	}
	return WithVariant(v)
}

// Multiply computes C = M .* (A·B), selecting the algorithm variant
// adaptively from the operands' density profile. Set opt.Complement for
// C = ¬M .* (A·B). The result is bit-identical to every fixed variant's.
//
// Deprecated: use Session.Multiply, which scopes the plan cache and
// workspaces and takes a context; this wrapper runs on DefaultSession.
// Scheduled for removal in v2 (no earlier than 2027-02); the last
// in-repo callers migrated in PR 10.
func Multiply(m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, error) {
	c, _, err := MultiplyAuto(m, a, b, sr, opt)
	return c, err
}

// MultiplyAuto computes C = M .* (A·B) like Multiply and returns the plan
// that was executed alongside the product.
//
// Deprecated: use Session.MultiplyAuto. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func MultiplyAuto(m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, *Plan, error) {
	return DefaultSession().MultiplyAuto(legacyCtx(opt), m, a, b,
		legacyOps(opt, WithAccumulate(sr))...)
}

// Explain analyzes C = M .* (A·B) without executing it and returns the plan
// the adaptive path would run.
//
// Deprecated: use Session.Explain. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func Explain(m *Pattern, a, b *Matrix, opt Options) *Plan {
	return planner.Analyze(m, a.Pattern(), b.Pattern(), opt)
}

// MultiplyVariant computes C = M .* (A·B) with an explicit algorithm
// variant. MCA does not support opt.Complement.
//
// Deprecated: use Session.Multiply with WithVariant. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func MultiplyVariant(v Variant, m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, error) {
	return DefaultSession().Multiply(legacyCtx(opt), m, a, b,
		legacyOps(opt, WithAccumulate(sr), WithVariant(v))...)
}

// Variants returns all 12 (algorithm, phase) combinations the paper
// evaluates.
func Variants() []Variant { return core.AllVariants() }

// VariantByName resolves a paper label such as "Hash-2P".
func VariantByName(name string) (Variant, error) { return core.VariantByName(name) }

// Flops returns flops(A·B), the multiply count of the unmasked product.
func Flops(a, b *Matrix) int64 { return core.Flops(a, b, 0) }

// --- Construction and structural helpers ---

// FromCOO builds a CSR matrix from triplets, summing duplicates.
func FromCOO(c *COO) *Matrix {
	return matrix.NewCSRFromCOO(c, func(a, b float64) float64 { return a + b })
}

// NewEmpty returns an m-by-n matrix with no entries.
func NewEmpty(m, n Index) *Matrix { return matrix.NewEmptyCSR[float64](m, n) }

// Transpose returns Aᵀ.
func Transpose(a *Matrix) *Matrix { return matrix.Transpose(a) }

// Tril returns the strictly lower triangular part of a.
func Tril(a *Matrix) *Matrix { return matrix.Tril(a) }

// Triu returns the strictly upper triangular part of a.
func Triu(a *Matrix) *Matrix { return matrix.Triu(a) }

// Sum adds up all stored values.
func Sum(a *Matrix) float64 { return matrix.Sum(a) }

// ReadMatrixMarket loads a Matrix Market file (symmetric inputs expanded).
func ReadMatrixMarket(path string) (*Matrix, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket stores a matrix in Matrix Market format.
func WriteMatrixMarket(path string, a *Matrix) error { return mmio.WriteFile(path, a) }

// --- Generators ---

// RMAT generates a symmetric Graph500-parameter R-MAT graph with 2^scale
// vertices and ~edgeFactor·2^scale undirected edges.
func RMAT(scale, edgeFactor int, seed uint64) *Matrix { return grgen.RMAT(scale, edgeFactor, seed) }

// ErdosRenyi generates a symmetric Erdős–Rényi graph with average degree
// deg.
func ErdosRenyi(n Index, deg float64, seed uint64) *Matrix {
	return grgen.ErdosRenyiSym(n, deg, seed)
}

// --- Applications (the paper's benchmarks) ---

// TCResult reports a TriangleCount run.
type TCResult = apps.TCResult

// KTrussResult reports a KTruss run.
type KTrussResult = apps.KTrussResult

// BCResult reports a BetweennessCentrality run.
type BCResult = apps.BCResult

// TriangleCount counts triangles via sum(L .* (L·L)) with degree-descending
// relabeling, using variant v (or the planner with opt.Auto).
//
// Deprecated: use Session.TriangleCount. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func TriangleCount(g *Matrix, v Variant, opt Options) (TCResult, error) {
	return DefaultSession().TriangleCount(legacyCtx(opt), g,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// KTruss computes the k-truss subgraph by iterated masked support counting,
// using variant v (or the planner with opt.Auto).
//
// Deprecated: use Session.KTruss. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func KTruss(g *Matrix, k int, v Variant, opt Options) (*Matrix, KTrussResult, error) {
	return DefaultSession().KTruss(legacyCtx(opt), g, k,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// BetweennessCentrality computes batched Brandes betweenness centrality
// contributions for the given sources, using variant v (which must support
// complemented masks — any variant except MCA).
//
// Deprecated: use Session.BC. Scheduled for removal in v2 (no earlier
// than 2027-02); the last in-repo callers migrated in PR 10.
func BetweennessCentrality(g *Matrix, sources []Index, v Variant, opt Options) (BCResult, error) {
	return DefaultSession().BC(legacyCtx(opt), g, sources,
		legacyOps(opt, legacyVariant(v, opt))...)
}

// --- Baselines (for comparison studies) ---

// SSDot is the SuiteSparse:GraphBLAS-style dot-product baseline.
//
// Deprecated: use Session.SSDot, which takes a context and can be
// cancelled. Scheduled for removal in v2 (no earlier than 2027-02); the
// last in-repo callers migrated in PR 10.
func SSDot(m *Pattern, a, b *Matrix, sr Semiring, threads int) *Matrix {
	return baseline.SSDot(m, a, b, sr, baseline.Options{Threads: threads})
}

// SSSaxpy is the SuiteSparse:GraphBLAS-style saxpy baseline (mask applied
// at gather, not during accumulation).
//
// Deprecated: use Session.SSSaxpy, which takes a context and can be
// cancelled. Scheduled for removal in v2 (no earlier than 2027-02); the
// last in-repo callers migrated in PR 10.
func SSSaxpy(m *Pattern, a, b *Matrix, sr Semiring, threads int) *Matrix {
	return baseline.SSSaxpy(m, a, b, sr, baseline.Options{Threads: threads})
}
