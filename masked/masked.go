// Package masked is the public API of this repository: parallel masked
// sparse matrix-matrix products, C = M .* (A·B), after "Parallel Algorithms
// for Masked Sparse Matrix-Matrix Products" (Milaković, Selvitopi, Nisa,
// Budimlić, Buluç; ICPP 2022).
//
// A masked product computes only the output entries whose positions appear
// in a mask matrix M (or, complemented, only positions absent from M).
// Graph algorithms use it to avoid materializing products they will throw
// away: triangle counting masks L·L by L itself, BFS-style traversals mask
// frontier expansion by the complement of the visited set.
//
// Quick start:
//
//	g := masked.RMAT(12, 16, 1)                   // a Graph500-style graph
//	l := masked.Tril(g)                           // strictly lower triangle
//	c, err := masked.Multiply(l.Pattern(), l, l,  // C = L .* (L·L)
//	    masked.PlusPair(), masked.Options{})
//	triangles := masked.Sum(c)
//
// Choosing an algorithm: Multiply routes every call through the adaptive
// planner, which applies the paper's §8 guidance as an explicit cost model —
// Inner for masks much sparser than the inputs, Heap/HeapDot for inputs much
// sparser than the mask, MSA/Hash for the comparable-density middle, and
// one-phase unless memory is tight. On row spaces with skewed local density
// (power-law graphs) the planner may emit a *mixed* plan that runs different
// variants on different row blocks; results are bit-identical regardless.
// Plans are cached across calls keyed on the static operands, so iterative
// callers (BFS, BC, MCL) skip re-analysis. MultiplyAuto additionally returns
// the Plan, whose Explain method describes the decision; MultiplyVariant
// pins one of the 12 fixed variants (6 algorithms × one/two phase).
//
// Options.Auto extends the same selection to the application entry points:
// TriangleCount, KTruss, BetweennessCentrality and the extensions accept a
// pinned variant, but with Options{Auto: true} the variant argument is
// ignored and every masked product inside the application is planned
// adaptively (with a per-engine plan cache).
//
// The graph applications of the paper's evaluation are available as
// TriangleCount, KTruss and BetweennessCentrality.
package masked

import (
	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/planner"
	"repro/internal/semiring"
)

// Index is the 32-bit row/column index type.
type Index = matrix.Index

// Matrix is a sparse matrix in CSR format with float64 values.
type Matrix = matrix.CSR[float64]

// Pattern is a structure-only matrix view; masks are patterns.
type Pattern = matrix.Pattern

// COO is the triplet staging format accepted by FromCOO.
type COO = matrix.COO[float64]

// Semiring supplies the add/multiply pair the product is computed over.
type Semiring = semiring.Semiring[float64]

// Options configures a multiply.
type Options = core.Options

// Variant names one of the paper's 12 algorithm variants.
type Variant = core.Variant

// Algorithm families, re-exported from the core package.
const (
	MSA     = core.MSA
	Hash    = core.Hash
	MCA     = core.MCA
	Heap    = core.Heap
	HeapDot = core.HeapDot
	Inner   = core.Inner
)

// Phases, re-exported from the core package.
const (
	OnePhase = core.OnePhase
	TwoPhase = core.TwoPhase
)

// Semiring constructors.
var (
	// Arithmetic is the standard (+, ×) semiring.
	Arithmetic = semiring.Arithmetic
	// PlusPair is (+, pair): products are 1, so sums count intersections.
	PlusPair = semiring.PlusPairF
	// MinPlus is the tropical semiring for shortest paths.
	MinPlus = semiring.MinPlus
	// PlusSecond is (+, second): multiplication returns its B operand.
	PlusSecond = semiring.PlusSecond
)

// Plan is the planner's decision for one masked multiply: the variant (or
// per-row-block variants), the phase, and the statistics that drove the
// choice. Its Explain method renders a human-readable report.
type Plan = planner.Plan

// BlockStat reports what one row block of a plan's execution actually did.
type BlockStat = core.BlockStat

// Multiply computes C = M .* (A·B), selecting the algorithm variant
// adaptively from the operands' density profile (the §8 selection guidance
// as a cost model; plans are cached across calls on the same operands). Set
// opt.Complement for C = ¬M .* (A·B). The result is bit-identical to every
// fixed variant's. Use MultiplyVariant to pin a variant, MultiplyAuto to
// also inspect the chosen plan.
func Multiply(m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, error) {
	c, _, err := MultiplyAuto(m, a, b, sr, opt)
	return c, err
}

// MultiplyAuto computes C = M .* (A·B) like Multiply and returns the plan
// that was executed alongside the product.
func MultiplyAuto(m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, *Plan, error) {
	p := planner.Shared.Analyze(m, a.Pattern(), b.Pattern(), opt)
	c, err := planner.Execute(p, m, a, b, sr, opt, nil)
	return c, p, err
}

// Explain analyzes C = M .* (A·B) without executing it and returns the plan
// the adaptive path would run.
func Explain(m *Pattern, a, b *Matrix, opt Options) *Plan {
	return planner.Analyze(m, a.Pattern(), b.Pattern(), opt)
}

// MultiplyVariant computes C = M .* (A·B) with an explicit algorithm
// variant. MCA does not support opt.Complement.
func MultiplyVariant(v Variant, m *Pattern, a, b *Matrix, sr Semiring, opt Options) (*Matrix, error) {
	return core.MaskedSpGEMM(v, m, a, b, sr, opt)
}

// Variants returns all 12 (algorithm, phase) combinations the paper
// evaluates.
func Variants() []Variant { return core.AllVariants() }

// VariantByName resolves a paper label such as "Hash-2P".
func VariantByName(name string) (Variant, error) { return core.VariantByName(name) }

// Flops returns flops(A·B), the multiply count of the unmasked product.
func Flops(a, b *Matrix) int64 { return core.Flops(a, b, 0) }

// --- Construction and structural helpers ---

// FromCOO builds a CSR matrix from triplets, summing duplicates.
func FromCOO(c *COO) *Matrix {
	return matrix.NewCSRFromCOO(c, func(a, b float64) float64 { return a + b })
}

// NewEmpty returns an m-by-n matrix with no entries.
func NewEmpty(m, n Index) *Matrix { return matrix.NewEmptyCSR[float64](m, n) }

// Transpose returns Aᵀ.
func Transpose(a *Matrix) *Matrix { return matrix.Transpose(a) }

// Tril returns the strictly lower triangular part of a.
func Tril(a *Matrix) *Matrix { return matrix.Tril(a) }

// Triu returns the strictly upper triangular part of a.
func Triu(a *Matrix) *Matrix { return matrix.Triu(a) }

// Sum adds up all stored values.
func Sum(a *Matrix) float64 { return matrix.Sum(a) }

// ReadMatrixMarket loads a Matrix Market file (symmetric inputs expanded).
func ReadMatrixMarket(path string) (*Matrix, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket stores a matrix in Matrix Market format.
func WriteMatrixMarket(path string, a *Matrix) error { return mmio.WriteFile(path, a) }

// --- Generators ---

// RMAT generates a symmetric Graph500-parameter R-MAT graph with 2^scale
// vertices and ~edgeFactor·2^scale undirected edges.
func RMAT(scale, edgeFactor int, seed uint64) *Matrix { return grgen.RMAT(scale, edgeFactor, seed) }

// ErdosRenyi generates a symmetric Erdős–Rényi graph with average degree
// deg.
func ErdosRenyi(n Index, deg float64, seed uint64) *Matrix {
	return grgen.ErdosRenyiSym(n, deg, seed)
}

// --- Applications (the paper's benchmarks) ---

// TCResult reports a TriangleCount run.
type TCResult = apps.TCResult

// KTrussResult reports a KTruss run.
type KTrussResult = apps.KTrussResult

// BCResult reports a BetweennessCentrality run.
type BCResult = apps.BCResult

// TriangleCount counts triangles via sum(L .* (L·L)) with degree-descending
// relabeling, using variant v.
func TriangleCount(g *Matrix, v Variant, opt Options) (TCResult, error) {
	return apps.TriangleCount(g, apps.EngineVariant(v, opt))
}

// KTruss computes the k-truss subgraph by iterated masked support counting,
// using variant v.
func KTruss(g *Matrix, k int, v Variant, opt Options) (*Matrix, KTrussResult, error) {
	return apps.KTruss(g, k, apps.EngineVariant(v, opt))
}

// BetweennessCentrality computes batched Brandes betweenness centrality
// contributions for the given sources, using variant v (which must support
// complemented masks — any variant except MCA).
func BetweennessCentrality(g *Matrix, sources []Index, v Variant, opt Options) (BCResult, error) {
	return apps.BetweennessCentrality(g, sources, apps.EngineVariant(v, opt))
}

// --- Baselines (for comparison studies) ---

// SSDot is the SuiteSparse:GraphBLAS-style dot-product baseline.
func SSDot(m *Pattern, a, b *Matrix, sr Semiring, threads int) *Matrix {
	return baseline.SSDot(m, a, b, sr, baseline.Options{Threads: threads})
}

// SSSaxpy is the SuiteSparse:GraphBLAS-style saxpy baseline (mask applied
// at gather, not during accumulation).
func SSSaxpy(m *Pattern, a, b *Matrix, sr Semiring, threads int) *Matrix {
	return baseline.SSSaxpy(m, a, b, sr, baseline.Options{Threads: threads})
}
