package masked

import (
	"math"
	"path/filepath"
	"testing"
)

func TestMultiplyQuickstart(t *testing.T) {
	g := RMAT(8, 8, 1)
	l := Tril(g)
	c, err := Multiply(l.Pattern(), l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() > l.NNZ() {
		t.Fatal("masked output cannot exceed mask")
	}
	// Every variant agrees with the default.
	for _, v := range Variants() {
		ci, err := MultiplyVariant(v, l.Pattern(), l, l, PlusPair(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ci.NNZ() != c.NNZ() || Sum(ci) != Sum(c) {
			t.Fatalf("%s disagrees", v.Name())
		}
	}
}

func TestVariantLookup(t *testing.T) {
	if len(Variants()) != 12 {
		t.Fatal("want 12 variants")
	}
	v, err := VariantByName("Heap-2P")
	if err != nil || v.Name() != "Heap-2P" {
		t.Fatal("lookup failed")
	}
	if _, err := VariantByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestApplications(t *testing.T) {
	g := ErdosRenyi(300, 8, 2)
	v, _ := VariantByName("MSA-1P")
	tc, err := TriangleCount(g, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Triangles < 0 {
		t.Fatal("negative triangles")
	}
	truss, kres, err := KTruss(g, 4, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truss.NNZ() > g.NNZ() || kres.Iterations < 1 {
		t.Fatal("k-truss must prune")
	}
	bc, err := BetweennessCentrality(g, []Index{0, 10, 20}, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Scores) != int(g.NRows) {
		t.Fatal("BC score length")
	}
	for _, s := range bc.Scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatal("invalid BC score")
		}
	}
}

func TestBaselinesExposed(t *testing.T) {
	g := ErdosRenyi(100, 6, 3)
	l := Tril(g)
	want, err := Multiply(l.Pattern(), l, l, Arithmetic(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := SSDot(l.Pattern(), l, l, Arithmetic(), 2)
	sax := SSSaxpy(l.Pattern(), l, l, Arithmetic(), 2)
	if dot.NNZ() != want.NNZ() || sax.NNZ() != want.NNZ() {
		t.Fatal("baseline nnz mismatch")
	}
	if Sum(dot) != Sum(want) || Sum(sax) != Sum(want) {
		t.Fatal("baseline values mismatch")
	}
}

func TestConstructionHelpers(t *testing.T) {
	a := FromCOO(&COO{
		NRows: 2, NCols: 2,
		Row: []Index{0, 0, 1},
		Col: []Index{1, 1, 0},
		Val: []float64{1, 2, 5},
	})
	if a.NNZ() != 2 {
		t.Fatal("duplicates must sum")
	}
	if Sum(a) != 8 {
		t.Fatal("sum")
	}
	at := Transpose(a)
	if at.NNZ() != 2 {
		t.Fatal("transpose")
	}
	e := NewEmpty(3, 4)
	if e.NNZ() != 0 || e.NRows != 3 {
		t.Fatal("empty")
	}
	if Triu(a).NNZ() != 1 || Tril(a).NNZ() != 1 {
		t.Fatal("tri split")
	}
	if Flops(a, at) <= 0 {
		t.Fatal("flops")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := ErdosRenyi(50, 4, 9)
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := WriteMatrixMarket(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != g.NNZ() || Sum(back) != Sum(g) {
		t.Fatal("round trip")
	}
}

func TestComplementOption(t *testing.T) {
	g := ErdosRenyi(80, 6, 4)
	c, err := Multiply(g.Pattern(), g, g, Arithmetic(), Options{Complement: true})
	if err != nil {
		t.Fatal(err)
	}
	// Complement output must not overlap the mask.
	mcols := map[[2]Index]bool{}
	for i := Index(0); i < g.NRows; i++ {
		for _, j := range g.Pattern().Row(i) {
			mcols[[2]Index{i, j}] = true
		}
	}
	for i := Index(0); i < c.NRows; i++ {
		cols, _ := c.Row(i)
		for _, j := range cols {
			if mcols[[2]Index{i, j}] {
				t.Fatal("complement output overlaps mask")
			}
		}
	}
	// MCA rejects complement through the facade too.
	mca, _ := VariantByName("MCA-1P")
	if _, err := MultiplyVariant(mca, g.Pattern(), g, g, Arithmetic(), Options{Complement: true}); err == nil {
		t.Fatal("MCA must reject complement")
	}
}

func TestMultiplyAutoPlanAndExplain(t *testing.T) {
	g := RMAT(9, 8, 4)
	l := Tril(g)
	c, plan, err := MultiplyAuto(l.Pattern(), l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MultiplyVariant(Variant{Alg: MSA, Phase: OnePhase}, l.Pattern(), l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Sum(c) != Sum(want) {
		t.Fatalf("auto sum %v != MSA-1P sum %v", Sum(c), Sum(want))
	}
	if plan == nil || len(plan.Blocks) == 0 {
		t.Fatal("MultiplyAuto returned no plan")
	}
	exp := plan.Explain()
	if exp == "" {
		t.Fatal("empty Explain")
	}
	// Explain without executing agrees on the block structure.
	if dry := Explain(l.Pattern(), l, l, Options{}); len(dry.Blocks) != len(plan.Blocks) {
		t.Fatalf("Explain blocks %d != executed plan blocks %d", len(dry.Blocks), len(plan.Blocks))
	}
}

func TestOptionsAutoRoutesApplications(t *testing.T) {
	g := RMAT(8, 8, 5)
	// The pinned variant must be ignored under Auto: pass MCA (which cannot
	// run the complemented masks BC needs) and expect success anyway.
	v := Variant{Alg: MCA, Phase: OnePhase}
	fixed, err := TriangleCount(g, Variant{Alg: MSA, Phase: OnePhase}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := TriangleCount(g, v, Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Triangles != fixed.Triangles {
		t.Fatalf("auto TC %d != fixed TC %d", auto.Triangles, fixed.Triangles)
	}
	sources := []Index{0, 1, 2}
	bcFixed, err := BetweennessCentrality(g, sources, Variant{Alg: MSA, Phase: OnePhase}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bcAuto, err := BetweennessCentrality(g, sources, v, Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bcFixed.Scores {
		if math.Abs(bcFixed.Scores[i]-bcAuto.Scores[i]) > 1e-9 {
			t.Fatalf("BC scores diverge at %d: %v vs %v", i, bcFixed.Scores[i], bcAuto.Scores[i])
		}
	}
}
