package masked

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/matrix"
	"repro/internal/planner"
)

// Streaming (incremental) execution. A DeltaMatrix overlays a base graph
// with batched edge insert/delete logs; a DeltaProduct tracks one masked
// product over such overlays and Session.Update / Session.MultiplyDelta
// recompute only the dirty-row frontier of each batch — the rows of M or A
// that changed plus the rows whose A columns hit changed rows of B —
// splicing the recomputed rows into the cached output. Rows outside the
// frontier reuse their previously computed output unchanged; the frontier
// rows re-plan through the ordinary planner stats path on the extracted
// sub-operands. Because every kernel produces bit-identical rows for
// identical inputs, the incremental output is bit-identical to a
// from-scratch multiply on the compacted operands (masked/stream_test.go
// and internal/core/delta_equiv_test.go assert this per stream prefix).

// Update is one streamed edge mutation: set entry (Row, Col) to Val, or
// remove it when Delete is true. Deletes of absent entries are no-ops.
type Update = matrix.Update[float64]

// DeltaMatrix is a dynamic sparse matrix: an immutable base CSR overlaid
// with batched per-row insert/delete logs and a bounded merge threshold
// (see matrix.DeltaCSR). Build one with NewDeltaMatrix.
type DeltaMatrix = matrix.DeltaCSR[float64]

// NewDeltaMatrix wraps base — which must have sorted, duplicate-free rows
// and must not be mutated afterwards — in a delta overlay for streaming
// updates.
func NewDeltaMatrix(base *Matrix) (*DeltaMatrix, error) {
	return matrix.NewDeltaCSR(base)
}

// DeltaOperand selects which operand of a DeltaProduct an update batch
// targets (UpdateOperand); Update itself always targets DeltaAll.
type DeltaOperand = core.DeltaOperand

// Delta operand selectors.
const (
	// DeltaAll applies a batch to every distinct overlay of the product —
	// the graph-stream mode, where the mask and both operands are views of
	// one evolving graph.
	DeltaAll = core.DeltaAll
	// DeltaM targets the mask overlay only.
	DeltaM = core.DeltaM
	// DeltaA targets the A overlay only.
	DeltaA = core.DeltaA
	// DeltaB targets the B overlay only.
	DeltaB = core.DeltaB
)

// DeltaProduct is an incrementally maintained masked product
// C = M .* (A·B) over delta overlays, created by Session.NewDeltaProduct.
// Its descriptor (variant or Auto, complement, semiring, mask rep,
// scheduler, threads) is pinned at creation so every refresh of the
// product computes the same function. Update, MultiplyDelta, Compact and
// Output serialize on an internal lock, so a DeltaProduct is safe for
// concurrent use alongside the session's other operations.
type DeltaProduct struct {
	mu    sync.Mutex
	owner *Session
	d     opSpec
	inner *core.DeltaProduct[float64]
}

// NewDeltaProduct tracks C = M .* (A·B) over the given overlays, which may
// alias each other (pass the same overlay three times for graph workloads
// like streaming triangle counting). The options pin the product's
// descriptor on top of the session defaults; the first Update or
// MultiplyDelta computes the full product, later calls recompute only
// dirty frontiers. All content mutations must flow through
// Update/UpdateOperand — mutating an overlay directly desynchronizes the
// product's dirty-row tracking.
func (s *Session) NewDeltaProduct(m, a, b *DeltaMatrix, opts ...Op) *DeltaProduct {
	return &DeltaProduct{
		owner: s,
		d:     s.def.apply(opts),
		inner: core.NewDeltaProduct(m, a, b),
	}
}

// Output returns the product's last refreshed output (nil before the first
// Update/MultiplyDelta). Callers must not mutate it.
func (p *DeltaProduct) Output() *Matrix {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inner.Output()
}

// Compact folds every overlay's pending logs into fresh bases. Content —
// and the next refresh's output — is unchanged; use it to bound
// merged-row read cost on long streams (see PERFORMANCE.md).
func (p *DeltaProduct) Compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inner.Compact()
}

// Update applies one batch of edge updates to every distinct overlay of
// the product (the graph-stream mode) and returns the refreshed output,
// recomputing only the dirty-row frontier. A batch with an out-of-range
// index is rejected whole, mutating nothing. A panic during the refresh is
// recovered at this boundary into a *PanicError with the batch retained in
// the dirty frontier, so a retried MultiplyDelta completes the update.
func (s *Session) Update(ctx context.Context, p *DeltaProduct, batch []Update) (*Matrix, error) {
	return s.UpdateOperand(ctx, p, DeltaAll, batch)
}

// UpdateOperand is Update targeting one operand overlay (DeltaM, DeltaA,
// DeltaB) instead of all of them — for products whose mask or operands
// evolve independently.
func (s *Session) UpdateOperand(ctx context.Context, p *DeltaProduct, op DeltaOperand, batch []Update) (*Matrix, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := s.owns(p); err != nil {
		return nil, err
	}
	if err := p.inner.Apply(op, batch); err != nil {
		return nil, err
	}
	return s.refreshLocked(ctx, p)
}

// MultiplyDelta brings the product's output up to date with its overlays'
// current content: the first call computes the full product through the
// session's plan cache, later calls recompute only the accumulated dirty
// frontier (no-op when clean). It is Update with an empty batch — use it
// to (re)compute after a recovered mid-update panic or after seeding.
func (s *Session) MultiplyDelta(ctx context.Context, p *DeltaProduct) (*Matrix, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := s.owns(p); err != nil {
		return nil, err
	}
	return s.refreshLocked(ctx, p)
}

// owns guards against a product refreshing through a foreign session,
// which would silently split plan-cache and workspace ownership.
func (s *Session) owns(p *DeltaProduct) error {
	if p.owner != s {
		return fmt.Errorf("masked: delta product belongs to another session")
	}
	return nil
}

// refreshLocked refreshes p under its lock, recovering panics (the
// delta.apply chaos point and kernel-path panics alike) at this boundary:
// the dirty frontier survives a panic, so the caller can retry.
func (s *Session) refreshLocked(ctx context.Context, p *DeltaProduct) (c *Matrix, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			c, err = nil, newPanicError(v)
		}
	}()
	// Chaos point: a panic after the batch landed in the overlays but
	// before the incremental recompute. Inert unless armed.
	if faultinject.Fire(faultinject.PointDeltaApply) {
		panic("faultinject: " + faultinject.PointDeltaApply)
	}
	first := p.inner.Output() == nil
	c, _, err = p.inner.Refresh(func(msub *Pattern, asub, b *Matrix) (*Matrix, error) {
		o := s.options(ctx, p.d)
		if first {
			// The full initial product goes through the ordinary session
			// path: plan cache, feedback recording, chaos point.
			c, _, err := s.execute(p.d, o, msub, asub, b)
			return c, err
		}
		return s.deltaExecute(p.d, o, msub, asub, b)
	})
	return c, err
}

// deltaExecute runs one frontier sub-product. It mirrors Session.execute's
// two paths, but plans the extracted sub-operands directly with the
// session's cost model instead of through the plan cache: frontier
// sub-operands are freshly materialized every batch, so caching their
// plans would only churn the LRU that iterative full products rely on.
// Unchanged rows never reach this path at all — their cached output rows
// (and the full product's cached plan) are reused as-is.
func (s *Session) deltaExecute(d opSpec, o Options, m *Pattern, a, b *Matrix) (*Matrix, error) {
	if faultinject.Fire(faultinject.PointKernelPanic) {
		panic("faultinject: " + faultinject.PointKernelPanic)
	}
	if d.pinned {
		if d.sched == SchedCost && o.RowCosts == nil {
			o.RowCosts = core.ComputeRowCosts(m, a.Pattern(), b.Pattern(), o.Workers())
		}
		return core.MaskedSpGEMM(d.variant, m, a, b, d.semiring(), o)
	}
	pl := planner.AnalyzeModel(m, a.Pattern(), b.Pattern(), o, s.model)
	return planner.Execute(pl, m, a, b, d.semiring(), o, nil)
}
