package masked

// Unified per-session observability. PR 5 grew three separate accessors —
// PlanCacheStats, ServingStats, and the workspace-level driver pool
// counters — and every consumer (the /metrics exporter, the bench
// studies, dashboards) had to reach into all three. Session.Stats returns
// the one coherent snapshot they share instead. The old accessors remain;
// Stats is the preferred surface.

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// ArbiterStats is a snapshot of the serving arbiter's admission and
// budget accounting; see Session.ServingStats and parallel.ArbiterStats.
type ArbiterStats = parallel.ArbiterStats

// DriverPoolStats is a snapshot of the session workspace's driver buffer
// pool counters: Gets counts fetches, Misses the subset that had to
// allocate (zero growth once the session is warm).
type DriverPoolStats = core.PoolStats

// CalibrationStats describes the cost model a session plans with — fixed at
// NewSession, so every field is constant for the session's lifetime.
type CalibrationStats struct {
	// Mode is the session's calibration mode ("off", "auto", "force").
	Mode string
	// Source is where the model's coefficients came from: "default" (the
	// hand-tuned §8 constants), "probed" (this process ran the calibration
	// probes) or "host-cache" (a previous process's fit for this host).
	Source string
	// NsPerUnit is the measured nanoseconds one model cost unit corresponds
	// to (1 for the dimensionless default model).
	NsPerUnit float64
	// CostPerWorker is the admission cost unit the serving arbiter divides
	// asks by.
	CostPerWorker int64
	// SaveError is why persisting a freshly probed model to the per-host
	// cache failed ("" when it succeeded or nothing was saved). A nonempty
	// value means every future process on this host re-probes (~10 ms) until
	// the underlying problem — usually an unwritable cache dir — is fixed.
	SaveError string
}

// Stats is one unified snapshot of a session's observability counters:
// the plan cache, the serving arbiter, the driver buffer pools, and the
// session's calibration. The monotonic fields within each component (hits,
// misses, evictions, records, replans, admitted, steals, top-ups,
// rejections, pool gets/misses) can be differenced between two snapshots to
// rate a serving window; the rest describe the moment of the snapshot.
type Stats struct {
	// Cache is the plan cache snapshot (Session.PlanCacheStats).
	Cache CacheStats
	// Arbiter is the serving arbiter snapshot (Session.ServingStats).
	Arbiter ArbiterStats
	// DriverPool is the driver buffer pool snapshot.
	DriverPool DriverPoolStats
	// Calibration describes the session's cost model.
	Calibration CalibrationStats
	// Panics counts request-boundary panics the serving layer recovered
	// (monotonic; see Session.Panics).
	Panics int64
}

// Stats returns one snapshot of all the session's observability counters.
// The three components are read in sequence, not atomically with respect
// to each other — fine for dashboards and rate computation, which is what
// snapshots are for.
func (s *Session) Stats() Stats {
	return Stats{
		Cache:      s.cache.Stats(),
		Arbiter:    s.arb.Stats(),
		DriverPool: s.ws.PoolStatsSnapshot(),
		Panics:     s.panics.Load(),
		Calibration: CalibrationStats{
			Mode:          s.def.calib.String(),
			Source:        s.model.Source,
			NsPerUnit:     s.model.NsPerUnit,
			CostPerWorker: s.model.CostPerWorker,
			SaveError:     s.model.SaveErr,
		},
	}
}
