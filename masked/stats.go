package masked

// Unified per-session observability. PR 5 grew three separate accessors —
// PlanCacheStats, ServingStats, and the workspace-level driver pool
// counters — and every consumer (the /metrics exporter, the bench
// studies, dashboards) had to reach into all three. Session.Stats returns
// the one coherent snapshot they share instead. The old accessors remain;
// Stats is the preferred surface.

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// ArbiterStats is a snapshot of the serving arbiter's admission and
// budget accounting; see Session.ServingStats and parallel.ArbiterStats.
type ArbiterStats = parallel.ArbiterStats

// DriverPoolStats is a snapshot of the session workspace's driver buffer
// pool counters: Gets counts fetches, Misses the subset that had to
// allocate (zero growth once the session is warm).
type DriverPoolStats = core.PoolStats

// Stats is one unified snapshot of a session's observability counters:
// the plan cache, the serving arbiter, and the driver buffer pools. The
// monotonic fields within each component (hits, misses, evictions,
// admitted, steals, top-ups, rejections, pool gets/misses) can be
// differenced between two snapshots to rate a serving window; the rest
// describe the moment of the snapshot.
type Stats struct {
	// Cache is the plan cache snapshot (Session.PlanCacheStats).
	Cache CacheStats
	// Arbiter is the serving arbiter snapshot (Session.ServingStats).
	Arbiter ArbiterStats
	// DriverPool is the driver buffer pool snapshot.
	DriverPool DriverPoolStats
}

// Stats returns one snapshot of all the session's observability counters.
// The three components are read in sequence, not atomically with respect
// to each other — fine for dashboards and rate computation, which is what
// snapshots are for.
func (s *Session) Stats() Stats {
	return Stats{
		Cache:      s.cache.Stats(),
		Arbiter:    s.arb.Stats(),
		DriverPool: s.ws.PoolStatsSnapshot(),
	}
}
