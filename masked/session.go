package masked

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/planner"
)

// Session is the unit of resource ownership of this package: it holds the
// plan cache, the thread budget, and pooled accumulator workspaces that a
// sequence of masked products shares. The paper's applications — and the
// serving workloads the repository grows toward — are iterative loops that
// re-multiply against a static graph; scoping this state to an explicit
// session (instead of process-wide globals and per-call allocations) makes
// each loop's cost proportional to the multiplies it runs, keeps separate
// workloads isolated from each other, and lets every operation be cancelled
// mid-multiply through its context.
//
//	s := masked.NewSession(masked.WithThreads(8))
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	c, err := s.Multiply(ctx, l.Pattern(), l, l, masked.WithAccumulate(masked.PlusPair()))
//
// Operations are configured by descriptor options (Op): WithVariant pins
// one of the paper's 12 variants, WithAuto (the default) routes through the
// adaptive planner, WithComplement flips the mask, WithThreads/WithGrain
// bound parallelism, WithMaskRep pins the mask representation (auto by
// default), WithSched selects the row-scheduling policy (cost-balanced vs
// equal-row, auto by default), WithAccumulate selects the semiring of
// Multiply.
// Options passed to NewSession become the session's defaults; options
// passed to an operation override them for that call. The same descriptor
// vocabulary drives Multiply, the application methods (TriangleCount,
// KTruss, BC, BFS, MCL, CosineSimilarity, ...) and the baseline engines
// (SSDot, SSSaxpy).
//
// A Session is safe for concurrent use by multiple goroutines and needs no
// Close: its workspaces are reclaimed by the garbage collector when the
// session becomes unreachable. Beyond plain concurrent method calls, the
// serving layer (MultiplyBatch, Serve) admits several multiplies at once
// and splits the session's thread budget across them: each request's worker
// share is arbitrated from the planner's cost estimate (WithInflight bounds
// concurrency, WithPlanCacheCapacity bounds the plan cache), and identical
// concurrent requests are coalesced into one computation.
type Session struct {
	def   opSpec
	ws    *core.Workspaces
	cache *planner.Cache
	// model is the cost model the session plans with: DefaultModel when
	// calibration is off, the host-calibrated model otherwise. Immutable
	// after NewSession.
	model *planner.Model
	// arb splits the session thread budget across concurrent batch/serve
	// requests; one arbiter per session, so overlapping MultiplyBatch and
	// Serve calls share one budget instead of multiplying it.
	arb *parallel.Arbiter
	// flight coalesces identical in-flight requests (single-flight).
	flight   map[flightKey]*flightCall
	flightMu sync.Mutex
	// panics counts request-boundary panics the serving layer recovered
	// (Session.Panics, Stats.Panics).
	panics atomic.Int64
}

// Op configures a session or one operation. Ops are created by the With*
// constructors (WithVariant, WithAuto, WithComplement, WithThreads,
// WithGrain, WithAccumulate) and applied in order, so later options win.
type Op func(*opSpec)

// opSpec is the resolved descriptor an operation runs with.
type opSpec struct {
	variant    Variant
	pinned     bool // WithVariant: run variant instead of planning
	complement bool
	threads    int
	grain      int
	inflight   int // WithInflight: serving admission cap
	cacheCap   int // WithPlanCacheCapacity: plan cache bound (NewSession only)
	maskRep    MaskRep
	sched      Sched
	sr         Semiring
	hasSR      bool
	calib      Calibration // WithCalibration: cost-model calibration mode (NewSession only)
}

func (d opSpec) apply(opts []Op) opSpec {
	for _, o := range opts {
		o(&d)
	}
	return d
}

// semiring returns the descriptor's semiring (Arithmetic when unset).
func (d opSpec) semiring() Semiring {
	if d.hasSR {
		return d.sr
	}
	return Arithmetic()
}

// WithVariant pins one of the paper's 12 algorithm variants instead of
// letting the planner choose. All variants produce bit-identical results;
// pinning only fixes the execution strategy.
func WithVariant(v Variant) Op {
	return func(d *opSpec) { d.variant, d.pinned = v, true }
}

// WithAuto routes the operation through the adaptive planner (the §8 cost
// model with the session's plan cache) — the default; useful to override a
// session-level WithVariant for one call.
func WithAuto() Op {
	return func(d *opSpec) { d.pinned = false }
}

// WithComplement computes against the complement of the mask:
// C = ¬M .* (A·B). MCA variants do not support complemented masks.
func WithComplement() Op {
	return func(d *opSpec) { d.complement = true }
}

// WithThreads bounds the operation to n worker goroutines (0 = GOMAXPROCS).
// One thread budget governs the paper's variants and the baselines alike.
func WithThreads(n int) Op {
	return func(d *opSpec) { d.threads = n }
}

// WithGrain sets the dynamic-scheduling chunk size in rows (0 = default).
func WithGrain(n int) Op {
	return func(d *opSpec) { d.grain = n }
}

// WithMaskRep pins the mask representation kernels probe membership with:
// RepCSR (sorted-row search), RepBitmap (per-worker bitmap, O(1) probes for
// dense masks) or RepDense (direct indexing of contiguous mask rows). The
// default RepAuto lets the planner pick per row block from its density
// statistics; kernels that cannot exploit a pinned representation demote it.
// Results are bit-identical under every representation.
func WithMaskRep(r MaskRep) Op {
	return func(d *opSpec) { d.maskRep = r }
}

// WithSched selects the row-scheduling policy of the drivers: SchedAuto
// (the default) claims equal-flops spans over the planner's per-row cost
// profile when the profile is heavily skewed (power-law rows) and equal-row
// dynamic chunks otherwise; SchedEqualRow pins the equal-row scheduler;
// SchedCost forces cost-balanced spans whenever a profile exists. On the
// pinned-variant path (WithVariant), SchedCost gathers the profile with one
// extra O(nnz(A)) sweep per call. Scheduling never changes results.
func WithSched(s Sched) Op {
	return func(d *opSpec) { d.sched = s }
}

// WithAccumulate selects the semiring Multiply accumulates over (default
// Arithmetic). The application methods fix their own semirings and ignore
// it.
func WithAccumulate(sr Semiring) Op {
	return func(d *opSpec) { d.hasSR, d.sr = true, sr }
}

// WithInflight bounds how many requests MultiplyBatch and Serve run
// concurrently. On NewSession it sets the session-wide admission cap (the
// arbiter refuses to start more multiplies than this at once, whatever mix
// of batch and streaming calls is active); on a MultiplyBatch or Serve call
// it additionally bounds that call's own concurrency. 0 (the default)
// admits one request per budgeted worker thread — more in-flight CPU-bound
// requests than workers cannot raise throughput. Single multiplies ignore
// it.
func WithInflight(k int) Op {
	return func(d *opSpec) { d.inflight = k }
}

// Calibration selects how a session obtains its planner cost model; see
// WithCalibration.
type Calibration int

const (
	// CalibrationOff (the default) plans with the hand-tuned §8 model — the
	// dimensionless unit costs every prior release used. Fully deterministic:
	// no probes run, no files are read.
	CalibrationOff Calibration = iota
	// CalibrationAuto plans with the host-calibrated model: the per-host
	// cached fit when one exists, else a one-time ~10 ms probe pass whose
	// result is cached for future sessions (planner.HostModel).
	CalibrationAuto
	// CalibrationForce re-runs the calibration probes unconditionally,
	// overwriting the per-host cache — for benchmarking after hardware or
	// toolchain changes.
	CalibrationForce
)

// String returns the flag spelling of the mode ("off", "auto", "force").
func (c Calibration) String() string {
	switch c {
	case CalibrationAuto:
		return "auto"
	case CalibrationForce:
		return "force"
	default:
		return "off"
	}
}

// ParseCalibration parses a -calibrate flag value ("off", "auto", "force").
func ParseCalibration(s string) (Calibration, error) {
	switch s {
	case "off", "":
		return CalibrationOff, nil
	case "auto":
		return CalibrationAuto, nil
	case "force":
		return CalibrationForce, nil
	}
	return CalibrationOff, fmt.Errorf("masked: unknown calibration mode %q (want off, auto or force)", s)
}

// WithCalibration selects the session's cost-model calibration mode:
// CalibrationOff (the default) keeps the hand-tuned dimensionless model,
// CalibrationAuto installs the host's measured cost coefficients (cached per
// host, probed once when absent), CalibrationForce re-probes unconditionally.
// Calibration changes only which plan the planner picks and how many workers
// the serving arbiter grants — results are bit-identical under every mode.
// It takes effect on NewSession only and is ignored on individual operations
// (a session's model is fixed at construction, so its cached plans are all
// priced consistently).
func WithCalibration(c Calibration) Op {
	return func(d *opSpec) { d.calib = c }
}

// WithPlanCacheCapacity bounds the session plan cache to roughly n entries
// (LRU-evicted per shard; 0 = planner.DefaultCacheCapacity). It only takes
// effect on NewSession — the cache is constructed once per session — and is
// ignored on individual operations.
func WithPlanCacheCapacity(n int) Op {
	return func(d *opSpec) { d.cacheCap = n }
}

// NewSession returns a session with its own plan cache, workspace arena and
// serving arbiter. The given options become the session's defaults for
// every operation.
func NewSession(opts ...Op) *Session {
	def := opSpec{}.apply(opts)
	s := &Session{
		def:    def,
		ws:     core.NewWorkspaces(),
		cache:  planner.NewCacheCapacity(def.cacheCap),
		arb:    parallel.NewArbiter(def.threads, def.inflight),
		flight: make(map[flightKey]*flightCall),
	}
	s.model = planner.DefaultModel()
	if def.calib != CalibrationOff {
		s.model = planner.HostModel(def.calib == CalibrationForce)
		s.cache.SetModel(s.model)
		s.arb.SetCostPerWorker(s.model.CostPerWorker)
	}
	return s
}

// defaultSession backs the deprecated free functions.
var (
	defaultOnce    sync.Once
	defaultSession *Session
)

// DefaultSession returns the lazily-created process-wide session the
// deprecated free functions run on. New code should create its own
// sessions; separate workloads sharing the default session contend for one
// plan cache and workspace arena.
func DefaultSession() *Session {
	defaultOnce.Do(func() { defaultSession = NewSession() })
	return defaultSession
}

// options resolves a descriptor into the core execution options, attaching
// the session's workspaces and the operation's context.
func (s *Session) options(ctx context.Context, d opSpec) Options {
	return Options{
		Threads:    d.threads,
		Grain:      d.grain,
		Complement: d.complement,
		MaskRep:    d.maskRep,
		Sched:      d.sched,
		Ctx:        ctx,
		Workspaces: s.ws,
	}
}

// engine builds the apps engine a descriptor names: the pinned variant, or
// the planner-backed Auto engine sharing the session's plan cache.
func (s *Session) engine(ctx context.Context, d opSpec) apps.Engine {
	as := (&apps.Session{Opt: s.options(ctx, d), Cache: s.cache})
	if d.pinned {
		return as.EngineVariant(d.variant)
	}
	return as.EngineAuto()
}

// Multiply computes C = M .* (A·B) (or the complement form under
// WithComplement). By default the variant is planned adaptively with the
// session's cache; WithVariant pins it. The semiring defaults to Arithmetic
// (WithAccumulate overrides). Cancelling ctx stops the product mid-multiply
// and returns ctx.Err().
func (s *Session) Multiply(ctx context.Context, m *Pattern, a, b *Matrix, opts ...Op) (*Matrix, error) {
	c, _, err := s.MultiplyAuto(ctx, m, a, b, opts...)
	return c, err
}

// MultiplyAuto is Multiply returning also the executed plan (nil when the
// variant was pinned with WithVariant).
func (s *Session) MultiplyAuto(ctx context.Context, m *Pattern, a, b *Matrix, opts ...Op) (*Matrix, *Plan, error) {
	d := s.def.apply(opts)
	return s.execute(d, s.options(ctx, d), m, a, b)
}

// execute runs one resolved multiply under the given options: the pinned
// variant (gathering a cost profile explicitly when SchedCost asks for one,
// since the pinned path bypasses the planner), or the planner path through
// the session cache. The single-call entry points and the serving layer
// both run through it, so the two paths cannot drift apart.
func (s *Session) execute(d opSpec, o Options, m *Pattern, a, b *Matrix) (*Matrix, *Plan, error) {
	// Chaos point: a panic on the kernel path, under the serving layer's
	// recover barriers and the arbiter grant. Inert unless armed.
	if faultinject.Fire(faultinject.PointKernelPanic) {
		panic("faultinject: " + faultinject.PointKernelPanic)
	}
	if d.pinned {
		if d.sched == SchedCost && o.RowCosts == nil {
			o.RowCosts = core.ComputeRowCosts(m, a.Pattern(), b.Pattern(), o.Workers())
		}
		c, err := core.MaskedSpGEMM(d.variant, m, a, b, d.semiring(), o)
		return c, nil, err
	}
	p := s.cache.Analyze(m, a.Pattern(), b.Pattern(), o)
	var stats []core.BlockStat
	c, err := planner.Execute(p, m, a, b, d.semiring(), o, &stats)
	q := stampOps(p, d.semiring())
	if err == nil {
		// Close the feedback loop: fold the drivers' measured per-block
		// kernel time into the cached entry's prediction-error state, and
		// stamp the observation on the returned copy (never the shared
		// cached plan) so Explain can show predicted vs actual.
		var actual int64
		blockNs := make([]int64, len(stats))
		for i, bs := range stats {
			actual += bs.ElapsedNs
			blockNs[i] = bs.ElapsedNs
		}
		fb, _ := s.cache.Record(p, actual)
		q = q.WithExec(planner.ExecStats{ActualNs: actual, BlockNs: blockNs, Feedback: fb})
	}
	return c, q, err
}

// stampOps returns a shallow copy of p labeled with the operator path
// (core.OpsInlined / core.OpsFuncPtr) the kernels take for sr. Plans are
// cached per operand shape, not per semiring, and cache hits hand out
// shared pointers — so the label goes on a copy, never on the cached plan.
func stampOps(p *Plan, sr Semiring) *Plan {
	if p == nil {
		return nil
	}
	q := *p
	q.Ops = core.OpsMode(sr)
	return &q
}

// Explain analyzes C = M .* (A·B) without executing it and returns the
// plan the session's adaptive path would run (consulting and filling the
// session's plan cache).
func (s *Session) Explain(m *Pattern, a, b *Matrix, opts ...Op) *Plan {
	d := s.def.apply(opts)
	p := s.cache.Analyze(m, a.Pattern(), b.Pattern(), s.options(context.Background(), d))
	return stampOps(p, d.semiring())
}

// PlanCacheStats returns a snapshot of the session plan cache's counters:
// hits, misses, evictions (all monotonic over the session's lifetime, so two
// snapshots can be differenced to rate a serving window), the resident entry
// count, and the configured capacity and shard count.
func (s *Session) PlanCacheStats() CacheStats { return s.cache.Stats() }

// --- Applications ---

// TriangleCount counts triangles via sum(L .* (L·L)) with degree-descending
// relabeling (§8.2).
func (s *Session) TriangleCount(ctx context.Context, g *Matrix, opts ...Op) (TCResult, error) {
	d := s.def.apply(opts)
	return apps.TriangleCount(g, s.engine(ctx, d))
}

// KTruss computes the k-truss subgraph by iterated masked support counting
// (§8.3). Each round's masked product runs on the session's workspaces and
// plan cache; cancelling ctx aborts between or inside rounds.
func (s *Session) KTruss(ctx context.Context, g *Matrix, k int, opts ...Op) (*Matrix, KTrussResult, error) {
	d := s.def.apply(opts)
	return apps.KTruss(g, k, s.engine(ctx, d))
}

// BC computes batched Brandes betweenness centrality contributions for the
// given sources (§8.4). The forward sweep uses complemented masks, so MCA
// variants return an error.
func (s *Session) BC(ctx context.Context, g *Matrix, sources []Index, opts ...Op) (BCResult, error) {
	d := s.def.apply(opts)
	return apps.BetweennessCentrality(g, sources, s.engine(ctx, d))
}

// BFS runs a single-source direction-optimized breadth-first search; every
// push/pull step honors ctx and reuses the session's workspaces.
//
// BFS is built on the vector primitive (SpGEVM), whose kernel is chosen
// per step by the push/pull direction heuristic — WithVariant/WithAuto do
// not apply here; WithThreads and WithGrain do. Use MultiSourceBFS to run
// a traversal on a pinned SpGEMM variant.
func (s *Session) BFS(ctx context.Context, g *Matrix, source Index, opts ...Op) (BFSResult, error) {
	d := s.def.apply(opts)
	return apps.BFS(g, source, s.options(ctx, d))
}

// MultiSourceBFS runs BFS from every source simultaneously with
// complement-masked SpGEMM.
func (s *Session) MultiSourceBFS(ctx context.Context, g *Matrix, sources []Index, opts ...Op) (MultiSourceBFSResult, error) {
	d := s.def.apply(opts)
	return apps.MultiSourceBFS(g, sources, s.engine(ctx, d))
}

// MCL runs Markov clustering; the masked expansion (o.MaskedExpansion)
// runs through the session. An unset o.Threads inherits the session's
// thread budget.
func (s *Session) MCL(ctx context.Context, g *Matrix, o MCLOptions, opts ...Op) (MCLResult, error) {
	d := s.def.apply(opts)
	if o.Threads == 0 {
		o.Threads = d.threads
	}
	return apps.MCL(g, o, s.engine(ctx, d))
}

// CosineSimilarity scores the candidate item pairs of F·Fᵀ with cosine
// normalization via masked SpGEMM.
func (s *Session) CosineSimilarity(ctx context.Context, f *Matrix, candidates *Pattern, opts ...Op) (SimilarityResult, error) {
	d := s.def.apply(opts)
	return apps.CosineSimilarity(f, candidates, s.engine(ctx, d))
}

// --- Baseline engines ---

// SSDot runs the SuiteSparse:GraphBLAS-style dot-product baseline under the
// session's descriptor (complemented masks unsupported).
func (s *Session) SSDot(ctx context.Context, m *Pattern, a, b *Matrix, opts ...Op) (*Matrix, error) {
	d := s.def.apply(opts)
	as := &apps.Session{Opt: s.options(ctx, d), Cache: s.cache}
	return as.EngineSSDot().Mult(m, a, b, d.semiring(), d.complement)
}

// SSSaxpy runs the SuiteSparse:GraphBLAS-style saxpy baseline (mask applied
// at gather, not during accumulation) under the session's descriptor.
func (s *Session) SSSaxpy(ctx context.Context, m *Pattern, a, b *Matrix, opts ...Op) (*Matrix, error) {
	d := s.def.apply(opts)
	as := &apps.Session{Opt: s.options(ctx, d), Cache: s.cache}
	return as.EngineSSSaxpy().Mult(m, a, b, d.semiring(), d.complement)
}
