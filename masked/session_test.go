package masked

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

func sameCSR(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil matrix (got %v, want %v)", label, got == nil, want == nil)
	}
	if !matrix.Equal(got, want, func(a, b float64) bool { return a == b }) {
		t.Fatalf("%s: results differ (got nnz=%d, want nnz=%d)", label, got.NNZ(), want.NNZ())
	}
}

// tcOperands returns the triangle-counting-shaped operands (L, L, mask L)
// of a power-law graph — the canonical iterative workload.
func tcOperands(scale, ef int, seed uint64) (*Pattern, *Matrix) {
	l := Tril(RMAT(scale, ef, seed))
	return l.Pattern(), l
}

// TestSessionPooledResultsBitIdentical: repeated calls on one session reuse
// pooled accumulator workspaces; results must be bit-identical to a fresh
// session's for every variant, the planner path, and both mask modes.
func TestSessionPooledResultsBitIdentical(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(9, 8, 42)
	for _, v := range Variants() {
		for _, comp := range []bool{false, true} {
			if comp && v.Alg == MCA {
				continue
			}
			ops := []Op{WithVariant(v), WithAccumulate(PlusPair())}
			if comp {
				ops = append(ops, WithComplement())
			}
			fresh, err := NewSession().Multiply(ctx, lp, l, l, ops...)
			if err != nil {
				t.Fatalf("%s fresh: %v", v.Name(), err)
			}
			s := NewSession()
			for rep := 0; rep < 3; rep++ {
				got, err := s.Multiply(ctx, lp, l, l, ops...)
				if err != nil {
					t.Fatalf("%s rep %d: %v", v.Name(), rep, err)
				}
				sameCSR(t, v.Name(), got, fresh)
			}
		}
	}
	// Planner path: warm cache + warm workspaces stay bit-identical.
	s := NewSession(WithAccumulate(PlusPair()))
	fresh, err := NewSession().Multiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := s.Multiply(ctx, lp, l, l)
		if err != nil {
			t.Fatalf("auto rep %d: %v", rep, err)
		}
		sameCSR(t, "auto", got, fresh)
	}
	if s.PlanCacheStats().Hits == 0 {
		t.Errorf("expected plan-cache hits on repeated session multiplies")
	}
}

// TestFreeFunctionsMatchSession: the deprecated free functions are wrappers
// over DefaultSession and must return bit-identical results to an explicit
// session (the PR-1 behavior).
func TestFreeFunctionsMatchSession(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(9, 8, 7)
	want, err := NewSession().Multiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Multiply(lp, l, l, PlusPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameCSR(t, "Multiply", got, want)
	for _, v := range Variants() {
		got, err := MultiplyVariant(v, lp, l, l, PlusPair(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameCSR(t, "MultiplyVariant/"+v.Name(), got, want)
	}
	// An application wrapper agrees with its session method.
	g := RMAT(8, 8, 5)
	v := Variant{Alg: MSA, Phase: OnePhase}
	old, err := TriangleCount(g, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	neu, err := NewSession().TriangleCount(ctx, g, WithVariant(v))
	if err != nil {
		t.Fatal(err)
	}
	if old.Triangles != neu.Triangles {
		t.Fatalf("TriangleCount: free %d != session %d", old.Triangles, neu.Triangles)
	}
}

// TestSessionPreCancelledContext: an operation on an already-cancelled
// context returns context.Canceled without doing the product.
func TestSessionPreCancelledContext(t *testing.T) {
	lp, l := tcOperands(12, 16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession()
	start := time.Now()
	for name, call := range map[string]func() error{
		"Multiply": func() error {
			_, err := s.Multiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
			return err
		},
		"Multiply/pinned": func() error {
			_, err := s.Multiply(ctx, lp, l, l, WithVariant(Variant{Alg: Hash, Phase: TwoPhase}))
			return err
		},
		"TriangleCount": func() error {
			_, err := s.TriangleCount(ctx, l)
			return err
		},
		"SSSaxpy": func() error {
			_, err := s.SSSaxpy(ctx, lp, l, l)
			return err
		},
	} {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context: got %v, want context.Canceled", name, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled calls took %v; want a prompt return", elapsed)
	}
}

// TestSessionMidFlightCancel: cancelling the context while the product is
// in flight aborts it promptly (cooperatively, between scheduling chunks)
// and leaks no goroutines. The semiring's Mul signals the first multiply
// and then sleeps, so the full product would take minutes — a prompt
// return is unambiguous proof of mid-flight cancellation.
func TestSessionMidFlightCancel(t *testing.T) {
	lp, l := tcOperands(10, 8, 3)
	started := make(chan struct{})
	var once sync.Once
	slow := semiring.Semiring[float64]{
		Name: "slow-pair",
		Add:  func(x, y float64) float64 { return x + y },
		Mul: func(x, y float64) float64 {
			once.Do(func() { close(started) })
			time.Sleep(50 * time.Microsecond)
			return 1
		},
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		cancel()
	}()
	s := NewSession()
	start := time.Now()
	_, err := s.Multiply(ctx, lp, l, l,
		WithAccumulate(slow), WithVariant(Variant{Alg: MSA, Phase: OnePhase}), WithGrain(8))
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	// Full product: ~flops × 50µs ≫ 30s. Workers only finish the chunk in
	// hand (8 rows), so a prompt return means the cancel was honored.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled multiply took %v; cancellation was not honored mid-flight", elapsed)
	}
	// No goroutine leak: workers drain once they observe the cancel.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked after cancelled multiply: %d before, %d after", before, now)
	}
}

// TestSessionReusesWorkspaceAllocations: a warm session performs strictly
// fewer allocations per multiply than fresh per-call state, on both the
// pinned-variant path (workspace pooling) and the planner path (workspace
// pooling + plan-cache hit). Thread count 1 keeps the counts deterministic.
func TestSessionReusesWorkspaceAllocations(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(10, 8, 9)
	msa := Variant{Alg: MSA, Phase: OnePhase}

	pinned := []Op{WithThreads(1), WithVariant(msa), WithAccumulate(PlusPair())}
	warm := NewSession(pinned...)
	if _, err := warm.Multiply(ctx, lp, l, l); err != nil {
		t.Fatal(err)
	}
	perWarm := testing.AllocsPerRun(10, func() {
		if _, err := warm.Multiply(ctx, lp, l, l); err != nil {
			t.Fatal(err)
		}
	})
	perFresh := testing.AllocsPerRun(10, func() {
		if _, err := NewSession(pinned...).Multiply(ctx, lp, l, l); err != nil {
			t.Fatal(err)
		}
	})
	if perWarm >= perFresh {
		t.Errorf("pinned: warm session allocs %.0f, fresh state %.0f; want strictly fewer", perWarm, perFresh)
	}

	auto := []Op{WithThreads(1), WithAccumulate(PlusPair())}
	warmAuto := NewSession(auto...)
	if _, err := warmAuto.Multiply(ctx, lp, l, l); err != nil {
		t.Fatal(err)
	}
	perWarmAuto := testing.AllocsPerRun(10, func() {
		if _, err := warmAuto.Multiply(ctx, lp, l, l); err != nil {
			t.Fatal(err)
		}
	})
	perFreshAuto := testing.AllocsPerRun(10, func() {
		if _, err := NewSession(auto...).Multiply(ctx, lp, l, l); err != nil {
			t.Fatal(err)
		}
	})
	if perWarmAuto >= perFreshAuto {
		t.Errorf("auto: warm session allocs %.0f, fresh state %.0f; want strictly fewer", perWarmAuto, perFreshAuto)
	}
}

// benchmarkIterativeApp runs the same iterative application (multi-source
// BFS: one complement-masked SpGEMM per level) either on one long-lived
// session or on fresh per-call state. Compare the two with -benchmem: the
// session run allocates strictly less.
func benchmarkIterativeApp(b *testing.B, fresh bool) {
	g := RMAT(11, 8, 7)
	sources := []Index{0, 1, 2, 3, 4, 5, 6, 7}
	ctx := context.Background()
	sess := NewSession()
	if _, err := sess.MultiSourceBFS(ctx, g, sources); err != nil { // warm the arenas
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sess
		if fresh {
			s = NewSession()
		}
		if _, err := s.MultiSourceBFS(ctx, g, sources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiSourceBFSSession(b *testing.B)    { benchmarkIterativeApp(b, false) }
func BenchmarkMultiSourceBFSFreshState(b *testing.B) { benchmarkIterativeApp(b, true) }

// benchmarkWarmedMultiplyDriverAllocs extends PR 2's session-vs-fresh alloc
// comparison with PR 4's absolute guarantee: once a session is warm, the
// phase drivers take every scratch buffer (per-row counts and offsets, the
// one-phase bound bins) from the pooled arena — zero driver-layer
// allocations per multiply, measured as workspace pool misses. -benchmem
// shows the remaining allocs/op, which are the returned output plus O(1)
// per-call bookkeeping, independent of the matrix size.
func benchmarkWarmedMultiplyDriverAllocs(b *testing.B, phase core.Phase) {
	ctx := context.Background()
	lp, l := tcOperands(10, 8, 15)
	s := NewSession(WithThreads(2), WithVariant(Variant{Alg: MSA, Phase: phase}), WithAccumulate(PlusPair()))
	for i := 0; i < 2; i++ { // warm plan cache and pools
		if _, err := s.Multiply(ctx, lp, l, l); err != nil {
			b.Fatal(err)
		}
	}
	_, missBefore := s.ws.DriverPoolStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Multiply(ctx, lp, l, l); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Exact miss counts only hold without -race: the race detector makes
	// sync.Pool drop a fraction of Puts.
	if _, missAfter := s.ws.DriverPoolStats(); !raceEnabled && missAfter != missBefore {
		b.Fatalf("warmed Session.Multiply (%s) performed %d driver-layer allocations (pool misses) over %d ops; want 0",
			phase, missAfter-missBefore, b.N)
	}
}

func BenchmarkSessionMultiplyDriverAllocs1P(b *testing.B) {
	benchmarkWarmedMultiplyDriverAllocs(b, OnePhase)
}
func BenchmarkSessionMultiplyDriverAllocs2P(b *testing.B) {
	benchmarkWarmedMultiplyDriverAllocs(b, TwoPhase)
}

// TestWarmedSessionZeroDriverAllocs is the deterministic (non-benchmark)
// form of the guarantee, covering both phases and the planner path.
func TestWarmedSessionZeroDriverAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a fraction of Puts under the race detector; exact miss counts only hold without -race")
	}
	ctx := context.Background()
	lp, l := tcOperands(10, 8, 15)
	cases := map[string][]Op{
		"1P":   {WithVariant(Variant{Alg: MSA, Phase: OnePhase})},
		"2P":   {WithVariant(Variant{Alg: MSA, Phase: TwoPhase})},
		"auto": nil,
	}
	for name, ops := range cases {
		s := NewSession(append([]Op{WithThreads(2), WithAccumulate(PlusPair())}, ops...)...)
		for i := 0; i < 2; i++ {
			if _, err := s.Multiply(ctx, lp, l, l); err != nil {
				t.Fatal(err)
			}
		}
		_, missBefore := s.ws.DriverPoolStats()
		for i := 0; i < 3; i++ {
			if _, err := s.Multiply(ctx, lp, l, l); err != nil {
				t.Fatal(err)
			}
		}
		if _, missAfter := s.ws.DriverPoolStats(); missAfter != missBefore {
			t.Errorf("%s: warmed session made %d driver pool misses; want 0", name, missAfter-missBefore)
		}
	}
}

// TestSessionSchedEquivalence: WithSched never changes results — the auto,
// pinned-equal and pinned-cost schedules all produce bit-identical output,
// on both the planner and pinned-variant paths.
func TestSessionSchedEquivalence(t *testing.T) {
	ctx := context.Background()
	lp, l := tcOperands(10, 16, 31)
	want, err := NewSession().Multiply(ctx, lp, l, l, WithAccumulate(PlusPair()))
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Sched{SchedAuto, SchedEqualRow, SchedCost} {
		for _, pin := range []bool{false, true} {
			ops := []Op{WithAccumulate(PlusPair()), WithSched(sched), WithThreads(4)}
			if pin {
				ops = append(ops, WithVariant(Variant{Alg: Hash, Phase: OnePhase}))
			}
			got, err := NewSession().Multiply(ctx, lp, l, l, ops...)
			if err != nil {
				t.Fatalf("sched=%v pinned=%v: %v", sched, pin, err)
			}
			sameCSR(t, "sched", got, want)
		}
	}
}
