package masked

// Panic isolation for the serving layer. A panic inside a kernel, a planner
// stage or a request callback must cost exactly one request, never the
// process: the serving entry points (lead, Serve workers, MultiplyBatch
// groups) recover at the request boundary and convert the panic into a
// *PanicError response, after the deferred cleanup below them (arbiter grant
// release, single-flight unlink) has already run. internal/parallel
// cooperates by re-raising worker-goroutine panics on the coordinator
// goroutine (parallel.WorkerPanic), which is what makes a request-boundary
// recover sufficient — without it a panic on a worker goroutine would be
// unrecoverable anywhere.

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/parallel"
)

// ErrPanic is the sentinel wrapped by every *PanicError, so callers can
// classify recovered-panic outcomes with errors.Is(err, ErrPanic) without
// depending on the concrete type. The network front end maps it to 500.
var ErrPanic = errors.New("masked: panic during request execution")

// PanicError is the error a request that panicked resolves to: the original
// panic value plus the stack of the goroutine that panicked (for a worker
// panic, the worker's stack at the point of panic, not the coordinator's).
// It unwraps to ErrPanic. Coalesced followers of a panicked leader share it,
// like any other leader outcome.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the panicking goroutine.
	Stack []byte
}

// Error describes the panic without the stack (stacks go to logs, not into
// error strings that may travel on the wire).
func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrPanic, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *PanicError) Unwrap() error { return ErrPanic }

// newPanicError converts a recovered panic value into a *PanicError,
// preserving the worker-side stack when the value is a re-raised
// parallel.WorkerPanic and capturing the current stack otherwise.
func newPanicError(v any) *PanicError {
	if wp, ok := v.(parallel.WorkerPanic); ok {
		return &PanicError{Value: wp.Value, Stack: wp.Stack}
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// protect runs one request body under a recover barrier: a panic anywhere
// in run becomes a BatchRes carrying a *PanicError and bumps the session's
// panic counter. The Serve workers and MultiplyBatch group goroutines wrap
// their per-request work in it so a panicking request cannot kill the
// worker pool (lead has its own, earlier barrier that additionally
// publishes the error to coalesced followers).
func (s *Session) protect(run func() BatchRes) (res BatchRes) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			res = BatchRes{Err: newPanicError(v)}
		}
	}()
	return run()
}

// Panics returns how many request-boundary panics this session has
// recovered (monotonic). Nonzero values outside chaos tests mean a kernel
// or planner bug that panic isolation is papering over — investigate.
func (s *Session) Panics() int64 { return s.panics.Load() }
