// Root benchmark suite: one testing.B benchmark per table/figure of the
// paper's evaluation (§8), plus ablation benches for the design choices
// DESIGN.md calls out. The cmd/mspgemm-bench CLI produces the full data
// series; these benches give per-kernel steady-state numbers with
// -benchmem allocation tracking.
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/planner"
	"repro/internal/semiring"
	"repro/masked"
)

// Shared inputs, generated once. Sizes chosen so a full -bench=. run
// finishes in minutes on a laptop.
var (
	onceInputs sync.Once
	rmatG      *matrix.CSR[float64] // R-MAT scale 11, ef 16: the TC/k-truss graph
	rmatL      *matrix.CSR[float64] // lower triangle after degree relabel
	erA, erB   *matrix.CSR[float64] // ER inputs for the Fig. 7 density points
	erAsp      *matrix.CSR[float64] // very sparse ER inputs (Heap's corner)
	erBsp      *matrix.CSR[float64]
	erMaskEq   *matrix.Pattern      // mask with density comparable to inputs
	erMaskSp   *matrix.Pattern      // mask much sparser than inputs
	erMaskDn   *matrix.Pattern      // mask much denser than inputs
	bcG        *matrix.CSR[float64] // BC graph
	bcSrcs     []matrix.Index
)

func loadInputs() {
	onceInputs.Do(func() {
		rmatG = grgen.RMAT(11, 16, 1)
		perm := matrix.DegreeDescPerm(rmatG)
		rmatL = matrix.Tril(matrix.Permute(rmatG, perm))
		const n = 1 << 12
		erA = grgen.ErdosRenyi(n, 16, 11)
		erB = grgen.ErdosRenyi(n, 16, 12)
		erAsp = grgen.ErdosRenyi(n, 1, 16)
		erBsp = grgen.ErdosRenyi(n, 1, 17)
		erMaskEq = grgen.ErdosRenyi(n, 16, 13).Pattern()
		erMaskSp = grgen.ErdosRenyi(n, 1, 14).Pattern()
		erMaskDn = grgen.ErdosRenyi(n, 256, 15).Pattern()
		bcG = grgen.RMAT(10, 16, 2)
		bcSrcs = make([]matrix.Index, 32)
		for i := range bcSrcs {
			bcSrcs[i] = matrix.Index(i * 17 % int(bcG.NRows))
		}
	})
}

func benchVariant(b *testing.B, v core.Variant, m *matrix.Pattern, a, bb *matrix.CSR[float64]) {
	b.Helper()
	sr := semiring.Arithmetic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaskedSpGEMM(v, m, a, bb, sr, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig07 times every 1P algorithm at the three regimes of the
// Fig. 7 grid: mask ≪ inputs (Inner's corner), mask ≈ inputs (MSA/Hash's
// region), mask ≫ inputs (Heap's corner).
func BenchmarkFig07(b *testing.B) {
	loadInputs()
	regimes := []struct {
		name string
		mask *matrix.Pattern
	}{
		{"maskSparse_d1", erMaskSp},
		{"maskEqual_d16", erMaskEq},
		{"maskDense_d256", erMaskDn},
	}
	for _, reg := range regimes {
		for _, alg := range []core.Algorithm{core.MSA, core.Hash, core.MCA, core.Heap, core.HeapDot, core.Inner} {
			b.Run(reg.name+"/"+alg.String(), func(b *testing.B) {
				benchVariant(b, core.Variant{Alg: alg, Phase: core.OnePhase}, reg.mask, erA, erB)
			})
		}
	}
}

// BenchmarkFig08TriangleCount times the masked product of triangle
// counting (C = L .* L·L) for all 12 variants (the Fig. 8 profile's data).
func BenchmarkFig08TriangleCount(b *testing.B) {
	loadInputs()
	sr := semiring.PlusPairF()
	for _, v := range core.AllVariants() {
		b.Run(v.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(v, rmatL.Pattern(), rmatL, rmatL, sr, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig09Baselines times the SS:GB-style baselines on the same
// triangle-counting product (Fig. 9's comparison).
func BenchmarkFig09Baselines(b *testing.B) {
	loadInputs()
	sr := semiring.PlusPairF()
	b.Run("SS:SAXPY", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.SSSaxpy(rmatL.Pattern(), rmatL, rmatL, sr, baseline.Options{})
		}
	})
	b.Run("SS:DOT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.SSDot(rmatL.Pattern(), rmatL, rmatL, sr, baseline.Options{})
		}
	})
	b.Run("PlainThenMask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.PlainThenMask(rmatL.Pattern(), rmatL, rmatL, sr, baseline.Options{})
		}
	})
}

// BenchmarkFig10Scaling times full triangle counting across R-MAT scales
// (Fig. 10's x-axis) with the overall winner MSA-1P.
func BenchmarkFig10Scaling(b *testing.B) {
	for _, scale := range []int{8, 10, 12} {
		g := grgen.RMAT(scale, 16, 1)
		eng := apps.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{})
		b.Run("scale"+itoa(scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.TriangleCount(g, eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Threads times triangle counting across worker counts
// (Fig. 11's strong scaling; on a single-core host columns coincide).
func BenchmarkFig11Threads(b *testing.B) {
	loadInputs()
	for _, threads := range []int{1, 2, 4} {
		eng := apps.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: threads})
		b.Run("threads"+itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.TriangleCount(rmatG, eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12KTruss times the full k-truss loop per scheme (Figs. 12-13).
func BenchmarkFig12KTruss(b *testing.B) {
	loadInputs()
	engines := []apps.Engine{
		apps.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.Inner, Phase: core.OnePhase}, core.Options{}),
		apps.EngineSSSaxpy(baseline.Options{}),
		apps.EngineSSDot(baseline.Options{}),
	}
	for _, eng := range engines {
		b.Run(eng.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := apps.KTruss(rmatG, 5, eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14KTrussScaling sweeps k-truss across R-MAT scales with the
// two families Fig. 14 contrasts (push MSA vs pull Inner).
func BenchmarkFig14KTrussScaling(b *testing.B) {
	for _, scale := range []int{8, 10} {
		g := grgen.RMAT(scale, 16, 1)
		for _, name := range []string{"MSA-1P", "Inner-1P"} {
			v, _ := core.VariantByName(name)
			eng := apps.EngineVariant(v, core.Options{})
			b.Run("scale"+itoa(scale)+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := apps.KTruss(g, 5, eng); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig15BC times batched betweenness centrality per scheme
// (Figs. 15-16's data).
func BenchmarkFig15BC(b *testing.B) {
	loadInputs()
	engines := []apps.Engine{
		apps.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.TwoPhase}, core.Options{}),
		apps.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.TwoPhase}, core.Options{}),
		apps.EngineSSSaxpy(baseline.Options{}),
	}
	for _, eng := range engines {
		b.Run(eng.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.BetweennessCentrality(bcG, bcSrcs, eng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationPhases isolates the §6 one-vs-two-phase question on the
// triangle-count product.
func BenchmarkAblationPhases(b *testing.B) {
	loadInputs()
	sr := semiring.PlusPairF()
	for _, alg := range []core.Algorithm{core.MSA, core.Hash, core.MCA} {
		for _, ph := range []core.Phase{core.OnePhase, core.TwoPhase} {
			v := core.Variant{Alg: alg, Phase: ph}
			b.Run(v.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(v, rmatL.Pattern(), rmatL, rmatL, sr, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationNInspect sweeps the Heap algorithm's §5.5 mask
// inspection depth (0 = blind push, 1 = Heap, big = HeapDot).
func BenchmarkAblationNInspect(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	for _, ni := range []int32{0, 1, 2, 8, 1 << 30} {
		b.Run("NInspect"+itoa(int(ni)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMMHeapNInspect(core.OnePhase, erMaskEq, erA, erB, sr, ni, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHashLoad sweeps the hash accumulator load factor around
// the paper's fixed 0.25.
func BenchmarkAblationHashLoad(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	for _, lf := range [][2]int{{1, 8}, {1, 4}, {1, 2}, {3, 4}} {
		b.Run("load"+itoa(lf[0])+"over"+itoa(lf[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMMHashLoad(core.OnePhase, erMaskEq, erA, erB, sr, lf[0], lf[1], core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGrain sweeps the dynamic scheduler's chunk size.
func BenchmarkAblationGrain(b *testing.B) {
	loadInputs()
	sr := semiring.PlusPairF()
	for _, grain := range []int{1, 16, 64, 256, 1024} {
		b.Run("grain"+itoa(grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := core.Variant{Alg: core.MSA, Phase: core.OnePhase}
				if _, err := core.MaskedSpGEMM(v, rmatL.Pattern(), rmatL, rmatL, sr, core.Options{Grain: grain}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHybrid compares the per-row adaptive hybrid kernel (the
// paper's §9 future work) against the best fixed kernel in each Fig. 7
// regime. A good hybrid should be near the regime winner everywhere.
func BenchmarkAblationHybrid(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	regimes := []struct {
		name string
		mask *matrix.Pattern
	}{
		{"maskSparse_d1", erMaskSp},
		{"maskEqual_d16", erMaskEq},
		{"maskDense_d256", erMaskDn},
	}
	for _, reg := range regimes {
		b.Run(reg.name+"/Hybrid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMMHybrid(core.OnePhase, reg.mask, erA, erB, sr, core.Options{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, alg := range []core.Algorithm{core.MSA, core.Inner, core.Heap} {
			b.Run(reg.name+"/"+alg.String(), func(b *testing.B) {
				benchVariant(b, core.Variant{Alg: alg, Phase: core.OnePhase}, reg.mask, erA, erB)
			})
		}
	}
}

// BenchmarkAdaptivePlanner races the planner's Auto path against every 1P
// algorithm (and the old hardcoded MSA-1P default) at the three Fig. 7
// regimes plus the triangle-counting product. The acceptance bar: Auto
// within ~10% of the regime's best fixed variant and ahead of MSA-1P
// wherever MSA-1P is not the winner. Plan analysis (cache-cold every
// iteration here, since the shared cache keys on operand identity and the
// operands are fixed — so iterations after the first are cache-warm) is
// included in Auto's time.
func BenchmarkAdaptivePlanner(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	workloads := []struct {
		name  string
		mask  *matrix.Pattern
		a, bb *matrix.CSR[float64]
	}{
		{"sparseMask_d1", erMaskSp, erA, erB},
		{"sparseInputs_d1", erMaskDn, erAsp, erBsp},
		{"comparable_d16", erMaskEq, erA, erB},
		{"rmatTC", rmatL.Pattern(), rmatL, rmatL},
	}
	for _, w := range workloads {
		cache := planner.NewCache()
		b.Run(w.name+"/Auto", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := cache.Analyze(w.mask, w.a.Pattern(), w.bb.Pattern(), core.Options{})
				if _, err := planner.Execute(p, w.mask, w.a, w.bb, sr, core.Options{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, alg := range []core.Algorithm{core.MSA, core.Hash, core.Heap, core.HeapDot, core.Inner} {
			b.Run(w.name+"/"+alg.String(), func(b *testing.B) {
				benchVariant(b, core.Variant{Alg: alg, Phase: core.OnePhase}, w.mask, w.a, w.bb)
			})
		}
	}
}

// BenchmarkAdaptivePlannerAnalysis isolates the planner's analysis cost
// (cold and cached) from execution.
func BenchmarkAdaptivePlannerAnalysis(b *testing.B) {
	loadInputs()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			planner.Analyze(rmatL.Pattern(), rmatL.Pattern(), rmatL.Pattern(), core.Options{})
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := planner.NewCache()
		for i := 0; i < b.N; i++ {
			cache.Analyze(rmatL.Pattern(), rmatL.Pattern(), rmatL.Pattern(), core.Options{})
		}
	})
}

// BenchmarkSpGEVM times the vector primitive (one masked row product) for
// the push and pull kernels plus the direction-optimized auto dispatch.
func BenchmarkSpGEVM(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	u := matrix.RowToVec(erA, 7)
	m := matrix.RowToVec(matrix.FromPattern(erMaskEq, 1.0), 7)
	bcsc := matrix.ToCSC(erB)
	b.Run("MSA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaskedSpGEVM(core.MSA, m, u, erB, sr, core.Options{Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Inner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaskedSpGEVM(core.Inner, m, u, erB, sr, core.Options{Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MaskedSpGEVMAuto(m, u, erB, bcsc, sr, core.Options{Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBFSDirectionOptimized times the full direction-optimized BFS.
func BenchmarkBFSDirectionOptimized(b *testing.B) {
	loadInputs()
	for i := 0; i < b.N; i++ {
		if _, err := apps.BFS(bcG, 0, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransposeCost contrasts Inner with B transposed per
// call (what SS:DOT does, §8.4) against a pre-transposed B.
func BenchmarkAblationTransposeCost(b *testing.B) {
	loadInputs()
	sr := semiring.Arithmetic()
	b.Run("transposePerCall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := core.Variant{Alg: core.Inner, Phase: core.OnePhase}
			if _, err := core.MaskedSpGEMM(v, erMaskEq, erA, erB, sr, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	bcsc := matrix.ToCSC(erB)
	b.Run("preTransposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaskedDotCSC(core.OnePhase, erMaskEq, erA, bcsc, sr, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 1<<30 {
		return "inf"
	}
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkSchedule contrasts equal-row chunking against cost-balanced
// equal-flops spans (PR 4's scheduler) on the skewed triangle-counting
// product, at ≥4 workers on a warmed workspace arena. On multi-core hosts
// the cost schedule wins wall-clock on the R-MAT input by shaving the
// straggler tail; `mspgemm-bench schedule` additionally reports the
// deterministic load-imbalance model, which shows the effect on any host.
// -benchmem allocation counts are flat in the input size: the drivers take
// all scratch from the pooled arena.
func BenchmarkSchedule(b *testing.B) {
	loadInputs()
	lp := rmatL.Pattern()
	costs := core.ComputeRowCosts(lp, lp, lp, 0)
	sr := semiring.PlusPairF()
	v := core.Variant{Alg: core.MSA, Phase: core.OnePhase}
	for _, threads := range []int{4, 8} {
		for _, sched := range []core.Sched{core.SchedEqualRow, core.SchedCost} {
			b.Run("threads"+itoa(threads)+"/sched-"+sched.String(), func(b *testing.B) {
				ws := core.NewWorkspaces()
				opt := core.Options{Threads: threads, Sched: sched, RowCosts: costs, Workspaces: ws}
				if _, err := core.MaskedSpGEMM(v, lp, rmatL, rmatL, sr, opt); err != nil { // warm the pools
					b.Fatal(err)
				}
				_, missBefore := ws.DriverPoolStats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(v, lp, rmatL, rmatL, sr, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				// Exact miss counts only hold without -race: the race
				// detector makes sync.Pool drop a fraction of Puts.
				if _, missAfter := ws.DriverPoolStats(); !raceEnabled && missAfter != missBefore {
					b.Fatalf("warmed drivers performed %d pool-missing allocations over %d ops; want 0",
						missAfter-missBefore, b.N)
				}
			})
		}
	}
}

// BenchmarkMaskRep compares the CSR probe against the bitmap mask
// representation on the dense-mask shapes the representation subsystem
// targets: the k-truss support product (mask = the graph itself, flat ER
// degrees — MCA's per-A-entry merge regime) and the Hash kernel under a
// dense mask. The planner's auto thresholds are calibrated from this data.
func BenchmarkMaskRep(b *testing.B) {
	loadInputs()
	erK := grgen.ErdosRenyiSym(1<<11, 32, 21)
	cases := []struct {
		name string
		alg  core.Algorithm
		m    *matrix.Pattern
		a, c *matrix.CSR[float64]
	}{
		{"ktrussMCA", core.MCA, erK.Pattern(), erK, erK},
		{"ktrussHash", core.Hash, erK.Pattern(), erK, erK},
		{"denseMaskHash", core.Hash, erMaskDn, erA, erB},
	}
	for _, tc := range cases {
		for _, rep := range []core.MaskRep{core.RepCSR, core.RepBitmap} {
			b.Run(tc.name+"/"+rep.String(), func(b *testing.B) {
				sr := semiring.PlusPairF()
				v := core.Variant{Alg: tc.alg, Phase: core.OnePhase}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(v, tc.m, tc.a, tc.c, sr, core.Options{MaskRep: rep}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkServing contrasts serialized one-at-a-time multiplies against
// the batched serving path on a zipf-shaped query mix (hot requests
// repeated, cold singletons). The serving win comes from coalescing the
// hot duplicates plus arbitrated worker shares; `mspgemm-bench serving`
// reports the full study with verification and arbiter counters.
func BenchmarkServing(b *testing.B) {
	ctx := context.Background()
	hotL := matrix.Tril(grgen.RMAT(8, 8, 51))
	hotG := grgen.ErdosRenyi(1<<8, 8, 52)
	coldL := matrix.Tril(grgen.RMAT(6, 4, 53))
	coldG := grgen.ErdosRenyi(1<<7, 4, 54)
	var reqs []masked.BatchReq
	for r := 0; r < 3; r++ { // hot duplicates
		reqs = append(reqs,
			masked.BatchReq{M: hotL.Pattern(), A: hotL, B: hotL, Opts: []masked.Op{masked.WithAccumulate(masked.PlusPair())}},
			masked.BatchReq{M: hotG.Pattern(), A: hotG, B: hotG})
	}
	reqs = append(reqs,
		masked.BatchReq{M: coldL.Pattern(), A: coldL, B: coldL, Opts: []masked.Op{masked.WithAccumulate(masked.PlusPair())}},
		masked.BatchReq{M: coldG.Pattern(), A: coldG, B: coldG, Opts: []masked.Op{masked.WithComplement()}})
	b.Run("serialized", func(b *testing.B) {
		s := masked.NewSession()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := s.Multiply(ctx, r.M, r.A, r.B, r.Opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-inflight8", func(b *testing.B) {
		s := masked.NewSession(masked.WithInflight(8))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range s.MultiplyBatch(ctx, reqs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}
