// Command graphgen writes synthetic graphs (Erdős–Rényi or R-MAT with
// Graph500 parameters) to Matrix Market files, so external tools — or
// repeated benchmark runs — can share identical inputs.
//
// Usage:
//
//	graphgen -kind rmat -scale 12 -deg 16 -seed 1 -out graph.mtx
//	graphgen -kind er   -n 4096  -deg 8  -sym -out er.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/mmio"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat | er")
	scale := flag.Int("scale", 10, "R-MAT scale (vertices = 2^scale)")
	n := flag.Int("n", 1024, "Erdős–Rényi vertex count")
	deg := flag.Float64("deg", 16, "average degree / edge factor")
	seed := flag.Uint64("seed", 1, "generator seed")
	sym := flag.Bool("sym", true, "symmetrize (undirected graph)")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	var g *matrix.CSR[float64]
	switch *kind {
	case "rmat":
		if *sym {
			g = grgen.RMAT(*scale, int(*deg), *seed)
		} else {
			g = grgen.RMATDirected(*scale, int(*deg), *seed)
		}
	case "er":
		if *sym {
			g = grgen.ErdosRenyiSym(matrix.Index(*n), *deg, *seed)
		} else {
			g = grgen.ErdosRenyi(matrix.Index(*n), *deg, *seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	if *out == "" {
		if err := mmio.Write(os.Stdout, g); err != nil {
			fail(err)
		}
		return
	}
	if err := mmio.WriteFile(*out, g); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %dx%d matrix with %d nonzeros to %s\n",
		g.NRows, g.NCols, g.NNZ(), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
