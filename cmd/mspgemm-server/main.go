// Command mspgemm-server serves masked SpGEMM over HTTP with the binary
// wire protocol of internal/wire: POST /v1/multiply (single frame or a
// concatenated batch), /v1/triangle-count and /v1/bfs, plus GET /metrics
// (Prometheus text, ?format=json for JSON) and /healthz. Admission is
// backed by the session arbiter: a saturated server answers 429 with
// Retry-After instead of queuing. SIGINT/SIGTERM drain in-flight requests
// before exit.
//
//	mspgemm-server -addr :8080 -threads 8 -inflight 4
//
// Two client modes support scripts and container health checks:
//
//	mspgemm-server -smoke http://127.0.0.1:8080        # end-to-end check
//	mspgemm-server -healthcheck http://127.0.0.1:8080  # GET /healthz
//
// For chaos testing, -faults (or MSPGEMM_FAULTS) arms the deterministic
// fault-injection registry of internal/faultinject; the smoke client
// retries, so a bounded fault schedule must still produce correct answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matrix"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/masked"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		threads     = flag.Int("threads", 0, "session worker budget (0 = GOMAXPROCS)")
		inflight    = flag.Int("inflight", 0, "admission slots (0 = engine default)")
		planCache   = flag.Int("plan-cache", 0, "plan cache capacity in plans (0 = engine default)")
		calibrate   = flag.String("calibrate", "auto", "planner cost model: off (hand-tuned) | auto (per-host cached probes) | force (re-probe)")
		internCap   = flag.Int("intern", 0, "operand intern table entries (0 = 128, negative disables)")
		internMB    = flag.Int64("intern-max-mb", 0, "operand intern table byte bound in MiB (0 = 1024, negative = entry bound only)")
		maxBodyMB   = flag.Int64("max-body-mb", 256, "request body cap in MiB")
		maxBatch    = flag.Int("max-batch", 64, "max frames in one multiply body")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 5*time.Minute, "cap on requested deadlines")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
		faults      = flag.String("faults", "", "fault-injection spec, e.g. 'seed=7;server.handler.panic=0.1,limit:3' (also MSPGEMM_FAULTS; chaos testing only)")
		smoke       = flag.String("smoke", "", "run an end-to-end smoke test against this base URL and exit")
		healthcheck = flag.String("healthcheck", "", "probe this base URL's /healthz and exit")
	)
	flag.Parse()

	if spec := firstNonEmpty(*faults, os.Getenv("MSPGEMM_FAULTS")); spec != "" {
		reg, err := faultinject.Parse(spec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		faultinject.Set(reg)
		log.Printf("mspgemm-server: FAULT INJECTION ARMED: %s", reg.Describe())
	}

	if *healthcheck != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.NewClient(*healthcheck, nil).Healthz(ctx); err != nil {
			log.Fatalf("healthcheck: %v", err)
		}
		fmt.Println("ok")
		return
	}
	if *smoke != "" {
		if err := runSmoke(*smoke); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		return
	}

	calib, err := masked.ParseCalibration(*calibrate)
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.Config{
		Threads:           *threads,
		Inflight:          *inflight,
		PlanCacheCapacity: *planCache,
		Calibration:       calib,
		InternCapacity:    *internCap,
		InternMaxBytes:    *internMB << 20,
		MaxBodyBytes:      *maxBodyMB << 20,
		MaxBatchFrames:    *maxBatch,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		DrainTimeout:      *drain,
	}
	sv := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mspgemm-server listening on http://%s", ln.Addr())
	if err := sv.Serve(ctx, ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Print("mspgemm-server: drained in-flight requests, exiting")
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// runSmoke drives one of every request through a running server and
// verifies the answers against in-process computations — the CI server
// smoke job and a quick deployment sanity check. The client retries, so
// the smoke also passes against a server running with -faults armed (the
// CI chaos job) as long as every fault schedule is bounded.
func runSmoke(baseURL string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := server.NewClient(baseURL, nil, server.WithRetry(server.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}))

	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	before, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}

	g := masked.ErdosRenyi(512, 8, 1)
	gp := g.Pattern()
	ref := masked.NewSession()

	res, err := c.Multiply(ctx, &wire.MultiplyReq{M: gp, A: g, B: g})
	if err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	want, err := ref.Multiply(ctx, gp, g, g)
	if err != nil {
		return fmt.Errorf("reference multiply: %w", err)
	}
	if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
		return fmt.Errorf("multiply result differs from in-process reference")
	}

	tc, err := c.TriangleCount(ctx, &wire.TriangleCountReq{G: g})
	if err != nil {
		return fmt.Errorf("triangle count: %w", err)
	}
	wantTC, err := ref.TriangleCount(ctx, g)
	if err != nil {
		return fmt.Errorf("reference triangle count: %w", err)
	}
	if tc.Triangles != wantTC.Triangles {
		return fmt.Errorf("triangle count %d, reference %d", tc.Triangles, wantTC.Triangles)
	}

	bfs, err := c.BFS(ctx, &wire.BFSReq{Source: 0, G: g})
	if err != nil {
		return fmt.Errorf("bfs: %w", err)
	}
	if len(bfs.Level) != int(g.NRows) {
		return fmt.Errorf("bfs level length %d, want %d", len(bfs.Level), g.NRows)
	}

	after, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if after.MultiplyRequests <= before.MultiplyRequests ||
		after.TriangleCountRequests <= before.TriangleCountRequests ||
		after.BFSRequests <= before.BFSRequests {
		return fmt.Errorf("metrics counters did not advance: %+v -> %+v", before, after)
	}
	fmt.Printf("smoke ok: %d triangles, bfs depth %d, %d multiply requests served\n",
		tc.Triangles, bfs.Depth, after.MultiplyRequests)
	return nil
}
