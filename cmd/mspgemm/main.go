// Command mspgemm computes a masked sparse matrix product C = M .* (A·B)
// from Matrix Market files, with any of the paper's algorithm variants, the
// hybrid kernel, or the adaptive planner, and writes the result as Matrix
// Market.
//
// Usage:
//
//	mspgemm -a A.mtx -b B.mtx -mask M.mtx [-alg auto|MSA-1P|hybrid]
//	        [-maskrep auto|csr|bitmap|dense] [-sched auto|equal|cost]
//	        [-explain] [-complement] [-semiring arithmetic|plus-pair]
//	        [-threads N] [-batch N] [-inflight K] [-timeout 30s] [-out C.mtx]
//
// Omitting -b squares A (B = A); omitting -mask uses A's pattern as the
// mask (the triangle-counting shape). -alg auto selects the variant (or a
// per-row-block mix) from the operands' density profile; -maskrep pins the
// mask representation kernels probe membership with (default: chosen per
// row block); -sched pins the row-scheduling policy (default: cost-balanced
// equal-flops spans when the per-row cost profile is skewed, equal-row
// chunks otherwise); -explain prints the plan the planner chooses for these
// operands, including the representation and schedule per block.
//
// -batch N > 1 exercises the serving layer: the product is submitted N
// times as one Session.MultiplyBatch call with an -inflight admission cap,
// and the report shows aggregate throughput plus how many requests were
// coalesced onto the first (identical requests are computed once — the
// serving layer's single-flight path). Only the auto and variant
// algorithms batch; -batch with hybrid is rejected.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/planner"
	"repro/internal/semiring"
	"repro/masked"
)

func main() {
	aPath := flag.String("a", "", "Matrix Market file for A (required)")
	bPath := flag.String("b", "", "Matrix Market file for B (default: A)")
	mPath := flag.String("mask", "", "Matrix Market file for the mask (default: pattern of A)")
	algName := flag.String("alg", "auto", "algorithm: 'auto' (planner), a variant (MSA-1P..Inner-2P), or 'hybrid'")
	maskRep := flag.String("maskrep", "auto", "mask representation: auto | csr | bitmap | dense")
	schedName := flag.String("sched", "auto", "row-scheduling policy: auto | equal | cost")
	explain := flag.Bool("explain", false, "print the adaptive plan for these operands to stderr")
	complement := flag.Bool("complement", false, "use the complement of the mask")
	srName := flag.String("semiring", "arithmetic", "semiring: arithmetic | plus-pair | min-plus")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker goroutines")
	batch := flag.Int("batch", 1, "submit the product this many times through the serving batch API")
	inflight := flag.Int("inflight", 0, "serving admission cap for -batch (0 = one request per worker thread)")
	timeout := flag.Duration("timeout", 0, "abort the multiply after this duration, e.g. 30s (0 = no limit)")
	calibrate := flag.String("calibrate", "auto", "planner cost model: off (hand-tuned) | auto (per-host cached probes) | force (re-probe)")
	outPath := flag.String("out", "", "output Matrix Market path (default: stats only)")
	flag.Parse()

	if *aPath == "" {
		fmt.Fprintln(os.Stderr, "mspgemm: -a is required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	a, err := mmio.ReadFile(*aPath)
	check(err)
	b := a
	if *bPath != "" {
		b, err = mmio.ReadFile(*bPath)
		check(err)
	}
	var mask *matrix.Pattern
	if *mPath != "" {
		mm, err := mmio.ReadFile(*mPath)
		check(err)
		mask = mm.Pattern()
	} else {
		mask = a.Pattern()
	}

	var sr semiring.Semiring[float64]
	switch *srName {
	case "arithmetic":
		sr = semiring.Arithmetic()
	case "plus-pair":
		sr = semiring.PlusPairF()
	case "min-plus":
		sr = semiring.MinPlus()
	default:
		check(fmt.Errorf("unknown semiring %q", *srName))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := core.MaskRepByName(*maskRep)
	check(err)
	sched, err := core.SchedByName(*schedName)
	check(err)
	calib, err := masked.ParseCalibration(*calibrate)
	check(err)
	var mdl *planner.Model
	if calib != masked.CalibrationOff {
		mdl = planner.HostModel(calib == masked.CalibrationForce)
	}
	opt := core.Options{Threads: *threads, Complement: *complement, MaskRep: rep, Sched: sched, Ctx: ctx}
	var plan *planner.Plan
	if *algName == "auto" || *explain {
		plan = planner.AnalyzeModel(mask, a.Pattern(), b.Pattern(), opt, mdl)
	}
	if sched == core.SchedCost && *algName != "auto" {
		// Pinned variants bypass the planner, so the cost profile the
		// scheduler consumes comes from the explain plan when one was
		// analyzed, or an explicit sweep otherwise.
		if plan != nil {
			opt.RowCosts = plan.Costs
		} else {
			opt.RowCosts = core.ComputeRowCosts(mask, a.Pattern(), b.Pattern(), *threads)
		}
	}
	if *explain {
		// Analyze returns a fresh plan (not a shared cache entry), so the
		// operator-path label can be stamped in place.
		plan.Ops = core.OpsMode(sr)
		fmt.Fprint(os.Stderr, plan.Explain())
	}
	if *batch > 1 {
		runBatch(ctx, mask, a, b, sr, *algName, *threads, *batch, *inflight, rep, sched, *complement, calib, *outPath)
		return
	}
	t0 := time.Now()
	var c *matrix.CSR[float64]
	switch *algName {
	case "auto":
		var stats []core.BlockStat
		c, err = planner.Execute(plan, mask, a, b, sr, opt, &stats)
		check(err)
		for _, bs := range stats {
			fmt.Fprintf(os.Stderr, "auto: rows [%d,%d) %s mask=%s → %d entries\n",
				bs.Block.Lo, bs.Block.Hi, bs.Block.Alg, bs.Block.Rep, bs.OutNNZ)
		}
	case "hybrid":
		var stats core.HybridStats
		c, err = core.MaskedSpGEMMHybrid(core.OnePhase, mask, a, b, sr, opt, &stats)
		check(err)
		fmt.Fprintf(os.Stderr, "hybrid routing: %d pull / %d heap / %d msa rows\n",
			stats.PullRows, stats.HeapRows, stats.MSARows)
	default:
		v, err := core.VariantByName(*algName)
		check(err)
		c, err = core.MaskedSpGEMM(v, mask, a, b, sr, opt)
		check(err)
	}
	elapsed := time.Since(t0)

	flops := core.Flops(a, b, *threads)
	fmt.Printf("A: %dx%d nnz=%d   B: %dx%d nnz=%d   mask nnz=%d\n",
		a.NRows, a.NCols, a.NNZ(), b.NRows, b.NCols, b.NNZ(), mask.NNZ())
	fmt.Printf("C: %dx%d nnz=%d   time=%v   flops(AB)=%d   GFLOPS=%.3f\n",
		c.NRows, c.NCols, c.NNZ(), elapsed.Round(time.Microsecond), flops,
		2*float64(flops)/elapsed.Seconds()/1e9)

	if *outPath != "" {
		check(mmio.WriteFile(*outPath, c))
		fmt.Fprintf(os.Stderr, "mspgemm: wrote %s\n", *outPath)
	}
}

// runBatch submits the product n times through the serving layer and
// reports aggregate throughput. Identical requests coalesce onto one
// computation, so this measures the serving path's admission, arbitration
// and single-flight machinery end to end on real operands.
func runBatch(ctx context.Context, mask *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64],
	algName string, threads, n, inflight int, rep core.MaskRep, sched core.Sched, complement bool, calib masked.Calibration, outPath string) {
	ops := []masked.Op{masked.WithAccumulate(sr), masked.WithMaskRep(rep), masked.WithSched(sched)}
	if complement {
		ops = append(ops, masked.WithComplement())
	}
	switch algName {
	case "auto":
	case "hybrid":
		check(fmt.Errorf("-batch does not support -alg hybrid"))
	default:
		v, err := core.VariantByName(algName)
		check(err)
		ops = append(ops, masked.WithVariant(v))
	}
	s := masked.NewSession(masked.WithThreads(threads), masked.WithInflight(inflight), masked.WithCalibration(calib))
	reqs := make([]masked.BatchReq, n)
	for i := range reqs {
		reqs[i] = masked.BatchReq{M: mask, A: a, B: b, Opts: ops, Tag: i}
	}
	t0 := time.Now()
	res := s.MultiplyBatch(ctx, reqs)
	elapsed := time.Since(t0)
	coalesced := 0
	var c *matrix.CSR[float64]
	for _, r := range res {
		check(r.Err)
		c = r.C
		if r.Coalesced {
			coalesced++
		}
	}
	st := s.ServingStats()
	fmt.Printf("batch: %d requests (%d computed, %d coalesced)   inflight cap=%d   budget=%d workers\n",
		n, n-coalesced, coalesced, st.MaxInflight, st.Budget)
	fmt.Printf("C: %dx%d nnz=%d   total=%v   %.0f req/s\n",
		c.NRows, c.NCols, c.NNZ(), elapsed.Round(time.Microsecond),
		float64(n)/elapsed.Seconds())
	if outPath != "" {
		check(mmio.WriteFile(outPath, c))
		fmt.Fprintf(os.Stderr, "mspgemm: wrote %s\n", outPath)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemm:", err)
		os.Exit(1)
	}
}
