// Command mtxinfo prints structural statistics of a Matrix Market file:
// dimensions, nonzeros, degree distribution summary, symmetry, triangle
// count — the facts needed to sanity-check a benchmark input.
//
// Usage:
//
//	mtxinfo [-triangles] file.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apps"
	"repro/internal/matrix"
	"repro/internal/mmio"
)

func main() {
	triangles := flag.Bool("triangles", false, "also count triangles (exact, can be slow)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mtxinfo [-triangles] file.mtx")
		os.Exit(2)
	}
	g, err := mmio.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtxinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("dimensions:   %d x %d\n", g.NRows, g.NCols)
	fmt.Printf("nonzeros:     %d\n", g.NNZ())
	if g.NRows > 0 {
		fmt.Printf("avg degree:   %.2f\n", float64(g.NNZ())/float64(g.NRows))
	}
	degs := make([]int, g.NRows)
	for i := matrix.Index(0); i < g.NRows; i++ {
		degs[i] = int(g.RowNNZ(i))
	}
	sort.Ints(degs)
	if len(degs) > 0 {
		fmt.Printf("degree min/median/p99/max: %d / %d / %d / %d\n",
			degs[0], degs[len(degs)/2], degs[len(degs)*99/100], degs[len(degs)-1])
	}
	empty := 0
	for _, d := range degs {
		if d == 0 {
			empty++
		}
	}
	fmt.Printf("empty rows:   %d\n", empty)
	fmt.Printf("sorted rows:  %v\n", g.IsSortedRows())
	if g.NRows == g.NCols {
		t := matrix.Transpose(g)
		fmt.Printf("symmetric:    %v\n", matrix.EqualPatterns(g.Pattern(), t.Pattern()))
		if *triangles {
			fmt.Printf("triangles:    %d\n", apps.TriangleCountExact(g))
		}
	}
}
