// Command mspgemm-bench regenerates the tables and figures of the paper's
// evaluation section (§8). Each subcommand emits the data series of one
// figure as a TSV table on stdout; "all" runs everything (EXPERIMENTS.md is
// produced from this output).
//
// Usage:
//
//	mspgemm-bench [flags] fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|maskrep|schedule|serving|serve-load|kernels|calibration|stream|all
//
// Flags:
//
//	-threads N   worker goroutines (default GOMAXPROCS)
//	-seed N      generator seed (default 1)
//	-reps N      timing repetitions, min taken (default 3)
//	-maxscale N  largest R-MAT scale in sweeps (default 13; paper uses 20)
//	-batch N     BC batch size (default 64; paper uses 512)
//	-dims LIST   comma-separated log2 dimensions for fig7 (default "12,14")
//	-quick       shrink grids/corpora for a smoke run
//	-plot        also render each table as an ASCII line chart
//	-alg NAME    replace each application figure's scheme grid with one
//	             scheme: "auto" (the adaptive planner), a variant like
//	             "MSA-1P", or a baseline ("SS:DOT", "SS:SAXPY")
//	-maskrep R   pin the mask representation for every kernel of the run:
//	             auto (default; the planner picks per row block), csr,
//	             bitmap, or dense
//	-sched S     pin the row-scheduling policy for every kernel of the run:
//	             auto (default; cost-balanced spans on skewed cost
//	             profiles), equal (equal-row chunks), or cost
//	-inflight N  largest in-flight request count the serving study sweeps
//	             (default 8)
//	-calibrate M planner cost model for the figure runs: off (default; the
//	             hand-tuned model), auto (the per-host cached probe fit),
//	             or force (re-probe and overwrite the host cache). The
//	             calibration study ignores it — it always compares both
//	-json FILE   also write machine-readable per-case results (ns/op,
//	             allocs/op, scheduling/serving metrics) plus host metadata
//	             (Go version, GOMAXPROCS, CPU model) to FILE, e.g.
//	             -json BENCH_PR8.json. Currently the maskrep, schedule,
//	             serving, serve-load, kernels, calibration and stream
//	             studies record; fig7..fig16 emit TSV only
//	-explain     print the adaptive plan for each corpus input to stderr
//	-timeout D   abort the whole run after duration D (cooperative
//	             cancellation of in-flight kernels), e.g. -timeout 90s
//
// The "maskrep" subcommand is the dense-mask representation study: it times
// the probe-based kernels under the CSR and bitmap representations on
// k-truss- and multi-source-BFS-shaped products and reports the speedup.
// The "schedule" subcommand is the scheduling study: it contrasts equal-row
// chunking against cost-balanced equal-flops spans on skewed (R-MAT) and
// flat (ER) inputs, reporting wall time, a deterministic load-imbalance
// model at ≥4 workers, and the warmed-session driver allocation counts.
// The "serving" subcommand is the concurrency study: a zipf-shaped mixed
// query stream answered serially (one full-budget multiply at a time)
// versus through Session.MultiplyBatch at in-flight caps 1..-inflight,
// reporting throughput, the speedup over serialized execution, how many
// requests were coalesced onto identical in-flight twins (outputs verified
// bit-identical), and the thread arbiter's steal/top-up counters.
// The "serve-load" subcommand is the network serving study: it boots a live
// mspgemm server (internal/server) on an ephemeral localhost port per
// in-flight level, drives it with that many concurrent wire-protocol
// clients issuing a zipf-shaped mixed workload, verifies every response
// bit-identical to an in-process reference, and reports client-observed
// p50/p95/p99 latency, throughput, 429 retries, coalesced responses, and
// the operand-intern/plan-cache hits that restore operand identity across
// the wire.
// The "kernels" subcommand is the operator-monomorphization study: it times
// each named semiring's specialized (inlined-operator) loops against the
// func-field fallback on the triangle-dense TC product, asserts both paths
// produce bit-identical output, and reports per-case and geomean speedups.
// The "calibration" subcommand is the cost-model calibration study: it runs
// the corpus's support- and frontier-shaped products through two sessions —
// one planning with the hand-tuned dimensionless model, one with the host's
// probe-measured coefficients — scores plan-identical cases exactly 1.0x,
// times and bit-verifies the differing ones, and reports per-case and
// geomean speedups plus the fitted coefficients.
// The "stream" subcommand is the delta-CSR streaming study: it maintains the
// triangle product incrementally under an edge stream mutating ~0.25% of
// edges per batch, asserts every incremental output bit-identical to a
// from-scratch recompute on the same session, and reports per-batch wall
// time, edges/sec, and the speedup over recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/planner"
	"repro/masked"
)

func main() {
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker goroutines")
	seed := flag.Uint64("seed", 1, "generator seed")
	reps := flag.Int("reps", 3, "timing repetitions (min taken)")
	maxScale := flag.Int("maxscale", 13, "largest R-MAT scale in sweeps")
	batch := flag.Int("batch", 64, "betweenness centrality batch size")
	dims := flag.String("dims", "12,14", "comma-separated log2 dimensions for fig7")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	plot := flag.Bool("plot", false, "also render each table as an ASCII line chart")
	alg := flag.String("alg", "", "run application figures with this single scheme (e.g. auto, MSA-1P, SS:SAXPY)")
	maskRep := flag.String("maskrep", "auto", "pin the mask representation: auto | csr | bitmap | dense")
	sched := flag.String("sched", "auto", "pin the row-scheduling policy: auto | equal | cost")
	inflight := flag.Int("inflight", 8, "largest in-flight request count the serving study sweeps")
	calibrate := flag.String("calibrate", "off", "planner cost model for the figure runs: off (hand-tuned) | auto (per-host cached probes) | force (re-probe); the calibration study always compares both")
	jsonPath := flag.String("json", "", "write machine-readable per-case results of the maskrep/schedule/serving/serve-load/kernels/calibration studies to this file (e.g. BENCH_PR8.json)")
	explain := flag.Bool("explain", false, "print the adaptive plan for each corpus input to stderr")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration, e.g. 90s (0 = no limit)")
	flag.Parse()
	plotTables = *plot

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mspgemm-bench [flags] fig7|...|fig16|maskrep|schedule|serving|serve-load|kernels|calibration|stream|all")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := core.MaskRepByName(*maskRep)
	if err != nil {
		fatal(fmt.Errorf("-maskrep: %w", err))
	}
	schedPolicy, err := core.SchedByName(*sched)
	if err != nil {
		fatal(fmt.Errorf("-sched: %w", err))
	}
	calib, err := masked.ParseCalibration(*calibrate)
	if err != nil {
		fatal(fmt.Errorf("-calibrate: %w", err))
	}
	// One engine session for the whole run: every figure shares this plan
	// cache and thread/context budget.
	session := apps.NewSession(core.Options{Threads: *threads, MaskRep: rep, Sched: schedPolicy, Ctx: ctx})
	if calib != masked.CalibrationOff {
		session.Cache.SetModel(planner.HostModel(calib == masked.CalibrationForce))
	}
	if *alg != "" {
		if _, err := session.EngineByName(*alg); err != nil {
			fatal(fmt.Errorf("-alg: %w", err))
		}
	}
	var recorder *bench.Recorder
	if *jsonPath != "" {
		recorder = &bench.Recorder{}
	}
	cfg := bench.Config{
		Threads:   *threads,
		Seed:      *seed,
		Reps:      *reps,
		MaxScale:  *maxScale,
		BatchSize: *batch,
		Quick:     *quick,
		Engine:    *alg,
		MaskRep:   rep,
		Sched:     schedPolicy,
		Inflight:  *inflight,
		Explain:   *explain,
		Ctx:       ctx,
		Engines:   session,
		Recorder:  recorder,
	}
	dimList, err := parseDims(*dims)
	if err != nil {
		fatal(err)
	}
	which := flag.Arg(0)
	run := func(name string) {
		switch name {
		case "fig7":
			for _, t := range bench.Fig7(cfg, dimList) {
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		case "fig8":
			emit(bench.Fig8(cfg))
		case "fig9":
			emit(bench.Fig9(cfg))
		case "fig10":
			emitT(bench.Fig10(cfg))
		case "fig11":
			emitT(bench.Fig11(cfg))
		case "fig12":
			emit(bench.Fig12(cfg))
		case "fig13":
			emit(bench.Fig13(cfg))
		case "fig14":
			emitT(bench.Fig14(cfg))
		case "fig15":
			emitT(bench.Fig15(cfg))
		case "fig16":
			emit(bench.Fig16(cfg))
		case "maskrep":
			emit(bench.MaskRepStudy(cfg))
		case "schedule":
			emit(bench.ScheduleStudy(cfg))
		case "serving":
			emit(bench.ServingStudy(cfg))
		case "serve-load":
			emit(bench.ServeLoadStudy(cfg))
		case "kernels":
			emit(bench.KernelsStudy(cfg))
		case "calibration":
			emit(bench.CalibrationStudy(cfg))
		case "stream":
			emit(bench.StreamStudy(cfg))
		default:
			fatal(fmt.Errorf("unknown figure %q", name))
		}
	}
	if which == "all" {
		for _, name := range []string{"fig7", "fig8", "fig9", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15", "fig16", "maskrep", "schedule", "serving", "serve-load", "kernels", "calibration", "stream"} {
			run(name)
		}
	} else {
		run(which)
	}
	if recorder != nil {
		if err := recorder.WriteJSON(*jsonPath); err != nil {
			fatal(fmt.Errorf("-json: %w", err))
		}
		fmt.Fprintf(os.Stderr, "mspgemm-bench: wrote %s (%d records)\n", *jsonPath, len(recorder.Records()))
	}
}

func emit(t *bench.Table, err error) {
	if err != nil {
		fatal(err)
	}
	emitT(t)
}

// plotTables is set by the -plot flag.
var plotTables bool

func emitT(t *bench.Table) {
	t.Fprint(os.Stdout)
	if plotTables {
		if chart := bench.RenderTablePlot(t); chart != "" {
			fmt.Println(chart)
		}
	}
	fmt.Println()
}

func parseDims(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 4 || v > 24 {
			return nil, fmt.Errorf("bad -dims entry %q (want log2 sizes in 4..24)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-dims is empty")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mspgemm-bench:", err)
	os.Exit(1)
}
