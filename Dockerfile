# Build and package cmd/mspgemm-server: the HTTP front end serving masked
# SpGEMM over the binary wire protocol (see ARCHITECTURE.md, "Network
# serving"). Static binary, distroless runtime, health-checked via the
# binary's own -healthcheck mode so the image needs no shell or curl.

FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/mspgemm-server ./cmd/mspgemm-server

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/mspgemm-server /mspgemm-server
EXPOSE 8080
HEALTHCHECK --interval=30s --timeout=5s --start-period=5s \
    CMD ["/mspgemm-server", "-healthcheck", "http://127.0.0.1:8080"]
ENTRYPOINT ["/mspgemm-server"]
CMD ["-addr", ":8080"]
