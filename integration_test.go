// Cross-module integration tests: end-to-end pipelines that exercise the
// generators, Matrix Market I/O, all three API levels (internal kernels,
// grb layer, public facade) and the applications against each other.
package repro_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grb"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/semiring"
	"repro/masked"
)

// TestPipelineGenerateWriteReadCount: generate a graph, round-trip it
// through Matrix Market, and verify that triangle counting agrees across
// the facade, the grb layer, the apps engines and the exact counter.
func TestPipelineGenerateWriteReadCount(t *testing.T) {
	g := grgen.RMAT(8, 8, 77)
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := mmio.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := mmio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(g, back, func(a, b float64) bool { return a == b }) {
		t.Fatal("matrix market round trip changed the graph")
	}
	exact := apps.TriangleCountExact(back)
	// Facade (session API; the deprecated free wrappers are not used here
	// so they can carry a removal deadline).
	v, _ := masked.VariantByName("Hash-1P")
	s := masked.NewSession()
	fres, err := s.TriangleCount(context.Background(), back, masked.WithVariant(v))
	if err != nil {
		t.Fatal(err)
	}
	if fres.Triangles != exact {
		t.Fatalf("facade: %d triangles, want %d", fres.Triangles, exact)
	}
	// grb layer.
	gres, err := grb.TriangleCount(grb.WrapCSR(back), &grb.Desc{Method: core.MCA})
	if err != nil {
		t.Fatal(err)
	}
	if gres != exact {
		t.Fatalf("grb: %d triangles, want %d", gres, exact)
	}
}

// TestPipelineHybridVsFixedOnCorpusShapes: the hybrid kernel must agree
// with the fixed kernels on structurally diverse graphs.
func TestPipelineHybridVsFixedOnCorpusShapes(t *testing.T) {
	graphs := []*matrix.CSR[float64]{
		grgen.WattsStrogatz(400, 6, 0.1, 1),
		grgen.BarabasiAlbert(400, 3, 2),
		grgen.Grid2D(20, 20),
		grgen.RMAT(8, 8, 3),
	}
	sr := semiring.PlusPairF()
	for gi, g := range graphs {
		l := matrix.Tril(g)
		want, err := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase},
			l.Pattern(), l, l, sr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.MaskedSpGEMMHybrid(core.OnePhase, l.Pattern(), l, l, sr, core.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("graph %d: hybrid disagrees", gi)
		}
		// Column-major path agrees too.
		cols, err := core.MaskedSpGEMMColumns(core.Variant{Alg: core.Hash, Phase: core.TwoPhase},
			l.Pattern(), l, l, sr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(cols, want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("graph %d: column-major disagrees", gi)
		}
	}
}

// TestPipelineBFSAcrossAPIs: single-source facade BFS, grb BFS and the
// multi-source batch BFS agree with the queue reference on every model.
func TestPipelineBFSAcrossAPIs(t *testing.T) {
	graphs := []*matrix.CSR[float64]{
		grgen.WattsStrogatz(300, 4, 0.2, 9),
		grgen.Grid2D(15, 20),
		grgen.BarabasiAlbert(300, 2, 4),
	}
	ctx := context.Background()
	s := masked.NewSession()
	for gi, g := range graphs {
		want := apps.BFSExact(g, 0)
		fres, err := s.BFS(ctx, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		glev, err := grb.BFSLevels(grb.WrapCSR(g), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := masked.VariantByName("MSA-1P")
		mres, err := s.MultiSourceBFS(ctx, g, []matrix.Index{0}, masked.WithVariant(v))
		if err != nil {
			t.Fatal(err)
		}
		for vtx := range want {
			if fres.Level[vtx] != want[vtx] {
				t.Fatalf("graph %d facade BFS: vertex %d", gi, vtx)
			}
			if glev[vtx] != want[vtx] {
				t.Fatalf("graph %d grb BFS: vertex %d", gi, vtx)
			}
			if mres.Levels[0][vtx] != want[vtx] {
				t.Fatalf("graph %d multi-source BFS: vertex %d", gi, vtx)
			}
		}
	}
}

// TestPipelineKTrussConsistency: the specialized k-truss, the grb-native
// k-truss and the exact reference agree on the mesh (which is triangle-free
// → empty 3-truss) and on a clique-rich small world graph.
func TestPipelineKTrussConsistency(t *testing.T) {
	mesh := grgen.Grid2D(12, 12)
	v, _ := masked.VariantByName("MCA-1P")
	ctx := context.Background()
	s := masked.NewSession()
	truss, _, err := s.KTruss(ctx, mesh, 3, masked.WithVariant(v))
	if err != nil {
		t.Fatal(err)
	}
	if truss.NNZ() != 0 {
		t.Fatal("mesh 3-truss must be empty (triangle-free)")
	}
	ws := grgen.WattsStrogatz(200, 8, 0.05, 6)
	want := apps.KTrussExact(ws, 4)
	got, _, err := s.KTruss(ctx, ws, 4, masked.WithVariant(v))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualPatterns(got.Pattern(), want.Pattern()) {
		t.Fatalf("ws 4-truss: %d edges vs exact %d", got.NNZ(), want.NNZ())
	}
	edges, _, err := grb.KTrussEdges(grb.WrapCSR(ws), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if edges != want.NNZ() {
		t.Fatalf("grb 4-truss: %d edges vs exact %d", edges, want.NNZ())
	}
}

// TestPipelineBCDeterminism: BC scores are independent of the engine,
// thread count and phase (floating-point order is fixed per row by the
// sorted gather).
func TestPipelineBCDeterminism(t *testing.T) {
	g := grgen.WattsStrogatz(150, 4, 0.3, 8)
	sources := []matrix.Index{0, 10, 20, 30}
	want := apps.BrandesExact(g, sources)
	ctx := context.Background()
	s := masked.NewSession()
	for _, name := range []string{"MSA-1P", "Hash-2P", "HeapDot-1P"} {
		v, _ := masked.VariantByName(name)
		for _, threads := range []int{1, 4} {
			res, err := s.BC(ctx, g, sources, masked.WithVariant(v), masked.WithThreads(threads))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				diff := res.Scores[i] - want[i]
				if diff < -1e-9 || diff > 1e-9 {
					t.Fatalf("%s threads=%d: vertex %d: %v vs %v", name, threads, i, res.Scores[i], want[i])
				}
			}
		}
	}
}

// TestPipelineMCLOnGenerators: MCL splits a two-community small-world
// graph into a small number of clusters, and the masked expansion agrees
// with the full expansion on cluster count for a stable instance.
func TestPipelineMCLOnGenerators(t *testing.T) {
	// Two WS communities bridged by one edge.
	a := grgen.WattsStrogatz(40, 6, 0.0, 1)
	n := matrix.Index(80)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := matrix.Index(0); i < 40; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			coo.Row = append(coo.Row, i, i+40)
			coo.Col = append(coo.Col, j, j+40)
			coo.Val = append(coo.Val, 1, 1)
		}
	}
	coo.Row = append(coo.Row, 0, 40)
	coo.Col = append(coo.Col, 40, 0)
	coo.Val = append(coo.Val, 1, 1)
	g := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return 1 })
	v, _ := masked.VariantByName("MSA-1P")
	eng := apps.EngineVariant(core.Variant{Alg: v.Alg, Phase: v.Phase}, core.Options{})
	res, err := apps.MCL(g, apps.MCLOptions{}, eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 2 || res.Clusters > 10 {
		t.Fatalf("clusters = %d, want a small community count", res.Clusters)
	}
	// The two halves should not share a single cluster wholesale.
	if res.Cluster[5] == res.Cluster[45] {
		t.Log("bridged communities merged — acceptable for MCL with default inflation, but unusual")
	}
}

// TestPipelineAutoMatchesEveryVariant: the adaptive planner's product is
// bit-identical to every fixed variant on the integration graph corpus, in
// both mask modes, and the Auto engine completes every application.
func TestPipelineAutoMatchesEveryVariant(t *testing.T) {
	graphs := []*matrix.CSR[float64]{
		grgen.WattsStrogatz(400, 6, 0.1, 1),
		grgen.BarabasiAlbert(400, 3, 2),
		grgen.Grid2D(20, 20),
		grgen.RMAT(9, 8, 3),
	}
	sr := semiring.PlusPairF()
	eq := func(a, b float64) bool { return a == b }
	ctx := context.Background()
	s := masked.NewSession()
	for gi, g := range graphs {
		l := matrix.Tril(g)
		for _, complement := range []bool{false, true} {
			opts := []masked.Op{masked.WithAccumulate(sr)}
			if complement {
				opts = append(opts, masked.WithComplement())
			}
			got, plan, err := s.MultiplyAuto(ctx, l.Pattern(), l, l, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range masked.Variants() {
				if complement && !v.SupportsComplement() {
					continue
				}
				want, err := s.Multiply(ctx, l.Pattern(), l, l, append(opts, masked.WithVariant(v))...)
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(got, want, eq) {
					t.Fatalf("graph %d complement=%v: auto disagrees with %s\n%s",
						gi, complement, v.Name(), plan.Explain())
				}
			}
		}
	}
	// Auto engine drives the applications end-to-end.
	eng := apps.EngineAuto(core.Options{})
	g := graphs[3]
	tc, err := apps.TriangleCount(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	if exact := apps.TriangleCountExact(g); tc.Triangles != exact {
		t.Fatalf("auto TC %d, want %d", tc.Triangles, exact)
	}
	if _, _, err := apps.KTruss(g, 4, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := apps.BetweennessCentrality(g, []matrix.Index{0, 5, 9}, eng); err != nil {
		t.Fatal(err)
	}
	if _, err := apps.MultiSourceBFS(g, []matrix.Index{0, 1}, eng); err != nil {
		t.Fatal(err)
	}
}
