// Triangle counting on a Graph500-style R-MAT graph (§8.2 of the paper):
// relabel by descending degree, take the strictly lower triangle L and
// compute sum(L .* (L·L)) on the plus-pair semiring. Compares all variants
// and reports the per-variant GFLOPS the paper plots in Figure 10.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/masked"
)

func main() {
	scale := flag.Int("scale", 11, "R-MAT scale (vertices = 2^scale)")
	edgeFactor := flag.Int("ef", 16, "R-MAT edge factor")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	g := masked.RMAT(*scale, *edgeFactor, *seed)
	fmt.Printf("graph: R-MAT scale %d, %d vertices, %d directed edges\n",
		*scale, g.NRows, g.NNZ())

	ctx := context.Background()
	s := masked.NewSession()
	var want int64 = -1
	for _, v := range masked.Variants() {
		res, err := s.TriangleCount(ctx, g, masked.WithVariant(v))
		if err != nil {
			log.Fatal(err)
		}
		if want < 0 {
			want = res.Triangles
		} else if res.Triangles != want {
			log.Fatalf("%s counted %d triangles, want %d", v.Name(), res.Triangles, want)
		}
		fmt.Printf("  %-11s %12d triangles   %8.3f GFLOPS   masked %v\n",
			v.Name(), res.Triangles, res.GFLOPS(), res.MaskedTime.Round(1000))
	}
	fmt.Printf("triangles: %d (all variants agree)\n", want)
}
