// Quickstart: build two small sparse matrices and a mask, open a Session,
// run the masked product with every algorithm variant, and show they
// agree — the minimal end-to-end tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/masked"
)

func main() {
	// A 4x4 example:
	//
	//     A = 1 2 . .      B = 1 . . .      M = x . x .
	//         . 1 . .          . 1 2 .          . x . .
	//         3 . 1 .          1 . 1 .          x . x .
	//         . . . 1          . 2 . 1          . . . x
	a := masked.FromCOO(&masked.COO{
		NRows: 4, NCols: 4,
		Row: []masked.Index{0, 0, 1, 2, 2, 3},
		Col: []masked.Index{0, 1, 1, 0, 2, 3},
		Val: []float64{1, 2, 1, 3, 1, 1},
	})
	b := masked.FromCOO(&masked.COO{
		NRows: 4, NCols: 4,
		Row: []masked.Index{0, 1, 1, 2, 2, 3, 3},
		Col: []masked.Index{0, 1, 2, 0, 2, 1, 3},
		Val: []float64{1, 1, 2, 1, 1, 2, 1},
	})
	mask := masked.FromCOO(&masked.COO{
		NRows: 4, NCols: 4,
		Row: []masked.Index{0, 0, 1, 2, 2, 3},
		Col: []masked.Index{0, 2, 1, 0, 2, 3},
		Val: []float64{1, 1, 1, 1, 1, 1},
	}).Pattern()

	// A session owns the plan cache and reusable workspaces of a sequence
	// of products; every operation takes a cancellable context.
	s := masked.NewSession()
	ctx := context.Background()

	// Default: the adaptive planner picks the variant.
	c, err := s.Multiply(ctx, mask, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C = M .* (A*B):")
	printMatrix(c)

	// The same product with every pinned variant must agree.
	for _, v := range masked.Variants() {
		ci, err := s.Multiply(ctx, mask, a, b, masked.WithVariant(v))
		if err != nil {
			log.Fatal(err)
		}
		if !sameMatrix(c, ci) {
			log.Fatalf("%s disagrees with the planned product", v.Name())
		}
	}
	fmt.Printf("all %d variants agree\n", len(masked.Variants()))

	// Complemented mask: entries of A*B *outside* the mask.
	cc, err := s.Multiply(ctx, mask, a, b, masked.WithComplement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C = ¬M .* (A*B):")
	printMatrix(cc)
	fmt.Printf("flops(A*B) = %d, masked nnz = %d, complement nnz = %d\n",
		masked.Flops(a, b), c.NNZ(), cc.NNZ())
}

func printMatrix(m *masked.Matrix) {
	for i := masked.Index(0); i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			fmt.Printf("  (%d,%d) = %g\n", i, cols[k], vals[k])
		}
	}
}

func sameMatrix(a, b *masked.Matrix) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}
