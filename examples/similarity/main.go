// Masked inner-product similarity — the data-analytics use case the
// paper's abstract motivates: score only *candidate* item pairs of F·Fᵀ
// rather than materializing the full (quadratic) similarity matrix. The
// candidate mask comes from feature co-occurrence, and the masked SpGEMM
// computes exactly the wanted dot products.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/masked"
)

func main() {
	items := flag.Int("items", 2000, "number of items")
	features := flag.Int("features", 500, "number of distinct features")
	perItem := flag.Float64("per-item", 8, "average features per item")
	minShared := flag.Int("min-shared", 2, "co-occurrence threshold for candidate pairs")
	seed := flag.Uint64("seed", 21, "generator seed")
	flag.Parse()

	// Synthetic item-feature matrix.
	f := masked.NewEmpty(0, 0)
	_ = f
	fm := rectFeatures(masked.Index(*items), masked.Index(*features), *perItem, *seed)
	fmt.Printf("features: %d items x %d features, %d entries\n", fm.NRows, fm.NCols, fm.NNZ())

	cand := apps.TopKCandidates(fm, *minShared, 64)
	fmt.Printf("candidates: %d pairs (%.4f%% of all pairs)\n", cand.NNZ(),
		100*float64(cand.NNZ())/(float64(fm.NRows)*float64(fm.NRows)))

	v, _ := masked.VariantByName("Hash-1P")
	eng := apps.EngineVariant(v, core.Options{})
	res, err := apps.CosineSimilarity(fm, cand, eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d pairs, masked time %v\n", res.Pairs, res.MaskedTime.Round(1000))

	type pair struct {
		i, j masked.Index
		cos  float64
	}
	var top []pair
	for i := masked.Index(0); i < res.Scores.NRows; i++ {
		cols, vals := res.Scores.Row(i)
		for k := range cols {
			if cols[k] > i {
				top = append(top, pair{i, cols[k], vals[k]})
			}
		}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].cos > top[b].cos })
	fmt.Println("top-5 most similar candidate pairs:")
	for _, p := range top[:min(5, len(top))] {
		fmt.Printf("  items %5d, %5d: cosine %.4f\n", p.i, p.j, p.cos)
	}
}

// rectFeatures builds a random items×features matrix via the public COO API.
func rectFeatures(items, features masked.Index, perItem float64, seed uint64) *masked.Matrix {
	// splitmix64-style generator for determinism without importing rand.
	state := seed*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	coo := &masked.COO{NRows: items, NCols: features}
	target := int(float64(items) * perItem)
	for e := 0; e < target; e++ {
		coo.Row = append(coo.Row, masked.Index(next()%uint64(items)))
		coo.Col = append(coo.Col, masked.Index(next()%uint64(features)))
		coo.Val = append(coo.Val, 1+float64(next()%3))
	}
	return masked.FromCOO(coo)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
