// Batched betweenness centrality (§8.4 of the paper): the forward BFS
// stage uses a *complemented* masked product (never revisit discovered
// vertices), the backward dependency stage a normal one. Validates the
// masked-SpGEMM formulation against the textbook sequential Brandes
// algorithm and prints the top-central vertices and the MTEPS rate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/masked"
)

func main() {
	scale := flag.Int("scale", 10, "R-MAT scale")
	edgeFactor := flag.Int("ef", 16, "R-MAT edge factor")
	batch := flag.Int("batch", 32, "number of BFS sources (paper uses 512)")
	seed := flag.Uint64("seed", 3, "generator seed")
	flag.Parse()

	g := masked.RMAT(*scale, *edgeFactor, *seed)
	fmt.Printf("graph: %d vertices, %d directed edges, batch %d\n", g.NRows, g.NNZ(), *batch)

	sources := make([]masked.Index, *batch)
	stride := int(g.NRows) / *batch
	if stride == 0 {
		stride = 1
	}
	for i := range sources {
		sources[i] = masked.Index(i * stride % int(g.NRows))
	}

	v, _ := masked.VariantByName("MSA-1P")
	s := masked.NewSession()
	res, err := s.BC(context.Background(), g, sources, masked.WithVariant(v))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depth %d, masked time %v (fwd %v, bwd %v), %.2f MTEPS\n",
		res.Depth, res.MaskedTime.Round(1000),
		res.ForwardTime.Round(1000), res.BackwardTime.Round(1000), res.MTEPS())

	// Validate against sequential Brandes.
	want := apps.BrandesExact(g, sources)
	for i := range want {
		if math.Abs(res.Scores[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			log.Fatalf("mismatch vs Brandes at vertex %d: %g vs %g", i, res.Scores[i], want[i])
		}
	}
	fmt.Println("matches sequential Brandes exactly")

	type vc struct {
		v  int
		bc float64
	}
	ranked := make([]vc, len(res.Scores))
	for i, s := range res.Scores {
		ranked[i] = vc{i, s}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].bc > ranked[j].bc })
	fmt.Println("top-5 central vertices:")
	for _, r := range ranked[:5] {
		fmt.Printf("  vertex %6d  bc = %.1f\n", r.v, r.bc)
	}
}
