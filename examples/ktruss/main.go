// k-truss decomposition (§8.3 of the paper): iteratively compute per-edge
// triangle support with the masked product S = A .* (A·A) and prune edges
// below k-2, until a fixed point. Shows how the mask sparsifies over
// rounds — the effect that makes pull-based (Inner) algorithms competitive
// in this benchmark.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/masked"
)

func main() {
	scale := flag.Int("scale", 11, "R-MAT scale")
	edgeFactor := flag.Int("ef", 16, "R-MAT edge factor")
	k := flag.Int("k", 5, "truss order (paper uses 5)")
	seed := flag.Uint64("seed", 7, "generator seed")
	flag.Parse()

	g := masked.RMAT(*scale, *edgeFactor, *seed)
	fmt.Printf("graph: %d vertices, %d directed edges, k=%d\n", g.NRows, g.NNZ(), *k)

	ctx := context.Background()
	s := masked.NewSession()
	for _, name := range []string{"MSA-1P", "Hash-1P", "Inner-1P", "MCA-1P"} {
		v, err := masked.VariantByName(name)
		if err != nil {
			log.Fatal(err)
		}
		truss, res, err := s.KTruss(ctx, g, *k, masked.WithVariant(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %2d iterations  %9d edges kept  %8.3f GFLOPS  masked %v\n",
			name, res.Iterations, truss.NNZ(), res.GFLOPS(), res.MaskedTime.Round(1000))
	}
}
