// Direction-optimized breadth-first search — the application that
// originated masked products (§4 of the paper traces masking to
// direction-optimized traversal): each expansion computes
// next = ¬visited .* (frontierᵀ·A), and the kernel switches between push
// (MSA scatter from the frontier) and pull (dot products into the
// unvisited candidates) by the Beamer heuristic.
//
// The traversal runs on a masked.Session — the iterative loop reuses the
// session's pooled workspaces every level — under a -timeout deadline
// honored mid-multiply.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/masked"
)

func main() {
	scale := flag.Int("scale", 12, "R-MAT scale")
	edgeFactor := flag.Int("ef", 16, "R-MAT edge factor")
	source := flag.Int("source", 0, "BFS source vertex")
	seed := flag.Uint64("seed", 11, "generator seed")
	timeout := flag.Duration("timeout", time.Minute, "abort the search after this duration")
	flag.Parse()

	g := masked.RMAT(*scale, *edgeFactor, *seed)
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NRows, g.NNZ())

	s := masked.NewSession()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := s.BFS(ctx, g, masked.Index(*source))
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	hist := map[int32]int{}
	for _, l := range res.Level {
		if l >= 0 {
			reached++
			hist[l]++
		}
	}
	fmt.Printf("reached %d/%d vertices in %d levels (%d push steps, %d pull steps, %v)\n",
		reached, g.NRows, res.Depth, res.PushSteps, res.PullSteps, res.TotalTime.Round(1000))
	for l := int32(0); l <= int32(res.Depth); l++ {
		if hist[l] > 0 {
			fmt.Printf("  level %2d: %7d vertices\n", l, hist[l])
		}
	}

	// Validate against the queue-based reference.
	want := apps.BFSExact(g, masked.Index(*source))
	for v := range want {
		if res.Level[v] != want[v] {
			log.Fatalf("mismatch at vertex %d: %d vs %d", v, res.Level[v], want[v])
		}
	}
	fmt.Println("matches reference BFS exactly")
}
