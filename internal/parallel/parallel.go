// Package parallel provides small helpers for data-parallel loops used by
// the masked SpGEMM kernels and the graph applications.
//
// All kernels in this repository parallelize across matrix rows, following
// the paper's observation (§3) that there is plenty of coarse-grained
// parallelism across rows on multi-core machines. Work is distributed
// dynamically in one of two ways: workers claim fixed-size (equal-row)
// chunks of the iteration space from a shared atomic counter, or — when a
// per-row cost profile is available (the ForCost* variants) — equal-cost
// spans found by binary search over the cost prefix sum, which keeps load
// balanced even when row costs are heavily skewed (power-law graphs).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// DefaultGrain is the number of consecutive loop indices a worker claims at
// a time when no explicit grain is given. Chosen so that a chunk amortizes
// the atomic fetch-add while still load-balancing heavy-tailed row costs.
const DefaultGrain = 64

// Threads returns the effective worker count: n if positive, otherwise
// GOMAXPROCS.
func Threads(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPanic is what the coordinator re-panics with on its own goroutine
// when a worker goroutine panics: the first worker's panic value plus that
// worker's stack, captured at the point of panic. Without this translation a
// worker panic would crash the process from a goroutine nobody can recover
// on; with it, the panic surfaces on the goroutine that called For/ForChunks
// /ForWorkers, where the serving layer's recover barriers can turn it into
// an error response.
type WorkerPanic struct {
	// Value is the original panic value from the worker goroutine.
	Value any
	// Stack is the worker goroutine's stack at the point of panic.
	Stack []byte
}

// String renders the original panic value and the worker stack.
func (p WorkerPanic) String() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// panicBox collects the first worker panic of a parallel loop. capture runs
// deferred on each worker; it poisons the shared claim counter so surviving
// workers drain within one grain, and records the panic for rethrow to
// re-raise on the coordinator after wg.Wait (which orders the writes).
type panicBox struct {
	once sync.Once
	pan  *WorkerPanic
}

// poisonClaims is stored into a loop's claim counter when a worker panics:
// far beyond any real n, so every later claim comes back empty.
const poisonClaims = int64(1) << 62

func (b *panicBox) capture(next *atomic.Int64) {
	if v := recover(); v != nil {
		stack := debug.Stack()
		b.once.Do(func() {
			b.pan = &WorkerPanic{Value: v, Stack: stack}
		})
		next.Store(poisonClaims)
	}
}

func (b *panicBox) rethrow() {
	if b.pan != nil {
		panic(*b.pan)
	}
}

// maybePanic fires the parallel.worker.panic fault-injection point.
func maybePanic() {
	if faultinject.Fire(faultinject.PointWorkerPanic) {
		panic("faultinject: " + faultinject.PointWorkerPanic)
	}
}

// For runs body(i) for every i in [0, n) using the given number of worker
// goroutines (0 means GOMAXPROCS) and dynamic chunk scheduling with
// DefaultGrain. It returns after all iterations complete.
func For(n, workers int, body func(i int)) {
	ForGrain(n, workers, DefaultGrain, body)
}

// ForGrain is For with an explicit chunk size.
func ForGrain(n, workers, grain int, body func(i int)) {
	ForChunks(n, workers, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunks runs body(lo, hi) over disjoint chunks [lo, hi) covering [0, n).
// Chunks are claimed dynamically. Each worker goroutine calls body
// sequentially for the chunks it claims, so per-worker state can be reused
// across chunks only via ForWorkers.
//
// A panic in body does not crash the process from a worker goroutine: the
// remaining workers drain (at most one in-flight chunk each), and the first
// panic is re-raised on the calling goroutine as a WorkerPanic carrying the
// worker's stack, where the caller's own recover (if any) sees it.
func ForChunks(n, workers, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Threads(workers)
	if p > n/grain+1 {
		p = n/grain + 1
	}
	if p <= 1 {
		body(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pan panicBox
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			defer pan.capture(&next)
			maybePanic()
			for {
				lo64 := next.Add(int64(grain)) - int64(grain)
				if lo64 >= int64(n) {
					return
				}
				lo := int(lo64)
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	pan.rethrow()
}

// ForWorkers runs p worker goroutines. Each worker receives its worker id
// and a claim function; repeatedly calling claim yields disjoint chunks
// [lo, hi) of [0, n) until ok is false. This form lets a worker allocate
// scratch state (e.g. an accumulator) once and reuse it across all chunks it
// processes, which is how the SpGEMM kernels avoid per-row allocation.
//
// Worker panics are re-raised on the calling goroutine as a WorkerPanic
// (see ForChunks); surviving workers see claim report done and drain.
func ForWorkers(n, workers, grain int, worker func(id int, claim func() (lo, hi int, ok bool))) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Threads(workers)
	if p > n/grain+1 {
		p = n/grain + 1
	}
	if p < 1 {
		p = 1
	}
	var next atomic.Int64
	claim := func() (int, int, bool) {
		lo64 := next.Add(int64(grain)) - int64(grain)
		if lo64 >= int64(n) {
			return 0, 0, false
		}
		lo := int(lo64)
		hi := lo + grain
		if hi > n {
			hi = n
		}
		return lo, hi, true
	}
	if p == 1 {
		worker(0, claim)
		return
	}
	var wg sync.WaitGroup
	var pan panicBox
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(id int) {
			defer wg.Done()
			defer pan.capture(&next)
			maybePanic()
			worker(id, claim)
		}(w)
	}
	wg.Wait()
	pan.rethrow()
}

// ForWorkersCtx is ForWorkers with cooperative cancellation: the claim
// function observes ctx between chunks, so a cancelled context stops every
// worker after at most one grain of remaining work per worker. Returns
// ctx.Err() when the iteration stopped early, nil when every index ran.
// A nil context (or one that can never be cancelled) adds no overhead.
//
// Cancellation is cooperative at chunk granularity: indices inside an
// already-claimed chunk still run, so per-index state stays consistent and
// workers never abandon a row half-computed.
func ForWorkersCtx(ctx context.Context, n, workers, grain int, worker func(id int, claim func() (lo, hi int, ok bool))) error {
	if ctx == nil || ctx.Done() == nil {
		ForWorkers(n, workers, grain, worker)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	var cancelled atomic.Bool
	ForWorkers(n, workers, grain, func(id int, claim func() (lo, hi int, ok bool)) {
		worker(id, func() (int, int, bool) {
			if cancelled.Load() {
				return 0, 0, false
			}
			select {
			case <-done:
				cancelled.Store(true)
				return 0, 0, false
			default:
			}
			return claim()
		})
	})
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// ForChunksCtx is ForChunks with cooperative cancellation (see
// ForWorkersCtx for the semantics).
func ForChunksCtx(ctx context.Context, n, workers, grain int, body func(lo, hi int)) error {
	if ctx == nil || ctx.Done() == nil {
		ForChunks(n, workers, grain, body)
		return nil
	}
	return ForWorkersCtx(ctx, n, workers, grain, func(_ int, claim func() (lo, hi int, ok bool)) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			body(lo, hi)
		}
	})
}

// ExclusiveScan computes the exclusive prefix sum of counts in place:
// counts[i] becomes sum of the original counts[0..i), and the total sum is
// returned. Used to turn per-row nnz counts into CSR row pointers.
func ExclusiveScan(counts []int64) int64 {
	var sum int64
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	return sum
}
