package parallel

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// Cost-balanced scheduling. Equal-row chunking (ForChunks/ForWorkers) bounds
// imbalance only when row costs are comparable; on power-law graphs a single
// chunk can carry orders of magnitude more flops than its neighbours, and a
// worker that claims it late becomes the tail of the whole pass. The ForCost*
// variants instead claim *equal-cost* spans: given a monotone prefix sum of
// per-row costs, each claim binary-searches the span whose cost matches a
// guided target — large spans while much work remains (amortizing the atomic
// claim), tapering down so the final spans are small enough to even out the
// tail.
const (
	// costTaperDivisor: a claim targets remaining/(costTaperDivisor·p) cost,
	// the classic guided self-scheduling taper.
	costTaperDivisor = 2
	// costSpanFloorDivisor floors the span cost at total/(p·floorDivisor)+1
	// so the taper cannot degenerate into per-row claims on the tail.
	costSpanFloorDivisor = 128
)

// costWorkerCount caps the worker count at one worker per row.
func costWorkerCount(n, workers int) int {
	p := Threads(workers)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// costClaimer returns a claim function handing out disjoint spans [lo, hi)
// of [0, n) with approximately equal cost per span under a guided taper.
// prefix must be the monotone prefix sum of per-row costs with length n+1
// (prefix[i+1]-prefix[i] is the cost of row i; prefix[0] is an arbitrary
// base). Rows of zero cost are absorbed into their span for free.
func costClaimer(n, p int, prefix []int64) func() (int, int, bool) {
	total := prefix[n] - prefix[0]
	floor := total/int64(p*costSpanFloorDivisor) + 1
	var next atomic.Int64
	return func() (int, int, bool) {
		for {
			lo := int(next.Load())
			if lo >= n {
				return 0, 0, false
			}
			target := (prefix[n] - prefix[lo]) / int64(p*costTaperDivisor)
			if target < floor {
				target = floor
			}
			// Smallest hi in (lo, n] whose span [lo, hi) reaches the target
			// cost; every span advances at least one row, and a zero-cost
			// tail is claimed whole.
			hi := lo + 1 + sort.Search(n-lo-1, func(d int) bool {
				return prefix[lo+1+d]-prefix[lo] >= target
			})
			if next.CompareAndSwap(int64(lo), int64(hi)) {
				return lo, hi, true
			}
		}
	}
}

// CostSpans returns the span sequence a sequential claimer produces for the
// given worker count: the deterministic claim-order schedule of ForCostWorkers
// (claims interleave across workers at run time, but the span boundaries
// depend only on claim order, which is what this exposes). The bench harness
// uses it to model load balance without timing noise.
func CostSpans(n, workers int, prefix []int64) [][2]int {
	if n <= 0 {
		return nil
	}
	if len(prefix) != n+1 {
		panic("parallel: cost prefix must have length n+1")
	}
	p := costWorkerCount(n, workers)
	claim := costClaimer(n, p, prefix)
	var spans [][2]int
	for {
		lo, hi, ok := claim()
		if !ok {
			return spans
		}
		spans = append(spans, [2]int{lo, hi})
	}
}

// ForCostWorkers runs p worker goroutines over [0, n) like ForWorkers, but
// workers claim equal-cost spans instead of equal-row chunks: prefix is the
// monotone prefix sum of per-row costs (length n+1), and each claim's span
// is sized so its summed cost matches a guided target that tapers as work
// drains. Use when row costs are heavily skewed (power-law graphs) and a
// cost profile is already available.
func ForCostWorkers(n, workers int, prefix []int64, worker func(id int, claim func() (lo, hi int, ok bool))) {
	if n <= 0 {
		return
	}
	if len(prefix) != n+1 {
		panic("parallel: cost prefix must have length n+1")
	}
	p := costWorkerCount(n, workers)
	claim := costClaimer(n, p, prefix)
	if p == 1 {
		worker(0, claim)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(id int) {
			defer wg.Done()
			worker(id, claim)
		}(w)
	}
	wg.Wait()
}

// ForCostWorkersCtx is ForCostWorkers with cooperative cancellation (the
// ForWorkersCtx semantics: workers observe ctx between span claims and never
// abandon a claimed span half-done). Returns ctx.Err() when the iteration
// stopped early, nil when every row ran.
func ForCostWorkersCtx(ctx context.Context, n, workers int, prefix []int64, worker func(id int, claim func() (lo, hi int, ok bool))) error {
	if ctx == nil || ctx.Done() == nil {
		ForCostWorkers(n, workers, prefix, worker)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	var cancelled atomic.Bool
	ForCostWorkers(n, workers, prefix, func(id int, claim func() (lo, hi int, ok bool)) {
		worker(id, func() (int, int, bool) {
			if cancelled.Load() {
				return 0, 0, false
			}
			select {
			case <-done:
				cancelled.Store(true)
				return 0, 0, false
			default:
			}
			return claim()
		})
	})
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// ForCostChunks runs body(lo, hi) over disjoint equal-cost spans covering
// [0, n), claimed dynamically with the guided taper (see ForCostWorkers).
func ForCostChunks(n, workers int, prefix []int64, body func(lo, hi int)) {
	ForCostWorkers(n, workers, prefix, func(_ int, claim func() (lo, hi int, ok bool)) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			body(lo, hi)
		}
	})
}

// ForCostChunksCtx is ForCostChunks with cooperative cancellation.
func ForCostChunksCtx(ctx context.Context, n, workers int, prefix []int64, body func(lo, hi int)) error {
	if ctx == nil || ctx.Done() == nil {
		ForCostChunks(n, workers, prefix, body)
		return nil
	}
	return ForCostWorkersCtx(ctx, n, workers, prefix, func(_ int, claim func() (lo, hi int, ok bool)) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			body(lo, hi)
		}
	})
}

// minScanBlock is the smallest per-block work of a parallel scan; below
// p·minScanBlock elements the sequential scan wins on memory bandwidth.
const minScanBlock = 8192

// ExclusiveScanParallel is ExclusiveScan with a two-pass parallel block
// scan: blocks are summed in parallel, the block sums are scanned
// sequentially (p elements), and a second parallel pass rewrites each block
// with its exclusive prefix offset by the block base. Falls back to the
// sequential scan when the input is too small to amortize the two passes.
func ExclusiveScanParallel(counts []int64, workers int) int64 {
	p := Threads(workers)
	if p > len(counts)/minScanBlock {
		p = len(counts) / minScanBlock
	}
	if p <= 1 {
		return ExclusiveScan(counts)
	}
	return exclusiveScanBlocks(counts, p)
}

// exclusiveScanBlocks runs the two-pass block scan with exactly nb blocks
// (nb ≥ 1); split out so tests can pin the block count independently of the
// size heuristic.
func exclusiveScanBlocks(counts []int64, nb int) int64 {
	n := len(counts)
	blockSize := (n + nb - 1) / nb
	sums := make([]int64, nb)
	pass := func(f func(b, lo, hi int)) {
		var wg sync.WaitGroup
		wg.Add(nb)
		for b := 0; b < nb; b++ {
			go func(b int) {
				defer wg.Done()
				lo := b * blockSize
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				if lo > n {
					lo = n
				}
				f(b, lo, hi)
			}(b)
		}
		wg.Wait()
	}
	pass(func(b, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[b] = s
	})
	total := ExclusiveScan(sums)
	pass(func(b, lo, hi int) {
		s := sums[b]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = s
			s += c
		}
	})
	return total
}
