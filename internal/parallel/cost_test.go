package parallel

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// buildPrefix turns per-row costs into the prefix array the ForCost* loops
// consume.
func buildPrefix(costs []int64) []int64 {
	prefix := make([]int64, len(costs)+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	return prefix
}

// randomCosts mixes uniform, zero and heavy-tailed rows.
func randomCosts(r *rand.Rand, n int) []int64 {
	costs := make([]int64, n)
	for i := range costs {
		switch r.Intn(10) {
		case 0:
			costs[i] = 0
		case 1:
			costs[i] = int64(r.Intn(100_000)) // heavy tail
		default:
			costs[i] = int64(1 + r.Intn(16))
		}
	}
	return costs
}

// TestForCostChunksCoverage: spans must tile [0, n) exactly — disjoint,
// ascending, no row missed — for every worker count and cost profile.
func TestForCostChunksCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 100, 4096} {
		for _, workers := range []int{1, 2, 4, 13} {
			for trial := 0; trial < 3; trial++ {
				prefix := buildPrefix(randomCosts(r, n))
				var mu sync.Mutex
				var spans [][2]int
				ForCostChunks(n, workers, prefix, func(lo, hi int) {
					mu.Lock()
					spans = append(spans, [2]int{lo, hi})
					mu.Unlock()
				})
				sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
				next := 0
				for _, s := range spans {
					if s[0] != next || s[1] <= s[0] {
						t.Fatalf("n=%d workers=%d: spans do not tile: %v", n, workers, spans)
					}
					next = s[1]
				}
				if next != n {
					t.Fatalf("n=%d workers=%d: spans cover [0,%d), want [0,%d)", n, workers, next, n)
				}
			}
		}
	}
}

// TestForCostWorkersSum: every row runs exactly once (the per-row
// accumulation matches a sequential sum) even under zero-cost tails.
func TestForCostWorkersSum(t *testing.T) {
	n := 1000
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = int64(i % 7) // includes zero-cost rows
	}
	prefix := buildPrefix(costs)
	hits := make([]int32, n)
	ForCostWorkers(n, 4, prefix, func(_ int, claim func() (int, int, bool)) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("row %d ran %d times", i, h)
		}
	}
}

// TestForCostChunksTaper: with one worker the claims are deterministic;
// the guided taper must hand out a large first span and only O(log) + floor
// claims overall, and span costs must never grow.
func TestForCostChunksTaper(t *testing.T) {
	n := 10000
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 1
	}
	prefix := buildPrefix(costs)
	var spans [][2]int
	ForCostChunks(n, 1, prefix, func(lo, hi int) { spans = append(spans, [2]int{lo, hi}) })
	if len(spans) == 0 || len(spans) > 64 {
		t.Fatalf("taper produced %d claims; want a handful", len(spans))
	}
	first := spans[0][1] - spans[0][0]
	if first < n/4 {
		t.Errorf("first span %d rows; guided taper should claim ~remaining/%d = %d", first, costTaperDivisor, n/costTaperDivisor)
	}
	for i := 1; i < len(spans); i++ {
		if cur, prev := spans[i][1]-spans[i][0], spans[i-1][1]-spans[i-1][0]; cur > prev {
			t.Errorf("span %d grew: %d rows after %d", i, cur, prev)
		}
	}
}

// TestForCostDegenerate: empty iteration spaces and malformed prefixes.
func TestForCostDegenerate(t *testing.T) {
	ran := false
	ForCostChunks(0, 4, []int64{0}, func(lo, hi int) { ran = true })
	if ran {
		t.Error("n=0 must not invoke the body")
	}
	ForCostChunks(-3, 4, nil, func(lo, hi int) { ran = true })
	if ran {
		t.Error("negative n must not invoke the body")
	}
	defer func() {
		if recover() == nil {
			t.Error("short prefix must panic")
		}
	}()
	ForCostChunks(5, 2, []int64{0, 1, 2}, func(lo, hi int) {})
}

// TestForCostWorkersCtx: pre-cancelled contexts return immediately; a
// cancellation mid-flight stops claims and reports ctx.Err(); nil and
// never-cancelled contexts add nothing.
func TestForCostWorkersCtx(t *testing.T) {
	n := 1 << 14
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 1
	}
	prefix := buildPrefix(costs)

	if err := ForCostChunksCtx(nil, n, 2, prefix, func(lo, hi int) {}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := ForCostChunksCtx(context.Background(), n, 2, prefix, func(lo, hi int) {}); err != nil {
		t.Fatalf("background ctx: %v", err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForCostChunksCtx(pre, n, 2, prefix, func(lo, hi int) { ran = true }); err != context.Canceled {
		t.Fatalf("pre-cancelled: got %v, want context.Canceled", err)
	}
	if ran {
		t.Error("pre-cancelled context must not run the body")
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	var rows int64
	var mu sync.Mutex
	err := ForCostChunksCtx(ctx, n, 2, prefix, func(lo, hi int) {
		mu.Lock()
		rows += int64(hi - lo)
		mu.Unlock()
		cancelMid()
		time.Sleep(time.Millisecond)
	})
	if err != context.Canceled {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	if rows == 0 || rows >= int64(n) {
		t.Errorf("mid-flight cancel ran %d of %d rows; want a strict prefix of the claims", rows, n)
	}
}

// TestExclusiveScanParallel: the parallel scan must agree with the
// sequential scan on every size, including empty, single-element and sizes
// below the parallel threshold.
func TestExclusiveScanParallel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 63, 1000, minScanBlock, 3*minScanBlock + 17} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(1000)) - 100 // scans must work on any ints
		}
		seq := append([]int64(nil), vals...)
		par := append([]int64(nil), vals...)
		wantTotal := ExclusiveScan(seq)
		gotTotal := ExclusiveScanParallel(par, 4)
		if gotTotal != wantTotal {
			t.Fatalf("n=%d: total %d, want %d", n, gotTotal, wantTotal)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("n=%d: par[%d]=%d, want %d", n, i, par[i], seq[i])
			}
		}
	}
}

// TestExclusiveScanBlocks: the block-scan core at pinned block counts,
// covering the single-block and more-blocks-than-elements corners the size
// heuristic never reaches.
func TestExclusiveScanBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 5, 100, 1023} {
		for _, nb := range []int{1, 2, 3, 7, n, n + 5} {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(r.Intn(50))
			}
			seq := append([]int64(nil), vals...)
			par := append([]int64(nil), vals...)
			wantTotal := ExclusiveScan(seq)
			gotTotal := exclusiveScanBlocks(par, nb)
			if gotTotal != wantTotal {
				t.Fatalf("n=%d nb=%d: total %d, want %d", n, nb, gotTotal, wantTotal)
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("n=%d nb=%d: par[%d]=%d, want %d", n, nb, i, par[i], seq[i])
				}
			}
		}
	}
}
