package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestArbiterCostShares: the worker ask scales with the cost estimate and
// is clamped to [1, budget].
func TestArbiterCostShares(t *testing.T) {
	a := NewArbiter(8, 8)
	cases := []struct {
		cost int64
		want int
	}{
		{1, 1},                 // tiny query: one worker
		{CostPerWorker, 1},     // exactly one worker's worth
		{CostPerWorker + 1, 2}, // just past: two
		{4 * CostPerWorker, 4}, // mid
		{1 << 40, 8},           // huge: whole budget
		{0, 1},                 // unknown: equal split of 8 across 8 slots
	}
	for _, c := range cases {
		g, err := a.Acquire(context.Background(), c.cost)
		if err != nil {
			t.Fatal(err)
		}
		if g.Workers() != c.want {
			t.Errorf("cost %d: granted %d workers, want %d", c.cost, g.Workers(), c.want)
		}
		g.Release()
	}
}

// TestArbiterBudgetNeverExceeded: under concurrent acquire/release churn
// the sum of granted shares plus the free pool always equals the budget
// (shares move between grants via steals and top-ups, but never multiply).
func TestArbiterBudgetNeverExceeded(t *testing.T) {
	const budget = 6
	a := NewArbiter(budget, 4)
	stop := make(chan struct{})
	violations := make(chan ArbiterStats, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := a.Stats()
			if st.Granted+st.Free != st.Budget {
				select {
				case violations <- st:
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cost := int64((id + i) % 5 * CostPerWorker)
				g, err := a.Acquire(context.Background(), cost)
				if err != nil {
					t.Error(err)
					return
				}
				if g.Workers() < 1 {
					t.Errorf("grant with %d workers", g.Workers())
				}
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	select {
	case st := <-violations:
		t.Fatalf("granted %d + free %d != budget %d", st.Granted, st.Free, st.Budget)
	default:
	}
	st := a.Stats()
	if st.Free != budget || st.Granted != 0 || st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("arbiter did not drain: %+v", st)
	}
	if st.Admitted != 16*50 {
		t.Fatalf("admitted %d, want %d", st.Admitted, 16*50)
	}
}

// TestArbiterAdmissionCap: at most maxInflight requests run concurrently.
func TestArbiterAdmissionCap(t *testing.T) {
	const cap = 3
	a := NewArbiter(8, cap)
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := a.Acquire(context.Background(), CostPerWorker)
			if err != nil {
				t.Error(err)
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("inflight peaked at %d, cap %d", p, cap)
	}
}

// TestArbiterCancelWhileWaiting: a context cancelled while queued returns
// the context error and leaks neither budget nor queue slots.
func TestArbiterCancelWhileWaiting(t *testing.T) {
	a := NewArbiter(2, 1)
	g1, err := a.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the second request queue
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued acquire under cancel: %v, want context.Canceled", err)
	}
	g1.Release()
	// The queue slot must be gone: a fresh request is admitted immediately.
	g2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
}

// TestArbiterRebalanceToStraggler: budget released by a finishing request
// tops up a running grant that asked for more than it got, observable
// through Grant.Workers.
func TestArbiterRebalanceToStraggler(t *testing.T) {
	a := NewArbiter(8, 2)
	// First request takes the whole budget.
	big1, err := a.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if big1.Workers() != 8 {
		t.Fatalf("first big request granted %d, want 8", big1.Workers())
	}
	// Second big request is admitted on the one-worker floor.
	done := make(chan *Grant)
	go func() {
		g, err := a.Acquire(context.Background(), 1<<40)
		if err != nil {
			t.Error(err)
		}
		done <- g
	}()
	var big2 *Grant
	select {
	case big2 = <-done:
	case <-time.After(time.Second):
		t.Fatal("second request was not admitted")
	}
	if big2.Workers() > 8 {
		t.Fatalf("second request granted %d with no free budget", big2.Workers())
	}
	before := big2.Workers()
	big1.Release()
	// big1's workers must flow to the straggler.
	deadline := time.Now().Add(time.Second)
	for big2.Workers() <= before {
		if time.Now().After(deadline) {
			t.Fatalf("straggler share stayed at %d after release", big2.Workers())
		}
		time.Sleep(time.Millisecond)
	}
	if big2.Workers() != 8 {
		t.Fatalf("straggler topped up to %d, want the full budget 8", big2.Workers())
	}
	big2.Release()
}

// TestArbiterReleaseIdempotent: double Release must not double-free budget.
func TestArbiterReleaseIdempotent(t *testing.T) {
	a := NewArbiter(4, 4)
	g, err := a.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release()
	a.mu.Lock()
	free := a.free
	a.mu.Unlock()
	if free != 4 {
		t.Fatalf("free budget %d after double release, want 4", free)
	}
}

// TestArbiterFIFO: waiting requests are admitted in arrival order.
func TestArbiterFIFO(t *testing.T) {
	a := NewArbiter(1, 1)
	g0, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.Release()
		}(i)
		time.Sleep(10 * time.Millisecond) // establish arrival order
	}
	g0.Release()
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("admission order %v is not FIFO", order)
		}
	}
}

func TestArbiterTryAcquire(t *testing.T) {
	a := NewArbiter(4, 2)
	g1, ok := a.TryAcquire(1)
	if !ok || g1 == nil {
		t.Fatal("first TryAcquire refused with free slots")
	}
	g2, ok := a.TryAcquire(1)
	if !ok {
		t.Fatal("second TryAcquire refused under the cap")
	}
	if g, ok := a.TryAcquire(1); ok {
		g.Release()
		t.Fatal("TryAcquire admitted past the in-flight cap")
	}
	if got := a.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	g1.Release()
	g3, ok := a.TryAcquire(1)
	if !ok {
		t.Fatal("TryAcquire refused after a release freed a slot")
	}
	g3.Release()
	g2.Release()

	// TryAcquire must not jump Acquire's FIFO: with a waiter queued, a
	// free slot still refuses the non-queuing caller.
	b := NewArbiter(2, 1)
	gHold, _ := b.TryAcquire(1)
	admitted := make(chan *Grant)
	go func() {
		g, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		admitted <- g
	}()
	for b.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	if g, ok := b.TryAcquire(1); ok {
		g.Release()
		t.Fatal("TryAcquire jumped the waiter queue")
	}
	gHold.Release()
	(<-admitted).Release()
	if st := b.Stats(); st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("stats after FIFO check: %+v", st)
	}
}
