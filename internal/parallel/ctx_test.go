package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForWorkersCtxNilAndBackground(t *testing.T) {
	var ran atomic.Int64
	for _, ctx := range []context.Context{nil, context.Background()} {
		ran.Store(0)
		err := ForWorkersCtx(ctx, 1000, 4, 16, func(_ int, claim func() (int, int, bool)) {
			for {
				lo, hi, ok := claim()
				if !ok {
					return
				}
				ran.Add(int64(hi - lo))
			}
		})
		if err != nil {
			t.Fatalf("uncancellable context: err %v", err)
		}
		if ran.Load() != 1000 {
			t.Fatalf("ran %d of 1000 iterations", ran.Load())
		}
	}
}

func TestForWorkersCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForWorkersCtx(ctx, 1000, 4, 16, func(_ int, claim func() (int, int, bool)) {
		called = true
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("worker ran despite pre-cancelled context")
	}
}

func TestForChunksCtxMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	const n = 1 << 20
	err := ForChunksCtx(ctx, n, 4, 16, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) > 1024 {
			cancel() // cancel from inside the loop: later claims must stop
		}
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == n {
		t.Fatal("loop ran to completion despite cancellation")
	}
}
