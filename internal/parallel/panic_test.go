package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestWorkerPanicRethrown checks a panic on a worker goroutine surfaces on
// the calling goroutine as a WorkerPanic carrying the worker's stack, and
// that the surviving workers drain instead of hanging or crashing.
func TestWorkerPanicRethrown(t *testing.T) {
	defer func() {
		v := recover()
		wp, ok := v.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want WorkerPanic", v, v)
		}
		if wp.Value != "boom at 500" {
			t.Fatalf("panic value %v", wp.Value)
		}
		if !strings.Contains(wp.String(), "boom at 500") || !strings.Contains(wp.String(), "goroutine") {
			t.Fatalf("WorkerPanic string misses value or stack:\n%s", wp)
		}
	}()
	ForGrain(10_000, 4, 1, func(i int) {
		if i == 500 {
			panic("boom at 500")
		}
	})
	t.Fatal("ForGrain returned normally past a panicking body")
}

// TestWorkerPanicPoisonsClaims checks that after one worker panics, the
// other workers stop claiming chunks quickly (the claim counter is
// poisoned), rather than running the full iteration space.
func TestWorkerPanicPoisonsClaims(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		ForWorkers(1_000_000, 4, 1, func(id int, claim func() (int, int, bool)) {
			if id == 0 {
				panic("die early")
			}
			for {
				lo, _, ok := claim()
				if !ok {
					return
				}
				ran.Add(1)
				if lo == 0 {
					// Give the panicking worker time to poison the counter.
					time.Sleep(5 * time.Millisecond)
				}
			}
		})
	}()
	if n := ran.Load(); n > 500_000 {
		t.Fatalf("survivors ran %d of 1000000 single-index chunks after poison", n)
	}
}

// TestWorkerPanicFaultPoint checks the parallel.worker.panic injection point
// fires on a worker goroutine and arrives as a WorkerPanic, with no
// goroutines left behind.
func TestWorkerPanicFaultPoint(t *testing.T) {
	base := runtime.NumGoroutine()
	r := faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointWorkerPanic, Every: 1, Limit: 1})
	faultinject.Set(r)
	defer faultinject.Set(nil)

	caught := func() (v any) {
		defer func() { v = recover() }()
		For(4096, 4, func(i int) {})
		return nil
	}()
	if wp, ok := caught.(WorkerPanic); !ok || !strings.Contains(wp.String(), faultinject.PointWorkerPanic) {
		t.Fatalf("recovered %T %v, want injected WorkerPanic", caught, caught)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked after worker panic: %d > %d", n, base)
	}
}
