package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 65, 1000} {
		for _, workers := range []int{0, 1, 2, 8} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForGrainCoverage(t *testing.T) {
	prop := func(seed int64) bool {
		n := int(seed%500 + 1)
		if n < 0 {
			n = -n + 1
		}
		grain := int(seed%7 + 1)
		if grain < 1 {
			grain = 1
		}
		var sum atomic.Int64
		ForGrain(n, 4, grain, func(i int) { sum.Add(int64(i)) })
		return sum.Load() == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunksDisjoint(t *testing.T) {
	const n = 1234
	hits := make([]int32, n)
	ForChunks(n, 8, 10, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForWorkersReusableState(t *testing.T) {
	const n = 500
	var total atomic.Int64
	var workersSeen atomic.Int64
	ForWorkers(n, 4, 16, func(id int, claim func() (int, int, bool)) {
		workersSeen.Add(1)
		local := int64(0) // per-worker scratch reused across chunks
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
		}
		total.Add(local)
	})
	if total.Load() != int64(n)*int64(n-1)/2 {
		t.Fatalf("sum = %d", total.Load())
	}
	if workersSeen.Load() < 1 {
		t.Fatal("no workers ran")
	}
}

func TestForWorkersZeroAndTiny(t *testing.T) {
	ran := false
	ForWorkers(0, 4, 16, func(int, func() (int, int, bool)) { ran = true })
	if ran {
		t.Fatal("no work for n=0")
	}
	var count atomic.Int32
	ForWorkers(1, 8, 64, func(_ int, claim func() (int, int, bool)) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			count.Add(int32(hi - lo))
		}
	})
	if count.Load() != 1 {
		t.Fatalf("covered %d, want 1", count.Load())
	}
}

func TestExclusiveScan(t *testing.T) {
	c := []int64{3, 0, 5, 2}
	total := ExclusiveScan(c)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 8}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("scan = %v, want %v", c, want)
		}
	}
	if ExclusiveScan(nil) != 0 {
		t.Fatal("empty scan")
	}
}

func TestThreads(t *testing.T) {
	if Threads(5) != 5 {
		t.Fatal("explicit")
	}
	if Threads(0) < 1 {
		t.Fatal("default must be >= 1")
	}
	if Threads(-3) < 1 {
		t.Fatal("negative falls back")
	}
}
