package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Arbiter splits a fixed worker budget across concurrent requests — the
// admission/arbitration component of the serving layer. Without it, K
// concurrent multiplies on one session each fan out to the session's full
// thread budget and destroy each other's parallel efficiency (K×budget
// goroutines contending for budget cores); with it, each request is
// admitted (bounded in-flight count), granted a share of the budget
// proportional to its estimated cost, and the budget freed by finishing
// requests flows first to waiting requests and then to running stragglers.
//
// Shares are cost-proportional with a floor of one worker: a request
// estimated at cost c asks for ceil(c / CostPerWorker) workers — small
// queries cannot amortize fan-out overhead, so they get few workers — and
// receives at most its ask, at most the free budget minus a one-worker
// reservation per waiting request. Admission is governed by the in-flight
// cap alone: when the budget is fully granted, a newly admitted request is
// funded by *stealing* one worker from the richest running grant (whose
// executor sheds it at its next parallel stage), so a long request never
// gates admission. Release returns the share and tops up the running grant
// furthest below its ask ("idle workers rebalance to stragglers"); a
// top-up, like a steal, takes effect the next time the grant's executor
// consults Grant.Workers — the core drivers do so at every parallel stage
// of a multiply via Options.ThreadsFn.
//
// An Arbiter is safe for concurrent use. The zero value is not usable; use
// NewArbiter.
type Arbiter struct {
	mu       sync.Mutex
	budget   int // total workers across all grants
	maxIn    int // admission cap on in-flight grants
	free     int // workers not currently granted
	inflight int
	waiters  []*waiter           // FIFO admission queue
	active   map[*Grant]struct{} // grants that may be topped up or stolen from

	admitted, steals, topups, rejected atomic.Int64 // monotonic observability counters

	// costPerWorker is the per-worker cost unit want() divides by; 0 means
	// the CostPerWorker default. Atomic so a session can install a calibrated
	// value (SetCostPerWorker) while requests are being admitted.
	costPerWorker atomic.Int64
}

// ArbiterStats is a point-in-time snapshot of an arbiter's accounting.
// Admitted, Steals and TopUps are monotonic; the rest describe the moment
// of the snapshot. Granted+Free always equals Budget.
type ArbiterStats struct {
	// Budget is the total worker budget; MaxInflight the admission cap.
	Budget, MaxInflight int
	// Free is the unassigned budget; Granted the sum of active shares;
	// Inflight the active grant count; Waiting the queued request count.
	Free, Granted, Inflight, Waiting int
	// Admitted counts grants ever issued; Steals counts workers moved from
	// a rich running grant to fund a new admission; TopUps counts workers
	// rebalanced from released grants to running stragglers; Rejected
	// counts TryAcquire calls refused because the admission cap was full
	// (the serving front end's 429s).
	Admitted, Steals, TopUps, Rejected int64
}

// Stats returns a snapshot of the arbiter's accounting.
func (a *Arbiter) Stats() ArbiterStats {
	a.mu.Lock()
	st := ArbiterStats{
		Budget:      a.budget,
		MaxInflight: a.maxIn,
		Free:        a.free,
		Inflight:    a.inflight,
		Waiting:     len(a.waiters),
		Admitted:    a.admitted.Load(),
		Steals:      a.steals.Load(),
		TopUps:      a.topups.Load(),
		Rejected:    a.rejected.Load(),
	}
	for g := range a.active {
		st.Granted += int(g.workers.Load())
	}
	a.mu.Unlock()
	return st
}

// waiter is one blocked Acquire: admit is closed (under a.mu) when the
// request is admitted and its grant assigned.
type waiter struct {
	want  int
	admit chan *Grant
}

// Grant is one admitted request's worker share. The share can grow while
// the request runs (rebalanced from released budget, never past the ask);
// executors observe growth by re-reading Workers between parallel stages.
type Grant struct {
	arb      *Arbiter
	want     int          // cost-derived ask; the share never exceeds it
	workers  atomic.Int32 // current share, ≥ 1 while active
	released atomic.Bool
}

// CostPerWorker is the estimated request cost (flops plus mask entries, the
// planner's Plan.Costs unit) one worker is granted for: a request asking
// for its k-th worker must bring at least k×CostPerWorker of work, so tiny
// queries run on one goroutine and only genuinely large products fan out.
// Calibrated to the point where a worker's spawn+sync overhead (~µs) is
// well under the work it contributes.
const CostPerWorker = 1 << 16

// NewArbiter returns an arbiter over the given worker budget (0 or less
// means Threads(0), i.e. GOMAXPROCS) admitting at most maxInflight
// concurrent grants (0 or less, or more than the budget, means one grant
// per budgeted worker — more in-flight CPU-bound requests than workers
// cannot increase throughput).
func NewArbiter(budget, maxInflight int) *Arbiter {
	budget = Threads(budget)
	if maxInflight <= 0 || maxInflight > budget {
		maxInflight = budget
	}
	return &Arbiter{
		budget: budget,
		maxIn:  maxInflight,
		free:   budget,
		active: make(map[*Grant]struct{}),
	}
}

// Budget returns the arbiter's total worker budget.
func (a *Arbiter) Budget() int { return a.budget }

// SetCostPerWorker replaces the per-worker cost unit admission asks divide
// by (0 or less resets to the CostPerWorker default). The planner's
// calibration derives it from the measured dispatch overhead, so on hosts
// where fan-out is cheap small requests are allowed more workers and vice
// versa. Safe to call while requests are in flight; running grants keep the
// ask they were admitted with.
func (a *Arbiter) SetCostPerWorker(v int64) {
	if v <= 0 {
		v = 0
	}
	a.costPerWorker.Store(v)
}

// CostPerWorkerUnit returns the cost unit want() currently divides by.
func (a *Arbiter) CostPerWorkerUnit() int64 {
	if v := a.costPerWorker.Load(); v > 0 {
		return v
	}
	return CostPerWorker
}

// MaxInflight returns the admission cap.
func (a *Arbiter) MaxInflight() int { return a.maxIn }

// want converts a cost estimate to a worker ask.
func (a *Arbiter) want(cost int64) int {
	if cost <= 0 {
		// Unknown cost: ask for an equal split of the budget rather than
		// everything, so one unpriced request cannot starve the batch.
		w := a.budget / a.maxIn
		if w < 1 {
			w = 1
		}
		return w
	}
	unit := a.CostPerWorkerUnit()
	w := int((cost + unit - 1) / unit)
	if w < 1 {
		w = 1
	}
	if w > a.budget {
		w = a.budget
	}
	return w
}

// Acquire admits one request with the given cost estimate (the planner's
// flops-based Plan.Costs total; <= 0 means unknown) and returns its worker
// grant. It blocks while the in-flight cap is reached, honoring ctx: a
// cancellation while waiting returns ctx.Err() and no grant. The caller
// must Release the grant when its request finishes.
func (a *Arbiter) Acquire(ctx context.Context, cost int64) (*Grant, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	a.mu.Lock()
	want := a.want(cost)
	if len(a.waiters) == 0 && a.inflight < a.maxIn {
		g := a.admitLocked(want)
		a.mu.Unlock()
		return g, nil
	}
	w := &waiter{want: want, admit: make(chan *Grant, 1)}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case g := <-w.admit:
		return g, nil
	case <-done:
		a.mu.Lock()
		// Remove w from the queue unless a Release admitted it concurrently.
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// Already admitted: take the grant and hand it back.
		g := <-w.admit
		g.Release()
		return nil, ctx.Err()
	}
}

// TryAcquire is the non-queuing form of Acquire: it admits the request
// immediately when a slot is free and otherwise refuses it (nil, false)
// without waiting — the admission-control primitive of the network front
// end, which must answer a saturated burst with 429s rather than build an
// unbounded queue. A refusal also reports that requests are already
// waiting in Acquire's FIFO: TryAcquire never jumps that queue. Refusals
// are counted in ArbiterStats.Rejected.
func (a *Arbiter) TryAcquire(cost int64) (*Grant, bool) {
	a.mu.Lock()
	if len(a.waiters) == 0 && a.inflight < a.maxIn {
		g := a.admitLocked(a.want(cost))
		a.mu.Unlock()
		return g, true
	}
	a.mu.Unlock()
	a.rejected.Add(1)
	return nil, false
}

// admitLocked assigns a share to a newly admitted request: its ask, capped
// to the free budget minus a one-worker reservation per waiting admissible
// request (so a burst of arrivals all start promptly instead of the first
// one hoarding the whole budget), with a floor of one worker. When nothing
// is free the floor worker is stolen from the richest running grant — one
// always exists with more than one worker, because maxInflight ≤ budget
// means all-singleton grants fill the admission cap first.
func (a *Arbiter) admitLocked(want int) *Grant {
	reserve := len(a.waiters)
	if slots := a.maxIn - a.inflight - 1; reserve > slots {
		reserve = slots
	}
	if reserve < 0 {
		reserve = 0
	}
	n := a.free - reserve
	if n > want {
		n = want
	}
	switch {
	case n >= 1:
		a.free -= n
	case a.free >= 1: // dip into the reservation rather than steal
		n = 1
		a.free--
	default:
		n = 1
		a.stealLocked()
	}
	a.inflight++
	a.admitted.Add(1)
	g := &Grant{arb: a, want: want}
	g.workers.Store(int32(n))
	a.active[g] = struct{}{}
	return g
}

// stealLocked funds one worker by shrinking the richest active grant; the
// shrink is observed at that grant's next parallel stage. Falls back to
// transient oversubscription by one worker in the (unreachable, see
// admitLocked) case where every active grant is already a singleton.
func (a *Arbiter) stealLocked() {
	var richest *Grant
	most := int32(1)
	for g := range a.active {
		if w := g.workers.Load(); w > most {
			most, richest = w, g
		}
	}
	if richest != nil {
		richest.workers.Add(-1)
		a.steals.Add(1)
	}
}

// rebalanceLocked distributes free budget: first admit waiters in FIFO
// order while slots and budget remain, then top up the running grants
// furthest below their ask. Called after every Release.
func (a *Arbiter) rebalanceLocked() {
	for len(a.waiters) > 0 && a.inflight < a.maxIn {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.admit <- a.admitLocked(w.want)
	}
	for a.free > 0 {
		// Straggler = the active grant with the largest unmet ask.
		var straggler *Grant
		deficit := 0
		for g := range a.active {
			if d := g.want - int(g.workers.Load()); d > deficit {
				deficit, straggler = d, g
			}
		}
		if straggler == nil {
			return
		}
		give := deficit
		if give > a.free {
			give = a.free
		}
		a.free -= give
		straggler.workers.Add(int32(give))
		a.topups.Add(int64(give))
	}
}

// Workers returns the grant's current share. Executors should consult it at
// every parallel stage (core wires it through Options.ThreadsFn) so top-ups
// from finished requests take effect mid-request.
func (g *Grant) Workers() int {
	if g == nil {
		return 0
	}
	return int(g.workers.Load())
}

// Release returns the grant's workers to the arbiter and rebalances them
// onto waiting requests and running stragglers. Safe to call more than
// once; only the first call has effect.
func (g *Grant) Release() {
	if g == nil || !g.released.CompareAndSwap(false, true) {
		return
	}
	a := g.arb
	a.mu.Lock()
	a.free += int(g.workers.Load())
	a.inflight--
	delete(a.active, g)
	a.rebalanceLocked()
	a.mu.Unlock()
}
