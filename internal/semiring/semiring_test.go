package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArithmetic(t *testing.T) {
	sr := Arithmetic()
	if sr.Add(2, 3) != 5 || sr.Mul(2, 3) != 6 || sr.Zero != 0 {
		t.Fatal("arithmetic semiring wrong")
	}
}

func TestArithmeticInt(t *testing.T) {
	sr := ArithmeticInt()
	if sr.Add(2, 3) != 5 || sr.Mul(2, 3) != 6 {
		t.Fatal("int semiring wrong")
	}
}

func TestPlusPair(t *testing.T) {
	sr := PlusPair()
	if sr.Mul(17, 23) != 1 {
		t.Fatal("pair multiply must be 1")
	}
	if sr.Add(3, 4) != 7 {
		t.Fatal("add")
	}
	f := PlusPairF()
	if f.Mul(2.5, 3.5) != 1 || f.Add(1, 2) != 3 {
		t.Fatal("pluspair float")
	}
}

func TestBoolean(t *testing.T) {
	sr := Boolean()
	if sr.Zero != false {
		t.Fatal("zero")
	}
	if !sr.Add(true, false) || sr.Add(false, false) {
		t.Fatal("or")
	}
	if sr.Mul(true, false) || !sr.Mul(true, true) {
		t.Fatal("and")
	}
}

func TestMinPlus(t *testing.T) {
	sr := MinPlus()
	if !math.IsInf(sr.Zero, 1) {
		t.Fatal("zero must be +Inf")
	}
	if sr.Add(3, 5) != 3 || sr.Mul(3, 5) != 8 {
		t.Fatal("min-plus ops")
	}
	// Identity: min(x, Inf) = x.
	if sr.Add(7, sr.Zero) != 7 {
		t.Fatal("additive identity")
	}
}

func TestSelectorSemirings(t *testing.T) {
	if PlusSecond().Mul(9, 4) != 4 {
		t.Fatal("second")
	}
	if PlusFirst().Mul(9, 4) != 9 {
		t.Fatal("first")
	}
	mt := MaxTimes()
	if mt.Add(2, 7) != 7 || mt.Mul(2, 7) != 14 {
		t.Fatal("max-times")
	}
	if !math.IsInf(mt.Zero, -1) {
		t.Fatal("max-times zero must be -Inf")
	}
}

// TestSemiringLaws property-checks associativity of Add and the identity
// of Zero for the semirings where floating point permits exact checks
// (small integers).
func TestSemiringLaws(t *testing.T) {
	srs := []Semiring[float64]{Arithmetic(), PlusPairF(), MinPlus(), MaxTimes()}
	for _, sr := range srs {
		sr := sr
		assoc := func(a, b, c int8) bool {
			x, y, z := float64(a), float64(b), float64(c)
			return sr.Add(sr.Add(x, y), z) == sr.Add(x, sr.Add(y, z))
		}
		if err := quick.Check(assoc, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: Add not associative: %v", sr.Name, err)
		}
		ident := func(a int8) bool {
			x := float64(a)
			return sr.Add(x, sr.Zero) == x && sr.Add(sr.Zero, x) == x
		}
		if err := quick.Check(ident, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: Zero not additive identity: %v", sr.Name, err)
		}
	}
}

func TestNames(t *testing.T) {
	for _, sr := range []Semiring[float64]{Arithmetic(), PlusPairF(), MinPlus(), PlusSecond(), PlusFirst(), MaxTimes()} {
		if sr.Name == "" {
			t.Fatal("semiring must be named")
		}
	}
	if Boolean().Name == "" || PlusPair().Name == "" || ArithmeticInt().Name == "" {
		t.Fatal("unnamed semiring")
	}
}
