package semiring

// Ops is the operator form of a semiring: a value whose Add/Mul/Zero are
// methods rather than func fields. The named implementations below are
// zero-size comparable structs, which buys two things the func-field form
// cannot provide:
//
//   - Kernels instantiated generically over a concrete Ops type get direct,
//     inlinable calls to Add and Mul (no indirect call per multiply-add),
//     so the compiler can keep the accumulator loop in registers.
//   - Two independently constructed values of the same operator type compare
//     equal, so request coalescing can key on the operator type instead of
//     func-pointer identity.
//
// Custom semirings without an Ops value run through FuncOps, which adapts
// the func fields to this interface; the kernels are the same code either
// way, so results are bit-identical across the two paths.
type Ops[T any] interface {
	Add(T, T) T
	Mul(T, T) T
	Zero() T
}

// Each named operator struct embeds a distinct unexported zero-size tag
// type. The tag gives every operator a distinct underlying type, which
// forces the compiler to stencil a separate kernel instantiation per
// operator instead of sharing one dictionary-dispatched instantiation
// across all empty structs (all plain struct{} types share a gcshape, and
// shared-shape instantiations call methods through the dictionary — exactly
// the indirection this package exists to remove).

type tagPlusTimesF64 struct{}
type tagPlusTimesI64 struct{}
type tagPlusPairI64 struct{}
type tagPlusPairF64 struct{}
type tagOrAndBool struct{}
type tagMinPlusF64 struct{}
type tagPlusSecondF64 struct{}
type tagPlusFirstF64 struct{}
type tagMaxTimesF64 struct{}

// PlusTimesF64 is the operator form of Arithmetic: (+, ×) over float64.
type PlusTimesF64 struct{ tagPlusTimesF64 }

// Add returns x + y.
func (PlusTimesF64) Add(x, y float64) float64 { return x + y }

// Mul returns x * y.
func (PlusTimesF64) Mul(x, y float64) float64 { return x * y }

// Zero returns 0.
func (PlusTimesF64) Zero() float64 { return 0 }

// PlusTimesI64 is the operator form of ArithmeticInt: (+, ×) over int64.
type PlusTimesI64 struct{ tagPlusTimesI64 }

// Add returns x + y.
func (PlusTimesI64) Add(x, y int64) int64 { return x + y }

// Mul returns x * y.
func (PlusTimesI64) Mul(x, y int64) int64 { return x * y }

// Zero returns 0.
func (PlusTimesI64) Zero() int64 { return 0 }

// PlusPairI64 is the operator form of PlusPair: (+, pair) over int64.
type PlusPairI64 struct{ tagPlusPairI64 }

// Add returns x + y.
func (PlusPairI64) Add(x, y int64) int64 { return x + y }

// Mul returns the constant 1 regardless of operands.
func (PlusPairI64) Mul(int64, int64) int64 { return 1 }

// Zero returns 0.
func (PlusPairI64) Zero() int64 { return 0 }

// PlusPairF64 is the operator form of PlusPairF: (+, pair) over float64.
type PlusPairF64 struct{ tagPlusPairF64 }

// Add returns x + y.
func (PlusPairF64) Add(x, y float64) float64 { return x + y }

// Mul returns the constant 1 regardless of operands.
func (PlusPairF64) Mul(float64, float64) float64 { return 1 }

// Zero returns 0.
func (PlusPairF64) Zero() float64 { return 0 }

// OrAndBool is the operator form of Boolean: (∨, ∧) over bool.
type OrAndBool struct{ tagOrAndBool }

// Add returns x || y.
func (OrAndBool) Add(x, y bool) bool { return x || y }

// Mul returns x && y.
func (OrAndBool) Mul(x, y bool) bool { return x && y }

// Zero returns false.
func (OrAndBool) Zero() bool { return false }

// MinPlusF64 is the operator form of MinPlus: tropical (min, +) over
// float64.
type MinPlusF64 struct{ tagMinPlusF64 }

// Add returns min(x, y).
func (MinPlusF64) Add(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

// Mul returns x + y.
func (MinPlusF64) Mul(x, y float64) float64 { return x + y }

// Zero returns +Inf.
func (MinPlusF64) Zero() float64 { return inf64() }

// PlusSecondF64 is the operator form of PlusSecond: (+, second) over
// float64.
type PlusSecondF64 struct{ tagPlusSecondF64 }

// Add returns x + y.
func (PlusSecondF64) Add(x, y float64) float64 { return x + y }

// Mul returns its second operand.
func (PlusSecondF64) Mul(_, y float64) float64 { return y }

// Zero returns 0.
func (PlusSecondF64) Zero() float64 { return 0 }

// PlusFirstF64 is the operator form of PlusFirst: (+, first) over float64.
type PlusFirstF64 struct{ tagPlusFirstF64 }

// Add returns x + y.
func (PlusFirstF64) Add(x, y float64) float64 { return x + y }

// Mul returns its first operand.
func (PlusFirstF64) Mul(x, _ float64) float64 { return x }

// Zero returns 0.
func (PlusFirstF64) Zero() float64 { return 0 }

// MaxTimesF64 is the operator form of MaxTimes: (max, ×) over float64.
type MaxTimesF64 struct{ tagMaxTimesF64 }

// Add returns max(x, y).
func (MaxTimesF64) Add(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// Mul returns x * y.
func (MaxTimesF64) Mul(x, y float64) float64 { return x * y }

// Zero returns -Inf.
func (MaxTimesF64) Zero() float64 { return -inf64() }

// FuncOps adapts a func-field semiring to the Ops interface so that custom
// semirings run through the same generic kernels as the named ones. Calls
// still pay the func-field indirection, and the struct is not comparable —
// it must never be used as a cache or coalescing key.
type FuncOps[T any] struct {
	AddFn func(T, T) T
	MulFn func(T, T) T
	ZeroV T
}

// Add calls the wrapped add func.
func (o FuncOps[T]) Add(x, y T) T { return o.AddFn(x, y) }

// Mul calls the wrapped multiply func.
func (o FuncOps[T]) Mul(x, y T) T { return o.MulFn(x, y) }

// Zero returns the wrapped additive identity.
func (o FuncOps[T]) Zero() T { return o.ZeroV }
