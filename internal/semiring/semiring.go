// Package semiring defines the algebraic structure the masked SpGEMM kernels
// compute over, following the GraphBLAS formulation the paper builds on
// (§2): a semiring supplies the "multiply" used to combine A_ik with B_kj
// and the "add" used to accumulate partial products with the same output
// position. The paper presents its algorithms on the arithmetic semiring for
// clarity but the applications use others (triangle counting and k-truss use
// plus-pair, betweenness centrality uses plus-times on path counts).
package semiring

import "math"

// Semiring bundles the add and multiply monoids over value type T. Zero is
// the additive identity. Kernels never test values against Zero — sparsity
// is structural, matching the GraphBLAS convention — but reductions and
// tests use it.
type Semiring[T any] struct {
	// Name identifies the semiring in logs and benchmark tables.
	Name string
	// Add accumulates two partial results. Must be associative.
	Add func(T, T) T
	// Mul combines one entry of A with one entry of B.
	Mul func(T, T) T
	// Zero is the additive identity.
	Zero T
	// Ops, when non-nil, is the comparable operator form of the semiring.
	// Kernels instantiated for a recognized Ops type inline Add/Mul; when
	// Ops is nil (a custom semiring built from func fields) kernels fall
	// back to calling Add/Mul through the func pointers. The named
	// constructors in this package always set Ops.
	Ops Ops[T]
}

// fromOps builds a Semiring whose func fields are the operator's method
// values, so the funcptr fallback computes with exactly the same code as
// the inlined path and the two are bit-identical by construction.
func fromOps[T any](name string, ops Ops[T]) Semiring[T] {
	return Semiring[T]{Name: name, Add: ops.Add, Mul: ops.Mul, Zero: ops.Zero(), Ops: ops}
}

// Arithmetic is the standard (+, ×) semiring over float64.
func Arithmetic() Semiring[float64] {
	return fromOps[float64]("arithmetic", PlusTimesF64{})
}

// ArithmeticInt is the (+, ×) semiring over int64.
func ArithmeticInt() Semiring[int64] {
	return fromOps[int64]("arithmetic-int64", PlusTimesI64{})
}

// PlusPair is the (+, pair) semiring: multiplication yields the constant 1
// regardless of operands, so the product counts pattern intersections. This
// is the semiring of choice for triangle counting and k-truss support
// counting (each accumulated unit is one wedge closed by the masked edge).
func PlusPair() Semiring[int64] {
	return fromOps[int64]("plus-pair", PlusPairI64{})
}

// PlusPairF is PlusPair over float64 values, for callers whose matrices
// carry float64 payloads.
func PlusPairF() Semiring[float64] {
	return fromOps[float64]("plus-pair-f64", PlusPairF64{})
}

// Boolean is the (∨, ∧) semiring over bool: the product's pattern is
// reachability. Zero is false.
func Boolean() Semiring[bool] {
	return fromOps[bool]("boolean", OrAndBool{})
}

// MinPlus is the tropical (min, +) semiring over float64, used for shortest
// path relaxations. Zero is +Inf.
func MinPlus() Semiring[float64] {
	return fromOps[float64]("min-plus", MinPlusF64{})
}

// PlusSecond is the (+, second) semiring: multiplication returns the B
// operand. Betweenness centrality's forward phase uses it so that the number
// of shortest paths flows along frontier expansion.
func PlusSecond() Semiring[float64] {
	return fromOps[float64]("plus-second", PlusSecondF64{})
}

// PlusFirst is the (+, first) semiring: multiplication returns the A
// operand.
func PlusFirst() Semiring[float64] {
	return fromOps[float64]("plus-first", PlusFirstF64{})
}

// MaxTimes is the (max, ×) semiring over float64. Zero is -Inf.
func MaxTimes() Semiring[float64] {
	return fromOps[float64]("max-times", MaxTimesF64{})
}

func inf64() float64 { return math.Inf(1) }
