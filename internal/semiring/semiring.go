// Package semiring defines the algebraic structure the masked SpGEMM kernels
// compute over, following the GraphBLAS formulation the paper builds on
// (§2): a semiring supplies the "multiply" used to combine A_ik with B_kj
// and the "add" used to accumulate partial products with the same output
// position. The paper presents its algorithms on the arithmetic semiring for
// clarity but the applications use others (triangle counting and k-truss use
// plus-pair, betweenness centrality uses plus-times on path counts).
package semiring

import "math"

// Semiring bundles the add and multiply monoids over value type T. Zero is
// the additive identity. Kernels never test values against Zero — sparsity
// is structural, matching the GraphBLAS convention — but reductions and
// tests use it.
type Semiring[T any] struct {
	// Name identifies the semiring in logs and benchmark tables.
	Name string
	// Add accumulates two partial results. Must be associative.
	Add func(T, T) T
	// Mul combines one entry of A with one entry of B.
	Mul func(T, T) T
	// Zero is the additive identity.
	Zero T
}

// Arithmetic is the standard (+, ×) semiring over float64.
func Arithmetic() Semiring[float64] {
	return Semiring[float64]{
		Name: "arithmetic",
		Add:  func(x, y float64) float64 { return x + y },
		Mul:  func(x, y float64) float64 { return x * y },
	}
}

// ArithmeticInt is the (+, ×) semiring over int64.
func ArithmeticInt() Semiring[int64] {
	return Semiring[int64]{
		Name: "arithmetic-int64",
		Add:  func(x, y int64) int64 { return x + y },
		Mul:  func(x, y int64) int64 { return x * y },
	}
}

// PlusPair is the (+, pair) semiring: multiplication yields the constant 1
// regardless of operands, so the product counts pattern intersections. This
// is the semiring of choice for triangle counting and k-truss support
// counting (each accumulated unit is one wedge closed by the masked edge).
func PlusPair() Semiring[int64] {
	return Semiring[int64]{
		Name: "plus-pair",
		Add:  func(x, y int64) int64 { return x + y },
		Mul:  func(int64, int64) int64 { return 1 },
	}
}

// PlusPairF is PlusPair over float64 values, for callers whose matrices
// carry float64 payloads.
func PlusPairF() Semiring[float64] {
	return Semiring[float64]{
		Name: "plus-pair-f64",
		Add:  func(x, y float64) float64 { return x + y },
		Mul:  func(float64, float64) float64 { return 1 },
	}
}

// Boolean is the (∨, ∧) semiring over bool: the product's pattern is
// reachability. Zero is false.
func Boolean() Semiring[bool] {
	return Semiring[bool]{
		Name: "boolean",
		Add:  func(x, y bool) bool { return x || y },
		Mul:  func(x, y bool) bool { return x && y },
	}
}

// MinPlus is the tropical (min, +) semiring over float64, used for shortest
// path relaxations. Zero is +Inf.
func MinPlus() Semiring[float64] {
	inf := inf64()
	return Semiring[float64]{
		Name: "min-plus",
		Add: func(x, y float64) float64 {
			if x < y {
				return x
			}
			return y
		},
		Mul:  func(x, y float64) float64 { return x + y },
		Zero: inf,
	}
}

// PlusSecond is the (+, second) semiring: multiplication returns the B
// operand. Betweenness centrality's forward phase uses it so that the number
// of shortest paths flows along frontier expansion.
func PlusSecond() Semiring[float64] {
	return Semiring[float64]{
		Name: "plus-second",
		Add:  func(x, y float64) float64 { return x + y },
		Mul:  func(_, y float64) float64 { return y },
	}
}

// PlusFirst is the (+, first) semiring: multiplication returns the A
// operand.
func PlusFirst() Semiring[float64] {
	return Semiring[float64]{
		Name: "plus-first",
		Add:  func(x, y float64) float64 { return x + y },
		Mul:  func(x, _ float64) float64 { return x },
	}
}

// MaxTimes is the (max, ×) semiring over float64. Zero is -Inf.
func MaxTimes() Semiring[float64] {
	return Semiring[float64]{
		Name: "max-times",
		Add: func(x, y float64) float64 {
			if x > y {
				return x
			}
			return y
		},
		Mul:  func(x, y float64) float64 { return x * y },
		Zero: -inf64(),
	}
}

func inf64() float64 { return math.Inf(1) }
