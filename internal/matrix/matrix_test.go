package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCOO(r *rand.Rand, m, n Index, nnz int) *COO[float64] {
	c := &COO[float64]{NRows: m, NCols: n}
	for e := 0; e < nnz; e++ {
		c.Row = append(c.Row, Index(r.Intn(int(m))))
		c.Col = append(c.Col, Index(r.Intn(int(n))))
		c.Val = append(c.Val, float64(r.Intn(10)))
	}
	return c
}

func add(a, b float64) float64 { return a + b }

func TestNewCSRFromCOOBasic(t *testing.T) {
	c := &COO[float64]{
		NRows: 3, NCols: 4,
		Row: []Index{2, 0, 0, 2},
		Col: []Index{1, 3, 0, 1},
		Val: []float64{5, 2, 1, 7},
	}
	a := NewCSRFromCOO(c, add)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicate folded)", a.NNZ())
	}
	if !a.IsSortedRows() {
		t.Fatal("rows not sorted")
	}
	d := ToDense(a)
	if v, ok := d.At(2, 1); !ok || v != 12 {
		t.Fatalf("folded duplicate: got %v,%v want 12", v, ok)
	}
	if v, ok := d.At(0, 0); !ok || v != 1 {
		t.Fatalf("(0,0): got %v,%v", v, ok)
	}
	if _, ok := d.At(1, 0); ok {
		t.Fatal("row 1 should be empty")
	}
}

func TestNewCSRFromCOOOverwrite(t *testing.T) {
	c := &COO[float64]{
		NRows: 1, NCols: 2,
		Row: []Index{0, 0},
		Col: []Index{1, 1},
		Val: []float64{3, 9},
	}
	a := NewCSRFromCOO(c, nil) // nil combine: last wins
	if a.NNZ() != 1 || a.Val[0] != 9 {
		t.Fatalf("got nnz=%d val=%v, want 1, 9", a.NNZ(), a.Val)
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(1 + r.Intn(30))
		n := Index(1 + r.Intn(30))
		a := NewCSRFromCOO(randomCOO(r, m, n, r.Intn(200)), add)
		tt := Transpose(Transpose(a))
		return Equal(a, tt, func(x, y float64) bool { return x == y })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeEntries(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := NewCSRFromCOO(randomCOO(r, 10, 15, 60), add)
	at := Transpose(a)
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	if at.NRows != a.NCols || at.NCols != a.NRows {
		t.Fatal("dims not swapped")
	}
	da, dt := ToDense(a), ToDense(at)
	for i := Index(0); i < a.NRows; i++ {
		for j := Index(0); j < a.NCols; j++ {
			va, oka := da.At(i, j)
			vt, okt := dt.At(j, i)
			if oka != okt || (oka && va != vt) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSCRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(1 + r.Intn(25))
		n := Index(1 + r.Intn(25))
		a := NewCSRFromCOO(randomCOO(r, m, n, r.Intn(150)), add)
		back := FromCSC(ToCSC(a))
		return Equal(a, back, func(x, y float64) bool { return x == y })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSCColumnsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := NewCSRFromCOO(randomCOO(r, 20, 20, 100), add)
	c := ToCSC(a)
	for j := Index(0); j < c.NCols; j++ {
		rows, _ := c.Column(j)
		for k := 1; k < len(rows); k++ {
			if rows[k-1] >= rows[k] {
				t.Fatalf("column %d not strictly sorted", j)
			}
		}
	}
	if c.NNZ() != a.NNZ() {
		t.Fatal("nnz changed")
	}
}

func TestTrilTriu(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := NewCSRFromCOO(randomCOO(r, 20, 20, 150), add)
	l, u := Tril(a), Triu(a)
	for i := Index(0); i < 20; i++ {
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			if l.Col[k] >= i {
				t.Fatal("Tril kept non-lower entry")
			}
		}
		for k := u.RowPtr[i]; k < u.RowPtr[i+1]; k++ {
			if u.Col[k] <= i {
				t.Fatal("Triu kept non-upper entry")
			}
		}
	}
	diag := 0
	for i := Index(0); i < 20; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j == i {
				diag++
			}
		}
	}
	if l.NNZ()+u.NNZ()+diag != a.NNZ() {
		t.Fatal("tril+triu+diag != all")
	}
}

func TestPermutePreservesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	n := Index(15)
	a := NewCSRFromCOO(randomCOO(r, n, n, 60), add)
	// Random permutation.
	perm := make([]Index, n)
	for i := range perm {
		perm[i] = Index(i)
	}
	r.Shuffle(int(n), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	p := Permute(a, perm)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != a.NNZ() {
		t.Fatal("nnz changed")
	}
	da, dp := ToDense(a), ToDense(p)
	for i := Index(0); i < n; i++ {
		for j := Index(0); j < n; j++ {
			va, oka := da.At(i, j)
			vp, okp := dp.At(perm[i], perm[j])
			if oka != okp || (oka && va != vp) {
				t.Fatalf("permute mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDegreeDescPerm(t *testing.T) {
	// Degrees: row0=1, row1=3, row2=2.
	c := &COO[float64]{
		NRows: 3, NCols: 3,
		Row: []Index{0, 1, 1, 1, 2, 2},
		Col: []Index{0, 0, 1, 2, 0, 1},
		Val: []float64{1, 1, 1, 1, 1, 1},
	}
	a := NewCSRFromCOO(c, add)
	perm := DegreeDescPerm(a)
	// Vertex 1 (deg 3) -> 0, vertex 2 (deg 2) -> 1, vertex 0 (deg 1) -> 2.
	want := []Index{2, 0, 1}
	for i, p := range perm {
		if p != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	// After relabeling, degrees are non-increasing.
	rel := Permute(a, perm)
	for i := Index(1); i < rel.NRows; i++ {
		if rel.RowNNZ(i) > rel.RowNNZ(i-1) {
			t.Fatal("relabeled degrees not non-increasing")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := NewCSRFromCOO(randomCOO(r, 5, 5, 10), add)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	if bad.NNZ() > 0 {
		bad.Col[0] = 99
		if bad.Validate() == nil {
			t.Fatal("expected out-of-range column error")
		}
	}
	bad2 := a.Clone()
	bad2.RowPtr[1] = bad2.RowPtr[0] - 1
	if bad2.Validate() == nil {
		t.Fatal("expected monotonicity error")
	}
	bad3 := a.Clone()
	bad3.RowPtr = bad3.RowPtr[:len(bad3.RowPtr)-1]
	if bad3.Validate() == nil {
		t.Fatal("expected length error")
	}
	p := a.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortRows(t *testing.T) {
	a := &CSR[float64]{
		NRows: 2, NCols: 40,
		RowPtr: []Index{0, 3, 6},
		Col:    []Index{5, 1, 3, 30, 10, 20},
		Val:    []float64{50, 10, 30, 300, 100, 200},
	}
	a.SortRows()
	if !a.IsSortedRows() {
		t.Fatal("not sorted")
	}
	d := ToDense(a)
	for _, chk := range []struct {
		i, j Index
		v    float64
	}{{0, 1, 10}, {0, 3, 30}, {0, 5, 50}, {1, 10, 100}, {1, 20, 200}, {1, 30, 300}} {
		if v, ok := d.At(chk.i, chk.j); !ok || v != chk.v {
			t.Fatalf("value moved incorrectly at (%d,%d)", chk.i, chk.j)
		}
	}
	// Long row path (sort.Sort branch).
	n := 100
	long := &CSR[float64]{NRows: 1, NCols: Index(n), RowPtr: []Index{0, Index(n)}}
	for i := n - 1; i >= 0; i-- {
		long.Col = append(long.Col, Index(i))
		long.Val = append(long.Val, float64(i))
	}
	long.SortRows()
	if !long.IsSortedRows() {
		t.Fatal("long row not sorted")
	}
	for k, j := range long.Col {
		if long.Val[k] != float64(j) {
			t.Fatal("values detached from columns")
		}
	}
}

func TestEWiseAdd(t *testing.T) {
	a := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 3,
		Row: []Index{0, 0, 1}, Col: []Index{0, 2, 1}, Val: []float64{1, 2, 3}}, add)
	b := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 3,
		Row: []Index{0, 1, 1}, Col: []Index{2, 1, 2}, Val: []float64{10, 20, 30}}, add)
	s := EWiseAdd(a, b, add)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d := ToDense(s)
	checks := []struct {
		i, j Index
		v    float64
	}{{0, 0, 1}, {0, 2, 12}, {1, 1, 23}, {1, 2, 30}}
	if s.NNZ() != len(checks) {
		t.Fatalf("nnz = %d, want %d", s.NNZ(), len(checks))
	}
	for _, c := range checks {
		if v, ok := d.At(c.i, c.j); !ok || v != c.v {
			t.Fatalf("(%d,%d) = %v,%v want %v", c.i, c.j, v, ok, c.v)
		}
	}
}

func TestEWiseMult(t *testing.T) {
	a := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 3,
		Row: []Index{0, 0, 1}, Col: []Index{0, 2, 1}, Val: []float64{2, 3, 4}}, add)
	b := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 3,
		Row: []Index{0, 1, 1}, Col: []Index{2, 1, 2}, Val: []float64{10, 20, 30}}, add)
	m := EWiseMult(a, b, func(x, y float64) float64 { return x * y })
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	d := ToDense(m)
	if v, _ := d.At(0, 2); v != 30 {
		t.Fatalf("(0,2) = %v, want 30", v)
	}
	if v, _ := d.At(1, 1); v != 80 {
		t.Fatalf("(1,1) = %v, want 80", v)
	}
}

func TestMaskPattern(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := NewCSRFromCOO(randomCOO(r, 12, 12, 50), add)
	m := NewCSRFromCOO(randomCOO(r, 12, 12, 50), add).Pattern()
	got := MaskPattern(a, m)
	if !PatternSubset(got.Pattern(), m) {
		t.Fatal("masked result not subset of mask")
	}
	if !PatternSubset(got.Pattern(), a.Pattern()) {
		t.Fatal("masked result not subset of input")
	}
	// Every position in both must survive.
	da := ToDense(a)
	dg := ToDense(got)
	for i := Index(0); i < 12; i++ {
		for _, j := range m.Row(i) {
			va, oka := da.At(i, j)
			vg, okg := dg.At(i, j)
			if oka != okg || (oka && va != vg) {
				t.Fatalf("mask intersection wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestReduceSumAndMapValues(t *testing.T) {
	a := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 2,
		Row: []Index{0, 1}, Col: []Index{1, 0}, Val: []float64{2.5, 3.5}}, add)
	if s := Sum(a); s != 6 {
		t.Fatalf("Sum = %v", s)
	}
	if n := Reduce(a, 0, func(acc int, v float64) int { return acc + 1 }); n != 2 {
		t.Fatalf("Reduce count = %d", n)
	}
	doubled := MapValues(a, func(v float64) float64 { return 2 * v })
	if s := Sum(doubled); s != 12 {
		t.Fatalf("after MapValues Sum = %v", s)
	}
	ints := MapValues(a, func(v float64) int64 { return int64(v) })
	if s := SumInt(ints); s != 5 {
		t.Fatalf("SumInt = %d", s)
	}
	ones := Spones(a)
	if s := Sum(ones); s != 2 {
		t.Fatalf("Spones Sum = %v", s)
	}
}

func TestFromPatternAndFilterEntries(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := NewCSRFromCOO(randomCOO(r, 10, 10, 40), add)
	p := a.Pattern()
	ones := FromPattern(p, 1.0)
	if ones.NNZ() != p.NNZ() {
		t.Fatal("FromPattern changed nnz")
	}
	for _, v := range ones.Val {
		if v != 1 {
			t.Fatal("FromPattern value wrong")
		}
	}
	diagOnly := FilterEntries(a, func(i, j Index, _ float64) bool { return i == j })
	for i := Index(0); i < diagOnly.NRows; i++ {
		cols, _ := diagOnly.Row(i)
		for _, j := range cols {
			if j != i {
				t.Fatal("FilterEntries kept off-diagonal")
			}
		}
	}
}

func TestEqualAndSubset(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	a := NewCSRFromCOO(randomCOO(r, 8, 8, 30), add)
	eq := func(x, y float64) bool { return x == y }
	if !Equal(a, a.Clone(), eq) {
		t.Fatal("clone must equal original")
	}
	b := a.Clone()
	if b.NNZ() > 0 {
		b.Val[0]++
		if Equal(a, b, eq) {
			t.Fatal("value change not detected")
		}
	}
	if !PatternSubset(Tril(a).Pattern(), a.Pattern()) {
		t.Fatal("tril must be subset")
	}
	if !EqualPatterns(a.Pattern(), a.Clone().Pattern()) {
		t.Fatal("pattern equality")
	}
}

func TestTransposePattern(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	a := NewCSRFromCOO(randomCOO(r, 9, 13, 40), add)
	pt := TransposePattern(a.Pattern())
	tp := Transpose(a).Pattern()
	if !EqualPatterns(pt, tp) {
		t.Fatal("TransposePattern disagrees with Transpose")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(1 + r.Intn(20))
		n := Index(1 + r.Intn(20))
		a := NewCSRFromCOO(randomCOO(r, m, n, r.Intn(80)), add)
		back := FromDense(ToDense(a))
		return Equal(a, back, func(x, y float64) bool { return x == y })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrices(t *testing.T) {
	e := NewEmptyCSR[float64](0, 0)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if Transpose(e).NNZ() != 0 {
		t.Fatal("transpose of empty")
	}
	e2 := NewEmptyCSR[float64](5, 3)
	if Transpose(e2).NRows != 3 {
		t.Fatal("transpose dims")
	}
	if ToCSC(e2).NNZ() != 0 {
		t.Fatal("csc of empty")
	}
	if !e2.IsSortedRows() {
		t.Fatal("empty rows are sorted")
	}
}
