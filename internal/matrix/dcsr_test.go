package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCSRRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(1 + r.Intn(50))
		n := Index(1 + r.Intn(50))
		// Hypersparse: far fewer entries than rows.
		a := NewCSRFromCOO(randomCOO(r, m, n, r.Intn(int(m)/2+1)), add)
		d := ToDCSR(a)
		if d.Validate() != nil {
			return false
		}
		back := d.ToCSR()
		return Equal(a, back, func(x, y float64) bool { return x == y })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSRCompression(t *testing.T) {
	// 1000 rows, 3 non-empty.
	c := &COO[float64]{NRows: 1000, NCols: 10,
		Row: []Index{5, 500, 999, 5},
		Col: []Index{1, 2, 3, 7},
		Val: []float64{1, 2, 3, 4}}
	a := NewCSRFromCOO(c, add)
	d := ToDCSR(a)
	if d.NNZRows() != 3 {
		t.Fatalf("nnzrows = %d, want 3", d.NNZRows())
	}
	if d.NNZ() != 4 {
		t.Fatalf("nnz = %d", d.NNZ())
	}
	if len(d.RowPtr) != 4 {
		t.Fatalf("rowptr len = %d, want 4 (vs 1001 in CSR)", len(d.RowPtr))
	}
	// Row lookups.
	cols, vals := d.Row(5)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 7 || vals[0] != 1 || vals[1] != 4 {
		t.Fatalf("row 5: %v %v", cols, vals)
	}
	if cols, _ := d.Row(500); len(cols) != 1 || cols[0] != 2 {
		t.Fatal("row 500")
	}
	if cols, _ := d.Row(999); len(cols) != 1 {
		t.Fatal("row 999")
	}
	if cols, _ := d.Row(6); cols != nil {
		t.Fatal("empty row must return nil")
	}
	if cols, _ := d.Row(0); cols != nil {
		t.Fatal("row before first stored")
	}
}

func TestDCSRValidate(t *testing.T) {
	good := ToDCSR(NewCSRFromCOO(&COO[float64]{NRows: 4, NCols: 4,
		Row: []Index{1, 3}, Col: []Index{0, 2}, Val: []float64{1, 1}}, add))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad1 := &DCSR[float64]{NRows: 4, NCols: 4, RowID: []Index{2, 1},
		RowPtr: []Index{0, 1, 2}, Col: []Index{0, 0}, Val: []float64{1, 1}}
	if bad1.Validate() == nil {
		t.Fatal("non-increasing RowID")
	}
	bad2 := &DCSR[float64]{NRows: 4, NCols: 4, RowID: []Index{9},
		RowPtr: []Index{0, 1}, Col: []Index{0}, Val: []float64{1}}
	if bad2.Validate() == nil {
		t.Fatal("RowID out of range")
	}
	bad3 := &DCSR[float64]{NRows: 4, NCols: 4, RowID: []Index{1},
		RowPtr: []Index{0, 1}, Col: []Index{9}, Val: []float64{1}}
	if bad3.Validate() == nil {
		t.Fatal("column out of range")
	}
	bad4 := &DCSR[float64]{NRows: 4, NCols: 4, RowID: []Index{1},
		RowPtr: []Index{0, 0}, Col: nil, Val: nil}
	if bad4.Validate() == nil {
		t.Fatal("stored empty row")
	}
	bad5 := &DCSR[float64]{NRows: 4, NCols: 4, RowID: []Index{1},
		RowPtr: []Index{0}, Col: []Index{0}, Val: []float64{1}}
	if bad5.Validate() == nil {
		t.Fatal("short RowPtr")
	}
}

func TestDCSREmpty(t *testing.T) {
	e := ToDCSR(NewEmptyCSR[float64](10, 10))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.NNZRows() != 0 || e.NNZ() != 0 {
		t.Fatal("empty")
	}
	back := e.ToCSR()
	if back.NNZ() != 0 || back.NRows != 10 {
		t.Fatal("empty round trip")
	}
}

func TestSparseVecHelpers(t *testing.T) {
	v := NewSparseVec(10, []Index{7, 2, 7}, []float64{1, 2, 3}, add)
	if v.NNZ() != 2 {
		t.Fatalf("nnz = %d", v.NNZ())
	}
	if v.Idx[0] != 2 || v.Idx[1] != 7 || v.Val[1] != 4 {
		t.Fatalf("fold: %v %v", v.Idx, v.Val)
	}
	// Overwrite semantics with nil combine.
	w := NewSparseVec(10, []Index{3, 3}, []float64{5, 9}, nil)
	if w.Val[0] != 9 {
		t.Fatal("nil combine must overwrite")
	}
	rm := v.AsRowMatrix()
	if rm.NRows != 1 || rm.NCols != 10 || rm.NNZ() != 2 {
		t.Fatal("row view")
	}
	if err := rm.Validate(); err != nil {
		t.Fatal(err)
	}
	back := RowToVec(rm, 0)
	if !VecEqual(v, back, func(x, y float64) bool { return x == y }) {
		t.Fatal("row round trip")
	}
	p := v.VecPattern()
	if p.NNZ() != 2 || p.NRows != 1 {
		t.Fatal("pattern view")
	}
	c := v.Clone()
	c.Val[0] = 99
	if v.Val[0] == 99 {
		t.Fatal("clone must be deep")
	}
	u := EWiseAddVec(v, w, add)
	if u.NNZ() != 3 {
		t.Fatalf("union nnz = %d", u.NNZ())
	}
	if !VecEqual(u, u.Clone(), func(x, y float64) bool { return x == y }) {
		t.Fatal("vec equal")
	}
	if VecEqual(u, v, func(x, y float64) bool { return x == y }) {
		t.Fatal("different vectors must not be equal")
	}
}
