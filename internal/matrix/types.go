// Package matrix implements the sparse matrix substrate used throughout the
// repository: CSR, CSC and COO (triplet) storage with generic value types,
// plus the structural operations the masked SpGEMM kernels and graph
// applications need (transpose, row sorting, triangular extraction, degree
// relabeling, pattern views).
//
// The paper (§2.1) uses CSR for the inputs, the mask and the output, and CSC
// only for the pull-based inner-product algorithm; this package mirrors that
// choice. Indices are 32-bit (type Index) for cache compactness: the paper's
// memory-traffic analysis assumes index and value words are comparable in
// size, and 32-bit indices keep accumulator state dense.
package matrix

import (
	"fmt"
	"sort"
)

// Index is the integer type for row/column indices and CSR offsets. Matrices
// are limited to 2^31-1 rows, columns and nonzeros, which is ample for the
// laptop-scale reproduction (the paper's largest input has 1e8 nonzeros).
type Index = int32

// CSR is a sparse matrix in Compressed Sparse Row format. Row i occupies
// positions RowPtr[i]..RowPtr[i+1] of Col and Val. Within a row, column
// indices may be sorted or unsorted; kernels that require sorted rows
// (Heap, MCA, Inner) document it and SortRows establishes the invariant.
type CSR[T any] struct {
	NRows, NCols Index
	RowPtr       []Index // length NRows+1
	Col          []Index // length nnz
	Val          []T     // length nnz
}

// CSC is a sparse matrix in Compressed Sparse Column format, the mirror of
// CSR. Used by the pull-based Inner algorithm for the B operand (§4.1).
type CSC[T any] struct {
	NRows, NCols Index
	ColPtr       []Index // length NCols+1
	Row          []Index // length nnz
	Val          []T     // length nnz
}

// COO is a sparse matrix in coordinate (triplet) format, used as a staging
// format by the generators and the Matrix Market reader. Duplicate entries
// are permitted until NewCSRFromCOO collapses them.
type COO[T any] struct {
	NRows, NCols Index
	Row, Col     []Index
	Val          []T
}

// Pattern is the structure-only view of a sparse matrix: a CSR matrix
// without values. Masks are patterns — the paper notes (§2) that only the
// pattern of the mask is used, never its values.
type Pattern struct {
	NRows, NCols Index
	RowPtr       []Index
	Col          []Index
}

// NNZ returns the number of stored entries.
func (a *CSR[T]) NNZ() int { return len(a.Col) }

// NNZ returns the number of stored entries.
func (a *CSC[T]) NNZ() int { return len(a.Row) }

// NNZ returns the number of stored entries.
func (a *COO[T]) NNZ() int { return len(a.Row) }

// NNZ returns the number of stored entries.
func (p *Pattern) NNZ() int { return len(p.Col) }

// RowNNZ returns the number of stored entries in row i.
func (a *CSR[T]) RowNNZ(i Index) Index { return a.RowPtr[i+1] - a.RowPtr[i] }

// RowNNZ returns the number of stored entries in row i.
func (p *Pattern) RowNNZ(i Index) Index { return p.RowPtr[i+1] - p.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices backed by
// the matrix storage; callers must not grow them.
func (a *CSR[T]) Row(i Index) ([]Index, []T) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// Row returns the column indices of mask row i.
func (p *Pattern) Row(i Index) []Index {
	return p.Col[p.RowPtr[i]:p.RowPtr[i+1]]
}

// Column returns the row indices and values of column j.
func (a *CSC[T]) Column(j Index) ([]Index, []T) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.Row[lo:hi], a.Val[lo:hi]
}

// Pattern returns the structure-only view of a. The returned Pattern shares
// RowPtr and Col with a; it is a view, not a copy.
func (a *CSR[T]) Pattern() *Pattern {
	return &Pattern{NRows: a.NRows, NCols: a.NCols, RowPtr: a.RowPtr, Col: a.Col}
}

// Clone returns a deep copy of a.
func (a *CSR[T]) Clone() *CSR[T] {
	b := &CSR[T]{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]Index(nil), a.RowPtr...),
		Col:    append([]Index(nil), a.Col...),
		Val:    append([]T(nil), a.Val...),
	}
	return b
}

// Clone returns a deep copy of p.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{
		NRows:  p.NRows,
		NCols:  p.NCols,
		RowPtr: append([]Index(nil), p.RowPtr...),
		Col:    append([]Index(nil), p.Col...),
	}
}

// NewEmptyCSR returns an m-by-n CSR matrix with no entries.
func NewEmptyCSR[T any](m, n Index) *CSR[T] {
	return &CSR[T]{NRows: m, NCols: n, RowPtr: make([]Index, m+1)}
}

// Validate checks the CSR invariants: monotone row pointers, in-range column
// indices, and consistent array lengths. It reports the first violation.
func (a *CSR[T]) Validate() error {
	if a.NRows < 0 || a.NCols < 0 {
		return fmt.Errorf("matrix: negative dimension %dx%d", a.NRows, a.NCols)
	}
	if len(a.RowPtr) != int(a.NRows)+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(a.RowPtr), a.NRows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	for i := Index(0); i < a.NRows; i++ {
		if a.RowPtr[i+1] < a.RowPtr[i] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
	}
	nnz := int(a.RowPtr[a.NRows])
	if len(a.Col) != nnz || len(a.Val) != nnz {
		return fmt.Errorf("matrix: nnz mismatch: RowPtr says %d, len(Col)=%d len(Val)=%d",
			nnz, len(a.Col), len(a.Val))
	}
	for k, j := range a.Col {
		if j < 0 || j >= a.NCols {
			return fmt.Errorf("matrix: column index %d out of range at position %d", j, k)
		}
	}
	return nil
}

// Validate checks the Pattern invariants (same rules as CSR without values).
func (p *Pattern) Validate() error {
	if len(p.RowPtr) != int(p.NRows)+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(p.RowPtr), p.NRows+1)
	}
	if p.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", p.RowPtr[0])
	}
	for i := Index(0); i < p.NRows; i++ {
		if p.RowPtr[i+1] < p.RowPtr[i] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
	}
	if len(p.Col) != int(p.RowPtr[p.NRows]) {
		return fmt.Errorf("matrix: nnz mismatch: RowPtr says %d, len(Col)=%d",
			p.RowPtr[p.NRows], len(p.Col))
	}
	for k, j := range p.Col {
		if j < 0 || j >= p.NCols {
			return fmt.Errorf("matrix: column index %d out of range at position %d", j, k)
		}
	}
	return nil
}

// IsSortedRows reports whether every row's column indices are strictly
// increasing (sorted and duplicate-free).
func (a *CSR[T]) IsSortedRows() bool {
	for i := Index(0); i < a.NRows; i++ {
		cols := a.Col[a.RowPtr[i]:a.RowPtr[i+1]]
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				return false
			}
		}
	}
	return true
}

// IsSortedRows reports whether every mask row is strictly increasing.
func (p *Pattern) IsSortedRows() bool {
	return p.RowsSortedIn(0, p.NRows)
}

// RowsSortedIn reports whether every row in [lo, hi) is strictly increasing
// (sorted and duplicate-free) — the range form kernels use to validate the
// preconditions of sorted-row mask representations. Degenerate zero-value
// patterns (no RowPtr) report true: they have no row data to violate it.
func (p *Pattern) RowsSortedIn(lo, hi Index) bool {
	if int(hi) >= len(p.RowPtr) {
		return true
	}
	for i := lo; i < hi; i++ {
		cols := p.Col[p.RowPtr[i]:p.RowPtr[i+1]]
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				return false
			}
		}
	}
	return true
}

// SortRows sorts the column indices (and matching values) within each row in
// increasing order. Rows are assumed duplicate-free (the CSR builders
// guarantee this). Sorting is done row-by-row with insertion sort for short
// rows and sort.Sort otherwise.
func (a *CSR[T]) SortRows() {
	for i := Index(0); i < a.NRows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		sortRowSegment(a.Col[lo:hi], a.Val[lo:hi])
	}
}

const insertionSortThreshold = 24

func sortRowSegment[T any](cols []Index, vals []T) {
	if len(cols) < 2 {
		return
	}
	if len(cols) <= insertionSortThreshold {
		for k := 1; k < len(cols); k++ {
			c, v := cols[k], vals[k]
			j := k - 1
			for j >= 0 && cols[j] > c {
				cols[j+1], vals[j+1] = cols[j], vals[j]
				j--
			}
			cols[j+1], vals[j+1] = c, v
		}
		return
	}
	sort.Sort(&rowSorter[T]{cols: cols, vals: vals})
}

type rowSorter[T any] struct {
	cols []Index
	vals []T
}

func (s *rowSorter[T]) Len() int           { return len(s.cols) }
func (s *rowSorter[T]) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter[T]) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
