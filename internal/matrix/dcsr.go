package matrix

// DCSR — Doubly Compressed Sparse Row [Buluç & Gilbert 2008], the
// hypersparse format SuiteSparse:GraphBLAS selects when most rows are
// empty (§3 of the paper). On top of CSR's compression of column indices,
// DCSR also compresses the row pointer array: only non-empty rows are
// stored, each with its row id. Iterating a DCSR matrix costs O(nnz +
// #nonempty-rows) instead of O(nnz + nrows), which matters when
// nnz ≪ nrows (e.g. frontier matrices late in a BFS, or 2D-partitioned
// submatrices).
//
// The masked SpGEMM kernels in this repository run on CSR (the paper
// isolates algorithmic trade-offs on CSR); DCSR is provided as a substrate
// with lossless conversions so hypersparse operands can be stored
// compactly between multiplications.

// DCSR is a hypersparse matrix: RowID[r] is the row index of the r-th
// non-empty row, whose entries live at RowPtr[r]..RowPtr[r+1].
type DCSR[T any] struct {
	NRows, NCols Index
	RowID        []Index // non-empty row ids, strictly increasing
	RowPtr       []Index // length len(RowID)+1
	Col          []Index
	Val          []T
}

// NNZ returns the number of stored entries.
func (a *DCSR[T]) NNZ() int { return len(a.Col) }

// NNZRows returns the number of non-empty rows.
func (a *DCSR[T]) NNZRows() int { return len(a.RowID) }

// ToDCSR compresses a CSR matrix to DCSR (empty rows dropped from the row
// index). Shares Col/Val storage with the input.
func ToDCSR[T any](a *CSR[T]) *DCSR[T] {
	out := &DCSR[T]{NRows: a.NRows, NCols: a.NCols, Col: a.Col, Val: a.Val}
	out.RowPtr = append(out.RowPtr, 0)
	for i := Index(0); i < a.NRows; i++ {
		if a.RowPtr[i+1] > a.RowPtr[i] {
			out.RowID = append(out.RowID, i)
			out.RowPtr = append(out.RowPtr, a.RowPtr[i+1])
		}
	}
	return out
}

// ToCSR expands a DCSR matrix back to CSR (allocates a fresh row pointer
// array, shares Col/Val).
func (a *DCSR[T]) ToCSR() *CSR[T] {
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, Col: a.Col, Val: a.Val,
		RowPtr: make([]Index, a.NRows+1)}
	for r, i := range a.RowID {
		out.RowPtr[i+1] = a.RowPtr[r+1] - a.RowPtr[r]
	}
	for i := Index(0); i < a.NRows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// Row returns the column indices and values of row i, or empty slices when
// the row is not stored. Lookup is a binary search over the non-empty rows.
func (a *DCSR[T]) Row(i Index) ([]Index, []T) {
	lo, hi := 0, len(a.RowID)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.RowID[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.RowID) && a.RowID[lo] == i {
		return a.Col[a.RowPtr[lo]:a.RowPtr[lo+1]], a.Val[a.RowPtr[lo]:a.RowPtr[lo+1]]
	}
	return nil, nil
}

// Validate checks the DCSR invariants.
func (a *DCSR[T]) Validate() error {
	if len(a.RowPtr) != len(a.RowID)+1 {
		return errDCSR("RowPtr length != len(RowID)+1")
	}
	if len(a.RowPtr) > 0 && a.RowPtr[0] != 0 {
		return errDCSR("RowPtr[0] != 0")
	}
	for r := 1; r < len(a.RowID); r++ {
		if a.RowID[r-1] >= a.RowID[r] {
			return errDCSR("RowID not strictly increasing")
		}
	}
	for r := 0; r < len(a.RowID); r++ {
		if a.RowID[r] < 0 || a.RowID[r] >= a.NRows {
			return errDCSR("RowID out of range")
		}
		if a.RowPtr[r+1] <= a.RowPtr[r] {
			return errDCSR("stored row is empty or RowPtr not monotone")
		}
	}
	if len(a.RowID) > 0 && int(a.RowPtr[len(a.RowID)]) != len(a.Col) {
		return errDCSR("nnz mismatch")
	}
	for _, j := range a.Col {
		if j < 0 || j >= a.NCols {
			return errDCSR("column index out of range")
		}
	}
	return nil
}

type errDCSR string

func (e errDCSR) Error() string { return "matrix: dcsr: " + string(e) }
