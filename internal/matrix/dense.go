package matrix

// Dense reference helpers. These are used by tests and by the reference
// (oracle) masked multiply that every kernel is validated against. They are
// deliberately simple and O(m·n); never used in benchmarks.

// Dense is a row-major dense matrix with explicit presence flags, so a
// stored zero value is distinguishable from a structural zero.
type Dense[T any] struct {
	NRows, NCols Index
	Set          []bool
	Val          []T
}

// NewDense returns an m-by-n dense matrix with no entries set.
func NewDense[T any](m, n Index) *Dense[T] {
	return &Dense[T]{NRows: m, NCols: n, Set: make([]bool, int(m)*int(n)), Val: make([]T, int(m)*int(n))}
}

// At returns the entry and whether it is present.
func (d *Dense[T]) At(i, j Index) (T, bool) {
	k := int(i)*int(d.NCols) + int(j)
	return d.Val[k], d.Set[k]
}

// Put stores v at (i, j), marking it present.
func (d *Dense[T]) Put(i, j Index, v T) {
	k := int(i)*int(d.NCols) + int(j)
	d.Val[k] = v
	d.Set[k] = true
}

// ToDense expands a CSR matrix.
func ToDense[T any](a *CSR[T]) *Dense[T] {
	d := NewDense[T](a.NRows, a.NCols)
	for i := Index(0); i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Put(i, a.Col[k], a.Val[k])
		}
	}
	return d
}

// FromDense compresses a dense matrix to CSR with sorted rows.
func FromDense[T any](d *Dense[T]) *CSR[T] {
	out := &CSR[T]{NRows: d.NRows, NCols: d.NCols, RowPtr: make([]Index, d.NRows+1)}
	for i := Index(0); i < d.NRows; i++ {
		for j := Index(0); j < d.NCols; j++ {
			if v, ok := d.At(i, j); ok {
				out.Col = append(out.Col, j)
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// Equal reports whether a and b have identical dimensions, pattern and
// values, comparing values with eq. Rows are compared position-by-position,
// so both matrices must have sorted rows for a semantic comparison (use
// SortRows first if unsure).
func Equal[T any](a, b *CSR[T], eq func(T, T) bool) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := Index(0); i <= a.NRows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] || !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}

// EqualPatterns reports whether two patterns are identical (both must have
// sorted rows).
func EqualPatterns(a, b *Pattern) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := Index(0); i <= a.NRows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] {
			return false
		}
	}
	return true
}

// PatternSubset reports whether every entry position of a appears in b.
// Both patterns must have sorted rows.
func PatternSubset(a, b *Pattern) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		return false
	}
	for i := Index(0); i < a.NRows; i++ {
		ar := a.Col[a.RowPtr[i]:a.RowPtr[i+1]]
		br := b.Col[b.RowPtr[i]:b.RowPtr[i+1]]
		bi := 0
		for _, j := range ar {
			for bi < len(br) && br[bi] < j {
				bi++
			}
			if bi >= len(br) || br[bi] != j {
				return false
			}
		}
	}
	return true
}
