package matrix

// Row extraction and splicing — the operand views of the incremental
// (delta) execution path. A dirty-row frontier is materialized as a small
// rows×ncols CSR holding only the frontier rows (ExtractRows), the masked
// product runs on that sub-operand with the ordinary blocked drivers, and
// the recomputed rows are spliced back over the previous output
// (SpliceRows). Both are pure copies: the inputs are never mutated.

// ExtractRows returns the len(rows)×(a.NCols) CSR whose row r is row
// rows[r] of a. rows must be in-range; duplicates are allowed (each
// occurrence copies the row). The result shares no storage with a.
func ExtractRows[T any](a *CSR[T], rows []Index) *CSR[T] {
	out := &CSR[T]{
		NRows:  Index(len(rows)),
		NCols:  a.NCols,
		RowPtr: make([]Index, len(rows)+1),
	}
	nnz := Index(0)
	for r, i := range rows {
		nnz += a.RowPtr[i+1] - a.RowPtr[i]
		out.RowPtr[r+1] = nnz
	}
	out.Col = make([]Index, nnz)
	out.Val = make([]T, nnz)
	for r, i := range rows {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		copy(out.Col[out.RowPtr[r]:], a.Col[lo:hi])
		copy(out.Val[out.RowPtr[r]:], a.Val[lo:hi])
	}
	return out
}

// ExtractRowsPattern is ExtractRows for a structure-only pattern.
func ExtractRowsPattern(p *Pattern, rows []Index) *Pattern {
	out := &Pattern{
		NRows:  Index(len(rows)),
		NCols:  p.NCols,
		RowPtr: make([]Index, len(rows)+1),
	}
	nnz := Index(0)
	for r, i := range rows {
		nnz += p.RowPtr[i+1] - p.RowPtr[i]
		out.RowPtr[r+1] = nnz
	}
	out.Col = make([]Index, nnz)
	for r, i := range rows {
		copy(out.Col[out.RowPtr[r]:], p.Col[p.RowPtr[i]:p.RowPtr[i+1]])
	}
	return out
}

// SpliceRows returns a copy of old with row rows[r] replaced by row r of
// sub, for every r. rows must be strictly increasing and in-range, and sub
// must have len(rows) rows and old's column count. Neither input is
// mutated.
func SpliceRows[T any](old *CSR[T], rows []Index, sub *CSR[T]) *CSR[T] {
	out := &CSR[T]{
		NRows:  old.NRows,
		NCols:  old.NCols,
		RowPtr: make([]Index, old.NRows+1),
	}
	nnzOld := Index(len(old.Col))
	nnzSub := Index(len(sub.Col))
	// Upper bound; exact when no row both shrinks and grows — trim below.
	out.Col = make([]Index, 0, int(nnzOld+nnzSub))
	out.Val = make([]T, 0, int(nnzOld+nnzSub))
	r := 0
	for i := Index(0); i < old.NRows; i++ {
		if r < len(rows) && rows[r] == i {
			lo, hi := sub.RowPtr[r], sub.RowPtr[r+1]
			out.Col = append(out.Col, sub.Col[lo:hi]...)
			out.Val = append(out.Val, sub.Val[lo:hi]...)
			r++
		} else {
			lo, hi := old.RowPtr[i], old.RowPtr[i+1]
			out.Col = append(out.Col, old.Col[lo:hi]...)
			out.Val = append(out.Val, old.Val[lo:hi]...)
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}
