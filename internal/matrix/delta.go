package matrix

import (
	"fmt"
	"sort"
)

// Delta-CSR — an immutable base CSR plus batched per-row insert/delete
// logs, the dynamic-graph substrate of the streaming workloads. Edge
// batches land in the logs in O(batch · log row) without touching the
// base; readers materialize rows on demand by merging a base row with its
// log (MergedRow), or the whole matrix at once (Current), so the blocked
// SpGEMM drivers always see a plain sorted CSR and the kernels stay
// delta-oblivious. When the pending-log volume crosses a bounded merge
// threshold, the logs are folded into a fresh base (Compact), keeping
// merge cost amortized O(1) per applied update.

// Update is one edge mutation applied to a DeltaCSR: set entry (Row, Col)
// to Val — inserting it if absent, overwriting if present — or remove it
// when Delete is true. Deleting an absent entry is a no-op.
type Update[T any] struct {
	Row, Col Index
	Val      T
	Delete   bool
}

// rowLog holds the pending mutations of one row: inserted/overwritten
// entries and deleted base columns, both sorted by column.
type rowLog[T any] struct {
	insCol []Index // sorted, duplicate-free
	insVal []T
	del    []Index // sorted, duplicate-free, all present in the base row
}

// DeltaCSR is a dynamic sparse matrix: a base CSR (never mutated in place)
// overlaid with per-row insert/delete logs. The zero value is not usable;
// construct with NewDeltaCSR. DeltaCSR is not safe for concurrent
// mutation; snapshots returned by Current and Compact are immutable CSRs
// and may be read concurrently with later mutations.
type DeltaCSR[T any] struct {
	nrows, ncols Index
	base         *CSR[T]
	logs         map[Index]*rowLog[T]
	pending      int // total log entries (inserts + deletes)
	nnz          int // entry count of the merged matrix, maintained incrementally
	gen          uint64
	threshold    float64
	snap         *CSR[T]
	snapGen      uint64
}

// DefaultMergeThreshold is the default bound on pending log volume: when
// pending entries exceed this fraction of the base nnz, ApplyBatch compacts
// automatically. See SetMergeThreshold.
const DefaultMergeThreshold = 0.25

// NewDeltaCSR wraps base in a delta overlay. The base must have strictly
// increasing (sorted, duplicate-free) rows — the invariant every builder in
// this package establishes — and must not be mutated afterwards; the
// overlay never mutates it. Returns an error if the base is invalid or has
// unsorted rows.
func NewDeltaCSR[T any](base *CSR[T]) (*DeltaCSR[T], error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("matrix: delta base: %w", err)
	}
	if !base.IsSortedRows() {
		return nil, fmt.Errorf("matrix: delta base has unsorted rows (SortRows first)")
	}
	return &DeltaCSR[T]{
		nrows:     base.NRows,
		ncols:     base.NCols,
		base:      base,
		logs:      make(map[Index]*rowLog[T]),
		nnz:       base.NNZ(),
		threshold: DefaultMergeThreshold,
	}, nil
}

// SetMergeThreshold bounds the pending-log volume: once pending insert and
// delete entries exceed f × max(base nnz, 1), the next ApplyBatch folds the
// logs into a fresh base. f <= 0 restores DefaultMergeThreshold. Larger
// values defer merge cost, smaller values keep merged-row reads cheaper.
func (d *DeltaCSR[T]) SetMergeThreshold(f float64) {
	if f <= 0 {
		f = DefaultMergeThreshold
	}
	d.threshold = f
}

// Dims returns the matrix dimensions.
func (d *DeltaCSR[T]) Dims() (nrows, ncols Index) { return d.nrows, d.ncols }

// NNZ returns the entry count of the merged matrix (base plus pending
// inserts minus pending deletes).
func (d *DeltaCSR[T]) NNZ() int { return d.nnz }

// Pending returns the number of pending log entries (inserts + deletes)
// not yet folded into the base.
func (d *DeltaCSR[T]) Pending() int { return d.pending }

// Gen returns the generation counter: it advances on every non-empty
// applied batch, so callers can cheaply detect staleness of derived
// state. Compact does not advance it (content is unchanged).
func (d *DeltaCSR[T]) Gen() uint64 { return d.gen }

// Base returns the current base CSR, which excludes pending log entries.
// Callers must not mutate it.
func (d *DeltaCSR[T]) Base() *CSR[T] { return d.base }

// RowDirty reports whether row i has pending log entries.
func (d *DeltaCSR[T]) RowDirty(i Index) bool {
	_, ok := d.logs[i]
	return ok
}

// searchIndex is sort.Search over a sorted Index slice.
func searchIndex(s []Index, j Index) int {
	return sort.Search(len(s), func(k int) bool { return s[k] >= j })
}

// baseHas reports whether base row i stores column j (binary search; base
// rows are sorted).
func (d *DeltaCSR[T]) baseHas(i, j Index) bool {
	cols := d.base.Col[d.base.RowPtr[i]:d.base.RowPtr[i+1]]
	k := searchIndex(cols, j)
	return k < len(cols) && cols[k] == j
}

// ApplyBatch applies a batch of updates in order. Updates are validated
// first: any out-of-range row or column index rejects the whole batch with
// an error and no mutation. Duplicate edges within a batch apply
// last-writer-wins; deletes of absent entries are no-ops. Returns the
// distinct rows the batch touched (ascending), which is the batch's
// dirty-row set even when an insert-then-delete pair nets out.
// If the pending-log volume crosses the merge threshold after the batch,
// the logs are folded into a fresh base before returning.
func (d *DeltaCSR[T]) ApplyBatch(batch []Update[T]) ([]Index, error) {
	for k, u := range batch {
		if u.Row < 0 || u.Row >= d.nrows || u.Col < 0 || u.Col >= d.ncols {
			return nil, fmt.Errorf("matrix: delta update %d: index (%d, %d) out of range %dx%d",
				k, u.Row, u.Col, d.nrows, d.ncols)
		}
	}
	if len(batch) == 0 {
		return nil, nil
	}
	touched := make(map[Index]struct{})
	for _, u := range batch {
		touched[u.Row] = struct{}{}
		if u.Delete {
			d.applyDelete(u.Row, u.Col)
		} else {
			d.applyInsert(u.Row, u.Col, u.Val)
		}
	}
	d.gen++
	if float64(d.pending) > d.threshold*float64(max(d.base.NNZ(), 1)) {
		d.Compact()
	}
	rows := make([]Index, 0, len(touched))
	for i := range touched {
		rows = append(rows, i)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
	return rows, nil
}

// log returns row i's log, creating it if absent.
func (d *DeltaCSR[T]) log(i Index) *rowLog[T] {
	l := d.logs[i]
	if l == nil {
		l = &rowLog[T]{}
		d.logs[i] = l
	}
	return l
}

// dropEmptyLog removes row i's log if it no longer holds entries.
func (d *DeltaCSR[T]) dropEmptyLog(i Index, l *rowLog[T]) {
	if len(l.insCol) == 0 && len(l.del) == 0 {
		delete(d.logs, i)
	}
}

func (d *DeltaCSR[T]) applyInsert(i, j Index, v T) {
	l := d.log(i)
	// Un-delete: a pending delete of (i, j) flips back to presence with
	// the new value (recorded as an overwrite insert).
	if k := searchIndex(l.del, j); k < len(l.del) && l.del[k] == j {
		l.del = append(l.del[:k], l.del[k+1:]...)
		d.pending--
		d.nnz++
	}
	if k := searchIndex(l.insCol, j); k < len(l.insCol) && l.insCol[k] == j {
		l.insVal[k] = v // duplicate insert: last writer wins
	} else {
		l.insCol = append(l.insCol, 0)
		copy(l.insCol[k+1:], l.insCol[k:])
		l.insCol[k] = j
		var zero T
		l.insVal = append(l.insVal, zero)
		copy(l.insVal[k+1:], l.insVal[k:])
		l.insVal[k] = v
		d.pending++
		if !d.baseHas(i, j) {
			d.nnz++ // true insert; overwrite of a base entry keeps nnz
		}
	}
	d.dropEmptyLog(i, l)
}

func (d *DeltaCSR[T]) applyDelete(i, j Index) {
	l := d.log(i)
	if k := searchIndex(l.insCol, j); k < len(l.insCol) && l.insCol[k] == j {
		l.insCol = append(l.insCol[:k], l.insCol[k+1:]...)
		l.insVal = append(l.insVal[:k], l.insVal[k+1:]...)
		d.pending--
		if !d.baseHas(i, j) {
			d.nnz-- // the insert was the only source of this entry
		} else {
			// The insert was an overwrite; the base entry remains and must
			// now be deleted below.
			if k := searchIndex(l.del, j); !(k < len(l.del) && l.del[k] == j) {
				l.del = append(l.del, 0)
				copy(l.del[k+1:], l.del[k:])
				l.del[k] = j
				d.pending++
				d.nnz--
			}
		}
		d.dropEmptyLog(i, l)
		return
	}
	if d.baseHas(i, j) {
		if k := searchIndex(l.del, j); !(k < len(l.del) && l.del[k] == j) {
			l.del = append(l.del, 0)
			copy(l.del[k+1:], l.del[k:])
			l.del[k] = j
			d.pending++
			d.nnz--
		}
	}
	d.dropEmptyLog(i, l)
}

// MergedRow appends row i of the merged matrix (base row with its log
// applied) to cols and vals and returns the extended slices, sorted by
// column. For rows with no pending log it returns sub-slices of the base
// storage directly when cols is nil (zero copy).
func (d *DeltaCSR[T]) MergedRow(i Index, cols []Index, vals []T) ([]Index, []T) {
	lo, hi := d.base.RowPtr[i], d.base.RowPtr[i+1]
	l := d.logs[i]
	if l == nil {
		if cols == nil && vals == nil {
			return d.base.Col[lo:hi], d.base.Val[lo:hi]
		}
		return append(cols, d.base.Col[lo:hi]...), append(vals, d.base.Val[lo:hi]...)
	}
	bCol, bVal := d.base.Col[lo:hi], d.base.Val[lo:hi]
	bi, ii, di := 0, 0, 0
	for bi < len(bCol) || ii < len(l.insCol) {
		// Take the smaller column; on ties the insert wins (overwrite).
		if ii < len(l.insCol) && (bi >= len(bCol) || l.insCol[ii] <= bCol[bi]) {
			j := l.insCol[ii]
			if bi < len(bCol) && bCol[bi] == j {
				bi++ // base entry shadowed by the overwrite
			}
			cols = append(cols, j)
			vals = append(vals, l.insVal[ii])
			ii++
			continue
		}
		j := bCol[bi]
		for di < len(l.del) && l.del[di] < j {
			di++
		}
		if di < len(l.del) && l.del[di] == j {
			bi++ // deleted base entry
			continue
		}
		cols = append(cols, j)
		vals = append(vals, bVal[bi])
		bi++
	}
	return cols, vals
}

// merged materializes the merged matrix as a fresh CSR with sorted rows.
func (d *DeltaCSR[T]) merged() *CSR[T] {
	out := &CSR[T]{
		NRows:  d.nrows,
		NCols:  d.ncols,
		RowPtr: make([]Index, d.nrows+1),
		Col:    make([]Index, 0, d.nnz),
		Val:    make([]T, 0, d.nnz),
	}
	for i := Index(0); i < d.nrows; i++ {
		out.Col, out.Val = d.MergedRow(i, out.Col, out.Val)
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// Current returns the merged matrix as an immutable CSR snapshot without
// mutating the base or consuming the logs. The snapshot is cached per
// generation: repeated calls between batches return the same CSR, and the
// base itself is returned when no updates are pending. Callers must not
// mutate the result.
func (d *DeltaCSR[T]) Current() *CSR[T] {
	if d.pending == 0 {
		return d.base
	}
	if d.snap != nil && d.snapGen == d.gen {
		return d.snap
	}
	d.snap = d.merged()
	d.snapGen = d.gen
	return d.snap
}

// Compact folds the pending logs into a fresh base CSR and clears them, in
// O(nnz + pending). The matrix content is unchanged (Gen does not advance);
// only the storage identity of Base/Current moves. Returns the new base.
func (d *DeltaCSR[T]) Compact() *CSR[T] {
	if d.pending == 0 {
		return d.base
	}
	d.base = d.Current()
	d.logs = make(map[Index]*rowLog[T])
	d.pending = 0
	d.snap = nil
	return d.base
}

// Validate checks the overlay invariants: a valid sorted base, sorted
// duplicate-free logs whose deletes all name base entries, consistent
// pending and nnz accounting, and a valid merged matrix. It reports the
// first violation; tests and the fuzzer use it as the corruption oracle.
func (d *DeltaCSR[T]) Validate() error {
	if err := d.base.Validate(); err != nil {
		return fmt.Errorf("matrix: delta base: %w", err)
	}
	if !d.base.IsSortedRows() {
		return fmt.Errorf("matrix: delta base rows unsorted")
	}
	pending, nnz := 0, d.base.NNZ()
	for i, l := range d.logs {
		if i < 0 || i >= d.nrows {
			return fmt.Errorf("matrix: delta log for out-of-range row %d", i)
		}
		if len(l.insCol) == 0 && len(l.del) == 0 {
			return fmt.Errorf("matrix: delta row %d holds an empty log", i)
		}
		if len(l.insCol) != len(l.insVal) {
			return fmt.Errorf("matrix: delta row %d insert cols/vals length mismatch", i)
		}
		for k := range l.insCol {
			j := l.insCol[k]
			if j < 0 || j >= d.ncols {
				return fmt.Errorf("matrix: delta row %d insert column %d out of range", i, j)
			}
			if k > 0 && l.insCol[k-1] >= j {
				return fmt.Errorf("matrix: delta row %d insert log unsorted", i)
			}
			if !d.baseHas(i, j) {
				nnz++
			}
		}
		for k, j := range l.del {
			if k > 0 && l.del[k-1] >= j {
				return fmt.Errorf("matrix: delta row %d delete log unsorted", i)
			}
			if !d.baseHas(i, j) {
				return fmt.Errorf("matrix: delta row %d deletes absent column %d", i, j)
			}
			if p := searchIndex(l.insCol, j); p < len(l.insCol) && l.insCol[p] == j {
				return fmt.Errorf("matrix: delta row %d column %d both inserted and deleted", i, j)
			}
			nnz--
		}
		pending += len(l.insCol) + len(l.del)
	}
	if pending != d.pending {
		return fmt.Errorf("matrix: delta pending accounting: counted %d, tracked %d", pending, d.pending)
	}
	if nnz != d.nnz {
		return fmt.Errorf("matrix: delta nnz accounting: counted %d, tracked %d", nnz, d.nnz)
	}
	cur := d.Current()
	if err := cur.Validate(); err != nil {
		return fmt.Errorf("matrix: delta merged: %w", err)
	}
	if !cur.IsSortedRows() {
		return fmt.Errorf("matrix: delta merged rows unsorted")
	}
	if cur.NNZ() != d.nnz {
		return fmt.Errorf("matrix: delta merged nnz %d, tracked %d", cur.NNZ(), d.nnz)
	}
	return nil
}
