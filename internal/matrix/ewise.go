package matrix

// Element-wise operations on CSR matrices with sorted rows. These implement
// the GraphBLAS eWiseAdd (pattern union) and eWiseMult (pattern
// intersection) the graph applications are written in terms of.

// EWiseAdd returns the element-wise union of a and b: positions present in
// either input, with combine applied where both are present. Rows must be
// sorted; the result has sorted rows.
func EWiseAdd[T any](a, b *CSR[T], combine func(T, T) T) *CSR[T] {
	mustSameDims(a, b)
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	out.Col = make([]Index, 0, a.NNZ()+b.NNZ())
	out.Val = make([]T, 0, a.NNZ()+b.NNZ())
	for i := Index(0); i < a.NRows; i++ {
		ai, aEnd := a.RowPtr[i], a.RowPtr[i+1]
		bi, bEnd := b.RowPtr[i], b.RowPtr[i+1]
		for ai < aEnd && bi < bEnd {
			switch {
			case a.Col[ai] == b.Col[bi]:
				out.Col = append(out.Col, a.Col[ai])
				out.Val = append(out.Val, combine(a.Val[ai], b.Val[bi]))
				ai++
				bi++
			case a.Col[ai] < b.Col[bi]:
				out.Col = append(out.Col, a.Col[ai])
				out.Val = append(out.Val, a.Val[ai])
				ai++
			default:
				out.Col = append(out.Col, b.Col[bi])
				out.Val = append(out.Val, b.Val[bi])
				bi++
			}
		}
		for ; ai < aEnd; ai++ {
			out.Col = append(out.Col, a.Col[ai])
			out.Val = append(out.Val, a.Val[ai])
		}
		for ; bi < bEnd; bi++ {
			out.Col = append(out.Col, b.Col[bi])
			out.Val = append(out.Val, b.Val[bi])
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// EWiseMult returns the element-wise intersection of a and b: positions
// present in both inputs, combined with f. Rows must be sorted.
func EWiseMult[T, U, V any](a *CSR[T], b *CSR[U], f func(T, U) V) *CSR[V] {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		panic("matrix: EWiseMult dimension mismatch")
	}
	out := &CSR[V]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		ai, aEnd := a.RowPtr[i], a.RowPtr[i+1]
		bi, bEnd := b.RowPtr[i], b.RowPtr[i+1]
		for ai < aEnd && bi < bEnd {
			switch {
			case a.Col[ai] == b.Col[bi]:
				out.Col = append(out.Col, a.Col[ai])
				out.Val = append(out.Val, f(a.Val[ai], b.Val[bi]))
				ai++
				bi++
			case a.Col[ai] < b.Col[bi]:
				ai++
			default:
				bi++
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// MaskPattern returns the entries of a whose positions appear in mask
// (pattern intersection). Rows of both must be sorted.
func MaskPattern[T any](a *CSR[T], mask *Pattern) *CSR[T] {
	if a.NRows != mask.NRows || a.NCols != mask.NCols {
		panic("matrix: MaskPattern dimension mismatch")
	}
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		ai, aEnd := a.RowPtr[i], a.RowPtr[i+1]
		mrow := mask.Row(i)
		mi := 0
		for ai < aEnd && mi < len(mrow) {
			switch {
			case a.Col[ai] == mrow[mi]:
				out.Col = append(out.Col, a.Col[ai])
				out.Val = append(out.Val, a.Val[ai])
				ai++
				mi++
			case a.Col[ai] < mrow[mi]:
				ai++
			default:
				mi++
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// Reduce folds all stored values with f starting from init.
func Reduce[T, A any](a *CSR[T], init A, f func(A, T) A) A {
	acc := init
	for _, v := range a.Val {
		acc = f(acc, v)
	}
	return acc
}

// Sum returns the sum of all stored float64 values.
func Sum(a *CSR[float64]) float64 {
	var s float64
	for _, v := range a.Val {
		s += v
	}
	return s
}

// SumInt returns the sum of all stored int64 values.
func SumInt(a *CSR[int64]) int64 {
	var s int64
	for _, v := range a.Val {
		s += v
	}
	return s
}

func mustSameDims[T any](a, b *CSR[T]) {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		panic("matrix: dimension mismatch")
	}
}
