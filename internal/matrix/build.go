package matrix

// Builders and format conversions: COO→CSR with duplicate folding, CSR↔CSC,
// transpose, and construction from dense row data (for tests).

// NewCSRFromCOO builds a CSR matrix from triplets, summing duplicates with
// combine (if combine is nil, later entries overwrite earlier ones). Rows of
// the result are sorted by column index. The input slices are not modified.
func NewCSRFromCOO[T any](c *COO[T], combine func(T, T) T) *CSR[T] {
	m, n := c.NRows, c.NCols
	nnzIn := len(c.Row)
	// Counting sort by row.
	counts := make([]Index, m+1)
	for _, r := range c.Row {
		counts[r+1]++
	}
	for i := Index(0); i < m; i++ {
		counts[i+1] += counts[i]
	}
	rowptr := counts // counts is now the row pointer array of the row-bucketed copy
	colTmp := make([]Index, nnzIn)
	valTmp := make([]T, nnzIn)
	fill := make([]Index, m)
	for k := 0; k < nnzIn; k++ {
		r := c.Row[k]
		pos := rowptr[r] + fill[r]
		fill[r]++
		colTmp[pos] = c.Col[k]
		valTmp[pos] = c.Val[k]
	}
	// Sort each row, then fold duplicates.
	for i := Index(0); i < m; i++ {
		sortRowSegment(colTmp[rowptr[i]:rowptr[i+1]], valTmp[rowptr[i]:rowptr[i+1]])
	}
	outPtr := make([]Index, m+1)
	outCol := make([]Index, 0, nnzIn)
	outVal := make([]T, 0, nnzIn)
	for i := Index(0); i < m; i++ {
		lo, hi := rowptr[i], rowptr[i+1]
		for k := lo; k < hi; {
			j := colTmp[k]
			v := valTmp[k]
			k++
			for k < hi && colTmp[k] == j {
				if combine != nil {
					v = combine(v, valTmp[k])
				} else {
					v = valTmp[k]
				}
				k++
			}
			outCol = append(outCol, j)
			outVal = append(outVal, v)
		}
		outPtr[i+1] = Index(len(outCol))
	}
	return &CSR[T]{NRows: m, NCols: n, RowPtr: outPtr, Col: outCol, Val: outVal}
}

// Transpose returns Aᵀ as a new CSR matrix with sorted rows (a counting-sort
// transpose: O(nnz + n)).
func Transpose[T any](a *CSR[T]) *CSR[T] {
	m, n := a.NRows, a.NCols
	nnz := a.NNZ()
	ptr := make([]Index, n+1)
	for _, j := range a.Col {
		ptr[j+1]++
	}
	for j := Index(0); j < n; j++ {
		ptr[j+1] += ptr[j]
	}
	col := make([]Index, nnz)
	val := make([]T, nnz)
	fill := make([]Index, n)
	for i := Index(0); i < m; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			pos := ptr[j] + fill[j]
			fill[j]++
			col[pos] = i
			val[pos] = a.Val[k]
		}
	}
	return &CSR[T]{NRows: n, NCols: m, RowPtr: ptr, Col: col, Val: val}
}

// ToCSC converts a CSR matrix to CSC. Column segments list row indices in
// increasing order. The conversion is the same counting sort as Transpose.
func ToCSC[T any](a *CSR[T]) *CSC[T] {
	t := Transpose(a)
	return &CSC[T]{NRows: a.NRows, NCols: a.NCols, ColPtr: t.RowPtr, Row: t.Col, Val: t.Val}
}

// FromCSC converts a CSC matrix back to CSR with sorted rows.
func FromCSC[T any](a *CSC[T]) *CSR[T] {
	// A CSC of A has the same layout as a CSR of Aᵀ; transpose that.
	tr := &CSR[T]{NRows: a.NCols, NCols: a.NRows, RowPtr: a.ColPtr, Col: a.Row, Val: a.Val}
	return Transpose(tr)
}

// TransposePattern returns the transpose of a pattern.
func TransposePattern(p *Pattern) *Pattern {
	m, n := p.NRows, p.NCols
	nnz := p.NNZ()
	ptr := make([]Index, n+1)
	for _, j := range p.Col {
		ptr[j+1]++
	}
	for j := Index(0); j < n; j++ {
		ptr[j+1] += ptr[j]
	}
	col := make([]Index, nnz)
	fill := make([]Index, n)
	for i := Index(0); i < m; i++ {
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			j := p.Col[k]
			pos := ptr[j] + fill[j]
			fill[j]++
			col[pos] = i
		}
	}
	return &Pattern{NRows: n, NCols: m, RowPtr: ptr, Col: col}
}

// Tril returns the strictly lower triangular part of a (entries with
// column < row), preserving row order. Used by triangle counting, which
// computes sum(L .* (L·L)) after degree relabeling (§8.2).
func Tril[T any](a *CSR[T]) *CSR[T] {
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] < i {
				out.Col = append(out.Col, a.Col[k])
				out.Val = append(out.Val, a.Val[k])
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// Triu returns the strictly upper triangular part of a (column > row).
func Triu[T any](a *CSR[T]) *CSR[T] {
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] > i {
				out.Col = append(out.Col, a.Col[k])
				out.Val = append(out.Val, a.Val[k])
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// Permute returns P·A·Pᵀ for the permutation perm, i.e. the matrix with
// rows and columns relabeled so that old vertex v becomes perm[v]. Rows of
// the result are sorted. perm must be a bijection on [0, NRows); the matrix
// must be square.
func Permute[T any](a *CSR[T], perm []Index) *CSR[T] {
	n := a.NRows
	nnz := a.NNZ()
	ptr := make([]Index, n+1)
	for i := Index(0); i < n; i++ {
		ptr[perm[i]+1] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	for i := Index(0); i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	col := make([]Index, nnz)
	val := make([]T, nnz)
	for i := Index(0); i < n; i++ {
		dst := ptr[perm[i]]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			col[dst] = perm[a.Col[k]]
			val[dst] = a.Val[k]
			dst++
		}
	}
	out := &CSR[T]{NRows: n, NCols: n, RowPtr: ptr, Col: col, Val: val}
	out.SortRows()
	return out
}

// DegreeDescPerm returns a permutation that relabels vertices in
// non-increasing order of degree (row nnz), breaking ties by original id.
// Triangle counting uses this relabeling for optimal performance (§8.2).
func DegreeDescPerm[T any](a *CSR[T]) []Index {
	n := a.NRows
	order := make([]Index, n)
	for i := range order {
		order[i] = Index(i)
	}
	deg := func(i Index) Index { return a.RowPtr[i+1] - a.RowPtr[i] }
	// Stable counting-free sort via sort.Slice (degrees are small ints but
	// simplicity wins here; this is preprocessing, not a kernel).
	sortSliceStable(order, func(x, y Index) bool {
		dx, dy := deg(x), deg(y)
		if dx != dy {
			return dx > dy
		}
		return x < y
	})
	perm := make([]Index, n)
	for newID, oldID := range order {
		perm[oldID] = Index(newID)
	}
	return perm
}

func sortSliceStable(s []Index, less func(a, b Index) bool) {
	// Insertion-based merge sort to avoid importing sort with closures in a
	// hot path; n log n and stable.
	if len(s) < 2 {
		return
	}
	buf := make([]Index, len(s))
	mergeSortIdx(s, buf, less)
}

func mergeSortIdx(s, buf []Index, less func(a, b Index) bool) {
	n := len(s)
	if n <= 16 {
		for i := 1; i < n; i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && less(v, s[j]) {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	mid := n / 2
	mergeSortIdx(s[:mid], buf[:mid], less)
	mergeSortIdx(s[mid:], buf[mid:], less)
	copy(buf, s)
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if less(buf[j], buf[i]) {
			s[k] = buf[j]
			j++
		} else {
			s[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		s[k] = buf[i]
		i++
		k++
	}
	for j < n {
		s[k] = buf[j]
		j++
		k++
	}
}

// MapValues returns a copy of a with every stored value transformed by f.
// The pattern is shared behavior-wise but copied to keep matrices immutable.
func MapValues[T, U any](a *CSR[T], f func(T) U) *CSR[U] {
	out := &CSR[U]{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]Index(nil), a.RowPtr...),
		Col:    append([]Index(nil), a.Col...),
		Val:    make([]U, len(a.Val)),
	}
	for k, v := range a.Val {
		out.Val[k] = f(v)
	}
	return out
}

// Spones returns a copy of a with every stored value replaced by one.
func Spones(a *CSR[float64]) *CSR[float64] {
	return MapValues(a, func(float64) float64 { return 1 })
}

// FromPattern materializes a CSR matrix from a pattern with all values set
// to v.
func FromPattern[T any](p *Pattern, v T) *CSR[T] {
	out := &CSR[T]{
		NRows:  p.NRows,
		NCols:  p.NCols,
		RowPtr: append([]Index(nil), p.RowPtr...),
		Col:    append([]Index(nil), p.Col...),
		Val:    make([]T, len(p.Col)),
	}
	for k := range out.Val {
		out.Val[k] = v
	}
	return out
}

// FilterEntries returns the matrix containing only entries for which
// keep(i, j, v) is true.
func FilterEntries[T any](a *CSR[T], keep func(i, j Index, v T) bool) *CSR[T] {
	out := &CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if keep(i, a.Col[k], a.Val[k]) {
				out.Col = append(out.Col, a.Col[k])
				out.Val = append(out.Val, a.Val[k])
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}
