package matrix

// Bitmap is a fixed-capacity bit set over column indices, the storage behind
// the kernels' bitmap mask representation: one bit per column, packed 64 per
// word, so a membership probe is a shift and a mask instead of a binary
// search over a CSR row. Rows are scattered in with SetAll and removed with
// ClearAll, which touch only the words of the given entries — per-row cost is
// O(nnz(row)), never O(ncols).
//
// A Bitmap holds no row identity of its own; kernels own one per worker and
// are responsible for clearing the bits they set before moving to the next
// row (the same reset discipline the dense accumulators follow), which keeps
// pooled bitmaps reusable without an O(ncols) wipe.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns a cleared bitmap with capacity for nbits bits.
func NewBitmap(nbits int) *Bitmap {
	return &Bitmap{words: make([]uint64, (nbits+63)/64)}
}

// Resize grows the bitmap to hold at least nbits bits. Existing bits must
// already be cleared (grown storage is zero; retained storage is kept as-is).
func (b *Bitmap) Resize(nbits int) {
	want := (nbits + 63) / 64
	if want > len(b.words) {
		b.words = make([]uint64, want)
	}
}

// Bits returns the bit capacity.
func (b *Bitmap) Bits() int { return len(b.words) * 64 }

// Set sets bit j.
func (b *Bitmap) Set(j Index) {
	b.words[uint32(j)>>6] |= 1 << (uint32(j) & 63)
}

// Clear clears bit j.
func (b *Bitmap) Clear(j Index) {
	b.words[uint32(j)>>6] &^= 1 << (uint32(j) & 63)
}

// Contains reports whether bit j is set.
func (b *Bitmap) Contains(j Index) bool {
	return b.words[uint32(j)>>6]&(1<<(uint32(j)&63)) != 0
}

// SetAll sets every bit in cols.
func (b *Bitmap) SetAll(cols []Index) {
	for _, j := range cols {
		b.words[uint32(j)>>6] |= 1 << (uint32(j) & 63)
	}
}

// ClearAll clears every bit in cols.
func (b *Bitmap) ClearAll(cols []Index) {
	for _, j := range cols {
		b.words[uint32(j)>>6] &^= 1 << (uint32(j) & 63)
	}
}

// RowRun reports whether the sorted, duplicate-free index slice cols is a
// contiguous run [lo, hi): the shape the dense-row direct-index mask
// representation exploits, where membership is a range check and the mask
// position of column j is j-lo. The check is O(1) — first entry, last entry,
// length — and is exact only under the sorted/duplicate-free precondition
// every builder in this package guarantees.
func RowRun(cols []Index) (lo, hi Index, ok bool) {
	n := len(cols)
	if n == 0 {
		return 0, 0, false
	}
	lo, hi = cols[0], cols[n-1]+1
	return lo, hi, hi-lo == Index(n)
}
