package matrix

import (
	"math/rand"
	"testing"
)

func TestBitmapSetContainsClear(t *testing.T) {
	b := NewBitmap(1000)
	cols := []Index{0, 1, 63, 64, 65, 511, 999}
	b.SetAll(cols)
	for _, j := range cols {
		if !b.Contains(j) {
			t.Errorf("Contains(%d) = false after SetAll", j)
		}
	}
	for _, j := range []Index{2, 62, 66, 512, 998} {
		if b.Contains(j) {
			t.Errorf("Contains(%d) = true, never set", j)
		}
	}
	b.ClearAll(cols)
	for _, j := range cols {
		if b.Contains(j) {
			t.Errorf("Contains(%d) = true after ClearAll", j)
		}
	}
	for _, w := range b.words {
		if w != 0 {
			t.Fatalf("ClearAll left non-zero word %x", w)
		}
	}
}

func TestBitmapRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	b := NewBitmap(n)
	ref := make(map[Index]bool)
	for iter := 0; iter < 2000; iter++ {
		j := Index(rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			b.Set(j)
			ref[j] = true
		case 1:
			b.Clear(j)
			delete(ref, j)
		default:
			if b.Contains(j) != ref[j] {
				t.Fatalf("Contains(%d) = %v, want %v", j, b.Contains(j), ref[j])
			}
		}
	}
}

func TestBitmapResizePreservesNothingNeeded(t *testing.T) {
	b := NewBitmap(64)
	if got := b.Bits(); got != 64 {
		t.Fatalf("Bits() = %d, want 64", got)
	}
	b.Resize(32) // shrink request keeps capacity
	if got := b.Bits(); got != 64 {
		t.Fatalf("Bits() after shrink request = %d, want 64", got)
	}
	b.Resize(1 << 12)
	if b.Bits() < 1<<12 {
		t.Fatalf("Bits() after grow = %d, want >= %d", b.Bits(), 1<<12)
	}
	b.Set(4000)
	if !b.Contains(4000) {
		t.Fatal("Contains(4000) = false after grow+Set")
	}
}

func TestRowRun(t *testing.T) {
	cases := []struct {
		cols   []Index
		lo, hi Index
		ok     bool
	}{
		{nil, 0, 0, false},
		{[]Index{5}, 5, 6, true},
		{[]Index{3, 4, 5, 6}, 3, 7, true},
		{[]Index{0, 1, 2}, 0, 3, true},
		{[]Index{3, 5, 6}, 0, 0, false},
		{[]Index{0, 2}, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := RowRun(c.cols)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("RowRun(%v) = (%d,%d,%v), want (%d,%d,%v)", c.cols, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
}
