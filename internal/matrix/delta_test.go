package matrix

import (
	"math/rand"
	"testing"
)

// deltaFromCOO builds a small delta overlay over a COO-built base.
func deltaFromCOO(t *testing.T, n Index, rows, cols []Index, vals []float64) *DeltaCSR[float64] {
	t.Helper()
	coo := &COO[float64]{NRows: n, NCols: n, Row: rows, Col: cols, Val: vals}
	base := NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
	d, err := NewDeltaCSR(base)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeltaApplySemantics(t *testing.T) {
	d := deltaFromCOO(t, 4,
		[]Index{0, 0, 1, 2}, []Index{1, 3, 2, 0}, []float64{1, 2, 3, 4})
	if d.NNZ() != 4 {
		t.Fatalf("seed nnz = %d, want 4", d.NNZ())
	}
	// Insert new, overwrite existing, delete existing, delete absent,
	// duplicate insert (last wins) — all in one batch.
	touched, err := d.ApplyBatch([]Update[float64]{
		{Row: 3, Col: 3, Val: 9},                           // new entry
		{Row: 0, Col: 1, Val: 7},                           // overwrite base entry
		{Row: 1, Col: 2, Delete: true},                     // delete base entry
		{Row: 2, Col: 3, Delete: true},                     // delete absent: no-op
		{Row: 3, Col: 0, Val: 1}, {Row: 3, Col: 0, Val: 5}, // dup insert
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []Index{0, 1, 2, 3}; len(touched) != 4 || touched[0] != want[0] || touched[3] != want[3] {
		t.Fatalf("touched = %v, want %v", touched, want)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", d.NNZ())
	}
	cur := d.Current()
	wantRow := func(i Index, cols []Index, vals []float64) {
		t.Helper()
		c, v := cur.Row(i)
		if len(c) != len(cols) {
			t.Fatalf("row %d = %v/%v, want %v/%v", i, c, v, cols, vals)
		}
		for k := range c {
			if c[k] != cols[k] || v[k] != vals[k] {
				t.Fatalf("row %d = %v/%v, want %v/%v", i, c, v, cols, vals)
			}
		}
	}
	wantRow(0, []Index{1, 3}, []float64{7, 2})
	wantRow(1, []Index{}, []float64{})
	wantRow(2, []Index{0}, []float64{4})
	wantRow(3, []Index{0, 3}, []float64{5, 9})

	// Re-inserting a deleted entry brings it back with the new value.
	if _, err := d.ApplyBatch([]Update[float64]{{Row: 1, Col: 2, Val: 8}}); err != nil {
		t.Fatal(err)
	}
	c, v := d.MergedRow(1, nil, nil)
	if len(c) != 1 || c[0] != 2 || v[0] != 8 {
		t.Fatalf("revived row 1 = %v/%v, want [2]/[8]", c, v)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaOutOfRangeRejectsWholeBatch(t *testing.T) {
	d := deltaFromCOO(t, 3, []Index{0}, []Index{1}, []float64{1})
	gen := d.Gen()
	_, err := d.ApplyBatch([]Update[float64]{
		{Row: 1, Col: 1, Val: 2}, // valid
		{Row: 3, Col: 0, Val: 1}, // out of range
	})
	if err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if d.Gen() != gen || d.Pending() != 0 || d.NNZ() != 1 {
		t.Fatalf("rejected batch mutated state: gen %d→%d pending=%d nnz=%d",
			gen, d.Gen(), d.Pending(), d.NNZ())
	}
	if _, err := d.ApplyBatch([]Update[float64]{{Row: 1, Col: -1, Delete: true}}); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestDeltaCompactEquivalence(t *testing.T) {
	d := deltaFromCOO(t, 5,
		[]Index{0, 1, 2, 3, 4}, []Index{1, 2, 3, 4, 0}, []float64{1, 2, 3, 4, 5})
	d.SetMergeThreshold(1e9) // no auto-compact; exercise explicit Compact
	if _, err := d.ApplyBatch([]Update[float64]{
		{Row: 0, Col: 4, Val: 6},
		{Row: 2, Col: 3, Delete: true},
		{Row: 4, Col: 4, Val: 7},
	}); err != nil {
		t.Fatal(err)
	}
	before := d.Current().Clone()
	nnz, gen := d.NNZ(), d.Gen()
	base := d.Compact()
	if d.Pending() != 0 {
		t.Fatalf("pending after Compact = %d", d.Pending())
	}
	if d.Gen() != gen {
		t.Fatal("Compact advanced the generation")
	}
	if d.Base() != base || d.Current() != base {
		t.Fatal("Compact did not install the merged matrix as base")
	}
	if d.NNZ() != nnz || base.NNZ() != nnz {
		t.Fatalf("nnz drifted across Compact: %d vs %d", d.NNZ(), base.NNZ())
	}
	if !Equal(before, base, func(a, b float64) bool { return a == b }) {
		t.Fatal("Compact changed matrix content")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAutoCompactThreshold(t *testing.T) {
	d := deltaFromCOO(t, 8,
		[]Index{0, 1, 2, 3}, []Index{1, 2, 3, 4}, []float64{1, 1, 1, 1})
	d.SetMergeThreshold(0.5) // base nnz 4 → compact once pending > 2
	if _, err := d.ApplyBatch([]Update[float64]{{Row: 5, Col: 5, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (below threshold)", d.Pending())
	}
	if _, err := d.ApplyBatch([]Update[float64]{
		{Row: 6, Col: 6, Val: 1}, {Row: 7, Col: 7, Val: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 (auto-compacted)", d.Pending())
	}
	if d.Base().NNZ() != 7 {
		t.Fatalf("base nnz after auto-compact = %d, want 7", d.Base().NNZ())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaCurrentCachedPerGeneration(t *testing.T) {
	d := deltaFromCOO(t, 3, []Index{0, 1}, []Index{1, 2}, []float64{1, 2})
	base := d.Base()
	if d.Current() != base {
		t.Fatal("Current with no pending logs should return the base")
	}
	if _, err := d.ApplyBatch([]Update[float64]{{Row: 2, Col: 0, Val: 3}}); err != nil {
		t.Fatal(err)
	}
	s1 := d.Current()
	if s1 == base {
		t.Fatal("Current returned the stale base after an update")
	}
	if s2 := d.Current(); s2 != s1 {
		t.Fatal("Current rebuilt the snapshot within one generation")
	}
	if base.NNZ() != 2 {
		t.Fatal("update mutated the base")
	}
}

func TestDeltaMergedRowAgainstReference(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	d := deltaFromCOO(t, n, []Index{0}, []Index{0}, []float64{1})
	d.SetMergeThreshold(1e9)
	ref := map[[2]Index]float64{{0, 0}: 1}
	for step := 0; step < 200; step++ {
		u := Update[float64]{
			Row: Index(rng.Intn(n)), Col: Index(rng.Intn(n)),
			Val: float64(step), Delete: rng.Intn(3) == 0,
		}
		if _, err := d.ApplyBatch([]Update[float64]{u}); err != nil {
			t.Fatal(err)
		}
		if u.Delete {
			delete(ref, [2]Index{u.Row, u.Col})
		} else {
			ref[[2]Index{u.Row, u.Col}] = u.Val
		}
		if rng.Intn(40) == 0 {
			d.Compact()
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != len(ref) {
		t.Fatalf("nnz = %d, reference has %d", d.NNZ(), len(ref))
	}
	got := 0
	for i := Index(0); i < n; i++ {
		cols, vals := d.MergedRow(i, nil, nil)
		for k, j := range cols {
			want, ok := ref[[2]Index{i, j}]
			if !ok || vals[k] != want {
				t.Fatalf("entry (%d,%d)=%v, reference %v (present=%v)", i, j, vals[k], want, ok)
			}
			got++
		}
	}
	if got != len(ref) {
		t.Fatalf("merged rows yield %d entries, reference has %d", got, len(ref))
	}
}

func TestExtractAndSpliceRows(t *testing.T) {
	coo := &COO[float64]{NRows: 5, NCols: 4,
		Row: []Index{0, 0, 1, 3, 4}, Col: []Index{0, 2, 1, 3, 0},
		Val: []float64{1, 2, 3, 4, 5}}
	a := NewCSRFromCOO(coo, func(x, y float64) float64 { return x + y })
	rows := []Index{0, 3}
	sub := ExtractRows(a, rows)
	if sub.NRows != 2 || sub.NNZ() != 3 {
		t.Fatalf("extracted %dx nnz=%d, want 2 rows nnz=3", sub.NRows, sub.NNZ())
	}
	if p := ExtractRowsPattern(a.Pattern(), rows); p.NNZ() != 3 || p.Validate() != nil {
		t.Fatalf("pattern extraction inconsistent: nnz=%d", p.NNZ())
	}
	// Replace the extracted rows with new content and splice back.
	repl := NewCSRFromCOO(&COO[float64]{NRows: 2, NCols: 4,
		Row: []Index{0, 1, 1}, Col: []Index{3, 0, 2}, Val: []float64{9, 8, 7}},
		func(x, y float64) float64 { return x + y })
	out := SpliceRows(a, rows, repl)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	want := NewCSRFromCOO(&COO[float64]{NRows: 5, NCols: 4,
		Row: []Index{0, 1, 3, 3, 4}, Col: []Index{3, 1, 0, 2, 0},
		Val: []float64{9, 3, 8, 7, 5}},
		func(x, y float64) float64 { return x + y })
	if !Equal(out, want, func(x, y float64) bool { return x == y }) {
		t.Fatal("splice produced wrong matrix")
	}
	// Inputs untouched.
	if a.NNZ() != 5 || repl.NNZ() != 3 {
		t.Fatal("splice mutated an input")
	}
}

func TestNewDeltaCSRRejectsUnsortedBase(t *testing.T) {
	base := &CSR[float64]{NRows: 1, NCols: 3,
		RowPtr: []Index{0, 2}, Col: []Index{2, 0}, Val: []float64{1, 2}}
	if _, err := NewDeltaCSR(base); err == nil {
		t.Fatal("unsorted base accepted")
	}
	base.SortRows()
	if _, err := NewDeltaCSR(base); err != nil {
		t.Fatal(err)
	}
}
