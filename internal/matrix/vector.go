package matrix

// Sparse vectors. The paper develops its algorithms as Masked SpGEVM —
// sparse row-vector times sparse matrix, v = m .* (uᵀB) — and lifts them to
// SpGEMM row by row (§5). This file provides the standalone vector type so
// the SpGEVM primitive is usable directly (frontier-based traversals,
// direction-optimized BFS).

// SparseVec is a sparse vector of logical length N with sorted,
// duplicate-free indices.
type SparseVec[T any] struct {
	N   Index
	Idx []Index
	Val []T
}

// NNZ returns the number of stored entries.
func (v *SparseVec[T]) NNZ() int { return len(v.Idx) }

// Clone returns a deep copy.
func (v *SparseVec[T]) Clone() *SparseVec[T] {
	return &SparseVec[T]{
		N:   v.N,
		Idx: append([]Index(nil), v.Idx...),
		Val: append([]T(nil), v.Val...),
	}
}

// NewSparseVec builds a sparse vector from (possibly unsorted, possibly
// duplicated) index/value pairs, combining duplicates with combine (nil:
// last wins).
func NewSparseVec[T any](n Index, idx []Index, val []T, combine func(T, T) T) *SparseVec[T] {
	cols := append([]Index(nil), idx...)
	vals := append([]T(nil), val...)
	sortRowSegment(cols, vals)
	out := &SparseVec[T]{N: n}
	for k := 0; k < len(cols); {
		j := cols[k]
		v := vals[k]
		k++
		for k < len(cols) && cols[k] == j {
			if combine != nil {
				v = combine(v, vals[k])
			} else {
				v = vals[k]
			}
			k++
		}
		out.Idx = append(out.Idx, j)
		out.Val = append(out.Val, v)
	}
	return out
}

// AsRowMatrix views v as a 1-by-N CSR matrix sharing storage (no copy).
func (v *SparseVec[T]) AsRowMatrix() *CSR[T] {
	return &CSR[T]{
		NRows:  1,
		NCols:  v.N,
		RowPtr: []Index{0, Index(len(v.Idx))},
		Col:    v.Idx,
		Val:    v.Val,
	}
}

// RowToVec extracts row i of a as a sparse vector sharing storage.
func RowToVec[T any](a *CSR[T], i Index) *SparseVec[T] {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return &SparseVec[T]{N: a.NCols, Idx: a.Col[lo:hi], Val: a.Val[lo:hi]}
}

// VecPattern returns the index set of v as a 1-row Pattern view.
func (v *SparseVec[T]) VecPattern() *Pattern {
	return &Pattern{
		NRows:  1,
		NCols:  v.N,
		RowPtr: []Index{0, Index(len(v.Idx))},
		Col:    v.Idx,
	}
}

// EWiseAddVec merges two sparse vectors, combining values where both have
// entries.
func EWiseAddVec[T any](a, b *SparseVec[T], combine func(T, T) T) *SparseVec[T] {
	if a.N != b.N {
		panic("matrix: EWiseAddVec dimension mismatch")
	}
	out := &SparseVec[T]{N: a.N}
	ai, bi := 0, 0
	for ai < len(a.Idx) && bi < len(b.Idx) {
		switch {
		case a.Idx[ai] == b.Idx[bi]:
			out.Idx = append(out.Idx, a.Idx[ai])
			out.Val = append(out.Val, combine(a.Val[ai], b.Val[bi]))
			ai++
			bi++
		case a.Idx[ai] < b.Idx[bi]:
			out.Idx = append(out.Idx, a.Idx[ai])
			out.Val = append(out.Val, a.Val[ai])
			ai++
		default:
			out.Idx = append(out.Idx, b.Idx[bi])
			out.Val = append(out.Val, b.Val[bi])
			bi++
		}
	}
	out.Idx = append(out.Idx, a.Idx[ai:]...)
	out.Val = append(out.Val, a.Val[ai:]...)
	out.Idx = append(out.Idx, b.Idx[bi:]...)
	out.Val = append(out.Val, b.Val[bi:]...)
	return out
}

// VecEqual reports element-wise equality of two sparse vectors.
func VecEqual[T any](a, b *SparseVec[T], eq func(T, T) bool) bool {
	if a.N != b.N || len(a.Idx) != len(b.Idx) {
		return false
	}
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}
