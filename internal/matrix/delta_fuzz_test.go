package matrix

import (
	"testing"
)

// FuzzDeltaApply drives a DeltaCSR with an arbitrary interleaving of
// inserts, deletes, compactions and threshold changes — including
// duplicate edges, deletes of absent edges and out-of-range indices — and
// asserts the overlay never corrupts the CSR invariants: sorted
// duplicate-free rows, monotone row pointers, and exact nnz/pending
// accounting (DeltaCSR.Validate is the oracle). A shadow map replays the
// accepted updates to cross-check the merged content.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80, 9, 9, 4})
	f.Add([]byte{2, 0xff, 0x03, 1, 1, 1, 1, 1, 1, 1, 1, 3})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 13 // small dims so random indices collide and go out of range
		base := NewCSRFromCOO(&COO[float64]{NRows: n, NCols: n,
			Row: []Index{0, 3, 7}, Col: []Index{2, 3, 11}, Val: []float64{1, 2, 3}},
			func(a, b float64) float64 { return a + b })
		d, err := NewDeltaCSR(base)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[[2]Index]float64{{0, 2}: 1, {3, 3}: 2, {7, 11}: 3}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			switch op := next() % 5; op {
			case 0, 1: // batch of 1-3 updates (op 0 inserts, op 1 mixed)
				k := int(next()%3) + 1
				batch := make([]Update[float64], 0, k)
				for range k {
					// Raw bytes minus a small bias so indices can go negative
					// and past n, exercising the rejection path.
					row := Index(next()) - 2
					col := Index(next()) - 2
					batch = append(batch, Update[float64]{
						Row: row, Col: col,
						Val:    float64(next()),
						Delete: op == 1 && next()%2 == 0,
					})
				}
				if _, err := d.ApplyBatch(batch); err == nil {
					for _, u := range batch {
						if u.Delete {
							delete(ref, [2]Index{u.Row, u.Col})
						} else {
							ref[[2]Index{u.Row, u.Col}] = u.Val
						}
					}
				}
			case 2:
				d.Compact()
			case 3:
				d.SetMergeThreshold(float64(next()) / 16)
			case 4:
				_ = d.Current()
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("invariants corrupted: %v", err)
			}
		}
		cur := d.Current()
		if cur.NNZ() != len(ref) {
			t.Fatalf("nnz %d, shadow map has %d", cur.NNZ(), len(ref))
		}
		for i := Index(0); i < n; i++ {
			cols, vals := cur.Row(i)
			for k, j := range cols {
				if want, ok := ref[[2]Index{i, j}]; !ok || vals[k] != want {
					t.Fatalf("entry (%d,%d)=%v, shadow %v (present=%v)", i, j, vals[k], want, ok)
				}
			}
		}
	})
}
