package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestThreadsFnDynamicBudget: a ThreadsFn whose value changes between
// stages (the serving arbiter's top-up/steal mechanism) is consulted per
// stage and never changes results.
func TestThreadsFnDynamicBudget(t *testing.T) {
	g := grgen.RMAT(8, 8, 41)
	mask := matrix.Tril(g).Pattern()
	sr := semiring.Arithmetic()
	want, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: TwoPhase}, mask, g, g, sr, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	dyn := func() int {
		// Grow the budget as the call progresses: stage 1 runs on one
		// worker, later stages on up to four.
		n := int(calls.Add(1))
		if n > 4 {
			n = 4
		}
		return n
	}
	for _, v := range []Variant{{MSA, OnePhase}, {MSA, TwoPhase}, {Hash, TwoPhase}} {
		calls.Store(0)
		got, err := MaskedSpGEMM(v, mask, g, g, sr, Options{Threads: 8, ThreadsFn: dyn})
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if calls.Load() < 2 {
			t.Fatalf("%s: ThreadsFn consulted %d times, want one read per parallel stage", v.Name(), calls.Load())
		}
		if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
			t.Fatalf("%s: dynamic thread budget changed results", v.Name())
		}
	}
}

// TestWorkersResolution: ThreadsFn wins over Threads; nil falls back.
func TestWorkersResolution(t *testing.T) {
	if w := (Options{Threads: 3}).Workers(); w != 3 {
		t.Fatalf("static Workers() = %d, want 3", w)
	}
	if w := (Options{Threads: 3, ThreadsFn: func() int { return 7 }}).Workers(); w != 7 {
		t.Fatalf("dynamic Workers() = %d, want 7", w)
	}
}
