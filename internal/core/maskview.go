package core

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// MaskRep selects how kernels answer the per-row membership question "is
// column j in the mask row?" (§5.2, §5.4 exploit mask structure per row; the
// representation decides the probe's cost):
//
//	RepCSR     probe the sorted CSR row (merge or binary search) — the
//	           seed behavior, best for sparse mask rows
//	RepBitmap  scatter the row into a per-worker bitmap (one bit per
//	           column, pooled words), then probe in O(1) — pays when the
//	           same row is probed many times (dense masks, multi-entry A
//	           rows) where repeated merges or binary searches dominate
//	RepDense   direct-index contiguous rows: a row that is a run [lo,hi)
//	           needs no scatter at all — membership is a range check and
//	           the mask position of j is j-lo; non-run rows fall back to
//	           the CSR probe row by row
//
// RepAuto defers the choice: the planner picks per row block from its
// density statistics, and the fixed-variant entry points resolve one global
// representation from aggregate mask shape. All representations produce
// bit-identical output — values accumulate in the same floating-point order
// regardless of how membership is answered — so selection is purely a
// performance decision.
//
// Complement is native to every representation: a complemented probe is
// `!contains(j)`, so no kernel materializes an explicit complement pattern.
type MaskRep uint8

// Mask representations.
const (
	RepAuto MaskRep = iota
	RepCSR
	RepBitmap
	RepDense
)

// String returns the representation's short name.
func (r MaskRep) String() string {
	switch r {
	case RepAuto:
		return "auto"
	case RepCSR:
		return "csr"
	case RepBitmap:
		return "bitmap"
	case RepDense:
		return "dense"
	}
	return fmt.Sprintf("MaskRep(%d)", uint8(r))
}

// MaskRepByName resolves a representation name ("auto", "csr", "bitmap",
// "dense").
func MaskRepByName(name string) (MaskRep, error) {
	for _, r := range []MaskRep{RepAuto, RepCSR, RepBitmap, RepDense} {
		if r.String() == name {
			return r, nil
		}
	}
	return RepAuto, fmt.Errorf("core: unknown mask representation %q", name)
}

// Representation-selection thresholds. The bitmap's O(nnz(mask row)) scatter
// and clear only repay themselves when the CSR probe would be repeated or
// deep; the dense direct-index path needs rows that actually are runs. The
// numbers are calibrated against the MaskRepStudy benchmark
// (internal/bench): MCA's per-A-entry mask merge loses ~2.6× to the bitmap
// on flat-degree dense masks but the bitmap *loses* on skewed masks with
// small average rows, and Heap's merge never loses to the bitmap in
// practice (the blind-push probe forfeits the merge's early exits), so Heap
// is excluded from automatic bitmap selection entirely.
const (
	// bitmapMinMaskRow is the minimum average mask-row size for a bitmap
	// hint or the MCA bitmap: below it, merges are short and the scatter
	// overhead wins nothing.
	bitmapMinMaskRow = 32
	// bitmapMinARow is the minimum average A-row size for MCA, whose CSR
	// probe is a per-A-entry merge of the whole mask row: the bitmap's
	// advantage grows with the number of merges it replaces.
	bitmapMinARow = 4
	// hashBitmapMinMaskRow is the Hash auto threshold: the CSR path
	// pre-inserts every mask entry into a 4×nnz(mask row) table, so the
	// bitmap pays once rows are long enough that the table build dominates.
	hashBitmapMinMaskRow = 64
	// denseRunNum/denseRunDen: the fraction of non-empty mask rows that must
	// be contiguous runs before the dense direct-index representation is
	// selected (15/16; stray non-run rows fall back per row).
	denseRunNum, denseRunDen = 15, 16
)

// SupportedMaskRep demotes a representation the algorithm cannot exploit to
// the one it actually runs:
//
//   - MSA's dense state array is already a direct-index structure, so a
//     bitmap adds no information; only the dense-run representation (which
//     skips the mask scatter entirely) changes its execution.
//   - Inner is driven *by* the mask in normal mode — it iterates mask
//     entries rather than probing them — so representations only matter to
//     its complemented form.
//
// Keeping the demotion here (rather than erroring) lets callers pin a
// representation globally and have each block's kernel take what it can use.
func SupportedMaskRep(alg Algorithm, rep MaskRep, complement bool) MaskRep {
	switch alg {
	case MSA:
		if rep == RepBitmap {
			return RepCSR
		}
	case Inner:
		if !complement {
			return RepCSR
		}
	}
	return rep
}

// AutoMaskRep picks the representation for one row range from its density
// statistics: rows and maskNNZ/aNNZ are the range's row count and entry
// counts, runRows/nonEmptyRows the number of mask rows that are contiguous
// runs and non-empty (pass 0/0 when row sortedness is unknown — the run
// check is only exact on sorted rows). The planner calls this per block;
// the fixed-variant entry points call it once for the whole row space.
func AutoMaskRep(alg Algorithm, complement bool, rows, maskNNZ, aNNZ, runRows, nonEmptyRows int64) MaskRep {
	return AutoMaskRepRatio(alg, complement, rows, maskNNZ, aNNZ, runRows, nonEmptyRows, 1, 1)
}

// AutoMaskRepRatio is AutoMaskRep with calibrated representation cost
// ratios scaling the density thresholds: bitmapRatio is the measured
// bitmap-vs-CSR probe cost ratio (above 1 the bitmap is relatively
// expensive on this host, so it needs proportionally denser mask rows
// before it pays) and denseRatio the dense-direct-index-vs-CSR ratio,
// scaling the dense-run path's minimum average row the same way. Ratios of
// 1 (or anything non-positive) reproduce the hand-tuned thresholds exactly;
// the planner passes its model's fitted ratios.
func AutoMaskRepRatio(alg Algorithm, complement bool, rows, maskNNZ, aNNZ, runRows, nonEmptyRows int64, bitmapRatio, denseRatio float64) MaskRep {
	if rows <= 0 || maskNNZ == 0 {
		return RepCSR
	}
	if !(bitmapRatio > 0) {
		bitmapRatio = 1
	}
	if !(denseRatio > 0) {
		denseRatio = 1
	}
	avgM := float64(maskNNZ / rows)
	if nonEmptyRows > 0 && runRows*denseRunDen >= nonEmptyRows*denseRunNum && avgM >= 4*denseRatio {
		return SupportedMaskRep(alg, RepDense, complement)
	}
	avgA := aNNZ / rows
	switch alg {
	case Hash:
		if avgM >= hashBitmapMinMaskRow*bitmapRatio {
			return RepBitmap
		}
	case MCA:
		if avgM >= bitmapMinMaskRow*bitmapRatio && avgA >= bitmapMinARow {
			return RepBitmap
		}
	case Inner:
		if complement && avgM >= hashBitmapMinMaskRow*bitmapRatio {
			return RepBitmap
		}
	}
	// Heap/HeapDot deliberately never auto-select the bitmap: measurements
	// show the merge's frontier skipping beats O(1) probes with blind
	// pushes. An explicit pin still runs it.
	return RepCSR
}

// HintMaskRep suggests a representation from aggregate mask shape alone,
// for applications that know their mask's density without a scan (k-truss
// masks with the graph itself; multi-source BFS masks with the visited set).
// The hint is coarse — no per-block statistics, no algorithm identity — so
// it only proposes the bitmap for clearly dense masks and otherwise defers
// to RepAuto; kernels that cannot exploit the proposal demote it.
func HintMaskRep(maskNNZ, rows int64) MaskRep {
	if rows > 0 && maskNNZ/rows >= bitmapMinMaskRow {
		return RepBitmap
	}
	return RepAuto
}

// AdoptMaskRepHint gates an application's representation hint by algorithm
// family: a bitmap hint is adopted only where measurements show it is
// broadly safe — Hash (sheds its mask-preinserted table) and complemented
// Inner. For the merge-based families the hint falls back to RepAuto so the
// per-call statistics gating in AutoMaskRep decides instead (the coarse
// hint cannot see the skew that makes the bitmap lose there).
func AdoptMaskRepHint(alg Algorithm, hint MaskRep, complement bool) MaskRep {
	if hint != RepBitmap {
		return hint
	}
	switch alg {
	case Hash:
		return RepBitmap
	case Inner:
		if complement {
			return RepBitmap
		}
	}
	return RepAuto
}

// resolveRep turns a possibly-RepAuto representation into a concrete one for
// the row range [lo, hi), consulting the mask and A row pointers for local
// entry counts. Run detection is skipped (runRows=0) because sortedness is
// not established here; the planner, which verifies sortedness, passes
// explicit per-block run counts instead via ExecBlock.Rep.
//
// Sortedness guards. MSA and Hash legally accept unsorted mask rows (the
// other kernels already carry a sorted-rows precondition), but two of their
// representation paths silently depend on sortedness: RepDense's O(1)
// contiguity check plus its sorted-row fallback probe would corrupt output,
// and the Hash bitmap path's sort-based gather would emit rows in a
// different order than the CSR path's mask-order gather, breaking the
// bit-identity contract. resolveRep therefore verifies the range with an
// O(nnz) Pattern.RowsSortedIn scan before honoring those representations
// and demotes to RepCSR otherwise. Planner-emitted block reps skip this —
// Analyze already verified sortedness for the whole plan (see
// MaskedSpGEMMBlocked).
func resolveRep[T any](rep MaskRep, alg Algorithm, m *matrix.Pattern, a *matrix.CSR[T], lo, hi Index, complement bool) MaskRep {
	if rep != RepAuto {
		rep = SupportedMaskRep(alg, rep, complement)
		if needsSortedMask(alg, rep) && !m.RowsSortedIn(lo, hi) {
			rep = RepCSR
		}
		return rep
	}
	rows := int64(hi - lo)
	var maskNNZ, aNNZ int64
	if int(hi) < len(m.RowPtr) {
		maskNNZ = int64(m.RowPtr[hi] - m.RowPtr[lo])
	}
	if int(hi) < len(a.RowPtr) {
		aNNZ = int64(a.RowPtr[hi] - a.RowPtr[lo])
	}
	rep = SupportedMaskRep(alg, AutoMaskRep(alg, complement, rows, maskNNZ, aNNZ, 0, 0), complement)
	if needsSortedMask(alg, rep) && !m.RowsSortedIn(lo, hi) {
		rep = RepCSR
	}
	return rep
}

// needsSortedMask reports whether the (algorithm, representation) pair adds
// a mask-sortedness requirement beyond the algorithm's own preconditions —
// exactly the MSA/Hash cases resolveRep must verify before honoring.
func needsSortedMask(alg Algorithm, rep MaskRep) bool {
	switch alg {
	case MSA:
		return rep == RepDense
	case Hash:
		return rep == RepDense || rep == RepBitmap
	}
	return false
}

// maskProbe is the per-worker MaskView: it materializes one mask row at a
// time in the selected representation and answers membership probes against
// it. Kernels bracket each row with begin/end; end restores the probe's
// scratch (bitmap bits) so pooled storage stays clean.
type maskProbe struct {
	m   *matrix.Pattern
	rep MaskRep // RepCSR, RepBitmap or RepDense (never RepAuto)
	bm  *matrix.Bitmap

	row    []Index // current mask row
	lo, hi Index   // dense run bounds, valid when runOK
	runOK  bool
}

// newMaskProbe builds a probe for the given resolved representation; bitmap
// word storage comes from the workspace arena when ws is non-nil.
func newMaskProbe(m *matrix.Pattern, rep MaskRep, ws *Workspaces) *maskProbe {
	p := &maskProbe{m: m, rep: rep}
	if rep == RepBitmap {
		p.bm = wsGetBitmap(ws, int(m.NCols))
	}
	return p
}

// recycle returns the probe's pooled storage to the arena.
func (p *maskProbe) recycle(ws *Workspaces) {
	if p.bm != nil {
		wsPutBitmap(ws, p.bm)
		p.bm = nil
	}
}

// begin loads mask row i into the probe's representation.
func (p *maskProbe) begin(i Index) {
	p.row = p.m.Row(i)
	switch p.rep {
	case RepBitmap:
		p.bm.SetAll(p.row)
	case RepDense:
		p.lo, p.hi, p.runOK = matrix.RowRun(p.row)
	}
}

// end releases the row loaded by begin (clears scattered bitmap bits).
func (p *maskProbe) end() {
	if p.rep == RepBitmap {
		p.bm.ClearAll(p.row)
	}
}

// contains reports whether column j is present in the current row.
func (p *maskProbe) contains(j Index) bool {
	switch p.rep {
	case RepBitmap:
		return p.bm.Contains(j)
	case RepDense:
		if p.runOK {
			return j >= p.lo && j < p.hi
		}
	}
	return containsSorted(p.row, j)
}

// pos returns the position of column j within the current row; j must be
// present (contains(j) == true). Dense runs answer with arithmetic, the
// other representations with a binary search of the sorted row.
func (p *maskProbe) pos(j Index) Index {
	if p.rep == RepDense && p.runOK {
		return j - p.lo
	}
	return Index(sort.Search(len(p.row), func(k int) bool { return p.row[k] >= j }))
}

// containsSorted is the CSR probe: binary search over a sorted row, with a
// short linear scan for the tiny rows where a search setup costs more than
// the comparisons it saves.
func containsSorted(row []Index, j Index) bool {
	if len(row) <= 8 {
		for _, c := range row {
			if c >= j {
				return c == j
			}
		}
		return false
	}
	k := sort.Search(len(row), func(k int) bool { return row[k] >= j })
	return k < len(row) && row[k] == j
}
