package core

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Reference computes C = M .* (A·B) (or the complement form) with a simple
// sequential map-based Gustavson multiply followed by mask filtering. It is
// the oracle the kernel tests validate against and intentionally shares no
// code with the optimized kernels. Output rows are sorted.
func Reference[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], complement bool) *matrix.CSR[T] {
	out := &matrix.CSR[T]{NRows: m.NRows, NCols: m.NCols, RowPtr: make([]Index, m.NRows+1)}
	row := make(map[Index]T)
	for i := Index(0); i < m.NRows; i++ {
		clear(row)
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			k := a.Col[kk]
			av := a.Val[kk]
			for p := b.RowPtr[k]; p < b.RowPtr[k+1]; p++ {
				j := b.Col[p]
				v := sr.Mul(av, b.Val[p])
				if old, ok := row[j]; ok {
					row[j] = sr.Add(old, v)
				} else {
					row[j] = v
				}
			}
		}
		// Filter by mask row.
		inMask := make(map[Index]bool, m.RowNNZ(i))
		for _, j := range m.Row(i) {
			inMask[j] = true
		}
		keep := make([]Index, 0, len(row))
		for j := range row {
			if inMask[j] != complement {
				keep = append(keep, j)
			}
		}
		sortIndices(keep)
		for _, j := range keep {
			out.Col = append(out.Col, j)
			out.Val = append(out.Val, row[j])
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}
