package core

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Incremental (delta) execution — the operand view the blocked drivers
// read when operands change under an edge stream. The overlays
// (matrix.DeltaCSR) never mutate their base; each refresh materializes the
// current operands as plain sorted CSR snapshots, derives the dirty-row
// frontier, extracts the frontier rows of the mask and A into small
// sub-operands, runs the ordinary masked product on them, and splices the
// recomputed rows over the previous output. Because every kernel in this
// repository produces bit-identical rows for identical (mask row, A row,
// B) inputs, the spliced output is bit-identical to a from-scratch multiply
// on the compacted operands — the property delta_equiv_test.go asserts.

// DeltaOperand selects which operand of a DeltaProduct an update batch
// targets.
type DeltaOperand int

const (
	// DeltaAll applies a batch to every distinct overlay of the product —
	// the graph-stream mode, where M, A and B are views of one evolving
	// graph.
	DeltaAll DeltaOperand = iota
	// DeltaM targets the mask overlay only.
	DeltaM
	// DeltaA targets the A overlay only.
	DeltaA
	// DeltaB targets the B overlay only.
	DeltaB
)

// DeltaProduct tracks one incrementally maintained masked product
// C = M .* (A·B) over delta-CSR overlays. M, A and B may alias the same
// overlay (the graph workloads use one graph for all three). All content
// mutations must flow through Apply; mutating an overlay behind the
// product's back desynchronizes the dirty-row tracking. Not safe for
// concurrent use; callers (masked.Session) serialize.
type DeltaProduct[T any] struct {
	m, a, b *matrix.DeltaCSR[T]
	// c is the last full output (nil before the first Refresh).
	c *matrix.CSR[T]
	// dirtyAM collects rows of M or A whose content changed since the last
	// refresh; dirtyB collects changed rows of B (columns of A).
	dirtyAM map[Index]struct{}
	dirtyB  map[Index]struct{}
}

// NewDeltaProduct tracks C = M .* (A·B) over the given overlays (which may
// alias each other). The first Refresh computes the full product.
func NewDeltaProduct[T any](m, a, b *matrix.DeltaCSR[T]) *DeltaProduct[T] {
	return &DeltaProduct[T]{
		m: m, a: a, b: b,
		dirtyAM: make(map[Index]struct{}),
		dirtyB:  make(map[Index]struct{}),
	}
}

// NewDeltaProductSeeded is NewDeltaProduct with a known-valid output for
// the overlays' current content, so the first Refresh is incremental
// instead of from scratch. The incremental k-truss peel seeds its
// speculative per-batch product with the maintained support matrix this
// way. The caller owns the claim that c equals the product of the current
// operands.
func NewDeltaProductSeeded[T any](m, a, b *matrix.DeltaCSR[T], c *matrix.CSR[T]) *DeltaProduct[T] {
	p := NewDeltaProduct(m, a, b)
	p.c = c
	return p
}

// Overlays returns the product's distinct overlays (deduplicated by
// identity, in M, A, B order).
func (p *DeltaProduct[T]) Overlays() []*matrix.DeltaCSR[T] {
	out := []*matrix.DeltaCSR[T]{p.m}
	if p.a != p.m {
		out = append(out, p.a)
	}
	if p.b != p.m && p.b != p.a {
		out = append(out, p.b)
	}
	return out
}

// targets resolves which distinct overlays an operand selector names.
func (p *DeltaProduct[T]) targets(op DeltaOperand) ([]*matrix.DeltaCSR[T], error) {
	switch op {
	case DeltaAll:
		return p.Overlays(), nil
	case DeltaM:
		return []*matrix.DeltaCSR[T]{p.m}, nil
	case DeltaA:
		return []*matrix.DeltaCSR[T]{p.a}, nil
	case DeltaB:
		return []*matrix.DeltaCSR[T]{p.b}, nil
	}
	return nil, fmt.Errorf("core: unknown delta operand %d", op)
}

// Apply applies one batch of edge updates to the selected operand's
// overlay(s) and accumulates the touched rows into the dirty frontier.
// The batch is validated against every target overlay first, so a
// rejected batch (out-of-range index) mutates nothing. Aliased overlays
// receive the batch once but dirty both roles they play.
func (p *DeltaProduct[T]) Apply(op DeltaOperand, batch []matrix.Update[T]) error {
	targets, err := p.targets(op)
	if err != nil {
		return err
	}
	for _, d := range targets {
		nr, nc := d.Dims()
		for k, u := range batch {
			if u.Row < 0 || u.Row >= nr || u.Col < 0 || u.Col >= nc {
				return fmt.Errorf("core: delta update %d: index (%d, %d) out of range %dx%d",
					k, u.Row, u.Col, nr, nc)
			}
		}
	}
	for _, d := range targets {
		touched, err := d.ApplyBatch(batch)
		if err != nil {
			// Unreachable after the pre-validation above; surface it anyway.
			return err
		}
		for _, i := range touched {
			if d == p.m || d == p.a {
				p.dirtyAM[i] = struct{}{}
			}
			if d == p.b {
				p.dirtyB[i] = struct{}{}
			}
		}
	}
	return nil
}

// Compact folds the pending logs of every overlay into fresh bases. The
// matrix content — and therefore the next Refresh's output — is unchanged;
// only storage identity moves.
func (p *DeltaProduct[T]) Compact() {
	for _, d := range p.Overlays() {
		d.Compact()
	}
}

// Output returns the last refreshed output (nil before the first Refresh).
// Callers must not mutate it.
func (p *DeltaProduct[T]) Output() *matrix.CSR[T] { return p.c }

// Dirty reports the number of accumulated dirty rows (M/A rows plus B
// rows) awaiting the next Refresh.
func (p *DeltaProduct[T]) Dirty() int { return len(p.dirtyAM) + len(p.dirtyB) }

// DirtyFrontier derives the output rows an update round must recompute:
// the changed rows of M and A (dirtyAM), plus every row of the current A
// whose columns hit a changed row of B. The scan is O(nnz(A)) with
// early exit per row; rows already dirty are not rescanned.
func DirtyFrontier(a *matrix.Pattern, dirtyAM, dirtyB map[Index]struct{}) []Index {
	frontier := make([]Index, 0, len(dirtyAM))
	for i := range dirtyAM {
		frontier = append(frontier, i)
	}
	if len(dirtyB) > 0 {
		hit := make([]bool, a.NCols)
		for k := range dirtyB {
			hit[k] = true
		}
		for i := Index(0); i < a.NRows; i++ {
			if _, dirty := dirtyAM[i]; dirty {
				continue
			}
			for _, j := range a.Row(i) {
				if hit[j] {
					frontier = append(frontier, i)
					break
				}
			}
		}
	}
	sort.Slice(frontier, func(x, y int) bool { return frontier[x] < frontier[y] })
	return frontier
}

// DeltaMult is the multiply callback Refresh recomputes frontier rows
// with: it computes msub .* (asub · b) where msub and asub hold only the
// frontier rows (b is the full current B). masked.Session supplies its
// planner path; the apps layer supplies an Engine.
type DeltaMult[T any] func(msub *matrix.Pattern, asub, b *matrix.CSR[T]) (*matrix.CSR[T], error)

// Refresh brings the output up to date with the overlays' current content:
// the first call computes the full product, later calls recompute only the
// dirty-row frontier and splice it into the previous output. It returns
// the full current output and the recomputed rows (every row on the first
// call, empty when already clean) — the recomputed-row list is what lets
// iterative consumers like the k-truss peel bound their own scans. On
// error the dirty frontier is retained, so a failed or panicked refresh
// can be retried.
func (p *DeltaProduct[T]) Refresh(mult DeltaMult[T]) (*matrix.CSR[T], []Index, error) {
	curM := p.m.Current().Pattern()
	curA, curB := p.a.Current(), p.b.Current()
	if p.c == nil {
		c, err := mult(curM, curA, curB)
		if err != nil {
			return nil, nil, err
		}
		p.c = c
		p.resetDirty()
		all := make([]Index, curM.NRows)
		for i := range all {
			all[i] = Index(i)
		}
		return c, all, nil
	}
	if len(p.dirtyAM) == 0 && len(p.dirtyB) == 0 {
		return p.c, nil, nil
	}
	frontier := DirtyFrontier(curA.Pattern(), p.dirtyAM, p.dirtyB)
	if len(frontier) == 0 {
		p.resetDirty()
		return p.c, nil, nil
	}
	msub := matrix.ExtractRowsPattern(curM, frontier)
	asub := matrix.ExtractRows(curA, frontier)
	csub, err := mult(msub, asub, curB)
	if err != nil {
		return nil, nil, err
	}
	p.c = matrix.SpliceRows(p.c, frontier, csub)
	p.resetDirty()
	return p.c, frontier, nil
}

func (p *DeltaProduct[T]) resetDirty() {
	clear(p.dirtyAM)
	clear(p.dirtyB)
}
