package core

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Sched selects how the phase drivers distribute rows across workers.
type Sched uint8

const (
	// SchedAuto (the zero value) schedules cost-balanced spans when a row
	// cost profile is available and marked skewed, and equal-row dynamic
	// chunks otherwise — the planner's analysis sweep supplies the profile
	// and the skew verdict for free.
	SchedAuto Sched = iota
	// SchedEqualRow always uses equal-row dynamic chunks (the pre-cost
	// scheduler), even when a cost profile exists. The baseline of the
	// schedule bench study.
	SchedEqualRow
	// SchedCost uses cost-balanced spans whenever a cost profile is
	// available, regardless of the skew verdict.
	SchedCost
)

// String returns the CLI name of the policy.
func (s Sched) String() string {
	switch s {
	case SchedEqualRow:
		return "equal"
	case SchedCost:
		return "cost"
	}
	return "auto"
}

// SchedByName resolves a scheduling policy name ("auto", "equal", "cost").
func SchedByName(name string) (Sched, error) {
	switch name {
	case "auto", "":
		return SchedAuto, nil
	case "equal", "equal-row":
		return SchedEqualRow, nil
	case "cost":
		return SchedCost, nil
	}
	return SchedAuto, fmt.Errorf("core: unknown schedule %q (want auto, equal or cost)", name)
}

// Skew heuristic: a profile is worth cost-balancing when one row can hold a
// whole equal-row chunk hostage — its cost exceeds schedSkewFactor× the mean
// row cost — and the row space is large enough for scheduling to matter.
const (
	schedSkewFactor = 8
	schedMinRows    = 256
)

// RowCosts is the per-row cost profile cost-balanced scheduling consumes.
// The planner fills one during its analysis sweep (the flops it already
// gathers per row, which used to be discarded after aggregation); callers
// pinning a variant can build one with ComputeRowCosts.
type RowCosts struct {
	// Prefix is the monotone prefix sum of per-row costs, length nrows+1:
	// Prefix[i+1]-Prefix[i] is the estimated cost of row i (flops plus mask
	// entries plus one, so empty rows still advance the schedule).
	Prefix []int64
	// MaxRow is the largest single-row cost, the skew diagnostic.
	MaxRow int64
	// Skewed reports the skew verdict: SchedAuto only engages cost-balanced
	// spans when set (SchedCost ignores it).
	Skewed bool
}

// NewRowCosts wraps a filled prefix array, computing the skew verdict.
func NewRowCosts(prefix []int64, maxRow int64) *RowCosts {
	rc := &RowCosts{Prefix: prefix, MaxRow: maxRow}
	if n := len(prefix) - 1; n >= schedMinRows {
		total := prefix[n] - prefix[0]
		rc.Skewed = maxRow*int64(n) > schedSkewFactor*total
	}
	return rc
}

// Total returns the summed cost of all rows.
func (rc *RowCosts) Total() int64 {
	if rc == nil || len(rc.Prefix) == 0 {
		return 0
	}
	return rc.Prefix[len(rc.Prefix)-1] - rc.Prefix[0]
}

// schedPrefix resolves the options' scheduling policy for an nrows-row pass:
// the cost prefix to claim equal-cost spans over, or nil for equal-row
// chunks. A profile of the wrong length (operands changed under a cached
// plan) falls back to equal-row — scheduling is a hint, never a correctness
// input.
func schedPrefix(opt Options, nrows Index) []int64 {
	rc := opt.RowCosts
	if rc == nil || len(rc.Prefix) != int(nrows)+1 || opt.Sched == SchedEqualRow {
		return nil
	}
	if opt.Sched == SchedCost || rc.Skewed {
		return rc.Prefix
	}
	return nil
}

// ComputeRowCosts gathers the per-row cost profile of C = M .* (A·B) in one
// parallel O(nnz(A)) sweep: cost_i = Σ_{A_ik≠0} nnz(B_k*) + nnz(M_i*) + 1.
// The planner computes the same profile as a by-product of its analysis;
// this entry point serves callers that pin a variant (bypassing the planner)
// but still want cost-balanced scheduling. Returns nil for degenerate
// operands.
func ComputeRowCosts(m, a, b *matrix.Pattern, threads int) *RowCosts {
	nrows := m.NRows
	if nrows == 0 || len(m.RowPtr) == 0 || len(a.RowPtr) == 0 || len(b.RowPtr) == 0 {
		return nil
	}
	prefix := make([]int64, nrows+1)
	p := parallel.Threads(threads)
	maxPer := make([]int64, p)
	parallel.ForWorkers(int(nrows), threads, 1024, func(id int, claim func() (lo, hi int, ok bool)) {
		maxRow := int64(0)
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				var fl int64
				for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
					k := a.Col[kk]
					fl += int64(b.RowPtr[k+1] - b.RowPtr[k])
				}
				c := fl + int64(m.RowPtr[i+1]-m.RowPtr[i]) + 1
				prefix[i] = c
				if c > maxRow {
					maxRow = c
				}
			}
		}
		if maxRow > maxPer[id] {
			maxPer[id] = maxRow
		}
	})
	var maxRow int64
	for _, v := range maxPer {
		if v > maxRow {
			maxRow = v
		}
	}
	prefix[nrows] = 0
	parallel.ExclusiveScanParallel(prefix, threads)
	return NewRowCosts(prefix, maxRow)
}
