package core

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// kernel is the per-worker row engine every algorithm implements. A worker
// creates one kernel via the factory and reuses it for all rows it claims,
// so accumulator scratch is allocated once per worker.
type kernel[T any] interface {
	// symbolicRow returns the number of output entries row i will produce.
	symbolicRow(i Index) Index
	// numericRow computes row i into col/val (caller-sized) and returns the
	// number of entries written. Entries are written in sorted column order.
	numericRow(i Index, col []Index, val []T) Index
	// recycle returns the kernel's reusable scratch (accumulators, heap
	// storage) to the arena after the worker's last row. ws may be nil, in
	// which case the scratch is simply dropped. The kernel must not be used
	// after recycle.
	recycle(ws *Workspaces)
}

// execSeg assigns a kernel factory to the contiguous row range [lo, hi).
// A plain (non-mixed) execution is a single segment covering all rows.
type execSeg[T any] struct {
	lo, hi  Index
	factory func() kernel[T]
}

// workerKernels is the per-worker lazily-built kernel set of a blocked
// execution: one kernel per segment, created on first use so a worker that
// never claims rows of a segment pays nothing for its scratch.
type workerKernels[T any] struct {
	segs  []execSeg[T]
	kerns []kernel[T]
	cur   int // segment index of the most recent row (monotone within a chunk)
}

func newWorkerKernels[T any](segs []execSeg[T]) *workerKernels[T] {
	return &workerKernels[T]{segs: segs, kerns: make([]kernel[T], len(segs))}
}

// at returns the kernel owning row i. Rows inside a claimed chunk are
// consecutive, so the lookup advances linearly from the cached segment and
// falls back to binary search only on backward jumps between chunks.
func (w *workerKernels[T]) at(i Index) kernel[T] {
	if i < w.segs[w.cur].lo {
		w.cur = sort.Search(len(w.segs), func(s int) bool { return w.segs[s].hi > i })
	}
	for i >= w.segs[w.cur].hi {
		w.cur++
	}
	if w.kerns[w.cur] == nil {
		w.kerns[w.cur] = w.segs[w.cur].factory()
	}
	return w.kerns[w.cur]
}

// recycle returns every created kernel's scratch to the arena (nil ws is a
// no-op inside each kernel). Called once per worker when it runs out of
// chunks — including on cancellation, where completed rows have already
// left the accumulators fully reset.
func (w *workerKernels[T]) recycle(ws *Workspaces) {
	for _, k := range w.kerns {
		if k != nil {
			k.recycle(ws)
		}
	}
}

// sweepGrain is the chunk size of the drivers' cheap per-row sweeps (bound
// gathering, stitch copies), whose bodies are far lighter than a kernel row.
// opt.Grain overrides it like everywhere else.
const sweepGrain = 512

func (o Options) sweepGrain() int {
	if o.Grain > 0 {
		return o.Grain
	}
	return sweepGrain
}

// procStart anchors the default monotonic clock; only differences of its
// readings are ever used.
var procStart = time.Now()

// nowFn resolves the options' clock: the injected NowNs when set (tests
// drive block timing deterministically with it), else the process monotonic
// clock.
func (o Options) nowFn() func() int64 {
	if o.NowNs != nil {
		return o.NowNs
	}
	return func() int64 { return int64(time.Since(procStart)) }
}

// segTimer accumulates per-segment kernel wall time during a blocked
// execution. A nil *segTimer disables timing (single-variant calls, callers
// that did not ask for stats) at zero cost.
type segTimer struct {
	now   func() int64
	segHi []Index // ascending segment end rows; segHi[i] closes segment i
	segNs []int64 // accumulated nanoseconds per segment (atomic)
}

// add attributes dt nanoseconds spent on the row chunk [lo, hi) to the
// segments it overlaps, pro-rata by row count.
func (t *segTimer) add(lo, hi int, dt int64) {
	if dt <= 0 {
		return
	}
	rows := int64(hi - lo)
	s := sort.Search(len(t.segHi), func(i int) bool { return int(t.segHi[i]) > lo })
	for lo < hi && s < len(t.segHi) {
		end := hi
		if int(t.segHi[s]) < end {
			end = int(t.segHi[s])
		}
		atomic.AddInt64(&t.segNs[s], dt*int64(end-lo)/rows)
		lo = end
		s++
	}
}

// wrap instruments one worker body: the wall time between successive claim
// calls is the time the worker spent computing the chunk it previously
// claimed (kernel rows only — the scan/stitch sweeps run outside forRows),
// measured once per chunk so the clock never sits on the per-row fast path.
func (t *segTimer) wrap(worker func(id int, claim func() (int, int, bool))) func(id int, claim func() (int, int, bool)) {
	if t == nil {
		return worker
	}
	return func(id int, claim func() (int, int, bool)) {
		prevLo, prevHi := 0, 0
		last := t.now()
		worker(id, func() (int, int, bool) {
			lo, hi, ok := claim()
			nowNs := t.now()
			if prevHi > prevLo {
				t.add(prevLo, prevHi, nowNs-last)
			}
			last = nowNs
			prevLo, prevHi = lo, hi
			if !ok {
				prevLo, prevHi = 0, 0
			}
			return lo, hi, ok
		})
	}
}

// forRows runs one kernel pass over all rows under the options' scheduling
// policy: equal-cost spans over the row-cost prefix when one is available
// and engaged (see schedPrefix), equal-row dynamic chunks otherwise. Both
// forms are cancellation-aware and deliver rows to workers in disjoint
// ascending spans, so kernel results never depend on the policy. A non-nil
// timer observes each worker's per-chunk wall time.
func forRows(opt Options, nrows Index, timer *segTimer, worker func(id int, claim func() (lo, hi int, ok bool))) error {
	worker = timer.wrap(worker)
	if prefix := schedPrefix(opt, nrows); prefix != nil {
		return parallel.ForCostWorkersCtx(opt.Ctx, int(nrows), opt.Workers(), prefix, worker)
	}
	return parallel.ForWorkersCtx(opt.Ctx, int(nrows), opt.Workers(), opt.Grain, worker)
}

// runDriver executes the selected phase strategy with one kernel for the
// whole row space. It returns opt.Ctx's error (and no matrix) when the
// context is cancelled before the product completes.
func runDriver[T any](phase Phase, m *matrix.Pattern, ncols Index, bound func(Index) int64, factory func() kernel[T], opt Options) (*matrix.CSR[T], error) {
	segs := []execSeg[T]{{lo: 0, hi: m.NRows, factory: factory}}
	return runDriverBlocked(phase, m.NRows, ncols, bound, segs, opt, nil)
}

// runDriverBlocked executes the selected phase strategy over a partition of
// the row space: each segment's rows run on that segment's kernel. Dynamic
// chunk scheduling still spans the whole row space, so load balance does not
// degrade when segments have skewed costs. A non-nil timer accumulates each
// segment's kernel wall time (both passes of a two-phase run).
func runDriverBlocked[T any](phase Phase, nrows, ncols Index, bound func(Index) int64, segs []execSeg[T], opt Options, timer *segTimer) (*matrix.CSR[T], error) {
	if phase == TwoPhase {
		return driver2P(nrows, ncols, segs, opt, timer)
	}
	return driver1P(nrows, ncols, bound, segs, opt, timer)
}

// fillRowPtr writes the Index row pointers from the scanned int64 offsets.
func fillRowPtr(opt Options, rowPtr []Index, offs []int64, total int64) {
	nrows := len(offs)
	parallel.ForChunks(nrows, opt.Workers(), opt.sweepGrain(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rowPtr[i] = Index(offs[i])
		}
	})
	rowPtr[nrows] = Index(total)
}

// driver2P is the two-phase strategy (§6): a symbolic pass computes each
// row's output size, a parallel scan turns sizes into row pointers, and the
// numeric pass writes directly into exactly-sized output arrays. The per-row
// count array is pooled on opt.Workspaces; the only allocations of a warmed
// call are the returned output's.
func driver2P[T any](nrows, ncols Index, segs []execSeg[T], opt Options, timer *segTimer) (*matrix.CSR[T], error) {
	cb := wsGetI64(opt.Workspaces, int(nrows))
	counts := cb.s
	err := forRows(opt, nrows, timer, func(_ int, claim func() (int, int, bool)) {
		k := newWorkerKernels(segs)
		defer k.recycle(opt.Workspaces)
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				counts[i] = int64(k.at(Index(i)).symbolicRow(Index(i)))
			}
		}
	})
	if err != nil {
		wsPutI64(opt.Workspaces, cb)
		return nil, err
	}
	total := parallel.ExclusiveScanParallel(counts, opt.Workers()) // counts[i] is now the row offset
	out := &matrix.CSR[T]{
		NRows:  nrows,
		NCols:  ncols,
		RowPtr: make([]Index, nrows+1),
		Col:    make([]Index, total),
		Val:    make([]T, total),
	}
	fillRowPtr(opt, out.RowPtr, counts, total)
	wsPutI64(opt.Workspaces, cb)
	err = forRows(opt, nrows, timer, func(_ int, claim func() (int, int, bool)) {
		k := newWorkerKernels(segs)
		defer k.recycle(opt.Workspaces)
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				off := out.RowPtr[i]
				k.at(Index(i)).numericRow(Index(i), out.Col[off:out.RowPtr[i+1]], out.Val[off:out.RowPtr[i+1]])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// driver1P is the one-phase strategy (§6): size a bound-binned buffer from
// the per-row upper bound (for normal masks, the mask row size — the "good
// initial approximation" §6 describes), run the numeric pass once with each
// row writing into its own bin, then assemble the exactly-sized output.
//
// Assembly is zero-copy when every row fills its bin: the pooled bin buffers
// are handed to the caller as the output arrays and not a byte moves (the
// pool re-arms on the next call). Only when rows under-fill their bound does
// a single parallel gather stitch the bins into fresh exact arrays — the
// work the old unconditional compaction pass paid on every call. All bin and
// bookkeeping buffers are pooled on opt.Workspaces, so a warmed under-filled
// call allocates nothing beyond the returned output either.
func driver1P[T any](nrows, ncols Index, bound func(Index) int64, segs []execSeg[T], opt Options, timer *segTimer) (*matrix.CSR[T], error) {
	ws := opt.Workspaces
	ob := wsGetI64(ws, int(nrows))
	offs := ob.s
	err := parallel.ForChunksCtx(opt.Ctx, int(nrows), opt.Workers(), opt.sweepGrain(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			offs[i] = bound(Index(i))
		}
	})
	if err != nil {
		wsPutI64(ws, ob)
		return nil, err
	}
	totalBound := parallel.ExclusiveScanParallel(offs, opt.Workers()) // offs[i] = bin offset of row i
	binCol := wsGetIdx(ws, int(totalBound))
	binVal := wsGetVal[T](ws, int(totalBound))
	cb := wsGetI64(ws, int(nrows))
	counts := cb.s
	tmpCol, tmpVal := binCol.s, binVal.s
	recycle := func() {
		wsPutI64(ws, ob)
		wsPutI64(ws, cb)
		wsPutIdx(ws, binCol)
		wsPutVal(ws, binVal)
	}
	err = forRows(opt, nrows, timer, func(_ int, claim func() (int, int, bool)) {
		k := newWorkerKernels(segs)
		defer k.recycle(ws)
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				var end int64
				if i+1 < int(nrows) {
					end = offs[i+1]
				} else {
					end = totalBound
				}
				counts[i] = int64(k.at(Index(i)).numericRow(Index(i), tmpCol[offs[i]:end], tmpVal[offs[i]:end]))
			}
		}
	})
	if err != nil {
		recycle()
		return nil, err
	}
	fb := wsGetI64(ws, int(nrows))
	finalPtr := fb.s
	copy(finalPtr, counts)
	total := parallel.ExclusiveScanParallel(finalPtr, opt.Workers())
	out := &matrix.CSR[T]{NRows: nrows, NCols: ncols, RowPtr: make([]Index, nrows+1)}
	fillRowPtr(opt, out.RowPtr, finalPtr, total)
	if total == totalBound {
		// Every row filled its bound exactly (finalPtr == offs), so the bin
		// buffers already are the output: hand them over and move zero
		// bytes. The pool entries they came from re-arm on the next call.
		out.Col = tmpCol[:total]
		out.Val = tmpVal[:total]
		wsPutI64(ws, ob)
		wsPutI64(ws, cb)
		wsPutI64(ws, fb)
		return out, nil
	}
	out.Col = make([]Index, total)
	out.Val = make([]T, total)
	err = parallel.ForChunksCtx(opt.Ctx, int(nrows), opt.Workers(), opt.sweepGrain(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := counts[i]
			copy(out.Col[finalPtr[i]:finalPtr[i]+n], tmpCol[offs[i]:offs[i]+n])
			copy(out.Val[finalPtr[i]:finalPtr[i]+n], tmpVal[offs[i]:offs[i]+n])
		}
	})
	recycle()
	wsPutI64(ws, fb)
	if err != nil {
		return nil, err
	}
	return out, nil
}
