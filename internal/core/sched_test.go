package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestComputeRowCosts: the profile's prefix must be monotone, sized
// nrows+1, and sum to flops + nnz(M) + nrows (one unit per row).
func TestComputeRowCosts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randCSR(r, 40, 30, 0.1)
	b := randCSR(r, 30, 50, 0.1)
	m := randCSR(r, 40, 50, 0.2).Pattern()
	rc := ComputeRowCosts(m, a.Pattern(), b.Pattern(), 2)
	if rc == nil || len(rc.Prefix) != int(m.NRows)+1 {
		t.Fatalf("prefix length %d, want %d", len(rc.Prefix), m.NRows+1)
	}
	for i := 1; i < len(rc.Prefix); i++ {
		if rc.Prefix[i] < rc.Prefix[i-1] {
			t.Fatalf("prefix not monotone at %d", i)
		}
	}
	want := Flops(a, b, 1) + int64(m.NNZ()) + int64(m.NRows)
	if got := rc.Total(); got != want {
		t.Fatalf("total cost %d, want flops+nnz(M)+nrows = %d", got, want)
	}
	if rc.MaxRow <= 0 {
		t.Fatalf("MaxRow = %d, want positive", rc.MaxRow)
	}
	// Degenerate operands yield no profile.
	if rc := ComputeRowCosts(&matrix.Pattern{}, a.Pattern(), b.Pattern(), 1); rc != nil {
		t.Fatal("degenerate mask should produce a nil profile")
	}
}

// TestSchedPrefixResolution: the drivers must engage cost scheduling only
// when the policy and the profile agree, and must fall back to equal-row
// chunking on stale profiles (wrong length) rather than misschedule.
func TestSchedPrefixResolution(t *testing.T) {
	nrows := Index(8)
	good := &RowCosts{Prefix: make([]int64, 9)}
	stale := &RowCosts{Prefix: make([]int64, 5), Skewed: true}
	cases := []struct {
		name string
		opt  Options
		want bool
	}{
		{"nil costs", Options{Sched: SchedCost}, false},
		{"equal-row pin", Options{Sched: SchedEqualRow, RowCosts: &RowCosts{Prefix: good.Prefix, Skewed: true}}, false},
		{"auto unskewed", Options{Sched: SchedAuto, RowCosts: good}, false},
		{"auto skewed", Options{Sched: SchedAuto, RowCosts: &RowCosts{Prefix: good.Prefix, Skewed: true}}, true},
		{"cost forced", Options{Sched: SchedCost, RowCosts: good}, true},
		{"stale profile", Options{Sched: SchedCost, RowCosts: stale}, false},
	}
	for _, tc := range cases {
		if got := schedPrefix(tc.opt, nrows) != nil; got != tc.want {
			t.Errorf("%s: cost scheduling engaged=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNewRowCostsSkew: the skew verdict fires on heavy-tailed profiles and
// stays off for flat ones and tiny row spaces.
func TestNewRowCostsSkew(t *testing.T) {
	flat := make([]int64, schedMinRows+1)
	for i := 1; i < len(flat); i++ {
		flat[i] = flat[i-1] + 10
	}
	if NewRowCosts(flat, 10).Skewed {
		t.Error("flat profile marked skewed")
	}
	skew := make([]int64, schedMinRows+1)
	for i := 1; i < len(skew); i++ {
		skew[i] = skew[i-1] + 1
	}
	skew[len(skew)-1] += 100000 // one row dominates
	if !NewRowCosts(skew, 100001).Skewed {
		t.Error("heavy-tailed profile not marked skewed")
	}
	tiny := []int64{0, 1, 100001}
	if NewRowCosts(tiny, 100000).Skewed {
		t.Error("tiny row space marked skewed (scheduling cannot matter)")
	}
}

// TestSchedEquivalence: results must be bit-identical between equal-row and
// cost-balanced scheduling for every variant, phase and grain — scheduling
// decides who computes which rows when, never what is computed.
func TestSchedEquivalence(t *testing.T) {
	g := grgen.RMAT(8, 8, 17) // power-law rows: the profile cost scheduling targets
	l := matrix.Tril(matrix.Permute(g, matrix.DegreeDescPerm(g)))
	m, a, b := l.Pattern(), l, l
	sr := semiring.Arithmetic()
	costs := ComputeRowCosts(m, a.Pattern(), b.Pattern(), 0)
	if costs == nil {
		t.Fatal("no cost profile for the test graph")
	}
	want := Reference(m, a, b, sr, false)
	for _, v := range AllVariants() {
		for _, grain := range []int{1, 7, 64, 512} {
			for _, sched := range []Sched{SchedEqualRow, SchedCost} {
				opt := Options{Threads: 4, Grain: grain, Sched: sched, RowCosts: costs}
				got, err := MaskedSpGEMM(v, m, a, b, sr, opt)
				if err != nil {
					t.Fatalf("%s grain=%d sched=%s: %v", v.Name(), grain, sched, err)
				}
				if !matrix.Equal(got, want, eqF) {
					t.Fatalf("%s grain=%d sched=%s: result differs from reference", v.Name(), grain, sched)
				}
			}
		}
	}
}

// TestSchedEquivalenceComplement: same bit-identity under complemented
// masks (where the one-phase bound comes from flops, not the mask).
func TestSchedEquivalenceComplement(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := randCSR(r, 48, 48, 0.08)
	b := randCSR(r, 48, 48, 0.08)
	m := randCSR(r, 48, 48, 0.3).Pattern()
	sr := semiring.Arithmetic()
	costs := ComputeRowCosts(m, a.Pattern(), b.Pattern(), 0)
	want := Reference(m, a, b, sr, true)
	for _, v := range AllVariants() {
		if v.Alg == MCA {
			continue
		}
		for _, sched := range []Sched{SchedEqualRow, SchedCost} {
			opt := Options{Threads: 3, Grain: 5, Complement: true, Sched: sched, RowCosts: costs}
			got, err := MaskedSpGEMM(v, m, a, b, sr, opt)
			if err != nil {
				t.Fatalf("%s sched=%s: %v", v.Name(), sched, err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Fatalf("%s sched=%s: complement result differs from reference", v.Name(), sched)
			}
		}
	}
}

// TestSchedCancellationMidFlight: a context cancelled while a cost-balanced
// pass is in flight must abort the product promptly with ctx.Err() — the
// cost scheduler's claims observe the context exactly like equal-row chunks.
func TestSchedCancellationMidFlight(t *testing.T) {
	g := grgen.RMAT(9, 8, 5)
	l := matrix.Tril(g)
	m := l.Pattern()
	costs := ComputeRowCosts(m, l.Pattern(), l.Pattern(), 0)
	started := make(chan struct{})
	var once sync.Once
	slow := semiring.Semiring[float64]{
		Name: "slow",
		Add:  func(x, y float64) float64 { return x + y },
		Mul: func(x, y float64) float64 {
			once.Do(func() { close(started) })
			time.Sleep(20 * time.Microsecond)
			return 1
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		cancel()
	}()
	opt := Options{Threads: 4, Sched: SchedCost, RowCosts: costs, Ctx: ctx}
	_, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: OnePhase}, m, l, l, slow, opt)
	if err != context.Canceled {
		t.Fatalf("mid-flight cancel under cost scheduling: got %v, want context.Canceled", err)
	}
}

// TestDriverPoolsWarmZeroMisses: after one warming call, the drivers take
// every scratch buffer (counts, offsets, bound bins) from the session
// arena — zero driver-layer allocations in steady state, for both phases
// and both schedules.
func TestDriverPoolsWarmZeroMisses(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a fraction of Puts under the race detector; exact miss counts only hold without -race")
	}
	g := grgen.RMAT(9, 8, 29)
	l := matrix.Tril(matrix.Permute(g, matrix.DegreeDescPerm(g)))
	m := l.Pattern()
	sr := semiring.Arithmetic()
	costs := ComputeRowCosts(m, l.Pattern(), l.Pattern(), 0)
	for _, phase := range []Phase{OnePhase, TwoPhase} {
		for _, sched := range []Sched{SchedEqualRow, SchedCost} {
			ws := NewWorkspaces()
			opt := Options{Threads: 2, Sched: sched, RowCosts: costs, Workspaces: ws}
			v := Variant{Alg: MSA, Phase: phase}
			if _, err := MaskedSpGEMM(v, m, l, l, sr, opt); err != nil { // warm the pools
				t.Fatal(err)
			}
			_, missesBefore := ws.DriverPoolStats()
			for rep := 0; rep < 3; rep++ {
				if _, err := MaskedSpGEMM(v, m, l, l, sr, opt); err != nil {
					t.Fatal(err)
				}
			}
			gets, missesAfter := ws.DriverPoolStats()
			if missesAfter != missesBefore {
				t.Errorf("%s sched=%s: %d driver pool misses after warmup (gets %d); want 0",
					v.Name(), sched, missesAfter-missesBefore, gets)
			}
		}
	}
}

// TestOnePhaseZeroCopyFastPath: when every row exactly fills its bound (the
// output pattern equals the mask), the one-phase driver hands its bound bins
// to the caller without a stitch copy — and the result is still exact.
func TestOnePhaseZeroCopyFastPath(t *testing.T) {
	// Dense square operands: C = M .* (A·B) with a full mask and fully dense
	// product fills every mask slot.
	n := Index(24)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < n; i++ {
		for j := Index(0); j < n; j++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, float64(1+(i+j)%3))
		}
	}
	dense := matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
	m := dense.Pattern()
	sr := semiring.Arithmetic()
	want := Reference(m, dense, dense, sr, false)
	ws := NewWorkspaces()
	got, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: OnePhase}, m, dense, dense, sr, Options{Threads: 2, Workspaces: ws})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("test premise broken: output nnz %d != mask nnz %d (bound not exactly filled)", got.NNZ(), m.NNZ())
	}
	if !matrix.Equal(got, want, eqF) {
		t.Fatal("zero-copy fast path result differs from reference")
	}
	// The handed-over buffers must be independent: a second multiply on the
	// same workspaces must not corrupt the first result.
	snapshot := append([]Index(nil), got.Col...)
	if _, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: OnePhase}, m, dense, dense, sr, Options{Threads: 2, Workspaces: ws}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if got.Col[i] != snapshot[i] {
			t.Fatal("second multiply corrupted the first zero-copy output")
		}
	}
}
