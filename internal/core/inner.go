package core

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// innerKernel implements the pull-based dot-product algorithm (§4.1): for
// every unmasked output position (i, j) with M_ij ≠ 0 it computes the
// sparse dot product A_i* · B_*j by merging the sorted A row with the
// sorted B column (B stored in CSC). The output entry exists iff the
// patterns intersect (structural semantics); its value is the semiring sum
// of the pairwise products.
//
// Under a complemented mask the kernel computes the dot product for every
// column *not* present in the mask row — Θ(ncols) candidate positions per
// row, which is why the paper excludes pull-based algorithms from the
// betweenness centrality benchmark as prohibitively slow. Provided here for
// completeness and correctness testing.
//
// Mask representations only matter to the complemented form (in normal mode
// the mask *drives* the iteration; there is nothing to probe): the bitmap
// replaces the merge walk with O(1) probes, and a dense-run row skips its
// whole excluded range [lo,hi) in one jump.
//
// Generic over the operator type O (see msaKernel): the merge in dot calls
// ops.Mul/ops.Add directly, so named operators inline into the sweep.
type innerKernel[T any, O semiring.Ops[T]] struct {
	m     *matrix.Pattern
	a     *matrix.CSR[T]
	bcsc  *matrix.CSC[T]
	ops   O
	lp    opLoops[T] // lp.dot is the monomorphized dot; defaults to k.dot
	comp  bool
	probe *maskProbe // non-nil only for complemented probe representations
}

func newInnerKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a *matrix.CSR[T], bcsc *matrix.CSC[T], ops O, lp opLoops[T], comp bool, rep MaskRep, ws *Workspaces) func() kernel[T] {
	return func() kernel[T] {
		k := &innerKernel[T, O]{m: m, a: a, bcsc: bcsc, ops: ops, lp: lp, comp: comp}
		if k.lp.dot == nil {
			k.lp.dot = k.dot // funcptr fallback: the generic merge below
		}
		if comp && (rep == RepBitmap || rep == RepDense) {
			k.probe = newMaskProbe(m, rep, ws)
		}
		return k
	}
}

func (k *innerKernel[T, O]) recycle(ws *Workspaces) {
	if k.probe != nil {
		k.probe.recycle(ws)
		k.probe = nil
	}
}

// dot merges the sorted index lists and accumulates matching products.
// ok reports whether the patterns intersect at all.
func (k *innerKernel[T, O]) dot(aIdx []Index, aVal []T, bIdx []Index, bVal []T) (T, bool) {
	ops := k.ops
	var acc T
	found := false
	ai, bi := 0, 0
	for ai < len(aIdx) && bi < len(bIdx) {
		switch {
		case aIdx[ai] == bIdx[bi]:
			v := ops.Mul(aVal[ai], bVal[bi])
			if found {
				acc = ops.Add(acc, v)
			} else {
				acc = v
				found = true
			}
			ai++
			bi++
		case aIdx[ai] < bIdx[bi]:
			ai++
		default:
			bi++
		}
	}
	return acc, found
}

// dotPattern is the symbolic dot: true iff the patterns intersect.
func dotPattern(aIdx, bIdx []Index) bool {
	ai, bi := 0, 0
	for ai < len(aIdx) && bi < len(bIdx) {
		switch {
		case aIdx[ai] == bIdx[bi]:
			return true
		case aIdx[ai] < bIdx[bi]:
			ai++
		default:
			bi++
		}
	}
	return false
}

func (k *innerKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	aLo, aHi := k.a.RowPtr[i], k.a.RowPtr[i+1]
	if aLo == aHi {
		return 0
	}
	aIdx := k.a.Col[aLo:aHi]
	aVal := k.a.Val[aLo:aHi]
	mrow := k.m.Row(i)
	var cnt Index
	if !k.comp {
		for _, j := range mrow {
			bIdx, bVal := k.bcsc.Column(j)
			if v, ok := k.lp.dot(aIdx, aVal, bIdx, bVal); ok {
				col[cnt] = j
				val[cnt] = v
				cnt++
			}
		}
		return cnt
	}
	if p := k.probe; p != nil {
		p.begin(i)
		for j := Index(0); j < k.bcsc.NCols; j++ {
			if p.rep == RepDense && p.runOK && j == p.lo {
				j = p.hi - 1 // skip the whole excluded run
				continue
			}
			if p.contains(j) {
				continue
			}
			bIdx, bVal := k.bcsc.Column(j)
			if v, ok := k.lp.dot(aIdx, aVal, bIdx, bVal); ok {
				col[cnt] = j
				val[cnt] = v
				cnt++
			}
		}
		p.end()
		return cnt
	}
	mi := 0
	for j := Index(0); j < k.bcsc.NCols; j++ {
		if mi < len(mrow) && mrow[mi] == j {
			mi++
			continue
		}
		bIdx, bVal := k.bcsc.Column(j)
		if v, ok := k.lp.dot(aIdx, aVal, bIdx, bVal); ok {
			col[cnt] = j
			val[cnt] = v
			cnt++
		}
	}
	return cnt
}

func (k *innerKernel[T, O]) symbolicRow(i Index) Index {
	aLo, aHi := k.a.RowPtr[i], k.a.RowPtr[i+1]
	if aLo == aHi {
		return 0
	}
	aIdx := k.a.Col[aLo:aHi]
	mrow := k.m.Row(i)
	var cnt Index
	if !k.comp {
		for _, j := range mrow {
			bIdx, _ := k.bcsc.Column(j)
			if dotPattern(aIdx, bIdx) {
				cnt++
			}
		}
		return cnt
	}
	if p := k.probe; p != nil {
		p.begin(i)
		for j := Index(0); j < k.bcsc.NCols; j++ {
			if p.rep == RepDense && p.runOK && j == p.lo {
				j = p.hi - 1
				continue
			}
			if p.contains(j) {
				continue
			}
			bIdx, _ := k.bcsc.Column(j)
			if dotPattern(aIdx, bIdx) {
				cnt++
			}
		}
		p.end()
		return cnt
	}
	mi := 0
	for j := Index(0); j < k.bcsc.NCols; j++ {
		if mi < len(mrow) && mrow[mi] == j {
			mi++
			continue
		}
		bIdx, _ := k.bcsc.Column(j)
		if dotPattern(aIdx, bIdx) {
			cnt++
		}
	}
	return cnt
}
