package core

import (
	"sync"

	"repro/internal/accum"
	"repro/internal/matrix"
)

// Workspaces is a session-scoped arena of reusable accumulator scratch.
// The expensive per-worker state of the kernels — the MSA's two dense
// length-ncols arrays, hash tables, MCA buffers and heap iterator storage —
// is taken from the arena when a call starts and returned when its workers
// finish, so iterative callers (BFS, BC, MCL, k-truss sweeps) stop paying
// an O(ncols) allocation per worker per call.
//
// Workspaces is safe for concurrent use (sync.Pool underneath) and a nil
// *Workspaces disables pooling entirely: every helper falls back to a fresh
// allocation, which is the pre-session behavior. Pooled entries hold no row
// state between calls — each kernel leaves its accumulator fully reset (the
// per-row reset discipline the kernels already follow), so reuse is
// bit-identical to fresh scratch.
//
// The pools store concrete *accum.MSA[T] etc. values for whatever element
// type the calls use; a stored entry of a different T than the requester's
// is discarded and replaced by a fresh allocation (sessions are in practice
// monomorphic in T, so this never happens on the hot path).
type Workspaces struct {
	msa    sync.Pool // *accum.MSA[T]
	hash   sync.Pool // *accum.Hash[T]
	mca    sync.Pool // *accum.MCA[T]
	heap   sync.Pool // *accum.IterHeap
	bitmap sync.Pool // *matrix.Bitmap (mask-probe words, element-type free)
}

// NewWorkspaces returns an empty arena.
func NewWorkspaces() *Workspaces { return &Workspaces{} }

func wsGetMSA[T any](ws *Workspaces, ncols int) *accum.MSA[T] {
	if ws != nil {
		if v, ok := ws.msa.Get().(*accum.MSA[T]); ok {
			v.Resize(ncols)
			return v
		}
	}
	return accum.NewMSA[T](ncols)
}

func wsPutMSA[T any](ws *Workspaces, a *accum.MSA[T]) {
	if ws != nil && a != nil {
		ws.msa.Put(a)
	}
}

func wsGetHash[T any](ws *Workspaces, capHint int) *accum.Hash[T] {
	if ws != nil {
		if v, ok := ws.hash.Get().(*accum.Hash[T]); ok {
			v.SetLoadFactor(1, 4) // restore the paper's default sizing
			return v
		}
	}
	return accum.NewHash[T](capHint)
}

func wsPutHash[T any](ws *Workspaces, h *accum.Hash[T]) {
	if ws != nil && h != nil {
		ws.hash.Put(h)
	}
}

func wsGetMCA[T any](ws *Workspaces, capHint int) *accum.MCA[T] {
	if ws != nil {
		if v, ok := ws.mca.Get().(*accum.MCA[T]); ok {
			return v
		}
	}
	return accum.NewMCA[T](capHint)
}

func wsPutMCA[T any](ws *Workspaces, c *accum.MCA[T]) {
	if ws != nil && c != nil {
		ws.mca.Put(c)
	}
}

func wsGetHeap(ws *Workspaces) *accum.IterHeap {
	if ws != nil {
		if v, ok := ws.heap.Get().(*accum.IterHeap); ok {
			v.Reset()
			return v
		}
	}
	return &accum.IterHeap{}
}

func wsPutHeap(ws *Workspaces, h *accum.IterHeap) {
	if ws != nil && h != nil {
		ws.heap.Put(h)
	}
}

func wsGetBitmap(ws *Workspaces, nbits int) *matrix.Bitmap {
	if ws != nil {
		if v, ok := ws.bitmap.Get().(*matrix.Bitmap); ok {
			v.Resize(nbits)
			return v
		}
	}
	return matrix.NewBitmap(nbits)
}

func wsPutBitmap(ws *Workspaces, b *matrix.Bitmap) {
	if ws != nil && b != nil {
		ws.bitmap.Put(b)
	}
}
