package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/accum"
	"repro/internal/matrix"
)

// Workspaces is a session-scoped arena of reusable accumulator scratch.
// The expensive per-worker state of the kernels — the MSA's two dense
// length-ncols arrays, hash tables, MCA buffers and heap iterator storage —
// is taken from the arena when a call starts and returned when its workers
// finish, so iterative callers (BFS, BC, MCL, k-truss sweeps) stop paying
// an O(ncols) allocation per worker per call.
//
// Workspaces is safe for concurrent use (sync.Pool underneath) and a nil
// *Workspaces disables pooling entirely: every helper falls back to a fresh
// allocation, which is the pre-session behavior. Pooled entries hold no row
// state between calls — each kernel leaves its accumulator fully reset (the
// per-row reset discipline the kernels already follow), so reuse is
// bit-identical to fresh scratch.
//
// Overlapping calls — the serving layer admits several multiplies on one
// session at once — are safe by ownership discipline: every pooled object
// is held by exactly one worker goroutine between its Get and Put (kernels
// recycle scratch only after their last row; the drivers Put bookkeeping
// buffers only after the passes using them finish), so two in-flight
// multiplies can never share a live buffer, only exchange retired ones
// through the pool. The masked serving stress test runs mixed concurrent
// workloads under -race to enforce this.
//
// The pools store concrete *accum.MSA[T] etc. values for whatever element
// type the calls use; a stored entry of a different T than the requester's
// is discarded and replaced by a fresh allocation (sessions are in practice
// monomorphic in T, so this never happens on the hot path).
type Workspaces struct {
	msa    sync.Pool // *accum.MSA[T]
	hash   sync.Pool // *accum.Hash[T]
	mca    sync.Pool // *accum.MCA[T]
	heap   sync.Pool // *accum.IterHeap
	bitmap sync.Pool // *matrix.Bitmap (mask-probe words, element-type free)

	// Size-classed driver buffer pools. The phase drivers take their whole
	// scratch — per-row counts and offsets (int64), the one-phase
	// bound-binned column buffer (Index) and value buffer (T) — from these
	// pools, so a warmed session's multiplies allocate nothing at the driver
	// layer beyond the returned output. Class c holds buffers with capacity
	// in [2^c, 2^(c+1)); buffers are allocated with capacity rounded up to
	// the class boundary, so a stable working size always lands back in the
	// class it is fetched from.
	i64 [poolClasses]sync.Pool // *bufI64
	idx [poolClasses]sync.Pool // *bufIdx
	val [poolClasses]sync.Pool // *bufVal[T]

	// drvGets/drvMisses instrument the driver pools: a "miss" is a Get that
	// had to allocate. Warmed steady state shows zero new misses; the alloc
	// tests and the schedule bench study assert exactly that.
	drvGets, drvMisses atomic.Int64
}

// poolClasses bounds the size-class ladder (2^47 elements ≫ any host).
const poolClasses = 48

// bufI64/bufIdx/bufVal box a pooled slice so the box itself is reused
// through the pool: Get and Put move the same pointer, allocating nothing in
// steady state (Put of a bare slice would box it on every call).
type bufI64 struct{ s []int64 }
type bufIdx struct{ s []Index }
type bufVal[T any] struct{ s []T }

// sizeClass returns the class whose buffers can hold n elements: the
// smallest c with 2^c ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c >= poolClasses {
		c = poolClasses - 1
	}
	return c
}

// classCap returns the allocation capacity of class c buffers, clamped so
// oversized requests fall back to exact-size allocations.
func classCap(c, n int) int {
	if cc := 1 << c; cc >= n {
		return cc
	}
	return n
}

// DriverPoolStats reports the driver buffer pools' Get calls and the subset
// that had to allocate. Misses stop growing once a session is warm; the
// difference across a warmed call is the "driver-layer allocations" the
// alloc tests pin to zero.
func (ws *Workspaces) DriverPoolStats() (gets, misses int64) {
	return ws.drvGets.Load(), ws.drvMisses.Load()
}

// PoolStats is the struct form of DriverPoolStats, for snapshots that
// travel through the unified session stats and the /metrics exporter.
type PoolStats struct {
	// Gets counts driver buffer fetches; Misses the subset that had to
	// allocate. Both are monotonic over the workspace's lifetime.
	Gets, Misses int64
}

// PoolStatsSnapshot returns the driver pool counters as a PoolStats.
func (ws *Workspaces) PoolStatsSnapshot() PoolStats {
	return PoolStats{Gets: ws.drvGets.Load(), Misses: ws.drvMisses.Load()}
}

func wsGetI64(ws *Workspaces, n int) *bufI64 {
	if ws != nil {
		ws.drvGets.Add(1)
		c := sizeClass(n)
		if v, ok := ws.i64[c].Get().(*bufI64); ok && cap(v.s) >= n {
			v.s = v.s[:n]
			return v
		}
		ws.drvMisses.Add(1)
		return &bufI64{s: make([]int64, n, classCap(c, n))}
	}
	return &bufI64{s: make([]int64, n)}
}

func wsPutI64(ws *Workspaces, b *bufI64) {
	if ws != nil && b != nil && cap(b.s) > 0 {
		ws.i64[sizeClass(cap(b.s))].Put(b)
	}
}

func wsGetIdx(ws *Workspaces, n int) *bufIdx {
	if ws != nil {
		ws.drvGets.Add(1)
		c := sizeClass(n)
		if v, ok := ws.idx[c].Get().(*bufIdx); ok && cap(v.s) >= n {
			v.s = v.s[:n]
			return v
		}
		ws.drvMisses.Add(1)
		return &bufIdx{s: make([]Index, n, classCap(c, n))}
	}
	return &bufIdx{s: make([]Index, n)}
}

func wsPutIdx(ws *Workspaces, b *bufIdx) {
	if ws != nil && b != nil && cap(b.s) > 0 {
		ws.idx[sizeClass(cap(b.s))].Put(b)
	}
}

func wsGetVal[T any](ws *Workspaces, n int) *bufVal[T] {
	if ws != nil {
		ws.drvGets.Add(1)
		c := sizeClass(n)
		if v, ok := ws.val[c].Get().(*bufVal[T]); ok && cap(v.s) >= n {
			v.s = v.s[:n]
			return v
		}
		ws.drvMisses.Add(1)
		return &bufVal[T]{s: make([]T, n, classCap(c, n))}
	}
	return &bufVal[T]{s: make([]T, n)}
}

func wsPutVal[T any](ws *Workspaces, b *bufVal[T]) {
	if ws != nil && b != nil && cap(b.s) > 0 {
		ws.val[sizeClass(cap(b.s))].Put(b)
	}
}

// NewWorkspaces returns an empty arena.
func NewWorkspaces() *Workspaces { return &Workspaces{} }

func wsGetMSA[T any](ws *Workspaces, ncols int) *accum.MSA[T] {
	if ws != nil {
		if v, ok := ws.msa.Get().(*accum.MSA[T]); ok {
			v.Resize(ncols)
			return v
		}
	}
	return accum.NewMSA[T](ncols)
}

func wsPutMSA[T any](ws *Workspaces, a *accum.MSA[T]) {
	if ws != nil && a != nil {
		ws.msa.Put(a)
	}
}

func wsGetHash[T any](ws *Workspaces, capHint int) *accum.Hash[T] {
	if ws != nil {
		if v, ok := ws.hash.Get().(*accum.Hash[T]); ok {
			v.SetLoadFactor(1, 4) // restore the paper's default sizing
			return v
		}
	}
	return accum.NewHash[T](capHint)
}

func wsPutHash[T any](ws *Workspaces, h *accum.Hash[T]) {
	if ws != nil && h != nil {
		ws.hash.Put(h)
	}
}

func wsGetMCA[T any](ws *Workspaces, capHint int) *accum.MCA[T] {
	if ws != nil {
		if v, ok := ws.mca.Get().(*accum.MCA[T]); ok {
			return v
		}
	}
	return accum.NewMCA[T](capHint)
}

func wsPutMCA[T any](ws *Workspaces, c *accum.MCA[T]) {
	if ws != nil && c != nil {
		ws.mca.Put(c)
	}
}

func wsGetHeap(ws *Workspaces) *accum.IterHeap {
	if ws != nil {
		if v, ok := ws.heap.Get().(*accum.IterHeap); ok {
			v.Reset()
			return v
		}
	}
	return &accum.IterHeap{}
}

func wsPutHeap(ws *Workspaces, h *accum.IterHeap) {
	if ws != nil && h != nil {
		ws.heap.Put(h)
	}
}

func wsGetBitmap(ws *Workspaces, nbits int) *matrix.Bitmap {
	if ws != nil {
		if v, ok := ws.bitmap.Get().(*matrix.Bitmap); ok {
			v.Resize(nbits)
			return v
		}
	}
	return matrix.NewBitmap(nbits)
}

func wsPutBitmap(ws *Workspaces, b *matrix.Bitmap) {
	if ws != nil && b != nil {
		ws.bitmap.Put(b)
	}
}
