package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestBlockedMatchesSingleVariant: a blocked execution cycling through
// algorithm families per row range is bit-identical to any single-variant
// run, in both phases and both mask modes.
func TestBlockedMatchesSingleVariant(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	sr := semiring.Arithmetic()
	n := Index(211) // prime, so block edges don't align with anything
	a := randCSR(r, n, n, 0.05)
	b := randCSR(r, n, n, 0.05)
	mask := randCSR(r, n, n, 0.1).Pattern()
	mkBlocks := func(algs []Algorithm) []ExecBlock {
		var out []ExecBlock
		step := n/Index(len(algs)) + 1
		for i, alg := range algs {
			lo := Index(i) * step
			hi := lo + step
			if hi > n {
				hi = n
			}
			out = append(out, ExecBlock{Lo: lo, Hi: hi, Alg: alg})
		}
		return out
	}
	for _, complement := range []bool{false, true} {
		opt := Options{Complement: complement, Threads: 3, Grain: 7}
		want, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: OnePhase}, mask, a, b, sr, opt)
		if err != nil {
			t.Fatal(err)
		}
		algs := []Algorithm{Inner, Heap, MSA, HeapDot, Hash}
		if !complement {
			algs = append(algs, MCA)
		}
		for _, phase := range []Phase{OnePhase, TwoPhase} {
			var stats []BlockStat
			got, err := MaskedSpGEMMBlocked(phase, mkBlocks(algs), mask, a, b, sr, opt, &stats)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
				t.Fatalf("complement=%v phase=%s: blocked result disagrees", complement, phase)
			}
			if len(stats) != len(algs) {
				t.Fatalf("got %d stats for %d blocks", len(stats), len(algs))
			}
			var rows, outNNZ, maskNNZ int64
			for _, s := range stats {
				rows += s.Rows
				outNNZ += s.OutNNZ
				maskNNZ += s.MaskNNZ
			}
			if rows != int64(n) || outNNZ != int64(got.NNZ()) || maskNNZ != int64(mask.NNZ()) {
				t.Fatalf("stats totals rows=%d out=%d mask=%d, want %d/%d/%d",
					rows, outNNZ, maskNNZ, n, got.NNZ(), mask.NNZ())
			}
		}
	}
}

// TestBlockedValidation: plans that do not tile the row space, or that
// assign MCA under a complemented mask, are rejected.
func TestBlockedValidation(t *testing.T) {
	r := rand.New(rand.NewSource(902))
	sr := semiring.Arithmetic()
	n := Index(50)
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	mask := randCSR(r, n, n, 0.1).Pattern()
	bad := [][]ExecBlock{
		{},                          // empty
		{{Lo: 0, Hi: 40, Alg: MSA}}, // short
		{{Lo: 10, Hi: n, Alg: MSA}}, // gap at front
		{{Lo: 0, Hi: 30, Alg: MSA}, {Lo: 20, Hi: n, Alg: Hash}}, // overlap
		{{Lo: 0, Hi: n + 1, Alg: MSA}},                          // past the end
	}
	for i, blocks := range bad {
		if _, err := MaskedSpGEMMBlocked(OnePhase, blocks, mask, a, b, sr, Options{}, nil); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
	ok := []ExecBlock{{Lo: 0, Hi: 20, Alg: MCA}, {Lo: 20, Hi: n, Alg: MSA}}
	if _, err := MaskedSpGEMMBlocked(OnePhase, ok, mask, a, b, sr, Options{}, nil); err != nil {
		t.Fatalf("valid MCA plan rejected: %v", err)
	}
	if _, err := MaskedSpGEMMBlocked(OnePhase, ok, mask, a, b, sr, Options{Complement: true}, nil); err == nil {
		t.Fatal("MCA block under complement accepted")
	}
}
