//go:build race

package core

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool intentionally drops a fraction of Puts, so tests asserting
// exact pool-miss counts must skip.
const raceEnabled = true
