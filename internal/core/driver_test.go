package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestDriverGrainInsensitivity: results must be identical for any grain
// size and worker count (the dynamic scheduler only changes who computes
// which row).
func TestDriverGrainInsensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	sr := semiring.Arithmetic()
	n := Index(97) // prime, to exercise ragged chunking
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	mask := randCSR(r, n, n, 0.2).Pattern()
	want := Reference(mask, a, b, sr, false)
	for _, grain := range []int{1, 2, 7, 64, 1000} {
		for _, threads := range []int{1, 2, 3, 16} {
			for _, ph := range []Phase{OnePhase, TwoPhase} {
				got, err := MaskedSpGEMM(Variant{MSA, ph}, mask, a, b, sr,
					Options{Threads: threads, Grain: grain})
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(got, want, eqF) {
					t.Fatalf("grain=%d threads=%d %s: result differs", grain, threads, ph)
				}
			}
		}
	}
}

// TestDriverOutputAlwaysValid: every variant produces structurally valid,
// sorted CSR regardless of input shape quirks (empty rows, full rows,
// single column).
func TestDriverOutputAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	sr := semiring.Arithmetic()
	shapes := []struct{ m, k, n Index }{
		{1, 50, 1}, {50, 1, 50}, {3, 3, 100}, {100, 3, 3},
	}
	for _, sh := range shapes {
		a := randCSR(r, sh.m, sh.k, 0.3)
		b := randCSR(r, sh.k, sh.n, 0.3)
		mask := randCSR(r, sh.m, sh.n, 0.4).Pattern()
		for _, v := range AllVariants() {
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{Grain: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s on %dx%dx%d: %v", v.Name(), sh.m, sh.k, sh.n, err)
			}
			if !got.IsSortedRows() {
				t.Fatalf("%s on %dx%dx%d: unsorted output rows", v.Name(), sh.m, sh.k, sh.n)
			}
		}
	}
}

// TestDriverOnePhaseBoundTightness: with a normal mask the 1P temporary
// allocation is exactly Σ nnz(M_i*); this test ensures the numeric pass
// never writes past a row's bound (implicitly: a too-small bound would
// panic on the slice bounds).
func TestDriverOnePhaseBoundTightness(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	sr := semiring.Arithmetic()
	// Dense product, mask equal to the full product pattern: output fills
	// the bound exactly.
	n := Index(40)
	a := randCSR(r, n, n, 0.5)
	b := randCSR(r, n, n, 0.5)
	empty := matrix.NewEmptyCSR[float64](n, n).Pattern()
	full := Reference(empty, a, b, sr, true) // complement of empty = full product
	mask := full.Pattern()
	for _, v := range AllVariants() {
		got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != full.NNZ() {
			t.Fatalf("%s: full-pattern mask must keep every product entry (%d vs %d)",
				v.Name(), got.NNZ(), full.NNZ())
		}
	}
}

// TestComplementEmptyMaskIsFullProduct: complementing an empty mask keeps
// everything; complementing a full mask keeps nothing.
func TestComplementEmptyMaskIsFullProduct(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	sr := semiring.Arithmetic()
	n := Index(30)
	a := randCSR(r, n, n, 0.2)
	b := randCSR(r, n, n, 0.2)
	empty := matrix.NewEmptyCSR[float64](n, n).Pattern()
	want := Reference(empty, a, b, sr, true)
	for _, v := range AllVariants() {
		if !v.SupportsComplement() {
			continue
		}
		got, err := MaskedSpGEMM(v, empty, a, b, sr, Options{Complement: true})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, want, eqF) {
			t.Fatalf("%s: ¬∅ mask must give the full product", v.Name())
		}
	}
	// Full (all-ones) mask complemented → empty output.
	fullMask := denseOnesPattern(n, n)
	for _, v := range AllVariants() {
		if !v.SupportsComplement() {
			continue
		}
		got, err := MaskedSpGEMM(v, fullMask, a, b, sr, Options{Complement: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 0 {
			t.Fatalf("%s: ¬full mask must give empty output, nnz=%d", v.Name(), got.NNZ())
		}
	}
}

func denseOnesPattern(m, n Index) *matrix.Pattern {
	p := &matrix.Pattern{NRows: m, NCols: n, RowPtr: make([]Index, m+1)}
	for i := Index(0); i < m; i++ {
		for j := Index(0); j < n; j++ {
			p.Col = append(p.Col, j)
		}
		p.RowPtr[i+1] = Index(len(p.Col))
	}
	return p
}
