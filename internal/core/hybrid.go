package core

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Hybrid masked SpGEMM — the paper's stated future work (§9): "hybrid
// algorithms that can use different accumulators in the same Masked SpGEMM
// depending on the density of the mask and parts of matrices being
// processed". This kernel chooses, per output row, among the three regimes
// Fig. 7 identifies:
//
//   - mask row much sparser than the row's flops → pull (dot products),
//   - flops much smaller than the mask row        → heap merge (NInspect=1),
//   - comparable                                   → MSA scatter/gather.
//
// The decision uses only O(nnz(A_i*)) work per row (summing B row lengths),
// so its overhead is negligible next to the multiply. Thresholds follow the
// §4.3 asymptotic comparison: pull wins when nnz(m_i)·d ≪ flops_i, push
// wins otherwise, and the heap's log factor only pays off when flops_i ≪
// nnz(m_i).
type hybridKernel[T any, O semiring.Ops[T]] struct {
	m    *matrix.Pattern
	a    *matrix.CSR[T]
	b    *matrix.CSR[T]
	bcsc *matrix.CSC[T]
	msa  *msaKernel[T, O]
	heap *heapKernel[T, O]
	dot  *innerKernel[T, O]
	// stats counts rows routed to each sub-kernel (diagnostics).
	stats *HybridStats
}

// HybridStats counts the per-row routing decisions of the hybrid kernel.
// Counters are per-call (the kernel factory aggregates across workers with
// per-worker counters summed at the end — here each worker keeps its own
// and the driver result is advisory, so plain int64s suffice).
type HybridStats struct {
	PullRows, HeapRows, MSARows int64
}

// hybridPullFactor: pull when flops_i > hybridPullFactor · nnz(m_i)·avgdeg.
const hybridPullFactor = 8

// hybridHeapFactor: heap when nnz(m_i) > hybridHeapFactor · flops_i.
const hybridHeapFactor = 8

func newHybridKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a, b *matrix.CSR[T], bcsc *matrix.CSC[T], ops O, stats *HybridStats, ws *Workspaces) func() kernel[T] {
	return func() kernel[T] {
		dot := &innerKernel[T, O]{m: m, a: a, bcsc: bcsc, ops: ops}
		dot.lp.dot = dot.dot // funcptr path: generic merge (see newInnerKernelFactory)
		return &hybridKernel[T, O]{
			m: m, a: a, b: b, bcsc: bcsc,
			msa:   &msaKernel[T, O]{m: m, a: a, b: b, ops: ops, acc: wsGetMSA[T](ws, int(b.NCols))},
			heap:  &heapKernel[T, O]{m: m, a: a, b: b, ops: ops, nInspect: 1, pq: wsGetHeap(ws)},
			dot:   dot,
			stats: stats,
		}
	}
}

func (k *hybridKernel[T, O]) recycle(ws *Workspaces) {
	k.msa.recycle(ws)
	k.heap.recycle(ws)
}

// route picks the sub-kernel for row i.
func (k *hybridKernel[T, O]) route(i Index) kernel[T] {
	mnnz := int64(k.m.RowNNZ(i))
	if mnnz == 0 {
		return k.msa // empty row; any kernel returns 0 immediately
	}
	var flops int64
	for kk := k.a.RowPtr[i]; kk < k.a.RowPtr[i+1]; kk++ {
		kcol := k.a.Col[kk]
		flops += int64(k.b.RowPtr[kcol+1] - k.b.RowPtr[kcol])
	}
	avgDeg := int64(1)
	if k.b.NCols > 0 {
		avgDeg += int64(k.b.NNZ()) / int64(k.b.NCols)
	}
	switch {
	case flops > hybridPullFactor*mnnz*avgDeg:
		if k.stats != nil {
			k.stats.PullRows++
		}
		return k.dot
	case mnnz > hybridHeapFactor*flops:
		if k.stats != nil {
			k.stats.HeapRows++
		}
		return k.heap
	default:
		if k.stats != nil {
			k.stats.MSARows++
		}
		return k.msa
	}
}

func (k *hybridKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	return k.route(i).numericRow(i, col, val)
}

func (k *hybridKernel[T, O]) symbolicRow(i Index) Index {
	return k.route(i).symbolicRow(i)
}

// MaskedSpGEMMHybrid computes C = M .* (A·B) with the per-row adaptive
// hybrid kernel (the §9 future-work design). Complemented masks are not
// supported (the pull sub-kernel's complement is Θ(ncols) per row, which
// defeats the routing). stats, if non-nil, receives approximate routing
// counts; with multiple workers the counts are racy-but-indicative and
// exact with Options.Threads == 1.
func MaskedSpGEMMHybrid[T any](phase Phase, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options, stats *HybridStats) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	if opt.Complement {
		return nil, errHybridComplement
	}
	if err := opt.Err(); err != nil {
		return nil, err
	}
	bcsc := matrix.ToCSC(b)
	factory := newHybridKernelFactory(m, a, b, bcsc, funcOps(sr), stats, opt.Workspaces)
	bound := allocBound(m, a, b, false)
	return runDriver(phase, m, b.NCols, bound, factory, opt)
}

var errHybridComplement = fmtErr("core: hybrid kernel does not support complemented masks")

type fmtErr string

func (e fmtErr) Error() string { return string(e) }
