package core

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Column-by-column execution. The paper's algorithms are row-by-row on CSR
// (§5, after Gustavson); the column-major dual — compute each output
// *column* as a combination of columns of A selected by a column of B —
// is what CSC-major libraries (e.g. MATLAB heritage, CSparse) run. By the
// transpose identity
//
//	C = M .* (A·B)   ⇔   Cᵀ = Mᵀ .* (Bᵀ·Aᵀ)
//
// a column-major masked multiply is exactly a row-major multiply of the
// transposed operands. This wrapper materializes the transposes, runs the
// selected row kernel, and transposes back — providing the CSC execution
// path (and a strong cross-check of the row kernels: the two paths must
// agree bit-for-bit on exact semirings).
//
// Cost: three counting-sort transposes of O(nnz + dimension) on top of the
// multiply; worthwhile when the operands are already column-major or when
// column access patterns dominate downstream.
func MaskedSpGEMMColumns[T any](v Variant, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	mt := matrix.TransposePattern(m)
	at := matrix.Transpose(a)
	bt := matrix.Transpose(b)
	// Multiply order flips (Bᵀ·Aᵀ) and so does the semiring multiply's
	// operand order: the row kernel computes Mul(btVal, atVal) where the
	// original computes Mul(aVal, bVal).
	flipped := semiring.Semiring[T]{
		Name: sr.Name + "-colmajor",
		Add:  sr.Add,
		Mul:  func(x, y T) T { return sr.Mul(y, x) },
		Zero: sr.Zero,
	}
	ct, err := MaskedSpGEMM(v, mt, bt, at, flipped, opt)
	if err != nil {
		return nil, err
	}
	return matrix.Transpose(ct), nil
}
