package core

import (
	"sort"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// msaKernel implements the MSA masked SpGEVM of Algorithm 2 row by row:
// mark the mask entries allowed, scatter the scaled B rows through the MSA
// state machine, then gather in mask order (which keeps output rows sorted
// because mask rows are sorted).
//
// The MSA's dense state array is itself a direct-index mask representation,
// so the bitmap adds nothing here; only the dense-run representation changes
// execution. A mask row that is a contiguous run [lo,hi) skips the
// SetAllowed/SetNotAllowed scatter (and the complement path's mask-row
// reset): membership is the range check, with the state array used purely
// for accumulation. Non-run rows fall back to the scatter row by row.
//
// The kernel is generic over the operator type O: instantiated for a named
// zero-size operator (semiring.PlusPairF64, ...) the ops.Mul/ops.Add calls
// in the scatter loops inline; instantiated for semiring.FuncOps it computes
// with exactly the same loop structure through the func fields, so the two
// paths are bit-identical. The numeric loops hoist each B row into local
// subslices so the per-flop loads are bounds-check-free.
type msaKernel[T any, O semiring.Ops[T]] struct {
	m     *matrix.Pattern
	a, b  *matrix.CSR[T]
	ops   O
	lp    opLoops[T] // monomorphized scatter loops; zero → generic ops loops
	comp  bool
	dense bool // RepDense: direct-index contiguous mask rows
	acc   *accum.MSA[T]
}

func newMSAKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a, b *matrix.CSR[T], ops O, lp opLoops[T], comp bool, rep MaskRep, ws *Workspaces) func() kernel[T] {
	return func() kernel[T] {
		return &msaKernel[T, O]{m: m, a: a, b: b, ops: ops, lp: lp, comp: comp, dense: rep == RepDense,
			acc: wsGetMSA[T](ws, int(b.NCols))}
	}
}

func (k *msaKernel[T, O]) recycle(ws *Workspaces) {
	wsPutMSA(ws, k.acc)
	k.acc = nil
}

// numericRowRun is the dense-run numeric row: no mask scatter, membership by
// range check. In normal mode the in-run default state NotAllowed plays the
// role of Allowed; in complement mode in-run columns are skipped outright
// and the insertion log drives the gather as usual.
func (k *msaKernel[T, O]) numericRowRun(i Index, lo, hi Index, col []Index, val []T) Index {
	mrow := k.m.Row(i)
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	if k.lp.msaRun != nil {
		k.lp.msaRun(acc, a, b, i, lo, hi, k.comp)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for p, j := range bCol {
				if (j >= lo && j < hi) == k.comp { // masked out
					continue
				}
				switch acc.State(j) {
				case accum.NotAllowed:
					if k.comp {
						acc.StoreC(j, ops.Mul(av, bVal[p]))
					} else {
						acc.Store(j, ops.Mul(av, bVal[p]))
					}
				case accum.Set:
					acc.SetValue(j, ops.Add(acc.Value(j), ops.Mul(av, bVal[p])))
				}
			}
		}
	}
	var cnt Index
	if k.comp {
		ins := acc.Inserted()
		sortIndices(ins)
		for _, j := range ins {
			col[cnt] = j
			val[cnt] = acc.Value(j)
			cnt++
		}
		acc.ResetC(nil) // no Excluded marks were scattered
		return cnt
	}
	for _, j := range mrow {
		if v, ok := acc.Remove(j); ok {
			col[cnt] = j
			val[cnt] = v
			cnt++
		}
	}
	return cnt
}

func (k *msaKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	if k.dense {
		if lo, hi, ok := matrix.RowRun(k.m.Row(i)); ok {
			return k.numericRowRun(i, lo, hi, col, val)
		}
	}
	if k.comp {
		return k.numericRowC(i, col, val)
	}
	mrow := k.m.Row(i)
	if len(mrow) == 0 {
		return 0
	}
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	for _, j := range mrow {
		acc.SetAllowed(j)
	}
	if k.lp.msa != nil {
		k.lp.msa(acc, a, b, i)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for p, j := range bCol {
				switch acc.State(j) {
				case accum.Allowed:
					acc.Store(j, ops.Mul(av, bVal[p]))
				case accum.Set:
					acc.SetValue(j, ops.Add(acc.Value(j), ops.Mul(av, bVal[p])))
				}
			}
		}
	}
	var cnt Index
	for _, j := range mrow {
		if v, ok := acc.Remove(j); ok {
			col[cnt] = j
			val[cnt] = v
			cnt++
		}
	}
	return cnt
}

// numericRowC is the complemented-mask row (§5.2): mask entries are marked
// Excluded, everything else is allowed by default, and an insertion log
// drives the gather so the dense array is never scanned.
func (k *msaKernel[T, O]) numericRowC(i Index, col []Index, val []T) Index {
	mrow := k.m.Row(i)
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	for _, j := range mrow {
		acc.SetNotAllowed(j)
	}
	if k.lp.msaC != nil {
		k.lp.msaC(acc, a, b, i)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for p, j := range bCol {
				switch acc.State(j) {
				case accum.NotAllowed: // default-allowed under complement
					acc.StoreC(j, ops.Mul(av, bVal[p]))
				case accum.Set:
					acc.SetValue(j, ops.Add(acc.Value(j), ops.Mul(av, bVal[p])))
				}
			}
		}
	}
	ins := acc.Inserted()
	sortIndices(ins)
	var cnt Index
	for _, j := range ins {
		col[cnt] = j
		val[cnt] = acc.Value(j)
		cnt++
	}
	acc.ResetC(mrow)
	return cnt
}

// symbolicRowRun is the dense-run symbolic row: range-check membership, no
// mask scatter.
func (k *msaKernel[T, O]) symbolicRowRun(i Index, lo, hi Index) Index {
	mrow := k.m.Row(i)
	acc, a, b := k.acc, k.a, k.b
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
			j := b.Col[p]
			if (j >= lo && j < hi) == k.comp {
				continue
			}
			if acc.State(j) == accum.NotAllowed {
				if k.comp {
					acc.MarkC(j)
				} else {
					acc.Mark(j)
				}
			}
		}
	}
	if k.comp {
		cnt := Index(len(acc.Inserted()))
		acc.ResetC(nil)
		return cnt
	}
	var cnt Index
	for _, j := range mrow {
		if _, ok := acc.Remove(j); ok {
			cnt++
		}
	}
	return cnt
}

func (k *msaKernel[T, O]) symbolicRow(i Index) Index {
	if k.dense {
		if lo, hi, ok := matrix.RowRun(k.m.Row(i)); ok {
			return k.symbolicRowRun(i, lo, hi)
		}
	}
	acc, a, b := k.acc, k.a, k.b
	mrow := k.m.Row(i)
	if k.comp {
		for _, j := range mrow {
			acc.SetNotAllowed(j)
		}
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
				j := b.Col[p]
				if acc.State(j) == accum.NotAllowed {
					acc.MarkC(j)
				}
			}
		}
		cnt := Index(len(acc.Inserted()))
		acc.ResetC(mrow)
		return cnt
	}
	if len(mrow) == 0 {
		return 0
	}
	for _, j := range mrow {
		acc.SetAllowed(j)
	}
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
			j := b.Col[p]
			if acc.State(j) == accum.Allowed {
				acc.Mark(j)
			}
		}
	}
	var cnt Index
	for _, j := range mrow {
		if _, ok := acc.Remove(j); ok {
			cnt++
		}
	}
	return cnt
}

// sortIndices sorts a small index slice ascending.
func sortIndices(s []Index) {
	if len(s) <= 32 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
