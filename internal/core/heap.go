package core

import (
	"math"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// nInspectAll is the NInspect=∞ setting (the HeapDot variant of §5.5).
const nInspectAll = math.MaxInt32

// heapKernel implements the masked heap SpGEVM of Algorithms 4 and 5
// (§5.5): a min-heap of row iterators over {B_k* | A_ik ≠ 0} yields the
// product's column indices in globally sorted order; a two-way merge with
// the sorted mask row selects the entries to keep, and consecutive pops of
// the same column fold into the previous output entry, so no accumulator
// array is needed and the output is produced directly in sorted order.
//
// nInspect controls how much of the mask the Insert procedure inspects
// before pushing an iterator back onto the heap (Algorithm 5): 0 pushes
// blindly, 1 checks just the current mask entry (the paper's "Heap"), and
// nInspectAll advances the iterator until it points at a column present in
// the remaining mask ("HeapDot").
//
// Under a complemented mask the kernel computes products for S \ m instead
// of S ∩ m and always uses NInspect=0 (§5.5 last paragraph).
//
// The merge with the mask row is the CSR mask representation. Under the
// bitmap or dense-run representations the kernel instead pushes iterators
// blindly (NInspect is moot — there is no merge frontier to inspect) and
// answers membership at each pop with an O(1) probe, which avoids the
// repeated mask-row walks Insert performs on dense masks.
//
// Generic over the operator type O (see msaKernel).
type heapKernel[T any, O semiring.Ops[T]] struct {
	m        *matrix.Pattern
	a, b     *matrix.CSR[T]
	ops      O
	comp     bool
	nInspect int32
	pq       *accum.IterHeap
	probe    *maskProbe // nil for the CSR merge path
}

func newHeapKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a, b *matrix.CSR[T], ops O, comp bool, nInspect int32, rep MaskRep, ws *Workspaces) func() kernel[T] {
	if comp {
		nInspect = 0
	}
	return func() kernel[T] {
		k := &heapKernel[T, O]{m: m, a: a, b: b, ops: ops, comp: comp, nInspect: nInspect,
			pq: wsGetHeap(ws)}
		if rep == RepBitmap || rep == RepDense {
			k.probe = newMaskProbe(m, rep, ws)
		}
		return k
	}
}

func (k *heapKernel[T, O]) recycle(ws *Workspaces) {
	wsPutHeap(ws, k.pq)
	k.pq = nil
	if k.probe != nil {
		k.probe.recycle(ws)
		k.probe = nil
	}
}

// insert is the Insert procedure of Algorithm 5. it must be valid.
// mrow[mPos:] is the unconsumed portion of the mask row.
func (k *heapKernel[T, O]) insert(it accum.RowIterator, mrow []Index, mPos int) {
	b := k.b
	if k.nInspect == 0 {
		it.Col = b.Col[it.Pos]
		k.pq.Push(it)
		return
	}
	toInspect := k.nInspect
	for it.Pos < it.End && mPos < len(mrow) {
		c := b.Col[it.Pos]
		switch {
		case c == mrow[mPos]:
			it.Col = c
			k.pq.Push(it)
			return
		case c < mrow[mPos]:
			// Columns below the current mask frontier can never be output;
			// skip them without pushing.
			it.Pos++
		default:
			mPos++
			toInspect--
			if toInspect == 0 {
				it.Col = c
				k.pq.Push(it)
				return
			}
		}
	}
	// Row exhausted, or mask exhausted (nothing left to output): drop.
}

// numericRowProbe is numericRow under a probe-based mask representation:
// blind pushes, O(1) membership at pop.
func (k *heapKernel[T, O]) numericRowProbe(i Index, col []Index, val []T) Index {
	if !k.comp && len(k.m.Row(i)) == 0 {
		return 0
	}
	a, b, ops := k.a, k.b, k.ops
	p := k.probe
	p.begin(i)
	k.pq.Reset()
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		it := accum.RowIterator{Pos: b.RowPtr[kcol], End: b.RowPtr[kcol+1], APos: kk}
		if it.Valid() {
			it.Col = b.Col[it.Pos]
			k.pq.Push(it)
		}
	}
	prevKey := Index(-1)
	var cnt Index
	for k.pq.Len() > 0 {
		min := k.pq.PopMin()
		if p.contains(min.Col) != k.comp { // keep: mask hit (normal) or miss (complement)
			j := min.Col
			v := ops.Mul(a.Val[min.APos], b.Val[min.Pos])
			if prevKey == j {
				val[cnt-1] = ops.Add(val[cnt-1], v)
			} else {
				col[cnt] = j
				val[cnt] = v
				cnt++
				prevKey = j
			}
		}
		min.Pos++
		if min.Pos < min.End {
			min.Col = b.Col[min.Pos]
			k.pq.Push(min)
		}
	}
	p.end()
	return cnt
}

func (k *heapKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	if k.probe != nil {
		return k.numericRowProbe(i, col, val)
	}
	mrow := k.m.Row(i)
	if !k.comp && len(mrow) == 0 {
		return 0
	}
	a, b, ops := k.a, k.b, k.ops
	k.pq.Reset()
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		it := accum.RowIterator{Pos: b.RowPtr[kcol], End: b.RowPtr[kcol+1], APos: kk}
		if it.Valid() {
			k.insert(it, mrow, 0)
		}
	}
	mPos := 0
	prevKey := Index(-1)
	var cnt Index
	for k.pq.Len() > 0 {
		min := k.pq.PopMin()
		for mPos < len(mrow) && mrow[mPos] < min.Col {
			mPos++
		}
		inMask := mPos < len(mrow) && mrow[mPos] == min.Col
		if inMask != k.comp { // keep: mask hit (normal) or mask miss (complement)
			j := min.Col
			v := ops.Mul(a.Val[min.APos], b.Val[min.Pos])
			if prevKey == j {
				val[cnt-1] = ops.Add(val[cnt-1], v)
			} else {
				col[cnt] = j
				val[cnt] = v
				cnt++
				prevKey = j
			}
		}
		if !k.comp && mPos >= len(mrow) {
			break // mask exhausted: no further output possible (Alg. 4 line 9)
		}
		min.Pos++
		if min.Pos < min.End {
			k.insert(min, mrow, mPos)
		}
	}
	return cnt
}

// symbolicRowProbe is symbolicRow under a probe-based mask representation.
func (k *heapKernel[T, O]) symbolicRowProbe(i Index) Index {
	if !k.comp && len(k.m.Row(i)) == 0 {
		return 0
	}
	a, b := k.a, k.b
	p := k.probe
	p.begin(i)
	k.pq.Reset()
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		it := accum.RowIterator{Pos: b.RowPtr[kcol], End: b.RowPtr[kcol+1], APos: kk}
		if it.Valid() {
			it.Col = b.Col[it.Pos]
			k.pq.Push(it)
		}
	}
	prevKey := Index(-1)
	var cnt Index
	for k.pq.Len() > 0 {
		min := k.pq.PopMin()
		if p.contains(min.Col) != k.comp && prevKey != min.Col {
			cnt++
			prevKey = min.Col
		}
		min.Pos++
		if min.Pos < min.End {
			min.Col = b.Col[min.Pos]
			k.pq.Push(min)
		}
	}
	p.end()
	return cnt
}

func (k *heapKernel[T, O]) symbolicRow(i Index) Index {
	if k.probe != nil {
		return k.symbolicRowProbe(i)
	}
	mrow := k.m.Row(i)
	if !k.comp && len(mrow) == 0 {
		return 0
	}
	a, b := k.a, k.b
	k.pq.Reset()
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		it := accum.RowIterator{Pos: b.RowPtr[kcol], End: b.RowPtr[kcol+1], APos: kk}
		if it.Valid() {
			k.insert(it, mrow, 0)
		}
	}
	mPos := 0
	prevKey := Index(-1)
	var cnt Index
	for k.pq.Len() > 0 {
		min := k.pq.PopMin()
		for mPos < len(mrow) && mrow[mPos] < min.Col {
			mPos++
		}
		inMask := mPos < len(mrow) && mrow[mPos] == min.Col
		if inMask != k.comp && prevKey != min.Col {
			cnt++
			prevKey = min.Col
		}
		if !k.comp && mPos >= len(mrow) {
			break
		}
		min.Pos++
		if min.Pos < min.End {
			k.insert(min, mrow, mPos)
		}
	}
	return cnt
}
