package core

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Masked SpGEVM: v = m .* (uᵀB), the row-vector primitive the paper's §5
// presents its algorithms in before lifting them to SpGEMM. Each call runs
// the chosen algorithm's row kernel once on the given vector; traversal
// algorithms (BFS, BC forward steps) use this directly.

// MaskedSpGEVM computes v = m .* (uᵀB) (or the complement form) with the
// chosen algorithm family. m and u are sparse vectors of length B.NRows
// resp. matching B's shape: m has length B.NCols, u length B.NRows.
func MaskedSpGEVM[T any](alg Algorithm, m *matrix.SparseVec[T], u *matrix.SparseVec[T], b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) (*matrix.SparseVec[T], error) {
	if u.N != b.NRows {
		return nil, fmt.Errorf("core: SpGEVM length mismatch: u has %d, B has %d rows", u.N, b.NRows)
	}
	if m.N != b.NCols {
		return nil, fmt.Errorf("core: SpGEVM mask length mismatch: m has %d, B has %d cols", m.N, b.NCols)
	}
	mp := m.VecPattern()
	ur := u.AsRowMatrix()
	out, err := MaskedSpGEMM(Variant{Alg: alg, Phase: OnePhase}, mp, ur, b, sr, opt)
	if err != nil {
		return nil, err
	}
	return matrix.RowToVec(out, 0), nil
}

// PushPullThreshold is the frontier-density ratio at which
// MaskedSpGEVMAuto switches from the push (MSA) to the pull (Inner)
// kernel, following the direction-optimization heuristic [5]: pulling wins
// when the expected push work, flops(uB), exceeds the candidate count times
// the average dot cost.
const PushPullThreshold = 8

// Direction identifies which kernel a direction-optimized step chose.
type Direction uint8

// Directions.
const (
	Push Direction = iota
	Pull
)

// String names the direction.
func (d Direction) String() string {
	if d == Pull {
		return "pull"
	}
	return "push"
}

// MaskedSpGEVMAuto is the direction-optimized masked vector-matrix product
// (§4's push/pull classification made adaptive): it estimates the push
// cost flops(uᵀB) and the pull cost (candidate positions × average row
// degree), then runs MSA (push) or the dot-product kernel (pull)
// accordingly. bcsc must be the CSC form of b; it is only touched on pull
// steps. Returns the result and the direction taken.
func MaskedSpGEVMAuto[T any](m *matrix.SparseVec[T], u *matrix.SparseVec[T], b *matrix.CSR[T], bcsc *matrix.CSC[T], sr semiring.Semiring[T], opt Options) (*matrix.SparseVec[T], Direction, error) {
	if u.N != b.NRows || m.N != b.NCols {
		return nil, Push, fmt.Errorf("core: SpGEVM dimension mismatch")
	}
	// Push cost: flops(uᵀB).
	var pushFlops int64
	for _, k := range u.Idx {
		pushFlops += int64(b.RowPtr[k+1] - b.RowPtr[k])
	}
	// Pull candidates: mask entries (normal) or their complement count.
	var candidates int64
	if opt.Complement {
		candidates = int64(m.N) - int64(len(m.Idx))
	} else {
		candidates = int64(len(m.Idx))
	}
	avgDeg := int64(1)
	if b.NCols > 0 {
		avgDeg += int64(b.NNZ()) / int64(b.NCols)
	}
	pullCost := candidates * avgDeg
	dir := Push
	if pullCost*PushPullThreshold < pushFlops {
		dir = Pull
	}
	mp := m.VecPattern()
	ur := u.AsRowMatrix()
	var out *matrix.CSR[T]
	var err error
	if dir == Pull {
		out, err = MaskedDotCSC(OnePhase, mp, ur, bcsc, sr, opt)
	} else {
		out, err = MaskedSpGEMM(Variant{Alg: MSA, Phase: OnePhase}, mp, ur, b, sr, opt)
	}
	if err != nil {
		return nil, dir, err
	}
	return matrix.RowToVec(out, 0), dir, nil
}
