package core

// Deterministic block-timing tests. The clock is injected through
// Options.NowNs — a counter advancing 1000ns per reading, never a wall-clock
// read — so the per-block ElapsedNs attribution is asserted exactly: the
// blocked drivers take one reading at worker start plus one per chunk claim,
// attributing each inter-claim delta to the previously claimed chunk. The
// docscheck wall-clock gate enforces that this file stays clock-free.

import (
	"sync/atomic"
	"testing"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// tickClock returns an injectable NowNs advancing 1000ns per call.
func tickClock() func() int64 {
	var n atomic.Int64
	return func() int64 { return n.Add(1000) }
}

// timingBlocks is the two-block plan the tests execute: a 128-row product
// split at row 64 across two algorithm families.
func timingBlocks() []ExecBlock {
	return []ExecBlock{
		{Lo: 0, Hi: 64, Alg: MSA, Rep: RepCSR},
		{Lo: 64, Hi: 128, Alg: Hash, Rep: RepCSR},
	}
}

func runTimed(t *testing.T, phase Phase, grain int) ([]BlockStat, *matrix.CSR[float64]) {
	t.Helper()
	g := grgen.ErdosRenyi(128, 4, 3)
	opt := Options{Threads: 1, Grain: grain, NowNs: tickClock()}
	var stats []BlockStat
	c, err := MaskedSpGEMMBlocked(phase, timingBlocks(), g.Pattern(), g, g, semiring.Arithmetic(), opt, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d block stats, want 2", len(stats))
	}
	// Timing must never change the answer: compare against an untimed
	// single-variant run (all variants are bit-identical).
	want, err := MaskedSpGEMM(Variant{Alg: MSA, Phase: phase}, g.Pattern(), g, g, semiring.Arithmetic(), Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(c, want, func(a, b float64) bool { return a == b }) {
		t.Fatal("timed blocked product differs from untimed reference")
	}
	return stats, c
}

// TestBlockTimingInjectedClock1P pins the exact one-phase attribution: with
// Grain 64 the single worker claims the chunks [0,64) and [64,128), each
// followed by one clock reading, so the numeric pass charges each block
// exactly one 1000ns inter-claim delta.
func TestBlockTimingInjectedClock1P(t *testing.T) {
	stats, _ := runTimed(t, OnePhase, 64)
	for i, bs := range stats {
		if bs.ElapsedNs != 1000 {
			t.Fatalf("1P block %d ElapsedNs = %d, want 1000", i, bs.ElapsedNs)
		}
	}
}

// TestBlockTimingInjectedClock2P doubles the expectation: a two-phase run
// times both the symbolic and the numeric pass, so each block accumulates
// two 1000ns deltas.
func TestBlockTimingInjectedClock2P(t *testing.T) {
	stats, _ := runTimed(t, TwoPhase, 64)
	for i, bs := range stats {
		if bs.ElapsedNs != 2000 {
			t.Fatalf("2P block %d ElapsedNs = %d, want 2000", i, bs.ElapsedNs)
		}
	}
}

// TestBlockTimingProRataSplit forces one chunk to straddle the block
// boundary: with Grain 128 the worker claims all 128 rows at once, and the
// chunk's single 1000ns delta must split pro-rata by rows — 500ns per
// 64-row block.
func TestBlockTimingProRataSplit(t *testing.T) {
	stats, _ := runTimed(t, OnePhase, 128)
	for i, bs := range stats {
		if bs.ElapsedNs != 500 {
			t.Fatalf("pro-rata block %d ElapsedNs = %d, want 500", i, bs.ElapsedNs)
		}
	}
}

// TestBlockTimingDisabledWithoutStats runs the same blocked product without
// a stats sink and with a clock that counts its own readings: the drivers
// must not read the clock at all when nobody asked for timing.
func TestBlockTimingDisabledWithoutStats(t *testing.T) {
	g := grgen.ErdosRenyi(128, 4, 3)
	var reads atomic.Int64
	opt := Options{Threads: 1, Grain: 64, NowNs: func() int64 { return reads.Add(1000) }}
	if _, err := MaskedSpGEMMBlocked(OnePhase, timingBlocks(), g.Pattern(), g, g, semiring.Arithmetic(), opt, nil); err != nil {
		t.Fatal(err)
	}
	if got := reads.Load(); got != 0 {
		t.Fatalf("clock read %d times with timing disabled, want 0", got)
	}
}
