package core

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// mcaKernel implements Algorithm 3, the Mask Compressed Accumulator masked
// SpGEVM (§5.4): the accumulator is indexed by mask *position* rather than
// column id, so its arrays are only nnz(mask row) long.
//
// The mask representation decides how B entries find their mask position.
// Under the CSR representation each nonzero A_ik merges the sorted B row
// B_k* against the sorted mask row — O(nnz(m_i) + nnz(B_k*)) per A entry,
// which for dense mask rows re-walks the whole mask once per A entry. Under
// the bitmap representation membership is a single O(1) probe per flop and
// only the *hits* pay a binary search for their position; under the
// dense-run representation the position is j-lo with no scatter at all.
//
// Requires sorted mask and B rows; does not support complemented masks.
// Generic over the operator type O (see msaKernel).
type mcaKernel[T any, O semiring.Ops[T]] struct {
	m     *matrix.Pattern
	a, b  *matrix.CSR[T]
	ops   O
	lp    opLoops[T] // monomorphized scatter loops; zero → generic ops loops
	acc   *accum.MCA[T]
	probe *maskProbe // nil for the CSR merge path
}

func newMCAKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a, b *matrix.CSR[T], ops O, lp opLoops[T], rep MaskRep, ws *Workspaces) func() kernel[T] {
	return func() kernel[T] {
		k := &mcaKernel[T, O]{m: m, a: a, b: b, ops: ops, lp: lp, acc: wsGetMCA[T](ws, 64)}
		if rep == RepBitmap || rep == RepDense {
			k.probe = newMaskProbe(m, rep, ws)
		}
		return k
	}
}

func (k *mcaKernel[T, O]) recycle(ws *Workspaces) {
	wsPutMCA(ws, k.acc)
	k.acc = nil
	if k.probe != nil {
		k.probe.recycle(ws)
		k.probe = nil
	}
}

func (k *mcaKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	mrow := k.m.Row(i)
	if len(mrow) == 0 {
		return 0
	}
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	acc.Prepare(len(mrow))
	if p := k.probe; p != nil {
		p.begin(i)
		if k.lp.mcaProbe != nil {
			k.lp.mcaProbe(acc, p, a, b, i)
		} else {
			for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
				kcol := a.Col[kk]
				av := a.Val[kk]
				bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
				bCol := b.Col[bLo:bHi]
				bVal := b.Val[bLo:bHi]
				bVal = bVal[:len(bCol)]
				for bi, j := range bCol {
					if !p.contains(j) {
						continue
					}
					idx := p.pos(j)
					if acc.State(idx) == accum.Set {
						acc.SetValue(idx, ops.Add(acc.Value(idx), ops.Mul(av, bVal[bi])))
					} else {
						acc.Store(idx, ops.Mul(av, bVal[bi]))
					}
				}
			}
		}
		p.end()
	} else if k.lp.mcaMerge != nil {
		k.lp.mcaMerge(acc, a, b, i, mrow)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bi := bLo
			// Enumerate the mask row; advance the B row iterator past smaller
			// columns (Algorithm 3 lines 4-8).
			for idx, j := range mrow {
				for bi < bHi && b.Col[bi] < j {
					bi++
				}
				if bi >= bHi {
					break
				}
				if b.Col[bi] == j {
					if acc.State(Index(idx)) == accum.Set {
						acc.SetValue(Index(idx), ops.Add(acc.Value(Index(idx)), ops.Mul(av, b.Val[bi])))
					} else {
						acc.Store(Index(idx), ops.Mul(av, b.Val[bi]))
					}
				}
			}
		}
	}
	var cnt Index
	for idx, j := range mrow {
		if v, ok := acc.Remove(Index(idx)); ok {
			col[cnt] = j
			val[cnt] = v
			cnt++
		}
	}
	return cnt
}

func (k *mcaKernel[T, O]) symbolicRow(i Index) Index {
	mrow := k.m.Row(i)
	if len(mrow) == 0 {
		return 0
	}
	acc, a, b := k.acc, k.a, k.b
	acc.Prepare(len(mrow))
	if p := k.probe; p != nil {
		p.begin(i)
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			for bi := b.RowPtr[kcol]; bi < b.RowPtr[kcol+1]; bi++ {
				j := b.Col[bi]
				if p.contains(j) {
					acc.Mark(p.pos(j))
				}
			}
		}
		p.end()
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bi := bLo
			for idx, j := range mrow {
				for bi < bHi && b.Col[bi] < j {
					bi++
				}
				if bi >= bHi {
					break
				}
				if b.Col[bi] == j {
					acc.Mark(Index(idx))
				}
			}
		}
	}
	var cnt Index
	for idx := range mrow {
		if acc.RemoveMark(Index(idx)) {
			cnt++
		}
	}
	return cnt
}
