package core

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// hashKernel implements the Hash masked SpGEVM (§5.3): per row, the hash
// table is sized for exactly nnz(mask row) keys at load factor 0.25, mask
// entries are pre-inserted as Allowed, and the scatter probes instead of
// indexing a dense array. Gather walks the mask row (stable, sorted output).
//
// Under the bitmap or dense-run mask representations the table holds *only
// output* entries: membership is answered by the probe, so nothing is
// pre-inserted and the table is sized by the row's actual output instead of
// its mask row — on dense masks with sparse products this replaces a
// 4·nnz(mask row) table build with an O(nnz(mask row)) bit scatter (or, for
// contiguous rows, nothing at all). Normal and complemented masks share the
// probe path: complement just flips the membership test, so no explicit
// complement is ever materialized.
//
// Generic over the operator type O: named operators inline ops.Mul/ops.Add
// into the probe loops; semiring.FuncOps runs the identical loops through
// the func fields (see msaKernel).
type hashKernel[T any, O semiring.Ops[T]] struct {
	m     *matrix.Pattern
	a, b  *matrix.CSR[T]
	ops   O
	lp    opLoops[T] // monomorphized scatter loops; zero → generic ops loops
	comp  bool
	acc   *accum.Hash[T]
	probe *maskProbe // nil for the CSR (mask-preinserted) path
	keys  []Index    // probe/complement-mode gather scratch
	vals  []T
}

func newHashKernelFactory[T any, O semiring.Ops[T]](m *matrix.Pattern, a, b *matrix.CSR[T], ops O, lp opLoops[T], comp bool, rep MaskRep, ws *Workspaces) func() kernel[T] {
	return func() kernel[T] {
		k := &hashKernel[T, O]{m: m, a: a, b: b, ops: ops, lp: lp, comp: comp,
			acc: wsGetHash[T](ws, 16)}
		if rep == RepBitmap || rep == RepDense {
			k.probe = newMaskProbe(m, rep, ws)
		}
		return k
	}
}

func (k *hashKernel[T, O]) recycle(ws *Workspaces) {
	wsPutHash(ws, k.acc)
	k.acc = nil
	if k.probe != nil {
		k.probe.recycle(ws)
		k.probe = nil
	}
}

// numericRowProbe serves both mask modes under a probe-based representation:
// only entries that pass the membership test enter the table.
func (k *hashKernel[T, O]) numericRowProbe(i Index, col []Index, val []T) Index {
	if !k.comp && len(k.m.Row(i)) == 0 {
		return 0
	}
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	p := k.probe
	p.begin(i)
	acc.PrepareC(16)
	if k.lp.hashProbe != nil {
		k.lp.hashProbe(acc, p, a, b, i, k.comp)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for bi, j := range bCol {
				if p.contains(j) == k.comp { // masked out
					continue
				}
				slot, st := acc.ProbeC(j)
				if st == accum.NotAllowed {
					acc.InsertNewAtC(slot, j, ops.Mul(av, bVal[bi]))
				} else {
					acc.SetValueAt(slot, ops.Add(acc.ValueAt(slot), ops.Mul(av, bVal[bi])))
				}
			}
		}
	}
	p.end()
	k.keys, k.vals = k.keys[:0], k.vals[:0]
	k.keys, k.vals = acc.GatherC(k.keys, k.vals)
	sortKeyVals(k.keys, k.vals)
	copy(col, k.keys)
	copy(val, k.vals)
	return Index(len(k.keys))
}

// symbolicRowProbe is the symbolic twin of numericRowProbe.
func (k *hashKernel[T, O]) symbolicRowProbe(i Index) Index {
	if !k.comp && len(k.m.Row(i)) == 0 {
		return 0
	}
	acc, a, b := k.acc, k.a, k.b
	p := k.probe
	p.begin(i)
	acc.PrepareC(16)
	var cnt Index
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		for bi := b.RowPtr[kcol]; bi < b.RowPtr[kcol+1]; bi++ {
			j := b.Col[bi]
			if p.contains(j) == k.comp {
				continue
			}
			slot, st := acc.ProbeC(j)
			if st == accum.NotAllowed {
				acc.MarkNewAtC(slot, j)
				cnt++
			}
		}
	}
	p.end()
	return cnt
}

func (k *hashKernel[T, O]) numericRow(i Index, col []Index, val []T) Index {
	if k.probe != nil {
		return k.numericRowProbe(i, col, val)
	}
	if k.comp {
		return k.numericRowC(i, col, val)
	}
	mrow := k.m.Row(i)
	if len(mrow) == 0 {
		return 0
	}
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	acc.Prepare(len(mrow))
	for _, j := range mrow {
		acc.SetAllowed(j)
	}
	if k.lp.hash != nil {
		k.lp.hash(acc, a, b, i)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for p, j := range bCol {
				slot, st := acc.Probe(j)
				switch st {
				case accum.Allowed:
					acc.StoreAt(slot, ops.Mul(av, bVal[p]))
				case accum.Set:
					acc.SetValueAt(slot, ops.Add(acc.ValueAt(slot), ops.Mul(av, bVal[p])))
				}
			}
		}
	}
	var cnt Index
	for _, j := range mrow {
		if v, ok := acc.Lookup(j); ok {
			col[cnt] = j
			val[cnt] = v
			cnt++
		}
	}
	return cnt
}

func (k *hashKernel[T, O]) numericRowC(i Index, col []Index, val []T) Index {
	mrow := k.m.Row(i)
	acc, a, b, ops := k.acc, k.a, k.b, k.ops
	acc.PrepareC(len(mrow) + 8)
	for _, j := range mrow {
		acc.SetNotAllowed(j)
	}
	if k.lp.hashC != nil {
		k.lp.hashC(acc, a, b, i)
	} else {
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			av := a.Val[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bCol := b.Col[bLo:bHi]
			bVal := b.Val[bLo:bHi]
			bVal = bVal[:len(bCol)]
			for p, j := range bCol {
				slot, st := acc.ProbeC(j)
				switch st {
				case accum.NotAllowed: // absent: allowed under complement
					acc.InsertNewAtC(slot, j, ops.Mul(av, bVal[p]))
				case accum.Set:
					acc.SetValueAt(slot, ops.Add(acc.ValueAt(slot), ops.Mul(av, bVal[p])))
				}
			}
		}
	}
	k.keys, k.vals = k.keys[:0], k.vals[:0]
	k.keys, k.vals = acc.GatherC(k.keys, k.vals)
	sortKeyVals(k.keys, k.vals)
	copy(col, k.keys)
	copy(val, k.vals)
	return Index(len(k.keys))
}

func (k *hashKernel[T, O]) symbolicRow(i Index) Index {
	if k.probe != nil {
		return k.symbolicRowProbe(i)
	}
	mrow := k.m.Row(i)
	acc, a, b := k.acc, k.a, k.b
	if k.comp {
		acc.PrepareC(len(mrow) + 8)
		for _, j := range mrow {
			acc.SetNotAllowed(j)
		}
		var cnt Index
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
				j := b.Col[p]
				slot, st := acc.ProbeC(j)
				if st == accum.NotAllowed {
					acc.MarkNewAtC(slot, j)
					cnt++
				}
			}
		}
		return cnt
	}
	if len(mrow) == 0 {
		return 0
	}
	acc.Prepare(len(mrow))
	for _, j := range mrow {
		acc.SetAllowed(j)
	}
	var cnt Index
	for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
		kcol := a.Col[kk]
		for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
			j := b.Col[p]
			slot, st := acc.Probe(j)
			if st == accum.Allowed {
				acc.MarkAt(slot)
				cnt++
			}
		}
	}
	return cnt
}

// sortKeyVals sorts parallel key/value slices by key ascending (insertion
// sort for short rows, heapsort-style fallback via repeated sifting is not
// needed: rows are short relative to n; use a simple binary-insertion /
// shell hybrid for robustness).
func sortKeyVals[T any](keys []Index, vals []T) {
	n := len(keys)
	if n < 2 {
		return
	}
	// Shell sort with Ciura-like gaps: in-place, no allocation, fine for the
	// per-row sizes seen here.
	gaps := [...]int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			kI, vI := keys[i], vals[i]
			j := i
			for j >= gap && keys[j-gap] > kI {
				keys[j], vals[j] = keys[j-gap], vals[j-gap]
				j -= gap
			}
			keys[j], vals[j] = kI, vI
		}
	}
}
