package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// randFloatCSR is randCSR with irrational-ish values, so any change in
// floating-point accumulation order changes result bits — the signal the
// bit-identity tests below rely on.
func randFloatCSR(r *rand.Rand, m, n Index, density float64) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: m, NCols: n}
	target := int(density * float64(m) * float64(n))
	for e := 0; e < target; e++ {
		coo.Row = append(coo.Row, Index(r.Intn(int(m))))
		coo.Col = append(coo.Col, Index(r.Intn(int(n))))
		coo.Val = append(coo.Val, r.Float64()*2-1)
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
}

// runMask builds a mask whose rows are contiguous runs — the dense-row
// direct-index shape — with random bounds per row (some rows empty).
func runMask(r *rand.Rand, m, n Index) *matrix.Pattern {
	coo := &matrix.COO[float64]{NRows: m, NCols: n}
	for i := Index(0); i < m; i++ {
		if r.Intn(8) == 0 {
			continue // empty row
		}
		lo := Index(r.Intn(int(n)))
		hi := lo + Index(1+r.Intn(int(n-lo)))
		for j := lo; j < hi; j++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 }).Pattern()
}

// TestMaskRepEquivalence is the representation-equivalence property test:
// for every variant, phase, mask mode and mask shape, the bitmap and dense
// representations must produce output bit-identical to the CSR probe (same
// pattern, same value bits — accumulation order is part of the contract).
func TestMaskRepEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sr := semiring.Arithmetic()
	intSR := semiring.Arithmetic()
	type maskGen func(r *rand.Rand, m, n Index) *matrix.Pattern
	sparseMask := func(r *rand.Rand, m, n Index) *matrix.Pattern {
		return randFloatCSR(r, m, n, 0.1).Pattern()
	}
	denseMask := func(r *rand.Rand, m, n Index) *matrix.Pattern {
		return randFloatCSR(r, m, n, 0.6).Pattern()
	}
	shapes := []struct {
		name    string
		m, k, n Index
		mask    maskGen
	}{
		{"sparse", 40, 30, 50, sparseMask},
		{"dense", 32, 24, 48, denseMask},
		{"runs", 33, 29, 41, runMask},
		{"tiny", 3, 2, 2, denseMask},
	}
	reps := []MaskRep{RepCSR, RepBitmap, RepDense}
	for _, sh := range shapes {
		a := randFloatCSR(r, sh.m, sh.k, 0.25)
		b := randFloatCSR(r, sh.k, sh.n, 0.25)
		mask := sh.mask(r, sh.m, sh.n)
		aInt := randCSR(r, sh.m, sh.k, 0.25)
		bInt := randCSR(r, sh.k, sh.n, 0.25)
		for _, v := range AllVariants() {
			for _, comp := range []bool{false, true} {
				if comp && !v.SupportsComplement() {
					continue
				}
				// Integer-valued correctness oracle: every representation
				// must match the sequential reference exactly.
				wantInt := Reference(mask, aInt, bInt, intSR, comp)
				var baseline *matrix.CSR[float64]
				for _, rep := range reps {
					opt := Options{Threads: 2, Grain: 3, Complement: comp, MaskRep: rep}
					gotInt, err := MaskedSpGEMM(v, mask, aInt, bInt, intSR, opt)
					if err != nil {
						t.Fatalf("%s %s comp=%v rep=%s: %v", sh.name, v.Name(), comp, rep, err)
					}
					if !matrix.Equal(gotInt, wantInt, eqF) {
						t.Fatalf("%s %s comp=%v rep=%s: mismatch vs reference", sh.name, v.Name(), comp, rep)
					}
					// Float-valued bit-identity across representations.
					got, err := MaskedSpGEMM(v, mask, a, b, sr, opt)
					if err != nil {
						t.Fatalf("%s %s comp=%v rep=%s: %v", sh.name, v.Name(), comp, rep, err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("%s %s comp=%v rep=%s: invalid: %v", sh.name, v.Name(), comp, rep, err)
					}
					if baseline == nil {
						baseline = got
						continue
					}
					if !matrix.Equal(got, baseline, eqF) {
						t.Fatalf("%s %s comp=%v rep=%s: not bit-identical to %s", sh.name, v.Name(), comp, rep, reps[0])
					}
				}
				baseline = nil
			}
		}
	}
}

// TestMaskRepPooledEquivalence re-runs a dense-mask product on shared
// Workspaces (pooled bitmap words) and checks results stay bit-identical to
// pool-free runs across repetitions.
func TestMaskRepPooledEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sr := semiring.Arithmetic()
	a := randFloatCSR(r, 48, 40, 0.3)
	b := randFloatCSR(r, 40, 56, 0.3)
	mask := randFloatCSR(r, 48, 56, 0.7).Pattern()
	ws := NewWorkspaces()
	for _, v := range []Variant{{Hash, OnePhase}, {MCA, TwoPhase}, {Heap, OnePhase}} {
		want, err := MaskedSpGEMM(v, mask, a, b, sr, Options{MaskRep: RepBitmap})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := MaskedSpGEMM(v, mask, a, b, sr,
				Options{Threads: 3, MaskRep: RepBitmap, Workspaces: ws})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Fatalf("%s rep %d: pooled bitmap result differs", v.Name(), rep)
			}
		}
	}
}

func TestMaskRepNamesAndLookup(t *testing.T) {
	for _, rep := range []MaskRep{RepAuto, RepCSR, RepBitmap, RepDense} {
		got, err := MaskRepByName(rep.String())
		if err != nil || got != rep {
			t.Fatalf("MaskRepByName(%q) = %v, %v", rep.String(), got, err)
		}
	}
	if _, err := MaskRepByName("nope"); err == nil {
		t.Fatal("expected error for unknown representation")
	}
	if MaskRep(200).String() == "" {
		t.Fatal("fallback String must be non-empty")
	}
}

func TestSupportedMaskRepDemotions(t *testing.T) {
	if got := SupportedMaskRep(MSA, RepBitmap, false); got != RepCSR {
		t.Fatalf("MSA+bitmap = %s, want csr (dense state array already direct-indexed)", got)
	}
	if got := SupportedMaskRep(MSA, RepDense, false); got != RepDense {
		t.Fatalf("MSA+dense = %s, want dense", got)
	}
	if got := SupportedMaskRep(Inner, RepBitmap, false); got != RepCSR {
		t.Fatalf("Inner normal+bitmap = %s, want csr (mask drives iteration)", got)
	}
	if got := SupportedMaskRep(Inner, RepBitmap, true); got != RepBitmap {
		t.Fatalf("Inner complement+bitmap = %s, want bitmap", got)
	}
	if got := SupportedMaskRep(Hash, RepBitmap, false); got != RepBitmap {
		t.Fatalf("Hash+bitmap = %s, want bitmap", got)
	}
}

func TestAutoMaskRepRules(t *testing.T) {
	// Dense flat mask rows with multi-entry A rows: MCA takes the bitmap.
	if got := AutoMaskRep(MCA, false, 100, 100*64, 100*8, 0, 0); got != RepBitmap {
		t.Fatalf("MCA dense = %s, want bitmap", got)
	}
	// Small mask rows: everyone stays on CSR.
	if got := AutoMaskRep(MCA, false, 100, 100*4, 100*8, 0, 0); got != RepCSR {
		t.Fatalf("MCA sparse = %s, want csr", got)
	}
	// Heap never auto-selects the bitmap (measured regression).
	if got := AutoMaskRep(Heap, false, 100, 100*512, 100*8, 0, 0); got != RepCSR {
		t.Fatalf("Heap dense = %s, want csr", got)
	}
	// Hash needs longer rows than MCA.
	if got := AutoMaskRep(Hash, false, 100, 100*64, 100*2, 0, 0); got != RepBitmap {
		t.Fatalf("Hash dense = %s, want bitmap", got)
	}
	// Contiguous-run masks select the dense direct index.
	if got := AutoMaskRep(MSA, false, 100, 100*16, 100*2, 96, 100); got != RepDense {
		t.Fatalf("MSA runs = %s, want dense", got)
	}
	// Empty masks are trivially CSR.
	if got := AutoMaskRep(Hash, false, 100, 0, 100, 0, 0); got != RepCSR {
		t.Fatalf("empty mask = %s, want csr", got)
	}
}

func TestAdoptMaskRepHint(t *testing.T) {
	if got := AdoptMaskRepHint(Hash, RepBitmap, false); got != RepBitmap {
		t.Fatalf("Hash hint = %s, want bitmap", got)
	}
	if got := AdoptMaskRepHint(Heap, RepBitmap, false); got != RepAuto {
		t.Fatalf("Heap hint = %s, want auto", got)
	}
	if got := AdoptMaskRepHint(Inner, RepBitmap, true); got != RepBitmap {
		t.Fatalf("Inner complement hint = %s, want bitmap", got)
	}
	if got := AdoptMaskRepHint(MCA, RepAuto, false); got != RepAuto {
		t.Fatalf("pass-through = %s, want auto", got)
	}
}

// TestDensePinOnUnsortedMask: MSA and Hash legally accept unsorted mask
// rows, so a pinned RepDense must be demoted there (its O(1) contiguity
// check and sorted-row fallback probe would silently corrupt output) and
// results must match the CSR probe exactly.
func TestDensePinOnUnsortedMask(t *testing.T) {
	// Hand-built mask with an unsorted row [5,2,9] that RowRun would treat
	// as a non-run and the sorted fallback would probe incorrectly.
	mask := &matrix.Pattern{
		NRows: 2, NCols: 12,
		RowPtr: []Index{0, 3, 5},
		Col:    []Index{5, 2, 9, 1, 3},
	}
	r := rand.New(rand.NewSource(3))
	a := randCSR(r, 2, 4, 0.9)
	b := randCSR(r, 4, 12, 0.9)
	sr := semiring.Arithmetic()
	for _, alg := range []Algorithm{MSA, Hash} {
		v := Variant{alg, OnePhase}
		want, err := MaskedSpGEMM(v, mask, a, b, sr, Options{MaskRep: RepCSR})
		if err != nil {
			t.Fatal(err)
		}
		// RepBitmap matters for Hash: its sort-based gather would reorder
		// rows relative to the CSR path's mask-order gather.
		for _, pin := range []MaskRep{RepDense, RepBitmap} {
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{MaskRep: pin})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Fatalf("%s: %s pin on unsorted mask differs from CSR probe", v.Name(), pin)
			}
		}
	}
}

// TestBlockedMixedReps runs a blocked plan whose blocks pin different
// representations and checks bit-identity with a uniform run.
func TestBlockedMixedReps(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sr := semiring.Arithmetic()
	a := randFloatCSR(r, 60, 40, 0.3)
	b := randFloatCSR(r, 40, 50, 0.3)
	mask := randFloatCSR(r, 60, 50, 0.5).Pattern()
	want, err := MaskedSpGEMM(Variant{Hash, OnePhase}, mask, a, b, sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := []ExecBlock{
		{Lo: 0, Hi: 20, Alg: Hash, Rep: RepCSR},
		{Lo: 20, Hi: 40, Alg: Hash, Rep: RepBitmap},
		{Lo: 40, Hi: 60, Alg: Hash, Rep: RepDense},
	}
	got, err := MaskedSpGEMMBlocked(OnePhase, blocks, mask, a, b, sr, Options{Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, eqF) {
		t.Fatal("mixed-representation blocked run differs from uniform run")
	}
}
