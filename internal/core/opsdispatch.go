package core

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Operator-path labels reported by OpsMode and surfaced through the
// planner's Plan.Ops / Explain output.
const (
	// OpsInlined marks the monomorphized kernel path: the semiring carries
	// one of the named zero-size operator types, so Add/Mul inline into the
	// accumulator loops.
	OpsInlined = "inlined"
	// OpsFuncPtr marks the fallback path: a custom semiring computes through
	// the Semiring func fields (one indirect call per Add and per Mul).
	OpsFuncPtr = "funcptr"
)

// funcOps wraps a semiring's func fields as a semiring.Ops value, the
// fallback operator for custom semirings. The generic kernels instantiated
// with it are the same code the named operators run, so the two paths are
// bit-identical.
func funcOps[T any](sr semiring.Semiring[T]) semiring.FuncOps[T] {
	return semiring.FuncOps[T]{AddFn: sr.Add, MulFn: sr.Mul, ZeroV: sr.Zero}
}

// opsInlined reports whether ops is one of the named operator types the
// specialized kernel instantiations cover.
func opsInlined(ops any) bool {
	switch ops.(type) {
	case semiring.PlusTimesF64, semiring.PlusTimesI64,
		semiring.PlusPairI64, semiring.PlusPairF64,
		semiring.OrAndBool, semiring.MinPlusF64,
		semiring.PlusSecondF64, semiring.PlusFirstF64,
		semiring.MaxTimesF64:
		return true
	}
	return false
}

// OpsMode reports which operator path the kernels take for sr: OpsInlined
// when sr.Ops is a recognized named operator type (every constructor in
// repro/internal/semiring), OpsFuncPtr for custom semirings built from bare
// func fields. Layered callers (planner, masked session, bench) use this to
// label executions.
func OpsMode[T any](sr semiring.Semiring[T]) string {
	if opsInlined(sr.Ops) {
		return OpsInlined
	}
	return OpsFuncPtr
}

// opsKernelFactory builds the per-worker kernel factory for one algorithm
// family with a concrete operator type O and the matching monomorphized
// loop set lp (zero for the funcptr fallback). The Heap families take no
// loop set: their multiply-add sits under a heap pop, so there is no inner
// sweep to monomorphize (see opLoops). rep must already be resolved via
// SupportedMaskRep. bcsc may be nil except that Inner then transposes b.
func opsKernelFactory[T any, O semiring.Ops[T]](alg Algorithm, rep MaskRep, m *matrix.Pattern, a, b *matrix.CSR[T], bcsc *matrix.CSC[T], ops O, lp opLoops[T], complement bool, ws *Workspaces) (func() kernel[T], error) {
	switch alg {
	case MSA:
		return newMSAKernelFactory(m, a, b, ops, lp, complement, rep, ws), nil
	case Hash:
		return newHashKernelFactory(m, a, b, ops, lp, complement, rep, ws), nil
	case MCA:
		return newMCAKernelFactory(m, a, b, ops, lp, rep, ws), nil
	case Heap:
		return newHeapKernelFactory(m, a, b, ops, complement, 1, rep, ws), nil
	case HeapDot:
		return newHeapKernelFactory(m, a, b, ops, complement, nInspectAll, rep, ws), nil
	case Inner:
		if bcsc == nil {
			bcsc = matrix.ToCSC(b)
		}
		return newInnerKernelFactory(m, a, bcsc, ops, lp, complement, rep, ws), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %d", alg)
}

// specializedFactory returns the kernel factory monomorphized for the named
// operator type carried by sr.Ops, or nil when sr carries no recognized
// operator (a custom semiring) — the caller then falls back to the FuncOps
// instantiation. One case per named operator: each case binds a concrete
// (element, operator) type pair and the matching generated loop set from
// loops_gen.go, whose Add/Mul are spelled out as direct expressions — the
// form the compiler actually monomorphizes (see opLoops).
func specializedFactory[T any](alg Algorithm, rep MaskRep, m *matrix.Pattern, a, b *matrix.CSR[T], bcsc *matrix.CSC[T], sr semiring.Semiring[T], complement bool, ws *Workspaces) func() kernel[T] {
	switch ops := any(sr.Ops).(type) {
	case semiring.PlusTimesF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusTimes[float64](), complement, ws)
	case semiring.PlusTimesI64:
		return monoFactory[int64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusTimes[int64](), complement, ws)
	case semiring.PlusPairI64:
		return monoFactory[int64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusPair[int64](), complement, ws)
	case semiring.PlusPairF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusPair[float64](), complement, ws)
	case semiring.OrAndBool:
		return monoFactory[bool](alg, rep, m, a, b, bcsc, ops, opLoopsOrAnd[bool](), complement, ws)
	case semiring.MinPlusF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsMinPlus[float64](), complement, ws)
	case semiring.PlusSecondF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusSecond[float64](), complement, ws)
	case semiring.PlusFirstF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsPlusFirst[float64](), complement, ws)
	case semiring.MaxTimesF64:
		return monoFactory[float64](alg, rep, m, a, b, bcsc, ops, opLoopsMaxTimes[float64](), complement, ws)
	}
	return nil
}

// monoFactory instantiates the generic kernels for concrete element type U
// and operator type O, then adapts the factory back to the caller's type
// parameter T. The casts are dynamic and succeed exactly when T and U are
// the same type — guaranteed already by the Ops[T] field's type, but
// checked anyway so a mismatch degrades to the funcptr fallback instead of
// panicking.
func monoFactory[U any, O semiring.Ops[U], T any](alg Algorithm, rep MaskRep, m *matrix.Pattern, a, b *matrix.CSR[T], bcsc *matrix.CSC[T], ops O, lp opLoops[U], complement bool, ws *Workspaces) func() kernel[T] {
	au, ok := any(a).(*matrix.CSR[U])
	if !ok {
		return nil
	}
	bu, ok := any(b).(*matrix.CSR[U])
	if !ok {
		return nil
	}
	var bcscU *matrix.CSC[U]
	if bcsc != nil {
		if bcscU, ok = any(bcsc).(*matrix.CSC[U]); !ok {
			return nil
		}
	}
	f, err := opsKernelFactory(alg, rep, m, au, bu, bcscU, ops, lp, complement, ws)
	if err != nil {
		return nil
	}
	return func() kernel[T] {
		// U == T at runtime (the operand casts above proved it), so the
		// kernel[U] the specialized factory builds is a kernel[T].
		return any(f()).(kernel[T])
	}
}
