// Package core implements the paper's masked sparse matrix-matrix product
// algorithms: C = M .* (A·B) (and the complemented form C = ¬M .* (A·B))
// on an arbitrary semiring.
//
// Six algorithm families are provided, matching §8's evaluation:
//
//	MSA     push-based Gustavson with the Masked Sparse Accumulator (§5.2)
//	Hash    push-based with the hash accumulator (§5.3)
//	MCA     push-based with the Mask Compressed Accumulator (§5.4, novel)
//	Heap    push-based multi-way merge, NInspect=1 (§5.5)
//	HeapDot push-based multi-way merge, NInspect=∞ (§5.5)
//	Inner   pull-based dot products driven by the mask (§4.1)
//
// Every family runs either one-phase (allocate from the mask-derived upper
// bound, multiply once, compact) or two-phase (symbolic pass computes the
// output pattern size, then an exact-allocation numeric pass), reproducing
// the §6 study. All kernels are row-parallel over goroutines with dynamic
// chunk scheduling; workers own reusable accumulator scratch so no per-row
// allocation happens in steady state.
//
// Requirements: all kernels assume duplicate-free rows. MCA, Heap, HeapDot
// and Inner additionally require rows (and, for Inner, CSC columns) sorted
// by index, which every builder in internal/matrix guarantees.
package core

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Algorithm selects the masked SpGEMM algorithm family.
type Algorithm uint8

// Algorithm families (§8 naming).
const (
	MSA Algorithm = iota
	Hash
	MCA
	Heap
	HeapDot
	Inner
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MSA:
		return "MSA"
	case Hash:
		return "Hash"
	case MCA:
		return "MCA"
	case Heap:
		return "Heap"
	case HeapDot:
		return "HeapDot"
	case Inner:
		return "Inner"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Phase selects one-phase or two-phase execution (§6).
type Phase uint8

// Execution phases.
const (
	OnePhase Phase = iota
	TwoPhase
)

// String returns the paper's suffix for the phase.
func (p Phase) String() string {
	if p == TwoPhase {
		return "2P"
	}
	return "1P"
}

// Options configures a masked SpGEMM call.
type Options struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
	// Grain is the number of rows a worker claims per scheduling step;
	// 0 means parallel.DefaultGrain.
	Grain int
	// Complement computes C = ¬M .* (A·B): entries present in M are masked
	// *out*. MCA does not support complemented masks (§8.4) and returns an
	// error; Heap/HeapDot run with NInspect=0 under complement (§5.5).
	Complement bool
}

// Variant is a named (algorithm, phase) pair, the unit the paper benchmarks
// (e.g. "MSA-1P").
type Variant struct {
	Alg   Algorithm
	Phase Phase
}

// Name returns the paper's label, e.g. "Hash-2P".
func (v Variant) Name() string { return v.Alg.String() + "-" + v.Phase.String() }

// SupportsComplement reports whether the variant can run with a
// complemented mask.
func (v Variant) SupportsComplement() bool { return v.Alg != MCA }

// AllVariants returns the 12 variants evaluated in §8 (6 algorithms × 1P/2P)
// in the paper's presentation order.
func AllVariants() []Variant {
	algs := []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner}
	out := make([]Variant, 0, len(algs)*2)
	for _, a := range algs {
		out = append(out, Variant{a, OnePhase}, Variant{a, TwoPhase})
	}
	return out
}

// VariantByName returns the variant with the given paper label ("MSA-1P",
// "Inner-2P", ...).
func VariantByName(name string) (Variant, error) {
	for _, v := range AllVariants() {
		if v.Name() == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("core: unknown variant %q", name)
}

// MaskedSpGEMM computes C = M .* (A·B) (or the complement form per opt)
// over semiring sr using the given variant. M must be m-by-n, A m-by-k and
// B k-by-n. Output rows are sorted.
func MaskedSpGEMM[T any](v Variant, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	if opt.Complement && !v.SupportsComplement() {
		return nil, fmt.Errorf("core: %s does not support complemented masks", v.Alg)
	}
	var factory func() kernel[T]
	switch v.Alg {
	case MSA:
		factory = newMSAKernelFactory(m, a, b, sr, opt.Complement)
	case Hash:
		factory = newHashKernelFactory(m, a, b, sr, opt.Complement)
	case MCA:
		factory = newMCAKernelFactory(m, a, b, sr)
	case Heap:
		factory = newHeapKernelFactory(m, a, b, sr, opt.Complement, 1)
	case HeapDot:
		factory = newHeapKernelFactory(m, a, b, sr, opt.Complement, nInspectAll)
	case Inner:
		bcsc := matrix.ToCSC(b)
		factory = newInnerKernelFactory(m, a, bcsc, sr, opt.Complement)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", v.Alg)
	}
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(v.Phase, m, b.NCols, bound, factory, opt), nil
}

// MaskedDotCSC runs the pull-based Inner algorithm with a pre-transposed B
// (CSC), excluding the transpose cost from measurement; the paper assumes B
// is stored column-major for the dot algorithm (§4.1).
func MaskedDotCSC[T any](phase Phase, m *matrix.Pattern, a *matrix.CSR[T], bcsc *matrix.CSC[T], sr semiring.Semiring[T], opt Options) (*matrix.CSR[T], error) {
	if m.NRows != a.NRows || m.NCols != bcsc.NCols || a.NCols != bcsc.NRows {
		return nil, fmt.Errorf("core: dimension mismatch M(%dx%d) A(%dx%d) B(%dx%d)",
			m.NRows, m.NCols, a.NRows, a.NCols, bcsc.NRows, bcsc.NCols)
	}
	factory := newInnerKernelFactory(m, a, bcsc, sr, opt.Complement)
	bound := innerBound(m, bcsc.NCols, opt.Complement)
	return runDriver(phase, m, bcsc.NCols, bound, factory, opt), nil
}

func checkDims[T any](m *matrix.Pattern, a, b *matrix.CSR[T]) error {
	if m.NRows != a.NRows || m.NCols != b.NCols || a.NCols != b.NRows {
		return fmt.Errorf("core: dimension mismatch M(%dx%d) A(%dx%d) B(%dx%d)",
			m.NRows, m.NCols, a.NRows, a.NCols, b.NRows, b.NCols)
	}
	return nil
}

// allocBound returns the one-phase per-row allocation upper bound (§6): the
// mask row size for normal masks — the output can never exceed the mask —
// and min(ncols, Σ_k nnz(B_k*)) under complement.
func allocBound[T any](m *matrix.Pattern, a, b *matrix.CSR[T], complement bool) func(i Index) int64 {
	if !complement {
		return func(i Index) int64 { return int64(m.RowNNZ(i)) }
	}
	n := int64(b.NCols)
	return func(i Index) int64 {
		var fl int64
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			k := a.Col[kk]
			fl += int64(b.RowPtr[k+1] - b.RowPtr[k])
			if fl >= n {
				return n
			}
		}
		return fl
	}
}

// innerBound is allocBound for the CSC entry point.
func innerBound(m *matrix.Pattern, ncols Index, complement bool) func(i Index) int64 {
	if !complement {
		return func(i Index) int64 { return int64(m.RowNNZ(i)) }
	}
	n := int64(ncols)
	return func(i Index) int64 { return n - int64(m.RowNNZ(i)) }
}

// MaskedSpGEMMHeapNInspect runs the Heap algorithm with an explicit
// NInspect setting, exposing the §5.5 knob for the ablation benchmark
// (NInspect 0, 1 and nInspectAll correspond to blind push, Heap, HeapDot).
func MaskedSpGEMMHeapNInspect[T any](phase Phase, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], nInspect int32, opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	factory := newHeapKernelFactory(m, a, b, sr, opt.Complement, nInspect)
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(phase, m, b.NCols, bound, factory, opt), nil
}

// MaskedSpGEMMHashLoad runs the Hash algorithm with an explicit table load
// factor num/den (the paper fixes 1/4), for the ablation benchmark.
func MaskedSpGEMMHashLoad[T any](phase Phase, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], num, den int, opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	inner := newHashKernelFactory(m, a, b, sr, opt.Complement)
	factory := func() kernel[T] {
		k := inner().(*hashKernel[T])
		k.acc.SetLoadFactor(num, den)
		return k
	}
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(phase, m, b.NCols, bound, factory, opt), nil
}

// Flops returns flops(A·B) = Σ_{A_ik ≠ 0} nnz(B_k*), the number of
// multiply operations of the unmasked product — the work metric used by the
// paper's GFLOPS plots (one multiply plus one add per unit, so reported
// GFLOPS double this count, matching the SpGEMM convention of 2·flops).
func Flops[T any](a, b *matrix.CSR[T], threads int) int64 {
	partial := make([]int64, parallel.Threads(threads))
	parallel.ForWorkers(int(a.NRows), threads, 256, func(id int, claim func() (int, int, bool)) {
		var sum int64
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
					k := a.Col[kk]
					sum += int64(b.RowPtr[k+1] - b.RowPtr[k])
				}
			}
		}
		partial[id] += sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}
