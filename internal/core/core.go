// Package core implements the paper's masked sparse matrix-matrix product
// algorithms: C = M .* (A·B) (and the complemented form C = ¬M .* (A·B))
// on an arbitrary semiring.
//
// Six algorithm families are provided, matching §8's evaluation:
//
//	MSA     push-based Gustavson with the Masked Sparse Accumulator (§5.2)
//	Hash    push-based with the hash accumulator (§5.3)
//	MCA     push-based with the Mask Compressed Accumulator (§5.4, novel)
//	Heap    push-based multi-way merge, NInspect=1 (§5.5)
//	HeapDot push-based multi-way merge, NInspect=∞ (§5.5)
//	Inner   pull-based dot products driven by the mask (§4.1)
//
// Every family runs either one-phase (allocate from the mask-derived upper
// bound, multiply once, compact) or two-phase (symbolic pass computes the
// output pattern size, then an exact-allocation numeric pass), reproducing
// the §6 study. All kernels are row-parallel over goroutines with dynamic
// chunk scheduling; workers own reusable accumulator scratch so no per-row
// allocation happens in steady state.
//
// Two orthogonal execution choices layer on top of the (algorithm, phase)
// variant grid:
//
//   - MaskedSpGEMMBlocked runs a *mixed* plan — each contiguous row block
//     executes its own algorithm family under one global phase, with
//     bit-identical results to any single-variant run. The adaptive planner
//     (repro/internal/planner) emits such plans from the §8 cost model.
//   - MaskRep selects how kernels probe mask-row membership: the sorted-CSR
//     probe, a pooled per-worker bitmap, or direct indexing of contiguous
//     dense rows — per block, chosen by the planner or pinned via
//     Options.MaskRep. Complement is native to every representation, so no
//     kernel materializes an explicit complement pattern.
//
// Requirements: all kernels assume duplicate-free rows. MCA, Heap, HeapDot
// and Inner additionally require rows (and, for Inner, CSC columns) sorted
// by index, which every builder in internal/matrix guarantees; the dense-run
// mask representation's O(1) row-contiguity check is exact only on sorted
// mask rows.
package core

import (
	"context"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Algorithm selects the masked SpGEMM algorithm family.
type Algorithm uint8

// Algorithm families (§8 naming).
const (
	MSA Algorithm = iota
	Hash
	MCA
	Heap
	HeapDot
	Inner
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MSA:
		return "MSA"
	case Hash:
		return "Hash"
	case MCA:
		return "MCA"
	case Heap:
		return "Heap"
	case HeapDot:
		return "HeapDot"
	case Inner:
		return "Inner"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Phase selects one-phase or two-phase execution (§6).
type Phase uint8

// Execution phases.
const (
	OnePhase Phase = iota
	TwoPhase
)

// String returns the paper's suffix for the phase.
func (p Phase) String() string {
	if p == TwoPhase {
		return "2P"
	}
	return "1P"
}

// Options configures a masked SpGEMM call.
type Options struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
	// ThreadsFn, if non-nil, supplies the worker count dynamically and wins
	// over Threads: the drivers consult it at every parallel stage of a
	// call, so a serving arbiter (parallel.Arbiter) can grow a running
	// request's share — released budget rebalanced to stragglers — and have
	// the growth take effect at the request's next stage. Scheduling never
	// changes results, so a mid-call change of worker count is safe.
	ThreadsFn func() int
	// Grain is the number of rows a worker claims per scheduling step;
	// 0 means parallel.DefaultGrain.
	Grain int
	// Complement computes C = ¬M .* (A·B): entries present in M are masked
	// *out*. MCA does not support complemented masks (§8.4) and returns an
	// error; Heap/HeapDot run with NInspect=0 under complement (§5.5).
	Complement bool
	// Auto asks the layers above core (the masked facade and the apps
	// engines) to route the call through the adaptive planner instead of a
	// caller-pinned variant. The fixed-variant entry points in this package
	// ignore it; see repro/internal/planner.
	Auto bool
	// MaskRep pins the mask representation kernels probe membership with
	// (sorted-CSR, bitmap, or dense-run direct index). The zero value
	// RepAuto lets the planner choose per row block — or, on the
	// fixed-variant entry points, resolves one representation from the
	// aggregate mask shape. Kernels that cannot exploit the pinned
	// representation demote it (see MaskRep).
	MaskRep MaskRep
	// Sched selects how the drivers distribute rows across workers:
	// SchedAuto (cost-balanced spans when a skewed RowCosts profile is
	// available, equal-row chunks otherwise), SchedEqualRow, or SchedCost.
	// Scheduling never changes results — only who computes which rows when.
	Sched Sched
	// RowCosts, if non-nil, supplies the per-row cost prefix cost-balanced
	// scheduling claims equal-flops spans over. The planner attaches the
	// profile its analysis sweep gathers; callers pinning a variant can
	// build one with ComputeRowCosts. Nil (or a stale profile whose length
	// does not match the row count) falls back to equal-row chunking.
	RowCosts *RowCosts
	// Ctx, if non-nil, carries a cancellation signal honored cooperatively
	// by the parallel drivers: workers observe it between scheduling chunks
	// and the call returns ctx.Err() without completing the product. Nil
	// means the call cannot be cancelled.
	Ctx context.Context
	// Workspaces, if non-nil, supplies pooled accumulator scratch that is
	// reused across calls instead of reallocated per worker per call.
	// Sessions own one arena for their whole lifetime; see Workspaces.
	Workspaces *Workspaces
	// NowNs, if non-nil, replaces the monotonic clock the blocked drivers
	// time kernel chunks with (BlockStat.ElapsedNs). Tests inject a fake
	// clock here so timing-dependent assertions are deterministic; nil means
	// the real monotonic clock. Timing never changes results.
	NowNs func() int64
}

// Workers resolves the options' worker count for one parallel stage:
// ThreadsFn when set (the dynamic serving path), else Threads (0 still
// means GOMAXPROCS, resolved downstream by parallel.Threads).
func (o Options) Workers() int {
	if o.ThreadsFn != nil {
		return o.ThreadsFn()
	}
	return o.Threads
}

// Err returns the options' context error: non-nil once o.Ctx is cancelled.
func (o Options) Err() error {
	if o.Ctx != nil {
		return o.Ctx.Err()
	}
	return nil
}

// Variant is a named (algorithm, phase) pair, the unit the paper benchmarks
// (e.g. "MSA-1P").
type Variant struct {
	Alg   Algorithm
	Phase Phase
}

// Name returns the paper's label, e.g. "Hash-2P".
func (v Variant) Name() string { return v.Alg.String() + "-" + v.Phase.String() }

// SupportsComplement reports whether the variant can run with a
// complemented mask.
func (v Variant) SupportsComplement() bool { return v.Alg != MCA }

// AllVariants returns the 12 variants evaluated in §8 (6 algorithms × 1P/2P)
// in the paper's presentation order.
func AllVariants() []Variant {
	algs := []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner}
	out := make([]Variant, 0, len(algs)*2)
	for _, a := range algs {
		out = append(out, Variant{a, OnePhase}, Variant{a, TwoPhase})
	}
	return out
}

// VariantByName returns the variant with the given paper label ("MSA-1P",
// "Inner-2P", ...).
func VariantByName(name string) (Variant, error) {
	for _, v := range AllVariants() {
		if v.Name() == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("core: unknown variant %q", name)
}

// MaskedSpGEMM computes C = M .* (A·B) (or the complement form per opt)
// over semiring sr using the given variant. M must be m-by-n, A m-by-k and
// B k-by-n. Output rows are sorted.
func MaskedSpGEMM[T any](v Variant, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	if opt.Complement && !v.SupportsComplement() {
		return nil, fmt.Errorf("core: %s does not support complemented masks", v.Alg)
	}
	if err := opt.Err(); err != nil {
		return nil, err
	}
	rep := resolveRep(opt.MaskRep, v.Alg, m, a, 0, m.NRows, opt.Complement)
	factory, err := algKernelFactory(v.Alg, rep, m, a, b, nil, sr, opt.Complement, opt.Workspaces)
	if err != nil {
		return nil, err
	}
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(v.Phase, m, b.NCols, bound, factory, opt)
}

// algKernelFactory builds the per-worker kernel factory for one algorithm
// family, probing the mask through the given resolved representation (not
// RepAuto; kernels that cannot exploit it demote it). bcsc may be nil; it is
// only consulted for Inner, where a non-nil value avoids re-transposing B
// (blocked plans share one CSC across blocks). ws may be nil (no pooling).
//
// Dispatch happens here: a semiring carrying a recognized named operator
// gets the monomorphized kernel instantiation (Add/Mul inlined); any other
// semiring runs the same kernels through the FuncOps fallback. See OpsMode.
func algKernelFactory[T any](alg Algorithm, rep MaskRep, m *matrix.Pattern, a, b *matrix.CSR[T], bcsc *matrix.CSC[T], sr semiring.Semiring[T], complement bool, ws *Workspaces) (func() kernel[T], error) {
	rep = SupportedMaskRep(alg, rep, complement)
	if f := specializedFactory(alg, rep, m, a, b, bcsc, sr, complement, ws); f != nil {
		return f, nil
	}
	return opsKernelFactory(alg, rep, m, a, b, bcsc, funcOps(sr), opLoops[T]{}, complement, ws)
}

// ExecBlock assigns an algorithm variant and mask representation to the
// contiguous row range [Lo, Hi) of a blocked (mixed-variant) execution
// plan. The phase is global to the call — the drivers run all blocks under
// one phase strategy — so a block carries only the algorithm family and the
// representation its kernels probe the mask with (RepAuto resolves from the
// block's local mask shape). A non-auto Rep is trusted as-is: callers
// constructing blocks by hand (rather than through the planner, which
// verifies this) must only set RepDense — or RepBitmap on Hash — when the
// block's mask rows are sorted.
type ExecBlock struct {
	Lo, Hi Index
	Alg    Algorithm
	Rep    MaskRep
}

// BlockStat reports what one block of a blocked execution actually did.
type BlockStat struct {
	// Block is the executed row range and algorithm.
	Block ExecBlock
	// Rows is the number of rows in the block.
	Rows int64
	// MaskNNZ is the number of mask entries in the block's rows.
	MaskNNZ int64
	// OutNNZ is the number of output entries the block produced.
	OutNNZ int64
	// ElapsedNs is the summed wall time workers spent in the block's kernel
	// rows (both passes of a two-phase run; chunk time straddling a block
	// boundary is split pro-rata by rows). It is measured with Options.NowNs
	// when set, the real monotonic clock otherwise, and feeds the planner's
	// prediction-error feedback loop.
	ElapsedNs int64
}

// MaskedSpGEMMBlocked computes C = M .* (A·B) (or the complement form) with
// a mixed-variant plan: each block of rows runs its own algorithm family,
// all under the given phase. Blocks must be sorted, non-overlapping and
// cover [0, m.NRows) exactly. All algorithms produce entries in sorted
// column order with identical per-row floating-point sums, so a blocked
// product is bit-identical to any single-variant product. If stats is
// non-nil it receives one BlockStat per block after execution. B is
// transposed to CSC at most once, shared by all Inner blocks.
func MaskedSpGEMMBlocked[T any](phase Phase, blocks []ExecBlock, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options, stats *[]BlockStat) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("core: blocked plan has no blocks")
	}
	if err := opt.Err(); err != nil {
		return nil, err
	}
	var bcsc *matrix.CSC[T]
	segs := make([]execSeg[T], 0, len(blocks))
	next := Index(0)
	for _, blk := range blocks {
		if blk.Lo != next || blk.Hi < blk.Lo {
			return nil, fmt.Errorf("core: blocked plan does not tile the row space: block [%d,%d) after row %d", blk.Lo, blk.Hi, next)
		}
		next = blk.Hi
		if opt.Complement && blk.Alg == MCA {
			return nil, fmt.Errorf("core: %s does not support complemented masks", MCA)
		}
		if blk.Alg == Inner && bcsc == nil {
			bcsc = matrix.ToCSC(b)
		}
		// Representation resolution: a caller pin wins over the plan's and
		// is fully verified (including the sortedness guard); a block rep
		// set by the planner is trusted without re-scanning — Analyze only
		// emits sortedness-requiring reps after verifying sortedness — and
		// just demoted to what the algorithm supports; RepAuto blocks
		// resolve from the block's local statistics.
		var rep MaskRep
		switch {
		case opt.MaskRep != RepAuto:
			rep = resolveRep(opt.MaskRep, blk.Alg, m, a, blk.Lo, blk.Hi, opt.Complement)
		case blk.Rep != RepAuto:
			rep = SupportedMaskRep(blk.Alg, blk.Rep, opt.Complement)
		default:
			rep = resolveRep(RepAuto, blk.Alg, m, a, blk.Lo, blk.Hi, opt.Complement)
		}
		factory, err := algKernelFactory(blk.Alg, rep, m, a, b, bcsc, sr, opt.Complement, opt.Workspaces)
		if err != nil {
			return nil, err
		}
		segs = append(segs, execSeg[T]{lo: blk.Lo, hi: blk.Hi, factory: factory})
	}
	if next != m.NRows {
		return nil, fmt.Errorf("core: blocked plan covers rows [0,%d), want [0,%d)", next, m.NRows)
	}
	bound := allocBound(m, a, b, opt.Complement)
	var timer *segTimer
	if stats != nil {
		// Timing is only measured when the caller asked for stats; the cost
		// is one clock read per claimed chunk, zero on the untimed path.
		segHi := make([]Index, len(blocks))
		for i, blk := range blocks {
			segHi[i] = blk.Hi
		}
		timer = &segTimer{now: opt.nowFn(), segHi: segHi, segNs: make([]int64, len(blocks))}
	}
	out, err := runDriverBlocked(phase, m.NRows, b.NCols, bound, segs, opt, timer)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		*stats = (*stats)[:0]
		for bi, blk := range blocks {
			s := BlockStat{
				Block:     blk,
				Rows:      int64(blk.Hi - blk.Lo),
				OutNNZ:    int64(out.RowPtr[blk.Hi] - out.RowPtr[blk.Lo]),
				ElapsedNs: timer.segNs[bi],
			}
			if int(blk.Hi) < len(m.RowPtr) { // degenerate zero-value masks have no RowPtr
				s.MaskNNZ = int64(m.RowPtr[blk.Hi] - m.RowPtr[blk.Lo])
			}
			*stats = append(*stats, s)
		}
	}
	return out, nil
}

// MaskedDotCSC runs the pull-based Inner algorithm with a pre-transposed B
// (CSC), excluding the transpose cost from measurement; the paper assumes B
// is stored column-major for the dot algorithm (§4.1).
func MaskedDotCSC[T any](phase Phase, m *matrix.Pattern, a *matrix.CSR[T], bcsc *matrix.CSC[T], sr semiring.Semiring[T], opt Options) (*matrix.CSR[T], error) {
	if m.NRows != a.NRows || m.NCols != bcsc.NCols || a.NCols != bcsc.NRows {
		return nil, fmt.Errorf("core: dimension mismatch M(%dx%d) A(%dx%d) B(%dx%d)",
			m.NRows, m.NCols, a.NRows, a.NCols, bcsc.NRows, bcsc.NCols)
	}
	if err := opt.Err(); err != nil {
		return nil, err
	}
	rep := SupportedMaskRep(Inner, opt.MaskRep, opt.Complement)
	if rep == RepAuto {
		rep = RepCSR // no planner here; the merge walk is the safe default
	}
	factory, err := algKernelFactory(Inner, rep, m, a, nil, bcsc, sr, opt.Complement, opt.Workspaces)
	if err != nil {
		return nil, err
	}
	bound := innerBound(m, bcsc.NCols, opt.Complement)
	return runDriver(phase, m, bcsc.NCols, bound, factory, opt)
}

func checkDims[T any](m *matrix.Pattern, a, b *matrix.CSR[T]) error {
	if m.NRows != a.NRows || m.NCols != b.NCols || a.NCols != b.NRows {
		return fmt.Errorf("core: dimension mismatch M(%dx%d) A(%dx%d) B(%dx%d)",
			m.NRows, m.NCols, a.NRows, a.NCols, b.NRows, b.NCols)
	}
	return nil
}

// allocBound returns the one-phase per-row allocation upper bound (§6): the
// mask row size for normal masks — the output can never exceed the mask —
// and min(ncols, Σ_k nnz(B_k*)) under complement.
func allocBound[T any](m *matrix.Pattern, a, b *matrix.CSR[T], complement bool) func(i Index) int64 {
	if !complement {
		return func(i Index) int64 { return int64(m.RowNNZ(i)) }
	}
	n := int64(b.NCols)
	return func(i Index) int64 {
		var fl int64
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			k := a.Col[kk]
			fl += int64(b.RowPtr[k+1] - b.RowPtr[k])
			if fl >= n {
				return n
			}
		}
		return fl
	}
}

// innerBound is allocBound for the CSC entry point.
func innerBound(m *matrix.Pattern, ncols Index, complement bool) func(i Index) int64 {
	if !complement {
		return func(i Index) int64 { return int64(m.RowNNZ(i)) }
	}
	n := int64(ncols)
	return func(i Index) int64 { return n - int64(m.RowNNZ(i)) }
}

// MaskedSpGEMMHeapNInspect runs the Heap algorithm with an explicit
// NInspect setting, exposing the §5.5 knob for the ablation benchmark
// (NInspect 0, 1 and nInspectAll correspond to blind push, Heap, HeapDot).
func MaskedSpGEMMHeapNInspect[T any](phase Phase, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], nInspect int32, opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	// The NInspect knob only exists on the CSR merge path, so the ablation
	// pins the CSR representation unless the caller explicitly overrides.
	rep := opt.MaskRep
	if rep == RepAuto {
		rep = RepCSR
	}
	// Ablation entry point: always the FuncOps instantiation, so NInspect
	// comparisons are not confounded by operator dispatch differences.
	factory := newHeapKernelFactory(m, a, b, funcOps(sr), opt.Complement, nInspect, rep, opt.Workspaces)
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(phase, m, b.NCols, bound, factory, opt)
}

// MaskedSpGEMMHashLoad runs the Hash algorithm with an explicit table load
// factor num/den (the paper fixes 1/4), for the ablation benchmark.
func MaskedSpGEMMHashLoad[T any](phase Phase, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], num, den int, opt Options) (*matrix.CSR[T], error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, err
	}
	// The load-factor ablation studies the mask-preinserted table, so it
	// always runs the CSR representation.
	inner := newHashKernelFactory(m, a, b, funcOps(sr), opLoops[T]{}, opt.Complement, RepCSR, nil)
	factory := func() kernel[T] {
		k := inner().(*hashKernel[T, semiring.FuncOps[T]])
		k.acc.SetLoadFactor(num, den)
		return k
	}
	bound := allocBound(m, a, b, opt.Complement)
	return runDriver(phase, m, b.NCols, bound, factory, opt)
}

// Flops returns flops(A·B) = Σ_{A_ik ≠ 0} nnz(B_k*), the number of
// multiply operations of the unmasked product — the work metric used by the
// paper's GFLOPS plots (one multiply plus one add per unit, so reported
// GFLOPS double this count, matching the SpGEMM convention of 2·flops).
func Flops[T any](a, b *matrix.CSR[T], threads int) int64 {
	partial := make([]int64, parallel.Threads(threads))
	parallel.ForWorkers(int(a.NRows), threads, 256, func(id int, claim func() (int, int, bool)) {
		var sum int64
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
					k := a.Col[kk]
					sum += int64(b.RowPtr[k+1] - b.RowPtr[k])
				}
			}
		}
		partial[id] += sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}
