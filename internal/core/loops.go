package core

import (
	"repro/internal/accum"
	"repro/internal/matrix"
)

//go:generate go run genloops.go

// opLoops bundles the monomorphized numeric scatter/dot loops for one
// (element type, operator) pair. The Go compiler's gcshape stenciling keeps
// interface-method calls on an operator *type parameter* indirect (they go
// through the instantiation dictionary, even when the shape is unique to one
// operator), so the generic kernels' ops.Mul/ops.Add never inline. Plain
// arithmetic on a numeric-constrained type parameter, by contrast, compiles
// to direct machine instructions. loops_gen.go therefore instantiates each
// hot loop once per operator with the Add/Mul expressions spelled out, and
// the kernels call the loop once per row — one amortized indirect call per
// row instead of two per flop.
//
// A zero opLoops (all fields nil) makes the kernels run their generic ops
// loops instead: that is the funcptr fallback path for custom semirings.
// The generated loops replicate the generic loops' operation order exactly,
// so the two paths are bit-identical.
//
// The Heap/HeapDot kernels have no loop entry here: their multiply-add sits
// under a heap pop, so there is no inner sweep to batch, and the operator
// cost is dominated by the heap's log factor.
type opLoops[T any] struct {
	msa    func(acc *accum.MSA[T], a, b *matrix.CSR[T], i Index)
	msaRun func(acc *accum.MSA[T], a, b *matrix.CSR[T], i, lo, hi Index, comp bool)
	msaC   func(acc *accum.MSA[T], a, b *matrix.CSR[T], i Index)

	hash      func(acc *accum.Hash[T], a, b *matrix.CSR[T], i Index)
	hashProbe func(acc *accum.Hash[T], p *maskProbe, a, b *matrix.CSR[T], i Index, comp bool)
	hashC     func(acc *accum.Hash[T], a, b *matrix.CSR[T], i Index)

	mcaProbe func(acc *accum.MCA[T], p *maskProbe, a, b *matrix.CSR[T], i Index)
	mcaMerge func(acc *accum.MCA[T], a, b *matrix.CSR[T], i Index, mrow []Index)

	dot func(aIdx []Index, aVal []T, bIdx []Index, bVal []T) (T, bool)
}

// loopNumeric is the element-type constraint of the generated numeric
// loops: arithmetic and comparisons on T compile to direct instructions.
type loopNumeric interface{ ~int64 | ~float64 }

// loopBool is the element-type constraint of the generated boolean loops.
type loopBool interface{ ~bool }

// addMin is the min monoid used by the generated MinPlus loops. It must
// match semiring.MinPlusF64.Add exactly (NOT the min builtin, whose NaN
// handling differs) so the monomorphized path stays bit-identical to the
// funcptr path.
func addMin[T loopNumeric](x, y T) T {
	if x < y {
		return x
	}
	return y
}

// addMax is the max monoid used by the generated MaxTimes loops; it must
// match semiring.MaxTimesF64.Add exactly (see addMin).
func addMax[T loopNumeric](x, y T) T {
	if x > y {
		return x
	}
	return y
}
