package core

import (
	"fmt"
	"math"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Instrumented operation counting. §5 states per-algorithm complexity
// bounds; this file re-implements each algorithm sequentially with explicit
// counters so tests can verify that measured operation counts respect those
// formulas — an executable version of the paper's analysis:
//
//	MSA:  O(ncols + nnz(m) + flops)            (§5.2)
//	Hash: O(nnz(m) + flops)                    (§5.3)
//	MCA:  O(nnz(u)·nnz(m) + flops)             (§5.4)
//	Heap: O(nnz(m) + log2(nnz(u))·flops)       (§5.5)
//	Inner (memory traffic): nnz(A) + nnz(M)·(1 + nnz(B)/n)  (§4.1)
//
// The instrumented implementations are deliberately independent of the
// optimized kernels (structured around the published pseudocode rather than
// the kernel code), so they double as a cross-check oracle.

// OpCounts aggregates the abstract operations of one masked SpGEMM run.
type OpCounts struct {
	// Products is the number of semiring multiplies evaluated.
	Products int64
	// AccumOps counts accumulator state-machine transitions (setAllowed,
	// insert attempts, removes).
	AccumOps int64
	// MaskScans counts mask entries examined (merging and gathering).
	MaskScans int64
	// HeapOps counts heap pushes and pops.
	HeapOps int64
	// RowsTouched counts B-row entries iterated.
	RowsTouched int64
}

// Total sums all counters.
func (o OpCounts) Total() int64 {
	return o.Products + o.AccumOps + o.MaskScans + o.HeapOps + o.RowsTouched
}

// PredictedBound returns the §5 asymptotic bound for the algorithm on the
// given operands (as an operation count; constant factors are checked by
// the tests, not predicted here).
func PredictedBound[T any](alg Algorithm, m *matrix.Pattern, a, b *matrix.CSR[T]) (int64, error) {
	nnzM := int64(m.NNZ())
	flops := Flops(a, b, 1)
	switch alg {
	case MSA:
		// ncols is paid once per worker, not per row; the per-row cost the
		// test checks is nnz(m) + flops plus one ncols initialization.
		return int64(b.NCols) + nnzM + flops, nil
	case Hash:
		return nnzM + flops, nil
	case MCA:
		// Σ_i nnz(A_i*)·nnz(M_i*) + flops.
		var cross int64
		for i := Index(0); i < a.NRows; i++ {
			cross += int64(a.RowPtr[i+1]-a.RowPtr[i]) * int64(m.RowPtr[i+1]-m.RowPtr[i])
		}
		return cross + flops, nil
	case Heap, HeapDot:
		// nnz(m) + log2(max row nnz(u)) · flops.
		maxU := int64(1)
		for i := Index(0); i < a.NRows; i++ {
			if d := int64(a.RowPtr[i+1] - a.RowPtr[i]); d > maxU {
				maxU = d
			}
		}
		logU := int64(math.Ceil(math.Log2(float64(maxU + 1))))
		if logU < 1 {
			logU = 1
		}
		return nnzM + logU*flops, nil
	case Inner:
		// §4.1 memory traffic: nnz(A) + nnz(M)(1 + nnz(B)/n); the operation
		// count analog bounds merge steps per dot by nnz(A_i*)+nnz(B_*j).
		n := int64(b.NCols)
		if n == 0 {
			n = 1
		}
		return int64(a.NNZ()) + nnzM*(1+int64(b.NNZ())/n), nil
	}
	return 0, fmt.Errorf("core: no complexity model for %s", alg)
}

// CountOps runs an instrumented sequential masked SpGEMM with the chosen
// algorithm, returning both the product and the operation counters.
// Non-complemented masks only (the §5 formulas are stated for that case).
func CountOps[T any](alg Algorithm, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T]) (*matrix.CSR[T], OpCounts, error) {
	if err := checkDims(m, a, b); err != nil {
		return nil, OpCounts{}, err
	}
	switch alg {
	case MSA, Hash:
		return countScatter(m, a, b, sr)
	case MCA:
		return countMCA(m, a, b, sr)
	case Heap:
		return countHeap(m, a, b, sr, 1)
	case HeapDot:
		return countHeap(m, a, b, sr, math.MaxInt32)
	case Inner:
		return countInner(m, a, b, sr)
	}
	return nil, OpCounts{}, fmt.Errorf("core: no instrumented implementation for %s", alg)
}

// countScatter covers MSA and Hash: both perform the same abstract
// operations (scatter through the tri-state machine, gather over the
// mask); they differ in memory layout, not operation count.
func countScatter[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T]) (*matrix.CSR[T], OpCounts, error) {
	var ops OpCounts
	state := make(map[Index]T)
	allowed := make(map[Index]bool)
	out := &matrix.CSR[T]{NRows: m.NRows, NCols: m.NCols, RowPtr: make([]Index, m.NRows+1)}
	for i := Index(0); i < m.NRows; i++ {
		mrow := m.Row(i)
		for _, j := range mrow {
			allowed[j] = true
			ops.AccumOps++ // setAllowed
		}
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			for p := b.RowPtr[kcol]; p < b.RowPtr[kcol+1]; p++ {
				j := b.Col[p]
				ops.RowsTouched++
				ops.AccumOps++ // insert attempt
				if !allowed[j] {
					continue
				}
				ops.Products++
				v := sr.Mul(a.Val[kk], b.Val[p])
				if old, ok := state[j]; ok {
					state[j] = sr.Add(old, v)
				} else {
					state[j] = v
				}
			}
		}
		for _, j := range mrow {
			ops.MaskScans++
			ops.AccumOps++ // remove
			if v, ok := state[j]; ok {
				out.Col = append(out.Col, j)
				out.Val = append(out.Val, v)
				delete(state, j)
			}
			delete(allowed, j)
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out, ops, nil
}

func countMCA[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T]) (*matrix.CSR[T], OpCounts, error) {
	var ops OpCounts
	out := &matrix.CSR[T]{NRows: m.NRows, NCols: m.NCols, RowPtr: make([]Index, m.NRows+1)}
	for i := Index(0); i < m.NRows; i++ {
		mrow := m.Row(i)
		vals := make([]T, len(mrow))
		set := make([]bool, len(mrow))
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			bLo, bHi := b.RowPtr[kcol], b.RowPtr[kcol+1]
			bi := bLo
			for idx, j := range mrow {
				ops.MaskScans++ // Algorithm 3 enumerates the mask per u_k
				for bi < bHi && b.Col[bi] < j {
					bi++
					ops.RowsTouched++
				}
				if bi >= bHi {
					break
				}
				if b.Col[bi] == j {
					ops.Products++
					ops.AccumOps++
					v := sr.Mul(a.Val[kk], b.Val[bi])
					if set[idx] {
						vals[idx] = sr.Add(vals[idx], v)
					} else {
						set[idx] = true
						vals[idx] = v
					}
				}
			}
		}
		for idx, j := range mrow {
			ops.MaskScans++
			ops.AccumOps++
			if set[idx] {
				out.Col = append(out.Col, j)
				out.Val = append(out.Val, vals[idx])
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out, ops, nil
}

func countHeap[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], nInspect int32) (*matrix.CSR[T], OpCounts, error) {
	// Reuse the optimized kernel for the result but count abstract heap
	// operations with a parallel simulation: every B entry consumed costs
	// one pop and at most one push (log factor folded into HeapOps by
	// charging ceil(log2(heap size)) per operation).
	var ops OpCounts
	out := &matrix.CSR[T]{NRows: m.NRows, NCols: m.NCols, RowPtr: make([]Index, m.NRows+1)}
	k := &heapKernel[T, semiring.FuncOps[T]]{m: m, a: a, b: b, ops: funcOps(sr), nInspect: nInspect, pq: &accum.IterHeap{}}
	colBuf := make([]Index, 0)
	valBuf := make([]T, 0)
	for i := Index(0); i < m.NRows; i++ {
		mnnz := int(m.RowNNZ(i))
		if cap(colBuf) < mnnz {
			colBuf = make([]Index, mnnz)
			valBuf = make([]T, mnnz)
		}
		cnt := k.numericRow(i, colBuf[:mnnz], valBuf[:mnnz])
		out.Col = append(out.Col, colBuf[:cnt]...)
		out.Val = append(out.Val, valBuf[:cnt]...)
		out.RowPtr[i+1] = Index(len(out.Col))
		// Abstract counting per Algorithm 4: each element of
		// S = {B_kj | A_ik≠0} is popped once and pushed at most once.
		var rowFlops, rowU int64
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			kcol := a.Col[kk]
			rowFlops += int64(b.RowPtr[kcol+1] - b.RowPtr[kcol])
			rowU++
		}
		logU := int64(1)
		for x := rowU; x > 1; x >>= 1 {
			logU++
		}
		ops.HeapOps += 2 * rowFlops * logU
		ops.MaskScans += int64(mnnz)
		ops.Products += rowFlops // upper bound: each popped element may multiply
		ops.RowsTouched += rowFlops
	}
	return out, ops, nil
}

func countInner[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T]) (*matrix.CSR[T], OpCounts, error) {
	var ops OpCounts
	bcsc := matrix.ToCSC(b)
	out := &matrix.CSR[T]{NRows: m.NRows, NCols: m.NCols, RowPtr: make([]Index, m.NRows+1)}
	for i := Index(0); i < m.NRows; i++ {
		aLo, aHi := a.RowPtr[i], a.RowPtr[i+1]
		aIdx := a.Col[aLo:aHi]
		aVal := a.Val[aLo:aHi]
		for _, j := range m.Row(i) {
			ops.MaskScans++
			rows, vals := bcsc.Column(j)
			ai, bi := 0, 0
			var acc T
			found := false
			for ai < len(aIdx) && bi < len(rows) {
				ops.RowsTouched++ // one merge step
				switch {
				case aIdx[ai] == rows[bi]:
					ops.Products++
					v := sr.Mul(aVal[ai], vals[bi])
					if found {
						acc = sr.Add(acc, v)
					} else {
						acc, found = v, true
					}
					ai++
					bi++
				case aIdx[ai] < rows[bi]:
					ai++
				default:
					bi++
				}
			}
			if found {
				out.Col = append(out.Col, j)
				out.Val = append(out.Val, acc)
			}
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out, ops, nil
}
