package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// randCSR builds a random m-by-n CSR matrix with about density*m*n entries
// and small integer-valued float64 entries (exact arithmetic in float64, so
// results compare exactly regardless of accumulation order).
func randCSR(r *rand.Rand, m, n Index, density float64) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: m, NCols: n}
	target := int(density * float64(m) * float64(n))
	for e := 0; e < target; e++ {
		coo.Row = append(coo.Row, Index(r.Intn(int(m))))
		coo.Col = append(coo.Col, Index(r.Intn(int(n))))
		coo.Val = append(coo.Val, float64(1+r.Intn(4)))
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
}

func eqF(a, b float64) bool { return a == b }

func TestAllVariantsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sr := semiring.Arithmetic()
	shapes := []struct {
		m, k, n Index
		dA, dM  float64
	}{
		{1, 1, 1, 1.0, 1.0},
		{5, 7, 6, 0.3, 0.3},
		{16, 16, 16, 0.1, 0.2},
		{16, 16, 16, 0.4, 0.05},
		{40, 30, 50, 0.08, 0.15},
		{64, 64, 64, 0.05, 0.05},
		{100, 80, 90, 0.02, 0.5},
		{33, 129, 65, 0.07, 0.07},
	}
	for si, sh := range shapes {
		a := randCSR(r, sh.m, sh.k, sh.dA)
		b := randCSR(r, sh.k, sh.n, sh.dA)
		mask := randCSR(r, sh.m, sh.n, sh.dM).Pattern()
		want := Reference(mask, a, b, sr, false)
		for _, v := range AllVariants() {
			for _, threads := range []int{1, 4} {
				got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{Threads: threads, Grain: 3})
				if err != nil {
					t.Fatalf("shape %d %s threads=%d: %v", si, v.Name(), threads, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("shape %d %s threads=%d: invalid output: %v", si, v.Name(), threads, err)
				}
				if !matrix.Equal(got, want, eqF) {
					t.Errorf("shape %d %s threads=%d: result differs from reference", si, v.Name(), threads)
				}
			}
		}
	}
}

func TestComplementAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sr := semiring.Arithmetic()
	shapes := []struct {
		m, k, n Index
		dA, dM  float64
	}{
		{5, 5, 5, 0.4, 0.4},
		{16, 16, 16, 0.15, 0.3},
		{30, 20, 25, 0.1, 0.1},
		{64, 64, 64, 0.05, 0.02},
		{50, 50, 50, 0.06, 0.9},
	}
	for si, sh := range shapes {
		a := randCSR(r, sh.m, sh.k, sh.dA)
		b := randCSR(r, sh.k, sh.n, sh.dA)
		mask := randCSR(r, sh.m, sh.n, sh.dM).Pattern()
		want := Reference(mask, a, b, sr, true)
		for _, v := range AllVariants() {
			if !v.SupportsComplement() {
				continue
			}
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{Threads: 2, Grain: 5, Complement: true})
			if err != nil {
				t.Fatalf("shape %d %s: %v", si, v.Name(), err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("shape %d %s: invalid output: %v", si, v.Name(), err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("shape %d %s complement: result differs from reference", si, v.Name())
			}
		}
	}
}

func TestMCARejectsComplement(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randCSR(r, 4, 4, 0.5)
	mask := a.Pattern()
	for _, ph := range []Phase{OnePhase, TwoPhase} {
		_, err := MaskedSpGEMM(Variant{MCA, ph}, mask, a, a, semiring.Arithmetic(), Options{Complement: true})
		if err == nil {
			t.Errorf("MCA-%s: expected error for complemented mask", ph)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randCSR(r, 4, 5, 0.5)
	b := randCSR(r, 6, 4, 0.5) // inner dim mismatch: a.NCols=5, b.NRows=6
	mask := randCSR(r, 4, 4, 0.5).Pattern()
	if _, err := MaskedSpGEMM(Variant{MSA, OnePhase}, mask, a, b, semiring.Arithmetic(), Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	b2 := randCSR(r, 5, 4, 0.5)
	badMask := randCSR(r, 3, 4, 0.5).Pattern() // mask rows mismatch
	if _, err := MaskedSpGEMM(Variant{MSA, OnePhase}, badMask, a, b2, semiring.Arithmetic(), Options{}); err == nil {
		t.Fatal("expected mask dimension mismatch error")
	}
}

func TestEmptyOperands(t *testing.T) {
	sr := semiring.Arithmetic()
	empty := matrix.NewEmptyCSR[float64](8, 8)
	r := rand.New(rand.NewSource(3))
	full := randCSR(r, 8, 8, 0.5)
	cases := []struct {
		name    string
		m       *matrix.Pattern
		a, b    *matrix.CSR[float64]
		wantNNZ int
	}{
		{"empty mask", empty.Pattern(), full, full, 0},
		{"empty A", full.Pattern(), empty, full, 0},
		{"empty B", full.Pattern(), full, empty, 0},
		{"all empty", empty.Pattern(), empty, empty, 0},
	}
	for _, tc := range cases {
		for _, v := range AllVariants() {
			got, err := MaskedSpGEMM(v, tc.m, tc.a, tc.b, sr, Options{})
			if err != nil {
				t.Fatalf("%s %s: %v", tc.name, v.Name(), err)
			}
			if got.NNZ() != tc.wantNNZ {
				t.Errorf("%s %s: nnz=%d want %d", tc.name, v.Name(), got.NNZ(), tc.wantNNZ)
			}
		}
	}
}

func TestZeroDimension(t *testing.T) {
	sr := semiring.Arithmetic()
	zeroRow := matrix.NewEmptyCSR[float64](0, 5)
	b := matrix.NewEmptyCSR[float64](5, 5)
	m := matrix.NewEmptyCSR[float64](0, 5)
	for _, v := range AllVariants() {
		got, err := MaskedSpGEMM(v, m.Pattern(), zeroRow, b, sr, Options{})
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if got.NRows != 0 || got.NNZ() != 0 {
			t.Errorf("%s: want empty 0-row result", v.Name())
		}
	}
}

// TestOutputPatternSubsetOfMask checks the structural invariant: with a
// normal mask, every output position must appear in the mask; with a
// complemented mask, no output position may appear in the mask.
func TestOutputPatternSubsetOfMask(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 20; trial++ {
		n := Index(10 + r.Intn(60))
		a := randCSR(r, n, n, 0.1)
		b := randCSR(r, n, n, 0.1)
		mask := randCSR(r, n, n, 0.15).Pattern()
		for _, v := range AllVariants() {
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.PatternSubset(got.Pattern(), mask) {
				t.Fatalf("trial %d %s: output not a subset of mask", trial, v.Name())
			}
			if !v.SupportsComplement() {
				continue
			}
			gotC, err := MaskedSpGEMM(v, mask, a, b, sr, Options{Complement: true})
			if err != nil {
				t.Fatal(err)
			}
			// Complement output must be disjoint from the mask.
			md := matrix.ToDense(matrix.FromPattern(mask, 1.0))
			for i := Index(0); i < gotC.NRows; i++ {
				for k := gotC.RowPtr[i]; k < gotC.RowPtr[i+1]; k++ {
					if _, ok := md.At(i, gotC.Col[k]); ok {
						t.Fatalf("trial %d %s: complement output overlaps mask at (%d,%d)",
							trial, v.Name(), i, gotC.Col[k])
					}
				}
			}
		}
	}
}

// TestOnePhaseEqualsTwoPhase is the §6 consistency property: for every
// algorithm the two phase strategies must produce identical matrices.
func TestOnePhaseEqualsTwoPhase(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 10; trial++ {
		n := Index(20 + r.Intn(50))
		a := randCSR(r, n, n, 0.08)
		b := randCSR(r, n, n, 0.08)
		mask := randCSR(r, n, n, 0.1).Pattern()
		for _, alg := range []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner} {
			c1, err := MaskedSpGEMM(Variant{alg, OnePhase}, mask, a, b, sr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			c2, err := MaskedSpGEMM(Variant{alg, TwoPhase}, mask, a, b, sr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(c1, c2, eqF) {
				t.Fatalf("trial %d %s: 1P and 2P differ", trial, alg)
			}
		}
	}
}

// TestComplementPartition verifies that for any inputs, the masked product
// and the complement-masked product partition the plain product:
// pattern(M.*(AB)) ⊎ pattern(¬M.*(AB)) = pattern(AB) and values agree.
func TestComplementPartition(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 10; trial++ {
		n := Index(15 + r.Intn(40))
		a := randCSR(r, n, n, 0.1)
		b := randCSR(r, n, n, 0.1)
		mask := randCSR(r, n, n, 0.2).Pattern()
		normal, err := MaskedSpGEMM(Variant{MSA, OnePhase}, mask, a, b, sr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := MaskedSpGEMM(Variant{MSA, OnePhase}, mask, a, b, sr, Options{Complement: true})
		if err != nil {
			t.Fatal(err)
		}
		// Full product = reference against an all-true mask = complement of
		// an empty mask.
		emptyMask := matrix.NewEmptyCSR[float64](n, n).Pattern()
		plain := Reference(emptyMask, a, b, sr, true)
		if normal.NNZ()+comp.NNZ() != plain.NNZ() {
			t.Fatalf("trial %d: nnz %d + %d != %d", trial, normal.NNZ(), comp.NNZ(), plain.NNZ())
		}
		nd := matrix.ToDense(normal)
		cd := matrix.ToDense(comp)
		for i := Index(0); i < n; i++ {
			for k := plain.RowPtr[i]; k < plain.RowPtr[i+1]; k++ {
				j := plain.Col[k]
				vn, okn := nd.At(i, j)
				vc, okc := cd.At(i, j)
				if okn == okc {
					t.Fatalf("trial %d: (%d,%d) in both or neither part", trial, i, j)
				}
				v := vn
				if okc {
					v = vc
				}
				if v != plain.Val[k] {
					t.Fatalf("trial %d: value mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestQuickMaskedProduct is the property-based test: arbitrary seeds
// generate matrices, every variant must match the oracle.
func TestQuickMaskedProduct(t *testing.T) {
	sr := semiring.Arithmetic()
	property := func(seed int64, comp bool) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(1 + r.Intn(40))
		k := Index(1 + r.Intn(40))
		n := Index(1 + r.Intn(40))
		a := randCSR(r, m, k, 0.05+0.3*r.Float64())
		b := randCSR(r, k, n, 0.05+0.3*r.Float64())
		mask := randCSR(r, m, n, 0.05+0.5*r.Float64()).Pattern()
		want := Reference(mask, a, b, sr, comp)
		for _, v := range AllVariants() {
			if comp && !v.SupportsComplement() {
				continue
			}
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{Threads: 2, Grain: 7, Complement: comp})
			if err != nil {
				return false
			}
			if !matrix.Equal(got, want, eqF) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSemirings runs every variant over non-arithmetic semirings: results
// must match the oracle under the same semiring.
func TestSemirings(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := Index(40)
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	mask := randCSR(r, n, n, 0.2).Pattern()
	srs := []semiring.Semiring[float64]{
		semiring.Arithmetic(),
		semiring.PlusPairF(),
		semiring.MinPlus(),
		semiring.PlusSecond(),
		semiring.PlusFirst(),
		semiring.MaxTimes(),
	}
	for _, sr := range srs {
		want := Reference(mask, a, b, sr, false)
		for _, v := range AllVariants() {
			// Heap/HeapDot accumulate in sorted-pop order; MinPlus/MaxTimes
			// are order-insensitive (idempotent-ish min/max), Arithmetic on
			// small ints is exact, so exact compare is valid for all.
			got, err := MaskedSpGEMM(v, mask, a, b, sr, Options{})
			if err != nil {
				t.Fatalf("%s %s: %v", sr.Name, v.Name(), err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("%s %s: mismatch", sr.Name, v.Name())
			}
		}
	}
}

func TestMaskedDotCSC(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 5; trial++ {
		m := Index(10 + r.Intn(30))
		k := Index(10 + r.Intn(30))
		n := Index(10 + r.Intn(30))
		a := randCSR(r, m, k, 0.15)
		b := randCSR(r, k, n, 0.15)
		mask := randCSR(r, m, n, 0.2).Pattern()
		bcsc := matrix.ToCSC(b)
		want := Reference(mask, a, b, sr, false)
		for _, ph := range []Phase{OnePhase, TwoPhase} {
			got, err := MaskedDotCSC(ph, mask, a, bcsc, sr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("MaskedDotCSC %s trial %d: mismatch", ph, trial)
			}
		}
		wantC := Reference(mask, a, b, sr, true)
		gotC, err := MaskedDotCSC(OnePhase, mask, a, bcsc, sr, Options{Complement: true})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(gotC, wantC, eqF) {
			t.Errorf("MaskedDotCSC complement trial %d: mismatch", trial)
		}
	}
}

func TestHeapNInspectAblationCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	sr := semiring.Arithmetic()
	n := Index(50)
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	mask := randCSR(r, n, n, 0.2).Pattern()
	want := Reference(mask, a, b, sr, false)
	for _, ni := range []int32{0, 1, 2, 4, 1 << 30} {
		for _, ph := range []Phase{OnePhase, TwoPhase} {
			got, err := MaskedSpGEMMHeapNInspect(ph, mask, a, b, sr, ni, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("Heap NInspect=%d %s: mismatch", ni, ph)
			}
		}
	}
}

func TestHashLoadFactorAblationCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	sr := semiring.Arithmetic()
	n := Index(50)
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	mask := randCSR(r, n, n, 0.2).Pattern()
	want := Reference(mask, a, b, sr, false)
	for _, lf := range [][2]int{{1, 8}, {1, 4}, {1, 2}, {3, 4}} {
		got, err := MaskedSpGEMMHashLoad(OnePhase, mask, a, b, sr, lf[0], lf[1], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, want, eqF) {
			t.Errorf("Hash load %d/%d: mismatch", lf[0], lf[1])
		}
	}
}

func TestFlops(t *testing.T) {
	// A = [1 1; 0 1], B = [1 0; 1 1]: flops = row0: nnz(B0)+nnz(B1)=1+2=3,
	// row1: nnz(B1)=2 → 5.
	a := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 2, NCols: 2,
		Row: []Index{0, 0, 1}, Col: []Index{0, 1, 1}, Val: []float64{1, 1, 1},
	}, nil)
	b := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 2, NCols: 2,
		Row: []Index{0, 1, 1}, Col: []Index{0, 0, 1}, Val: []float64{1, 1, 1},
	}, nil)
	if got := Flops(a, b, 1); got != 5 {
		t.Fatalf("Flops = %d, want 5", got)
	}
	if got := Flops(a, b, 4); got != 5 {
		t.Fatalf("Flops parallel = %d, want 5", got)
	}
}

func TestVariantNamesAndLookup(t *testing.T) {
	vs := AllVariants()
	if len(vs) != 12 {
		t.Fatalf("AllVariants returned %d, want 12", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name()] {
			t.Fatalf("duplicate variant name %s", v.Name())
		}
		seen[v.Name()] = true
		got, err := VariantByName(v.Name())
		if err != nil || got != v {
			t.Fatalf("VariantByName(%s) = %v, %v", v.Name(), got, err)
		}
	}
	if _, err := VariantByName("Nope-1P"); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	for _, want := range []string{"MSA-1P", "Hash-2P", "MCA-1P", "Heap-2P", "HeapDot-1P", "Inner-2P"} {
		if !seen[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

// TestRealisticGraphTriangleMask exercises the triangle-counting shape on a
// generated graph: mask = L, product = L·L.
func TestRealisticGraphTriangleMask(t *testing.T) {
	g := grgen.RMAT(7, 8, 99)
	l := matrix.Tril(g)
	sr := semiring.PlusPairF()
	want := Reference(l.Pattern(), l, l, sr, false)
	for _, v := range AllVariants() {
		got, err := MaskedSpGEMM(v, l.Pattern(), l, l, sr, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, want, eqF) {
			t.Errorf("%s on RMAT triangle mask: mismatch", v.Name())
		}
	}
}

func ExampleMaskedSpGEMM() {
	// C = M .* (A·B) on a 2x2 arithmetic example.
	a := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 2, NCols: 2,
		Row: []Index{0, 0, 1}, Col: []Index{0, 1, 0}, Val: []float64{1, 2, 3},
	}, nil)
	b := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 2, NCols: 2,
		Row: []Index{0, 1}, Col: []Index{0, 0}, Val: []float64{10, 100},
	}, nil)
	mask := a.Pattern() // only positions (0,0), (0,1), (1,0) may appear
	c, _ := MaskedSpGEMM(Variant{MSA, OnePhase}, mask, a, b, semiring.Arithmetic(), Options{Threads: 1})
	for i := Index(0); i < c.NRows; i++ {
		cols, vals := c.Row(i)
		for k := range cols {
			fmt.Printf("C[%d,%d] = %v\n", i, cols[k], vals[k])
		}
	}
	// Output:
	// C[0,0] = 210
	// C[1,0] = 30
}
