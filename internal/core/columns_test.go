package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

func TestColumnMajorAgreesWithRowMajor(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 8; trial++ {
		m := Index(10 + r.Intn(40))
		k := Index(10 + r.Intn(40))
		n := Index(10 + r.Intn(40))
		a := randCSR(r, m, k, 0.15)
		b := randCSR(r, k, n, 0.15)
		mask := randCSR(r, m, n, 0.25).Pattern()
		want := Reference(mask, a, b, sr, false)
		for _, v := range []Variant{{MSA, OnePhase}, {Hash, TwoPhase}, {Heap, OnePhase}, {MCA, OnePhase}} {
			got, err := MaskedSpGEMMColumns(v, mask, a, b, sr, Options{Threads: 2})
			if err != nil {
				t.Fatalf("%s: %v", v.Name(), err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("trial %d %s: column-major result differs", trial, v.Name())
			}
		}
	}
}

// TestColumnMajorNonCommutative: operand order through the transpose
// identity must be preserved for non-commutative semirings.
func TestColumnMajorNonCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	sr := semiring.PlusSecond()
	n := Index(30)
	a := randCSR(r, n, n, 0.2)
	b := randCSR(r, n, n, 0.2)
	mask := randCSR(r, n, n, 0.3).Pattern()
	want := Reference(mask, a, b, sr, false)
	got, err := MaskedSpGEMMColumns(Variant{MSA, OnePhase}, mask, a, b, sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, eqF) {
		t.Fatal("column-major broke PlusSecond operand order")
	}
}

func TestColumnMajorComplement(t *testing.T) {
	r := rand.New(rand.NewSource(227))
	sr := semiring.Arithmetic()
	n := Index(25)
	a := randCSR(r, n, n, 0.2)
	b := randCSR(r, n, n, 0.2)
	mask := randCSR(r, n, n, 0.3).Pattern()
	want := Reference(mask, a, b, sr, true)
	got, err := MaskedSpGEMMColumns(Variant{Hash, OnePhase}, mask, a, b, sr, Options{Complement: true})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, eqF) {
		t.Fatal("column-major complement mismatch")
	}
}

func TestColumnMajorDimCheck(t *testing.T) {
	r := rand.New(rand.NewSource(229))
	a := randCSR(r, 4, 5, 0.5)
	b := randCSR(r, 6, 4, 0.5)
	mask := randCSR(r, 4, 4, 0.5).Pattern()
	if _, err := MaskedSpGEMMColumns(Variant{MSA, OnePhase}, mask, a, b, semiring.Arithmetic(), Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}
