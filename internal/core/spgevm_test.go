package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

func randVec(r *rand.Rand, n Index, density float64) *matrix.SparseVec[float64] {
	var idx []Index
	var val []float64
	for j := Index(0); j < n; j++ {
		if r.Float64() < density {
			idx = append(idx, j)
			val = append(val, float64(1+r.Intn(5)))
		}
	}
	return &matrix.SparseVec[float64]{N: n, Idx: idx, Val: val}
}

// refSpGEVM is the oracle for v = m .* (uB).
func refSpGEVM(m, u *matrix.SparseVec[float64], b *matrix.CSR[float64], sr semiring.Semiring[float64], comp bool) *matrix.SparseVec[float64] {
	out := Reference(m.VecPattern(), u.AsRowMatrix(), b, sr, comp)
	return matrix.RowToVec(out, 0)
}

func TestMaskedSpGEVMAllAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 15; trial++ {
		k := Index(10 + r.Intn(50))
		n := Index(10 + r.Intn(50))
		u := randVec(r, k, 0.3)
		m := randVec(r, n, 0.3)
		b := randCSR(r, k, n, 0.15)
		want := refSpGEVM(m, u, b, sr, false)
		for _, alg := range []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner} {
			got, err := MaskedSpGEVM(alg, m, u, b, sr, Options{Threads: 1})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if !matrix.VecEqual(got, want, eqF) {
				t.Errorf("trial %d %s: SpGEVM mismatch", trial, alg)
			}
		}
		// Complement for the families that support it.
		wantC := refSpGEVM(m, u, b, sr, true)
		for _, alg := range []Algorithm{MSA, Hash, Heap, HeapDot, Inner} {
			got, err := MaskedSpGEVM(alg, m, u, b, sr, Options{Threads: 1, Complement: true})
			if err != nil {
				t.Fatalf("%s complement: %v", alg, err)
			}
			if !matrix.VecEqual(got, wantC, eqF) {
				t.Errorf("trial %d %s: complement SpGEVM mismatch", trial, alg)
			}
		}
	}
}

func TestMaskedSpGEVMDimChecks(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	b := randCSR(r, 5, 6, 0.5)
	u := randVec(r, 4, 0.5) // wrong length
	m := randVec(r, 6, 0.5)
	if _, err := MaskedSpGEVM(MSA, m, u, b, semiring.Arithmetic(), Options{}); err == nil {
		t.Fatal("expected u length error")
	}
	u2 := randVec(r, 5, 0.5)
	m2 := randVec(r, 7, 0.5) // wrong length
	if _, err := MaskedSpGEVM(MSA, m2, u2, b, semiring.Arithmetic(), Options{}); err == nil {
		t.Fatal("expected m length error")
	}
}

func TestMaskedSpGEVMAutoCorrectBothDirections(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	sr := semiring.Arithmetic()
	n := Index(200)
	b := randCSR(r, n, n, 0.05)
	bcsc := matrix.ToCSC(b)
	// Dense frontier + tiny mask → pull; sparse frontier + big mask → push.
	cases := []struct {
		uDen, mDen float64
		wantDir    Direction
	}{
		{0.9, 0.005, Pull},
		{0.01, 0.5, Push},
	}
	for _, tc := range cases {
		u := randVec(r, n, tc.uDen)
		m := randVec(r, n, tc.mDen)
		want := refSpGEVM(m, u, b, sr, false)
		got, dir, err := MaskedSpGEVMAuto(m, u, b, bcsc, sr, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.VecEqual(got, want, eqF) {
			t.Errorf("auto (%v): result mismatch", dir)
		}
		if dir != tc.wantDir {
			t.Errorf("auto: direction = %v, want %v (uDen=%v mDen=%v)", dir, tc.wantDir, tc.uDen, tc.mDen)
		}
		if dir.String() == "" {
			t.Error("direction must have a name")
		}
	}
	// Complement path must be correct in both directions too.
	u := randVec(r, n, 0.5)
	m := randVec(r, n, 0.3)
	wantC := refSpGEVM(m, u, b, sr, true)
	gotC, _, err := MaskedSpGEVMAuto(m, u, b, bcsc, sr, Options{Threads: 1, Complement: true})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqual(gotC, wantC, eqF) {
		t.Error("auto complement mismatch")
	}
}

func TestHybridMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 10; trial++ {
		mrows := Index(20 + r.Intn(60))
		k := Index(20 + r.Intn(60))
		n := Index(20 + r.Intn(60))
		a := randCSR(r, mrows, k, 0.05+0.2*r.Float64())
		b := randCSR(r, k, n, 0.05+0.2*r.Float64())
		mask := randCSR(r, mrows, n, 0.05+0.4*r.Float64()).Pattern()
		want := Reference(mask, a, b, sr, false)
		for _, ph := range []Phase{OnePhase, TwoPhase} {
			got, err := MaskedSpGEMMHybrid(ph, mask, a, b, sr, Options{Threads: 2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("trial %d hybrid %s: mismatch", trial, ph)
			}
		}
	}
}

func TestHybridRouting(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	sr := semiring.Arithmetic()
	n := Index(300)
	// Dense inputs + very sparse mask: rows should route to pull.
	aD := randCSR(r, n, n, 0.2)
	bD := randCSR(r, n, n, 0.2)
	sparseMask := randCSR(r, n, n, 0.002).Pattern()
	var st HybridStats
	if _, err := MaskedSpGEMMHybrid(OnePhase, sparseMask, aD, bD, sr, Options{Threads: 1}, &st); err != nil {
		t.Fatal(err)
	}
	if st.PullRows == 0 {
		t.Errorf("sparse mask: expected pull-routed rows, got %+v", st)
	}
	// Sparse inputs + dense mask: heap territory.
	aS := randCSR(r, n, n, 0.003)
	bS := randCSR(r, n, n, 0.003)
	denseMask := randCSR(r, n, n, 0.5).Pattern()
	st = HybridStats{}
	if _, err := MaskedSpGEMMHybrid(OnePhase, denseMask, aS, bS, sr, Options{Threads: 1}, &st); err != nil {
		t.Fatal(err)
	}
	if st.HeapRows == 0 {
		t.Errorf("dense mask: expected heap-routed rows, got %+v", st)
	}
	// Comparable: MSA territory.
	aM := randCSR(r, n, n, 0.03)
	bM := randCSR(r, n, n, 0.03)
	eqMask := randCSR(r, n, n, 0.03).Pattern()
	st = HybridStats{}
	if _, err := MaskedSpGEMMHybrid(OnePhase, eqMask, aM, bM, sr, Options{Threads: 1}, &st); err != nil {
		t.Fatal(err)
	}
	if st.MSARows == 0 {
		t.Errorf("comparable densities: expected MSA-routed rows, got %+v", st)
	}
}

func TestHybridRejectsComplement(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	a := randCSR(r, 5, 5, 0.5)
	if _, err := MaskedSpGEMMHybrid(OnePhase, a.Pattern(), a, a, semiring.Arithmetic(), Options{Complement: true}, nil); err == nil {
		t.Fatal("expected complement rejection")
	}
}

func TestHybridQuick(t *testing.T) {
	sr := semiring.Arithmetic()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Index(5 + r.Intn(50))
		a := randCSR(r, n, n, 0.02+0.3*r.Float64())
		b := randCSR(r, n, n, 0.02+0.3*r.Float64())
		mask := randCSR(r, n, n, 0.02+0.6*r.Float64()).Pattern()
		want := Reference(mask, a, b, sr, false)
		got, err := MaskedSpGEMMHybrid(OnePhase, mask, a, b, sr, Options{Threads: 2}, nil)
		return err == nil && matrix.Equal(got, want, eqF)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
