package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// opsEquivCase runs one semiring through every variant × mask rep × sched
// twice — once with the named operator type (monomorphized loops) and once
// with the funcptr fallback (Ops stripped) — and requires bit-identical
// output. This is the contract loops_gen.go is generated under: the
// specialized loops replicate the generic ops loops' operation order
// exactly, so inlining must never change result bits.
func opsEquivCase[T any](t *testing.T, sr semiring.Semiring[T], mask *matrix.Pattern, a, b *matrix.CSR[T], eq func(T, T) bool) {
	t.Helper()
	if sr.Ops == nil {
		t.Fatalf("%s: named semiring carries no operator type", sr.Name)
	}
	fp := sr
	fp.Ops = nil
	for _, v := range AllVariants() {
		for _, comp := range []bool{false, true} {
			if comp && !v.SupportsComplement() {
				continue
			}
			for _, rep := range []MaskRep{RepCSR, RepBitmap, RepDense} {
				for _, sched := range []Sched{SchedEqualRow, SchedCost} {
					opt := Options{Threads: 2, Grain: 3, Complement: comp, MaskRep: rep, Sched: sched}
					want, err := MaskedSpGEMM(v, mask, a, b, fp, opt)
					if err != nil {
						t.Fatalf("%s %s comp=%v rep=%s sched=%s funcptr: %v", sr.Name, v.Name(), comp, rep, sched, err)
					}
					got, err := MaskedSpGEMM(v, mask, a, b, sr, opt)
					if err != nil {
						t.Fatalf("%s %s comp=%v rep=%s sched=%s inlined: %v", sr.Name, v.Name(), comp, rep, sched, err)
					}
					if !matrix.Equal(got, want, eq) {
						t.Fatalf("%s %s comp=%v rep=%s sched=%s: inlined result not bit-identical to funcptr", sr.Name, v.Name(), comp, rep, sched)
					}
				}
			}
		}
	}
}

// TestOpsEquivalence is the operator-path equivalence property test: for
// every named semiring, the monomorphized kernels and the funcptr fallback
// must produce bit-identical output across all variants, mask
// representations, and schedules (same pattern, same value bits —
// accumulation order is part of the contract).
func TestOpsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const m, k, n = 37, 31, 43
	mask := randFloatCSR(r, m, n, 0.35).Pattern()
	af := randFloatCSR(r, m, k, 0.25)
	bf := randFloatCSR(r, k, n, 0.25)
	eqBitsF := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }

	for _, sr := range []semiring.Semiring[float64]{
		semiring.Arithmetic(), semiring.PlusPairF(), semiring.MinPlus(),
		semiring.PlusSecond(), semiring.PlusFirst(), semiring.MaxTimes(),
	} {
		t.Run(sr.Name, func(t *testing.T) { opsEquivCase(t, sr, mask, af, bf, eqBitsF) })
	}

	toI64 := func(v float64) int64 { return int64(v) }
	ai := matrix.MapValues(randCSR(r, m, k, 0.25), toI64)
	bi := matrix.MapValues(randCSR(r, k, n, 0.25), toI64)
	eqI := func(x, y int64) bool { return x == y }
	for _, sr := range []semiring.Semiring[int64]{semiring.ArithmeticInt(), semiring.PlusPair()} {
		t.Run(sr.Name, func(t *testing.T) { opsEquivCase(t, sr, mask, ai, bi, eqI) })
	}

	ab := matrix.MapValues(ai, func(v int64) bool { return v != 0 })
	bb := matrix.MapValues(bi, func(v int64) bool { return v != 0 })
	eqB := func(x, y bool) bool { return x == y }
	t.Run("boolean", func(t *testing.T) { opsEquivCase(t, semiring.Boolean(), mask, ab, bb, eqB) })
}
