package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// deltaStream is a deterministic pre-generated update stream: one batch
// per round per operand, shared by every configuration of the battery so
// all configs replay the identical edge history.
type deltaStream struct {
	m, a, b [][]matrix.Update[float64]
}

func genDeltaStream(rng *rand.Rand, rounds, per int, mr, mc, ar, ac, br, bc Index) deltaStream {
	gen := func(nr, nc Index) [][]matrix.Update[float64] {
		out := make([][]matrix.Update[float64], rounds)
		for r := range out {
			batch := make([]matrix.Update[float64], per)
			for k := range batch {
				batch[k] = matrix.Update[float64]{
					Row: Index(rng.Intn(int(nr))), Col: Index(rng.Intn(int(nc))),
					Val:    rng.Float64()*2 - 1,
					Delete: rng.Intn(3) == 0,
				}
			}
			out[r] = batch
		}
		return out
	}
	return deltaStream{m: gen(mr, mc), a: gen(ar, ac), b: gen(br, bc)}
}

// deltaEquivConfig replays the stream under one (variant, complement, rep,
// sched, semiring) configuration: after every prefix — including a
// mid-stream Compact — the incrementally refreshed output must be
// bit-identical to a from-scratch multiply on the overlays' current
// (compacted) content.
func deltaEquivConfig(t *testing.T, v Variant, comp bool, rep MaskRep, sched Sched,
	sr semiring.Semiring[float64], baseM, baseA, baseB *matrix.CSR[float64], stream deltaStream) {
	t.Helper()
	newOverlay := func(base *matrix.CSR[float64]) *matrix.DeltaCSR[float64] {
		d, err := matrix.NewDeltaCSR(base)
		if err != nil {
			t.Fatal(err)
		}
		d.SetMergeThreshold(0.1) // small threshold: exercise auto-compact too
		return d
	}
	dm, da, db := newOverlay(baseM), newOverlay(baseA), newOverlay(baseB)
	p := NewDeltaProduct(dm, da, db)
	opt := func(m *matrix.Pattern, a, b *matrix.CSR[float64]) Options {
		o := Options{Threads: 2, Grain: 3, Complement: comp, MaskRep: rep, Sched: sched}
		if sched == SchedCost {
			o.RowCosts = ComputeRowCosts(m, a.Pattern(), b.Pattern(), o.Workers())
		}
		return o
	}
	mult := func(msub *matrix.Pattern, asub, b *matrix.CSR[float64]) (*matrix.CSR[float64], error) {
		return MaskedSpGEMM(v, msub, asub, b, sr, opt(msub, asub, b))
	}
	eqBits := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	check := func(round int) {
		t.Helper()
		got, _, err := p.Refresh(mult)
		if err != nil {
			t.Fatalf("round %d: incremental refresh: %v", round, err)
		}
		cm, ca, cb := dm.Current().Pattern(), da.Current(), db.Current()
		want, err := MaskedSpGEMM(v, cm, ca, cb, sr, opt(cm, ca, cb))
		if err != nil {
			t.Fatalf("round %d: rebuild: %v", round, err)
		}
		if !matrix.Equal(got, want, eqBits) {
			t.Fatalf("round %d: incremental output not bit-identical to rebuild", round)
		}
	}
	check(-1) // initial full product
	rounds := len(stream.m)
	for r := 0; r < rounds; r++ {
		if err := p.Apply(DeltaM, stream.m[r]); err != nil {
			t.Fatal(err)
		}
		if err := p.Apply(DeltaA, stream.a[r]); err != nil {
			t.Fatal(err)
		}
		if err := p.Apply(DeltaB, stream.b[r]); err != nil {
			t.Fatal(err)
		}
		if r == rounds/2 {
			// Mid-stream compaction with dirty rows pending must not
			// change the refreshed output.
			p.Compact()
		}
		check(r)
	}
}

// TestDeltaEquivalenceBattery is the incremental-vs-rebuild property test:
// across all 12 variants × 3 mask representations × 3 named semirings ×
// both schedulers, plus complemented masks and a mid-stream Compact, every
// prefix of a seeded random insert/delete stream yields an incremental
// output bit-identical to a from-scratch multiply on the compacted
// operands.
func TestDeltaEquivalenceBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const m, k, n = 29, 23, 31
	baseM := randFloatCSR(rng, m, n, 0.3)
	baseA := randFloatCSR(rng, m, k, 0.25)
	baseB := randFloatCSR(rng, k, n, 0.25)
	stream := genDeltaStream(rng, 5, 4, m, n, m, k, k, n)
	semirings := []semiring.Semiring[float64]{
		semiring.Arithmetic(), semiring.PlusPairF(), semiring.MinPlus(),
	}
	for _, sr := range semirings {
		sr := sr
		t.Run(sr.Name, func(t *testing.T) {
			for _, v := range AllVariants() {
				for _, comp := range []bool{false, true} {
					if comp && !v.SupportsComplement() {
						continue
					}
					for _, rep := range []MaskRep{RepCSR, RepBitmap, RepDense} {
						for _, sched := range []Sched{SchedEqualRow, SchedCost} {
							deltaEquivConfig(t, v, comp, rep, sched, sr,
								baseM, baseA, baseB, stream)
						}
					}
				}
			}
		})
	}
}

// TestDeltaAliasedOverlays runs the graph-stream shape — M, A and B are
// one overlay — asserting per-prefix bit-identity and that DeltaAll
// batches dirty both operand roles exactly once.
func TestDeltaAliasedOverlays(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 31
	base := randFloatCSR(rng, n, n, 0.2)
	g, err := matrix.NewDeltaCSR(base)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDeltaProduct(g, g, g)
	if len(p.Overlays()) != 1 {
		t.Fatalf("aliased product tracks %d overlays, want 1", len(p.Overlays()))
	}
	sr := semiring.PlusPairF()
	mult := func(msub *matrix.Pattern, asub, b *matrix.CSR[float64]) (*matrix.CSR[float64], error) {
		return MaskedSpGEMM(Variant{Alg: Hash, Phase: TwoPhase}, msub, asub, b, sr,
			Options{Threads: 2})
	}
	eqBits := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if _, rows, err := p.Refresh(mult); err != nil || len(rows) != n {
		t.Fatalf("initial refresh: rows=%d err=%v", len(rows), err)
	}
	for round := 0; round < 6; round++ {
		batch := make([]matrix.Update[float64], 5)
		for k := range batch {
			batch[k] = matrix.Update[float64]{
				Row: Index(rng.Intn(n)), Col: Index(rng.Intn(n)),
				Val: 1, Delete: rng.Intn(3) == 0,
			}
		}
		if err := p.Apply(DeltaAll, batch); err != nil {
			t.Fatal(err)
		}
		got, recomputed, err := p.Refresh(mult)
		if err != nil {
			t.Fatal(err)
		}
		if len(recomputed) == 0 {
			t.Fatalf("round %d: refresh recomputed no rows after a batch", round)
		}
		cur := g.Current()
		want, err := MaskedSpGEMM(Variant{Alg: Hash, Phase: TwoPhase},
			cur.Pattern(), cur, cur, sr, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, want, eqBits) {
			t.Fatalf("round %d: aliased incremental output diverged from rebuild", round)
		}
	}
}

// TestDeltaApplyAtomicAcrossOverlays: a batch that is in range for A but
// out of range for B must reject without mutating either overlay when
// applied with DeltaAll.
func TestDeltaApplyAtomicAcrossOverlays(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	baseA := randFloatCSR(rng, 10, 8, 0.3) // 10x8
	baseB := randFloatCSR(rng, 8, 6, 0.3)  // 8x6
	baseM := randFloatCSR(rng, 10, 6, 0.3)
	dm, _ := matrix.NewDeltaCSR(baseM)
	da, _ := matrix.NewDeltaCSR(baseA)
	db, _ := matrix.NewDeltaCSR(baseB)
	p := NewDeltaProduct(dm, da, db)
	// Row 9 exists in M and A but not in B (8 rows).
	err := p.Apply(DeltaAll, []matrix.Update[float64]{{Row: 9, Col: 5, Val: 1}})
	if err == nil {
		t.Fatal("cross-overlay out-of-range batch accepted")
	}
	if dm.Pending() != 0 || da.Pending() != 0 || db.Pending() != 0 || p.Dirty() != 0 {
		t.Fatal("rejected batch left pending state behind")
	}
	// Targeted application to A alone is fine.
	if err := p.Apply(DeltaA, []matrix.Update[float64]{{Row: 9, Col: 5, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	if p.Dirty() != 1 {
		t.Fatalf("dirty rows = %d, want 1", p.Dirty())
	}
}

// TestDirtyFrontierDerivation checks the frontier rule directly: changed
// A/M rows are included, and a changed B row pulls in exactly the A rows
// whose columns reference it.
func TestDirtyFrontierDerivation(t *testing.T) {
	// A: row 0 -> {1}, row 1 -> {2}, row 2 -> {0, 2}, row 3 -> {}.
	a := &matrix.Pattern{NRows: 4, NCols: 3,
		RowPtr: []Index{0, 1, 2, 4, 4}, Col: []Index{1, 2, 0, 2}}
	got := DirtyFrontier(a,
		map[Index]struct{}{3: {}},
		map[Index]struct{}{2: {}})
	// Row 3 is dirty directly; B row 2 is referenced by A rows 1 and 2.
	want := []Index{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

// TestDeltaSeededProduct: a product seeded with a known-valid output skips
// the full first compute and still refreshes incrementally to the right
// bits.
func TestDeltaSeededProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 24
	base := randFloatCSR(rng, n, n, 0.25)
	sr := semiring.PlusPairF()
	v := Variant{Alg: MSA, Phase: OnePhase}
	seed, err := MaskedSpGEMM(v, base.Pattern(), base, base, sr, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := matrix.NewDeltaCSR(base)
	p := NewDeltaProductSeeded(g, g, g, seed)
	mult := func(msub *matrix.Pattern, asub, b *matrix.CSR[float64]) (*matrix.CSR[float64], error) {
		return MaskedSpGEMM(v, msub, asub, b, sr, Options{Threads: 2})
	}
	if c, rows, err := p.Refresh(mult); err != nil || len(rows) != 0 || c != seed {
		t.Fatalf("seeded refresh recomputed rows=%d err=%v", len(rows), err)
	}
	if err := p.Apply(DeltaAll, []matrix.Update[float64]{{Row: 3, Col: 7, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Refresh(mult)
	if err != nil {
		t.Fatal(err)
	}
	cur := g.Current()
	want, err := MaskedSpGEMM(v, cur.Pattern(), cur, cur, sr, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	eqBits := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !matrix.Equal(got, want, eqBits) {
		t.Fatal("seeded incremental output diverged from rebuild")
	}
}
