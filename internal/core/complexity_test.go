package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestCountOpsMatchesReference: the instrumented implementations are an
// independent oracle; their outputs must equal Reference.
func TestCountOpsMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 8; trial++ {
		n := Index(15 + r.Intn(50))
		a := randCSR(r, n, n, 0.1)
		b := randCSR(r, n, n, 0.1)
		mask := randCSR(r, n, n, 0.2).Pattern()
		want := Reference(mask, a, b, sr, false)
		for _, alg := range []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner} {
			got, ops, err := CountOps(alg, mask, a, b, sr)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if !matrix.Equal(got, want, eqF) {
				t.Errorf("trial %d %s: instrumented result differs", trial, alg)
			}
			if ops.Total() <= 0 && want.NNZ() > 0 {
				t.Errorf("%s: zero op count for nonempty product", alg)
			}
		}
	}
}

// TestComplexityBoundsHold: measured abstract operations must stay within a
// constant factor of the §5 formulas across a spread of density regimes.
func TestComplexityBoundsHold(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	sr := semiring.Arithmetic()
	regimes := []struct {
		name       string
		dIn, dMask float64
	}{
		{"sparse-mask", 0.2, 0.01},
		{"balanced", 0.1, 0.1},
		{"dense-mask", 0.01, 0.4},
	}
	const slack = 6 // constant factor allowed over the asymptotic bound
	for _, reg := range regimes {
		n := Index(80)
		a := randCSR(r, n, n, reg.dIn)
		b := randCSR(r, n, n, reg.dIn)
		mask := randCSR(r, n, n, reg.dMask).Pattern()
		for _, alg := range []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner} {
			_, ops, err := CountOps(alg, mask, a, b, sr)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := PredictedBound(alg, mask, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ops.Total() > slack*(bound+1) {
				t.Errorf("%s/%s: ops %d exceed %d × bound %d",
					reg.name, alg, ops.Total(), slack, bound)
			}
		}
	}
}

// TestComplexityOrdering: in the regime the paper identifies for each
// algorithm, its predicted bound must undercut at least one rival's —
// the quantitative version of the Fig. 7 regions.
func TestComplexityOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	n := Index(150)
	// Sparse mask, denser inputs: Inner's bound must beat push bounds.
	aD := randCSR(r, n, n, 0.15)
	bD := randCSR(r, n, n, 0.15)
	sparseMask := randCSR(r, n, n, 0.002).Pattern()
	innerB, _ := PredictedBound(Inner, sparseMask, aD, bD)
	msaB, _ := PredictedBound(MSA, sparseMask, aD, bD)
	if innerB >= msaB {
		t.Errorf("sparse mask: Inner bound %d should undercut MSA bound %d", innerB, msaB)
	}
	// Comparable densities: Hash bound ≤ MSA bound (no ncols term).
	eqMask := randCSR(r, n, n, 0.15).Pattern()
	hashB, _ := PredictedBound(Hash, eqMask, aD, bD)
	msaB2, _ := PredictedBound(MSA, eqMask, aD, bD)
	if hashB > msaB2 {
		t.Errorf("Hash bound %d should be <= MSA bound %d", hashB, msaB2)
	}
}

func TestPredictedBoundErrors(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	a := randCSR(r, 5, 5, 0.5)
	if _, err := PredictedBound(Algorithm(250), a.Pattern(), a, a); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if _, _, err := CountOps(Algorithm(250), a.Pattern(), a, a, semiring.Arithmetic()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	bad := randCSR(r, 4, 4, 0.5)
	if _, _, err := CountOps(MSA, a.Pattern(), a, bad, semiring.Arithmetic()); err == nil {
		t.Fatal("expected dimension error")
	}
}

// TestMaskSkipsProducts: the mask-aware accumulators must evaluate far
// fewer products than flops(AB) when the mask is tiny — the central claim
// of the paper (Figure 1's "masked output entries need not be computed").
func TestMaskSkipsProducts(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	n := Index(200)
	a := randCSR(r, n, n, 0.1)
	b := randCSR(r, n, n, 0.1)
	tiny := randCSR(r, n, n, 0.001).Pattern()
	flops := Flops(a, b, 1)
	_, opsMSA, err := CountOps(MSA, tiny, a, b, semiring.Arithmetic())
	if err != nil {
		t.Fatal(err)
	}
	if opsMSA.Products*10 > flops {
		t.Errorf("MSA evaluated %d products out of %d flops; mask should skip most", opsMSA.Products, flops)
	}
	_, opsInner, err := CountOps(Inner, tiny, a, b, semiring.Arithmetic())
	if err != nil {
		t.Fatal(err)
	}
	if opsInner.RowsTouched >= flops {
		t.Errorf("Inner touched %d entries, not less than flops %d", opsInner.RowsTouched, flops)
	}
}
