// Package grb is a small GraphBLAS-style operation layer over the masked
// SpGEMM kernels — the programming model the paper's benchmarks are
// written in ("implemented within the GraphBLAS specifications,
// substituting Masked SpGEMM operations with calls to different
// algorithms", §7). It provides opaque Matrix/Vector handles, a descriptor
// carrying the mask-complement flag and the algorithm choice, and the core
// operation set the three applications need: mxm, vxm, element-wise
// add/multiply, apply, select, reduce and transpose.
//
// Only the float64 domain is exposed (sufficient for all of the paper's
// benchmarks; the underlying kernels are generic).
package grb

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Semiring mirrors the float64 semiring type.
type Semiring = semiring.Semiring[float64]

// Matrix is an opaque sparse matrix handle.
type Matrix struct {
	csr *matrix.CSR[float64]
}

// Vector is an opaque sparse vector handle.
type Vector struct {
	vec *matrix.SparseVec[float64]
}

// Desc is the operation descriptor: which masked-SpGEMM algorithm to run,
// whether the mask is complemented, and the parallelism setting. The zero
// value means MSA-1P (the paper's default winner), normal mask,
// GOMAXPROCS workers.
type Desc struct {
	// Method selects the algorithm family (default MSA).
	Method core.Algorithm
	// TwoPhase selects symbolic+numeric execution (default one-phase).
	TwoPhase bool
	// CompMask complements the mask.
	CompMask bool
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
}

func (d *Desc) norm() Desc {
	if d == nil {
		return Desc{}
	}
	return *d
}

func (d Desc) variant() core.Variant {
	ph := core.OnePhase
	if d.TwoPhase {
		ph = core.TwoPhase
	}
	return core.Variant{Alg: d.Method, Phase: ph}
}

// --- Construction ---

// NewMatrix builds a matrix from triplets (duplicates summed).
func NewMatrix(nrows, ncols Index, rows, cols []Index, vals []float64) (*Matrix, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("grb: triplet arrays disagree: %d/%d/%d", len(rows), len(cols), len(vals))
	}
	for k := range rows {
		if rows[k] < 0 || rows[k] >= nrows || cols[k] < 0 || cols[k] >= ncols {
			return nil, fmt.Errorf("grb: entry %d at (%d,%d) out of %dx%d", k, rows[k], cols[k], nrows, ncols)
		}
	}
	coo := &matrix.COO[float64]{NRows: nrows, NCols: ncols, Row: rows, Col: cols, Val: vals}
	return &Matrix{csr: matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })}, nil
}

// WrapCSR adopts an existing CSR matrix (shared, not copied).
func WrapCSR(a *matrix.CSR[float64]) *Matrix { return &Matrix{csr: a} }

// CSR exposes the underlying storage (shared).
func (m *Matrix) CSR() *matrix.CSR[float64] { return m.csr }

// NRows returns the row count.
func (m *Matrix) NRows() Index { return m.csr.NRows }

// NCols returns the column count.
func (m *Matrix) NCols() Index { return m.csr.NCols }

// NVals returns the number of stored entries.
func (m *Matrix) NVals() int { return m.csr.NNZ() }

// Dup returns a deep copy.
func (m *Matrix) Dup() *Matrix { return &Matrix{csr: m.csr.Clone()} }

// ExtractElement returns the entry at (i, j) if present.
func (m *Matrix) ExtractElement(i, j Index) (float64, bool) {
	if i < 0 || i >= m.csr.NRows {
		return 0, false
	}
	cols, vals := m.csr.Row(i)
	for k, c := range cols {
		if c == j {
			return vals[k], true
		}
		if c > j {
			break
		}
	}
	return 0, false
}

// NewVector builds a vector from index/value pairs (duplicates summed).
func NewVector(n Index, idx []Index, vals []float64) (*Vector, error) {
	if len(idx) != len(vals) {
		return nil, fmt.Errorf("grb: vector arrays disagree: %d/%d", len(idx), len(vals))
	}
	for k, i := range idx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("grb: entry %d at %d out of length %d", k, i, n)
		}
	}
	return &Vector{vec: matrix.NewSparseVec(n, idx, vals, func(a, b float64) float64 { return a + b })}, nil
}

// Size returns the vector length.
func (v *Vector) Size() Index { return v.vec.N }

// NVals returns the number of stored entries.
func (v *Vector) NVals() int { return v.vec.NNZ() }

// Extract returns the stored indices and values (shared storage).
func (v *Vector) Extract() ([]Index, []float64) { return v.vec.Idx, v.vec.Val }

// --- Operations ---

// MxM computes C⟨mask⟩ = A·B over sr. A nil mask means an unmasked product
// (computed with the plain Gustavson substrate); with a mask, the
// descriptor's algorithm runs. This is the GrB_mxm analog.
func MxM(mask *Matrix, a, b *Matrix, sr Semiring, d *Desc) (*Matrix, error) {
	dd := d.norm()
	if mask == nil {
		if dd.CompMask {
			return nil, fmt.Errorf("grb: complemented nil mask is the full product; omit CompMask")
		}
		return &Matrix{csr: baseline.SpGEMM(a.csr, b.csr, sr, baseline.Options{Threads: dd.Threads})}, nil
	}
	out, err := core.MaskedSpGEMM(dd.variant(), mask.csr.Pattern(), a.csr, b.csr, sr,
		core.Options{Threads: dd.Threads, Complement: dd.CompMask})
	if err != nil {
		return nil, err
	}
	return &Matrix{csr: out}, nil
}

// VxM computes w⟨mask⟩ = uᵀ·A, the masked vector-matrix product
// (GrB_vxm analog).
func VxM(mask *Vector, u *Vector, a *Matrix, sr Semiring, d *Desc) (*Vector, error) {
	dd := d.norm()
	if mask == nil {
		// Unmasked vxm: complement of an empty mask.
		empty := &matrix.SparseVec[float64]{N: a.csr.NCols}
		out, err := core.MaskedSpGEVM(core.MSA, empty, u.vec, a.csr, sr,
			core.Options{Threads: dd.Threads, Complement: true})
		if err != nil {
			return nil, err
		}
		return &Vector{vec: out}, nil
	}
	out, err := core.MaskedSpGEVM(dd.Method, mask.vec, u.vec, a.csr, sr,
		core.Options{Threads: dd.Threads, Complement: dd.CompMask})
	if err != nil {
		return nil, err
	}
	return &Vector{vec: out}, nil
}

// MxV computes w⟨mask⟩ = A·u as VxM with Aᵀ (GrB_mxv analog; transposes
// per call).
func MxV(mask *Vector, a *Matrix, u *Vector, sr Semiring, d *Desc) (*Vector, error) {
	at := &Matrix{csr: matrix.Transpose(a.csr)}
	return VxM(mask, u, at, flipMul(sr), d)
}

// flipMul swaps multiply operand order (uᵀAᵀ computes Σ u_k·Aᵀ[k,j] =
// Σ A[j,k]·u_k; semiring multiply order must follow).
func flipMul(sr Semiring) Semiring {
	return Semiring{
		Name: sr.Name + "-flipped",
		Add:  sr.Add,
		Mul:  func(x, y float64) float64 { return sr.Mul(y, x) },
		Zero: sr.Zero,
	}
}

// EWiseAdd returns the pattern-union combination of a and b.
func EWiseAdd(a, b *Matrix, add func(float64, float64) float64) *Matrix {
	return &Matrix{csr: matrix.EWiseAdd(a.csr, b.csr, add)}
}

// EWiseMult returns the pattern-intersection combination of a and b.
func EWiseMult(a, b *Matrix, mul func(float64, float64) float64) *Matrix {
	return &Matrix{csr: matrix.EWiseMult(a.csr, b.csr, mul)}
}

// Apply maps every stored value through f.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	return &Matrix{csr: matrix.MapValues(a.csr, f)}
}

// Select keeps entries where pred(i, j, v) holds (GrB_select analog).
func Select(a *Matrix, pred func(i, j Index, v float64) bool) *Matrix {
	return &Matrix{csr: matrix.FilterEntries(a.csr, pred)}
}

// Reduce folds all stored values with the semiring add.
func Reduce(a *Matrix, sr Semiring) float64 {
	acc := sr.Zero
	for _, v := range a.csr.Val {
		acc = sr.Add(acc, v)
	}
	return acc
}

// ReduceRows reduces each row to a scalar, producing a (possibly sparse)
// vector of row sums.
func ReduceRows(a *Matrix, sr Semiring) *Vector {
	out := &matrix.SparseVec[float64]{N: a.csr.NRows}
	for i := Index(0); i < a.csr.NRows; i++ {
		lo, hi := a.csr.RowPtr[i], a.csr.RowPtr[i+1]
		if lo == hi {
			continue
		}
		acc := a.csr.Val[lo]
		for k := lo + 1; k < hi; k++ {
			acc = sr.Add(acc, a.csr.Val[k])
		}
		out.Idx = append(out.Idx, i)
		out.Val = append(out.Val, acc)
	}
	return &Vector{vec: out}
}

// Transpose returns Aᵀ.
func Transpose(a *Matrix) *Matrix { return &Matrix{csr: matrix.Transpose(a.csr)} }

// Tril returns the strictly lower triangular part.
func Tril(a *Matrix) *Matrix { return &Matrix{csr: matrix.Tril(a.csr)} }
