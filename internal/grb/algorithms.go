package grb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Reference graph algorithms written purely against the grb operation
// layer, demonstrating that the paper's benchmarks compose from these
// primitives exactly as §7 describes. They are validated against the
// specialized implementations in internal/apps.

// TriangleCount computes the triangle count as reduce(L .* (L·L)) on the
// plus-pair semiring (the §8.2 formulation), after the caller has already
// relabeled if desired.
func TriangleCount(g *Matrix, d *Desc) (int64, error) {
	l := Tril(g)
	c, err := MxM(l, l, l, semiring.PlusPairF(), d)
	if err != nil {
		return 0, fmt.Errorf("grb: triangle count: %w", err)
	}
	return int64(Reduce(c, semiring.Arithmetic())), nil
}

// BFSLevels runs a single-source BFS with vxm steps masked by the
// complement of the visited vector, returning the level of each vertex
// (-1 when unreachable).
func BFSLevels(g *Matrix, source Index, d *Desc) ([]int32, error) {
	n := g.NRows()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("grb: BFS source %d out of range", source)
	}
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	frontier, err := NewVector(n, []Index{source}, []float64{1})
	if err != nil {
		return nil, err
	}
	visited := frontier
	dd := d.norm()
	dd.CompMask = true
	depth := int32(0)
	for frontier.NVals() > 0 {
		next, err := VxM(visited, frontier, g, semiring.PlusPairF(), &dd)
		if err != nil {
			return nil, err
		}
		if next.NVals() == 0 {
			break
		}
		depth++
		idx, _ := next.Extract()
		for _, v := range idx {
			levels[v] = depth
		}
		merged := EWiseAddVecHandles(visited, next)
		visited = merged
		frontier = next
	}
	return levels, nil
}

// EWiseAddVecHandles merges two vectors by pattern union (values summed).
func EWiseAddVecHandles(a, b *Vector) *Vector {
	return &Vector{vec: matrix.EWiseAddVec(a.vec, b.vec, func(x, y float64) float64 { return x + y })}
}

// KTrussEdges computes the edge count of the k-truss using only grb
// primitives: iterate S⟨A⟩ = A·A on plus-pair, select support ≥ k-2,
// reset values to 1, until fixpoint.
func KTrussEdges(g *Matrix, k int, d *Desc) (int, int, error) {
	if k < 3 {
		return 0, 0, fmt.Errorf("grb: k-truss needs k >= 3")
	}
	a := g
	rounds := 0
	for {
		rounds++
		s, err := MxM(a, a, a, semiring.PlusPairF(), d)
		if err != nil {
			return 0, rounds, err
		}
		next := Select(s, func(_, _ Index, v float64) bool { return v >= float64(k-2) })
		next = Apply(next, func(float64) float64 { return 1 })
		if next.NVals() == a.NVals() {
			return next.NVals(), rounds, nil
		}
		a = next
		if a.NVals() == 0 {
			return 0, rounds, nil
		}
	}
}

// DefaultDesc returns a descriptor for the given algorithm name
// ("MSA-1P"-style labels).
func DefaultDesc(variantName string, threads int) (*Desc, error) {
	v, err := core.VariantByName(variantName)
	if err != nil {
		return nil, err
	}
	return &Desc{Method: v.Alg, TwoPhase: v.Phase == core.TwoPhase, Threads: threads}, nil
}
