package grb

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

func randTriplets(r *rand.Rand, m, n Index, nnz int) ([]Index, []Index, []float64) {
	rows := make([]Index, nnz)
	cols := make([]Index, nnz)
	vals := make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		rows[k] = Index(r.Intn(int(m)))
		cols[k] = Index(r.Intn(int(n)))
		vals[k] = float64(1 + r.Intn(5))
	}
	return rows, cols, vals
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(2, 2, []Index{0}, []Index{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged triplets must fail")
	}
	if _, err := NewMatrix(2, 2, []Index{5}, []Index{0}, []float64{1}); err == nil {
		t.Fatal("out of range row must fail")
	}
	m, err := NewMatrix(2, 3, []Index{0, 0, 1}, []Index{1, 1, 2}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows() != 2 || m.NCols() != 3 || m.NVals() != 2 {
		t.Fatalf("shape %dx%d nvals %d", m.NRows(), m.NCols(), m.NVals())
	}
	if v, ok := m.ExtractElement(0, 1); !ok || v != 3 {
		t.Fatalf("duplicate sum: %v %v", v, ok)
	}
	if _, ok := m.ExtractElement(1, 0); ok {
		t.Fatal("absent element")
	}
	if _, ok := m.ExtractElement(9, 0); ok {
		t.Fatal("out of range row")
	}
	d := m.Dup()
	if d.NVals() != m.NVals() {
		t.Fatal("dup")
	}
}

func TestVectorValidation(t *testing.T) {
	if _, err := NewVector(3, []Index{0}, []float64{1, 2}); err == nil {
		t.Fatal("ragged")
	}
	if _, err := NewVector(3, []Index{5}, []float64{1}); err == nil {
		t.Fatal("out of range")
	}
	v, err := NewVector(5, []Index{4, 1, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 5 || v.NVals() != 2 {
		t.Fatalf("size %d nvals %d", v.Size(), v.NVals())
	}
	idx, vals := v.Extract()
	if idx[0] != 1 || vals[1] != 4 {
		t.Fatalf("extract %v %v", idx, vals)
	}
}

func TestMxMMaskedMatchesCore(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		n := Index(20 + r.Intn(40))
		ar, ac, av := randTriplets(r, n, n, 4*int(n))
		br, bc, bv := randTriplets(r, n, n, 4*int(n))
		mr, mc, mv := randTriplets(r, n, n, 6*int(n))
		a, _ := NewMatrix(n, n, ar, ac, av)
		b, _ := NewMatrix(n, n, br, bc, bv)
		mask, _ := NewMatrix(n, n, mr, mc, mv)
		sr := semiring.Arithmetic()
		want := core.Reference(mask.CSR().Pattern(), a.CSR(), b.CSR(), sr, false)
		for _, method := range []core.Algorithm{core.MSA, core.Hash, core.MCA, core.Heap, core.Inner} {
			got, err := MxM(mask, a, b, sr, &Desc{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got.CSR(), want, func(x, y float64) bool { return x == y }) {
				t.Fatalf("trial %d method %s mismatch", trial, method)
			}
		}
		// Complement through the descriptor.
		wantC := core.Reference(mask.CSR().Pattern(), a.CSR(), b.CSR(), sr, true)
		gotC, err := MxM(mask, a, b, sr, &Desc{CompMask: true})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(gotC.CSR(), wantC, func(x, y float64) bool { return x == y }) {
			t.Fatalf("trial %d complement mismatch", trial)
		}
		// Unmasked product.
		empty := matrix.NewEmptyCSR[float64](n, n).Pattern()
		wantFull := core.Reference(empty, a.CSR(), b.CSR(), sr, true)
		gotFull, err := MxM(nil, a, b, sr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(gotFull.CSR(), wantFull, func(x, y float64) bool { return x == y }) {
			t.Fatalf("trial %d unmasked mismatch", trial)
		}
	}
}

func TestMxMNilMaskComplementRejected(t *testing.T) {
	a, _ := NewMatrix(2, 2, []Index{0}, []Index{1}, []float64{1})
	if _, err := MxM(nil, a, a, semiring.Arithmetic(), &Desc{CompMask: true}); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestVxMAndMxV(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := Index(40)
	ar, ac, av := randTriplets(r, n, n, 5*int(n))
	a, _ := NewMatrix(n, n, ar, ac, av)
	u, _ := NewVector(n, []Index{0, 3, 17}, []float64{1, 2, 3})
	mIdx := make([]Index, 0)
	mVal := make([]float64, 0)
	for j := Index(0); j < n; j += 2 {
		mIdx = append(mIdx, j)
		mVal = append(mVal, 1)
	}
	mask, _ := NewVector(n, mIdx, mVal)
	sr := semiring.Arithmetic()
	// Oracle: dense u·A restricted to mask.
	dense := make([]float64, n)
	hit := make([]bool, n)
	uIdx, uVal := u.Extract()
	for t2, k := range uIdx {
		cols, vals := a.CSR().Row(k)
		for kk, j := range cols {
			dense[j] += uVal[t2] * vals[kk]
			hit[j] = true
		}
	}
	got, err := VxM(mask, u, a, sr, nil)
	if err != nil {
		t.Fatal(err)
	}
	gIdx, gVal := got.Extract()
	seen := map[Index]float64{}
	for k, j := range gIdx {
		seen[j] = gVal[k]
	}
	for _, j := range mIdx {
		if hit[j] {
			if seen[j] != dense[j] {
				t.Fatalf("VxM at %d: %v want %v", j, seen[j], dense[j])
			}
		} else if _, ok := seen[j]; ok {
			t.Fatalf("VxM phantom entry at %d", j)
		}
	}
	// MxV: A·u == uᵀ·Aᵀ; compare against VxM on the transpose.
	gotMxV, err := MxV(mask, a, u, sr, nil)
	if err != nil {
		t.Fatal(err)
	}
	at := Transpose(a)
	wantMxV, err := VxM(mask, u, at, sr, nil)
	if err != nil {
		t.Fatal(err)
	}
	wIdx, wVal := wantMxV.Extract()
	gIdx2, gVal2 := gotMxV.Extract()
	if len(wIdx) != len(gIdx2) {
		t.Fatalf("MxV nvals %d want %d", len(gIdx2), len(wIdx))
	}
	for k := range wIdx {
		if wIdx[k] != gIdx2[k] || wVal[k] != gVal2[k] {
			t.Fatalf("MxV entry %d mismatch", k)
		}
	}
	// Unmasked VxM.
	full, err := VxM(nil, u, a, sr, nil)
	if err != nil {
		t.Fatal(err)
	}
	fIdx, fVal := full.Extract()
	for k, j := range fIdx {
		if fVal[k] != dense[j] {
			t.Fatalf("unmasked VxM at %d", j)
		}
	}
}

func TestEWiseApplySelectReduce(t *testing.T) {
	a, _ := NewMatrix(2, 2, []Index{0, 1}, []Index{0, 1}, []float64{2, 3})
	b, _ := NewMatrix(2, 2, []Index{0, 1}, []Index{0, 0}, []float64{10, 20})
	s := EWiseAdd(a, b, func(x, y float64) float64 { return x + y })
	if s.NVals() != 3 {
		t.Fatal("union size")
	}
	if v, _ := s.ExtractElement(0, 0); v != 12 {
		t.Fatal("union combine")
	}
	m := EWiseMult(a, b, func(x, y float64) float64 { return x * y })
	if m.NVals() != 1 {
		t.Fatal("intersection size")
	}
	if v, _ := m.ExtractElement(0, 0); v != 20 {
		t.Fatal("intersection combine")
	}
	ap := Apply(a, func(v float64) float64 { return -v })
	if v, _ := ap.ExtractElement(1, 1); v != -3 {
		t.Fatal("apply")
	}
	sel := Select(a, func(i, j Index, v float64) bool { return v > 2 })
	if sel.NVals() != 1 {
		t.Fatal("select")
	}
	if got := Reduce(a, semiring.Arithmetic()); got != 5 {
		t.Fatalf("reduce = %v", got)
	}
	rows := ReduceRows(a, semiring.Arithmetic())
	rIdx, rVal := rows.Extract()
	if len(rIdx) != 2 || rVal[0] != 2 || rVal[1] != 3 {
		t.Fatalf("reduce rows: %v %v", rIdx, rVal)
	}
}

func TestGrBTriangleCountMatchesApps(t *testing.T) {
	g := grgen.RMAT(8, 8, 3)
	// The grb version counts on the unrelabeled graph; the exact counter is
	// permutation-invariant, so compare against it directly.
	want := apps.TriangleCountExact(g)
	for _, method := range []core.Algorithm{core.MSA, core.Hash, core.MCA} {
		got, err := TriangleCount(WrapCSR(g), &Desc{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("method %s: %d triangles, want %d", method, got, want)
		}
	}
}

func TestGrBBFSMatchesExact(t *testing.T) {
	g := grgen.ErdosRenyiSym(120, 4, 5)
	want := apps.BFSExact(g, 7)
	got, err := BFSLevels(WrapCSR(g), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if _, err := BFSLevels(WrapCSR(g), -1, nil); err == nil {
		t.Fatal("bad source")
	}
}

func TestGrBKTrussMatchesApps(t *testing.T) {
	g := grgen.RMAT(7, 8, 9)
	v, _ := core.VariantByName("MSA-1P")
	wantTruss, wantRes, err := apps.KTruss(g, 5, apps.EngineVariant(v, core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	gotEdges, gotRounds, err := KTrussEdges(WrapCSR(g), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotEdges != wantTruss.NNZ() {
		t.Fatalf("edges %d want %d", gotEdges, wantTruss.NNZ())
	}
	if gotRounds != wantRes.Iterations {
		t.Fatalf("rounds %d want %d", gotRounds, wantRes.Iterations)
	}
	if _, _, err := KTrussEdges(WrapCSR(g), 2, nil); err == nil {
		t.Fatal("k<3 must fail")
	}
}

func TestDefaultDesc(t *testing.T) {
	d, err := DefaultDesc("Hash-2P", 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != core.Hash || !d.TwoPhase || d.Threads != 3 {
		t.Fatalf("desc = %+v", d)
	}
	if _, err := DefaultDesc("nope", 1); err == nil {
		t.Fatal("bad name")
	}
	if d.variant().Name() != "Hash-2P" {
		t.Fatal("variant name")
	}
}

func TestFlipMulPreservesSemantics(t *testing.T) {
	sr := semiring.PlusSecond()
	f := flipMul(sr)
	if f.Mul(3, 7) != sr.Mul(7, 3) {
		t.Fatal("flip broken")
	}
	if f.Add(1, 2) != 3 || f.Name == "" {
		t.Fatal("metadata broken")
	}
}
