package bench

// Machine-readable benchmark output. Each study appends Records to the
// run's Recorder; cmd/mspgemm-bench serializes them (BENCH_PR4.json under
// -json) so the perf trajectory can be tracked across PRs by tooling
// instead of by eyeballing TSV tables.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/hostid"
)

// Record is one measured case of one study.
type Record struct {
	// Study is the subcommand that produced the record ("schedule",
	// "maskrep", ...).
	Study string `json:"study"`
	// Case identifies the input × scheme combination within the study.
	Case string `json:"case"`
	// NsPerOp is the best-of-reps wall time per operation in nanoseconds
	// (negative when every rep errored).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the average heap allocations per operation, when the
	// study measures them.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries study-specific scalars (load imbalance factors,
	// driver pool misses, worker counts, speedups).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Recorder accumulates records across the studies of one run. Safe for
// concurrent use; a nil *Recorder discards everything, so studies record
// unconditionally.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// Add appends one record. No-op on a nil receiver.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Records returns a copy of everything recorded so far.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// benchFile is the serialized form: run metadata plus the records. The
// host block exists so two BENCH_PR*.json files can be compared knowing
// whether the hardware moved under the numbers.
type benchFile struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"num_cpu"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	CPUModel    string   `json:"cpu_model,omitempty"`
	Records     []Record `json:"records"`
}

// WriteJSON serializes the recorder's records to path.
func (r *Recorder) WriteJSON(path string) error {
	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUModel:    hostid.CPUModel(),
		Records:     r.Records(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
