package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/perfprof"
)

// ktrussK is the truss order the paper benchmarks (§8.3).
const ktrussK = 5

// ktrussProfile times k-truss (k=5) over the corpus for the given engines
// (subject to cfg.Engine).
func ktrussProfile(cfg Config, engines []apps.Engine) (*perfprof.Profile, error) {
	engines = overrideEngines(cfg, engines)
	corpus := Corpus(cfg)
	series := make([]perfprof.Series, len(engines))
	for ei := range engines {
		series[ei].Scheme = engines[ei].Name
		series[ei].Times = make([]float64, len(corpus))
	}
	for ci, g := range corpus {
		maybeExplain(cfg, "k-truss "+g.Name, g.Graph.Pattern(), g.Graph.Pattern(), g.Graph.Pattern())
		for ei, eng := range engines {
			series[ei].Times[ci] = minTime(cfg.reps(), func() (time.Duration, error) {
				_, r, err := apps.KTruss(g.Graph, ktrussK, eng)
				return r.MaskedTime, err
			})
		}
	}
	return perfprof.Compute(series, perfprof.DefaultTaus())
}

// Fig12 reproduces Figure 12: the k-truss performance profile of all 12
// proposed variants over the corpus. Expected: MSA best on cache-rich
// machines, Inner competitive (the mask sparsifies as pruning proceeds),
// heap-based schemes noncompetitive.
func Fig12(cfg Config) (*Table, error) {
	ses := cfg.Session()
	var engines []apps.Engine
	for _, v := range core.AllVariants() {
		engines = append(engines, ses.EngineVariant(v))
	}
	p, err := ktrussProfile(cfg, engines)
	if err != nil {
		return nil, err
	}
	return profileTable("Fig 12: k-truss (k=5) performance profile (our 12 variants)",
		[]string{"paper: MSA best (Haswell), Inner fairly good, 1P > 2P, heaps noncompetitive"}, p), nil
}

// Fig13 reproduces Figure 13: the four best k-truss schemes against the
// SS:GB-style baselines. Expected: MSA-1P and Inner-1P significantly beat
// both baselines.
func Fig13(cfg Config) (*Table, error) {
	ses := cfg.Session()
	engines := []apps.Engine{
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Inner, Phase: core.OnePhase}),
		ses.EngineSSSaxpy(),
		ses.EngineSSDot(),
	}
	p, err := ktrussProfile(cfg, engines)
	if err != nil {
		return nil, err
	}
	return profileTable("Fig 13: k-truss (k=5), ours vs SS:GB-style baselines",
		[]string{"paper: MSA-1P / Inner-1P significantly better than SS:GB"}, p), nil
}

// Fig14 reproduces Figure 14: k-truss GFLOPS as R-MAT scale grows.
// Expected: pull-based schemes (Inner, SS:DOT) improve their rate with
// scale as the mask sparsifies through pruning.
func Fig14(cfg Config) *Table {
	ses := cfg.Session()
	engines := []apps.Engine{
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Inner, Phase: core.OnePhase}),
		ses.EngineSSSaxpy(),
		ses.EngineSSDot(),
	}
	engines = overrideEngines(cfg, engines)
	t := &Table{
		Title: "Fig 14: k-truss (k=5) GFLOPS vs R-MAT scale",
		Notes: []string{"GFLOPS = 2*sum(flops)/sum(masked_time) over all rounds",
			"paper: Inner and SS:DOT grow with scale; pull-based schemes shine here"},
	}
	t.Header = []string{"scale"}
	for _, e := range engines {
		t.Header = append(t.Header, e.Name)
	}
	for scale := 8; scale <= cfg.MaxScale; scale++ {
		g := grgen.RMAT(scale, 16, cfg.Seed+uint64(scale))
		row := []string{fmt.Sprintf("%d", scale)}
		for _, eng := range engines {
			var gf float64
			sec := minTime(cfg.reps(), func() (time.Duration, error) {
				_, r, err := apps.KTruss(g, ktrussK, eng)
				if err == nil {
					gf = r.GFLOPS()
				}
				return r.MaskedTime, err
			})
			if sec < 0 {
				row = append(row, "err")
			} else {
				row = append(row, fmt.Sprintf("%.3f", gf))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
