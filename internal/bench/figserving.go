package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/masked"
)

// servingReq is one catalog entry of the serving workload.
type servingReq struct {
	name string
	req  masked.BatchReq
}

// servingCatalog builds the mixed serving workload: point queries of
// different shapes (triangle-counting products, squares, a complemented
// product, a different semiring) and sizes (tiny through medium). The hot
// subset models the zipf-shaped traffic a serving system sees — a few
// queries carry most of the volume.
func servingCatalog(cfg Config) (hot, cold []servingReq) {
	scale := 0
	if cfg.Quick {
		scale = -1
	}
	tc := func(name string, s, d int, seed uint64) servingReq {
		l := matrix.Tril(grgen.RMAT(s, d, seed))
		return servingReq{name: name, req: masked.BatchReq{
			M: l.Pattern(), A: l, B: l,
			Opts: []masked.Op{masked.WithAccumulate(masked.PlusPair())},
		}}
	}
	sq := func(name string, n matrix.Index, d float64, seed uint64, ops ...masked.Op) servingReq {
		g := grgen.ErdosRenyiSym(n, d, seed)
		return servingReq{name: name, req: masked.BatchReq{M: g.Pattern(), A: g, B: g, Opts: ops}}
	}
	// Hot queries are the heavier ones — in serving traffic the popular
	// entities are exactly the ones with large neighborhoods, which is why
	// coalescing them pays. Cold queries are the long tail of small
	// singletons.
	hot = []servingReq{
		tc("hot-tc-s8", 8+scale, 8, cfg.Seed+1),
		tc("hot-tc-s9", 9+scale, 8, cfg.Seed+2),
		sq("hot-sq-s8", 1<<(8+scale), 8, cfg.Seed+3),
		sq("hot-comp-s7", 1<<(7+scale), 4, cfg.Seed+4, masked.WithComplement()),
	}
	cold = []servingReq{
		tc("cold-tc-s6", 6+scale, 4, cfg.Seed+5),
		tc("cold-tc-s7", 7+scale, 4, cfg.Seed+6),
		sq("cold-sq-s7", 1<<(7+scale), 4, cfg.Seed+7),
		sq("cold-minplus-s7", 1<<(7+scale), 4, cfg.Seed+8, masked.WithAccumulate(masked.MinPlus())),
		sq("cold-comp-s6", 1<<(6+scale), 4, cfg.Seed+9, masked.WithComplement()),
		sq("cold-sq-s6", 1<<(6+scale), 8, cfg.Seed+10),
	}
	return hot, cold
}

// servingStream deals the catalog into batch windows the way serving
// traffic arrives: every window repeats each hot query several times and
// carries a couple of cold singletons. Windows are what MultiplyBatch sees;
// the serialized baseline runs the identical request sequence one at a
// time.
func servingStream(hot, cold []servingReq, windows, hotRepeat, coldPerWindow int) [][]servingReq {
	out := make([][]servingReq, windows)
	ci := 0
	for w := range out {
		var win []servingReq
		for r := 0; r < hotRepeat; r++ {
			win = append(win, hot...)
		}
		for c := 0; c < coldPerWindow; c++ {
			win = append(win, cold[ci%len(cold)])
			ci++
		}
		out[w] = win
	}
	return out
}

// ServingStudy measures the serving layer end to end: the same mixed query
// stream is answered once serially — each request a full-budget
// Session.Multiply, today's only option before the batch API — and once
// through Session.MultiplyBatch at increasing in-flight caps. Reported per
// configuration: wall time, throughput, speedup over the serialized
// baseline, how many requests were actually computed vs coalesced onto an
// identical in-flight twin, and the arbiter's steal/top-up counters. Every
// serving response is verified bit-identical to the serialized reference
// before any timing is trusted; a mismatch fails the study.
//
// The speedup has three sources, whose mix depends on the host: coalescing
// (hot duplicate queries computed once — the dominant term everywhere),
// arbitration (small queries no longer fan out to the full thread budget),
// and, on multi-core hosts, genuine overlap of independent requests.
func ServingStudy(cfg Config) (*Table, error) {
	maxInflight := cfg.Inflight
	if maxInflight <= 0 {
		maxInflight = 8
	}
	t := &Table{
		Title: "Serving study: serialized multiplies vs batched serving (mixed query stream)",
		Notes: []string{
			fmt.Sprintf("host GOMAXPROCS=%d, session budget threads=%d", runtime.GOMAXPROCS(0), cfg.Threads),
			"stream: zipf-shaped windows (hot queries repeated, cold singletons); serialized = one full-budget Multiply at a time",
			"computed/coalesced: requests executed vs answered from an identical in-flight request (results verified bit-identical)",
		},
		Header: []string{"config", "requests", "computed", "coalesced", "time_s", "req_per_s", "speedup", "steals", "topups"},
	}
	hot, cold := servingCatalog(cfg)
	windows := 4
	hotRepeat := 3
	if cfg.Quick {
		windows = 2
	}
	stream := servingStream(hot, cold, windows, hotRepeat, 2)
	total := 0
	for _, w := range stream {
		total += len(w)
	}
	ctx := context.Background()
	if cfg.Ctx != nil {
		ctx = cfg.Ctx
	}

	// Reference results, computed once on an isolated session.
	ref := masked.NewSession(masked.WithThreads(1))
	want := make(map[string]*masked.Matrix)
	for _, sr := range append(append([]servingReq{}, hot...), cold...) {
		c, err := ref.Multiply(ctx, sr.req.M, sr.req.A, sr.req.B, sr.req.Opts...)
		if err != nil {
			return nil, fmt.Errorf("serving reference %s: %v", sr.name, err)
		}
		want[sr.name] = c
	}

	// Serialized baseline: every request of every window, one at a time,
	// with the session's full thread budget — the pre-batch-API behavior.
	serial := masked.NewSession(masked.WithThreads(cfg.Threads))
	runSerial := func() (time.Duration, error) {
		t0 := time.Now()
		for _, win := range stream {
			for _, sr := range win {
				c, err := serial.Multiply(ctx, sr.req.M, sr.req.A, sr.req.B, sr.req.Opts...)
				if err != nil {
					return 0, err
				}
				if !matrix.Equal(c, want[sr.name], func(a, b float64) bool { return a == b }) {
					return 0, fmt.Errorf("serialized %s diverged from reference", sr.name)
				}
			}
		}
		return time.Since(t0), nil
	}
	if _, err := runSerial(); err != nil { // warm plan cache and pools
		return nil, err
	}
	serialSec := minTime(cfg.reps(), runSerial)
	if serialSec < 0 {
		return nil, fmt.Errorf("serving study: serialized baseline failed")
	}
	addRow := func(config string, computed, coalesced int, sec float64, steals, topups int64) {
		speedup := serialSec / sec
		t.Rows = append(t.Rows, []string{
			config, fmt.Sprintf("%d", total), fmt.Sprintf("%d", computed), fmt.Sprintf("%d", coalesced),
			fmt.Sprintf("%.4f", sec), fmt.Sprintf("%.0f", float64(total)/sec),
			fmt.Sprintf("%.2f", speedup), fmt.Sprintf("%d", steals), fmt.Sprintf("%d", topups),
		})
		cfg.Recorder.Add(Record{
			Study:   "serving",
			Case:    config,
			NsPerOp: int64(sec * 1e9 / float64(total)),
			Metrics: map[string]float64{
				"requests":       float64(total),
				"computed":       float64(computed),
				"coalesced":      float64(coalesced),
				"total_s":        sec,
				"req_per_s":      float64(total) / sec,
				"speedup":        speedup,
				"arbiter_steals": float64(steals),
				"arbiter_topups": float64(topups),
			},
		})
	}
	addRow("serialized", total, 0, serialSec, 0, 0)

	// Sweep powers of two up to the cap, always including the cap itself so
	// a non-power-of-two -inflight is measured at the requested value.
	var sweep []int
	for inflight := 1; inflight < maxInflight; inflight *= 2 {
		sweep = append(sweep, inflight)
	}
	sweep = append(sweep, maxInflight)
	for _, inflight := range sweep {
		s := masked.NewSession(masked.WithThreads(cfg.Threads), masked.WithInflight(inflight))
		var computed, coalesced int
		runBatch := func() (time.Duration, error) {
			computed, coalesced = 0, 0
			t0 := time.Now()
			for _, win := range stream {
				reqs := make([]masked.BatchReq, len(win))
				for i, sr := range win {
					reqs[i] = sr.req
					reqs[i].Tag = sr.name
				}
				for _, r := range s.MultiplyBatch(ctx, reqs) {
					if r.Err != nil {
						return 0, fmt.Errorf("serving %v: %v", r.Tag, r.Err)
					}
					if r.Coalesced {
						coalesced++
					} else {
						computed++
					}
					if !matrix.Equal(r.C, want[r.Tag.(string)], func(a, b float64) bool { return a == b }) {
						return 0, fmt.Errorf("serving %v diverged from serialized reference", r.Tag)
					}
				}
			}
			return time.Since(t0), nil
		}
		if _, err := runBatch(); err != nil { // warm
			return nil, err
		}
		stBefore := s.ServingStats()
		sec := minTime(cfg.reps(), runBatch)
		if sec < 0 {
			return nil, fmt.Errorf("serving study: inflight=%d run failed", inflight)
		}
		st := s.ServingStats()
		addRow(fmt.Sprintf("inflight=%d", inflight), computed, coalesced, sec,
			st.Steals-stBefore.Steals, st.TopUps-stBefore.TopUps)
	}

	// Honesty row: the same stream with duplicates pre-deduplicated, so the
	// speedup shown is arbitration+overlap alone, no coalescing.
	distinct := append(append([]servingReq{}, hot...), cold...)
	sd := masked.NewSession(masked.WithThreads(cfg.Threads), masked.WithInflight(maxInflight))
	runDistinct := func() (time.Duration, error) {
		t0 := time.Now()
		reqs := make([]masked.BatchReq, len(distinct))
		for i, sr := range distinct {
			reqs[i] = sr.req
			reqs[i].Tag = sr.name
		}
		for _, r := range sd.MultiplyBatch(ctx, reqs) {
			if r.Err != nil {
				return 0, fmt.Errorf("distinct %v: %v", r.Tag, r.Err)
			}
		}
		return time.Since(t0), nil
	}
	if _, err := runDistinct(); err != nil {
		return nil, err
	}
	distinctSec := minTime(cfg.reps(), runDistinct)
	serialDistinct := masked.NewSession(masked.WithThreads(cfg.Threads))
	runSerialDistinct := func() (time.Duration, error) {
		t0 := time.Now()
		for _, sr := range distinct {
			if _, err := serialDistinct.Multiply(ctx, sr.req.M, sr.req.A, sr.req.B, sr.req.Opts...); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	if _, err := runSerialDistinct(); err != nil {
		return nil, err
	}
	serialDistinctSec := minTime(cfg.reps(), runSerialDistinct)
	if distinctSec < 0 || serialDistinctSec < 0 {
		// The no-dup control row isolates arbitration from coalescing; a
		// study without it is incomplete, so fail loudly like the main sweep
		// rather than silently omitting the record.
		return nil, fmt.Errorf("serving study: no-dup control runs failed")
	}
	{
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("no-dup inflight=%d", maxInflight), fmt.Sprintf("%d", len(distinct)),
			fmt.Sprintf("%d", len(distinct)), "0",
			fmt.Sprintf("%.4f", distinctSec), fmt.Sprintf("%.0f", float64(len(distinct))/distinctSec),
			fmt.Sprintf("%.2f", serialDistinctSec/distinctSec), "-", "-",
		})
		cfg.Recorder.Add(Record{
			Study:   "serving",
			Case:    fmt.Sprintf("no-dup/inflight=%d", maxInflight),
			NsPerOp: int64(distinctSec * 1e9 / float64(len(distinct))),
			Metrics: map[string]float64{
				"requests":  float64(len(distinct)),
				"computed":  float64(len(distinct)),
				"coalesced": 0,
				"total_s":   distinctSec,
				"speedup":   serialDistinctSec / distinctSec,
			},
		})
	}
	return t, nil
}
