// Package bench is the experiment harness: one entry point per table/figure
// of the paper's evaluation (§8), each regenerating the corresponding data
// series on this machine. The cmd/mspgemm-bench CLI and the root-level
// testing.B benchmarks both drive this package.
//
// Substitutions relative to the paper's testbed (see DESIGN.md): the 26
// SuiteSparse real-world graphs are replaced by a deterministic synthetic
// corpus spanning the same density/skew regimes, R-MAT scales default to
// laptop-sized ranges, and the two machines (Haswell/KNL) collapse to the
// host.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/perfprof"
	"repro/internal/planner"
)

// Config controls workload sizes so the harness scales from smoke test to
// full reproduction.
type Config struct {
	// Threads for all parallel kernels; 0 = GOMAXPROCS.
	Threads int
	// Seed for all generators.
	Seed uint64
	// Reps is the number of timing repetitions (minimum taken).
	Reps int
	// MaxScale caps R-MAT scale sweeps (paper: 20).
	MaxScale int
	// BatchSize is the BC batch (paper: 512).
	BatchSize int
	// Quick shrinks grids and corpora for smoke runs.
	Quick bool
	// Engine, when non-empty, replaces each application figure's scheme
	// grid with the single named scheme: "Auto" (the adaptive planner), a
	// variant name like "MSA-1P", or a baseline ("SS:DOT", "SS:SAXPY").
	Engine string
	// MaskRep pins the mask representation for every kernel of the run
	// (RepAuto lets the planner pick per block).
	MaskRep core.MaskRep
	// Sched pins the row-scheduling policy for every kernel of the run
	// (SchedAuto engages cost-balanced spans on skewed cost profiles).
	Sched core.Sched
	// Inflight is the largest in-flight request count the serving study
	// sweeps (0 = 8, the study's reference point).
	Inflight int
	// Recorder, if non-nil, collects machine-readable per-case results for
	// the -json output (BENCH_PR4.json).
	Recorder *Recorder
	// Explain prints the adaptive plan of each corpus input's masked
	// product to stderr before timing it.
	Explain bool
	// Ctx, if non-nil, cancels in-flight kernels cooperatively (the CLI's
	// -timeout flag); a run that exceeds it fails with ctx.Err().
	Ctx context.Context
	// Engines, if non-nil, scopes engine construction for the whole run:
	// every figure builds its schemes from this session, sharing one plan
	// cache. Nil falls back to a fresh session per figure.
	Engines *apps.Session
}

// Options returns the core execution options every kernel of the run uses
// (one thread budget and context for variants and baselines alike).
func (c Config) Options() core.Options {
	return core.Options{Threads: c.Threads, MaskRep: c.MaskRep, Sched: c.Sched, Ctx: c.Ctx}
}

// Session returns the run's engine session (cfg.Engines), or a fresh one
// per call when the caller did not provide one — set Engines to share a
// plan cache across figures and measurements.
func (c Config) Session() *apps.Session {
	if c.Engines != nil {
		return c.Engines
	}
	return apps.NewSession(c.Options())
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Threads:   runtime.GOMAXPROCS(0),
		Seed:      1,
		Reps:      3,
		MaxScale:  13,
		BatchSize: 64,
	}
}

func (c Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

// Table is a printable result table.
type Table struct {
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// Fprint writes the table as TSV with a title banner.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// NamedGraph is one corpus entry.
type NamedGraph struct {
	Name  string
	Graph *matrix.CSR[float64]
}

// Corpus returns the synthetic stand-in for the paper's 26 SuiteSparse
// graphs: R-MAT graphs (power-law degrees, Graph500 parameters) and
// symmetric Erdős–Rényi graphs (flat degrees) across a grid of sizes and
// densities. Deterministic in cfg.Seed.
func Corpus(cfg Config) []NamedGraph {
	type spec struct {
		kind  string
		scale int
		deg   int
	}
	var specs []spec
	if cfg.Quick {
		specs = []spec{
			{"rmat", 8, 8}, {"rmat", 9, 8}, {"rmat", 9, 16},
			{"er", 8, 4}, {"er", 9, 8}, {"er", 9, 16},
		}
	} else {
		for _, s := range []int{9, 10, 11, 12} {
			for _, d := range []int{4, 8, 16} {
				specs = append(specs, spec{"rmat", s, d})
			}
		}
		for _, s := range []int{9, 10, 11, 12} {
			for _, d := range []int{2, 8, 32} {
				specs = append(specs, spec{"er", s, d})
			}
		}
		specs = append(specs, spec{"rmat", 13, 8}, spec{"er", 13, 4})
		// Structural outliers: small-world (triangle-rich), preferential
		// attachment (heavy tail without R-MAT blocking), regular mesh
		// (banded, triangle-free).
		specs = append(specs,
			spec{"ws", 11, 8}, spec{"ws", 12, 16},
			spec{"ba", 11, 4}, spec{"ba", 12, 8},
			spec{"grid", 11, 0}, spec{"grid", 12, 0})
	}
	out := make([]NamedGraph, 0, len(specs))
	seed := cfg.Seed
	for _, sp := range specs {
		seed++
		n := matrix.Index(1) << sp.scale
		var g *matrix.CSR[float64]
		switch sp.kind {
		case "rmat":
			g = grgen.RMAT(sp.scale, sp.deg, seed)
		case "er":
			g = grgen.ErdosRenyiSym(n, float64(sp.deg), seed)
		case "ws":
			g = grgen.WattsStrogatz(n, sp.deg, 0.1, seed)
		case "ba":
			g = grgen.BarabasiAlbert(n, sp.deg, seed)
		case "grid":
			side := matrix.Index(1) << (sp.scale / 2)
			g = grgen.Grid2D(side, n/side)
		}
		out = append(out, NamedGraph{
			Name:  fmt.Sprintf("%s-s%d-d%d", sp.kind, sp.scale, sp.deg),
			Graph: g,
		})
	}
	return out
}

// overrideEngines applies cfg.Engine to a figure's default scheme set:
// unset keeps the paper's grid, otherwise the single named engine runs.
// Unknown names fall back to the default grid (the CLI validates upfront).
func overrideEngines(cfg Config, def []apps.Engine) []apps.Engine {
	if cfg.Engine == "" {
		return def
	}
	e, err := cfg.Session().EngineByName(cfg.Engine)
	if err != nil {
		return def
	}
	return []apps.Engine{e}
}

// maybeExplain prints the adaptive plan for the product M .* (A·B) under
// cfg.Explain.
func maybeExplain(cfg Config, name string, m *matrix.Pattern, a, b *matrix.Pattern) {
	if !cfg.Explain {
		return
	}
	fmt.Fprintf(os.Stderr, "# plan for %s\n%s", name,
		planner.Analyze(m, a, b, cfg.Options()).Explain())
}

// minTime runs f reps times and returns the smallest positive duration in
// seconds, or NaN-equivalent failure (negative) if every run errored.
func minTime(reps int, f func() (time.Duration, error)) float64 {
	best := -1.0
	for r := 0; r < reps; r++ {
		d, err := f()
		if err != nil {
			continue
		}
		s := d.Seconds()
		if best < 0 || s < best {
			best = s
		}
	}
	return best
}

// profileTable renders a perfprof result as a Table.
func profileTable(title string, notes []string, p *perfprof.Profile) *Table {
	t := &Table{Title: title, Notes: notes}
	t.Header = append([]string{"tau"}, p.Schemes...)
	for ti, tau := range p.Taus {
		row := []string{fmt.Sprintf("%.2f", tau)}
		for si := range p.Schemes {
			row = append(row, fmt.Sprintf("%.3f", p.Frac[si][ti]))
		}
		t.Rows = append(t.Rows, row)
	}
	winRow := []string{"wins"}
	for si := range p.Schemes {
		winRow = append(winRow, fmt.Sprintf("%d/%d", p.Wins[si], p.Cases))
	}
	t.Rows = append(t.Rows, winRow)
	best, frac := p.BestScheme()
	t.Notes = append(t.Notes, fmt.Sprintf("best scheme: %s (wins %.0f%% of cases)", best, frac*100))
	return t
}
