package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// MaskRepStudy measures the mask-representation subsystem on the two
// dense-mask workload shapes it targets:
//
//   - the k-truss support product S = A .* (A·A) (§8.3), where the mask is
//     the adjacency itself — every A entry re-walks a dense mask row under
//     the CSR merge probe;
//   - the multi-source BFS expansion N = ¬V .* (F·A), where the visited
//     mask densifies as the traversal saturates.
//
// For each shape it times the probe-based kernels with the representation
// pinned to CSR and to bitmap and reports the speedup. RepAuto's per-block
// choice is what the planner would run; the pinned columns isolate the
// representation's own effect. Results are bit-identical across columns by
// construction, so the comparison is purely about time.
func MaskRepStudy(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Mask representation study: CSR probe vs bitmap on dense masks",
		Notes: []string{
			"ktruss shape: S = A .* (A·A) plus-pair; msbfs shape: N = ¬V .* (F·A) after two expansion rounds",
			"expected: bitmap ≥ 1x on dense masks (MCA sheds its per-A-entry mask merge; Hash sheds its mask-preinserted table)",
		},
		Header: []string{"input", "shape", "kernel", "csr_s", "bitmap_s", "speedup"},
	}
	scale, deg := 11, 16
	if cfg.Quick {
		scale, deg = 9, 8
	}
	graphs := []NamedGraph{
		{Name: fmt.Sprintf("rmat-s%d-d%d", scale, deg), Graph: grgen.RMAT(scale, deg, cfg.Seed+1)},
		{Name: fmt.Sprintf("er-s%d-d%d", scale, 2*deg), Graph: grgen.ErdosRenyiSym(1<<scale, float64(2*deg), cfg.Seed+2)},
	}
	type scenario struct {
		input, shape string
		m            *matrix.Pattern
		a, b         *matrix.CSR[float64]
		complement   bool
		algs         []core.Algorithm
	}
	var scens []scenario
	for _, g := range graphs {
		// k-truss round-1 support counting: mask, A and B are all the graph.
		scens = append(scens, scenario{
			input: g.Name, shape: "ktruss", m: g.Graph.Pattern(), a: g.Graph, b: g.Graph,
			algs: []core.Algorithm{core.MCA, core.Hash, core.Heap},
		})
		// Multi-source BFS round 3: two expansion rounds build the visited
		// mask, then the measured product expands the round-2 frontier
		// against its complement. MCA cannot run complemented masks.
		if m, f, err := msbfsRound(g.Graph, 64, cfg); err == nil {
			scens = append(scens, scenario{
				input: g.Name, shape: "msbfs", m: m, a: f, b: g.Graph, complement: true,
				algs: []core.Algorithm{core.Hash, core.Heap},
			})
		}
	}
	sr := semiring.PlusPairF()
	for _, sc := range scens {
		for _, alg := range sc.algs {
			v := core.Variant{Alg: alg, Phase: core.OnePhase}
			times := make(map[core.MaskRep]float64)
			for _, rep := range []core.MaskRep{core.RepCSR, core.RepBitmap} {
				opt := cfg.Options()
				opt.Complement = sc.complement
				opt.MaskRep = rep
				sec := minTime(cfg.reps(), func() (time.Duration, error) {
					t0 := time.Now()
					_, err := core.MaskedSpGEMM(v, sc.m, sc.a, sc.b, sr, opt)
					return time.Since(t0), err
				})
				times[rep] = sec
				nsPerOp := int64(-1)
				if sec >= 0 {
					nsPerOp = int64(sec * 1e9)
				}
				cfg.Recorder.Add(Record{
					Study:   "maskrep",
					Case:    sc.input + "/" + sc.shape + "/" + v.Name() + "/" + rep.String(),
					NsPerOp: nsPerOp,
				})
			}
			row := []string{sc.input, sc.shape, v.Name()}
			csr, bm := times[core.RepCSR], times[core.RepBitmap]
			if csr < 0 || bm < 0 {
				row = append(row, "err", "err", "err")
			} else {
				row = append(row, fmt.Sprintf("%.4f", csr), fmt.Sprintf("%.4f", bm),
					fmt.Sprintf("%.2fx", csr/bm))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// msbfsRound runs two rounds of multi-source frontier expansion from nsrc
// deterministic sources and returns the visited mask and current frontier —
// the operands of the round-3 product MaskRepStudy measures.
func msbfsRound(g *matrix.CSR[float64], nsrc matrix.Index, cfg Config) (*matrix.Pattern, *matrix.CSR[float64], error) {
	n := g.NRows
	if nsrc > n {
		nsrc = n
	}
	coo := &matrix.COO[float64]{NRows: nsrc, NCols: n}
	stride := n / nsrc
	if stride == 0 {
		stride = 1
	}
	for s := matrix.Index(0); s < nsrc; s++ {
		coo.Row = append(coo.Row, s)
		coo.Col = append(coo.Col, (s*stride)%n)
		coo.Val = append(coo.Val, 1)
	}
	frontier := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return 1 })
	visited := frontier.Clone()
	sr := semiring.PlusPairF()
	opt := cfg.Options()
	opt.Complement = true
	for round := 0; round < 2; round++ {
		next, err := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase},
			visited.Pattern(), frontier, g, sr, opt)
		if err != nil {
			return nil, nil, err
		}
		if next.NNZ() == 0 {
			break
		}
		visited = matrix.EWiseAdd(visited, next, func(x, y float64) float64 { return 1 })
		frontier = next
	}
	return visited.Pattern(), frontier, nil
}
