package bench

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/perfprof"
)

// bcEngines is the scheme set of the BC plots: the paper keeps MSA and Hash
// (1P/2P) plus SS:SAXPY, excluding MCA (no complement), Heap, Inner and
// SS:DOT (prohibitively slow under the dense masks BC produces).
func bcEngines(ses *apps.Session) []apps.Engine {
	return []apps.Engine{
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.TwoPhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.TwoPhase}),
		ses.EngineSSSaxpy(),
	}
}

// bcSources picks a deterministic source batch for a graph: the batch
// cycles through vertices with stride so sources spread over the id space.
func bcSources(n matrix.Index, batch int, seed uint64) []matrix.Index {
	if int(n) < 1 {
		return nil
	}
	if batch > int(n) {
		batch = int(n)
	}
	out := make([]matrix.Index, batch)
	stride := uint64(n)/uint64(batch) + 1
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = matrix.Index((uint64(i)*stride + x%stride) % uint64(n))
	}
	return out
}

// Fig15 reproduces Figure 15: betweenness centrality MTEPS as R-MAT scale
// grows (paper: batch 512, scale 8–20). Expected: push-based schemes
// (MSA-1P, Hash-1P, SS:SAXPY) increase MTEPS with scale.
func Fig15(cfg Config) *Table {
	engines := overrideEngines(cfg, bcEngines(cfg.Session()))
	t := &Table{
		Title: "Fig 15: Betweenness Centrality MTEPS vs R-MAT scale",
		Notes: []string{fmt.Sprintf("MTEPS = batch*edges/total_time/1e6, batch=%d (paper: 512)", cfg.BatchSize),
			"paper: push-based schemes increase MTEPS with scale"},
	}
	t.Header = []string{"scale"}
	for _, e := range engines {
		t.Header = append(t.Header, e.Name)
	}
	for scale := 8; scale <= cfg.MaxScale; scale++ {
		g := grgen.RMAT(scale, 16, cfg.Seed+uint64(scale))
		sources := bcSources(g.NRows, cfg.BatchSize, cfg.Seed)
		row := []string{fmt.Sprintf("%d", scale)}
		for _, eng := range engines {
			var mteps float64
			sec := minTime(cfg.reps(), func() (time.Duration, error) {
				r, err := apps.BetweennessCentrality(g, sources, eng)
				if err == nil {
					mteps = r.MTEPS()
				}
				return r.TotalTime, err
			})
			if sec < 0 {
				row = append(row, "err")
			} else {
				row = append(row, fmt.Sprintf("%.2f", mteps))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig16 reproduces Figure 16: the BC performance profile (forward +
// backward masked SpGEMM time) over the corpus. Expected: MSA-1P best on
// every instance, 1P > 2P.
func Fig16(cfg Config) (*Table, error) {
	engines := overrideEngines(cfg, bcEngines(cfg.Session()))
	corpus := Corpus(cfg)
	series := make([]perfprof.Series, len(engines))
	for ei := range engines {
		series[ei].Scheme = engines[ei].Name
		series[ei].Times = make([]float64, len(corpus))
	}
	for ci, g := range corpus {
		sources := bcSources(g.Graph.NRows, cfg.BatchSize, cfg.Seed+uint64(ci))
		for ei, eng := range engines {
			series[ei].Times[ci] = minTime(cfg.reps(), func() (time.Duration, error) {
				r, err := apps.BetweennessCentrality(g.Graph, sources, eng)
				return r.MaskedTime, err
			})
		}
	}
	p, err := perfprof.Compute(series, perfprof.DefaultTaus())
	if err != nil {
		return nil, err
	}
	return profileTable("Fig 16: Betweenness Centrality, ours vs SS:SAXPY",
		[]string{"masked SpGEMM time (forward complemented + backward), batch=" + fmt.Sprint(cfg.BatchSize),
			"paper: MSA-1P best in all test instances"}, p), nil
}
