package bench

// The serve-load study: the serving stack measured through the actual
// network path. A real mspgemm server (internal/server on an ephemeral
// localhost port) is driven by concurrent wire-protocol clients with a
// zipf-shaped mixed workload, and per-request latencies are collected
// client-side — so the numbers include frame encode/decode, HTTP transport,
// validation/interning, admission, and execution, exactly what a deployment
// sees. Every response is verified bit-identical to an in-process reference
// before any timing is trusted.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/masked"
)

// serveLoadReq is one catalog entry in wire-protocol terms.
type serveLoadReq struct {
	name       string
	m          *matrix.Pattern
	a, b       *masked.Matrix
	semiring   string
	complement bool
}

// wireReq builds the frame struct for one send.
func (r *serveLoadReq) wireReq() *wire.MultiplyReq {
	var flags uint16
	if r.complement {
		flags |= wire.FlagComplement
	}
	return &wire.MultiplyReq{Flags: flags, Semiring: r.semiring, M: r.m, A: r.a, B: r.b}
}

// opts maps the entry onto descriptor options for the in-process
// reference computation.
func (r *serveLoadReq) opts() ([]masked.Op, error) {
	var opts []masked.Op
	if r.semiring != "" {
		sr, err := masked.SemiringByName(r.semiring)
		if err != nil {
			return nil, err
		}
		opts = append(opts, masked.WithAccumulate(sr))
	}
	if r.complement {
		opts = append(opts, masked.WithComplement())
	}
	return opts, nil
}

// serveLoadCatalog mirrors the serving study's mixed workload in wire
// terms: hot queries (the heavy, popular ones) and a cold long tail.
func serveLoadCatalog(cfg Config) (hot, cold []serveLoadReq) {
	scale := 0
	if cfg.Quick {
		scale = -1
	}
	tc := func(name string, s, d int, seed uint64) serveLoadReq {
		l := matrix.Tril(grgen.RMAT(s, d, seed))
		return serveLoadReq{name: name, m: l.Pattern(), a: l, b: l, semiring: "plus-pair"}
	}
	sq := func(name string, n matrix.Index, d float64, seed uint64, semiring string, compl bool) serveLoadReq {
		g := grgen.ErdosRenyiSym(n, d, seed)
		return serveLoadReq{name: name, m: g.Pattern(), a: g, b: g, semiring: semiring, complement: compl}
	}
	hot = []serveLoadReq{
		tc("hot-tc-s8", 8+scale, 8, cfg.Seed+1),
		tc("hot-tc-s9", 9+scale, 8, cfg.Seed+2),
		sq("hot-sq-s8", 1<<(8+scale), 8, cfg.Seed+3, "", false),
		sq("hot-comp-s7", 1<<(7+scale), 4, cfg.Seed+4, "", true),
	}
	cold = []serveLoadReq{
		tc("cold-tc-s6", 6+scale, 4, cfg.Seed+5),
		tc("cold-tc-s7", 7+scale, 4, cfg.Seed+6),
		sq("cold-sq-s7", 1<<(7+scale), 4, cfg.Seed+7, "", false),
		sq("cold-minplus-s7", 1<<(7+scale), 4, cfg.Seed+8, "min-plus", false),
		sq("cold-comp-s6", 1<<(6+scale), 4, cfg.Seed+9, "", true),
		sq("cold-sq-s6", 1<<(6+scale), 8, cfg.Seed+10, "", false),
	}
	return hot, cold
}

// pctile reads the q-quantile of an ascending latency slice.
func pctile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// ServeLoadStudy boots a live server per in-flight level (1..cfg.Inflight)
// and drives it over localhost with that many concurrent wire clients
// issuing a deterministic zipf-shaped request sequence (hot queries carry
// ~6× the weight of cold ones). Reported per level: p50/p95/p99 request
// latency, throughput, client retries after 429, responses answered by
// coalescing, and the operand-intern/plan-cache hit counts that restored
// operand identity across the wire.
func ServeLoadStudy(cfg Config) (*Table, error) {
	maxInflight := cfg.Inflight
	if maxInflight <= 0 {
		maxInflight = 8
	}
	nreq := 120
	if cfg.Quick {
		nreq = 36
	}
	ctx := context.Background()
	if cfg.Ctx != nil {
		ctx = cfg.Ctx
	}

	hot, cold := serveLoadCatalog(cfg)
	catalog := append(append([]serveLoadReq{}, hot...), cold...)

	// Reference results on an isolated in-process session.
	ref := masked.NewSession(masked.WithThreads(1))
	want := make(map[string]*masked.Matrix, len(catalog))
	for i := range catalog {
		e := &catalog[i]
		opts, err := e.opts()
		if err != nil {
			return nil, fmt.Errorf("serve-load %s: %v", e.name, err)
		}
		c, err := ref.Multiply(ctx, e.m, e.a, e.b, opts...)
		if err != nil {
			return nil, fmt.Errorf("serve-load reference %s: %v", e.name, err)
		}
		want[e.name] = c
	}

	// Deterministic zipf-shaped sequence: hot entries weighted 6:1.
	var weighted []int
	for i := range catalog {
		w := 1
		if i < len(hot) {
			w = 6
		}
		for k := 0; k < w; k++ {
			weighted = append(weighted, i)
		}
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 77))
	seq := make([]int, nreq)
	for i := range seq {
		seq[i] = weighted[rng.Intn(len(weighted))]
	}

	t := &Table{
		Title: "Serve-load study: wire-protocol latency over a live localhost server",
		Notes: []string{
			fmt.Sprintf("host GOMAXPROCS=%d, session budget threads=%d", runtime.GOMAXPROCS(0), cfg.Threads),
			fmt.Sprintf("one server per level (WithInflight=k), driven by k concurrent clients, %d requests each level", nreq),
			"latency is client-observed: encode + HTTP + decode/validate/intern + admission + execute + encode",
			"zipf mix: hot queries weighted 6:1 over the cold tail; every response verified bit-identical to an in-process reference",
			"retries: client resubmissions after 429 (admission saturated); coalesced: responses answered by an identical in-flight twin",
		},
		Header: []string{"config", "requests", "p50_ms", "p95_ms", "p99_ms", "req_per_s",
			"retries", "coalesced", "intern_hits", "plan_hits"},
	}

	var sweep []int
	for k := 1; k < maxInflight; k *= 2 {
		sweep = append(sweep, k)
	}
	sweep = append(sweep, maxInflight)

	for _, k := range sweep {
		local, err := server.StartLocal(server.Config{Threads: cfg.Threads, Inflight: k})
		if err != nil {
			return nil, fmt.Errorf("serve-load: start server: %v", err)
		}
		hc := &http.Client{}
		client := server.NewClient(local.URL, hc)

		// Warm pass: intern every operand and populate the plan cache, the
		// steady state a serving deployment reaches after its first minutes.
		for i := range catalog {
			if _, err := client.Multiply(ctx, catalog[i].wireReq()); err != nil {
				local.Close()
				return nil, fmt.Errorf("serve-load warm %s: %v", catalog[i].name, err)
			}
		}

		lat := make([]time.Duration, nreq)
		var next, retries, coalesced int64
		var mu sync.Mutex
		var firstErr error
		var wg sync.WaitGroup
		var nextMu sync.Mutex
		take := func() int {
			nextMu.Lock()
			defer nextMu.Unlock()
			i := next
			next++
			return int(i)
		}
		t0 := time.Now()
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var myRetries, myCoalesced int64
				for {
					i := take()
					if i >= nreq {
						break
					}
					e := &catalog[seq[i]]
					start := time.Now()
					for {
						res, err := client.Multiply(ctx, e.wireReq())
						if errors.Is(err, server.ErrSaturated) {
							myRetries++
							time.Sleep(time.Millisecond)
							continue
						}
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("serve-load %s: %v", e.name, err)
							}
							mu.Unlock()
							return
						}
						if res.Flags&wire.FlagCoalesced != 0 {
							myCoalesced++
						}
						if !matrix.Equal(res.C, want[e.name], func(a, b float64) bool { return a == b }) {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("serve-load %s: wire result diverged from reference", e.name)
							}
							mu.Unlock()
							return
						}
						break
					}
					lat[i] = time.Since(start)
				}
				mu.Lock()
				retries += myRetries
				coalesced += myCoalesced
				mu.Unlock()
			}()
		}
		wg.Wait()
		wall := time.Since(t0).Seconds()
		snap := local.Server.Metrics()
		hc.CloseIdleConnections()
		if err := local.Close(); err != nil {
			return nil, fmt.Errorf("serve-load: drain inflight=%d: %v", k, err)
		}
		if firstErr != nil {
			return nil, firstErr
		}

		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p50, p95, p99 := pctile(sorted, 0.50), pctile(sorted, 0.95), pctile(sorted, 0.99)
		ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("inflight=%d", k), fmt.Sprintf("%d", nreq),
			ms(p50), ms(p95), ms(p99), fmt.Sprintf("%.0f", float64(nreq)/wall),
			fmt.Sprintf("%d", retries), fmt.Sprintf("%d", coalesced),
			fmt.Sprintf("%d", snap.InternHits), fmt.Sprintf("%d", snap.Session.Cache.Hits),
		})
		cfg.Recorder.Add(Record{
			Study:   "serve-load",
			Case:    fmt.Sprintf("inflight=%d", k),
			NsPerOp: p50.Nanoseconds(),
			Metrics: map[string]float64{
				"requests":         float64(nreq),
				"p50_ms":           float64(p50.Nanoseconds()) / 1e6,
				"p95_ms":           float64(p95.Nanoseconds()) / 1e6,
				"p99_ms":           float64(p99.Nanoseconds()) / 1e6,
				"req_per_s":        float64(nreq) / wall,
				"retries":          float64(retries),
				"coalesced":        float64(coalesced),
				"intern_hits":      float64(snap.InternHits),
				"intern_misses":    float64(snap.InternMisses),
				"plan_cache_hits":  float64(snap.Session.Cache.Hits),
				"rejected":         float64(snap.Rejected),
				"arbiter_admitted": float64(snap.Session.Arbiter.Admitted),
				"bytes_in":         float64(snap.BytesIn),
				"bytes_out":        float64(snap.BytesOut),
			},
		})
	}
	return t, nil
}
