package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// KernelsStudy measures what the monomorphized operator loops buy over the
// func-field fallback, per named semiring, on the regime where operators
// actually execute: the triangle-counting product C = L .* (L·L) on a flat,
// triangle-dense graph (Watts-Strogatz with low rewiring — the standard
// high-clustering model; k-truss peeling iterates the same product). On
// that input most mask probes hit, so every flop reaches Add/Mul and the
// call-vs-inline difference is the row cost. Miss-dominated inputs (sparse
// ER masks) spend their time in probe code both paths share, and the ratio
// shrinks toward 1 — see PERFORMANCE.md.
//
// For each case the study runs both paths on the same warmed workspaces,
// asserts the outputs are bit-identical (the loops_gen.go contract: the
// specialized loops replicate the generic operation order exactly), and
// reports best-of-reps times plus the speedup. Threads is pinned to 1:
// operator inlining is a per-row serial effect and the single-thread ratio
// is the host-independent signal. Every case lands in cfg.Recorder for
// BENCH_PR6.json, plus a final geomean record.
func KernelsStudy(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Kernels study: monomorphized (inlined) vs funcptr operator loops (TC product, triangle-dense)",
		Notes: []string{
			"input: Watts-Strogatz (low beta) lower triangle, mask = L's pattern — the mask-hit-dominated TC/k-truss regime",
			"threads pinned to 1: inlining is a per-row serial effect; the single-thread ratio is the portable signal",
			"bit-identity between both paths is asserted on every case before timing",
		},
		Header: []string{"semiring", "variant", "inlined_s", "funcptr_s", "speedup"},
	}
	scale, deg := 13, 32
	if cfg.Quick {
		scale, deg = 10, 16
	}
	g := grgen.WattsStrogatz(1<<scale, deg, 0.05, cfg.Seed)
	l := matrix.Tril(matrix.Permute(g, matrix.DegreeDescPerm(g)))
	m := l.Pattern()
	t.Notes = append(t.Notes, fmt.Sprintf("L: %d rows, %d nnz", l.NRows, l.NNZ()))

	li := matrix.MapValues(l, func(v float64) int64 { return int64(v) + 1 })
	lb := matrix.MapValues(l, func(v float64) bool { return true })

	msa1 := core.Variant{Alg: core.MSA, Phase: core.OnePhase}
	hash1 := core.Variant{Alg: core.Hash, Phase: core.OnePhase}
	mca1 := core.Variant{Alg: core.MCA, Phase: core.OnePhase}

	eqF := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	eqI := func(x, y int64) bool { return x == y }
	eqB := func(x, y bool) bool { return x == y }

	var speedups []float64
	addF := func(sr semiring.Semiring[float64], v core.Variant) error {
		s, err := kernelsCase(cfg, t, v, m, l, sr, eqF)
		speedups = append(speedups, s)
		return err
	}

	// Every float64 named semiring on the planner's main TC pick (MSA-1P),
	// then plus-pair-f64 across the other specialized accumulators so the
	// hash-probe and MCA loop families show up in the record.
	for _, sr := range []semiring.Semiring[float64]{
		semiring.Arithmetic(), semiring.PlusPairF(), semiring.MinPlus(),
		semiring.PlusSecond(), semiring.PlusFirst(), semiring.MaxTimes(),
	} {
		if err := addF(sr, msa1); err != nil {
			return nil, err
		}
	}
	if err := addF(semiring.PlusPairF(), hash1); err != nil {
		return nil, err
	}
	if err := addF(semiring.PlusPairF(), mca1); err != nil {
		return nil, err
	}
	for _, sr := range []semiring.Semiring[int64]{semiring.ArithmeticInt(), semiring.PlusPair()} {
		s, err := kernelsCase(cfg, t, msa1, m, li, sr, eqI)
		if err != nil {
			return nil, err
		}
		speedups = append(speedups, s)
	}
	s, err := kernelsCase(cfg, t, msa1, m, lb, semiring.Boolean(), eqB)
	if err != nil {
		return nil, err
	}
	speedups = append(speedups, s)

	geo := geomean(speedups)
	t.Rows = append(t.Rows, []string{"geomean", "", "", "", fmt.Sprintf("%.2fx", geo)})
	cfg.Recorder.Add(Record{
		Study:   "kernels",
		Case:    "geomean",
		NsPerOp: -1,
		Metrics: map[string]float64{"speedup_geomean": geo, "cases": float64(len(speedups))},
	})
	return t, nil
}

// kernelsCase times one semiring × variant with the named operator type
// (monomorphized loops) and with Ops stripped (funcptr fallback), after
// asserting both produce bit-identical output, and returns the speedup
// funcptr/inlined.
func kernelsCase[T any](cfg Config, t *Table, v core.Variant, m *matrix.Pattern, l *matrix.CSR[T], sr semiring.Semiring[T], eq func(T, T) bool) (float64, error) {
	fp := sr
	fp.Ops = nil
	opt := cfg.Options()
	opt.Threads = 1 // see study doc: single-thread ratio is the signal
	ws := core.NewWorkspaces()
	opt.Workspaces = ws

	// Warm the pools and check the loops_gen.go contract before timing.
	want, err := core.MaskedSpGEMM(v, m, l, l, fp, opt)
	if err != nil {
		return 0, fmt.Errorf("kernels %s/%s funcptr: %w", sr.Name, v.Name(), err)
	}
	got, err := core.MaskedSpGEMM(v, m, l, l, sr, opt)
	if err != nil {
		return 0, fmt.Errorf("kernels %s/%s inlined: %w", sr.Name, v.Name(), err)
	}
	if !matrix.Equal(got, want, eq) {
		return 0, fmt.Errorf("kernels %s/%s: inlined result not bit-identical to funcptr", sr.Name, v.Name())
	}

	reps := cfg.reps()
	secInl := minTime(reps, func() (time.Duration, error) {
		t0 := time.Now()
		_, err := core.MaskedSpGEMM(v, m, l, l, sr, opt)
		return time.Since(t0), err
	})
	secFp := minTime(reps, func() (time.Duration, error) {
		t0 := time.Now()
		_, err := core.MaskedSpGEMM(v, m, l, l, fp, opt)
		return time.Since(t0), err
	})
	if secInl < 0 || secFp < 0 {
		return 0, fmt.Errorf("kernels %s/%s: timing rep errored", sr.Name, v.Name())
	}
	speedup := secFp / secInl
	t.Rows = append(t.Rows, []string{
		sr.Name, v.Name(),
		fmt.Sprintf("%.4f", secInl), fmt.Sprintf("%.4f", secFp),
		fmt.Sprintf("%.2fx", speedup),
	})
	cfg.Recorder.Add(Record{
		Study:   "kernels",
		Case:    fmt.Sprintf("%s/%s", sr.Name, v.Name()),
		NsPerOp: int64(secInl * 1e9),
		Metrics: map[string]float64{
			"funcptr_ns": secFp * 1e9,
			"speedup":    speedup,
		},
	})
	return speedup, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
