package bench

import (
	"strconv"

	"repro/internal/asciiplot"
)

// RenderTablePlot draws a Table whose first column is a numeric x-axis and
// whose remaining columns are numeric series (profile fractions, GFLOPS,
// MTEPS) as a terminal line chart. Non-numeric rows (e.g. the "wins" row)
// and cells ("err", "-") are skipped. Returns "" when nothing is
// plottable.
func RenderTablePlot(t *Table) string {
	if len(t.Header) < 2 {
		return ""
	}
	nSeries := len(t.Header) - 1
	series := make([]asciiplot.Series, nSeries)
	for s := 0; s < nSeries; s++ {
		series[s].Name = t.Header[s+1]
	}
	plottable := false
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			continue
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			continue // e.g. the "wins" row
		}
		for s := 0; s < nSeries; s++ {
			y, err := strconv.ParseFloat(row[s+1], 64)
			if err != nil {
				continue // "err", "-"
			}
			series[s].X = append(series[s].X, x)
			series[s].Y = append(series[s].Y, y)
			plottable = true
		}
	}
	if !plottable {
		return ""
	}
	return asciiplot.Render(series, asciiplot.Options{
		Title:  t.Title,
		Width:  64,
		Height: 18,
		XLabel: t.Header[0],
	})
}
