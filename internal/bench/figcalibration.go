package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/planner"
	"repro/masked"
)

// CalibrationStudy measures plan-choice quality with cost-model calibration
// off versus on. Two sessions run the same masked products through the
// adaptive planner: one with the hand-tuned dimensionless §8 model
// (CalibrationOff), one with the host's measured coefficients
// (CalibrationAuto, probed or loaded from the per-host cache). For each
// corpus input × product shape the study compares the two plans; when they
// agree the executions are identical by construction and the case scores
// exactly 1.0x, and when they differ both are timed and the ratio reported.
// Every differing pair is also verified bit-identical — calibration may only
// change which plan runs, never the answer.
//
// Recorded metrics per case: off_ns, cal_ns, speedup (off/cal), same_plan
// (1 when the models chose identical plans). A final "geomean" record
// aggregates the speedups and a "model" record captures the calibrated
// coefficients (ns_per_unit, hash_unit, heap_unit, bitmap_probe_ratio,
// dense_unit, cost_per_worker) so BENCH_PR*.json files document the fit the
// numbers were produced under.
func CalibrationStudy(cfg Config) (*Table, error) {
	mdl := planner.HostModel(false)
	t := &Table{
		Title: "Calibration study: hand-tuned vs host-calibrated cost model",
		Notes: []string{
			"same plan → identical execution, scored exactly 1.0x; differing plans timed and verified bit-identical",
			fmt.Sprintf("calibrated model: source=%s ns/unit=%.2f hash=%.2f heap=%.2f bitmap=%.2f dense=%.2f cost/worker=%d",
				mdl.Source, mdl.NsPerUnit, mdl.HashUnit, mdl.HeapUnit, mdl.BitmapProbeRatio, mdl.DenseUnit, mdl.CostPerWorker),
		},
		Header: []string{"input", "shape", "plan_off", "plan_cal", "off_s", "cal_s", "speedup"},
	}
	cfg.Recorder.Add(Record{Study: "calibration", Case: "model", Metrics: map[string]float64{
		"ns_per_unit":        mdl.NsPerUnit,
		"hash_unit":          mdl.HashUnit,
		"heap_unit":          mdl.HeapUnit,
		"inner_unit":         mdl.InnerUnit,
		"mask_unit":          mdl.MaskUnit,
		"bitmap_probe_ratio": mdl.BitmapProbeRatio,
		"dense_unit":         mdl.DenseUnit,
		"cost_per_worker":    float64(mdl.CostPerWorker),
	}})

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sessOff := masked.NewSession(masked.WithThreads(cfg.Threads), masked.WithCalibration(masked.CalibrationOff))
	sessCal := masked.NewSession(masked.WithThreads(cfg.Threads), masked.WithCalibration(masked.CalibrationAuto))

	type product struct {
		shape string
		m     *matrix.Pattern
		a, b  *matrix.CSR[float64]
		opts  []masked.Op
	}
	var logSum float64
	var cases int
	for _, g := range Corpus(cfg) {
		n := g.Graph.NRows
		products := []product{
			// Support counting: the mask is the adjacency itself — the
			// triangle/k-truss shape, dense mask rows over the whole graph.
			{shape: "support", m: g.Graph.Pattern(), a: g.Graph, b: g.Graph,
				opts: []masked.Op{masked.WithAccumulate(masked.PlusPair())}},
			// Sparse-frontier shape: a random ~2/row mask over the square —
			// the BFS/BC regime where Hash vs MSA and the phase choice hinge
			// on the cost coefficients.
			{shape: "frontier", m: grgen.Random01Mask(n, n, 2, cfg.Seed+77), a: g.Graph, b: g.Graph},
		}
		for _, pr := range products {
			planOff := sessOff.Explain(pr.m, pr.a, pr.b, pr.opts...)
			planCal := sessCal.Explain(pr.m, pr.a, pr.b, pr.opts...)
			same := samePlan(planOff, planCal)
			row := []string{g.Name, pr.shape, planLabel(planOff), planLabel(planCal)}
			speedup := 1.0
			offNs, calNs := int64(-1), int64(-1)
			if same {
				row = append(row, "-", "-", "1.00x (same plan)")
			} else {
				offS := minTime(cfg.reps(), func() (time.Duration, error) {
					t0 := time.Now()
					_, err := sessOff.Multiply(ctx, pr.m, pr.a, pr.b, pr.opts...)
					return time.Since(t0), err
				})
				calS := minTime(cfg.reps(), func() (time.Duration, error) {
					t0 := time.Now()
					_, err := sessCal.Multiply(ctx, pr.m, pr.a, pr.b, pr.opts...)
					return time.Since(t0), err
				})
				if offS < 0 || calS < 0 {
					return nil, fmt.Errorf("bench: calibration case %s/%s failed", g.Name, pr.shape)
				}
				cOff, err := sessOff.Multiply(ctx, pr.m, pr.a, pr.b, pr.opts...)
				if err != nil {
					return nil, err
				}
				cCal, err := sessCal.Multiply(ctx, pr.m, pr.a, pr.b, pr.opts...)
				if err != nil {
					return nil, err
				}
				if !matrix.Equal(cOff, cCal, func(x, y float64) bool { return x == y }) {
					return nil, fmt.Errorf("bench: calibration changed the result on %s/%s", g.Name, pr.shape)
				}
				speedup = offS / calS
				offNs, calNs = int64(offS*1e9), int64(calS*1e9)
				row = append(row, fmt.Sprintf("%.4f", offS), fmt.Sprintf("%.4f", calS), fmt.Sprintf("%.2fx", speedup))
			}
			logSum += math.Log(speedup)
			cases++
			sameMetric := 0.0
			if same {
				sameMetric = 1
			}
			cfg.Recorder.Add(Record{
				Study:   "calibration",
				Case:    g.Name + "/" + pr.shape,
				NsPerOp: calNs,
				Metrics: map[string]float64{"off_ns": float64(offNs), "speedup": speedup, "same_plan": sameMetric},
			})
			t.Rows = append(t.Rows, row)
		}
	}
	geo := math.Exp(logSum / float64(cases))
	t.Notes = append(t.Notes, fmt.Sprintf("geomean speedup (calibrated over hand-tuned): %.3fx over %d cases", geo, cases))
	cfg.Recorder.Add(Record{Study: "calibration", Case: "geomean", Metrics: map[string]float64{"speedup": geo, "cases": float64(cases)}})
	return t, nil
}

// planLabel renders a plan as a short variant label: the single variant
// name, or "mixed(k)" for a k-block mixed plan, suffixed with the phase.
func planLabel(p *planner.Plan) string {
	if p == nil || len(p.Blocks) == 0 {
		return "-"
	}
	alg := p.Blocks[0].Alg
	for _, b := range p.Blocks[1:] {
		if b.Alg != alg {
			return fmt.Sprintf("mixed(%d)-%s", len(p.Blocks), p.Phase)
		}
	}
	return fmt.Sprintf("%s-%s", alg, p.Phase)
}

// samePlan reports whether two plans run the identical execution: same
// phase and the same (row range, algorithm, representation) blocks.
func samePlan(a, b *planner.Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Phase != b.Phase || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if x.Lo != y.Lo || x.Hi != y.Hi || x.Alg != y.Alg || x.Rep != y.Rep {
			return false
		}
	}
	return true
}
