package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/masked"
)

// StreamStudy measures the delta-CSR streaming path: the triangle product
// C = L .* (L·L) maintained incrementally under an edge stream versus
// recomputed from scratch after every batch. Each batch mutates about
// 0.25% of the graph's lower-triangular edges — the dirty frontier grows
// much faster than the batch (a row of A is dirty if ANY neighbor lands in
// a changed row of B, so at average degree d a batch fraction f dirties
// roughly 1-(1-f·n/nnz)^d of all rows); 0.25% keeps the frontier around
// 5-10% of rows, the regime incremental recompute is built for. The
// incremental side applies the batch through Session.Update (frontier-row
// recompute + splice), the baseline multiplies the full current graph
// through the same session.
// Both outputs are asserted bit-identical every round before timing counts
// — the streaming path's correctness contract, not just its speed, is on
// the line in this study. Every case lands in cfg.Recorder for
// BENCH_PR10.json, plus a final geomean record.
func StreamStudy(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Stream study: incremental (delta-CSR) vs from-scratch recompute, TC product under an edge stream",
		Notes: []string{
			"per round: one batch of ~0.25% of L's edges (1/3 deletes), Update vs full Multiply on the same session",
			"bit-identity incremental == rebuild asserted every round before the timings count",
			"speedup = rebuild_s / incremental_s, geomean over rounds; edges/s = batch edges / incremental_s",
		},
		Header: []string{"graph", "nnz(L)", "batch", "rounds", "inc_s", "rebuild_s", "speedup", "edges/s"},
	}
	type spec struct {
		name  string
		graph *matrix.CSR[float64]
	}
	var specs []spec
	rounds := 6
	if cfg.Quick {
		rounds = 3
		specs = []spec{
			{"rmat-s9-d8", grgen.RMAT(9, 8, cfg.Seed+1)},
			{"er-s9-d8", grgen.ErdosRenyiSym(1<<9, 8, cfg.Seed+2)},
		}
	} else {
		specs = []spec{
			{"rmat-s12-d8", grgen.RMAT(12, 8, cfg.Seed+1)},
			{"rmat-s13-d8", grgen.RMAT(13, 8, cfg.Seed+2)},
			{"rmat-s13-d16", grgen.RMAT(13, 16, cfg.Seed+3)},
			{"er-s13-d8", grgen.ErdosRenyiSym(1<<13, 8, cfg.Seed+4)},
		}
		if cfg.MaxScale >= 14 {
			specs = append(specs, spec{"rmat-s14-d8", grgen.RMAT(14, 8, cfg.Seed+5)})
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s := masked.NewSession(masked.WithThreads(cfg.Threads))
	opts := []masked.Op{masked.WithAccumulate(masked.PlusPair())}
	var allSpeedups []float64
	for _, sp := range specs {
		l := matrix.Tril(sp.graph)
		for i := range l.Val {
			l.Val[i] = 1
		}
		d, err := masked.NewDeltaMatrix(l)
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", sp.name, err)
		}
		p := s.NewDeltaProduct(d, d, d, opts...)
		if _, err := s.MultiplyDelta(ctx, p); err != nil {
			return nil, fmt.Errorf("stream %s initial: %w", sp.name, err)
		}
		n := int(l.NRows)
		batchEdges := maxInt(8, l.NNZ()/400)
		rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(l.NNZ())))
		var incTotal, rebTotal float64
		var speedups []float64
		for r := 0; r < rounds; r++ {
			batch := make([]masked.Update, batchEdges)
			for k := range batch {
				// Strictly lower-triangular entries keep L's shape invariant.
				i := matrix.Index(rng.Intn(n-1)) + 1
				j := matrix.Index(rng.Intn(int(i)))
				batch[k] = masked.Update{Row: i, Col: j, Val: 1, Delete: rng.Intn(3) == 0}
			}
			t0 := time.Now()
			got, err := s.Update(ctx, p, batch)
			incSec := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("stream %s round %d: %w", sp.name, r, err)
			}
			cur := d.Current()
			t1 := time.Now()
			want, err := s.Multiply(ctx, cur.Pattern(), cur, cur, opts...)
			rebSec := time.Since(t1).Seconds()
			if err != nil {
				return nil, fmt.Errorf("stream %s round %d rebuild: %w", sp.name, r, err)
			}
			eq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
			if !matrix.Equal(got, want, eq) {
				return nil, fmt.Errorf("stream %s round %d: incremental output not bit-identical to rebuild", sp.name, r)
			}
			incTotal += incSec
			rebTotal += rebSec
			speedups = append(speedups, rebSec/incSec)
		}
		incMean := incTotal / float64(rounds)
		rebMean := rebTotal / float64(rounds)
		geo := geomean(speedups)
		allSpeedups = append(allSpeedups, speedups...)
		edgesPerSec := float64(batchEdges) / incMean
		t.Rows = append(t.Rows, []string{
			sp.name, fmt.Sprintf("%d", l.NNZ()), fmt.Sprintf("%d", batchEdges),
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%.5f", incMean), fmt.Sprintf("%.5f", rebMean),
			fmt.Sprintf("%.2fx", geo), fmt.Sprintf("%.0f", edgesPerSec),
		})
		cfg.Recorder.Add(Record{
			Study:   "stream",
			Case:    sp.name,
			NsPerOp: int64(incMean * 1e9),
			Metrics: map[string]float64{
				"rebuild_ns":      rebMean * 1e9,
				"speedup_geomean": geo,
				"edges_per_sec":   edgesPerSec,
				"batch_edges":     float64(batchEdges),
				"rounds":          float64(rounds),
				"nnz":             float64(l.NNZ()),
			},
		})
	}
	geo := geomean(allSpeedups)
	t.Rows = append(t.Rows, []string{"geomean", "", "", "", "", "", fmt.Sprintf("%.2fx", geo), ""})
	cfg.Recorder.Add(Record{
		Study:   "stream",
		Case:    "geomean",
		NsPerOp: -1,
		Metrics: map[string]float64{"speedup_geomean": geo, "cases": float64(len(allSpeedups))},
	})
	return t, nil
}
