package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/perfprof"
	"repro/internal/semiring"
)

// Fig7 reproduces Figure 7: for a grid of (mask degree, input degree)
// Erdős–Rényi instances, report which one-phase algorithm is fastest. The
// paper sweeps dimensions 2^12..2^22; the dims argument picks the subset
// (log2 sizes). Expected shape (§8.1): Inner wins the sparse-mask edge,
// Heap/HeapDot win the sparse-input edge, MSA/Hash win the comparable
// middle (MSA on smaller, Hash on larger matrices).
func Fig7(cfg Config, dims []int) []*Table {
	degMs := []int{1, 4, 16, 64, 256, 1024}
	degABs := []int{1, 4, 16, 64, 128}
	if cfg.Quick {
		degMs = []int{1, 16, 256}
		degABs = []int{1, 16, 128}
	}
	algs := []core.Algorithm{core.Inner, core.Hash, core.MSA, core.MCA, core.Heap, core.HeapDot}
	var tables []*Table
	for _, lg := range dims {
		n := matrix.Index(1) << lg
		t := &Table{
			Title: fmt.Sprintf("Fig 7: best 1P scheme, ER dimension 2^%d", lg),
			Notes: []string{"rows: degree of A and B; columns: degree of M; cell: fastest scheme"},
		}
		t.Header = append([]string{"degAB\\degM"}, intsToStrings(degMs)...)
		seed := cfg.Seed * 1000
		for _, dAB := range degABs {
			row := []string{fmt.Sprintf("%d", dAB)}
			for _, dM := range degMs {
				if float64(dM) > float64(n) || float64(dAB) > float64(n) {
					row = append(row, "-")
					continue
				}
				seed++
				a := grgen.ErdosRenyi(n, float64(dAB), seed)
				b := grgen.ErdosRenyi(n, float64(dAB), seed+7777)
				mask := grgen.ErdosRenyi(n, float64(dM), seed+9999).Pattern()
				bcsc := matrix.ToCSC(b)
				bestName, bestT := "", -1.0
				for _, alg := range algs {
					sec := minTime(cfg.reps(), func() (time.Duration, error) {
						t0 := time.Now()
						var err error
						if alg == core.Inner {
							_, err = core.MaskedDotCSC(core.OnePhase, mask, a, bcsc, semiring.Arithmetic(), cfg.Options())
						} else {
							_, err = core.MaskedSpGEMM(core.Variant{Alg: alg, Phase: core.OnePhase}, mask, a, b, semiring.Arithmetic(), cfg.Options())
						}
						return time.Since(t0), err
					})
					if sec > 0 && (bestT < 0 || sec < bestT) {
						bestT, bestName = sec, alg.String()
					}
				}
				row = append(row, bestName)
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// tcProfile times triangle counting over the corpus for the given engines
// (subject to cfg.Engine) and returns a performance profile.
func tcProfile(cfg Config, engines []apps.Engine) (*perfprof.Profile, error) {
	engines = overrideEngines(cfg, engines)
	corpus := Corpus(cfg)
	series := make([]perfprof.Series, len(engines))
	for ei := range engines {
		series[ei].Scheme = engines[ei].Name
		series[ei].Times = make([]float64, len(corpus))
	}
	for ci, g := range corpus {
		if cfg.Explain {
			l := matrix.Tril(matrix.Permute(g.Graph, matrix.DegreeDescPerm(g.Graph)))
			maybeExplain(cfg, "TC "+g.Name, l.Pattern(), l.Pattern(), l.Pattern())
		}
		for ei, eng := range engines {
			series[ei].Times[ci] = minTime(cfg.reps(), func() (time.Duration, error) {
				r, err := apps.TriangleCount(g.Graph, eng)
				return r.MaskedTime, err
			})
		}
	}
	return perfprof.Compute(series, perfprof.DefaultTaus())
}

// Fig8 reproduces Figure 8: the triangle-counting performance profile of
// all 12 proposed variants over the graph corpus. Expected shape: MSA-1P
// best, then MCA-1P; 1P beats 2P per algorithm; heap-based schemes worst.
func Fig8(cfg Config) (*Table, error) {
	ses := cfg.Session()
	var engines []apps.Engine
	for _, v := range core.AllVariants() {
		engines = append(engines, ses.EngineVariant(v))
	}
	p, err := tcProfile(cfg, engines)
	if err != nil {
		return nil, err
	}
	return profileTable("Fig 8: Triangle Counting performance profile (our 12 variants)",
		[]string{"paper: MSA-1P wins ~65% of cases, MCA-1P second, 1P > 2P"}, p), nil
}

// Fig9 reproduces Figure 9: our three best TC schemes against the
// SuiteSparse-style baselines. Expected: our schemes dominate SS:SAXPY and
// SS:DOT on almost all cases.
func Fig9(cfg Config) (*Table, error) {
	ses := cfg.Session()
	engines := []apps.Engine{
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}),
		ses.EngineSSSaxpy(),
		ses.EngineSSDot(),
	}
	p, err := tcProfile(cfg, engines)
	if err != nil {
		return nil, err
	}
	return profileTable("Fig 9: Triangle Counting, ours vs SS:GB-style baselines",
		[]string{"paper: all our algorithms outperform SS:GB in almost all cases"}, p), nil
}

// tcScaleEngines is the scheme set of the Fig. 10 GFLOPS plot.
func tcScaleEngines(ses *apps.Session) []apps.Engine {
	return []apps.Engine{
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}),
		ses.EngineVariant(core.Variant{Alg: core.Inner, Phase: core.OnePhase}),
		ses.EngineSSSaxpy(),
		ses.EngineSSDot(),
	}
}

// Fig10 reproduces Figure 10: triangle-counting GFLOPS as R-MAT scale
// grows (paper: 8–20, edge factor 16). Expected: MSA-1P highest; SS:SAXPY
// closes the gap as inputs grow; SS schemes poor at small scales.
func Fig10(cfg Config) *Table {
	engines := overrideEngines(cfg, tcScaleEngines(cfg.Session()))
	t := &Table{
		Title: "Fig 10: Triangle Counting GFLOPS vs R-MAT scale",
		Notes: []string{"GFLOPS = 2*flops(L·L)/masked_time", "paper: MSA-1P highest, SS:SAXPY approaches at large scale"},
	}
	t.Header = []string{"scale"}
	for _, e := range engines {
		t.Header = append(t.Header, e.Name)
	}
	lo := 8
	if cfg.Quick {
		lo = 8
	}
	for scale := lo; scale <= cfg.MaxScale; scale++ {
		g := grgen.RMAT(scale, 16, cfg.Seed+uint64(scale))
		row := []string{fmt.Sprintf("%d", scale)}
		for _, eng := range engines {
			var gf float64
			sec := minTime(cfg.reps(), func() (time.Duration, error) {
				r, err := apps.TriangleCount(g, eng)
				if err == nil {
					gf = r.GFLOPS()
				}
				return r.MaskedTime, err
			})
			if sec < 0 {
				row = append(row, "err")
			} else {
				row = append(row, fmt.Sprintf("%.3f", gf))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig11 reproduces Figure 11: triangle-counting strong scaling over thread
// counts on one R-MAT graph (paper: scale 20; here cfg.MaxScale). On a
// single-core host every column is ~equal; the table still verifies the
// scheduler introduces no slowdown.
func Fig11(cfg Config) *Table {
	scale := cfg.MaxScale
	g := grgen.RMAT(scale, 16, cfg.Seed+42)
	ses := cfg.Session()                                 // one session for the sweep: retargets share its plan cache
	engines := overrideEngines(cfg, tcScaleEngines(ses)) // threads retargeted per measurement below
	t := &Table{
		Title: fmt.Sprintf("Fig 11: Triangle Counting strong scaling, R-MAT scale %d", scale),
		Notes: []string{"GFLOPS per thread count", "paper: all algorithms scale well to 32/68 threads"},
	}
	t.Header = []string{"threads"}
	for _, e := range engines {
		t.Header = append(t.Header, e.Name)
	}
	for _, threads := range threadSweep() {
		row := []string{fmt.Sprintf("%d", threads)}
		for _, base := range engines {
			eng := retargetEngine(ses, base, threads)
			var gf float64
			sec := minTime(cfg.reps(), func() (time.Duration, error) {
				r, err := apps.TriangleCount(g, eng)
				if err == nil {
					gf = r.GFLOPS()
				}
				return r.MaskedTime, err
			})
			if sec < 0 {
				row = append(row, "err")
			} else {
				row = append(row, fmt.Sprintf("%.3f", gf))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// threadSweep returns 1,2,4,... up to GOMAXPROCS (always including it).
func threadSweep() []int {
	max := parallelMax()
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	out = append(out, max)
	return out
}

func parallelMax() int {
	return maxInt(1, runtime.GOMAXPROCS(0))
}

// retargetEngine rebuilds a scheme with a specific thread count, keeping
// the given session's context and plan cache.
func retargetEngine(ses *apps.Session, e apps.Engine, threads int) apps.Engine {
	o := ses.Opt
	o.Threads = threads
	re, err := ses.WithOptions(o).EngineByName(e.Name)
	if err != nil {
		return e
	}
	return re
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
