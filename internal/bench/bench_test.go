package bench

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// quickCfg is a tiny configuration so the harness smoke tests run in
// seconds.
func quickCfg() Config {
	return Config{Threads: 2, Seed: 1, Reps: 1, MaxScale: 8, BatchSize: 4, Quick: true}
}

func TestCorpusDeterministicAndValid(t *testing.T) {
	c1 := Corpus(quickCfg())
	c2 := Corpus(quickCfg())
	if len(c1) == 0 || len(c1) != len(c2) {
		t.Fatalf("corpus sizes: %d vs %d", len(c1), len(c2))
	}
	seen := map[string]bool{}
	for i := range c1 {
		if c1[i].Name != c2[i].Name || c1[i].Graph.NNZ() != c2[i].Graph.NNZ() {
			t.Fatal("corpus not deterministic")
		}
		if seen[c1[i].Name] {
			t.Fatalf("duplicate corpus name %s", c1[i].Name)
		}
		seen[c1[i].Name] = true
		if err := c1[i].Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", c1[i].Name, err)
		}
	}
	full := Corpus(Config{Seed: 1})
	if len(full) <= len(c1) {
		t.Fatal("full corpus should be larger than quick corpus")
	}
}

func TestFig7Smoke(t *testing.T) {
	tables := Fig7(quickCfg(), []int{8})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (quick degAB grid)", len(tb.Rows))
	}
	valid := map[string]bool{"MSA": true, "Hash": true, "MCA": true,
		"Heap": true, "HeapDot": true, "Inner": true, "-": true}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if !valid[cell] {
				t.Fatalf("unexpected winner cell %q", cell)
			}
		}
	}
	out := tb.String()
	if !strings.Contains(out, "Fig 7") {
		t.Fatal("title missing")
	}
}

func TestFig8And9Smoke(t *testing.T) {
	t8, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Header) != 13 { // tau + 12 variants
		t.Fatalf("fig8 header = %v", t8.Header)
	}
	t9, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Header) != 6 { // tau + 3 ours + 2 baselines
		t.Fatalf("fig9 header = %v", t9.Header)
	}
	// Fractions must reach 1.0 for at least one scheme at the last tau.
	last := t8.Rows[len(t8.Rows)-2] // before the wins row
	foundOne := false
	for _, cell := range last[1:] {
		if cell == "1.000" {
			foundOne = true
		}
	}
	if !foundOne {
		t.Log("no scheme at rho=1 by tau=2.4 (allowed but unusual):", last)
	}
}

func TestFig10Smoke(t *testing.T) {
	tb := Fig10(quickCfg())
	if len(tb.Rows) != 1 { // scale 8..8
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "8" {
		t.Fatal("scale column")
	}
	for _, cell := range tb.Rows[0][1:] {
		if cell == "err" {
			t.Fatal("scheme errored")
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	tb := Fig11(quickCfg())
	if len(tb.Rows) < 1 {
		t.Fatal("no thread rows")
	}
	if tb.Rows[0][0] != "1" {
		t.Fatal("first thread count must be 1")
	}
}

func TestFig12Through14Smoke(t *testing.T) {
	if _, err := Fig12(quickCfg()); err != nil {
		t.Fatal(err)
	}
	t13, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t13.Header) != 7 {
		t.Fatalf("fig13 header = %v", t13.Header)
	}
	t14 := Fig14(quickCfg())
	if len(t14.Rows) != 1 {
		t.Fatalf("fig14 rows = %d", len(t14.Rows))
	}
}

func TestFig15And16Smoke(t *testing.T) {
	t15 := Fig15(quickCfg())
	if len(t15.Rows) != 1 {
		t.Fatalf("fig15 rows = %d", len(t15.Rows))
	}
	for _, cell := range t15.Rows[0][1:] {
		if cell == "err" {
			t.Fatal("BC scheme errored")
		}
	}
	t16, err := Fig16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t16.Header) != 6 { // tau + 5 schemes
		t.Fatalf("fig16 header = %v", t16.Header)
	}
}

func TestMaskRepStudySmoke(t *testing.T) {
	tb, err := MaskRepStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Header) != 6 {
		t.Fatalf("header = %v", tb.Header)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	shapes := map[string]bool{}
	for _, row := range tb.Rows {
		shapes[row[1]] = true
		for _, cell := range row[3:] {
			if cell == "err" {
				t.Fatalf("errored row: %v", row)
			}
		}
	}
	if !shapes["ktruss"] || !shapes["msbfs"] {
		t.Fatalf("missing shapes: %v", shapes)
	}
}

func TestBCSources(t *testing.T) {
	s := bcSources(100, 10, 1)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("source %d out of range", v)
		}
	}
	// Batch larger than n clamps.
	s2 := bcSources(5, 99, 1)
	if len(s2) != 5 {
		t.Fatalf("clamped len = %d", len(s2))
	}
	if len(bcSources(0, 4, 1)) != 0 {
		t.Fatal("n=0")
	}
	// Deterministic.
	s3 := bcSources(100, 10, 1)
	for i := range s {
		if s[i] != s3[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Notes:  []string{"n1"},
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	out := tb.String()
	for _, want := range []string{"== T ==", "# n1", "a\tb", "1\t2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestMinTime(t *testing.T) {
	calls := 0
	durations := []time.Duration{5 * time.Millisecond, 2 * time.Millisecond, 9 * time.Millisecond}
	got := minTime(3, func() (time.Duration, error) {
		d := durations[calls]
		calls++
		return d, nil
	})
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if got != 0.002 {
		t.Fatalf("min = %v, want 0.002", got)
	}
	// All-error runs report failure as a negative sentinel.
	bad := minTime(2, func() (time.Duration, error) { return 0, errFail })
	if bad >= 0 {
		t.Fatalf("expected negative failure sentinel, got %v", bad)
	}
}

var errFail = errors.New("fail")

func TestRenderTablePlot(t *testing.T) {
	tb := &Table{
		Title:  "plot me",
		Header: []string{"scale", "A", "B"},
		Rows: [][]string{
			{"8", "1.5", "0.5"},
			{"9", "2.0", "err"},
			{"wins", "3/6", "1/6"},
		},
	}
	out := RenderTablePlot(tb)
	if !strings.Contains(out, "plot me") || !strings.Contains(out, "* A") {
		t.Fatalf("plot missing pieces: %q", out)
	}
	// Non-numeric-only table yields nothing.
	empty := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"x", "y"}}}
	if RenderTablePlot(empty) != "" {
		t.Fatal("expected empty plot for non-numeric table")
	}
	if RenderTablePlot(&Table{Header: []string{"only"}}) != "" {
		t.Fatal("single-column table")
	}
}
