package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// scheduleWorkerGrid is the worker counts the study sweeps: the
// equal-vs-cost question only exists at ≥4 workers (one worker has no
// imbalance to balance), and equal-row chunking degrades as the worker
// count grows relative to the chunk count.
var scheduleWorkerGrid = []int{4, 8, 16}

// ScheduleStudy contrasts equal-row chunking (the pre-PR-4 scheduler, fixed
// grain) against cost-balanced equal-flops spans on the triangle-counting
// product C = L .* (L·L), where power-law rows make per-chunk costs skew by
// orders of magnitude. The inputs cover the two regimes that matter: a
// frontier-sized skewed graph (few chunks per worker — BFS/BC/k-truss
// sweeps live here) and full-sized skewed and flat graphs. For each input ×
// worker count it reports:
//
//   - imbalance: the deterministic load-balance model — spans are assigned
//     greedily to the least-loaded of the workers in claim order (the
//     textbook model of dynamic self-scheduling), and the figure is the
//     busiest worker's cost over the ideal total/p. 1.00 is perfect; the
//     equal-row column degrades when a grain-64 chunk carrying hub rows
//     approaches a worker's fair share.
//   - time_s: best-of-reps wall time of the full multiply on a warmed
//     session (on single-core hosts the columns coincide — the model column
//     is the portable signal there).
//   - allocs_op: average heap allocations per multiply on the warmed
//     session, and drv_miss: driver-pool misses per multiply (0 means the
//     drivers allocated nothing — PR 4's pooled-buffer guarantee).
//
// Every case lands in cfg.Recorder for BENCH_PR4.json.
func ScheduleStudy(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Schedule study: equal-row chunks vs cost-balanced spans (TC product)",
		Notes: []string{
			fmt.Sprintf("host GOMAXPROCS=%d; worker counts are goroutine budgets (the balance model is host-independent)", runtime.GOMAXPROCS(0)),
			"imbalance: busiest worker cost / ideal under greedy least-loaded assignment of the claim-order spans; 1.00 = perfect",
			"allocs_op / drv_miss on a warmed session: drv_miss 0 = the drivers took all scratch from the pools",
		},
		Header: []string{"input", "workers", "sched", "spans", "imbalance", "time_s", "allocs_op", "drv_miss"},
	}
	scale, deg := 12, 16
	if cfg.Quick {
		scale, deg = 9, 8
	}
	graphs := []NamedGraph{
		// The frontier-sized regime: two scales down, where equal-row has
		// only a few grain-64 chunks per worker and hub rows dominate them.
		{Name: fmt.Sprintf("rmat-s%d-d%d", scale-2, deg), Graph: grgen.RMAT(scale-2, deg, cfg.Seed+1)},
		{Name: fmt.Sprintf("rmat-s%d-d%d", scale, deg), Graph: grgen.RMAT(scale, deg, cfg.Seed+1)},
		{Name: fmt.Sprintf("er-s%d-d%d", scale, deg), Graph: grgen.ErdosRenyiSym(1<<scale, float64(deg), cfg.Seed+2)},
	}
	sr := semiring.PlusPairF()
	for _, g := range graphs {
		l := matrix.Tril(matrix.Permute(g.Graph, matrix.DegreeDescPerm(g.Graph)))
		m := l.Pattern()
		costs := core.ComputeRowCosts(m, l.Pattern(), l.Pattern(), cfg.Threads)
		if costs == nil {
			continue
		}
		for _, workers := range scheduleWorkerGrid {
			for _, sched := range []core.Sched{core.SchedEqualRow, core.SchedCost} {
				spans, imbalance := scheduleBalance(sched, workers, costs)
				opt := cfg.Options()
				opt.Threads = workers
				opt.Sched = sched
				opt.RowCosts = costs
				ws := core.NewWorkspaces()
				opt.Workspaces = ws
				v := core.Variant{Alg: core.MSA, Phase: core.OnePhase}
				if _, err := core.MaskedSpGEMM(v, m, l, l, sr, opt); err != nil { // warm the pools
					return nil, err
				}
				_, missBefore := ws.DriverPoolStats()
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				reps := cfg.reps()
				sec := minTime(reps, func() (time.Duration, error) {
					t0 := time.Now()
					_, err := core.MaskedSpGEMM(v, m, l, l, sr, opt)
					return time.Since(t0), err
				})
				runtime.ReadMemStats(&ms1)
				allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
				_, missAfter := ws.DriverPoolStats()
				missPerOp := float64(missAfter-missBefore) / float64(reps)
				timeCell := "err"
				var nsPerOp int64 = -1
				if sec >= 0 {
					timeCell = fmt.Sprintf("%.4f", sec)
					nsPerOp = int64(sec * 1e9)
				}
				t.Rows = append(t.Rows, []string{
					g.Name, fmt.Sprintf("%d", workers), sched.String(), fmt.Sprintf("%d", spans),
					fmt.Sprintf("%.3f", imbalance), timeCell,
					fmt.Sprintf("%.1f", allocsPerOp), fmt.Sprintf("%.1f", missPerOp),
				})
				cfg.Recorder.Add(Record{
					Study:       "schedule",
					Case:        fmt.Sprintf("%s/w%d/%s", g.Name, workers, sched),
					NsPerOp:     nsPerOp,
					AllocsPerOp: allocsPerOp,
					Metrics: map[string]float64{
						"workers":            float64(workers),
						"spans":              float64(spans),
						"imbalance":          imbalance,
						"driver_pool_misses": missPerOp,
					},
				})
			}
		}
	}
	return t, nil
}

// scheduleBalance models the load balance of one schedule: the claim-order
// spans (equal-row grain-64 chunks, or the cost scheduler's tapered spans)
// are dealt to the least-loaded of p workers, and the result is the busiest
// worker's summed cost relative to the ideal total/p — a deterministic,
// timing-free proxy for the parallel makespan.
func scheduleBalance(sched core.Sched, p int, costs *core.RowCosts) (spans int, imbalance float64) {
	prefix := costs.Prefix
	n := len(prefix) - 1
	var spanCosts []int64
	if sched == core.SchedCost {
		for _, s := range parallel.CostSpans(n, p, prefix) {
			spanCosts = append(spanCosts, prefix[s[1]]-prefix[s[0]])
		}
	} else {
		for lo := 0; lo < n; lo += parallel.DefaultGrain {
			hi := lo + parallel.DefaultGrain
			if hi > n {
				hi = n
			}
			spanCosts = append(spanCosts, prefix[hi]-prefix[lo])
		}
	}
	loads := make([]int64, p)
	for _, c := range spanCosts {
		min := 0
		for w := 1; w < p; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += c
	}
	var maxLoad, total int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 {
		return len(spanCosts), 1
	}
	ideal := float64(total) / float64(p)
	return len(spanCosts), float64(maxLoad) / ideal
}
