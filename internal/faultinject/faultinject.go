// Package faultinject is the deterministic fault-injection registry behind
// the resilience layer's chaos testing. Production code threads named
// injection points through the wire codec, the server handlers, the serving
// session and the parallel runtime; a test (or a server started with
// -faults / MSPGEMM_FAULTS) installs a Registry arming some of those points,
// and every armed point then fires panics, delays, corruption or forced
// slow paths on a seed-driven schedule. The chaos suite asserts the stack
// survives each fault class with bit-identical results.
//
// # Zero cost when disabled
//
// The registry is installed in a package-level atomic pointer whose default
// is nil. Every hook (Fire, Sleep) starts with one atomic load and returns
// immediately when no registry is installed, so instrumented hot paths pay
// a single predictable branch in production.
//
// # Determinism
//
// A Registry is seeded explicitly (Parse's seed= key, New's argument).
// Probability rules draw from one seeded math/rand source under the
// registry mutex, so a fixed seed yields the same fire/no-fire sequence for
// the same sequence of evaluations; every:N rules fire on a modular counter
// with no randomness at all; limit:N caps total fires, which lets a test
// arm "fail the first k evaluations, then heal" schedules whose eventual
// success is guaranteed, not probabilistic.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names wired through the repository. A Registry can arm
// any string, but these are the points production code evaluates.
const (
	// PointWireTruncate truncates an encoded frame sequence before it is
	// handed to the transport (detected as wire.ErrTruncated by the peer).
	PointWireTruncate = "wire.truncate"
	// PointWireBitflip flips one payload bit after checksumming (detected
	// as wire.ErrChecksum by the peer).
	PointWireBitflip = "wire.bitflip"
	// PointServerPanic panics inside an HTTP handler after the body is
	// read (recovered by the server's panic barrier into a 500).
	PointServerPanic = "server.handler.panic"
	// PointServerSlow sleeps the rule's delay inside a handler before
	// execution (exercises deadlines and drain under latency).
	PointServerSlow = "server.handler.slow"
	// PointInternMiss forces an operand intern lookup to miss, driving the
	// full revalidate-and-copy path for an operand the table already holds.
	PointInternMiss = "server.intern.miss"
	// PointKernelPanic panics inside Session.execute, under the serving
	// layer's recover barrier and the arbiter grant (tests leak-free panic
	// recovery on the kernel path).
	PointKernelPanic = "masked.kernel.panic"
	// PointArbiterStall sleeps the rule's delay before a serving request
	// asks the arbiter for admission (exercises admission queue timing and
	// saturation under slow admission).
	PointArbiterStall = "masked.arbiter.stall"
	// PointWorkerPanic panics on a parallel worker goroutine, exercising
	// the re-panic-to-coordinator machinery in internal/parallel.
	PointWorkerPanic = "parallel.worker.panic"
	// PointDeltaApply panics inside Session.Update after the edge batch
	// has landed in the delta overlays but before the incremental
	// recompute (tests that a mid-update panic retains the dirty frontier
	// so a retried refresh recovers bit-identically).
	PointDeltaApply = "delta.apply"
)

// Rule arms one injection point.
type Rule struct {
	// Point is the injection point name the rule arms.
	Point string
	// Rate is the per-evaluation fire probability in [0, 1], drawn from the
	// registry's seeded source. Ignored when Every is set.
	Rate float64
	// Every fires deterministically on every Nth evaluation of the point
	// (1 = every evaluation). Overrides Rate when positive.
	Every int
	// Limit caps the total number of fires (0 = unlimited). After the
	// limit the point never fires again — the "fail k times, then heal"
	// schedule the chaos suite's guaranteed-recovery cases use.
	Limit int
	// Delay is how long delay points (Sleep) block when the rule fires.
	Delay time.Duration
}

// ruleState is a rule plus its evaluation counters.
type ruleState struct {
	Rule
	evals int64
	fires int64
}

// Registry holds armed rules and the seeded randomness they share. Install
// it process-wide with Set; a nil registry means every point is disabled.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*ruleState
}

// New returns an empty registry whose probability rules draw from a source
// seeded with seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*ruleState),
	}
}

// Add arms a rule, replacing any existing rule for the same point.
func (r *Registry) Add(rule Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[rule.Point] = &ruleState{Rule: rule}
}

// evaluate decides whether the point fires this evaluation.
func (r *Registry) evaluate(point string) (fire bool, delay time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.rules[point]
	if !ok {
		return false, 0
	}
	st.evals++
	if st.Limit > 0 && st.fires >= int64(st.Limit) {
		return false, 0
	}
	switch {
	case st.Every > 0:
		fire = st.evals%int64(st.Every) == 0
	default:
		fire = r.rng.Float64() < st.Rate
	}
	if fire {
		st.fires++
	}
	return fire, st.Delay
}

// Stats returns the fired count per armed point (points that never fired
// report 0). The map is a copy.
func (r *Registry) Stats() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.rules))
	for p, st := range r.rules {
		out[p] = st.fires
	}
	return out
}

// active is the installed registry; nil (the default) disables every point.
var active atomic.Pointer[Registry]

// Set installs r as the process-wide registry (nil uninstalls). Chaos tests
// install a registry for one scenario and Set(nil) when done.
func Set(r *Registry) { active.Store(r) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Fire evaluates point against the installed registry and reports whether
// the fault should trigger now. One atomic load and a return when no
// registry is installed.
func Fire(point string) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	fire, _ := r.evaluate(point)
	return fire
}

// Sleep evaluates point and, when it fires, blocks for the rule's Delay.
// One atomic load and a return when no registry is installed.
func Sleep(point string) {
	r := active.Load()
	if r == nil {
		return
	}
	if fire, delay := r.evaluate(point); fire && delay > 0 {
		time.Sleep(delay)
	}
}

// Stats returns the installed registry's fired counts, nil when none is
// installed. The /metrics exporter surfaces it as
// mspgemm_faults_injected_total.
func Stats() map[string]int64 {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.Stats()
}

// Parse builds a registry from a -faults / MSPGEMM_FAULTS spec: semicolon-
// separated entries, each either "seed=N" or "point=params" with params a
// comma-separated list of a bare probability ("0.3"), "every:N", "limit:N"
// and "delay:DURATION". Example:
//
//	seed=7;server.handler.panic=0.3,limit:10;server.handler.slow=every:2,delay:20ms;wire.bitflip=1.0,limit:1
//
// An empty spec returns (nil, nil): nothing to install.
func Parse(spec string) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, params, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q: want point=params", entry)
		}
		point = strings.TrimSpace(point)
		if point == "seed" {
			v, err := strconv.ParseInt(strings.TrimSpace(params), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %v", params, err)
			}
			seed = v
			continue
		}
		rule := Rule{Point: point}
		for _, p := range strings.Split(params, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			key, val, hasKey := strings.Cut(p, ":")
			if !hasKey {
				rate, err := strconv.ParseFloat(p, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("faultinject: %s: probability %q not in [0,1]", point, p)
				}
				rule.Rate = rate
				continue
			}
			switch key {
			case "every":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faultinject: %s: every:%q wants a positive integer", point, val)
				}
				rule.Every = n
			case "limit":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faultinject: %s: limit:%q wants a positive integer", point, val)
				}
				rule.Limit = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultinject: %s: delay:%q wants a duration", point, val)
				}
				rule.Delay = d
			default:
				return nil, fmt.Errorf("faultinject: %s: unknown param %q", point, p)
			}
		}
		if rule.Rate == 0 && rule.Every == 0 {
			return nil, fmt.Errorf("faultinject: %s: rule needs a probability or every:N", point)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	r := New(seed)
	for _, rule := range rules {
		r.Add(rule)
	}
	return r, nil
}

// Describe renders the armed rules of a registry in a stable order, for
// startup logs.
func (r *Registry) Describe() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	points := make([]string, 0, len(r.rules))
	for p := range r.rules {
		points = append(points, p)
	}
	sort.Strings(points)
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteString("; ")
		}
		st := r.rules[p]
		switch {
		case st.Every > 0:
			fmt.Fprintf(&b, "%s every %d", p, st.Every)
		default:
			fmt.Fprintf(&b, "%s p=%g", p, st.Rate)
		}
		if st.Limit > 0 {
			fmt.Fprintf(&b, " limit %d", st.Limit)
		}
		if st.Delay > 0 {
			fmt.Fprintf(&b, " delay %s", st.Delay)
		}
	}
	return b.String()
}
