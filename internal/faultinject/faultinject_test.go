package faultinject

import (
	"testing"
	"time"
)

// TestDisabledIsInert checks the nil-default path: no registry, no fires,
// no allocations in the hook.
func TestDisabledIsInert(t *testing.T) {
	Set(nil)
	if Enabled() {
		t.Fatal("Enabled with no registry installed")
	}
	for i := 0; i < 100; i++ {
		if Fire(PointServerPanic) {
			t.Fatal("disabled point fired")
		}
	}
	Sleep(PointServerSlow) // must return immediately
	if Stats() != nil {
		t.Fatal("Stats non-nil with no registry")
	}
	if n := testing.AllocsPerRun(100, func() { Fire(PointKernelPanic) }); n != 0 {
		t.Fatalf("disabled Fire allocates %v per call", n)
	}
}

// TestEveryAndLimit checks the deterministic modular schedule and the fire
// cap.
func TestEveryAndLimit(t *testing.T) {
	r := New(1)
	r.Add(Rule{Point: "p", Every: 3, Limit: 2})
	Set(r)
	defer Set(nil)
	var fired []int
	for i := 1; i <= 12; i++ {
		if Fire("p") {
			fired = append(fired, i)
		}
	}
	// Fires on evaluations 3 and 6; the limit of 2 then disarms it.
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired on evaluations %v, want [3 6]", fired)
	}
	if got := Stats()["p"]; got != 2 {
		t.Fatalf("stats report %d fires, want 2", got)
	}
}

// TestSeedDeterminism checks two registries with the same seed produce the
// same probabilistic fire sequence, and a different seed a different one.
func TestSeedDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		r := New(seed)
		r.Add(Rule{Point: "p", Rate: 0.5})
		out := make([]bool, 64)
		for i := range out {
			f, _ := r.evaluate("p")
			out[i] = f
		}
		return out
	}
	a, b, c := seq(7), seq(7), seq(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different fire sequences")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical fire sequences (suspicious)")
	}
}

// TestParse checks the spec grammar end to end and its error cases.
func TestParse(t *testing.T) {
	r, err := Parse("seed=7; server.handler.panic=0.3,limit:10 ; server.handler.slow=every:2,delay:20ms")
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	pan := r.rules[PointServerPanic]
	slow := r.rules[PointServerSlow]
	r.mu.Unlock()
	if pan == nil || pan.Rate != 0.3 || pan.Limit != 10 {
		t.Fatalf("panic rule %+v", pan)
	}
	if slow == nil || slow.Every != 2 || slow.Delay != 20*time.Millisecond {
		t.Fatalf("slow rule %+v", slow)
	}
	if d := r.Describe(); d == "" {
		t.Fatal("empty Describe for armed registry")
	}

	if r, err := Parse("   "); err != nil || r != nil {
		t.Fatalf("empty spec: %v, %v", r, err)
	}
	for _, bad := range []string{
		"nonsense",
		"p=2.0",
		"p=every:0",
		"p=limit:x",
		"p=delay:fast",
		"p=",
		"seed=abc",
		"p=bogus:1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestSleepDelay checks a firing delay rule actually blocks.
func TestSleepDelay(t *testing.T) {
	r := New(1)
	r.Add(Rule{Point: "p", Every: 1, Delay: 20 * time.Millisecond})
	Set(r)
	defer Set(nil)
	start := time.Now()
	Sleep("p")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 20ms", d)
	}
}
