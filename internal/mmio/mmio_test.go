package mmio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestReadGeneralReal(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NRows != 3 || a.NCols != 4 || a.NNZ() != 3 {
		t.Fatalf("shape %dx%d nnz %d", a.NRows, a.NCols, a.NNZ())
	}
	d := matrix.ToDense(a)
	if v, ok := d.At(0, 0); !ok || v != 2.5 {
		t.Fatal("(1,1) wrong")
	}
	if v, ok := d.At(2, 3); !ok || v != -1 {
		t.Fatal("(3,4) wrong")
	}
}

func TestReadPatternSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
2 1
3 1
3 3
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Two off-diagonal entries mirror; one diagonal stays single: 5 total.
	if a.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", a.NNZ())
	}
	at := matrix.Transpose(a)
	if !matrix.EqualPatterns(a.Pattern(), at.Pattern()) {
		t.Fatal("expanded matrix must be symmetric")
	}
	for _, v := range a.Val {
		if v != 1 {
			t.Fatal("pattern values must be 1")
		}
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := matrix.ToDense(a)
	if v, _ := d.At(1, 0); v != 3 {
		t.Fatal("lower entry")
	}
	if v, _ := d.At(0, 1); v != -3 {
		t.Fatal("mirrored entry must be negated")
	}
}

func TestReadIntegerAndDuplicates(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 3
1 1 2
1 1 3
2 2 4
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates summed)", a.NNZ())
	}
	d := matrix.ToDense(a)
	if v, _ := d.At(0, 0); v != 5 {
		t.Fatalf("(1,1) = %v, want 5", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no banner", "3 3 1\n1 1 1\n"},
		{"bad object", "%%MatrixMarket tensor coordinate real general\n1 1 0\n"},
		{"bad format", "%%MatrixMarket matrix array real general\n1 1 0\n"},
		{"bad field", "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"},
		{"bad symmetry", "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"},
		{"short banner", "%%MatrixMarket matrix\n"},
		{"bad size", "%%MatrixMarket matrix coordinate real general\n3 3\n"},
		{"truncated", "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"},
		{"row out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"col out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1.0\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n"},
		{"bad row", "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n"},
		{"missing fields", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	coo := &matrix.COO[float64]{NRows: 17, NCols: 23}
	for e := 0; e < 80; e++ {
		coo.Row = append(coo.Row, matrix.Index(r.Intn(17)))
		coo.Col = append(coo.Col, matrix.Index(r.Intn(23)))
		coo.Val = append(coo.Val, r.NormFloat64())
	}
	a := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return x + y })
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, back, func(x, y float64) bool { return x == y }) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestWritePattern(t *testing.T) {
	a := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 2, NCols: 2,
		Row: []matrix.Index{0, 1}, Col: []matrix.Index{1, 0}, Val: []float64{5, 6},
	}, nil)
	var buf bytes.Buffer
	if err := WritePattern(&buf, a.Pattern()); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualPatterns(a.Pattern(), back.Pattern()) {
		t.Fatal("pattern round trip")
	}
	for _, v := range back.Val {
		if v != 1 {
			t.Fatal("pattern read must give ones")
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	a := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 3, NCols: 3,
		Row: []matrix.Index{0, 2}, Col: []matrix.Index{1, 2}, Val: []float64{4, 9},
	}, nil)
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, back, func(x, y float64) bool { return x == y }) {
		t.Fatal("file round trip")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
