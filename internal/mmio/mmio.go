// Package mmio reads and writes sparse matrices in the Matrix Market
// exchange format, the format the SuiteSparse Matrix Collection (§7)
// distributes graphs in. Supported headers: matrix coordinate
// {real, integer, pattern} {general, symmetric, skew-symmetric}.
// Symmetric inputs are expanded to full storage on read, which is how graph
// adjacency matrices are consumed by the applications.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// Header describes a Matrix Market file's type line.
type Header struct {
	Object   string // "matrix"
	Format   string // "coordinate"
	Field    string // "real", "integer", "pattern"
	Symmetry string // "general", "symmetric", "skew-symmetric"
}

// Read parses a Matrix Market stream into a CSR matrix with float64 values.
// Pattern entries get value 1. Symmetric and skew-symmetric matrices are
// expanded (off-diagonal entries mirrored; skew mirrors with negation).
// Duplicate entries are summed.
func Read(r io.Reader) (*matrix.CSR[float64], error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if hdr.Object != "matrix" || hdr.Format != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported header %q %q (only matrix coordinate)", hdr.Object, hdr.Format)
	}
	switch hdr.Field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", hdr.Field)
	}
	switch hdr.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", hdr.Symmetry)
	}
	m, n, nnz, err := readSizeLine(br)
	if err != nil {
		return nil, err
	}
	coo := &matrix.COO[float64]{NRows: matrix.Index(m), NCols: matrix.Index(n)}
	pattern := hdr.Field == "pattern"
	for e := 0; e < nnz; e++ {
		line, err := nextDataLine(br)
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d/%d: %w", e+1, nnz, err)
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mmio: entry %d: want %d fields, got %d", e+1, want, len(fields))
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad row %q", e+1, fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d: bad column %q", e+1, fields[1])
		}
		if i < 1 || i > m || j < 1 || j > n {
			return nil, fmt.Errorf("mmio: entry %d: index (%d,%d) out of range %dx%d", e+1, i, j, m, n)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d: bad value %q", e+1, fields[2])
			}
		}
		ri, rj := matrix.Index(i-1), matrix.Index(j-1)
		coo.Row = append(coo.Row, ri)
		coo.Col = append(coo.Col, rj)
		coo.Val = append(coo.Val, v)
		if ri != rj {
			switch hdr.Symmetry {
			case "symmetric":
				coo.Row = append(coo.Row, rj)
				coo.Col = append(coo.Col, ri)
				coo.Val = append(coo.Val, v)
			case "skew-symmetric":
				coo.Row = append(coo.Row, rj)
				coo.Col = append(coo.Col, ri)
				coo.Val = append(coo.Val, -v)
			}
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b }), nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*matrix.CSR[float64], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits a in Matrix Market coordinate real general format.
func Write(w io.Writer, a *matrix.CSR[float64]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.NRows, a.NCols, a.NNZ()); err != nil {
		return err
	}
	for i := matrix.Index(0); i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.Col[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes a to path in Matrix Market format.
func WriteFile(path string, a *matrix.CSR[float64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePattern emits a pattern matrix (no values).
func WritePattern(w io.Writer, p *matrix.Pattern) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", p.NRows, p.NCols, p.NNZ()); err != nil {
		return err
	}
	for i := matrix.Index(0); i < p.NRows; i++ {
		for _, j := range p.Row(i) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func readHeader(br *bufio.Reader) (Header, error) {
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return Header{}, fmt.Errorf("mmio: empty input: %w", err)
	}
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "%%MatrixMarket") {
		return Header{}, fmt.Errorf("mmio: missing %%%%MatrixMarket banner, got %q", line)
	}
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) < 4 {
		return Header{}, fmt.Errorf("mmio: short banner %q", line)
	}
	h := Header{Object: fields[1], Format: fields[2], Field: fields[3], Symmetry: "general"}
	if len(fields) >= 5 {
		h.Symmetry = fields[4]
	}
	return h, nil
}

func readSizeLine(br *bufio.Reader) (m, n, nnz int, err error) {
	line, err := nextDataLine(br)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("mmio: missing size line: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return 0, 0, 0, fmt.Errorf("mmio: bad size line %q", line)
	}
	m, err = strconv.Atoi(fields[0])
	if err != nil {
		return
	}
	n, err = strconv.Atoi(fields[1])
	if err != nil {
		return
	}
	nnz, err = strconv.Atoi(fields[2])
	return
}

// nextDataLine returns the next non-comment, non-blank line.
func nextDataLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			return trimmed, nil
		}
		if err != nil {
			return "", io.ErrUnexpectedEOF
		}
	}
}
