package accum

// MCA is the Mask Compressed Accumulator (§5.4), the accumulator designed
// specifically for Masked SpGEMM: because the output row can never hold more
// entries than the mask row, the values and states arrays are sized
// nnz(mask row) and indexed by *mask position* (the rank of the column
// within the sorted mask row) instead of by column id. Only two states are
// needed (Fig. 5): every representable key is allowed by construction, so
// the automaton is Allowed --Insert--> Set --Insert--> Set.
//
// MCA does not support complemented masks (§8.4): the compressed index space
// is defined by the mask entries themselves.
type MCA[T any] struct {
	state []State // Allowed (zero value reused: NotAllowed==0 plays Allowed here)
	value []T
	n     int
}

// NewMCA returns an MCA with capacity for rows of up to capHint mask
// entries.
func NewMCA[T any](capHint int) *MCA[T] {
	if capHint < 1 {
		capHint = 1
	}
	return &MCA[T]{
		state: make([]State, capHint),
		value: make([]T, capHint),
	}
}

// Prepare sets the accumulator up for a mask row with nnzm entries. The
// state array is already all-Allowed because Gather resets the entries it
// visited.
func (c *MCA[T]) Prepare(nnzm int) {
	if nnzm > len(c.state) {
		c.state = make([]State, nnzm)
		c.value = make([]T, nnzm)
	}
	c.n = nnzm
}

// Insert accumulates v at mask position idx (0 ≤ idx < nnz(mask row)).
func (c *MCA[T]) Insert(idx Index, v T, add func(T, T) T) bool {
	if c.state[idx] == Set {
		c.value[idx] = add(c.value[idx], v)
	} else {
		c.state[idx] = Set
		c.value[idx] = v
	}
	return true
}

// State returns the state at mask position idx.
func (c *MCA[T]) State(idx Index) State { return c.state[idx] }

// Store sets mask position idx to v (first insert).
func (c *MCA[T]) Store(idx Index, v T) {
	c.state[idx] = Set
	c.value[idx] = v
}

// Add accumulates v into mask position idx (already Set).
func (c *MCA[T]) Add(idx Index, v T, add func(T, T) T) {
	c.value[idx] = add(c.value[idx], v)
}

// Value returns the accumulated value at mask position idx (meaningful only
// when Set).
func (c *MCA[T]) Value(idx Index) T { return c.value[idx] }

// SetValue overwrites the value at an already-Set mask position without
// touching its state; the inlined-operator counterpart of Add.
func (c *MCA[T]) SetValue(idx Index, v T) { c.value[idx] = v }

// Mark sets mask position idx to Set without a value write (symbolic
// phases).
func (c *MCA[T]) Mark(idx Index) { c.state[idx] = Set }

// RemoveMark reports whether mask position idx was Set and resets it
// (symbolic counterpart of Remove).
func (c *MCA[T]) RemoveMark(idx Index) bool {
	if c.state[idx] != Set {
		return false
	}
	c.state[idx] = NotAllowed
	return true
}

// Remove returns the value at mask position idx if Set and resets it to
// Allowed.
func (c *MCA[T]) Remove(idx Index) (T, bool) {
	var zero T
	if c.state[idx] != Set {
		return zero, false
	}
	c.state[idx] = NotAllowed // zero value doubles as Allowed for MCA
	return c.value[idx], true
}

// SetAllowed is a no-op: every mask position is allowed by construction.
// Present to satisfy the generic accumulator interface.
func (c *MCA[T]) SetAllowed(Index) {}

var _ Interface[float64] = (*MCA[float64])(nil)
