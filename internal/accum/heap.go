package accum

// IterHeap is the min-heap of row iterators used by the Heap and HeapDot
// algorithms (§5.5). Each entry walks one row B_k* (k ranging over the
// nonzero columns of A_i*); the heap orders entries by the column index the
// iterator currently points at, so popping yields the multiset
// S = {B_kj | A_ik ≠ 0} in globally sorted column order — the multi-way
// merge of Knuth vol. 3 — without materializing S.
//
// The APos field remembers which A_i* entry spawned the iterator so the
// kernel can fetch the scale factor u_k = A_ik lazily.
//
// Ties on the column index are broken by APos, so entries of one output
// column pop in A-entry order — the same per-column accumulation order the
// scatter-based kernels use, which keeps heap results bit-identical to
// theirs regardless of the push sequence (the mask representations push in
// different orders).
type IterHeap struct {
	h []RowIterator
}

// before is the heap order: (Col, APos) lexicographic.
func (a RowIterator) before(b RowIterator) bool {
	return a.Col < b.Col || (a.Col == b.Col && a.APos < b.APos)
}

// RowIterator points into one row of B.
type RowIterator struct {
	Col  Index // column index currently pointed at: B.Col[Pos]
	Pos  Index // current position within B storage
	End  Index // one past the last position of the row
	APos Index // position in A storage of the A_ik entry that scales this row
}

// Valid reports whether the iterator has entries left.
func (it RowIterator) Valid() bool { return it.Pos < it.End }

// Reset empties the heap, keeping capacity.
func (ih *IterHeap) Reset() { ih.h = ih.h[:0] }

// Len returns the number of iterators in the heap.
func (ih *IterHeap) Len() int { return len(ih.h) }

// Push adds an iterator. The caller must ensure it is valid and its Col
// field is loaded.
func (ih *IterHeap) Push(it RowIterator) {
	ih.h = append(ih.h, it)
	ih.siftUp(len(ih.h) - 1)
}

// Min returns the iterator with the smallest current column without
// removing it.
func (ih *IterHeap) Min() RowIterator { return ih.h[0] }

// PopMin removes and returns the iterator with the smallest current column.
func (ih *IterHeap) PopMin() RowIterator {
	top := ih.h[0]
	last := len(ih.h) - 1
	ih.h[0] = ih.h[last]
	ih.h = ih.h[:last]
	if last > 0 {
		ih.siftDown(0)
	}
	return top
}

// ReplaceMin replaces the minimum with it and restores heap order; it is
// the pop-advance-push fast path.
func (ih *IterHeap) ReplaceMin(it RowIterator) {
	ih.h[0] = it
	ih.siftDown(0)
}

func (ih *IterHeap) siftUp(i int) {
	h := ih.h
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (ih *IterHeap) siftDown(i int) {
	h := ih.h
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
