package accum

// MSA is the Masked Sparse Accumulator (§5.2): two dense length-ncols
// arrays, one holding accumulated values and one holding per-key states.
// Initialization is O(ncols) once per worker; per-row work is
// O(nnz(mask row) + flops), because rows reset only the entries they
// touched.
//
// State machine (Fig. 3): NotAllowed --SetAllowed--> Allowed --Insert-->
// Set --Insert--> Set; Remove returns the value iff Set and resets to
// NotAllowed.
//
// Complement mode (§5.2 last paragraph): the default state plays the role
// of Allowed, mask entries are marked Excluded via SetNotAllowed, and an
// insertion log enables gathering without scanning the whole dense array
// (the strategy Gustavson used).
type MSA[T any] struct {
	state    []State
	value    []T
	inserted []Index // keys inserted in complement mode, in first-insert order
}

// NewMSA returns an MSA sized for row vectors with ncols columns.
func NewMSA[T any](ncols int) *MSA[T] {
	return &MSA[T]{
		state: make([]State, ncols),
		value: make([]T, ncols),
	}
}

// Resize grows the accumulator to at least ncols columns, preserving
// nothing. Existing state must already be fully reset.
func (s *MSA[T]) Resize(ncols int) {
	if len(s.state) < ncols {
		s.state = make([]State, ncols)
		s.value = make([]T, ncols)
	}
}

// Len returns the column capacity.
func (s *MSA[T]) Len() int { return len(s.state) }

// SetAllowed marks key as allowed. Valid only from NotAllowed (the mask has
// no duplicate entries, so a key is set allowed at most once per row).
func (s *MSA[T]) SetAllowed(key Index) {
	s.state[key] = Allowed
}

// Insert accumulates v at key if allowed, reporting whether it was kept.
func (s *MSA[T]) Insert(key Index, v T, add func(T, T) T) bool {
	switch s.state[key] {
	case Allowed:
		s.state[key] = Set
		s.value[key] = v
		return true
	case Set:
		s.value[key] = add(s.value[key], v)
		return true
	default:
		return false
	}
}

// State returns the current state of key. Kernels use State+Store+Add for
// the lazy-multiply fast path.
func (s *MSA[T]) State(key Index) State { return s.state[key] }

// Store sets key to Set with value v. Precondition: state is Allowed (or
// default-allowed in complement mode).
func (s *MSA[T]) Store(key Index, v T) {
	s.state[key] = Set
	s.value[key] = v
}

// Add accumulates v into an already-Set key.
func (s *MSA[T]) Add(key Index, v T, add func(T, T) T) {
	s.value[key] = add(s.value[key], v)
}

// Value returns the accumulated value at key (meaningful only when Set).
func (s *MSA[T]) Value(key Index) T { return s.value[key] }

// SetValue overwrites the value at an already-Set key without touching its
// state. Kernels instantiated over an inlined operator accumulate with
// s.SetValue(key, ops.Add(s.Value(key), v)) so the add call is direct
// rather than through a func value.
func (s *MSA[T]) SetValue(key Index, v T) { s.value[key] = v }

// Mark sets key to Set without writing a value; symbolic phases use it so
// that structure discovery does not touch the values array.
func (s *MSA[T]) Mark(key Index) { s.state[key] = Set }

// MarkC is the complement-mode Mark: sets key to Set and logs it, without a
// value write.
func (s *MSA[T]) MarkC(key Index) {
	s.state[key] = Set
	s.inserted = append(s.inserted, key)
}

// Remove returns the accumulated value at key if one was inserted and
// resets the key to NotAllowed (also clearing Allowed marks), implementing
// the §5.1 remove.
func (s *MSA[T]) Remove(key Index) (T, bool) {
	var zero T
	st := s.state[key]
	s.state[key] = NotAllowed
	if st == Set {
		return s.value[key], true
	}
	return zero, false
}

// --- Complement mode ---

// SetNotAllowed marks key as Excluded; used for each mask entry when the
// mask is complemented.
func (s *MSA[T]) SetNotAllowed(key Index) {
	s.state[key] = Excluded
}

// InsertC accumulates v at key under a complemented mask: keys default to
// allowed, Excluded keys discard. First insertion of a key is logged so the
// gather can iterate only inserted keys.
func (s *MSA[T]) InsertC(key Index, v T, add func(T, T) T) bool {
	switch s.state[key] {
	case NotAllowed: // default-allowed in complement mode
		s.state[key] = Set
		s.value[key] = v
		s.inserted = append(s.inserted, key)
		return true
	case Set:
		s.value[key] = add(s.value[key], v)
		return true
	default: // Excluded
		return false
	}
}

// StoreC is the complement-mode Store: marks key Set and logs it.
func (s *MSA[T]) StoreC(key Index, v T) {
	s.state[key] = Set
	s.value[key] = v
	s.inserted = append(s.inserted, key)
}

// Inserted returns the complement-mode insertion log (keys in first-insert
// order, not sorted).
func (s *MSA[T]) Inserted() []Index { return s.inserted }

// ResetC clears all complement-mode state: inserted keys, and the Excluded
// marks for the given mask row. Call once per row after gathering.
func (s *MSA[T]) ResetC(maskRow []Index) {
	for _, j := range s.inserted {
		s.state[j] = NotAllowed
	}
	s.inserted = s.inserted[:0]
	for _, j := range maskRow {
		s.state[j] = NotAllowed
	}
}

var _ Interface[float64] = (*MSA[float64])(nil)
