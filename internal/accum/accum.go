// Package accum implements the four accumulator data structures of the
// paper (§5): the Masked Sparse Accumulator (MSA), the Hash accumulator, the
// novel Mask Compressed Accumulator (MCA), and the heap row-merger used by
// the Heap/HeapDot algorithms.
//
// An accumulator merges the scaled rows of B that form one output row
// C_i* = M_i* .* Σ_k A_ik · B_k*, discarding entries masked out by M_i*.
// Following §5.1, accumulators distinguish three states per key:
//
//	NotAllowed — the key is masked out; inserts are discarded.
//	Allowed    — the key is in the mask but no value has been inserted yet.
//	Set        — at least one value has been inserted; further inserts
//	             accumulate with the semiring add.
//
// For complemented masks the default state flips: keys are allowed unless
// the mask marks them Excluded. One extra state value (Excluded) lets each
// structure serve both modes without reinitialization.
//
// All accumulators are single-goroutine scratch objects: one worker owns one
// accumulator and reuses it across all the rows that worker processes, which
// is how the kernels amortize the O(ncols) initialization the paper notes
// for MSA.
package accum

import "repro/internal/matrix"

// Index mirrors matrix.Index for brevity within this package.
type Index = matrix.Index

// State is the per-key accumulator state (Fig. 3 and Fig. 5 automata).
type State uint8

// Accumulator states. The zero value is NotAllowed so that freshly allocated
// state arrays are valid for non-complemented masks without initialization.
const (
	NotAllowed State = 0 // default: discard inserts (normal mode)
	Allowed    State = 1 // in mask, nothing inserted yet
	Set        State = 2 // value present
	Excluded   State = 3 // masked out (complement mode only)
)

// Interface is the generic accumulator contract of §5.1, offered for
// documentation and conformance testing. The hot kernels in internal/core
// use the concrete types directly so the Go compiler can inline the state
// machine; the interface methods on each concrete type are thin wrappers
// over the same code.
type Interface[T any] interface {
	// SetAllowed marks key as allowed (mask entry present).
	SetAllowed(key Index)
	// Insert accumulates value at key with add, if the key is allowed; it
	// reports whether the value was kept. The eager value argument replaces
	// the paper's lambda: the multiply is one flop and Go closures would
	// allocate, so kernels compute the product and let the accumulator
	// discard it. Memory behavior — the property the paper studies — is
	// unchanged.
	Insert(key Index, value T, add func(T, T) T) bool
	// Remove returns the accumulated value for key (if any was inserted)
	// and resets the key to its default state.
	Remove(key Index) (T, bool)
}
