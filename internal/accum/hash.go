package accum

// Hash is the hash-table accumulator (§5.3): open addressing with linear
// probing, keys and states stored together, sized for the known number of
// mask entries with a load factor of 0.25 to keep probe chains short. In
// normal (non-complemented) mode the table never grows within a row — the
// key set is exactly the mask row. In complement mode the number of distinct
// keys is not known in advance, so the table grows by doubling when the
// complement load factor (0.5) is exceeded.
type Hash[T any] struct {
	keys  []Index // emptyKey = free slot
	state []State
	value []T
	mask  uint32  // len(keys)-1; len is a power of two
	used  []int32 // occupied slot indexes, for O(used) clearing and gathering
	// loadNum/loadDen is the target load factor for Prepare sizing.
	loadNum, loadDen int
}

const emptyKey = Index(-1)

// hashMul is Knuth's multiplicative constant for 32-bit keys.
const hashMul = 2654435761

// NewHash returns a hash accumulator with capacity for at least capHint
// keys at the paper's 0.25 load factor.
func NewHash[T any](capHint int) *Hash[T] {
	h := &Hash[T]{loadNum: 1, loadDen: 4}
	h.grow(tableSize(capHint, 1, 4))
	return h
}

// SetLoadFactor overrides the sizing load factor (numerator/denominator),
// used by the ablation bench. The paper fixes 1/4.
func (h *Hash[T]) SetLoadFactor(num, den int) {
	h.loadNum, h.loadDen = num, den
}

func tableSize(keys, num, den int) int {
	if keys < 1 {
		keys = 1
	}
	want := keys * den / num
	size := 16
	for size < want {
		size *= 2
	}
	return size
}

func (h *Hash[T]) grow(size int) {
	h.keys = make([]Index, size)
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.state = make([]State, size)
	h.value = make([]T, size)
	h.mask = uint32(size - 1)
}

// Prepare clears the table and ensures capacity for expected keys at the
// configured load factor. Clearing touches only previously used slots, so a
// worker's table stays warm across rows.
func (h *Hash[T]) Prepare(expected int) {
	want := tableSize(expected, h.loadNum, h.loadDen)
	if want > len(h.keys) {
		h.grow(want)
		h.used = h.used[:0]
		return
	}
	for _, s := range h.used {
		h.keys[s] = emptyKey
		h.state[s] = NotAllowed
	}
	h.used = h.used[:0]
}

func (h *Hash[T]) slot(key Index) uint32 {
	return (uint32(key) * hashMul) & h.mask
}

// find returns the slot holding key, or the first empty slot of its probe
// chain if absent (second result false).
func (h *Hash[T]) find(key Index) (uint32, bool) {
	s := h.slot(key)
	for {
		k := h.keys[s]
		if k == key {
			return s, true
		}
		if k == emptyKey {
			return s, false
		}
		s = (s + 1) & h.mask
	}
}

// SetAllowed inserts key with state Allowed. Keys come from the mask row
// and are distinct, so the caller guarantees no duplicate SetAllowed.
func (h *Hash[T]) SetAllowed(key Index) {
	s, found := h.find(key)
	if found {
		return
	}
	h.keys[s] = key
	h.state[s] = Allowed
	h.used = append(h.used, int32(s))
}

// Probe returns the slot and state for key: NotAllowed when the key is not
// in the table.
func (h *Hash[T]) Probe(key Index) (uint32, State) {
	s, found := h.find(key)
	if !found {
		return s, NotAllowed
	}
	return s, h.state[s]
}

// StoreAt sets slot s (from Probe, state Allowed) to Set with value v.
func (h *Hash[T]) StoreAt(s uint32, v T) {
	h.state[s] = Set
	h.value[s] = v
}

// AddAt accumulates v into slot s (state Set).
func (h *Hash[T]) AddAt(s uint32, v T, add func(T, T) T) {
	h.value[s] = add(h.value[s], v)
}

// ValueAt returns the value stored in slot s.
func (h *Hash[T]) ValueAt(s uint32) T { return h.value[s] }

// SetValueAt overwrites the value in slot s (state Set) without touching
// its state; the inlined-operator counterpart of AddAt.
func (h *Hash[T]) SetValueAt(s uint32, v T) { h.value[s] = v }

// MarkAt sets slot s to Set without writing a value (symbolic phases).
func (h *Hash[T]) MarkAt(s uint32) { h.state[s] = Set }

// StateAt returns the state of slot s.
func (h *Hash[T]) StateAt(s uint32) State { return h.state[s] }

// ProbeC prepares a complement-mode probe: it grows the table if needed
// (so the returned slot stays valid for an immediate insert) and then
// returns the slot and state for key. A NotAllowed result means the key is
// absent and may be inserted at the returned slot via InsertNewAtC.
func (h *Hash[T]) ProbeC(key Index) (uint32, State) {
	h.maybeGrow()
	s, found := h.find(key)
	if !found {
		return s, NotAllowed
	}
	return s, h.state[s]
}

// InsertNewAtC occupies the empty slot s (from ProbeC) with key in state
// Set and value v.
func (h *Hash[T]) InsertNewAtC(s uint32, key Index, v T) {
	h.keys[s] = key
	h.state[s] = Set
	h.value[s] = v
	h.used = append(h.used, int32(s))
}

// MarkNewAtC occupies the empty slot s with key in state Set without a
// value write (symbolic phases).
func (h *Hash[T]) MarkNewAtC(s uint32, key Index) {
	h.keys[s] = key
	h.state[s] = Set
	h.used = append(h.used, int32(s))
}

// GatherKeysC appends every Set key to keys (unsorted).
func (h *Hash[T]) GatherKeysC(keys []Index) []Index {
	for _, s := range h.used {
		if h.state[s] == Set {
			keys = append(keys, h.keys[s])
		}
	}
	return keys
}

// Insert accumulates v at key if the key was marked allowed.
func (h *Hash[T]) Insert(key Index, v T, add func(T, T) T) bool {
	s, found := h.find(key)
	if !found {
		return false
	}
	switch h.state[s] {
	case Allowed:
		h.state[s] = Set
		h.value[s] = v
		return true
	case Set:
		h.value[s] = add(h.value[s], v)
		return true
	default:
		return false
	}
}

// Remove returns the accumulated value for key if Set and downgrades the
// key so repeated Remove returns nothing. The slot stays occupied until the
// next Prepare; gather order is driven by the mask row, so this matches the
// paper's stable gather.
func (h *Hash[T]) Remove(key Index) (T, bool) {
	var zero T
	s, found := h.find(key)
	if !found {
		return zero, false
	}
	st := h.state[s]
	h.state[s] = Allowed
	if st == Set {
		return h.value[s], true
	}
	return zero, false
}

// Lookup returns the accumulated value for key if its state is Set.
func (h *Hash[T]) Lookup(key Index) (T, bool) {
	var zero T
	s, found := h.find(key)
	if !found || h.state[s] != Set {
		return zero, false
	}
	return h.value[s], true
}

// --- Complement mode ---

// PrepareC clears the table and sizes it for at least expected keys at a
// 0.5 maximum load factor; the table grows on demand during InsertC.
func (h *Hash[T]) PrepareC(expected int) {
	want := tableSize(expected, 1, 2)
	if want > len(h.keys) {
		h.grow(want)
		h.used = h.used[:0]
		return
	}
	for _, s := range h.used {
		h.keys[s] = emptyKey
		h.state[s] = NotAllowed
	}
	h.used = h.used[:0]
}

// SetNotAllowed marks key Excluded (a complemented-mask entry).
func (h *Hash[T]) SetNotAllowed(key Index) {
	h.maybeGrow()
	s, found := h.find(key)
	if found {
		h.state[s] = Excluded
		return
	}
	h.keys[s] = key
	h.state[s] = Excluded
	h.used = append(h.used, int32(s))
}

// InsertC accumulates v at key under a complemented mask: absent keys are
// allowed and inserted as Set; Excluded keys discard.
func (h *Hash[T]) InsertC(key Index, v T, add func(T, T) T) bool {
	h.maybeGrow()
	s, found := h.find(key)
	if !found {
		h.keys[s] = key
		h.state[s] = Set
		h.value[s] = v
		h.used = append(h.used, int32(s))
		return true
	}
	switch h.state[s] {
	case Set:
		h.value[s] = add(h.value[s], v)
		return true
	default: // Excluded
		return false
	}
}

// maybeGrow rehashes into a doubled table when the complement-mode load
// factor (0.5) is exceeded.
func (h *Hash[T]) maybeGrow() {
	if len(h.used)*2 < len(h.keys) {
		return
	}
	oldKeys, oldState, oldValue, oldUsed := h.keys, h.state, h.value, h.used
	h.grow(len(h.keys) * 2)
	h.used = h.used[:0]
	for _, os := range oldUsed {
		key := oldKeys[os]
		s, _ := h.find(key)
		h.keys[s] = key
		h.state[s] = oldState[os]
		h.value[s] = oldValue[os]
		h.used = append(h.used, int32(s))
	}
}

// GatherC appends every Set (key, value) pair to the provided slices and
// returns them. Order is slot order (unsorted); complement-mode kernels sort
// afterwards.
func (h *Hash[T]) GatherC(keys []Index, vals []T) ([]Index, []T) {
	for _, s := range h.used {
		if h.state[s] == Set {
			keys = append(keys, h.keys[s])
			vals = append(vals, h.value[s])
		}
	}
	return keys, vals
}

// Used returns the number of occupied slots (diagnostics and tests).
func (h *Hash[T]) Used() int { return len(h.used) }

// Cap returns the current table capacity (diagnostics and tests).
func (h *Hash[T]) Cap() int { return len(h.keys) }

var _ Interface[float64] = (*Hash[float64])(nil)
