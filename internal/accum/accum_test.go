package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func add(a, b float64) float64 { return a + b }

// TestMSAAutomaton walks the Fig. 3 state machine explicitly.
func TestMSAAutomaton(t *testing.T) {
	s := NewMSA[float64](10)
	// NotAllowed: insert discarded.
	if s.Insert(3, 1.0, add) {
		t.Fatal("insert into NotAllowed must be discarded")
	}
	if _, ok := s.Remove(3); ok {
		t.Fatal("remove of never-set key must return none")
	}
	// Allowed: first insert stores.
	s.SetAllowed(3)
	if s.State(3) != Allowed {
		t.Fatal("state should be Allowed")
	}
	if !s.Insert(3, 2.0, add) {
		t.Fatal("insert into Allowed must be kept")
	}
	if s.State(3) != Set {
		t.Fatal("state should be Set")
	}
	// Set: further inserts accumulate.
	if !s.Insert(3, 5.0, add) {
		t.Fatal("insert into Set must be kept")
	}
	v, ok := s.Remove(3)
	if !ok || v != 7 {
		t.Fatalf("remove = %v,%v want 7,true", v, ok)
	}
	// Remove resets to NotAllowed.
	if s.State(3) != NotAllowed {
		t.Fatal("remove must reset state")
	}
	if s.Insert(3, 1.0, add) {
		t.Fatal("after remove, inserts discarded again")
	}
	// Allowed but never inserted: Remove returns none and clears the mark.
	s.SetAllowed(5)
	if _, ok := s.Remove(5); ok {
		t.Fatal("allowed-but-empty remove must return none")
	}
	if s.State(5) != NotAllowed {
		t.Fatal("remove must clear Allowed mark")
	}
}

func TestMSAComplementMode(t *testing.T) {
	s := NewMSA[float64](10)
	s.SetNotAllowed(2)
	if s.InsertC(2, 1.0, add) {
		t.Fatal("excluded key must discard")
	}
	if !s.InsertC(4, 3.0, add) {
		t.Fatal("default key must accept under complement")
	}
	if !s.InsertC(4, 4.0, add) {
		t.Fatal("second insert accumulates")
	}
	if got := s.Value(4); got != 7 {
		t.Fatalf("value = %v, want 7", got)
	}
	ins := s.Inserted()
	if len(ins) != 1 || ins[0] != 4 {
		t.Fatalf("inserted log = %v", ins)
	}
	s.ResetC([]Index{2})
	if s.State(2) != NotAllowed || s.State(4) != NotAllowed {
		t.Fatal("ResetC must clear all state")
	}
	if len(s.Inserted()) != 0 {
		t.Fatal("ResetC must clear the log")
	}
	// After reset, the accumulator is reusable in normal mode.
	s.SetAllowed(4)
	if !s.Insert(4, 1.0, add) {
		t.Fatal("reuse after complement failed")
	}
	s.Remove(4)
}

func TestMSAResize(t *testing.T) {
	s := NewMSA[float64](4)
	if s.Len() != 4 {
		t.Fatal("len")
	}
	s.Resize(100)
	if s.Len() != 100 {
		t.Fatal("resize up")
	}
	s.Resize(10) // no shrink
	if s.Len() != 100 {
		t.Fatal("must not shrink")
	}
	s.SetAllowed(99)
	if !s.Insert(99, 1, add) {
		t.Fatal("insert at new capacity")
	}
}

// TestHashAutomaton checks the same state machine through the hash table.
func TestHashAutomaton(t *testing.T) {
	h := NewHash[float64](8)
	h.Prepare(8)
	if h.Insert(42, 1.0, add) {
		t.Fatal("insert of unknown key must discard")
	}
	h.SetAllowed(42)
	if !h.Insert(42, 2.0, add) || !h.Insert(42, 3.0, add) {
		t.Fatal("inserts after SetAllowed must be kept")
	}
	if v, ok := h.Lookup(42); !ok || v != 5 {
		t.Fatalf("lookup = %v,%v", v, ok)
	}
	if v, ok := h.Remove(42); !ok || v != 5 {
		t.Fatalf("remove = %v,%v", v, ok)
	}
	if _, ok := h.Remove(42); ok {
		t.Fatal("second remove must return none")
	}
	if _, ok := h.Lookup(999); ok {
		t.Fatal("lookup of absent key")
	}
}

func TestHashCollisionsAndClearing(t *testing.T) {
	h := NewHash[float64](4)
	h.Prepare(64)
	// Insert keys that collide modulo the table size.
	capBefore := h.Cap()
	for i := 0; i < 64; i++ {
		h.SetAllowed(Index(i * capBefore))
	}
	if h.Used() != 64 {
		t.Fatalf("used = %d, want 64", h.Used())
	}
	for i := 0; i < 64; i++ {
		if !h.Insert(Index(i*capBefore), float64(i), add) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := 0; i < 64; i++ {
		if v, ok := h.Lookup(Index(i * capBefore)); !ok || v != float64(i) {
			t.Fatalf("lookup %d = %v,%v", i, v, ok)
		}
	}
	// Prepare clears only used slots.
	h.Prepare(4)
	if h.Used() != 0 {
		t.Fatal("prepare must clear used list")
	}
	if _, ok := h.Lookup(0); ok {
		t.Fatal("old keys must be gone after Prepare")
	}
}

func TestHashComplementGrowth(t *testing.T) {
	h := NewHash[float64](4)
	h.PrepareC(2)
	h.SetNotAllowed(7)
	if h.InsertC(7, 1.0, add) {
		t.Fatal("excluded key must discard")
	}
	// Insert many distinct keys to force growth.
	for i := Index(0); i < 500; i++ {
		key := 10 + i
		if !h.InsertC(key, float64(i), add) {
			t.Fatalf("InsertC %d failed", key)
		}
	}
	if h.Cap() < 500*2 {
		t.Fatalf("table did not grow: cap=%d", h.Cap())
	}
	// Excluded key must survive rehashing.
	if h.InsertC(7, 1.0, add) {
		t.Fatal("excluded key lost across growth")
	}
	// Accumulation across growth.
	if !h.InsertC(10, 100.0, add) {
		t.Fatal("accumulate failed")
	}
	keys := h.GatherKeysC(nil)
	if len(keys) != 500 {
		t.Fatalf("gathered %d keys, want 500", len(keys))
	}
	var ks, vs = h.GatherC(nil, nil)
	found := false
	for i, k := range ks {
		if k == 10 {
			found = true
			if vs[i] != 100.0 {
				t.Fatalf("key 10 value = %v, want 100 (0 + 100 accumulated)", vs[i])
			}
		}
	}
	if !found {
		t.Fatal("key 10 missing from gather")
	}
}

func TestHashLoadFactorSizing(t *testing.T) {
	h := NewHash[float64](1)
	h.SetLoadFactor(1, 4)
	h.Prepare(100)
	if h.Cap() < 400 {
		t.Fatalf("cap = %d, want >= 400 at load 0.25", h.Cap())
	}
	h2 := NewHash[float64](1)
	h2.SetLoadFactor(1, 2)
	h2.Prepare(100)
	if h2.Cap() < 200 || h2.Cap() >= 512 {
		t.Fatalf("cap = %d, want in [200,512) at load 0.5", h2.Cap())
	}
}

// TestMCAAutomaton walks the Fig. 5 two-state machine.
func TestMCAAutomaton(t *testing.T) {
	c := NewMCA[float64](4)
	c.Prepare(3)
	// Every representable index is allowed; first insert stores.
	if !c.Insert(1, 2.0, add) {
		t.Fatal("insert must be kept")
	}
	if c.State(1) != Set {
		t.Fatal("state should be Set")
	}
	if !c.Insert(1, 3.0, add) {
		t.Fatal("second insert accumulates")
	}
	if v, ok := c.Remove(1); !ok || v != 5 {
		t.Fatalf("remove = %v,%v want 5", v, ok)
	}
	if _, ok := c.Remove(1); ok {
		t.Fatal("after remove, slot is empty")
	}
	if _, ok := c.Remove(0); ok {
		t.Fatal("never-inserted slot")
	}
	// Mark/RemoveMark (symbolic path).
	c.Mark(2)
	if !c.RemoveMark(2) {
		t.Fatal("RemoveMark after Mark")
	}
	if c.RemoveMark(2) {
		t.Fatal("RemoveMark must reset")
	}
	// Prepare with growth.
	c.Prepare(1000)
	if !c.Insert(999, 1.0, add) {
		t.Fatal("insert after growth")
	}
	c.Remove(999)
}

// TestAccumulatorsAgainstModel drives MSA, Hash and a model map through the
// same random operation sequence (property-based conformance test of the
// §5.1 interface).
func TestAccumulatorsAgainstModel(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const ncols = 64
		msa := NewMSA[float64](ncols)
		h := NewHash[float64](16)
		h.Prepare(ncols)
		allowed := map[Index]bool{}
		model := map[Index]float64{}
		impls := []Interface[float64]{msa, h}
		for op := 0; op < 300; op++ {
			key := Index(r.Intn(ncols))
			switch r.Intn(3) {
			case 0: // setAllowed
				if !allowed[key] {
					for _, im := range impls {
						im.SetAllowed(key)
					}
					allowed[key] = true
				}
			case 1: // insert
				v := float64(r.Intn(10))
				kept := false
				if allowed[key] {
					if old, ok := model[key]; ok {
						model[key] = old + v
					} else {
						model[key] = v
					}
					kept = true
				}
				for _, im := range impls {
					if got := im.Insert(key, v, add); got != kept {
						return false
					}
				}
			case 2: // remove
				wantV, wantOK := model[key]
				delete(model, key)
				delete(allowed, key) // MSA.Remove resets to NotAllowed
				for i, im := range impls {
					gotV, gotOK := im.Remove(key)
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						return false
					}
					// Hash.Remove leaves the key Allowed until Prepare;
					// re-arm MSA to keep the two in sync with `allowed`.
					_ = i
				}
				// After Remove, semantics diverge slightly by design: MSA
				// resets to NotAllowed, Hash to Allowed. Re-align both to
				// NotAllowed by preparing a fresh hash and replaying allowed
				// marks — too costly per step; instead mark the key allowed
				// in both again if it was allowed, keeping states equal.
				if _, stillAllowed := model[key]; !stillAllowed {
					// re-arm both: cheap and keeps invariants aligned
					msa.SetAllowed(key)
					h.SetAllowed(key)
					allowed[key] = true
				}
			}
		}
		// Drain: every model key must be retrievable once.
		for key, want := range model {
			for _, im := range impls {
				got, ok := im.Remove(key)
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIterHeapOrdering(t *testing.T) {
	var h IterHeap
	r := rand.New(rand.NewSource(21))
	var cols []Index
	for i := 0; i < 200; i++ {
		c := Index(r.Intn(1000))
		cols = append(cols, c)
		h.Push(RowIterator{Col: c, Pos: Index(i), End: Index(i + 1)})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	for i := 0; i < 200; i++ {
		if h.Len() != 200-i {
			t.Fatalf("len = %d", h.Len())
		}
		min := h.PopMin()
		if min.Col != cols[i] {
			t.Fatalf("pop %d: col %d, want %d", i, min.Col, cols[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestIterHeapReplaceMin(t *testing.T) {
	var h IterHeap
	for _, c := range []Index{5, 3, 9, 1} {
		h.Push(RowIterator{Col: c})
	}
	if h.Min().Col != 1 {
		t.Fatal("min")
	}
	h.ReplaceMin(RowIterator{Col: 7})
	want := []Index{3, 5, 7, 9}
	for _, w := range want {
		if got := h.PopMin().Col; got != w {
			t.Fatalf("got %d want %d", got, w)
		}
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset")
	}
}

func TestRowIteratorValid(t *testing.T) {
	it := RowIterator{Pos: 3, End: 5}
	if !it.Valid() {
		t.Fatal("3 < 5 is valid")
	}
	it.Pos = 5
	if it.Valid() {
		t.Fatal("5 == 5 is invalid")
	}
}
