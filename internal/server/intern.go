package server

// Operand interning. The session's plan cache and single-flight coalescing
// both key on operand *identity* — which serves in-process callers that
// re-submit the same objects, but a wire request decodes fresh objects
// every time, so nothing would ever hit. The intern table restores
// identity across the network: each decoded operand is content-addressed
// by a SHA-256 over its dimensions and CSR arrays, and requests carrying
// bytes seen before are rewritten to the canonical decoded object. Serving
// workloads are exactly the re-multiply-against-a-static-graph loops the
// session is built for, so the hot operands intern once and every later
// request reuses their plans, coalesces with identical in-flight work, and
// skips semantic re-validation (the canonical object was validated when it
// was first admitted).
//
// Interned objects alias the request body they were decoded from, so the
// server does not recycle a body buffer that produced an insertion — the
// entry owns it until LRU eviction drops the reference.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/matrix"
)

// internKey is the content address of an operand: SHA-256 over a kind tag,
// the dimensions, and the raw CSR array bytes.
type internKey [sha256.Size]byte

const (
	internKindPattern = 0
	internKindMatrix  = 1
)

// internTable is a bounded LRU of canonical decoded operands.
type internTable struct {
	mu      sync.Mutex
	cap     int
	entries map[internKey]*list.Element
	lru     *list.List // front = most recent; values are *internEntry

	hits, misses, evictions atomic.Int64
}

type internEntry struct {
	key internKey
	val any // *matrix.Pattern or *matrix.CSR[float64]
}

// newInternTable returns a table bounded to capacity entries, or nil
// (pass-through interning) when capacity <= 0.
func newInternTable(capacity int) *internTable {
	if capacity <= 0 {
		return nil
	}
	return &internTable{
		cap:     capacity,
		entries: make(map[internKey]*list.Element, capacity),
		lru:     list.New(),
	}
}

// i32Bytes and f64Bytes reinterpret slice payloads as raw bytes for
// hashing — read-only views, never stored.
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// digest content-addresses one operand.
func digest(kind byte, nrows, ncols int32, rowptr, col []int32, val []float64) internKey {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(nrows))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(ncols))
	h.Write(hdr[:])
	h.Write(i32Bytes(rowptr))
	h.Write(i32Bytes(col))
	if kind == internKindMatrix {
		h.Write(f64Bytes(val))
	}
	return internKey(h.Sum(nil))
}

// lookup returns the canonical object for key when present. Lookup and
// insert are separate so the caller can run the O(nnz) semantic validation
// only between a miss and the insertion: a hit is an operand that was
// validated when first admitted, and an invalid operand never enters the
// table.
func (t *internTable) lookup(key internKey) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		t.hits.Add(1)
		return el.Value.(*internEntry).val, true
	}
	t.misses.Add(1)
	return nil, false
}

// insert records fresh as key's canonical object and reports whether fresh
// was stored — false when a concurrent duplicate won the race, in which
// case the raced winner is returned and fresh (plus the buffer it aliases)
// is not retained.
func (t *internTable) insert(key internKey, fresh any) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		return el.Value.(*internEntry).val, false
	}
	t.entries[key] = t.lru.PushFront(&internEntry{key: key, val: fresh})
	for t.lru.Len() > t.cap {
		el := t.lru.Back()
		t.lru.Remove(el)
		delete(t.entries, el.Value.(*internEntry).key)
		t.evictions.Add(1)
	}
	return fresh, true
}

// patternKey and matrixKey content-address the two operand kinds.
func patternKey(p *matrix.Pattern) internKey {
	return digest(internKindPattern, p.NRows, p.NCols, p.RowPtr, p.Col, nil)
}

func matrixKey(a *matrix.CSR[float64]) internKey {
	return digest(internKindMatrix, a.NRows, a.NCols, a.RowPtr, a.Col, a.Val)
}

// internStats is the table's counter snapshot for /metrics.
type internStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

func (t *internTable) stats() internStats {
	if t == nil {
		return internStats{}
	}
	t.mu.Lock()
	n := t.lru.Len()
	t.mu.Unlock()
	return internStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Evictions: t.evictions.Load(),
		Entries:   n,
	}
}
