package server

// Operand interning. The session's plan cache and single-flight coalescing
// both key on operand *identity* — which serves in-process callers that
// re-submit the same objects, but a wire request decodes fresh objects
// every time, so nothing would ever hit. The intern table restores
// identity across the network: each decoded operand is content-addressed
// by a SHA-256 over its dimensions and CSR arrays, and requests carrying
// bytes seen before are rewritten to the canonical decoded object. Serving
// workloads are exactly the re-multiply-against-a-static-graph loops the
// session is built for, so the hot operands intern once and every later
// request reuses their plans, coalesces with identical in-flight work, and
// skips semantic re-validation (the canonical object was validated when it
// was first admitted).
//
// The table owns a private deep copy of every canonical operand, made at
// insertion time. Decoded operands alias the pooled request body they
// arrived in, and storing such a view would pin the whole body (up to
// MaxBodyBytes) until eviction — and corrupt the canonical arrays if the
// buffer were ever recycled while the entry lived. Copying decouples the
// two lifetimes completely: handlers always recycle their body buffer, and
// an interned operand retains exactly its own bytes. The copy runs only on
// an intern miss, alongside the O(nnz) validation the miss already pays.
//
// Residency is bounded twice: by entry count (LRU past cap) and by total
// retained bytes (LRU past maxBytes), so a stream of many small operands
// and a stream of few huge ones are both capped. An operand larger than
// the byte bound by itself is served but never stored.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/matrix"
)

// internKey is the content address of an operand: SHA-256 over a kind tag,
// the dimensions, and the raw CSR array bytes.
type internKey [sha256.Size]byte

const (
	internKindPattern = 0
	internKindMatrix  = 1
)

// internTable is a bounded LRU of canonical decoded operands.
type internTable struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64
	entries  map[internKey]*list.Element
	lru      *list.List // front = most recent; values are *internEntry

	hits, misses, evictions atomic.Int64
}

type internEntry struct {
	key  internKey
	val  any // *matrix.Pattern or *matrix.CSR[float64]
	size int64
}

// newInternTable returns a table bounded to capacity entries and maxBytes
// retained operand bytes (maxBytes <= 0 means entry-bounded only), or nil
// (pass-through interning) when capacity <= 0.
func newInternTable(capacity int, maxBytes int64) *internTable {
	if capacity <= 0 {
		return nil
	}
	return &internTable{
		cap:      capacity,
		maxBytes: maxBytes,
		entries:  make(map[internKey]*list.Element, capacity),
		lru:      list.New(),
	}
}

// i32Bytes and f64Bytes reinterpret slice payloads as raw bytes for
// hashing — read-only views, never stored.
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// digest content-addresses one operand.
func digest(kind byte, nrows, ncols int32, rowptr, col []int32, val []float64) internKey {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(nrows))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(ncols))
	h.Write(hdr[:])
	h.Write(i32Bytes(rowptr))
	h.Write(i32Bytes(col))
	if kind == internKindMatrix {
		h.Write(f64Bytes(val))
	}
	return internKey(h.Sum(nil))
}

// lookup returns the canonical object for key when present. Lookup and
// insert are separate so the caller can run the O(nnz) semantic validation
// only between a miss and the insertion: a hit is an operand that was
// validated when first admitted, and an invalid operand never enters the
// table.
func (t *internTable) lookup(key internKey) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		t.hits.Add(1)
		return el.Value.(*internEntry).val, true
	}
	t.misses.Add(1)
	return nil, false
}

// insert records clone — a private deep copy the table will own, size
// bytes of arrays — as key's canonical object and returns the canonical
// object: clone, or the raced winner when a concurrent duplicate inserted
// first. An operand larger than the byte bound by itself is returned
// un-stored.
func (t *internTable) insert(key internKey, clone any, size int64) any {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		return el.Value.(*internEntry).val
	}
	if t.maxBytes > 0 && size > t.maxBytes {
		return clone
	}
	t.entries[key] = t.lru.PushFront(&internEntry{key: key, val: clone, size: size})
	t.bytes += size
	for t.lru.Len() > t.cap || (t.maxBytes > 0 && t.bytes > t.maxBytes && t.lru.Len() > 1) {
		el := t.lru.Back()
		t.lru.Remove(el)
		e := el.Value.(*internEntry)
		delete(t.entries, e.key)
		t.bytes -= e.size
		t.evictions.Add(1)
	}
	return clone
}

// patternKey and matrixKey content-address the two operand kinds;
// patternSize and matrixSize report the array bytes a stored copy retains.
func patternKey(p *matrix.Pattern) internKey {
	return digest(internKindPattern, p.NRows, p.NCols, p.RowPtr, p.Col, nil)
}

func matrixKey(a *matrix.CSR[float64]) internKey {
	return digest(internKindMatrix, a.NRows, a.NCols, a.RowPtr, a.Col, a.Val)
}

func patternSize(p *matrix.Pattern) int64 {
	return 4 * int64(len(p.RowPtr)+len(p.Col))
}

func matrixSize(a *matrix.CSR[float64]) int64 {
	return 4*int64(len(a.RowPtr)+len(a.Col)) + 8*int64(len(a.Val))
}

// internStats is the table's counter snapshot for /metrics.
type internStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

func (t *internTable) stats() internStats {
	if t == nil {
		return internStats{}
	}
	t.mu.Lock()
	n, b := t.lru.Len(), t.bytes
	t.mu.Unlock()
	return internStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Evictions: t.evictions.Load(),
		Entries:   n,
		Bytes:     b,
	}
}
