// Package server is the network serving subsystem: an HTTP front end over
// one masked.Session that speaks the internal/wire binary frame format.
// cmd/mspgemm-server is a thin flag wrapper around it; the bench serve-load
// study and the tests embed it in-process on an ephemeral port.
//
// The request path is frame → decode → admit → execute → encode:
//
//	POST body ─ wire.DecodeFrame loop ─ decode (zero-copy views of the
//	pooled body buffer) ─ validate/intern operands ─ admission (TryMultiply
//	or TryAdmit; full ⇒ 429 + Retry-After, never an unbounded queue) ─
//	masked.Session execute under the request deadline ─ encode response
//	frames ─ write.
//
// Admission is backed by the session's arbiter: single multiplies use the
// non-queuing TryMultiply, application requests (triangle count, BFS)
// claim a slot with TryAdmit and run under the arbitrated worker share,
// and multi-frame batches queue inside MultiplyBatch but only after a
// server-level bound on queued frames admits them — so a saturated server
// always answers 429 promptly instead of accumulating work.
//
// Decoded operands are content-addressed and interned (see intern.go), so
// the serving loops the engine is built for — re-multiplying against a
// static graph — regain operand identity across the wire: repeated
// operands hit the session's plan cache, identical in-flight requests
// coalesce, and re-validation is skipped. The table stores private copies,
// so handlers recycle their pooled body buffer unconditionally.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matrix"
	"repro/internal/wire"
	"repro/masked"
)

// wireContentType is the media type of wire-frame request and response
// bodies.
const wireContentType = "application/x-mspgemm-wire"

// ErrSaturated is the client-side sentinel for HTTP 429: the server's
// admission cap is full. It is the session's saturation error, so
// errors.Is works across the in-process and network surfaces alike.
var ErrSaturated = masked.ErrSaturated

// Config parameterizes a Server. The zero value serves with engine
// defaults and the documented limits.
type Config struct {
	// Threads is the session worker budget (0 = GOMAXPROCS).
	Threads int
	// Inflight is the admission cap — concurrent requests holding arbiter
	// slots (0 = engine default).
	Inflight int
	// PlanCacheCapacity bounds the session plan cache (0 = engine default).
	PlanCacheCapacity int
	// Calibration selects the session's cost-model calibration mode: the
	// zero value masked.CalibrationOff plans with the hand-tuned model,
	// CalibrationAuto/CalibrationForce install the host's measured
	// coefficients (see masked.WithCalibration). Exported in /metrics as
	// mspgemm_calibration_info.
	Calibration masked.Calibration
	// InternCapacity bounds the operand intern table in entries
	// (0 = 128, negative disables interning).
	InternCapacity int
	// InternMaxBytes bounds the total operand bytes the intern table
	// retains (0 = 1 GiB, negative = entry bound only). Entries are
	// private copies sized by their own CSR arrays, so this caps the
	// table's heap footprint directly.
	InternMaxBytes int64
	// MaxBodyBytes caps a request body; larger bodies get 413
	// (0 = 256 MiB).
	MaxBodyBytes int64
	// MaxBatchFrames caps the frames in one /v1/multiply body (0 = 64).
	MaxBatchFrames int
	// MaxQueuedFrames bounds batch frames queued server-wide; a batch that
	// would exceed it gets 429 whole (0 = 4 × the admission cap).
	MaxQueuedFrames int
	// DefaultDeadline applies to requests that carry no deadline (0 = 30s);
	// MaxDeadline clamps requested deadlines (0 = 5m).
	DefaultDeadline, MaxDeadline time.Duration
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// DrainTimeout bounds the graceful drain of in-flight requests on
	// shutdown (0 = 30s).
	DrainTimeout time.Duration
}

// withDefaults fills the zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.InternCapacity == 0 {
		c.InternCapacity = 128
	}
	if c.InternMaxBytes == 0 {
		c.InternMaxBytes = 1 << 30
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxBatchFrames == 0 {
		c.MaxBatchFrames = 64
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server is the HTTP front end. Create with New, expose with Handler or
// run with Serve/ListenAndServe.
type Server struct {
	cfg    Config
	sess   *masked.Session
	intern *internTable
	mux    *http.ServeMux
	start  time.Time

	maxQueued    int64
	queuedFrames atomic.Int64
	bodies       sync.Pool // *[]byte request-body buffers

	nMultiply, nFrames, nTC, nBFS atomic.Int64
	nRejected, nErrors            atomic.Int64
	bytesIn, bytesOut             atomic.Int64
	nPanics                       atomic.Int64
}

// New builds a Server and its backing session from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var opts []masked.Op
	if cfg.Threads > 0 {
		opts = append(opts, masked.WithThreads(cfg.Threads))
	}
	if cfg.Inflight > 0 {
		opts = append(opts, masked.WithInflight(cfg.Inflight))
	}
	if cfg.PlanCacheCapacity > 0 {
		opts = append(opts, masked.WithPlanCacheCapacity(cfg.PlanCacheCapacity))
	}
	opts = append(opts, masked.WithCalibration(cfg.Calibration))
	sv := &Server{
		cfg:    cfg,
		sess:   masked.NewSession(opts...),
		intern: newInternTable(cfg.InternCapacity, cfg.InternMaxBytes),
		start:  time.Now(),
	}
	sv.maxQueued = int64(cfg.MaxQueuedFrames)
	if sv.maxQueued <= 0 {
		sv.maxQueued = 4 * int64(sv.sess.ServingStats().MaxInflight)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/multiply", sv.guard(sv.handleMultiply))
	mux.HandleFunc("/v1/triangle-count", sv.guard(sv.handleTriangleCount))
	mux.HandleFunc("/v1/bfs", sv.guard(sv.handleBFS))
	mux.HandleFunc("/metrics", sv.guard(sv.handleMetrics))
	mux.HandleFunc("/healthz", sv.guard(sv.handleHealthz))
	sv.mux = mux
	return sv
}

// guard is the handler-level panic barrier: a panic anywhere in a handler
// costs that request a 500 — stack to the log, mspgemm_panics_total bumped —
// never the process. Most panics on the execution path are already
// converted to errors one layer down (masked's request-boundary recover),
// so what reaches this barrier is decode/encode bugs and the
// server.handler.panic chaos point; without it net/http would kill the
// connection without a response and log the stack only.
//
// The 500 is best-effort: if the handler panicked after writing its
// response header, the write below is discarded by net/http — the client
// still sees a broken body rather than a silent success, because the
// Content-Length the handler declared no longer matches.
func (sv *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				sv.nPanics.Add(1)
				log.Printf("mspgemm-server: panic serving %s: %v\n%s", r.URL.Path, v, debug.Stack())
				sv.httpError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal panic serving %s (recovered)", r.URL.Path))
			}
		}()
		h(w, r)
	}
}

// Session exposes the backing session (tests and embedders share it for
// reference computations and direct stats access).
func (sv *Server) Session() *masked.Session { return sv.sess }

// Handler returns the HTTP handler serving all endpoints.
func (sv *Server) Handler() http.Handler { return sv.mux }

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests (bounded by DrainTimeout) before returning. A clean
// drain returns nil.
func (sv *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: sv.mux, ReadHeaderTimeout: 10 * time.Second}
	exited := make(chan error, 1)
	go func() { exited <- hs.Serve(ln) }()
	select {
	case err := <-exited:
		return err // listener failure before shutdown
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), sv.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx) // stops accepting, waits for in-flight handlers
	<-exited                 // Serve has returned ErrServerClosed
	return err
}

// ListenAndServe listens on addr and calls Serve.
func (sv *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return sv.Serve(ctx, ln)
}

// Local is an in-process server on an ephemeral localhost port, for tests
// and the bench serve-load study.
type Local struct {
	// Server is the running server; URL its base address
	// ("http://127.0.0.1:port").
	Server *Server
	// URL is the server's base address.
	URL    string
	cancel context.CancelFunc
	done   chan error
}

// StartLocal builds a server from cfg and serves it on 127.0.0.1:0 in the
// background. Close it to drain and stop.
func StartLocal(cfg Config) (*Local, error) {
	sv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Local{
		Server: sv,
		URL:    "http://" + ln.Addr().String(),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { l.done <- sv.Serve(ctx, ln) }()
	return l, nil
}

// Close drains in-flight requests and stops the server.
func (l *Local) Close() error {
	l.cancel()
	return <-l.done
}

// readBody reads the request body into a pooled buffer, answering 413/400
// itself on failure. The returned release func recycles the buffer; the
// handler defers it past the last use of any decoded view of the body
// (the intern table stores copies, never views, so interning does not
// extend the buffer's lifetime).
func (sv *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), bool) {
	bp, _ := sv.bodies.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	buf := (*bp)[:0]
	limit := sv.cfg.MaxBodyBytes
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if int64(len(buf)) > limit {
			*bp = buf
			sv.bodies.Put(bp)
			sv.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", limit))
			return nil, nil, false
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			*bp = buf
			sv.bodies.Put(bp)
			sv.httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
			return nil, nil, false
		}
	}
	sv.bytesIn.Add(int64(len(buf)))
	*bp = buf
	release := func() { sv.bodies.Put(bp) }
	return buf, release, true
}

// httpError answers a plain-text error and counts it.
func (sv *Server) httpError(w http.ResponseWriter, code int, msg string) {
	sv.nErrors.Add(1)
	http.Error(w, msg, code)
}

// reject answers 429 with the Retry-After hint.
func (sv *Server) reject(w http.ResponseWriter) {
	sv.nRejected.Add(1)
	secs := int64((sv.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "admission saturated", http.StatusTooManyRequests)
}

// writeWire writes an encoded frame sequence as the response body,
// upgraded to checksummed version-2 frames (wire.WithChecksum) so the
// client verifies payload integrity on decode. Checksumming is also where
// the wire corruption chaos points fire, which is why Content-Length is
// taken after it.
func (sv *Server) writeWire(w http.ResponseWriter, frames []byte) {
	frames = wire.WithChecksum(frames)
	w.Header().Set("Content-Type", wireContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
	n, _ := w.Write(frames)
	sv.bytesOut.Add(int64(n))
}

// deadlineFor maps a frame's DeadlineMillis onto the configured
// default/max window.
func (sv *Server) deadlineFor(millis uint32) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d <= 0 {
		d = sv.cfg.DefaultDeadline
	}
	if d > sv.cfg.MaxDeadline {
		d = sv.cfg.MaxDeadline
	}
	return d
}

// statusFor maps an execution error onto an HTTP-style status code.
func statusFor(err error) int {
	switch {
	case errors.Is(err, masked.ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// validatePattern and validateMatrix run the semantic checks untrusted
// operands need before reaching the kernels.
func validatePattern(p *matrix.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !p.IsSortedRows() {
		return errors.New("rows must be sorted and duplicate-free")
	}
	return nil
}

func validateMatrix(a *matrix.CSR[float64]) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if !a.IsSortedRows() {
		return errors.New("rows must be sorted and duplicate-free")
	}
	return nil
}

// internPattern validates and interns a decoded mask. An intern hit skips
// the O(nnz) validation, which ran when the canonical copy was first
// admitted; a miss validates and stores a deep copy, because p aliases the
// request's pooled body buffer and the table must outlive it.
func (sv *Server) internPattern(p *matrix.Pattern, what string) (*matrix.Pattern, error) {
	if sv.intern == nil {
		if err := validatePattern(p); err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		return p, nil
	}
	key := patternKey(p)
	// Chaos point: a forced miss sends an operand the table already holds
	// down the full revalidate-and-copy path — which must stay equivalent.
	if v, ok := sv.intern.lookup(key); ok && !faultinject.Fire(faultinject.PointInternMiss) {
		return v.(*matrix.Pattern), nil
	}
	if err := validatePattern(p); err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	v := sv.intern.insert(key, p.Clone(), patternSize(p))
	return v.(*matrix.Pattern), nil
}

// internMatrix is internPattern for valued operands.
func (sv *Server) internMatrix(a *matrix.CSR[float64], what string) (*matrix.CSR[float64], error) {
	if sv.intern == nil {
		if err := validateMatrix(a); err != nil {
			return nil, fmt.Errorf("%s: %w", what, err)
		}
		return a, nil
	}
	key := matrixKey(a)
	if v, ok := sv.intern.lookup(key); ok && !faultinject.Fire(faultinject.PointInternMiss) {
		return v.(*matrix.CSR[float64]), nil
	}
	if err := validateMatrix(a); err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	v := sv.intern.insert(key, a.Clone(), matrixSize(a))
	return v.(*matrix.CSR[float64]), nil
}

// frameOpts maps a multiply frame's flags and semiring name onto
// descriptor options.
func frameOpts(f *wire.MultiplyReq) ([]masked.Op, error) {
	if bad := f.Flags &^ wire.FlagComplement; bad != 0 {
		return nil, fmt.Errorf("unknown flag bits %#x", bad)
	}
	var opts []masked.Op
	if f.Semiring != "" {
		sr, err := masked.SemiringByName(f.Semiring)
		if err != nil {
			return nil, err
		}
		opts = append(opts, masked.WithAccumulate(sr))
	}
	if f.Flags&wire.FlagComplement != 0 {
		opts = append(opts, masked.WithComplement())
	}
	return opts, nil
}

// handleMultiply serves POST /v1/multiply: one or more concatenated
// FrameMultiplyReq frames. A single frame takes the non-queuing admission
// path (429 + Retry-After when saturated); a batch is admitted whole
// against the queued-frames bound and answered as per-frame response or
// error frames in request order. A batch executes under one context whose
// deadline is the largest requested across its frames (documented on
// wire.MultiplyReq.DeadlineMillis): clients needing strict per-frame
// deadlines send frames as separate requests.
func (sv *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		sv.httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, release, ok := sv.readBody(w, r)
	if !ok {
		return
	}
	defer release()

	// Chaos points, inert unless armed: a forced handler panic after the
	// body is read (the guard barrier must release the pooled buffer via the
	// defer above and answer 500) and a latency stall (exercises deadlines
	// and graceful drain under slow handlers).
	if faultinject.Fire(faultinject.PointServerPanic) {
		panic("faultinject: " + faultinject.PointServerPanic)
	}
	faultinject.Sleep(faultinject.PointServerSlow)

	var frames []*wire.MultiplyReq
	for data := body; len(data) > 0; {
		t, payload, rest, err := wire.DecodeFrame(data)
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if t != wire.FrameMultiplyReq {
			sv.httpError(w, http.StatusBadRequest,
				fmt.Sprintf("frame %d: type %d, want multiply request", len(frames), t))
			return
		}
		req, err := wire.DecodeMultiplyReq(payload)
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		frames = append(frames, req)
		if len(frames) > sv.cfg.MaxBatchFrames {
			sv.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("more than %d frames in one body", sv.cfg.MaxBatchFrames))
			return
		}
		data = rest
	}
	if len(frames) == 0 {
		sv.httpError(w, http.StatusBadRequest, "empty body")
		return
	}

	batch := make([]masked.BatchReq, len(frames))
	var deadline time.Duration
	for i, f := range frames {
		opts, err := frameOpts(f)
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame %d: %v", i, err))
			return
		}
		m, err := sv.internPattern(f.M, "mask")
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame %d: %v", i, err))
			return
		}
		a, err := sv.internMatrix(f.A, "A")
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame %d: %v", i, err))
			return
		}
		b, err := sv.internMatrix(f.B, "B")
		if err != nil {
			sv.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame %d: %v", i, err))
			return
		}
		if a.NCols != b.NRows || m.NRows != a.NRows || m.NCols != b.NCols {
			sv.httpError(w, http.StatusBadRequest, fmt.Sprintf(
				"frame %d: incompatible shapes: M %dx%d, A %dx%d, B %dx%d",
				i, m.NRows, m.NCols, a.NRows, a.NCols, b.NRows, b.NCols))
			return
		}
		batch[i] = masked.BatchReq{M: m, A: a, B: b, Opts: opts, Tag: i}
		if d := sv.deadlineFor(f.DeadlineMillis); d > deadline {
			deadline = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	sv.nMultiply.Add(1)
	sv.nFrames.Add(int64(len(frames)))

	if len(frames) == 1 {
		res := sv.sess.TryMultiply(ctx, batch[0].M, batch[0].A, batch[0].B, batch[0].Opts...)
		switch {
		case errors.Is(res.Err, masked.ErrSaturated):
			sv.reject(w)
		case res.Err != nil:
			sv.httpError(w, statusFor(res.Err), res.Err.Error())
		default:
			sv.writeWire(w, encodeMultiplyRes(nil, res))
		}
		return
	}

	// Batch path: MultiplyBatch queues internally, so bound the queue at
	// the server — a batch that would exceed it is refused whole.
	n := int64(len(frames))
	if sv.queuedFrames.Add(n) > sv.maxQueued {
		sv.queuedFrames.Add(-n)
		sv.reject(w)
		return
	}
	defer sv.queuedFrames.Add(-n)
	var out []byte
	for _, res := range sv.sess.MultiplyBatch(ctx, batch) {
		if res.Err != nil {
			out = (&wire.ErrorFrame{
				Code:    uint16(statusFor(res.Err)),
				Message: res.Err.Error(),
			}).Encode(out)
			continue
		}
		out = encodeMultiplyRes(out, res)
	}
	sv.writeWire(w, out)
}

// encodeMultiplyRes appends one multiply response frame.
func encodeMultiplyRes(dst []byte, res masked.BatchRes) []byte {
	var flags uint16
	if res.Coalesced {
		flags |= wire.FlagCoalesced
	}
	workers := res.Workers
	if workers > 1<<16-1 {
		workers = 1<<16 - 1
	}
	return (&wire.MultiplyRes{Flags: flags, Workers: uint16(workers), C: res.C}).Encode(dst)
}

// decodeSingle reads the one request frame an app endpoint expects.
func (sv *Server) decodeSingle(w http.ResponseWriter, body []byte, want wire.FrameType) ([]byte, bool) {
	t, payload, rest, err := wire.DecodeFrame(body)
	if err != nil {
		sv.httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if t != want {
		sv.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame type %d, want %d", t, want))
		return nil, false
	}
	if len(rest) != 0 {
		sv.httpError(w, http.StatusBadRequest, "expected exactly one frame")
		return nil, false
	}
	return payload, true
}

// handleTriangleCount serves POST /v1/triangle-count: one
// FrameTriangleCountReq. Admission goes through TryAdmit, so a saturated
// session refuses app requests exactly like multiplies.
func (sv *Server) handleTriangleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		sv.httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, release, ok := sv.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	payload, ok := sv.decodeSingle(w, body, wire.FrameTriangleCountReq)
	if !ok {
		return
	}
	req, err := wire.DecodeTriangleCountReq(payload)
	if err != nil {
		sv.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, err := sv.internMatrix(req.G, "graph")
	if err != nil {
		sv.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if g.NRows != g.NCols {
		sv.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("graph must be square, got %dx%d", g.NRows, g.NCols))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), sv.deadlineFor(req.DeadlineMillis))
	defer cancel()
	sv.nTC.Add(1)

	adm, ok := sv.sess.TryAdmit(int64(g.NNZ()))
	if !ok {
		sv.reject(w)
		return
	}
	defer adm.Release()
	tc, err := sv.sess.TriangleCount(ctx, g, masked.WithThreads(adm.Workers()))
	if err != nil {
		sv.httpError(w, statusFor(err), err.Error())
		return
	}
	sv.writeWire(w, (&wire.TriangleCountRes{
		Triangles:   tc.Triangles,
		Flops:       tc.Flops,
		MaskedNanos: tc.MaskedTime.Nanoseconds(),
		TotalNanos:  tc.TotalTime.Nanoseconds(),
	}).Encode(nil))
}

// handleBFS serves POST /v1/bfs: one FrameBFSReq.
func (sv *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		sv.httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, release, ok := sv.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	payload, ok := sv.decodeSingle(w, body, wire.FrameBFSReq)
	if !ok {
		return
	}
	req, err := wire.DecodeBFSReq(payload)
	if err != nil {
		sv.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, err := sv.internMatrix(req.G, "graph")
	if err != nil {
		sv.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if g.NRows != g.NCols {
		sv.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("graph must be square, got %dx%d", g.NRows, g.NCols))
		return
	}
	if req.Source < 0 || req.Source >= g.NRows {
		sv.httpError(w, http.StatusBadRequest,
			fmt.Sprintf("source %d out of range [0,%d)", req.Source, g.NRows))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), sv.deadlineFor(req.DeadlineMillis))
	defer cancel()
	sv.nBFS.Add(1)

	adm, ok := sv.sess.TryAdmit(int64(g.NNZ()))
	if !ok {
		sv.reject(w)
		return
	}
	defer adm.Release()
	res, err := sv.sess.BFS(ctx, g, req.Source, masked.WithThreads(adm.Workers()))
	if err != nil {
		sv.httpError(w, statusFor(err), err.Error())
		return
	}
	sv.writeWire(w, (&wire.BFSRes{
		Depth:     int32(res.Depth),
		PushSteps: int32(res.PushSteps),
		PullSteps: int32(res.PullSteps),
		Level:     res.Level,
	}).Encode(nil))
}

// handleHealthz serves GET /healthz.
func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		sv.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(sv.start).Seconds(),
	})
}

// handleMetrics serves GET /metrics: Prometheus text by default, the JSON
// snapshot with ?format=json.
func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		sv.httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := sv.Metrics()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writeProm(w, snap)
}
