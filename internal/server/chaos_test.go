package server

// The chaos suite: every injected fault class runs against a live
// in-process server driven by the retrying client, and every surviving
// response must be bit-identical to an unfaulted session's. Faults are
// armed with limit:N schedules, so recovery is guaranteed, not
// probabilistic. The real-binary variant (MSPGEMM_FAULTS through the smoke
// client) runs in CI's chaos job; these tests cover the same classes
// in-process where they can also assert on internals (arbiter budget,
// panic counters, retry stats).

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matrix"
	"repro/internal/wire"
	"repro/masked"
)

// retryClient is a client with a fast, bounded retry policy: enough
// attempts to outlast every limit:N fault schedule below, with MaxDelay
// clamping the server's 1s Retry-After so saturation tests stay quick.
func retryClient(url string) *Client {
	return NewClient(url, nil, WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	}))
}

// arm installs a fault registry from spec and uninstalls it on cleanup.
func arm(t *testing.T, spec string) {
	t.Helper()
	r, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(r)
	t.Cleanup(func() { faultinject.Set(nil) })
}

// checkHealthy asserts the server is still serving and has leaked neither
// admission slots nor worker budget.
func checkHealthy(t *testing.T, l *Local, c *Client) {
	t.Helper()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("server unhealthy after fault: %v", err)
	}
	if st := l.Server.Session().ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
		t.Fatalf("arbiter leaked after fault: %+v", st)
	}
}

// TestChaosFaultClasses drives one multiply per fault class through the
// retrying client and requires bit-identical recovery from each.
func TestChaosFaultClasses(t *testing.T) {
	ctx := context.Background()
	g := masked.ErdosRenyi(256, 8, 31)
	gp := g.Pattern()
	want, err := masked.NewSession(masked.WithThreads(2)).Multiply(ctx, gp, g, g)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		spec string
	}{
		// The handler barrier converts the panic to a 500; the client
		// retries it (multiplies are pure).
		{"handler-panic", "server.handler.panic=every:1,limit:1"},
		// The session's request-boundary recover converts a kernel panic to
		// an error response without leaking the arbiter grant.
		{"kernel-panic", "masked.kernel.panic=every:1,limit:1"},
		// The client's first request body is truncated in flight; the
		// server's frame decoder answers 400 and the retry re-encodes.
		{"request-truncated", "wire.truncate=every:1,limit:1"},
		// Evaluation 2 of the bitflip point is the server's response encode:
		// the client's CRC32-C verification catches it and retries.
		{"response-bitflip", "wire.bitflip=every:2,limit:1"},
		// Latency faults must not change outcomes, only timing.
		{"slow-handler", "server.handler.slow=every:1,limit:2,delay:30ms"},
		{"arbiter-stall", "masked.arbiter.stall=every:1,limit:2,delay:30ms"},
		// A forced intern miss takes the revalidate-and-copy path for a
		// known operand — same canonical operand, same result.
		{"intern-miss", "server.intern.miss=every:1,limit:4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, _ := startLocal(t, Config{Threads: 2})
			c := retryClient(l.URL)
			arm(t, tc.spec)
			// Two identical requests: the second exercises the intern-hit
			// path (or, under intern-miss, the forced cold path again).
			for i := 0; i < 2; i++ {
				res, err := c.Multiply(ctx, &wire.MultiplyReq{M: gp, A: g, B: g})
				if err != nil {
					t.Fatalf("request %d under %s: %v", i, tc.spec, err)
				}
				if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
					t.Fatalf("request %d under %s: result differs from unfaulted run", i, tc.spec)
				}
			}
			faultinject.Set(nil)
			checkHealthy(t, l, c)
		})
	}
}

// TestChaosBitFlipOneRetry pins the acceptance criterion precisely: a
// bit-flipped request frame is detected by CRC32-C on the server, answered
// 400, and recovered by exactly one client retry.
func TestChaosBitFlipOneRetry(t *testing.T) {
	ctx := context.Background()
	l, _ := startLocal(t, Config{Threads: 2})
	c := retryClient(l.URL)
	g := masked.ErdosRenyi(128, 6, 32)
	want, err := masked.NewSession(masked.WithThreads(2)).Multiply(ctx, g.Pattern(), g, g)
	if err != nil {
		t.Fatal(err)
	}

	// Evaluation 1 of wire.bitflip is the client's request encode.
	arm(t, "wire.bitflip=every:1,limit:1")
	res, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
	if err != nil {
		t.Fatalf("bit-flipped request did not recover: %v", err)
	}
	if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
		t.Fatal("recovered result differs from unfaulted run")
	}
	st := c.Stats()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Fatalf("stats %+v, want exactly one retry (2 attempts)", st)
	}
	if fs := faultinject.Stats(); fs[faultinject.PointWireBitflip] != 1 {
		t.Fatalf("bitflip fired %d times, want 1", fs[faultinject.PointWireBitflip])
	}
}

// TestChaosResponseChecksumCounted checks a server-side response flip is
// counted as a checksum error by the client's verifying decoder.
func TestChaosResponseChecksumCounted(t *testing.T) {
	ctx := context.Background()
	l, _ := startLocal(t, Config{Threads: 2})
	c := retryClient(l.URL)
	g := masked.ErdosRenyi(128, 6, 33)

	arm(t, "wire.bitflip=every:2,limit:1")
	if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}); err != nil {
		t.Fatalf("response flip did not recover: %v", err)
	}
	if st := c.Stats(); st.ChecksumErrors != 1 || st.Retries != 1 {
		t.Fatalf("stats %+v, want one checksum error and one retry", st)
	}
	faultinject.Set(nil)
	checkHealthy(t, l, c)
}

// TestChaosPanicsObservable checks the two panic scopes land in /metrics:
// the handler barrier's counter, the session barrier's counter, and the
// injected-fault counters alongside them.
func TestChaosPanicsObservable(t *testing.T) {
	ctx := context.Background()
	l, _ := startLocal(t, Config{Threads: 2})
	c := retryClient(l.URL)
	g := masked.ErdosRenyi(64, 4, 34)

	// Attempt 1 panics in the handler before the session is reached, so the
	// kernel point's first evaluation is attempt 2; attempt 3 succeeds.
	arm(t, "server.handler.panic=every:1,limit:1;masked.kernel.panic=every:1,limit:1")
	if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}); err != nil {
		t.Fatalf("multiply under panic faults: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.HandlerPanics != 1 || m.SessionPanics != 1 {
		t.Fatalf("panic counters handler=%d session=%d, want 1 and 1", m.HandlerPanics, m.SessionPanics)
	}
	if m.FaultsInjected[faultinject.PointServerPanic] != 1 || m.FaultsInjected[faultinject.PointKernelPanic] != 1 {
		t.Fatalf("fault counters %v", m.FaultsInjected)
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`mspgemm_panics_total{scope="handler"} 1`,
		`mspgemm_panics_total{scope="session"} 1`,
		`mspgemm_faults_injected_total{point="server.handler.panic"} 1`,
	} {
		if !containsLine(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
	faultinject.Set(nil)
	checkHealthy(t, l, c)
}

func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}

// TestChaosWorkerPanicOverWire checks a panic on a parallel worker
// goroutine — the hardest class, unrecoverable without the re-panic
// machinery — costs one 500 and recovers on retry, for an operand big
// enough that the arbiter grants several workers.
func TestChaosWorkerPanicOverWire(t *testing.T) {
	ctx := context.Background()
	l, _ := startLocal(t, Config{Threads: 4})
	c := retryClient(l.URL)
	g := masked.ErdosRenyi(16384, 10, 35)

	arm(t, "parallel.worker.panic=every:1,limit:1")
	res, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
	if err != nil {
		t.Fatalf("worker panic did not recover: %v", err)
	}
	want, err := masked.NewSession(masked.WithThreads(4)).Multiply(ctx, g.Pattern(), g, g)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
		t.Fatal("recovered result differs from unfaulted run")
	}
	if m := l.Server.Metrics(); m.SessionPanics != 1 {
		t.Fatalf("session panics %d, want 1", m.SessionPanics)
	}
	faultinject.Set(nil)
	checkHealthy(t, l, c)
}

// TestSaturationRetrySucceeds is the 429→retry→success round trip: a
// saturated server refuses with Retry-After, the slot frees while the
// client backs off, and the retry lands — no caller-visible error.
func TestSaturationRetrySucceeds(t *testing.T) {
	ctx := context.Background()
	l, _ := startLocal(t, Config{Threads: 1, Inflight: 1})
	c := retryClient(l.URL)
	g := masked.ErdosRenyi(64, 4, 36)

	// First, pin the typed refusal: a non-retrying client surfaces
	// *SaturatedError with the parsed hint.
	adm, ok := l.Server.Session().TryAdmit(1)
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	_, err := NewClient(l.URL, nil).Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
	var se *SaturatedError
	if !errors.As(err, &se) || !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated multiply: %v, want *SaturatedError", err)
	}
	if se.RetryAfter < time.Second {
		t.Fatalf("Retry-After hint %v, want >= 1s (the server's rounding floor)", se.RetryAfter)
	}

	// Now the round trip: release the slot mid-backoff.
	release := time.AfterFunc(20*time.Millisecond, adm.Release)
	defer release.Stop()
	if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}); err != nil {
		t.Fatalf("retrying client under saturation: %v", err)
	}
	if st := c.Stats(); st.Retries < 1 {
		t.Fatalf("stats %+v, want at least one retry", st)
	}
	checkHealthy(t, l, c)
}

// TestDrainUnderBatch closes a server while a multi-frame batch is in
// flight: the batch completes, the drain returns nil, and no goroutines
// leak.
func TestDrainUnderBatch(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		l, err := StartLocal(Config{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(l.URL, nil)
		ctx := context.Background()
		g := masked.ErdosRenyi(512, 16, 37)
		h := masked.ErdosRenyi(384, 16, 38)

		// Hold the batch in the handler briefly so Close overlaps it.
		arm(t, "server.handler.slow=every:1,limit:1,delay:50ms")
		inFlight := make(chan error, 1)
		go func() {
			out, err := c.MultiplyBatch(ctx, []*wire.MultiplyReq{
				{M: g.Pattern(), A: g, B: g},
				{M: h.Pattern(), A: h, B: h},
				{M: g.Pattern(), A: g, B: g},
			})
			for _, o := range out {
				if err == nil {
					err = o.Err
				}
			}
			inFlight <- err
		}()
		time.Sleep(20 * time.Millisecond)
		if err := l.Close(); err != nil {
			t.Errorf("drain under batch: %v", err)
		}
		if err := <-inFlight; err != nil {
			t.Errorf("in-flight batch during drain: %v", err)
		}
		if st := l.Server.Session().ServingStats(); st.Inflight != 0 || st.Free != st.Budget {
			t.Errorf("arbiter leaked across drain: %+v", st)
		}
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain under batch: %d live, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryRespectsOverallDeadline checks the retry loop gives up when the
// caller's ctx budget is spent rather than burning all attempts.
func TestRetryRespectsOverallDeadline(t *testing.T) {
	l, _ := startLocal(t, Config{Threads: 1, Inflight: 1})
	g := masked.ErdosRenyi(64, 4, 39)
	adm, ok := l.Server.Session().TryAdmit(1)
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	defer adm.Release()

	c := NewClient(l.URL, nil, WithRetry(RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
	if err == nil {
		t.Fatal("saturated multiply under a spent budget succeeded")
	}
	if !errors.Is(err, ErrSaturated) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past an 80ms budget", elapsed)
	}
	if st := c.Stats(); st.Attempts >= 100 {
		t.Fatalf("burned all %d attempts despite the deadline", st.Attempts)
	}
}
