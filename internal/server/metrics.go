package server

// The /metrics exporter: one snapshot struct serialized two ways —
// Prometheus text exposition for scrapers, JSON for the bench harness and
// humans with curl. All *_total counters are monotonic over the server's
// lifetime; the rest are gauges describing the scrape instant.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/masked"
)

// MetricsSnapshot is one point-in-time reading of every server and
// session counter /metrics exports.
type MetricsSnapshot struct {
	// UptimeSeconds is the time since the server was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// MultiplyRequests counts /v1/multiply requests; MultiplyFrames the
	// request frames inside them (a batch is one request, many frames).
	MultiplyRequests int64 `json:"multiply_requests"`
	MultiplyFrames   int64 `json:"multiply_frames"`
	// TriangleCountRequests and BFSRequests count the app endpoints.
	TriangleCountRequests int64 `json:"triangle_count_requests"`
	BFSRequests           int64 `json:"bfs_requests"`
	// Rejected counts whole-request 429s; Errors other 4xx/5xx responses.
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`
	// HandlerPanics counts panics recovered by the handler-level barrier
	// (decode/encode bugs, injected handler faults); SessionPanics those
	// recovered at the session request boundary (kernel and worker panics).
	// Both monotonic; nonzero outside chaos runs means a bug.
	HandlerPanics int64 `json:"handler_panics"`
	SessionPanics int64 `json:"session_panics"`
	// FaultsInjected reports fired fault-injection points by name; nil when
	// fault injection is disabled (the production state).
	FaultsInjected map[string]int64 `json:"faults_injected,omitempty"`
	// BytesIn and BytesOut count request body bytes read and response
	// frame bytes written.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// QueuedFrames is the batch frames currently queued (gauge).
	QueuedFrames int64 `json:"queued_frames"`
	// Intern* report the operand intern table (see intern.go).
	InternHits      int64 `json:"operand_intern_hits"`
	InternMisses    int64 `json:"operand_intern_misses"`
	InternEvictions int64 `json:"operand_intern_evictions"`
	InternEntries   int   `json:"operand_intern_entries"`
	InternBytes     int64 `json:"operand_intern_bytes"`
	// Session is the unified session snapshot: plan cache, arbiter,
	// driver pools.
	Session masked.Stats `json:"session"`
}

// Metrics reads one snapshot of all counters.
func (sv *Server) Metrics() MetricsSnapshot {
	in := sv.intern.stats()
	sess := sv.sess.Stats()
	return MetricsSnapshot{
		UptimeSeconds:         time.Since(sv.start).Seconds(),
		MultiplyRequests:      sv.nMultiply.Load(),
		MultiplyFrames:        sv.nFrames.Load(),
		TriangleCountRequests: sv.nTC.Load(),
		BFSRequests:           sv.nBFS.Load(),
		Rejected:              sv.nRejected.Load(),
		Errors:                sv.nErrors.Load(),
		BytesIn:               sv.bytesIn.Load(),
		BytesOut:              sv.bytesOut.Load(),
		QueuedFrames:          sv.queuedFrames.Load(),
		InternHits:            in.Hits,
		InternMisses:          in.Misses,
		InternEvictions:       in.Evictions,
		InternEntries:         in.Entries,
		InternBytes:           in.Bytes,
		HandlerPanics:         sv.nPanics.Load(),
		SessionPanics:         sess.Panics,
		FaultsInjected:        faultinject.Stats(),
		Session:               sess,
	}
}

// writeProm serializes a snapshot in the Prometheus text exposition
// format (the flat counter/gauge subset — no histograms here; latency
// distributions are the bench study's job).
func writeProm(w io.Writer, m MetricsSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("mspgemm_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)

	fmt.Fprintf(w, "# HELP mspgemm_requests_total Requests served by endpoint.\n# TYPE mspgemm_requests_total counter\n")
	fmt.Fprintf(w, "mspgemm_requests_total{endpoint=\"multiply\"} %d\n", m.MultiplyRequests)
	fmt.Fprintf(w, "mspgemm_requests_total{endpoint=\"triangle_count\"} %d\n", m.TriangleCountRequests)
	fmt.Fprintf(w, "mspgemm_requests_total{endpoint=\"bfs\"} %d\n", m.BFSRequests)

	counter("mspgemm_multiply_frames_total", "Multiply request frames decoded (a batch is many).", m.MultiplyFrames)
	counter("mspgemm_rejected_total", "Whole requests refused with 429 (admission saturated).", m.Rejected)
	counter("mspgemm_errors_total", "Non-429 error responses.", m.Errors)

	fmt.Fprintf(w, "# HELP mspgemm_panics_total Panics recovered at request boundaries.\n# TYPE mspgemm_panics_total counter\n")
	fmt.Fprintf(w, "mspgemm_panics_total{scope=\"handler\"} %d\n", m.HandlerPanics)
	fmt.Fprintf(w, "mspgemm_panics_total{scope=\"session\"} %d\n", m.SessionPanics)

	if len(m.FaultsInjected) > 0 {
		points := make([]string, 0, len(m.FaultsInjected))
		for p := range m.FaultsInjected {
			points = append(points, p)
		}
		sort.Strings(points)
		fmt.Fprintf(w, "# HELP mspgemm_faults_injected_total Fired fault-injection points (chaos runs only).\n# TYPE mspgemm_faults_injected_total counter\n")
		for _, p := range points {
			fmt.Fprintf(w, "mspgemm_faults_injected_total{point=%q} %d\n", p, m.FaultsInjected[p])
		}
	}

	fmt.Fprintf(w, "# HELP mspgemm_bytes_total Wire bytes by direction.\n# TYPE mspgemm_bytes_total counter\n")
	fmt.Fprintf(w, "mspgemm_bytes_total{direction=\"in\"} %d\n", m.BytesIn)
	fmt.Fprintf(w, "mspgemm_bytes_total{direction=\"out\"} %d\n", m.BytesOut)

	gauge("mspgemm_queued_frames", "Batch frames currently queued.", float64(m.QueuedFrames))

	fmt.Fprintf(w, "# HELP mspgemm_operand_intern_total Operand intern table events.\n# TYPE mspgemm_operand_intern_total counter\n")
	fmt.Fprintf(w, "mspgemm_operand_intern_total{event=\"hit\"} %d\n", m.InternHits)
	fmt.Fprintf(w, "mspgemm_operand_intern_total{event=\"miss\"} %d\n", m.InternMisses)
	fmt.Fprintf(w, "mspgemm_operand_intern_total{event=\"eviction\"} %d\n", m.InternEvictions)
	gauge("mspgemm_operand_intern_entries", "Resident interned operands.", float64(m.InternEntries))
	gauge("mspgemm_operand_intern_bytes", "Bytes retained by interned operand copies.", float64(m.InternBytes))

	c := m.Session.Cache
	fmt.Fprintf(w, "# HELP mspgemm_plan_cache_total Plan cache events.\n# TYPE mspgemm_plan_cache_total counter\n")
	fmt.Fprintf(w, "mspgemm_plan_cache_total{event=\"hit\"} %d\n", c.Hits)
	fmt.Fprintf(w, "mspgemm_plan_cache_total{event=\"miss\"} %d\n", c.Misses)
	fmt.Fprintf(w, "mspgemm_plan_cache_total{event=\"eviction\"} %d\n", c.Evictions)
	fmt.Fprintf(w, "mspgemm_plan_cache_total{event=\"record\"} %d\n", c.Records)
	fmt.Fprintf(w, "mspgemm_plan_cache_total{event=\"replan\"} %d\n", c.Replans)
	gauge("mspgemm_plan_cache_entries", "Resident cached plans.", float64(c.Entries))

	cal := m.Session.Calibration
	fmt.Fprintf(w, "# HELP mspgemm_calibration_info Session cost-model calibration (constant labels).\n# TYPE mspgemm_calibration_info gauge\n")
	fmt.Fprintf(w, "mspgemm_calibration_info{mode=%q,source=%q} 1\n", cal.Mode, cal.Source)
	gauge("mspgemm_calibration_ns_per_unit", "Measured nanoseconds per model cost unit.", cal.NsPerUnit)
	gauge("mspgemm_calibration_cost_per_worker", "Admission cost unit per granted worker.", float64(cal.CostPerWorker))

	a := m.Session.Arbiter
	gauge("mspgemm_arbiter_budget_workers", "Total session worker budget.", float64(a.Budget))
	gauge("mspgemm_arbiter_granted_workers", "Workers currently granted.", float64(a.Granted))
	gauge("mspgemm_arbiter_inflight", "Requests holding admission slots.", float64(a.Inflight))
	gauge("mspgemm_arbiter_waiting", "Requests queued for admission.", float64(a.Waiting))
	counter("mspgemm_arbiter_admitted_total", "Admission grants ever issued.", a.Admitted)
	counter("mspgemm_arbiter_steals_total", "Workers stolen to fund new admissions.", a.Steals)
	counter("mspgemm_arbiter_topups_total", "Workers rebalanced to running grants.", a.TopUps)
	counter("mspgemm_arbiter_rejected_total", "Non-queuing admissions refused.", a.Rejected)

	p := m.Session.DriverPool
	counter("mspgemm_driver_pool_gets_total", "Driver buffer pool fetches.", p.Gets)
	counter("mspgemm_driver_pool_misses_total", "Pool fetches that allocated.", p.Misses)
}
