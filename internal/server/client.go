package server

// Client speaks the wire protocol to a running server. The bench
// serve-load study, the cmd/mspgemm-server smoke mode, and the tests all
// drive servers through it.
//
// Requests are sent as checksummed (version-2) wire frames and responses
// are verified on decode, so corruption in either direction surfaces as a
// typed error instead of silently wrong operands. With WithRetry the
// client additionally retries transient failures — saturation (429, with
// the server's Retry-After hint), connection errors, checksum/truncation
// corruption, per-attempt timeouts — under exponential backoff with full
// jitter. Every request this package sends is a pure computation
// (multiplies, triangle counts, BFS are side-effect free), so every
// outcome that cannot be a deterministic property of the request itself is
// idempotent-safe to retry.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// StatusError is a non-saturation server refusal: an HTTP error response
// or a per-frame error frame.
type StatusError struct {
	// Code is the HTTP-style status; Message the server's text.
	Code    int
	Message string
}

// Error formats the status and message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Code, e.Message)
}

// SaturatedError is an HTTP 429 refusal: the server's admission cap is
// full. It unwraps to ErrSaturated (use errors.Is to classify) and carries
// the parsed Retry-After hint, which the retry policy honors.
type SaturatedError struct {
	// RetryAfter is the server's parsed Retry-After hint (0 when the header
	// was absent or unparseable).
	RetryAfter time.Duration
}

// Error formats the refusal with its hint.
func (e *SaturatedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%v (Retry-After: %v)", ErrSaturated, e.RetryAfter)
	}
	return ErrSaturated.Error()
}

// Unwrap makes errors.Is(err, ErrSaturated) true.
func (e *SaturatedError) Unwrap() error { return ErrSaturated }

// RetryPolicy bounds the client's retry loop. The zero value disables
// retries (one attempt, the pre-retry behavior).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 1 means no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k backs off a
	// uniformly random duration in [0, min(BaseDelay·2^k, MaxDelay)] (full
	// jitter), raised to the server's Retry-After hint when one was given.
	// 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps each backoff delay — including the Retry-After hint, so
	// a slow server cannot stall the retry loop beyond the caller's
	// patience. 0 means 2s.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; the caller's ctx
	// bounds the whole loop. 0 applies no per-attempt bound. An attempt
	// that hits its own timeout is retried (the overall ctx is the real
	// budget); an overall ctx expiry is returned as-is.
	AttemptTimeout time.Duration
}

// ClientStats are the client's monotonic retry-loop counters.
type ClientStats struct {
	// Attempts counts HTTP attempts, including first tries.
	Attempts int64
	// Retries counts attempts beyond each request's first.
	Retries int64
	// ChecksumErrors counts attempts that failed on a CRC32-C payload
	// mismatch (wire.ErrChecksum) — corruption the checksums caught.
	ChecksumErrors int64
}

// ClientOpt configures a Client (NewClient's variadic tail).
type ClientOpt func(*Client)

// WithRetry arms the client's retry loop with p. Without it the client
// makes exactly one attempt per request.
func WithRetry(p RetryPolicy) ClientOpt {
	return func(c *Client) { c.retry = p }
}

// WithMaxResponseBytes caps how many response-body bytes the client will
// read (0 or less keeps the 1 GiB default). Larger responses fail with a
// StatusError instead of ballooning client memory.
func WithMaxResponseBytes(n int64) ClientOpt {
	return func(c *Client) {
		if n > 0 {
			c.maxResp = n
		}
	}
}

// defaultMaxResponseBytes bounds response bodies when WithMaxResponseBytes
// is not given.
const defaultMaxResponseBytes = 1 << 30

// Client is a wire-protocol client for one server.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	maxResp int64

	attempts, retries, checksumErrs atomic.Int64
}

// NewClient returns a client for the server at baseURL
// ("http://host:port"). hc nil means http.DefaultClient. Options arm
// retries (WithRetry) and adjust limits; a bare NewClient(url, nil) is the
// single-attempt client earlier releases shipped.
func NewClient(baseURL string, hc *http.Client, opts ...ClientOpt) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      hc,
		maxResp: defaultMaxResponseBytes,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Stats reads the client's retry-loop counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Attempts:       c.attempts.Load(),
		Retries:        c.retries.Load(),
		ChecksumErrors: c.checksumErrs.Load(),
	}
}

// readCapped reads a response body up to the client's cap, failing on
// larger bodies before buffering them.
func (c *Client) readCapped(body io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(body, c.maxResp+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > c.maxResp {
		return nil, &StatusError{Code: http.StatusInsufficientStorage,
			Message: fmt.Sprintf("response exceeds client cap of %d bytes", c.maxResp)}
	}
	return data, nil
}

// post sends a frame-sequence body and returns the response body, mapping
// HTTP 429 onto *SaturatedError (which unwraps to ErrSaturated) and other
// non-200s onto StatusError.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wireContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := c.readCapped(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, &SaturatedError{RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	case resp.StatusCode != http.StatusOK:
		return nil, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// parseRetryAfter parses the delay-seconds form of a Retry-After header
// (the form the server sends; the HTTP-date form is not used here).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseInt(strings.TrimSpace(h), 10, 32)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryable classifies an attempt's failure: (hint, true) for transient,
// idempotent-safe outcomes the retry loop may retry — saturation (with the
// server's Retry-After as hint), transport errors, checksum or truncation
// corruption in either direction, 5xx responses — and false for
// deterministic outcomes (validation errors, unsupported requests,
// cancellation) that would fail identically again.
func retryable(err error) (hint time.Duration, ok bool) {
	var se *SaturatedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	if errors.Is(err, ErrSaturated) {
		return 0, true
	}
	if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrTruncated) {
		// The *response* was corrupted in flight and the decoder caught it.
		return 0, true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	var st *StatusError
	if errors.As(err, &st) {
		switch {
		case st.Code >= 500:
			// Includes panics the server recovered into a 500: multiplies
			// are pure, so re-running one is always safe — and a panic
			// caused by the request itself will deterministically exhaust
			// MaxAttempts rather than loop forever.
			return 0, true
		case st.Code == http.StatusBadRequest &&
			(strings.Contains(st.Message, "checksum mismatch") || strings.Contains(st.Message, "truncated frame")):
			// The *request* arrived corrupted and the server's decoder
			// caught it; the retry re-encodes a clean body.
			return 0, true
		}
		return 0, false
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// Connection-level failure (refused, reset, broken transport).
		return 0, true
	}
	return 0, false
}

// backoff sleeps the full-jitter exponential delay for the given attempt
// index, raised to the server's hint (both capped by MaxDelay), or returns
// early with ctx's error.
func (c *Client) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	base := c.retry.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	ceil := maxd
	if attempt < 30 {
		if d := base << attempt; d < ceil {
			ceil = d
		}
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if hint > maxd {
		hint = maxd
	}
	if d < hint {
		d = hint
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs one logical request through the retry loop: each attempt encodes
// a fresh body (mkBody), posts it, and decodes the response; transient
// failures back off and retry up to the policy's budget under ctx. The
// body is re-encoded per attempt because a retry must never resend bytes a
// previous attempt may have had corrupted in flight.
func (c *Client) do(ctx context.Context, path string, mkBody func() []byte, decode func([]byte) error) error {
	maxAttempts := c.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		actx, cancel := ctx, context.CancelFunc(nil)
		if c.retry.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		}
		var data []byte
		data, err = c.post(actx, path, mkBody())
		if err == nil {
			err = decode(data)
		}
		attemptTimedOut := cancel != nil && actx.Err() != nil && ctx.Err() == nil
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, wire.ErrChecksum) {
			c.checksumErrs.Add(1)
		}
		if ctx.Err() != nil {
			return err // the overall budget is spent; no point classifying
		}
		hint, ok := retryable(err)
		if attemptTimedOut {
			hint, ok = 0, true // per-attempt timeout under a healthy overall ctx
		}
		if !ok || attempt == maxAttempts-1 {
			return err
		}
		if c.backoff(ctx, attempt, hint) != nil {
			return err
		}
	}
	return err
}

// frameError maps a FrameError payload onto the client error vocabulary.
func frameError(payload []byte) error {
	ef, err := wire.DecodeErrorFrame(payload)
	if err != nil {
		return err
	}
	if ef.Code == http.StatusTooManyRequests {
		return fmt.Errorf("%w: %s", ErrSaturated, ef.Message)
	}
	return &StatusError{Code: int(ef.Code), Message: ef.Message}
}

// Multiply runs one masked multiply on the server.
func (c *Client) Multiply(ctx context.Context, req *wire.MultiplyReq) (*wire.MultiplyRes, error) {
	var out *wire.MultiplyRes
	err := c.do(ctx, "/v1/multiply",
		func() []byte { return wire.WithChecksum(req.Encode(nil)) },
		func(data []byte) error {
			t, payload, _, err := wire.DecodeFrame(data)
			if err != nil {
				return err
			}
			switch t {
			case wire.FrameMultiplyRes:
				out, err = wire.DecodeMultiplyRes(payload)
				return err
			case wire.FrameError:
				return frameError(payload)
			default:
				return fmt.Errorf("server: unexpected frame type %d", t)
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MultiplyOutcome is one frame's result within a batch response.
type MultiplyOutcome struct {
	// Res is the response, nil when Err is set.
	Res *wire.MultiplyRes
	// Err is the per-frame error (ErrSaturated via errors.Is, or a
	// StatusError).
	Err error
}

// MultiplyBatch runs several multiplies in one request. Outcomes come
// back in request order; a whole-batch refusal (429, malformed body)
// returns a request-level error instead. The retry loop retries
// whole-request failures only; per-frame errors inside a delivered batch
// are outcomes, not transport faults.
func (c *Client) MultiplyBatch(ctx context.Context, reqs []*wire.MultiplyReq) ([]MultiplyOutcome, error) {
	var out []MultiplyOutcome
	err := c.do(ctx, "/v1/multiply",
		func() []byte {
			var body []byte
			for _, r := range reqs {
				body = r.Encode(body)
			}
			return wire.WithChecksum(body)
		},
		func(data []byte) error {
			out = make([]MultiplyOutcome, 0, len(reqs))
			for len(data) > 0 {
				t, payload, rest, err := wire.DecodeFrame(data)
				if err != nil {
					return err
				}
				switch t {
				case wire.FrameMultiplyRes:
					res, err := wire.DecodeMultiplyRes(payload)
					out = append(out, MultiplyOutcome{Res: res, Err: err})
				case wire.FrameError:
					out = append(out, MultiplyOutcome{Err: frameError(payload)})
				default:
					return fmt.Errorf("server: unexpected frame type %d", t)
				}
				data = rest
			}
			if len(out) != len(reqs) {
				return fmt.Errorf("server: %d response frames for %d requests", len(out), len(reqs))
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TriangleCount runs a triangle count on the server.
func (c *Client) TriangleCount(ctx context.Context, req *wire.TriangleCountReq) (*wire.TriangleCountRes, error) {
	var out *wire.TriangleCountRes
	err := c.do(ctx, "/v1/triangle-count",
		func() []byte { return wire.WithChecksum(req.Encode(nil)) },
		func(data []byte) error {
			t, payload, _, err := wire.DecodeFrame(data)
			if err != nil {
				return err
			}
			switch t {
			case wire.FrameTriangleCountRes:
				out, err = wire.DecodeTriangleCountRes(payload)
				return err
			case wire.FrameError:
				return frameError(payload)
			default:
				return fmt.Errorf("server: unexpected frame type %d", t)
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BFS runs a single-source BFS on the server.
func (c *Client) BFS(ctx context.Context, req *wire.BFSReq) (*wire.BFSRes, error) {
	var out *wire.BFSRes
	err := c.do(ctx, "/v1/bfs",
		func() []byte { return wire.WithChecksum(req.Encode(nil)) },
		func(data []byte) error {
			t, payload, _, err := wire.DecodeFrame(data)
			if err != nil {
				return err
			}
			switch t {
			case wire.FrameBFSRes:
				out, err = wire.DecodeBFSRes(payload)
				return err
			case wire.FrameError:
				return frameError(payload)
			default:
				return fmt.Errorf("server: unexpected frame type %d", t)
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// get fetches a non-wire endpoint (no retries: callers poll these).
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := c.readCapped(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Metrics fetches the JSON metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	data, err := c.get(ctx, "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: metrics JSON: %w", err)
	}
	return &m, nil
}

// MetricsText fetches the Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	data, err := c.get(ctx, "/metrics")
	return string(data), err
}

// Healthz probes the health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}
