package server

// Client speaks the wire protocol to a running server. The bench
// serve-load study, the cmd/mspgemm-server smoke mode, and the tests all
// drive servers through it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/wire"
)

// StatusError is a non-saturation server refusal: an HTTP error response
// or a per-frame error frame.
type StatusError struct {
	// Code is the HTTP-style status; Message the server's text.
	Code    int
	Message string
}

// Error formats the status and message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Code, e.Message)
}

// Client is a wire-protocol client for one server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at baseURL
// ("http://host:port"). hc nil means http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// post sends a frame-sequence body and returns the response body, mapping
// HTTP 429 onto ErrSaturated and other non-200s onto StatusError.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wireContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, fmt.Errorf("%w (Retry-After: %ss)", ErrSaturated, resp.Header.Get("Retry-After"))
	case resp.StatusCode != http.StatusOK:
		return nil, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// frameError maps a FrameError payload onto the client error vocabulary.
func frameError(payload []byte) error {
	ef, err := wire.DecodeErrorFrame(payload)
	if err != nil {
		return err
	}
	if ef.Code == http.StatusTooManyRequests {
		return fmt.Errorf("%w: %s", ErrSaturated, ef.Message)
	}
	return &StatusError{Code: int(ef.Code), Message: ef.Message}
}

// Multiply runs one masked multiply on the server.
func (c *Client) Multiply(ctx context.Context, req *wire.MultiplyReq) (*wire.MultiplyRes, error) {
	data, err := c.post(ctx, "/v1/multiply", req.Encode(nil))
	if err != nil {
		return nil, err
	}
	t, payload, _, err := wire.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.FrameMultiplyRes:
		return wire.DecodeMultiplyRes(payload)
	case wire.FrameError:
		return nil, frameError(payload)
	default:
		return nil, fmt.Errorf("server: unexpected frame type %d", t)
	}
}

// MultiplyOutcome is one frame's result within a batch response.
type MultiplyOutcome struct {
	// Res is the response, nil when Err is set.
	Res *wire.MultiplyRes
	// Err is the per-frame error (ErrSaturated via errors.Is, or a
	// StatusError).
	Err error
}

// MultiplyBatch runs several multiplies in one request. Outcomes come
// back in request order; a whole-batch refusal (429, malformed body)
// returns a request-level error instead.
func (c *Client) MultiplyBatch(ctx context.Context, reqs []*wire.MultiplyReq) ([]MultiplyOutcome, error) {
	var body []byte
	for _, r := range reqs {
		body = r.Encode(body)
	}
	data, err := c.post(ctx, "/v1/multiply", body)
	if err != nil {
		return nil, err
	}
	out := make([]MultiplyOutcome, 0, len(reqs))
	for len(data) > 0 {
		t, payload, rest, err := wire.DecodeFrame(data)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.FrameMultiplyRes:
			res, err := wire.DecodeMultiplyRes(payload)
			out = append(out, MultiplyOutcome{Res: res, Err: err})
		case wire.FrameError:
			out = append(out, MultiplyOutcome{Err: frameError(payload)})
		default:
			return nil, fmt.Errorf("server: unexpected frame type %d", t)
		}
		data = rest
	}
	if len(out) != len(reqs) {
		return nil, fmt.Errorf("server: %d response frames for %d requests", len(out), len(reqs))
	}
	return out, nil
}

// TriangleCount runs a triangle count on the server.
func (c *Client) TriangleCount(ctx context.Context, req *wire.TriangleCountReq) (*wire.TriangleCountRes, error) {
	data, err := c.post(ctx, "/v1/triangle-count", req.Encode(nil))
	if err != nil {
		return nil, err
	}
	t, payload, _, err := wire.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.FrameTriangleCountRes:
		return wire.DecodeTriangleCountRes(payload)
	case wire.FrameError:
		return nil, frameError(payload)
	default:
		return nil, fmt.Errorf("server: unexpected frame type %d", t)
	}
}

// BFS runs a single-source BFS on the server.
func (c *Client) BFS(ctx context.Context, req *wire.BFSReq) (*wire.BFSRes, error) {
	data, err := c.post(ctx, "/v1/bfs", req.Encode(nil))
	if err != nil {
		return nil, err
	}
	t, payload, _, err := wire.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.FrameBFSRes:
		return wire.DecodeBFSRes(payload)
	case wire.FrameError:
		return nil, frameError(payload)
	default:
		return nil, fmt.Errorf("server: unexpected frame type %d", t)
	}
}

// get fetches a non-wire endpoint.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Metrics fetches the JSON metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	data, err := c.get(ctx, "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: metrics JSON: %w", err)
	}
	return &m, nil
}

// MetricsText fetches the Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	data, err := c.get(ctx, "/metrics")
	return string(data), err
}

// Healthz probes the health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}
