package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/wire"
	"repro/masked"
)

// startLocal boots an ephemeral server and registers its drain on cleanup.
func startLocal(t *testing.T, cfg Config) (*Local, *Client) {
	t.Helper()
	l, err := StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := l.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return l, NewClient(l.URL, nil)
}

// TestMultiplyRoundTrip drives a multiply through the full network path
// and checks the result is bit-identical to the in-process computation,
// for the default semiring, a named semiring, and the complemented mask.
func TestMultiplyRoundTrip(t *testing.T) {
	l, c := startLocal(t, Config{Threads: 2})
	ctx := context.Background()
	g := masked.ErdosRenyi(256, 8, 11)
	gp := g.Pattern()
	ref := masked.NewSession(masked.WithThreads(2))

	cases := []struct {
		name string
		req  *wire.MultiplyReq
		opts []masked.Op
	}{
		{"arithmetic", &wire.MultiplyReq{M: gp, A: g, B: g}, nil},
		{"plus-pair", &wire.MultiplyReq{Semiring: "plus-pair", M: gp, A: g, B: g},
			[]masked.Op{masked.WithAccumulate(masked.PlusPair())}},
		{"complement", &wire.MultiplyReq{Flags: wire.FlagComplement, M: gp, A: g, B: g},
			[]masked.Op{masked.WithComplement()}},
	}
	for _, tc := range cases {
		res, err := c.Multiply(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := ref.Multiply(ctx, gp, g, g, tc.opts...)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("%s: wire result differs from in-process result", tc.name)
		}
	}
	if m := l.Server.Metrics(); m.MultiplyRequests != int64(len(cases)) {
		t.Fatalf("multiply counter %d, want %d", m.MultiplyRequests, len(cases))
	}
}

// TestMultiplyBatch checks batch bodies answer per-frame in order, with
// errors inline as error frames.
func TestMultiplyBatch(t *testing.T) {
	_, c := startLocal(t, Config{Threads: 2})
	ctx := context.Background()
	g := masked.ErdosRenyi(128, 6, 3)
	h := masked.ErdosRenyi(96, 6, 4)
	gp, hp := g.Pattern(), h.Pattern()

	out, err := c.MultiplyBatch(ctx, []*wire.MultiplyReq{
		{M: gp, A: g, B: g},
		{Semiring: "nope", M: hp, A: h, B: h},
		{M: hp, A: h, B: h},
	})
	// The unknown semiring fails the whole batch at validation (400) —
	// decode errors are request-scoped, not frame-scoped.
	if err == nil {
		t.Fatal("unknown semiring in batch: no error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("unknown semiring: %v, want StatusError 400", err)
	}

	out, err = c.MultiplyBatch(ctx, []*wire.MultiplyReq{
		{M: gp, A: g, B: g},
		{M: hp, A: h, B: h},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := masked.NewSession(masked.WithThreads(2))
	for i, operand := range []*masked.Matrix{g, h} {
		if out[i].Err != nil {
			t.Fatalf("frame %d: %v", i, out[i].Err)
		}
		want, _ := ref.Multiply(ctx, operand.Pattern(), operand, operand)
		if !matrix.Equal(out[i].Res.C, want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("frame %d: result differs", i)
		}
	}
}

// TestInternRestoresIdentity checks that repeating the same operand bytes
// hits the intern table and, through restored identity, the plan cache.
func TestInternRestoresIdentity(t *testing.T) {
	l, c := startLocal(t, Config{Threads: 2})
	ctx := context.Background()
	g := masked.ErdosRenyi(128, 6, 9)
	req := &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}
	for i := 0; i < 3; i++ {
		if _, err := c.Multiply(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	m := l.Server.Metrics()
	// The first request interns the mask and the matrix (A and B carry the
	// same bytes, so B hits A's fresh entry); the next two hit all three.
	if m.InternMisses != 2 || m.InternHits != 7 {
		t.Fatalf("intern hits/misses %d/%d, want 7/2", m.InternHits, m.InternMisses)
	}
	if m.Session.Cache.Hits < 2 {
		t.Fatalf("plan cache hits %d: interned operands should reuse plans", m.Session.Cache.Hits)
	}
}

// TestValidationRejects checks malformed bodies and invalid operands get
// 400s, and oversized bodies 413 — never a panic or a kernel crash.
func TestValidationRejects(t *testing.T) {
	_, c := startLocal(t, Config{Threads: 1, MaxBodyBytes: 1 << 20})
	ctx := context.Background()

	garbage := func(body []byte) *StatusError {
		t.Helper()
		_, err := c.post(ctx, "/v1/multiply", body)
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("want StatusError, got %v", err)
		}
		return se
	}
	if se := garbage([]byte("not a frame")); se.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", se.Code)
	}
	if se := garbage(nil); se.Code != http.StatusBadRequest {
		t.Fatalf("empty body: %d, want 400", se.Code)
	}
	if se := garbage(make([]byte, 2<<20)); se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", se.Code)
	}

	// Structurally valid frame, semantically broken CSR: out-of-range
	// column index.
	g := masked.ErdosRenyi(32, 4, 5)
	bad := &matrix.CSR[float64]{NRows: g.NRows, NCols: g.NCols,
		RowPtr: append([]matrix.Index(nil), g.RowPtr...),
		Col:    append([]matrix.Index(nil), g.Col...),
		Val:    append([]float64(nil), g.Val...)}
	bad.Col[0] = 1000
	_, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: bad, B: g})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("invalid CSR: %v, want StatusError 400", err)
	}
}

// TestSaturationReturns429 fills the admission cap and checks the server
// refuses with 429 + Retry-After rather than queuing, recovering once the
// slot frees.
func TestSaturationReturns429(t *testing.T) {
	l, c := startLocal(t, Config{Threads: 1, Inflight: 1})
	ctx := context.Background()
	g := masked.ErdosRenyi(64, 4, 2)

	// Occupy the only admission slot from the session side.
	adm, ok := l.Server.Session().TryAdmit(1)
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	_, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated multiply: %v, want ErrSaturated", err)
	}
	if _, err := c.TriangleCount(ctx, &wire.TriangleCountReq{G: g}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated triangle count: %v, want ErrSaturated", err)
	}
	if m := l.Server.Metrics(); m.Rejected < 2 {
		t.Fatalf("rejected counter %d, want >= 2", m.Rejected)
	}

	adm.Release()
	if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}); err != nil {
		t.Fatalf("multiply after release: %v", err)
	}
}

// TestAppEndpoints checks /v1/triangle-count and /v1/bfs agree with the
// in-process applications.
func TestAppEndpoints(t *testing.T) {
	_, c := startLocal(t, Config{Threads: 2})
	ctx := context.Background()
	g := masked.ErdosRenyi(256, 8, 21)
	ref := masked.NewSession(masked.WithThreads(2))

	tc, err := c.TriangleCount(ctx, &wire.TriangleCountReq{G: g})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TriangleCount(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Triangles != want.Triangles {
		t.Fatalf("triangles %d, want %d", tc.Triangles, want.Triangles)
	}

	bfs, err := c.BFS(ctx, &wire.BFSReq{Source: 0, G: g})
	if err != nil {
		t.Fatal(err)
	}
	wantBFS, err := ref.BFS(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bfs.Level) != len(wantBFS.Level) {
		t.Fatalf("level length %d, want %d", len(bfs.Level), len(wantBFS.Level))
	}
	for i := range bfs.Level {
		if bfs.Level[i] != wantBFS.Level[i] {
			t.Fatalf("level[%d] = %d, want %d", i, bfs.Level[i], wantBFS.Level[i])
		}
	}

	// Out-of-range source: 400.
	_, err = c.BFS(ctx, &wire.BFSReq{Source: 9999, G: g})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range source: %v, want StatusError 400", err)
	}
}

// TestMetricsEndpoints checks both exposition formats: the Prometheus
// text carries the metric families, the JSON snapshot parses and its
// counters move monotonically under traffic.
func TestMetricsEndpoints(t *testing.T) {
	_, c := startLocal(t, Config{Threads: 1})
	ctx := context.Background()
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	g := masked.ErdosRenyi(64, 4, 6)
	if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g}); err != nil {
		t.Fatal(err)
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.MultiplyRequests != before.MultiplyRequests+1 {
		t.Fatalf("multiply counter %d -> %d, want +1", before.MultiplyRequests, after.MultiplyRequests)
	}
	if after.BytesIn <= before.BytesIn || after.BytesOut <= before.BytesOut {
		t.Fatalf("byte counters did not move: %+v -> %+v", before, after)
	}
	if after.Session.Arbiter.Admitted <= before.Session.Arbiter.Admitted {
		t.Fatal("session arbiter counters did not move")
	}

	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mspgemm_requests_total{endpoint=\"multiply\"}",
		"mspgemm_plan_cache_total{event=\"hit\"}",
		"mspgemm_arbiter_admitted_total",
		"mspgemm_driver_pool_gets_total",
		"# TYPE mspgemm_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrains closes a server with a request in flight and checks
// the request completes, the drain returns nil, and no goroutines leak.
func TestShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		l, err := StartLocal(Config{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(l.URL, nil)
		ctx := context.Background()
		g := masked.ErdosRenyi(512, 16, 8)

		inFlight := make(chan error, 1)
		go func() {
			_, err := c.Multiply(ctx, &wire.MultiplyReq{M: g.Pattern(), A: g, B: g})
			inFlight <- err
		}()
		// Let the request reach the server before shutting down.
		time.Sleep(20 * time.Millisecond)
		if err := l.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := <-inFlight; err != nil {
			t.Errorf("in-flight request during drain: %v", err)
		}
		// Drained: new connections are refused.
		if err := c.Healthz(ctx); err == nil {
			t.Error("healthz succeeded after shutdown")
		}
	}()
	// The client keeps pooled idle connections briefly; close them.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after server shutdown: %d live, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineMapsTo504 checks a hopeless frame deadline cancels the
// multiply mid-flight and surfaces as 504.
func TestDeadlineMapsTo504(t *testing.T) {
	_, c := startLocal(t, Config{Threads: 1})
	ctx := context.Background()
	g := masked.ErdosRenyi(20000, 32, 13)
	_, err := c.Multiply(ctx, &wire.MultiplyReq{DeadlineMillis: 1, M: g.Pattern(), A: g, B: g})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ms deadline on a large multiply: %v, want StatusError 504", err)
	}
}
