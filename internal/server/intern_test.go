package server

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/matrix"
	"repro/internal/wire"
	"repro/masked"
)

// TestInternStoresCopies checks the table never retains the decoded view
// it was handed: the canonical object is a private deep copy, so recycling
// (or clobbering) the request buffer the view aliased cannot corrupt it.
func TestInternStoresCopies(t *testing.T) {
	sv := New(Config{Threads: 1})
	g := masked.ErdosRenyi(64, 4, 7)
	canon, err := sv.internMatrix(g, "A")
	if err != nil {
		t.Fatal(err)
	}
	if canon == g {
		t.Fatal("intern returned the decoded view itself; want a private copy")
	}
	// Simulate the pooled body buffer being recycled and overwritten by a
	// later request: clobber every array the view exposes.
	for i := range g.Col {
		g.Col[i] = 1 << 30
	}
	for i := range g.RowPtr {
		g.RowPtr[i] = -1
	}
	if err := validateMatrix(canon); err != nil {
		t.Fatalf("canonical operand corrupted by clobbering the source view: %v", err)
	}
}

// TestInternSurvivesPartialFrameFailure is the end-to-end regression for
// the use-after-release review finding: a frame whose mask interns (fresh
// entry) but whose A operand fails validation must not leave the table
// holding views of a body buffer the handler recycles. After buffer-churn
// traffic, a request hitting that mask entry must still compute the right
// answer.
func TestInternSurvivesPartialFrameFailure(t *testing.T) {
	l, c := startLocal(t, Config{Threads: 2})
	ctx := context.Background()
	g := masked.ErdosRenyi(128, 6, 17)
	gp := g.Pattern()

	// Frame with a valid, previously unseen mask and a semantically broken
	// A: the mask interns, then A's validation fails the request with 400.
	bad := g.Clone()
	bad.Col[0] = 100000
	_, err := c.Multiply(ctx, &wire.MultiplyReq{M: gp, A: bad, B: g})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("broken A: %v, want StatusError 400", err)
	}

	// Churn the body pool so a recycled buffer gets overwritten with other
	// operand bytes.
	for seed := uint64(0); seed < 4; seed++ {
		h := masked.ErdosRenyi(96, 5, 20+seed)
		if _, err := c.Multiply(ctx, &wire.MultiplyReq{M: h.Pattern(), A: h, B: h}); err != nil {
			t.Fatalf("churn %d: %v", seed, err)
		}
	}

	// Re-use the mask from the failed frame; the intern hit must serve an
	// intact canonical copy, bit-identical to the in-process result.
	res, err := c.Multiply(ctx, &wire.MultiplyReq{M: gp, A: g, B: g})
	if err != nil {
		t.Fatal(err)
	}
	ref := masked.NewSession(masked.WithThreads(2))
	want, err := ref.Multiply(ctx, gp, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(res.C, want, func(a, b float64) bool { return a == b }) {
		t.Fatal("result through the recycled-mask path differs from in-process")
	}
	if m := l.Server.Metrics(); m.InternBytes <= 0 {
		t.Fatalf("intern bytes gauge %d, want > 0", m.InternBytes)
	}
}

// TestInternByteBound checks the table evicts past the retained-bytes
// bound and refuses entries that alone exceed it.
func TestInternByteBound(t *testing.T) {
	mk := func(seed uint64) *matrix.Pattern {
		return masked.ErdosRenyi(64, 4, seed).Pattern()
	}
	one := patternSize(mk(0))
	tab := newInternTable(100, 3*one)
	for seed := uint64(0); seed < 8; seed++ {
		p := mk(seed)
		tab.insert(patternKey(p), p.Clone(), patternSize(p))
	}
	st := tab.stats()
	if st.Bytes > 3*one {
		t.Fatalf("retained %d bytes, bound %d", st.Bytes, 3*one)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte bound")
	}
	if st.Entries == 0 {
		t.Fatal("byte-bound eviction emptied the table")
	}

	// An operand bigger than the whole bound is served but never stored.
	big := masked.ErdosRenyi(512, 16, 9).Pattern()
	before := tab.stats()
	got := tab.insert(patternKey(big), big, patternSize(big))
	if got != big {
		t.Fatal("oversized insert did not return the caller's object")
	}
	if after := tab.stats(); after.Entries != before.Entries || after.Bytes != before.Bytes {
		t.Fatalf("oversized operand was stored: %+v -> %+v", before, after)
	}
}
