// Package grgen generates the synthetic graphs used in the paper's
// evaluation (§7): Erdős–Rényi graphs with a prescribed expected degree and
// R-MAT graphs with the Graph500 parameters (a, b, c, d) =
// (0.57, 0.19, 0.19, 0.05). All generation is deterministic given a seed so
// benchmark runs are reproducible.
package grgen

// rng is a splitmix64 pseudorandom generator: tiny state, high quality for
// this purpose, and identical sequences across platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	// Avoid the all-zeros fixed point and decorrelate small seeds.
	return &rng{state: seed*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3}
}

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n)) // modulo bias negligible for n ≪ 2^64
}
