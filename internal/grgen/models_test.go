package grgen

import (
	"testing"

	"repro/internal/matrix"
)

func symmetricNoLoops(t *testing.T, g *matrix.CSR[float64], name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	gt := matrix.Transpose(g)
	if !matrix.EqualPatterns(g.Pattern(), gt.Pattern()) {
		t.Fatalf("%s: not symmetric", name)
	}
	for i := matrix.Index(0); i < g.NRows; i++ {
		cols, _ := g.Row(i)
		for _, j := range cols {
			if j == i {
				t.Fatalf("%s: self-loop at %d", name, i)
			}
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(500, 6, 0.1, 3)
	symmetricNoLoops(t, g, "ws")
	// Expected ~ n*k directed entries (minus rewire collisions).
	if g.NNZ() < 500*4 || g.NNZ() > 500*6 {
		t.Fatalf("nnz = %d, want around %d", g.NNZ(), 500*6)
	}
	// Low beta keeps the lattice: clustering means many triangles.
	lowBeta := WattsStrogatz(300, 8, 0.0, 1)
	var triangles int64
	// quick local count: ring lattice with k=8 has C(4,2)... just assert
	// nonzero using pattern intersections along the ring.
	cols0, _ := lowBeta.Row(0)
	cols1, _ := lowBeta.Row(1)
	common := 0
	for _, a := range cols0 {
		for _, b := range cols1 {
			if a == b {
				common++
			}
		}
	}
	triangles = int64(common)
	if triangles == 0 {
		t.Fatal("beta=0 lattice must have triangles")
	}
	// Determinism.
	g2 := WattsStrogatz(500, 6, 0.1, 3)
	if !matrix.Equal(g, g2, func(a, b float64) bool { return a == b }) {
		t.Fatal("not deterministic")
	}
	// Odd k rounds down; huge k clamps.
	small := WattsStrogatz(10, 100, 0.5, 2)
	symmetricNoLoops(t, small, "ws-clamped")
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 3, 5)
	symmetricNoLoops(t, g, "ba")
	// Heavy tail: max degree far above the mean.
	maxDeg := matrix.Index(0)
	for i := matrix.Index(0); i < g.NRows; i++ {
		if d := g.RowNNZ(i); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.NNZ()) / 1000
	if float64(maxDeg) < 3*avg {
		t.Fatalf("max degree %d vs avg %.1f: no preferential-attachment skew", maxDeg, avg)
	}
	// Edge cases.
	if BarabasiAlbert(1, 3, 1).NNZ() != 0 {
		t.Fatal("n=1 has no edges")
	}
	tiny := BarabasiAlbert(3, 5, 1) // m >= n clamps to seed clique
	symmetricNoLoops(t, tiny, "ba-tiny")
	m0 := BarabasiAlbert(50, 0, 1) // m<1 coerced to 1
	symmetricNoLoops(t, m0, "ba-m0")
	if m0.NNZ() == 0 {
		t.Fatal("m coerced to 1 must add edges")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 7)
	symmetricNoLoops(t, g, "grid")
	// Interior degree 4, corner degree 2; undirected edges:
	// rows*(cols-1) + (rows-1)*cols horizontal+vertical.
	wantEdges := 5*6 + 4*7
	if g.NNZ() != 2*wantEdges {
		t.Fatalf("nnz = %d, want %d", g.NNZ(), 2*wantEdges)
	}
	if d := g.RowNNZ(0); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
	center := matrix.Index(2*7 + 3)
	if d := g.RowNNZ(center); d != 4 {
		t.Fatalf("interior degree = %d, want 4", d)
	}
	// A mesh is triangle-free (bipartite).
	one := Grid2D(1, 4)
	if one.NNZ() != 2*3 {
		t.Fatal("1-row grid is a path")
	}
}
