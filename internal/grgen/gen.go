package grgen

import (
	"repro/internal/matrix"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Graph500 R-MAT partition probabilities (§7, [13], [30]).
const (
	RMATA = 0.57
	RMATB = 0.19
	RMATC = 0.19
	RMATD = 0.05
)

// ErdosRenyi returns an n-by-n sparse 0/1 matrix where each row receives
// approximately deg uniformly random column indices (duplicates folded), the
// "fixed input sparsity d = nnz/n" model of §4.3. Self-loops are allowed;
// the matrix is not symmetrized. Deterministic in seed.
func ErdosRenyi(n Index, deg float64, seed uint64) *matrix.CSR[float64] {
	r := newRNG(seed)
	target := int64(float64(n) * deg)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for e := int64(0); e < target; e++ {
		coo.Row = append(coo.Row, Index(r.intn(int64(n))))
		coo.Col = append(coo.Col, Index(r.intn(int64(n))))
		coo.Val = append(coo.Val, 1)
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// ErdosRenyiSym returns a symmetric Erdős–Rényi graph adjacency matrix with
// no self-loops: each generated edge {u, v} is inserted in both directions.
// Average degree is approximately deg.
func ErdosRenyiSym(n Index, deg float64, seed uint64) *matrix.CSR[float64] {
	r := newRNG(seed)
	target := int64(float64(n) * deg / 2)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for e := int64(0); e < target; e++ {
		u := Index(r.intn(int64(n)))
		v := Index(r.intn(int64(n)))
		if u == v {
			continue
		}
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// RMAT generates an R-MAT graph with 2^scale vertices and approximately
// edgeFactor·2^scale undirected edges using the Graph500 parameters, as the
// paper's scaling experiments do (scale 8–20, edge factor 16). The result
// is symmetrized (each edge inserted both ways), duplicate edges are folded
// to value 1, and self-loops are removed, matching Graph500 graph
// construction.
func RMAT(scale int, edgeFactor int, seed uint64) *matrix.CSR[float64] {
	return rmat(scale, edgeFactor, seed, true)
}

// RMATDirected is RMAT without symmetrization; used when an asymmetric
// input is wanted (e.g. as a mask with structure unlike the inputs).
func RMATDirected(scale int, edgeFactor int, seed uint64) *matrix.CSR[float64] {
	return rmat(scale, edgeFactor, seed, false)
}

func rmat(scale, edgeFactor int, seed uint64, symmetric bool) *matrix.CSR[float64] {
	n := Index(1) << scale
	r := newRNG(seed)
	target := int64(edgeFactor) << scale
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for e := int64(0); e < target; e++ {
		u, v := rmatEdge(r, scale)
		if u == v {
			continue
		}
		coo.Row = append(coo.Row, u)
		coo.Col = append(coo.Col, v)
		coo.Val = append(coo.Val, 1)
		if symmetric {
			coo.Row = append(coo.Row, v)
			coo.Col = append(coo.Col, u)
			coo.Val = append(coo.Val, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// rmatEdge draws one edge by recursive quadrant descent with the Graph500
// probabilities, with the customary per-level noise to avoid exact
// self-similarity artifacts.
func rmatEdge(r *rng, scale int) (Index, Index) {
	var u, v Index
	a, b, c := RMATA, RMATB, RMATC
	for bit := scale - 1; bit >= 0; bit-- {
		p := r.float64()
		switch {
		case p < a:
			// top-left: no bits set
		case p < a+b:
			v |= 1 << uint(bit)
		case p < a+b+c:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return u, v
}

// Random01Mask returns an m-by-n pattern whose rows each contain
// approximately deg uniformly random sorted column indices: the synthetic
// masks used in the Fig. 7 density grid.
func Random01Mask(m, n Index, deg float64, seed uint64) *matrix.Pattern {
	return ErdosRenyiRect(m, n, deg, seed).Pattern()
}

// ErdosRenyiRect is ErdosRenyi for rectangular matrices.
func ErdosRenyiRect(m, n Index, deg float64, seed uint64) *matrix.CSR[float64] {
	r := newRNG(seed)
	target := int64(float64(m) * deg)
	coo := &matrix.COO[float64]{NRows: m, NCols: n}
	for e := int64(0); e < target; e++ {
		coo.Row = append(coo.Row, Index(r.intn(int64(m))))
		coo.Col = append(coo.Col, Index(r.intn(int64(n))))
		coo.Val = append(coo.Val, 1)
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}
