package grgen

import (
	"testing"

	"repro/internal/matrix"
)

func TestErdosRenyiBasics(t *testing.T) {
	const n = 1000
	const deg = 8.0
	g := ErdosRenyi(n, deg, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NRows != n || g.NCols != n {
		t.Fatal("dims")
	}
	// nnz close to n*deg (duplicates fold, so slightly below).
	got := float64(g.NNZ())
	if got < 0.9*n*deg || got > n*deg {
		t.Fatalf("nnz = %v, want in [%v, %v]", got, 0.9*n*deg, n*deg)
	}
	if !g.IsSortedRows() {
		t.Fatal("rows must be sorted")
	}
	for _, v := range g.Val {
		if v != 1 {
			t.Fatal("values must be 1")
		}
	}
}

func TestErdosRenyiDeterminism(t *testing.T) {
	a := ErdosRenyi(500, 4, 7)
	b := ErdosRenyi(500, 4, 7)
	if !matrix.Equal(a, b, func(x, y float64) bool { return x == y }) {
		t.Fatal("same seed must give same graph")
	}
	c := ErdosRenyi(500, 4, 8)
	if matrix.Equal(a, c, func(x, y float64) bool { return x == y }) {
		t.Fatal("different seeds should differ")
	}
}

func TestErdosRenyiSymProperties(t *testing.T) {
	g := ErdosRenyiSym(400, 6, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Symmetric pattern.
	gt := matrix.Transpose(g)
	if !matrix.EqualPatterns(g.Pattern(), gt.Pattern()) {
		t.Fatal("not symmetric")
	}
	// No self-loops.
	for i := matrix.Index(0); i < g.NRows; i++ {
		cols, _ := g.Row(i)
		for _, j := range cols {
			if j == i {
				t.Fatal("self-loop present")
			}
		}
	}
	avg := float64(g.NNZ()) / 400
	if avg < 4 || avg > 6.5 {
		t.Fatalf("avg degree %v out of expected band", avg)
	}
}

func TestRMATProperties(t *testing.T) {
	const scale = 9
	g := RMAT(scale, 8, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := matrix.Index(1) << scale
	if g.NRows != n {
		t.Fatalf("n = %d, want %d", g.NRows, n)
	}
	gt := matrix.Transpose(g)
	if !matrix.EqualPatterns(g.Pattern(), gt.Pattern()) {
		t.Fatal("RMAT must be symmetric")
	}
	for i := matrix.Index(0); i < n; i++ {
		cols, _ := g.Row(i)
		for _, j := range cols {
			if j == i {
				t.Fatal("self-loop")
			}
		}
	}
	// Graph500-parameter R-MAT is skewed: the max degree should far exceed
	// the average (power-law-ish head).
	maxDeg := matrix.Index(0)
	for i := matrix.Index(0); i < n; i++ {
		if d := g.RowNNZ(i); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.NNZ()) / float64(n)
	if float64(maxDeg) < 4*avg {
		t.Fatalf("max degree %d vs avg %.1f: not skewed enough for R-MAT", maxDeg, avg)
	}
	// Determinism.
	g2 := RMAT(scale, 8, 5)
	if !matrix.Equal(g, g2, func(x, y float64) bool { return x == y }) {
		t.Fatal("same seed must reproduce")
	}
}

func TestRMATDirected(t *testing.T) {
	g := RMATDirected(8, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gt := matrix.Transpose(g)
	if matrix.EqualPatterns(g.Pattern(), gt.Pattern()) {
		t.Skip("directed R-MAT happened to be symmetric (vanishingly unlikely)")
	}
}

func TestRectAndMask(t *testing.T) {
	m := ErdosRenyiRect(100, 200, 5, 2)
	if m.NRows != 100 || m.NCols != 200 {
		t.Fatal("rect dims")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := Random01Mask(50, 60, 3, 4)
	if p.NRows != 50 || p.NCols != 60 {
		t.Fatal("mask dims")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := newRNG(123)
	buckets := make([]int, 10)
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
		buckets[int(f*10)]++
	}
	for b, c := range buckets {
		if c < samples/10*8/10 || c > samples/10*12/10 {
			t.Fatalf("bucket %d count %d deviates more than 20%%", b, c)
		}
	}
	// intn range check.
	for i := 0; i < 1000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}
