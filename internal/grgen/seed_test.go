package grgen

// Seed-reproducibility audit: every generator takes an explicit seed, and
// the same seed must reproduce the identical matrix bit for bit while a
// different seed must not. Benchmarks, calibration probes and golden tests
// all lean on this contract — a generator silently mixing in global or
// time-derived state would make every "deterministic" study unrepeatable.

import (
	"testing"

	"repro/internal/matrix"
)

func TestGeneratorsSeedReproducible(t *testing.T) {
	eq := func(x, y float64) bool { return x == y }
	gens := map[string]func(seed uint64) *matrix.CSR[float64]{
		"ErdosRenyi":     func(s uint64) *matrix.CSR[float64] { return ErdosRenyi(200, 4, s) },
		"ErdosRenyiSym":  func(s uint64) *matrix.CSR[float64] { return ErdosRenyiSym(200, 4, s) },
		"ErdosRenyiRect": func(s uint64) *matrix.CSR[float64] { return ErdosRenyiRect(150, 250, 3, s) },
		"RMAT":           func(s uint64) *matrix.CSR[float64] { return RMAT(7, 8, s) },
		"RMATDirected":   func(s uint64) *matrix.CSR[float64] { return RMATDirected(7, 8, s) },
	}
	for name, gen := range gens {
		a, b := gen(42), gen(42)
		if !matrix.Equal(a, b, eq) {
			t.Errorf("%s: same seed produced different matrices", name)
		}
		if c := gen(43); matrix.Equal(a, c, eq) {
			t.Errorf("%s: different seeds produced identical matrices", name)
		}
	}

	m1, m2 := Random01Mask(150, 250, 3, 42), Random01Mask(150, 250, 3, 42)
	if !matrix.EqualPatterns(m1, m2) {
		t.Error("Random01Mask: same seed produced different patterns")
	}
	if m3 := Random01Mask(150, 250, 3, 43); matrix.EqualPatterns(m1, m3) {
		t.Error("Random01Mask: different seeds produced identical patterns")
	}
}
