package grgen

import "repro/internal/matrix"

// Additional graph models beyond §7's ER and R-MAT, used to widen the
// benchmark corpus across structural regimes the SuiteSparse collection
// covers: small-world graphs (high clustering → many triangles), scale-free
// graphs (heavy-tailed degrees via preferential attachment, but without
// R-MAT's self-similar blocking), and regular meshes (banded structure,
// perfect locality).

// WattsStrogatz generates the small-world model: a ring lattice where each
// vertex connects to its k nearest neighbors (k even), with each edge
// rewired to a uniform random endpoint with probability beta. High
// clustering at low beta yields triangle-rich graphs. Symmetric, no
// self-loops.
func WattsStrogatz(n Index, k int, beta float64, seed uint64) *matrix.CSR[float64] {
	if k >= int(n) {
		k = int(n) - 1
	}
	if k%2 == 1 {
		k--
	}
	r := newRNG(seed)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	addEdge := func(u, v Index) {
		if u == v {
			return
		}
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	for u := Index(0); u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + Index(d)) % n
			if r.float64() < beta {
				// Rewire to a uniform endpoint.
				v = Index(r.intn(int64(n)))
			}
			addEdge(u, v)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches m edges to existing vertices with probability
// proportional to their degree (implemented with the repeated-endpoints
// trick: sampling uniformly from the edge-endpoint list is
// degree-proportional). Symmetric, no self-loops.
func BarabasiAlbert(n Index, m int, seed uint64) *matrix.CSR[float64] {
	if n < 2 {
		return matrix.NewEmptyCSR[float64](n, n)
	}
	if m < 1 {
		m = 1
	}
	r := newRNG(seed)
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	// endpoints holds every edge endpoint; uniform sampling from it is
	// degree-proportional.
	endpoints := make([]Index, 0, 2*m*int(n))
	addEdge := func(u, v Index) {
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
		endpoints = append(endpoints, u, v)
	}
	// Seed clique on min(m+1, n) vertices.
	seedN := Index(m + 1)
	if seedN > n {
		seedN = n
	}
	for u := Index(0); u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			addEdge(u, v)
		}
	}
	for u := seedN; u < n; u++ {
		for e := 0; e < m; e++ {
			v := endpoints[r.intn(int64(len(endpoints)))]
			if v == u {
				continue
			}
			addEdge(u, v)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// Grid2D generates the rows×cols 4-point mesh (von Neumann neighborhood):
// a banded, perfectly load-balanced matrix — the opposite structural
// extreme from R-MAT. Symmetric, no self-loops.
func Grid2D(rows, cols Index) *matrix.CSR[float64] {
	n := rows * cols
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	id := func(i, j Index) Index { return i*cols + j }
	addEdge := func(u, v Index) {
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	for i := Index(0); i < rows; i++ {
		for j := Index(0); j < cols; j++ {
			if j+1 < cols {
				addEdge(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				addEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}
