package wire

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/masked"
)

// buildReq makes a deterministic multiply request from a generated graph.
func buildReq(scale int, seed uint64, complement bool, sr string) *MultiplyReq {
	l := matrix.Tril(grgen.RMAT(scale, 8, seed))
	r := &MultiplyReq{Semiring: sr, M: l.Pattern(), A: l, B: l}
	if complement {
		r.Flags |= FlagComplement
	}
	return r
}

// TestFrameRoundTrip checks header encode/decode and frame concatenation.
func TestFrameRoundTrip(t *testing.T) {
	r1 := buildReq(6, 1, false, "plus-pair-f64")
	r2 := buildReq(5, 2, true, "")
	buf := r1.Encode(nil)
	if len(buf)%8 != 0 {
		t.Fatalf("frame length %d not a multiple of 8", len(buf))
	}
	buf = r2.Encode(buf)

	typ, payload, rest, err := DecodeFrame(buf)
	if err != nil || typ != FrameMultiplyReq {
		t.Fatalf("frame 1: type %d err %v", typ, err)
	}
	d1, err := DecodeMultiplyReq(payload)
	if err != nil {
		t.Fatalf("decode 1: %v", err)
	}
	typ, payload, rest, err = DecodeFrame(rest)
	if err != nil || typ != FrameMultiplyReq {
		t.Fatalf("frame 2: type %d err %v", typ, err)
	}
	d2, err := DecodeMultiplyReq(payload)
	if err != nil {
		t.Fatalf("decode 2: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing %d bytes after batch", len(rest))
	}
	if d1.Flags != 0 || d2.Flags != FlagComplement {
		t.Fatalf("flags: %d %d", d1.Flags, d2.Flags)
	}
	if d1.Semiring != "plus-pair-f64" || d2.Semiring != "" {
		t.Fatalf("semirings: %q %q", d1.Semiring, d2.Semiring)
	}
	for _, pair := range []struct{ got, want *matrix.CSR[float64] }{{d1.A, r1.A}, {d2.B, r2.B}} {
		if !matrix.Equal(pair.got, pair.want, func(a, b float64) bool { return a == b }) {
			t.Fatal("decoded operand differs from encoded")
		}
	}
	if err := d1.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// TestReadFrame checks the io.Reader form, including the size limit.
func TestReadFrame(t *testing.T) {
	req := buildReq(5, 3, false, "arithmetic")
	buf := req.Encode(nil)
	typ, payload, err := ReadFrame(bytes.NewReader(buf), len(buf))
	if err != nil || typ != FrameMultiplyReq {
		t.Fatalf("ReadFrame: type %d err %v", typ, err)
	}
	if _, err := DecodeMultiplyReq(payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(buf), 8); err == nil {
		t.Fatal("ReadFrame accepted a frame over its payload limit")
	}

	// No explicit limit still enforces MaxPayloadDefault: a 16-byte header
	// claiming a ~4 GiB payload must fail before allocating it.
	huge := append([]byte(nil), buf[:headerSize]...)
	huge[8], huge[9], huge[10], huge[11] = 0xf8, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(huge), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("unlimited ReadFrame on a 4 GiB claim: %v, want ErrFrameTooLarge", err)
	}
}

// TestRoundTripBitIdentical is the wire-codec property test: multiplying
// wire-decoded operands yields bit-identical results to multiplying the
// originals in process, under both the zero-copy aligned path and the
// copying misaligned fallback.
func TestRoundTripBitIdentical(t *testing.T) {
	ctx := context.Background()
	s := masked.NewSession(masked.WithThreads(2))
	rng := rand.New(rand.NewPCG(7, 11))
	for it := 0; it < 6; it++ {
		scale := 5 + it%3
		complement := it%2 == 1
		req := buildReq(scale, rng.Uint64(), complement, "plus-pair-f64")
		buf := req.Encode(nil)

		// Aligned: payload arrays decode as views of buf.
		dec, err := decodeOne(t, buf)
		if err != nil {
			t.Fatalf("it %d: %v", it, err)
		}
		// Misaligned: shift the whole frame one byte so every array view
		// fails its alignment check and decodes through the copying path.
		shifted := append(make([]byte, 1, 1+len(buf)), buf...)
		decCopy, err := decodeOne(t, shifted[1:])
		if err != nil {
			t.Fatalf("it %d (shifted): %v", it, err)
		}

		var ops []masked.Op
		ops = append(ops, masked.WithAccumulate(masked.PlusPair()))
		if complement {
			ops = append(ops, masked.WithComplement())
		}
		want, err := s.Multiply(ctx, req.M, req.A, req.B, ops...)
		if err != nil {
			t.Fatalf("it %d: in-process multiply: %v", it, err)
		}
		for name, d := range map[string]*MultiplyReq{"aligned": dec, "copied": decCopy} {
			if err := d.Validate(); err != nil {
				t.Fatalf("it %d %s: validate: %v", it, name, err)
			}
			got, err := s.Multiply(ctx, d.M, d.A, d.B, ops...)
			if err != nil {
				t.Fatalf("it %d %s: decoded multiply: %v", it, name, err)
			}
			if !matrix.Equal(got, want, func(a, b float64) bool { return a == b }) {
				t.Fatalf("it %d %s: wire-decoded product differs from in-process product", it, name)
			}
		}
	}
}

func decodeOne(t *testing.T, buf []byte) (*MultiplyReq, error) {
	t.Helper()
	typ, payload, rest, err := DecodeFrame(buf)
	if err != nil {
		return nil, err
	}
	if typ != FrameMultiplyReq || len(rest) != 0 {
		t.Fatalf("unexpected frame shape: type %d, %d trailing", typ, len(rest))
	}
	return DecodeMultiplyReq(payload)
}

// TestResponseMessages round-trips the response frame types.
func TestResponseMessages(t *testing.T) {
	c := matrix.Tril(grgen.RMAT(5, 4, 9))
	res := &MultiplyRes{Flags: FlagCoalesced, Workers: 3, C: c}
	buf := res.Encode(nil)
	_, payload, _, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultiplyRes(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != FlagCoalesced || got.Workers != 3 {
		t.Fatalf("metadata: %+v", got)
	}
	if !matrix.Equal(got.C, c, func(a, b float64) bool { return a == b }) {
		t.Fatal("decoded C differs")
	}

	ef := &ErrorFrame{Code: 429, Message: "saturated"}
	_, payload, _, err = DecodeFrame(ef.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := DecodeErrorFrame(payload)
	if err != nil || gotE.Code != 429 || gotE.Message != "saturated" {
		t.Fatalf("error frame: %+v err %v", gotE, err)
	}

	tc := &TriangleCountRes{Triangles: 42, Flops: 1000, MaskedNanos: 5, TotalNanos: 9}
	_, payload, _, err = DecodeFrame(tc.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	gotT, err := DecodeTriangleCountRes(payload)
	if err != nil || *gotT != *tc {
		t.Fatalf("tc res: %+v err %v", gotT, err)
	}

	bfs := &BFSRes{Depth: 3, PushSteps: 2, PullSteps: 1, Level: []int32{0, 1, -1, 2}}
	_, payload, _, err = DecodeFrame(bfs.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := DecodeBFSRes(payload)
	if err != nil || gotB.Depth != 3 || len(gotB.Level) != 4 || gotB.Level[2] != -1 {
		t.Fatalf("bfs res: %+v err %v", gotB, err)
	}

	breq := &BFSReq{Source: 2, DeadlineMillis: 100, G: c}
	_, payload, _, err = DecodeFrame(breq.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	gotBR, err := DecodeBFSReq(payload)
	if err != nil || gotBR.Source != 2 || gotBR.DeadlineMillis != 100 {
		t.Fatalf("bfs req: %+v err %v", gotBR, err)
	}

	treq := &TriangleCountReq{DeadlineMillis: 7, G: c}
	_, payload, _, err = DecodeFrame(treq.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	gotTR, err := DecodeTriangleCountReq(payload)
	if err != nil || gotTR.DeadlineMillis != 7 || gotTR.G.NNZ() != c.NNZ() {
		t.Fatalf("tc req: %+v err %v", gotTR, err)
	}
}

// TestMalformedFramesError feeds structurally broken frames and asserts
// clean errors without panics or attacker-sized allocations.
func TestMalformedFramesError(t *testing.T) {
	valid := buildReq(5, 1, false, "").Encode(nil)

	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:8],
		"bad magic":    append([]byte("XXXX"), valid[4:]...),
		"bad version":  append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"truncated":    valid[:len(valid)-9],
	}
	for name, data := range cases {
		if _, _, _, err := DecodeFrame(data); err == nil {
			// A truncated *payload* may still frame-decode; the message
			// decoder must then error.
			typ, payload, _, _ := DecodeFrame(data)
			if typ == FrameMultiplyReq {
				if _, err := DecodeMultiplyReq(payload); err == nil {
					t.Errorf("%s: decoded cleanly", name)
				}
			} else {
				t.Errorf("%s: DecodeFrame accepted it", name)
			}
		}
	}

	// A frame lying about its nnz must error from the length check, not
	// allocate gigabytes: run it under an allocation budget.
	lying := append([]byte(nil), valid...)
	// Payload layout: flags u16, deadline u32, name u8 → nnz field of the
	// mask pattern sits after nrows/ncols. Corrupt the payload's pattern
	// header region wholesale instead of chasing offsets.
	for i := headerSize; i < headerSize+24 && i < len(lying); i++ {
		lying[i] = 0xFF
	}
	allocs := testing.AllocsPerRun(10, func() {
		typ, payload, _, err := DecodeFrame(lying)
		if err == nil && typ == FrameMultiplyReq {
			if _, err := DecodeMultiplyReq(payload); err == nil {
				t.Fatal("lying frame decoded cleanly")
			}
		}
	})
	if allocs > 16 {
		t.Fatalf("malformed decode allocated %v objects; want a cheap rejection", allocs)
	}
}
