package wire

// The protocol messages: one struct per frame type, with Encode appending
// a complete frame (header + payload + padding) and Decode parsing a
// payload as returned by DecodeFrame/ReadFrame.

import (
	"fmt"

	"repro/internal/matrix"
)

// Flag bits of MultiplyReq.Flags.
const (
	// FlagComplement asks for the complemented mask: C = ¬M .* (A·B).
	FlagComplement uint16 = 1 << 0
)

// Flag bits of MultiplyRes.Flags.
const (
	// FlagCoalesced reports the response was answered by coalescing onto
	// an identical concurrent request.
	FlagCoalesced uint16 = 1 << 0
)

// encodePattern writes a structure-only CSR matrix into the payload.
func encodePattern(e *enc, p *matrix.Pattern) {
	e.i32(p.NRows)
	e.i32(p.NCols)
	e.u32(uint32(p.NNZ()))
	e.i32s(p.RowPtr)
	e.i32s(p.Col)
}

// decodePattern reads a pattern, validating the structural bounds (array
// lengths against available bytes, row-pointer/ nnz agreement).
func decodePattern(d *dec) *matrix.Pattern {
	nrows, ncols := d.i32(), d.i32()
	nnz := d.u32()
	if d.err == nil && (nrows < 0 || ncols < 0) {
		d.fail("negative dimension %dx%d", nrows, ncols)
	}
	rowptr := d.i32s(int(nrows) + 1)
	col := d.i32s(int(nnz))
	if d.err != nil {
		return nil
	}
	if rowptr[nrows] != int32(nnz) {
		d.fail("row pointer/nnz mismatch: RowPtr[%d]=%d, nnz=%d", nrows, rowptr[nrows], nnz)
		return nil
	}
	return &matrix.Pattern{NRows: nrows, NCols: ncols, RowPtr: rowptr, Col: col}
}

// encodeMatrix writes a CSR float64 matrix into the payload.
func encodeMatrix(e *enc, a *matrix.CSR[float64]) {
	encodePattern(e, a.Pattern())
	e.f64s(a.Val)
}

// decodeMatrix reads a CSR float64 matrix.
func decodeMatrix(d *dec) *matrix.CSR[float64] {
	p := decodePattern(d)
	if p == nil {
		return nil
	}
	val := d.f64s(p.NNZ())
	if d.err != nil {
		return nil
	}
	return &matrix.CSR[float64]{NRows: p.NRows, NCols: p.NCols, RowPtr: p.RowPtr, Col: p.Col, Val: val}
}

// MultiplyReq is one masked multiply over the wire:
// C = M .* (A·B), or the complement form under FlagComplement.
type MultiplyReq struct {
	// Flags carries the request flag bits (FlagComplement).
	Flags uint16
	// DeadlineMillis bounds the request's execution time in milliseconds
	// (0 = the server default). The server maps it onto a context
	// deadline, cancelling the multiply cooperatively mid-flight. Frames
	// concatenated into one batch body share a single context whose
	// deadline is the LARGEST requested across the batch — a frame may
	// run longer than its own field asks. Clients that need strict
	// per-frame deadlines send those frames as separate requests.
	DeadlineMillis uint32
	// Semiring names the accumulation semiring ("arithmetic" when empty);
	// see masked.SemiringByName for the accepted names.
	Semiring string
	// M is the mask pattern; A and B the operands.
	M *matrix.Pattern
	// A and B are the product operands.
	A, B *matrix.CSR[float64]
}

// Encode appends the request as a complete frame to dst.
func (r *MultiplyReq) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameMultiplyReq)
	e := &enc{buf: dst, base: off + headerSize}
	e.u16(r.Flags)
	e.u32(r.DeadlineMillis)
	e.bytesU8(r.Semiring)
	encodePattern(e, r.M)
	encodeMatrix(e, r.A)
	encodeMatrix(e, r.B)
	return finishFrame(e.buf, off)
}

// DecodeMultiplyReq parses a FrameMultiplyReq payload. The decoded
// matrices may alias payload; see the package comment.
func DecodeMultiplyReq(payload []byte) (*MultiplyReq, error) {
	d := &dec{p: payload}
	r := &MultiplyReq{Flags: d.u16(), DeadlineMillis: d.u32(), Semiring: d.bytesU8()}
	r.M = decodePattern(d)
	r.A = decodeMatrix(d)
	r.B = decodeMatrix(d)
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// Validate runs the full semantic checks a server must apply to untrusted
// operands before handing them to the kernels: CSR invariants on all
// three, compatible shapes, and sorted duplicate-free rows (the mask
// probes and the heap kernels rely on row order). O(nnz); trusted callers
// may skip it.
func (r *MultiplyReq) Validate() error {
	if r.M == nil || r.A == nil || r.B == nil {
		return fmt.Errorf("wire: multiply request with nil operand")
	}
	if err := r.M.Validate(); err != nil {
		return fmt.Errorf("wire: mask: %w", err)
	}
	if err := r.A.Validate(); err != nil {
		return fmt.Errorf("wire: A: %w", err)
	}
	if err := r.B.Validate(); err != nil {
		return fmt.Errorf("wire: B: %w", err)
	}
	if r.A.NCols != r.B.NRows || r.M.NRows != r.A.NRows || r.M.NCols != r.B.NCols {
		return fmt.Errorf("wire: incompatible shapes: M %dx%d, A %dx%d, B %dx%d",
			r.M.NRows, r.M.NCols, r.A.NRows, r.A.NCols, r.B.NRows, r.B.NCols)
	}
	if !r.M.IsSortedRows() || !r.A.IsSortedRows() || !r.B.IsSortedRows() {
		return fmt.Errorf("wire: operand rows must be sorted and duplicate-free")
	}
	return nil
}

// MultiplyRes is the result of a MultiplyReq.
type MultiplyRes struct {
	// Flags carries the response flag bits (FlagCoalesced).
	Flags uint16
	// Workers is the arbitrated worker share the computation started with.
	Workers uint16
	// C is the masked product.
	C *matrix.CSR[float64]
}

// Encode appends the response as a complete frame to dst.
func (r *MultiplyRes) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameMultiplyRes)
	e := &enc{buf: dst, base: off + headerSize}
	e.u16(r.Flags)
	e.u16(r.Workers)
	encodeMatrix(e, r.C)
	return finishFrame(e.buf, off)
}

// DecodeMultiplyRes parses a FrameMultiplyRes payload.
func DecodeMultiplyRes(payload []byte) (*MultiplyRes, error) {
	d := &dec{p: payload}
	r := &MultiplyRes{Flags: d.u16(), Workers: d.u16()}
	r.C = decodeMatrix(d)
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// ErrorFrame is the error response to any request frame.
type ErrorFrame struct {
	// Code is an HTTP-style status code (429 saturated, 400 bad request,
	// 504 deadline exceeded, 500 execution failure).
	Code uint16
	// Message is the human-readable error.
	Message string
}

// Encode appends the error as a complete frame to dst.
func (r *ErrorFrame) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameError)
	e := &enc{buf: dst, base: off + headerSize}
	e.u16(r.Code)
	msg := r.Message
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	e.u16(uint16(len(msg)))
	e.buf = append(e.buf, msg...)
	return finishFrame(e.buf, off)
}

// DecodeErrorFrame parses a FrameError payload.
func DecodeErrorFrame(payload []byte) (*ErrorFrame, error) {
	d := &dec{p: payload}
	r := &ErrorFrame{Code: d.u16()}
	n := int(d.u16())
	if !d.need(n) {
		return nil, d.err
	}
	r.Message = string(payload[d.off : d.off+n])
	return r, nil
}

// TriangleCountReq asks for the triangle count of an undirected graph
// (symmetric adjacency, no self-loops).
type TriangleCountReq struct {
	// DeadlineMillis bounds execution time (0 = server default).
	DeadlineMillis uint32
	// G is the graph adjacency matrix.
	G *matrix.CSR[float64]
}

// Encode appends the request as a complete frame to dst.
func (r *TriangleCountReq) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameTriangleCountReq)
	e := &enc{buf: dst, base: off + headerSize}
	e.u32(r.DeadlineMillis)
	encodeMatrix(e, r.G)
	return finishFrame(e.buf, off)
}

// DecodeTriangleCountReq parses a FrameTriangleCountReq payload.
func DecodeTriangleCountReq(payload []byte) (*TriangleCountReq, error) {
	d := &dec{p: payload}
	r := &TriangleCountReq{DeadlineMillis: d.u32()}
	r.G = decodeMatrix(d)
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// TriangleCountRes reports a triangle count.
type TriangleCountRes struct {
	// Triangles is the triangle count; Flops the work metric flops(L·L).
	Triangles, Flops int64
	// MaskedNanos is time inside the masked SpGEMM; TotalNanos end to end
	// on the server (excluding wire codec and transport).
	MaskedNanos, TotalNanos int64
}

// Encode appends the response as a complete frame to dst.
func (r *TriangleCountRes) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameTriangleCountRes)
	e := &enc{buf: dst, base: off + headerSize}
	e.i64(r.Triangles)
	e.i64(r.Flops)
	e.i64(r.MaskedNanos)
	e.i64(r.TotalNanos)
	return finishFrame(e.buf, off)
}

// DecodeTriangleCountRes parses a FrameTriangleCountRes payload.
func DecodeTriangleCountRes(payload []byte) (*TriangleCountRes, error) {
	d := &dec{p: payload}
	r := &TriangleCountRes{Triangles: d.i64(), Flops: d.i64(), MaskedNanos: d.i64(), TotalNanos: d.i64()}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// BFSReq asks for a single-source breadth-first search.
type BFSReq struct {
	// Source is the start vertex.
	Source matrix.Index
	// DeadlineMillis bounds execution time (0 = server default).
	DeadlineMillis uint32
	// G is the graph adjacency matrix (directed edges point
	// source→target).
	G *matrix.CSR[float64]
}

// Encode appends the request as a complete frame to dst.
func (r *BFSReq) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameBFSReq)
	e := &enc{buf: dst, base: off + headerSize}
	e.i32(r.Source)
	e.u32(r.DeadlineMillis)
	encodeMatrix(e, r.G)
	return finishFrame(e.buf, off)
}

// DecodeBFSReq parses a FrameBFSReq payload.
func DecodeBFSReq(payload []byte) (*BFSReq, error) {
	d := &dec{p: payload}
	r := &BFSReq{Source: d.i32(), DeadlineMillis: d.u32()}
	r.G = decodeMatrix(d)
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// BFSRes reports a BFS traversal.
type BFSRes struct {
	// Depth is the number of frontier expansions; PushSteps and PullSteps
	// count the direction decisions.
	Depth, PushSteps, PullSteps int32
	// Level[v] is the BFS depth of vertex v, -1 if unreachable.
	Level []int32
}

// Encode appends the response as a complete frame to dst.
func (r *BFSRes) Encode(dst []byte) []byte {
	dst, off := beginFrame(dst, FrameBFSRes)
	e := &enc{buf: dst, base: off + headerSize}
	e.i32(r.Depth)
	e.i32(r.PushSteps)
	e.i32(r.PullSteps)
	e.i32(int32(len(r.Level)))
	e.i32s(r.Level)
	return finishFrame(e.buf, off)
}

// DecodeBFSRes parses a FrameBFSRes payload.
func DecodeBFSRes(payload []byte) (*BFSRes, error) {
	d := &dec{p: payload}
	r := &BFSRes{Depth: d.i32(), PushSteps: d.i32(), PullSteps: d.i32()}
	n := d.i32()
	r.Level = d.i32s(int(n))
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}
