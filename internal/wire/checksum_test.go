package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/matrix"
)

// TestChecksumRoundTrip checks WithChecksum upgrades every frame of a
// batch to version 2 and the decoders verify and strip it transparently.
func TestChecksumRoundTrip(t *testing.T) {
	r1 := buildReq(6, 1, false, "plus-pair-f64")
	r2 := buildReq(5, 2, true, "")
	buf := WithChecksum(r2.Encode(r1.Encode(nil)))

	typ, payload, rest, err := DecodeFrame(buf)
	if err != nil || typ != FrameMultiplyReq {
		t.Fatalf("frame 1: type %d err %v", typ, err)
	}
	d1, err := DecodeMultiplyReq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(d1.A, r1.A, func(a, b float64) bool { return a == b }) {
		t.Fatal("checksummed frame decoded to different operand")
	}
	if _, _, rest, err = DecodeFrame(rest); err != nil || len(rest) != 0 {
		t.Fatalf("frame 2: err %v, %d trailing bytes", err, len(rest))
	}

	// The io.Reader form verifies too.
	if _, _, err := ReadFrame(bytes.NewReader(buf), len(buf)); err != nil {
		t.Fatalf("ReadFrame on checksummed frame: %v", err)
	}
}

// TestChecksumDetectsBitFlip flips single bits across the frame and checks
// every payload flip is caught as ErrChecksum (header flips are caught by
// the structural checks instead).
func TestChecksumDetectsBitFlip(t *testing.T) {
	req := buildReq(5, 3, false, "arithmetic")
	clean := WithChecksum(req.Encode(nil))
	n := int(binary.LittleEndian.Uint32(clean[8:]))
	for _, off := range []int{headerSize, headerSize + 1, headerSize + n/2, headerSize + n - 1} {
		buf := append([]byte(nil), clean...)
		buf[off] ^= 0x10
		if _, _, _, err := DecodeFrame(buf); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err %v, want ErrChecksum", off, err)
		}
		if _, _, err := ReadFrame(bytes.NewReader(buf), len(buf)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("ReadFrame flip at %d: err %v, want ErrChecksum", off, err)
		}
	}
	// A version-1 frame with the same flipped payload still decodes: the
	// flip is silent without checksums, which is the point of having them.
	buf := append([]byte(nil), clean...)
	buf[4] = Version
	binary.LittleEndian.PutUint32(buf[12:], 0)
	buf[headerSize+n/2] ^= 0x10
	if _, _, _, err := DecodeFrame(buf); err != nil {
		t.Fatalf("version-1 decode of flipped payload: %v", err)
	}
}

// TestChecksumVersionCompat checks plain version-1 frames keep decoding
// unchanged and unknown versions are rejected.
func TestChecksumVersionCompat(t *testing.T) {
	req := buildReq(4, 4, false, "")
	buf := req.Encode(nil)
	if buf[4] != Version {
		t.Fatalf("plain encode version %d, want %d", buf[4], Version)
	}
	if _, _, _, err := DecodeFrame(buf); err != nil {
		t.Fatalf("version-1 frame: %v", err)
	}
	buf[4] = 3
	if _, _, _, err := DecodeFrame(buf); err == nil {
		t.Fatal("version 3 accepted")
	}
}

// TestInjectedWireFaults checks the two transport fault points: a bit flip
// fires after checksumming (so CRC32-C catches it) and a truncation breaks
// the frame length.
func TestInjectedWireFaults(t *testing.T) {
	req := buildReq(4, 5, false, "")

	r := faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointWireBitflip, Every: 1, Limit: 1})
	faultinject.Set(r)
	flipped := WithChecksum(req.Encode(nil))
	faultinject.Set(nil)
	if _, _, _, err := DecodeFrame(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("injected bit flip: err %v, want ErrChecksum", err)
	}

	r = faultinject.New(1)
	r.Add(faultinject.Rule{Point: faultinject.PointWireTruncate, Every: 1, Limit: 1})
	faultinject.Set(r)
	short := WithChecksum(req.Encode(nil))
	faultinject.Set(nil)
	if _, _, _, err := DecodeFrame(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("injected truncation: err %v, want ErrTruncated", err)
	}

	// Disabled registry: WithChecksum output stays clean.
	if _, _, _, err := DecodeFrame(WithChecksum(req.Encode(nil))); err != nil {
		t.Fatalf("unfaulted checksummed frame: %v", err)
	}
}
