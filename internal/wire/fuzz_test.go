package wire

import (
	"testing"

	"repro/internal/grgen"
	"repro/internal/matrix"
)

// FuzzDecodeFrame asserts the decoder's safety contract on arbitrary
// bytes: every frame either decodes into a structurally consistent
// message or returns an error — never a panic, an index out of range, or
// an allocation sized by a lying length field (every array length is
// checked against the bytes actually present before any slice is made).
func FuzzDecodeFrame(f *testing.F) {
	l := matrix.Tril(grgen.RMAT(5, 4, 1))
	req := &MultiplyReq{Semiring: "plus-pair-f64", M: l.Pattern(), A: l, B: l}
	f.Add(req.Encode(nil))
	f.Add((&MultiplyRes{Workers: 2, C: l}).Encode(nil))
	f.Add((&TriangleCountReq{G: l}).Encode(nil))
	f.Add((&BFSReq{Source: 1, G: l}).Encode(nil))
	f.Add((&BFSRes{Depth: 1, Level: []int32{0, -1}}).Encode(nil))
	f.Add((&ErrorFrame{Code: 500, Message: "boom"}).Encode(nil))
	f.Add(WithChecksum(req.Encode(nil)))
	f.Add(WithChecksum((&TriangleCountReq{G: l}).Encode(nil)))
	flipped := WithChecksum((&BFSReq{Source: 1, G: l}).Encode(nil))
	flipped[headerSize+4] ^= 0x40 // checksummed frame whose payload lies
	f.Add(flipped)
	f.Add([]byte("MSPW"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the work per input: a fuzzer-grown input is at most a few
		// frames deep before it either errors or ends.
		for i := 0; i < 16 && len(data) > 0; i++ {
			typ, payload, rest, err := DecodeFrame(data)
			if err != nil {
				return
			}
			switch typ {
			case FrameMultiplyReq:
				if r, err := DecodeMultiplyReq(payload); err == nil {
					// Validate must classify the decoded operands without
					// panicking, whatever the fuzzer built.
					_ = r.Validate()
				}
			case FrameMultiplyRes:
				if r, err := DecodeMultiplyRes(payload); err == nil && r.C != nil {
					_ = r.C.Validate()
				}
			case FrameError:
				_, _ = DecodeErrorFrame(payload)
			case FrameTriangleCountReq:
				if r, err := DecodeTriangleCountReq(payload); err == nil && r.G != nil {
					_ = r.G.Validate()
				}
			case FrameTriangleCountRes:
				_, _ = DecodeTriangleCountRes(payload)
			case FrameBFSReq:
				if r, err := DecodeBFSReq(payload); err == nil && r.G != nil {
					_ = r.G.Validate()
				}
			case FrameBFSRes:
				_, _ = DecodeBFSRes(payload)
			}
			data = rest
		}
	})
}
