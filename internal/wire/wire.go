// Package wire is the binary wire protocol of the network serving
// subsystem: a compact, length-prefixed frame format for CSR operands,
// masks and results that cmd/mspgemm-server speaks over HTTP bodies and
// the future 2D-partitioned mode will exchange boundary rows with.
//
// # Frame format
//
// A frame is a 16-byte header followed by a payload padded to a multiple
// of 8 bytes. All integers are little-endian:
//
//	offset  size  field
//	0       4     magic "MSPW"
//	4       1     version (1 = plain, 2 = checksummed)
//	5       1     frame type (FrameMultiplyReq, ...)
//	6       2     flags (reserved, must be zero)
//	8       4     payload length in bytes (unpadded)
//	12      4     version 1: reserved (zero); version 2: CRC32-C of payload
//	16      -     payload, padded with zeros to a multiple of 8
//
// Frames are self-delimiting, so a batch is simply frames concatenated;
// DecodeFrame returns the remainder after each frame for exactly that
// loop.
//
// # Integrity checksums (version 2)
//
// Version 2 frames carry a CRC32-C (Castagnoli) checksum of the unpadded
// payload in the header word that version 1 reserves. Encoders produce
// version 1 by default; WithChecksum upgrades an encoded frame sequence to
// version 2 in place. Decoders accept both versions — old frames still
// decode — and verify version 2 checksums before returning the payload,
// failing with ErrChecksum on a mismatch, so a bit flip anywhere between
// encoder and decoder is detected instead of silently corrupting operands
// that pass structural validation. The server and server.Client checksum
// every frame they send by default.
//
// # Payload layout and zero-copy decoding
//
// Matrices travel as their CSR arrays: 32-bit row offsets and column
// indices (exactly matrix.Index, the engine's in-memory index type) and
// float64 values. Within a payload every array is preceded by padding to
// an 8-byte boundary *relative to the payload start*, and the header is 16
// bytes, so when a frame sequence starts at an 8-byte-aligned address —
// any Go byte-slice allocation — every array lands aligned in memory. On
// little-endian hosts the decoder then returns the matrix slices as views
// of the input buffer (an unsafe reinterpretation, no copy and no
// allocation); on big-endian hosts or misaligned input it falls back to an
// element-wise copy. Decoded matrices therefore alias the request buffer:
// treat them as immutable, and keep the buffer alive while they are in use
// (the server keeps body buffers pooled per request for this reason).
//
// Every decoder validates structural bounds — claimed lengths against the
// bytes actually present — before touching or allocating anything, so a
// malformed or truncated frame costs an error, never a panic or an
// attacker-sized allocation. Semantic CSR validation (monotone row
// pointers, in-range column indices) is a separate explicit step
// (ValidateMultiplyReq and friends) because it is O(nnz) and trusted
// callers may skip it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultinject"
)

// FrameType identifies what a frame's payload encodes.
type FrameType uint8

// Frame types of protocol version 1.
const (
	// FrameError carries an error code and message (responses only).
	FrameError FrameType = 1
	// FrameMultiplyReq is one masked multiply request: mask, A, B,
	// semiring, flags, deadline.
	FrameMultiplyReq FrameType = 2
	// FrameMultiplyRes is a multiply response: the result matrix plus
	// serving metadata (coalesced, worker share).
	FrameMultiplyRes FrameType = 3
	// FrameTriangleCountReq is a triangle-count request: the graph.
	FrameTriangleCountReq FrameType = 4
	// FrameTriangleCountRes is a triangle-count response: counts and
	// timings.
	FrameTriangleCountRes FrameType = 5
	// FrameBFSReq is a BFS request: the graph and a source vertex.
	FrameBFSReq FrameType = 6
	// FrameBFSRes is a BFS response: the level array and step counts.
	FrameBFSRes FrameType = 7
)

// Version is the protocol version plain frames carry; encoders produce it
// by default and decoders accept it alongside VersionChecksum.
const Version = 1

// VersionChecksum is the protocol version of checksummed frames: the
// reserved header word carries a CRC32-C of the unpadded payload, verified
// on decode. Produced by WithChecksum.
const VersionChecksum = 2

// headerSize is the fixed frame header length.
const headerSize = 16

// magic identifies mspgemm wire frames.
var magic = [4]byte{'M', 'S', 'P', 'W'}

// ErrTruncated reports a frame or payload shorter than its own length
// fields claim.
var ErrTruncated = errors.New("wire: truncated frame")

// ErrFrameTooLarge reports a frame whose payload exceeds the caller's
// limit.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrChecksum reports a version-2 frame whose payload does not match its
// CRC32-C header checksum: the frame was corrupted between encoder and
// decoder. Pure requests are safe to retry on it, and server.Client does.
var ErrChecksum = errors.New("wire: payload checksum mismatch")

// crcTable is the Castagnoli (CRC32-C) polynomial table frame checksums
// use — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pad8 returns n rounded up to a multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// beginFrame appends a frame header for type t to dst and returns the
// extended slice plus the header's offset, for finishFrame to patch the
// payload length once the payload is written.
func beginFrame(dst []byte, t FrameType) ([]byte, int) {
	off := len(dst)
	var h [headerSize]byte
	copy(h[:4], magic[:])
	h[4] = Version
	h[5] = byte(t)
	return append(dst, h[:]...), off
}

// finishFrame patches the payload length of the frame begun at off and
// pads the payload to an 8-byte multiple.
func finishFrame(dst []byte, off int) []byte {
	n := len(dst) - off - headerSize
	binary.LittleEndian.PutUint32(dst[off+8:], uint32(n))
	for len(dst)-off-headerSize < pad8(n) {
		dst = append(dst, 0)
	}
	return dst
}

// DecodeFrame splits one frame off the front of data: it returns the
// frame type, the payload (a sub-slice of data, not a copy), and the
// remaining bytes after the frame. Callers loop over a concatenated batch
// by feeding rest back in until it is empty.
func DecodeFrame(data []byte) (t FrameType, payload, rest []byte, err error) {
	if len(data) < headerSize {
		return 0, nil, nil, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(data), headerSize)
	}
	if [4]byte(data[:4]) != magic {
		return 0, nil, nil, fmt.Errorf("wire: bad magic %q", data[:4])
	}
	if data[4] != Version && data[4] != VersionChecksum {
		return 0, nil, nil, fmt.Errorf("wire: unsupported version %d (want %d or %d)", data[4], Version, VersionChecksum)
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	end := headerSize + pad8(n)
	if n < 0 || end > len(data) {
		return 0, nil, nil, fmt.Errorf("%w: payload claims %d bytes, %d available", ErrTruncated, n, len(data)-headerSize)
	}
	payload = data[headerSize : headerSize+n]
	if data[4] == VersionChecksum {
		want := binary.LittleEndian.Uint32(data[12:])
		if got := crc32.Checksum(payload, crcTable); got != want {
			return 0, nil, nil, fmt.Errorf("%w: CRC32-C %08x, header claims %08x", ErrChecksum, got, want)
		}
	}
	return FrameType(data[5]), payload, data[end:], nil
}

// WithChecksum upgrades an encoded frame sequence to checksummed version-2
// frames in place: each frame's version byte becomes VersionChecksum and
// its reserved header word the CRC32-C of its unpadded payload. Callers
// apply it to a complete Encode output just before handing the bytes to
// the transport; decoders verify automatically. It panics on bytes that
// are not a well-formed frame sequence (callers checksum their own encode
// output, never untrusted input).
//
// The wire.truncate and wire.bitflip fault-injection points live here —
// after checksumming, so an injected bit flip is exactly the in-flight
// corruption CRC32-C exists to catch.
func WithChecksum(frames []byte) []byte {
	for off := 0; off < len(frames); {
		rest := frames[off:]
		if len(rest) < headerSize || [4]byte(rest[:4]) != magic {
			panic("wire: WithChecksum on a malformed frame sequence")
		}
		n := int(binary.LittleEndian.Uint32(rest[8:]))
		end := headerSize + pad8(n)
		if n < 0 || end > len(rest) {
			panic("wire: WithChecksum on a truncated frame sequence")
		}
		rest[4] = VersionChecksum
		binary.LittleEndian.PutUint32(rest[12:], crc32.Checksum(rest[headerSize:headerSize+n], crcTable))
		off += end
	}
	return injectTransportFaults(frames)
}

// injectTransportFaults applies the armed wire corruption faults to an
// outgoing frame sequence: a deterministic single-bit flip in the middle
// of the first non-empty payload (caught by the checksum) or a one-byte
// truncation of the tail (caught by the frame length). No-ops — one atomic
// load each — when fault injection is disabled.
func injectTransportFaults(frames []byte) []byte {
	if faultinject.Fire(faultinject.PointWireBitflip) {
		for off := 0; off < len(frames); {
			n := int(binary.LittleEndian.Uint32(frames[off+8:]))
			if n > 0 {
				frames[off+headerSize+n/2] ^= 1 << 3
				break
			}
			off += headerSize + pad8(n)
		}
	}
	if faultinject.Fire(faultinject.PointWireTruncate) && len(frames) > 0 {
		frames = frames[:len(frames)-1]
	}
	return frames
}

// MaxPayloadDefault is the payload limit ReadFrame applies when the
// caller passes none. It matches the server's default body cap.
const MaxPayloadDefault = 256 << 20

// ReadFrame reads one frame from r, allocating at most maxPayload bytes
// for it (maxPayload <= 0 applies MaxPayloadDefault — the limit is always
// enforced, because the payload length is attacker-controlled and read
// from a 16-byte header before any payload bytes arrive). It returns the
// frame type and payload, io.EOF cleanly at end of stream, and
// ErrFrameTooLarge when the claimed payload exceeds the limit — before
// allocating it.
func ReadFrame(r io.Reader, maxPayload int) (FrameType, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = MaxPayloadDefault
	}
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return 0, nil, err
	}
	if [4]byte(h[:4]) != magic {
		return 0, nil, fmt.Errorf("wire: bad magic %q", h[:4])
	}
	if h[4] != Version && h[4] != VersionChecksum {
		return 0, nil, fmt.Errorf("wire: unsupported version %d (want %d or %d)", h[4], Version, VersionChecksum)
	}
	n := int(binary.LittleEndian.Uint32(h[8:]))
	// n < 0 happens on 32-bit hosts, where int(uint32) can wrap negative.
	if n < 0 || n > maxPayload {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes, limit %d",
			ErrFrameTooLarge, uint32(n), maxPayload)
	}
	buf := make([]byte, pad8(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if h[4] == VersionChecksum {
		want := binary.LittleEndian.Uint32(h[12:])
		if got := crc32.Checksum(buf[:n], crcTable); got != want {
			return 0, nil, fmt.Errorf("%w: CRC32-C %08x, header claims %08x", ErrChecksum, got, want)
		}
	}
	return FrameType(h[5]), buf[:n], nil
}
