package wire

// Low-level payload cursors. The encoder writes scalars and arrays with
// explicit padding so every array sits at an 8-byte boundary relative to
// the payload start; the decoder walks the same layout, validating every
// length against the bytes actually present before slicing or allocating,
// and reinterprets aligned little-endian array bytes in place instead of
// copying them.

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/matrix"
)

// hostLittleEndian reports whether the running host stores integers
// little-endian — the precondition for returning wire arrays as in-place
// views. (amd64/arm64/riscv64, i.e. everything this repository targets,
// are little-endian; the copying fallback keeps big-endian hosts correct.)
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// enc appends payload fields to a buffer. base is the payload's start
// offset within buf, so alignment padding is computed relative to the
// payload, not the allocation.
type enc struct {
	buf  []byte
	base int
}

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }

// pad aligns the payload cursor to an 8-byte boundary.
func (e *enc) pad() {
	for (len(e.buf)-e.base)%8 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// bytesU8 writes a length-prefixed short byte string (≤ 255 bytes).
func (e *enc) bytesU8(s string) {
	if len(s) > math.MaxUint8 {
		s = s[:math.MaxUint8]
	}
	e.u8(uint8(len(s)))
	e.buf = append(e.buf, s...)
}

// i32s writes an aligned int32 array (no length prefix; the message's
// scalar section carries the count).
func (e *enc) i32s(v []matrix.Index) {
	e.pad()
	if hostLittleEndian && len(v) > 0 {
		e.buf = append(e.buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))...)
		return
	}
	for _, x := range v {
		e.i32(x)
	}
}

// f64s writes an aligned float64 array.
func (e *enc) f64s(v []float64) {
	e.pad()
	if hostLittleEndian && len(v) > 0 {
		e.buf = append(e.buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))...)
		return
	}
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(x))
	}
}

// dec walks a payload. Every read validates the remaining length first;
// the first violation parks an error and turns every later read into a
// no-op returning zero values, so decoders can be written straight-line
// and check d.err once.
type dec struct {
	p   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// need reports whether n more bytes are available, recording a truncation
// error when they are not.
func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.p)-d.off < n {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.p))
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.p[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) i64() int64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return int64(v)
}

// pad skips to the next 8-byte payload boundary.
func (d *dec) pad() {
	if n := (8 - d.off%8) % 8; n > 0 && d.need(n) {
		d.off += n
	}
}

// bytesU8 reads a length-prefixed short byte string.
func (d *dec) bytesU8() string {
	n := int(d.u8())
	if !d.need(n) {
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

// i32s reads an aligned int32 array of n elements: a view of the payload
// when the host is little-endian and the bytes are 4-aligned in memory, a
// copy otherwise. The byte count is validated before any allocation, so a
// lying header cannot force an oversized make.
func (d *dec) i32s(n int) []matrix.Index {
	d.pad()
	if n < 0 {
		d.fail("negative array length %d", n)
		return nil
	}
	if !d.need(4 * n) {
		return nil
	}
	b := d.p[d.off : d.off+4*n]
	d.off += 4 * n
	if n == 0 {
		return []matrix.Index{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*matrix.Index)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]matrix.Index, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// f64s reads an aligned float64 array of n elements, as a view when
// alignment and endianness allow.
func (d *dec) f64s(n int) []float64 {
	d.pad()
	if n < 0 {
		d.fail("negative array length %d", n)
		return nil
	}
	if !d.need(8 * n) {
		return nil
	}
	b := d.p[d.off : d.off+8*n]
	d.off += 8 * n
	if n == 0 {
		return []float64{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
