// Package hostid identifies the host hardware a measurement was taken on.
// Two consumers share it: the bench harness stamps its JSON output with the
// CPU model so two BENCH_PR*.json files can be compared knowing whether the
// hardware moved under the numbers, and the planner's calibration pass keys
// its per-host coefficient cache on the same identity so probes taken on one
// machine are never replayed on another.
package hostid

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// CPUModel reads the host CPU model name where the platform exposes one
// (/proc/cpuinfo on Linux); empty elsewhere.
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// Key returns a stable, filename-safe identity for (this host, this process
// shape): a short hash of the CPU model, GOMAXPROCS, GOARCH and the Go
// release. Calibration constants fitted under one key are only valid under
// the same key — a different core count changes parallel-dispatch overhead,
// a different CPU changes every per-unit cost.
func Key() string {
	id := fmt.Sprintf("%s|gomaxprocs=%d|%s|%s",
		CPUModel(), runtime.GOMAXPROCS(0), runtime.GOARCH, runtime.Version())
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:8])
}
