// Package planner turns the paper's §8 variant-selection guidance into an
// explicit, executable cost model. Given the mask and input operands of a
// masked SpGEMM call it gathers cheap statistics (nnz, densities, the flop
// upper bound the one-phase driver already computes) and emits a Plan: the
// algorithm variant to run, the phase, and — when the row space has
// distinctly different local density profiles, as power-law graphs do — a
// *mixed* plan that partitions the rows into blocks and assigns each block
// its own algorithm family.
//
// The selection rules encode the paper's empirical findings:
//
//	Inner        mask much sparser than the product's work (§4.3, §8.1)
//	Heap/HeapDot inputs much sparser than the mask (§5.5, §8.1)
//	MSA/Hash     the comparable-density middle (§8.1; Hash when the work is
//	             tiny relative to the columns, so MSA's dense scratch is not
//	             amortized)
//	1P           unless the one-phase allocation bound is memory-tight (§6),
//	             which only happens under complemented masks
//
// Analysis costs O(nnz(A) + nrows) — negligible next to the multiply — and
// Cache memoizes plans across the iterative sweeps of BFS, BC and MCL.
package planner

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Stats are the cheap per-call statistics the cost model consumes.
type Stats struct {
	// NRows, NCols are the output (= mask) dimensions.
	NRows, NCols Index
	// NNZM, NNZA, NNZB are the operand entry counts.
	NNZM, NNZA, NNZB int64
	// Flops is flops(A·B) = Σ_{A_ik≠0} nnz(B_k*), the §8 work metric and
	// the exact upper bound on unmasked accumulator traffic.
	Flops int64
	// Bound1P is the one-phase allocation bound summed over rows: nnz(M)
	// for normal masks, Σ min(ncols, flops_i) under complement.
	Bound1P int64
	// AvgDegB is nnz(B)/nrows(B); AvgColDegB is nnz(B)/ncols(B).
	AvgDegB, AvgColDegB float64
	// MaskRunRows counts mask rows that are contiguous runs [lo,hi) — the
	// shape the dense-run direct-index representation exploits — and is 0
	// when the operands are unsorted (the O(1) run check needs sorted
	// rows). MaskNonEmptyRows counts the rows with any entry at all,
	// regardless of sortedness.
	MaskRunRows, MaskNonEmptyRows int64
	// MaxRowCost is the largest single-row cost (flops + mask entries + 1)
	// seen by the analysis sweep — the scheduling skew diagnostic.
	MaxRowCost int64
	// MaskRepPin is the caller-pinned mask representation (RepAuto when the
	// planner selects per block).
	MaskRepPin core.MaskRep
	// SchedPin is the caller-pinned row-scheduling policy (SchedAuto when
	// the skew verdict decides); Schedule() and Explain honor it.
	SchedPin core.Sched
	// Sorted reports whether all operand rows are sorted, the precondition
	// of the MCA/Heap/HeapDot/Inner kernels.
	Sorted bool
	// Complement is the mask mode of the call.
	Complement bool
}

// Block is one row range of a plan with its chosen algorithm and the local
// statistics that drove the decision.
type Block struct {
	// Lo, Hi delimit the row range [Lo, Hi).
	Lo, Hi Index
	// Alg is the algorithm family assigned to the range.
	Alg core.Algorithm
	// Rep is the mask representation the range's kernels probe with, chosen
	// from the block's local mask-density statistics (or the caller's pin).
	Rep core.MaskRep
	// MaskNNZ, ANNZ and Flops are the range's mask entries, A entries and
	// flop bound.
	MaskNNZ, ANNZ, Flops int64
	// RunRows and NonEmptyRows are the range's contiguous-run and non-empty
	// mask row counts (the dense-representation signal).
	RunRows, NonEmptyRows int64
	// PredictedNs is the cost model's serial-kernel-time estimate for the
	// block in nanoseconds (Model.NsPerUnit × the block's cost units); 0 on
	// degenerate plans. The drivers' measured per-block times are compared
	// against it by the feedback loop.
	PredictedNs float64
	// Reason is a one-line human explanation of the choice.
	Reason string
}

// Plan is the planner's output: a phase, one or more row blocks with their
// algorithms, and the statistics behind them. Execute runs it.
type Plan struct {
	// Stats are the call statistics the plan was derived from.
	Stats Stats
	// Phase applies to every block (the drivers are phase-global).
	Phase core.Phase
	// Blocks tile [0, NRows) in order.
	Blocks []Block
	// Costs is the per-row cost profile the analysis sweep gathered (flops
	// plus mask entries per row, as a prefix sum), reused by the drivers for
	// cost-balanced scheduling instead of being discarded after aggregation.
	// Nil for degenerate operands; Execute attaches it to the options when
	// the caller did not supply a profile.
	Costs *core.RowCosts
	// CacheHit reports that the plan was reused from a Cache rather than
	// re-analyzed.
	CacheHit bool
	// Ops names the operator path the kernels will take for the semiring
	// this plan executes with: core.OpsInlined when the semiring carries a
	// named operator type (monomorphized loops, Add/Mul inlined) or
	// core.OpsFuncPtr for custom semirings (indirect calls through the
	// Semiring func fields). Empty when the executing semiring is not yet
	// known (plans are cached per mask/operand shape, not per semiring);
	// the masked session stamps it on the copy it hands out.
	Ops string
	// PredictedNs is the cost model's end-to-end serial-kernel-time estimate
	// in nanoseconds (the sum of the blocks' PredictedNs); 0 on degenerate
	// plans. The feedback loop divides measured execution time by it.
	PredictedNs float64
	// Exec carries the observed timing of one execution, stamped by the
	// masked session on the copy it hands out (like Ops) — nil on cached
	// plans, which are shared across callers and stay immutable.
	Exec *ExecStats
	// fb is the prediction-error feedback state shared by every copy of a
	// cached plan (shallow copies carry the pointer); nil on plans that
	// never entered a Cache. See Cache.Record.
	fb *feedback
}

// Schedule names the row schedule the drivers will run this plan with: the
// caller's pin when one was given (SchedEqualRow / SchedCost), otherwise
// the SchedAuto verdict — "cost-balanced" when the analysis found the
// per-row cost profile heavily skewed (one row over ~8x the mean),
// "equal-row" otherwise. Matches schedPrefix's resolution in core.
func (p *Plan) Schedule() string {
	switch p.Stats.SchedPin {
	case core.SchedEqualRow:
		return "equal-row"
	case core.SchedCost:
		if p.Costs != nil {
			return "cost-balanced"
		}
		return "equal-row"
	}
	if p.Costs != nil && p.Costs.Skewed {
		return "cost-balanced"
	}
	return "equal-row"
}

// Mixed reports whether the plan assigns different algorithms to different
// row blocks.
func (p *Plan) Mixed() bool {
	for _, b := range p.Blocks[1:] {
		if b.Alg != p.Blocks[0].Alg {
			return true
		}
	}
	return false
}

// Variant returns the plan's single (algorithm, phase) variant. For mixed
// plans it returns the variant of the block covering the most flops.
func (p *Plan) Variant() core.Variant {
	best, bestFlops := core.MSA, int64(-1)
	for _, b := range p.Blocks {
		if b.Flops+b.MaskNNZ > bestFlops {
			bestFlops, best = b.Flops+b.MaskNNZ, b.Alg
		}
	}
	return core.Variant{Alg: best, Phase: p.Phase}
}

// ExecBlocks converts the plan's blocks to the core execution form.
func (p *Plan) ExecBlocks() []core.ExecBlock {
	out := make([]core.ExecBlock, len(p.Blocks))
	for i, b := range p.Blocks {
		out[i] = core.ExecBlock{Lo: b.Lo, Hi: b.Hi, Alg: b.Alg, Rep: b.Rep}
	}
	return out
}

// Explain renders the plan and the statistics behind it as a multi-line
// human-readable report.
func (p *Plan) Explain() string {
	var sb strings.Builder
	kind := "uniform"
	if p.Mixed() {
		kind = "mixed"
	}
	from := "analyzed"
	if p.CacheHit {
		from = "cached"
	}
	fmt.Fprintf(&sb, "plan: %s, %d block(s), phase %s, %s", kind, len(p.Blocks), p.Phase, from)
	if p.Ops != "" {
		fmt.Fprintf(&sb, ", ops=%s", p.Ops)
	}
	sb.WriteString("\n")
	s := p.Stats
	mode := "normal"
	if s.Complement {
		mode = "complemented"
	}
	fmt.Fprintf(&sb, "stats: %dx%d %s mask nnz=%d, nnz(A)=%d, nnz(B)=%d, flops(A·B)=%d, 1P bound=%d\n",
		s.NRows, s.NCols, mode, s.NNZM, s.NNZA, s.NNZB, s.Flops, s.Bound1P)
	if p.Costs != nil {
		mean := int64(1)
		if s.NRows > 0 {
			mean = p.Costs.Total() / int64(s.NRows)
		}
		fmt.Fprintf(&sb, "sched: %s (max row cost %d, mean %d)\n", p.Schedule(), s.MaxRowCost, mean)
	}
	if s.MaskNonEmptyRows > 0 {
		fmt.Fprintf(&sb, "mask: %d non-empty rows, %d contiguous runs", s.MaskNonEmptyRows, s.MaskRunRows)
		if s.MaskRepPin != core.RepAuto {
			fmt.Fprintf(&sb, ", representation pinned to %s", s.MaskRepPin)
		}
		sb.WriteString("\n")
	}
	if e := p.Exec; e != nil {
		fmt.Fprintf(&sb, "feedback: predicted %s, actual %s", fmtNs(p.PredictedNs), fmtNs(float64(e.ActualNs)))
		if p.PredictedNs > 0 {
			fmt.Fprintf(&sb, " (ratio %.2f)", float64(e.ActualNs)/p.PredictedNs)
		}
		fmt.Fprintf(&sb, ", ewma %.2f over %d exec(s)\n", e.Feedback.EWMA, e.Feedback.Execs)
	}
	for i, b := range p.Blocks {
		fmt.Fprintf(&sb, "  rows [%d,%d) → %s mask=%s sched=%s: %s (mask nnz=%d, flops=%d)",
			b.Lo, b.Hi, b.Alg, b.Rep, p.Schedule(), b.Reason, b.MaskNNZ, b.Flops)
		if e := p.Exec; e != nil && i < len(e.BlockNs) {
			fmt.Fprintf(&sb, " [predicted %s, actual %s]", fmtNs(b.PredictedNs), fmtNs(float64(e.BlockNs[i])))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtNs renders a nanosecond quantity as a duration string ("1.234µs");
// sub-nanosecond noise is truncated so the output is stable.
func fmtNs(ns float64) string {
	if ns < 0 {
		ns = 0
	}
	return time.Duration(int64(ns)).String()
}

// Cost-model constants. The pull/heap margins reproduce the ~8× density
// ratios of the hybrid kernel's Fig. 7 thresholds; see decide().
const (
	// pullMargin: Inner must beat the best push-style estimate by this
	// factor (its strided column accesses are pessimistic per unit cost);
	// matches the hybrid kernel's empirically-tuned ~8× Fig. 7 threshold.
	pullMargin = 8
	// heapMaskDiscountShift: heap's mask term is a sequential merge, ~4×
	// cheaper per entry than the scatter/gather of MSA/Hash.
	heapMaskDiscountShift = 2
	// heapDotMaxMaskFraction: within the heap regime, full mask inspection
	// (NInspect=∞, HeapDot) only pays when the mask is sparse enough that
	// inspections actually skip pushes — mask rows under 1/64 of the
	// columns. Denser masks run NInspect=1 (Heap).
	heapDotMaxMaskFraction = 64
	// hashWorkFraction: prefer Hash over MSA when the call's total work is
	// under ncols/hashWorkFraction — MSA's O(ncols) dense scratch per
	// worker would dominate (tiny frontiers in BFS/BC sweeps).
	hashWorkFraction = 4
	// phaseMemFactor: switch to two-phase when the 1P allocation bound
	// exceeds phaseMemFactor × the operand footprint (§6 "memory tight").
	phaseMemFactor = 4
	// analysisBlocks is the target number of row blocks the analysis
	// aggregates over; minBlockRows floors their size so per-block stats
	// stay meaningful.
	analysisBlocks = 64
	minBlockRows   = 1024
	// maxPlanBlocks caps a mixed plan's block count after coalescing; a
	// profile more fragmented than this collapses to the global winner.
	maxPlanBlocks = 32
)

// NeedsSortedRows reports whether any block of the plan runs a kernel with
// the sorted-rows precondition: MCA, Heap, HeapDot and Inner always, plus
// any block using the dense-run representation (its O(1) contiguity check is
// only exact on sorted mask rows).
func (p *Plan) NeedsSortedRows() bool {
	for _, b := range p.Blocks {
		if b.Alg != core.MSA && b.Alg != core.Hash {
			return true
		}
		if b.Rep == core.RepDense {
			return true
		}
	}
	return false
}

// Analyze derives a Plan for C = M .* (A·B) from operand structure alone
// (values never matter to selection, so all operands are Patterns — use
// CSR.Pattern() for free views). opt contributes only Complement. Selection
// runs under the hand-tuned DefaultModel; use AnalyzeModel (or a calibrated
// Cache) for host-fitted coefficients.
func Analyze(m, a, b *matrix.Pattern, opt core.Options) *Plan {
	return AnalyzeModel(m, a, b, opt, nil)
}

// AnalyzeModel is Analyze selecting with the given cost-model coefficients
// (nil means DefaultModel, which reproduces the hand-tuned constants
// exactly). The model also prices the emitted plan: Plan.PredictedNs and
// each block's PredictedNs carry the model's serial-time estimate, the
// baseline the feedback loop compares measured execution times against.
func AnalyzeModel(m, a, b *matrix.Pattern, opt core.Options, mdl *Model) *Plan {
	if mdl == nil {
		mdl = DefaultModel()
	}
	nrows, ncols := m.NRows, m.NCols
	if nrows == 0 || len(m.RowPtr) == 0 || len(a.RowPtr) == 0 || len(b.RowPtr) == 0 {
		// Degenerate (possibly zero-value) operands: nothing to analyze, and
		// the scans below must not index empty row pointers.
		return &Plan{
			Stats:  Stats{NRows: nrows, NCols: ncols, Complement: opt.Complement, MaskRepPin: opt.MaskRep, SchedPin: opt.Sched, Sorted: true},
			Phase:  core.OnePhase,
			Blocks: []Block{{Lo: 0, Hi: nrows, Alg: core.MSA, Rep: core.RepCSR, Reason: "empty operands"}},
		}
	}
	st := Stats{
		NRows: nrows, NCols: ncols,
		NNZM: int64(m.NNZ()), NNZA: int64(a.NNZ()), NNZB: int64(b.NNZ()),
		Complement: opt.Complement,
		MaskRepPin: opt.MaskRep,
		SchedPin:   opt.Sched,
		Sorted:     sortedRows(m, opt.Workers()) && sortedRows(a, opt.Workers()) && sortedRows(b, opt.Workers()),
	}
	if b.NRows > 0 {
		st.AvgDegB = float64(st.NNZB) / float64(b.NRows)
	}
	if b.NCols > 0 {
		st.AvgColDegB = float64(st.NNZB) / float64(b.NCols)
	}

	// Partition the rows into analysis blocks and gather per-block mask
	// sizes, flop bounds and mask-shape counts (contiguous runs, non-empty
	// rows — the dense-representation signal) in one parallel O(nnz(A))
	// sweep. The 1P complement bound rides along.
	blockRows := int64(minBlockRows)
	if want := (int64(nrows) + analysisBlocks - 1) / analysisBlocks; want > blockRows {
		blockRows = want
	}
	nblocks := int((int64(nrows) + blockRows - 1) / blockRows)
	if nblocks < 1 {
		nblocks = 1
	}
	flopsPerBlock := make([]int64, nblocks)
	boundPerBlock := make([]int64, nblocks)
	runPerBlock := make([]int64, nblocks)
	nonEmptyPerBlock := make([]int64, nblocks)
	maxCostPerBlock := make([]int64, nblocks)
	// rowCosts[i] holds row i's cost during the sweep and becomes the
	// scheduling cost prefix after the scan below; the +1 slot carries the
	// total. This is the per-row flops data the sweep previously discarded
	// after aggregating it into flopsPerBlock.
	rowCosts := make([]int64, int64(nrows)+1)
	parallel.ForChunks(nblocks, opt.Workers(), 1, func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo := Index(int64(bi) * blockRows)
			hi := Index(int64(bi+1) * blockRows)
			if hi > nrows {
				hi = nrows
			}
			var flops, bnd, runs, nonEmpty, maxCost int64
			for i := lo; i < hi; i++ {
				var rowFlops int64
				for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
					k := a.Col[kk]
					rowFlops += int64(b.RowPtr[k+1] - b.RowPtr[k])
				}
				flops += rowFlops
				mn := m.RowPtr[i+1] - m.RowPtr[i]
				cost := rowFlops + int64(mn) + 1
				rowCosts[i] = cost
				if cost > maxCost {
					maxCost = cost
				}
				if opt.Complement {
					if rowFlops > int64(ncols) {
						rowFlops = int64(ncols)
					}
					bnd += rowFlops
				}
				if mn > 0 {
					nonEmpty++
					// O(1) contiguity check; exact only on sorted rows, and
					// only consumed when st.Sorted holds.
					if m.Col[m.RowPtr[i+1]-1]-m.Col[m.RowPtr[i]]+1 == mn {
						runs++
					}
				}
			}
			flopsPerBlock[bi] = flops
			boundPerBlock[bi] = bnd
			runPerBlock[bi] = runs
			nonEmptyPerBlock[bi] = nonEmpty
			maxCostPerBlock[bi] = maxCost
		}
	})
	for _, f := range flopsPerBlock {
		st.Flops += f
	}
	for _, c := range maxCostPerBlock {
		if c > st.MaxRowCost {
			st.MaxRowCost = c
		}
	}
	parallel.ExclusiveScanParallel(rowCosts, opt.Workers())
	costs := core.NewRowCosts(rowCosts, st.MaxRowCost)
	for bi := range runPerBlock {
		if !st.Sorted {
			runPerBlock[bi] = 0 // run check unreliable on unsorted rows
		}
		st.MaskRunRows += runPerBlock[bi]
		st.MaskNonEmptyRows += nonEmptyPerBlock[bi]
	}
	if opt.Complement {
		for _, bnd := range boundPerBlock {
			st.Bound1P += bnd
		}
	} else {
		st.Bound1P = st.NNZM
	}

	phase := core.OnePhase
	if st.Bound1P > phaseMemFactor*(st.NNZM+st.NNZA+st.NNZB+int64(ncols)) {
		phase = core.TwoPhase
	}

	// Decide per analysis block, then coalesce equal neighbours.
	push := pushAlg(st, mdl)
	blocks := make([]Block, 0, nblocks)
	for bi := 0; bi < nblocks; bi++ {
		lo := Index(int64(bi) * blockRows)
		hi := Index(int64(bi+1) * blockRows)
		if hi > nrows {
			hi = nrows
		}
		mn := int64(m.RowPtr[hi] - m.RowPtr[lo])
		an := int64(a.RowPtr[hi] - a.RowPtr[lo])
		alg, reason := decide(st, push, int64(hi-lo), mn, an, flopsPerBlock[bi], mdl)
		blk := Block{Lo: lo, Hi: hi, Alg: alg, MaskNNZ: mn, ANNZ: an, Flops: flopsPerBlock[bi],
			RunRows: runPerBlock[bi], NonEmptyRows: nonEmptyPerBlock[bi], Reason: reason}
		blk.Rep = blockRep(st, blk, mdl)
		blocks = append(blocks, blk)
	}
	blocks = demoteUnpaidInner(st, push, blocks, mdl)
	blocks = coalesce(blocks)
	if len(blocks) > maxPlanBlocks {
		// Too fragmented to pay for per-block dispatch: one global decision.
		alg, reason := decide(st, push, int64(nrows), st.NNZM, st.NNZA, st.Flops, mdl)
		blk := Block{Lo: 0, Hi: nrows, Alg: alg, MaskNNZ: st.NNZM, ANNZ: st.NNZA, Flops: st.Flops,
			RunRows: st.MaskRunRows, NonEmptyRows: st.MaskNonEmptyRows,
			Reason: "collapsed fragmented profile: " + reason}
		blk.Rep = blockRep(st, blk, mdl)
		blocks = []Block{blk}
	}
	if len(blocks) == 0 { // nrows == 0
		blocks = []Block{{Lo: 0, Hi: 0, Alg: push, Rep: core.RepCSR, Reason: "empty row space"}}
	}
	p := &Plan{Stats: st, Phase: phase, Blocks: blocks, Costs: costs}
	mdl.predictNs(p)
	return p
}

// blockRep selects the mask representation for one decided block: the
// caller's pin when given, otherwise the §5 density rules (dense direct
// indexing for contiguous-run masks, the bitmap for dense mask rows probed
// repeatedly, CSR elsewhere), demoted to what the block's algorithm can
// exploit.
func blockRep(st Stats, b Block, mdl *Model) core.MaskRep {
	if st.MaskRepPin != core.RepAuto {
		rep := core.SupportedMaskRep(b.Alg, st.MaskRepPin, st.Complement)
		if !st.Sorted && (rep == core.RepDense || (b.Alg == core.Hash && rep == core.RepBitmap)) {
			// The dense-run contiguity check (and its sorted-row fallback
			// probe) and the Hash bitmap's sort-based gather are only
			// correct on sorted mask rows; core's execution-side guard
			// would demote anyway, so keep the plan truthful.
			rep = core.RepCSR
		}
		return rep
	}
	if !st.Sorted {
		// Core trusts planner-emitted reps without re-verifying, and both
		// the dense-run check and the Hash bitmap's sort-based gather
		// require sorted mask rows — unsorted operands stay on CSR.
		return core.RepCSR
	}
	return core.AutoMaskRepRatio(b.Alg, st.Complement, int64(b.Hi-b.Lo), b.MaskNNZ, b.ANNZ, b.RunRows, b.NonEmptyRows,
		mdl.BitmapProbeRatio, mdl.DenseUnit)
}

// sortedRows is a parallel matrix.Pattern.IsSortedRows: the check is the
// most expensive part of a cold analysis on dense masks, and it runs once
// per cache miss.
func sortedRows(p *matrix.Pattern, threads int) bool {
	var unsorted atomic.Bool
	parallel.ForChunks(int(p.NRows), threads, 2048, func(lo, hi int) {
		if unsorted.Load() {
			return
		}
		for i := lo; i < hi; i++ {
			cols := p.Col[p.RowPtr[i]:p.RowPtr[i+1]]
			for k := 1; k < len(cols); k++ {
				if cols[k-1] >= cols[k] {
					unsorted.Store(true)
					return
				}
			}
		}
	})
	return !unsorted.Load()
}

// pushAlg picks the scatter/gather family for the comparable-density middle:
// MSA (the paper's overall winner) unless the call's total work cannot
// amortize MSA's O(ncols) per-worker dense scratch, where Hash wins (§8.1
// "Hash on larger matrices"; BFS/BC early sweeps). The model's hash-vs-push
// unit ratio shifts the crossover: a host where hash probes are relatively
// expensive needs even less work before MSA's scratch amortizes.
func pushAlg(st Stats, mdl *Model) core.Algorithm {
	if float64((st.NNZM+st.Flops)*hashWorkFraction)*mdl.HashUnit < float64(st.NCols)*mdl.PushUnit {
		return core.Hash
	}
	return core.MSA
}

// ceilLog2 returns ⌈log2(v)⌉ for v ≥ 1, the heap's per-pop merge depth.
func ceilLog2(v int64) int64 {
	return int64(math.Ceil(math.Log2(float64(v))))
}

// decide applies the §8 selection rules to one row range. push is the
// globally-chosen scatter/gather family; rows/maskNNZ/aNNZ/flops are the
// range's local statistics; mdl supplies the per-family unit costs (under
// DefaultModel the estimates equal the historical integer formulas).
func decide(st Stats, push core.Algorithm, rows, maskNNZ, aNNZ, flops int64, mdl *Model) (core.Algorithm, string) {
	if st.Complement {
		// MCA cannot run complemented (§8.4), and pull complement probes
		// Θ(ncols − nnz(m_i)) columns per row, defeating its advantage.
		return push, "complemented mask: scatter/gather push"
	}
	if !st.Sorted {
		return push, "unsorted operand rows: only MSA/Hash are applicable"
	}
	if maskNNZ == 0 || rows == 0 {
		return push, "no mask entries: any kernel emits nothing"
	}
	// Abstract per-entry cost estimates (§4.3, §5): push gathers the whole
	// mask row and touches every flop; heap replaces the gather with a
	// cheap merge but pays a log factor on flops; inner merges A rows with
	// B columns under the mask.
	pu := mdl.PushUnit
	if push == core.Hash {
		pu = mdl.HashUnit
	}
	costPush := mdl.MaskUnit*float64(maskNNZ) + pu*float64(flops)
	logU := ceilLog2(aNNZ/rows + 2)
	costHeap := mdl.MaskUnit*float64(maskNNZ>>heapMaskDiscountShift) + mdl.HeapUnit*float64(logU*flops)
	costInner := mdl.InnerUnit * float64(aNNZ+maskNNZ+int64(float64(maskNNZ)*st.AvgColDegB))
	switch {
	case costInner*mdl.PullMargin < costPush && costInner*mdl.PullMargin < costHeap:
		return core.Inner, fmt.Sprintf("mask ≪ work: pull dot products (est %.0f vs push %.0f)", costInner, costPush)
	case costHeap < costPush:
		if maskNNZ*heapDotMaxMaskFraction < rows*int64(st.NCols) {
			return core.HeapDot, fmt.Sprintf("work ≪ mask: heap merge, full mask inspection (est %.0f vs push %.0f)", costHeap, costPush)
		}
		return core.Heap, fmt.Sprintf("work ≪ mask: heap merge (est %.0f vs push %.0f)", costHeap, costPush)
	default:
		return push, fmt.Sprintf("comparable densities: %s (est push %.0f, heap %.0f, inner %.0f)", push, costPush, costHeap, costInner)
	}
}

// demoteUnpaidInner drops Inner blocks when their combined estimated saving
// cannot repay the one-off B transpose (ToCSC is O(nnz(B) + ncols)).
func demoteUnpaidInner(st Stats, push core.Algorithm, blocks []Block, mdl *Model) []Block {
	var saving float64
	for _, b := range blocks {
		if b.Alg == core.Inner {
			costPush := mdl.MaskUnit*float64(b.MaskNNZ) + mdl.PushUnit*float64(b.Flops)
			costInner := mdl.InnerUnit * float64(b.ANNZ+b.MaskNNZ+int64(float64(b.MaskNNZ)*st.AvgColDegB))
			saving += costPush - costInner
		}
	}
	if saving == 0 || saving >= float64(st.NNZB+int64(st.NCols)) {
		return blocks
	}
	for i := range blocks {
		if blocks[i].Alg == core.Inner {
			blocks[i].Alg = push
			blocks[i].Rep = blockRep(st, blocks[i], mdl) // re-pick for the new family
			blocks[i].Reason = "pull saving does not repay the B transpose: " + blocks[i].Reason
		}
	}
	return blocks
}

// coalesce merges adjacent blocks that chose the same algorithm and mask
// representation (blocks differing only in representation stay separate —
// the representation is per-block execution state).
func coalesce(blocks []Block) []Block {
	out := blocks[:0]
	for _, b := range blocks {
		if n := len(out); n > 0 && out[n-1].Alg == b.Alg && out[n-1].Rep == b.Rep {
			out[n-1].Hi = b.Hi
			out[n-1].MaskNNZ += b.MaskNNZ
			out[n-1].ANNZ += b.ANNZ
			out[n-1].Flops += b.Flops
			out[n-1].RunRows += b.RunRows
			out[n-1].NonEmptyRows += b.NonEmptyRows
			continue
		}
		out = append(out, b)
	}
	return out
}

// Execute runs a plan. stats, if non-nil, receives per-block execution
// results. The plan must have been analyzed for operands with the same row
// count and mask mode (Cache guarantees this; core re-validates the tiling).
func Execute[T any](p *Plan, m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt core.Options, stats *[]core.BlockStat) (*matrix.CSR[T], error) {
	if opt.Complement != p.Stats.Complement {
		return nil, fmt.Errorf("planner: plan analyzed with Complement=%v, executed with Complement=%v",
			p.Stats.Complement, opt.Complement)
	}
	if opt.MaskRep != p.Stats.MaskRepPin {
		return nil, fmt.Errorf("planner: plan analyzed with MaskRep=%v, executed with MaskRep=%v",
			p.Stats.MaskRepPin, opt.MaskRep)
	}
	if opt.Sched != p.Stats.SchedPin {
		return nil, fmt.Errorf("planner: plan analyzed with Sched=%v, executed with Sched=%v",
			p.Stats.SchedPin, opt.Sched)
	}
	if opt.RowCosts == nil {
		// Reuse the analysis sweep's per-row cost profile for scheduling.
		// Cached plans may be paired with operands of slightly different
		// shape (the cache buckets M and A by size); the drivers fall back
		// to equal-row chunking when the profile's length no longer matches,
		// and a stale-but-matching profile only skews span sizes, never
		// results.
		opt.RowCosts = p.Costs
	}
	return core.MaskedSpGEMMBlocked(p.Phase, p.ExecBlocks(), m, a, b, sr, opt, stats)
}
