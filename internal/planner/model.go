package planner

// The parameterized form of the §8 cost model. The selection rules in
// decide()/pushAlg() historically compared integer cost estimates built from
// hand-tuned unit costs (every kernel family's per-entry cost implicitly 1);
// Model makes those unit costs explicit so a calibration pass (calibrate.go)
// can fit them to the host instead of trusting the constants measured once on
// the reference machine. DefaultModel reproduces the hand-tuned behavior
// exactly — an uncalibrated session plans precisely as before.

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// Model is one set of cost-model coefficients. All *Unit fields are relative
// per-entry costs with the MSA scatter as the 1.0 anchor; NsPerUnit converts
// abstract cost units into nanoseconds on the host the model was fitted on,
// which is what makes Plan.PredictedNs comparable against measured block
// times. Models are immutable once built: the cache holds one by pointer and
// concurrent analyses read it without locking.
type Model struct {
	// PushUnit is the MSA scatter/gather cost per flop — the normalization
	// anchor, 1.0 by construction in fitted models.
	PushUnit float64 `json:"push_unit"`
	// HashUnit is the hash-probe cost per flop relative to the MSA scatter.
	HashUnit float64 `json:"hash_unit"`
	// HeapUnit is the heap pop/push cost per flop × log2(merge width),
	// relative to the MSA scatter.
	HeapUnit float64 `json:"heap_unit"`
	// InnerUnit is the pull-side merge cost per touched entry. The probe set
	// does not measure it (Inner's safety margin is PullMargin); it exists so
	// tests can skew the pull decision and stays 1 in fitted models.
	InnerUnit float64 `json:"inner_unit"`
	// MaskUnit is the mask gather/scatter cost per mask entry relative to
	// the per-flop scatter cost.
	MaskUnit float64 `json:"mask_unit"`
	// BitmapProbeRatio scales the bitmap-representation density thresholds:
	// the measured bitmap-vs-CSR probe cost ratio. Above 1 the bitmap is
	// relatively expensive on this host and needs denser masks to pay.
	BitmapProbeRatio float64 `json:"bitmap_probe_ratio"`
	// DenseUnit scales the dense-run representation's minimum row density
	// the same way: the measured dense-direct-index-vs-CSR cost ratio.
	DenseUnit float64 `json:"dense_unit"`
	// PullMargin is the factor Inner must beat the best push estimate by
	// before the planner risks its strided column accesses.
	PullMargin float64 `json:"pull_margin"`
	// NsPerUnit is the measured nanoseconds per abstract cost unit (the MSA
	// scatter's per-flop wall time at one worker).
	NsPerUnit float64 `json:"ns_per_unit"`
	// CostPerWorker is the cost-unit grant one worker is admitted for by the
	// serving arbiter, fitted from the measured parallel-dispatch overhead.
	CostPerWorker int64 `json:"cost_per_worker"`
	// Source records where the coefficients came from: "default",
	// "probed" (fresh calibration run) or "host-cache" (loaded from the
	// per-host file a previous run saved).
	Source string `json:"source"`
	// SaveErr records why persisting this model to the per-host cache file
	// failed ("" on success or when no save was attempted). Saving is
	// best-effort — a failure only costs a re-probe next process — but the
	// reason is surfaced (masked.CalibrationStats.SaveError) instead of
	// swallowed. Not serialized: it describes this process's save attempt.
	SaveErr string `json:"-"`
}

// DefaultModel returns the hand-tuned reference coefficients: every unit
// cost 1, PullMargin 8 and the arbiter's historical 64k cost-per-worker.
// Planning under DefaultModel is bit-identical to the pre-calibration
// planner.
func DefaultModel() *Model {
	return &Model{
		PushUnit:         1,
		HashUnit:         1,
		HeapUnit:         1,
		InnerUnit:        1,
		MaskUnit:         1,
		BitmapProbeRatio: 1,
		DenseUnit:        1,
		PullMargin:       pullMargin,
		NsPerUnit:        1,
		CostPerWorker:    parallel.CostPerWorker,
		Source:           "default",
	}
}

// clampUnit bounds a fitted coefficient to a sane range so one noisy probe
// (a descheduled goroutine, a thermal dip) can never produce a model that
// always — or never — picks one family.
func clampUnit(v, lo, hi float64) float64 {
	if !(v > lo) { // also catches NaN
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sanitized returns a copy of m with every coefficient clamped to its sane
// range, defaulting non-positive/NaN fields. Applied to fitted models and to
// models loaded from the per-host cache file (whose bytes are outside our
// control).
func (m Model) sanitized() *Model {
	d := DefaultModel()
	out := m
	out.PushUnit = clampUnit(m.PushUnit, 0.05, 20)
	out.HashUnit = clampUnit(m.HashUnit, 0.05, 20)
	out.HeapUnit = clampUnit(m.HeapUnit, 0.02, 50)
	out.InnerUnit = clampUnit(m.InnerUnit, 0.05, 20)
	out.MaskUnit = clampUnit(m.MaskUnit, 0.05, 20)
	out.BitmapProbeRatio = clampUnit(m.BitmapProbeRatio, 0.25, 4)
	out.DenseUnit = clampUnit(m.DenseUnit, 0.25, 4)
	out.PullMargin = clampUnit(m.PullMargin, 1, 64)
	out.NsPerUnit = clampUnit(m.NsPerUnit, 0.01, 1000)
	if out.CostPerWorker < minCostPerWorker || out.CostPerWorker > maxCostPerWorker {
		out.CostPerWorker = d.CostPerWorker
	}
	if out.Source == "" {
		out.Source = d.Source
	}
	return &out
}

// Fitted CostPerWorker bounds: no host makes goroutine dispatch cheap enough
// to fan out sub-16k-unit products, and capping at 1M keeps a wildly noisy
// overhead probe from serializing every request.
const (
	minCostPerWorker = 1 << 14
	maxCostPerWorker = 1 << 20
)

// phasePassFactor is the predicted-cost multiplier of two-phase execution:
// the symbolic and numeric passes each walk the full work, and the drivers'
// block timer accumulates both.
const phasePassFactor = 2

// predictBlockUnits estimates one decided block's execution cost in abstract
// model units — the same formulas decide() selects with, evaluated for the
// algorithm the block actually got (including demotions and collapse).
func (m *Model) predictBlockUnits(st Stats, b Block) float64 {
	rows := int64(b.Hi - b.Lo)
	if rows <= 0 {
		return 0
	}
	switch b.Alg {
	case core.Heap, core.HeapDot:
		logU := ceilLog2(b.ANNZ/rows + 2)
		return m.MaskUnit*float64(b.MaskNNZ>>heapMaskDiscountShift) + m.HeapUnit*float64(logU)*float64(b.Flops)
	case core.Inner:
		return m.InnerUnit * (float64(b.ANNZ+b.MaskNNZ) + float64(b.MaskNNZ)*st.AvgColDegB)
	case core.Hash:
		return m.MaskUnit*float64(b.MaskNNZ) + m.HashUnit*float64(b.Flops)
	default: // MSA, MCA
		return m.MaskUnit*float64(b.MaskNNZ) + m.PushUnit*float64(b.Flops)
	}
}

// predictNs stamps PredictedNs on the plan and each block: the model-unit
// cost converted to nanoseconds of serial kernel time (the comparand of the
// summed per-block worker times the drivers measure), doubled for two-phase
// plans whose symbolic and numeric passes are both timed.
func (m *Model) predictNs(p *Plan) {
	pass := float64(1)
	if p.Phase == core.TwoPhase {
		pass = phasePassFactor
	}
	var total float64
	for i := range p.Blocks {
		ns := m.NsPerUnit * pass * m.predictBlockUnits(p.Stats, p.Blocks[i])
		p.Blocks[i].PredictedNs = ns
		total += ns
	}
	p.PredictedNs = total
}
