package planner

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// fillDistinct analyzes n products with distinct B identities (each Clone
// is a fresh backing array) and returns the B operands in insertion order.
func fillDistinct(c *Cache, g *matrix.CSR[float64], n int) []*matrix.CSR[float64] {
	bs := make([]*matrix.CSR[float64], n)
	for i := range bs {
		bs[i] = g.Clone()
		c.Analyze(g.Pattern(), g.Pattern(), bs[i].Pattern(), core.Options{})
	}
	return bs
}

// TestCacheCapacityBound: the cache never grows past its configured entry
// bound, and evictions are counted.
func TestCacheCapacityBound(t *testing.T) {
	const capacity = 64
	c := NewCacheCapacity(capacity)
	g := grgen.ErdosRenyi(64, 2, 30)
	fillDistinct(c, g, capacity+100)
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("cache grew to %d entries, bound is %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("overfilling a bounded cache must evict")
	}
	if st.Misses != capacity+100 {
		t.Fatalf("distinct products: %d misses, want %d", st.Misses, capacity+100)
	}
}

// TestCacheDefaultCapacity: NewCache uses the documented default bound.
func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCache().Stats().Capacity; got != DefaultCacheCapacity {
		t.Fatalf("default capacity %d, want %d", got, DefaultCacheCapacity)
	}
}

// TestCacheLRUOrder: within one shard, a touched (recently hit) entry
// survives eviction pressure while untouched older entries are dropped.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCacheCapacity(2 * cacheShards) // two entries per shard
	g := grgen.ErdosRenyi(64, 2, 31)
	b1 := g.Clone()
	key := func(b *matrix.CSR[float64]) *cacheShard {
		return c.shard(cacheKey{
			b: fp(b.Pattern()), mRows: g.NRows, mCols: g.NCols,
			mBucket: bucket(g.NNZ()), aBucket: bucket(g.NNZ()), aRows: g.NRows,
		})
	}
	c.Analyze(g.Pattern(), g.Pattern(), b1.Pattern(), core.Options{})
	// Insert a second entry into b1's shard, then touch b1 and insert a
	// third: the LRU tail (the untouched second entry) must be evicted,
	// not the freshly-hit first one.
	var b2, b3 *matrix.CSR[float64]
	for {
		b2 = g.Clone()
		if key(b2) == key(b1) {
			break
		}
	}
	c.Analyze(g.Pattern(), g.Pattern(), b2.Pattern(), core.Options{})
	if p := c.Analyze(g.Pattern(), g.Pattern(), b1.Pattern(), core.Options{}); !p.CacheHit {
		t.Fatal("b1 must still be resident")
	}
	for {
		b3 = g.Clone()
		if key(b3) == key(b1) {
			break
		}
	}
	c.Analyze(g.Pattern(), g.Pattern(), b3.Pattern(), core.Options{})
	if p := c.Analyze(g.Pattern(), g.Pattern(), b1.Pattern(), core.Options{}); !p.CacheHit {
		t.Fatal("LRU evicted the recently-used entry instead of the stale one")
	}
	if p := c.Analyze(g.Pattern(), g.Pattern(), b2.Pattern(), core.Options{}); p.CacheHit {
		t.Fatal("the stale entry should have been the eviction victim")
	}
}

// TestCacheStatsMonotonic: hits/misses/evictions never decrease across any
// sequence of operations, including Reset.
func TestCacheStatsMonotonic(t *testing.T) {
	c := NewCacheCapacity(16)
	g := grgen.ErdosRenyi(64, 2, 32)
	prev := c.Stats()
	check := func(step string) {
		st := c.Stats()
		if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Evictions < prev.Evictions {
			t.Fatalf("%s: counters ran backwards: %+v after %+v", step, st, prev)
		}
		prev = st
	}
	fillDistinct(c, g, 40)
	check("fill")
	c.Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	c.Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	check("hit")
	c.Reset()
	check("reset")
	fillDistinct(c, g, 40)
	check("refill")
}

// TestEvictedPlanStillExecutes: eviction unlinks a plan from the cache but
// must never invalidate it — plans are immutable, so a caller that fetched
// a plan before eviction keeps executing it correctly afterwards. This is
// the serving-layer guarantee that a multiply in flight cannot be broken by
// cache pressure from other tenants.
func TestEvictedPlanStillExecutes(t *testing.T) {
	c := NewCacheCapacity(cacheShards)
	g := grgen.RMAT(8, 8, 33)
	mask := matrix.Tril(g).Pattern()
	opt := core.Options{Threads: 2}
	p := c.Analyze(mask, g.Pattern(), g.Pattern(), opt)
	// Evict everything by flooding the cache with distinct products.
	fillDistinct(c, grgen.ErdosRenyi(64, 2, 34), 20*cacheShards)
	if hit, ok := c.Peek(mask, g.Pattern(), g.Pattern(), opt); ok && hit == p {
		t.Skip("flood did not evict the plan under test; shard landed empty")
	}
	sr := semiring.Arithmetic()
	got, err := Execute(p, mask, g, g, sr, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, mask, g, g, sr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
		t.Fatal("evicted plan executed incorrectly")
	}
}

// TestCachePeek: Peek reports residency without analyzing, and without
// moving the hit/miss counters.
func TestCachePeek(t *testing.T) {
	c := NewCache()
	g := grgen.ErdosRenyi(128, 4, 35)
	opt := core.Options{}
	if _, ok := c.Peek(g.Pattern(), g.Pattern(), g.Pattern(), opt); ok {
		t.Fatal("empty cache cannot peek a plan")
	}
	before := c.Stats()
	if before.Hits != 0 || before.Misses != 0 {
		t.Fatalf("peek moved counters: %+v", before)
	}
	c.Analyze(g.Pattern(), g.Pattern(), g.Pattern(), opt)
	p, ok := c.Peek(g.Pattern(), g.Pattern(), g.Pattern(), opt)
	if !ok || p == nil {
		t.Fatal("resident plan must peek")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("peek must not count as hit/miss: %+v", st)
	}
}

// TestCacheConcurrent: concurrent Analyze calls over a mix of resident and
// distinct products race-cleanly, keep the bound, and every returned plan
// executes to the correct product.
func TestCacheConcurrent(t *testing.T) {
	c := NewCacheCapacity(32)
	g := grgen.RMAT(7, 4, 36)
	mask := matrix.Tril(g).Pattern()
	sr := semiring.Arithmetic()
	want, err := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, mask, g, g, sr, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var p *Plan
				if i%3 == 0 {
					// Distinct identity: forces insert + possible eviction.
					b := g.Clone()
					p = c.Analyze(mask, g.Pattern(), b.Pattern(), core.Options{})
					got, err := Execute(p, mask, g, b, sr, core.Options{Threads: 1}, nil)
					if err != nil {
						errs <- err
						return
					}
					if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
						t.Error("concurrent clone product diverged")
						return
					}
					continue
				}
				p = c.Analyze(mask, g.Pattern(), g.Pattern(), core.Options{})
				got, err := Execute(p, mask, g, g, sr, core.Options{Threads: 1}, nil)
				if err != nil {
					errs <- err
					return
				}
				if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
					t.Error("concurrent cached product diverged")
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("concurrent fill broke the bound: %d > %d", st.Entries, st.Capacity)
	}
}
