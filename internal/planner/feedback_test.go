package planner

// Deterministic feedback-loop tests. Every "measurement" here is an injected
// synthetic nanosecond count — never a wall-clock read — so the EWMA, band,
// streak and invalidation assertions are exact and shuffle/race-stable. The
// docscheck wall-clock gate enforces that this file stays that way.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
)

// plannedEntry analyzes one small product through the cache and pins the
// resident plan's PredictedNs to 1000, so a record of actualNs = 1000·r has
// the exact ratio r (dyadic ratios keep the alpha-0.25 EWMA arithmetic exact
// in float64). The fresh-miss Analyze returns the resident *Plan itself, so
// the override is visible to every later cache hit.
func plannedEntry(t *testing.T, c *Cache) (*Plan, func() *Plan) {
	t.Helper()
	g := grgen.ErdosRenyi(64, 2, 1)
	analyze := func() *Plan {
		return c.Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	}
	p := analyze()
	if p.CacheHit {
		t.Fatal("first Analyze reported a cache hit")
	}
	if p.fb == nil {
		t.Fatal("fresh cache miss did not attach feedback state")
	}
	p.PredictedNs = 1000
	return p, analyze
}

func assertState(t *testing.T, got FeedbackState, ewma, baseline float64, execs int64, streak int, invalidated bool) {
	t.Helper()
	want := FeedbackState{EWMA: ewma, Baseline: baseline, Execs: execs, Streak: streak, Invalidated: invalidated}
	if got != want {
		t.Fatalf("feedback state = %+v, want %+v", got, want)
	}
}

// TestFeedbackWarmupBaseline pins the exact EWMA fold and the baseline
// freeze: the first FeedbackWarmup executions keep re-freezing the baseline,
// and the first post-warmup execution measures drift against it without
// moving it.
func TestFeedbackWarmupBaseline(t *testing.T) {
	c := NewCache()
	p, _ := plannedEntry(t, c)

	st, inv := c.Record(p, 1000) // ratio 1: first exec seeds the EWMA directly
	assertState(t, st, 1, 1, 1, 0, false)
	st, _ = c.Record(p, 2000) // ratio 2: 0.25·2 + 0.75·1
	assertState(t, st, 1.25, 1.25, 2, 0, false)
	st, _ = c.Record(p, 1000) // ratio 1: 0.25·1 + 0.75·1.25; last warmup exec
	assertState(t, st, 1.1875, 1.1875, 3, 0, false)
	if inv {
		t.Fatal("warmup execution reported invalidation")
	}

	// Past warmup the baseline is frozen; a 4× spike lands between the
	// re-entry and trigger bands (rel ≈ 1.59), so the zero streak holds.
	st, _ = c.Record(p, 4000) // 0.25·4 + 0.75·1.1875
	assertState(t, st, 1.890625, 1.1875, 4, 0, false)

	if got := c.Stats().Records; got != 4 {
		t.Fatalf("Records = %d, want 4", got)
	}
	if got := c.Stats().Replans; got != 0 {
		t.Fatalf("Replans = %d, want 0", got)
	}
}

// TestFeedbackRecordIgnores enumerates the records the loop must discard:
// nil plans, plans that never entered a cache, non-positive measurements and
// unpriced plans. None may move the Records counter.
func TestFeedbackRecordIgnores(t *testing.T) {
	c := NewCache()
	p, _ := plannedEntry(t, c)

	if st, inv := c.Record(nil, 1000); st != (FeedbackState{}) || inv {
		t.Fatal("nil plan was not ignored")
	}
	g := grgen.ErdosRenyi(32, 2, 2)
	uncached := Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	if st, inv := c.Record(uncached, 1000); st != (FeedbackState{}) || inv {
		t.Fatal("cache-less plan was not ignored")
	}
	if st, inv := c.Record(p, 0); st != (FeedbackState{}) || inv {
		t.Fatal("zero measurement was not ignored")
	}
	if st, inv := c.Record(p, -5); st != (FeedbackState{}) || inv {
		t.Fatal("negative measurement was not ignored")
	}
	unpriced := *p
	unpriced.PredictedNs = 0
	if st, inv := c.Record(&unpriced, 1000); st != (FeedbackState{}) || inv {
		t.Fatal("unpriced plan was not ignored")
	}

	if got := c.Stats().Records; got != 0 {
		t.Fatalf("Records = %d after ignored records, want 0", got)
	}
	if got := p.Feedback(); got != (FeedbackState{}) {
		t.Fatalf("feedback state moved on ignored records: %+v", got)
	}
}

// TestFeedbackHysteresis drives the EWMA out of the trigger band once and
// then decays it with on-prediction executions: while the EWMA sits between
// the re-entry band (1.5×) and the trigger band (3×) the streak must hold at
// 1 — neither advancing toward invalidation nor re-arming — and only reset
// once the EWMA decays inside the re-entry band.
func TestFeedbackHysteresis(t *testing.T) {
	c := NewCache()
	p, _ := plannedEntry(t, c)
	for i := 0; i < FeedbackWarmup; i++ {
		c.Record(p, 1000) // baseline 1
	}

	st, _ := c.Record(p, 10000) // EWMA 3.25 > 3: streak starts
	assertState(t, st, 3.25, 1, 4, 1, false)

	// Exact alpha-0.25 decay from 3.25 under ratio-1 executions.
	decay := []float64{2.6875, 2.265625, 1.94921875, 1.7119140625, 1.533935546875}
	for i, want := range decay {
		st, inv := c.Record(p, 1000)
		if inv {
			t.Fatalf("decay step %d invalidated", i)
		}
		assertState(t, st, want, 1, int64(5+i), 1, false)
	}

	// One more ratio-1 execution crosses 1.5: 0.25 + 0.75·1.533935546875.
	st, _ = c.Record(p, 1000)
	assertState(t, st, 1.40045166015625, 1, 10, 0, false)

	if got := c.Stats().Replans; got != 0 {
		t.Fatalf("Replans = %d, want 0", got)
	}
}

// TestFeedbackSustainedDriftInvalidates runs the full re-plan path: after a
// ratio-1 warmup, sustained 10× mispredictions must advance the streak once
// per execution and invalidate on exactly the FeedbackTrigger-th, dropping
// the cache entry; records after invalidation are ignored and the next
// Analyze re-plans with fresh feedback state.
func TestFeedbackSustainedDriftInvalidates(t *testing.T) {
	c := NewCache()
	p, analyze := plannedEntry(t, c)
	g := grgen.ErdosRenyi(64, 2, 1) // same seed as plannedEntry: same operands
	for i := 0; i < FeedbackWarmup; i++ {
		c.Record(p, 1000) // baseline 1
	}

	// EWMA walk toward 10: 3.25, 4.9375, 6.203125, 7.15234375 — all > 3×.
	ewmas := []float64{3.25, 4.9375, 6.203125, 7.15234375}
	for i, want := range ewmas {
		st, inv := c.Record(p, 10000)
		last := i == FeedbackTrigger-1
		if inv != last {
			t.Fatalf("drift record %d: invalidated = %v, want %v", i+1, inv, last)
		}
		assertState(t, st, want, 1, int64(FeedbackWarmup+1+i), i+1, last)
	}

	st := c.Stats()
	if st.Records != int64(FeedbackWarmup+FeedbackTrigger) {
		t.Fatalf("Records = %d, want %d", st.Records, FeedbackWarmup+FeedbackTrigger)
	}
	if st.Replans != 1 {
		t.Fatalf("Replans = %d, want 1", st.Replans)
	}

	// The entry is gone: Peek misses, and further records against the stale
	// handle are ignored (state frozen, counters unmoved).
	if _, ok := c.Peek(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{}); ok {
		t.Fatal("invalidated entry still resident")
	}
	frozen, inv := c.Record(p, 10000)
	if inv || !frozen.Invalidated || frozen.Execs != int64(FeedbackWarmup+FeedbackTrigger) {
		t.Fatalf("post-invalidation record not ignored: %+v inv=%v", frozen, inv)
	}
	if got := c.Stats().Records; got != st.Records {
		t.Fatalf("Records moved on post-invalidation record: %d", got)
	}

	// Re-analysis misses, installs a fresh entry with zeroed feedback.
	missesBefore := c.Stats().Misses
	fresh := analyze()
	if fresh.CacheHit {
		t.Fatal("Analyze after invalidation reported a cache hit")
	}
	if got := c.Stats().Misses; got != missesBefore+1 {
		t.Fatalf("Misses = %d, want %d", got, missesBefore+1)
	}
	if got := fresh.Feedback(); got != (FeedbackState{}) {
		t.Fatalf("re-planned entry inherited feedback state: %+v", got)
	}
}

// TestFeedbackConcurrentRecord hammers one entry's feedback state from many
// goroutines. The per-entry mutex serializes the folds and every drift
// record carries the same ratio, so the outcome is deterministic regardless
// of interleaving: the streak fires exactly once, on the FeedbackTrigger-th
// post-warmup record, and every later record is ignored. Run under -race.
func TestFeedbackConcurrentRecord(t *testing.T) {
	c := NewCache()
	p, _ := plannedEntry(t, c)
	for i := 0; i < FeedbackWarmup; i++ {
		c.Record(p, 1000) // baseline 1
	}

	const goroutines, perG = 8, 100
	var wg sync.WaitGroup
	invalidations := make([]int, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, inv := c.Record(p, 10000); inv {
					invalidations[gi]++
				}
			}
		}(gi)
	}
	wg.Wait()

	total := 0
	for _, n := range invalidations {
		total += n
	}
	if total != 1 {
		t.Fatalf("invalidation fired %d times, want exactly 1", total)
	}
	st := c.Stats()
	if st.Replans != 1 {
		t.Fatalf("Replans = %d, want 1", st.Replans)
	}
	if st.Records != int64(FeedbackWarmup+FeedbackTrigger) {
		t.Fatalf("Records = %d, want %d (post-invalidation records must be ignored)",
			st.Records, FeedbackWarmup+FeedbackTrigger)
	}
}

// TestFeedbackConcurrentReplanStress mixes records against a drifting entry
// with concurrent re-analyses of the same product — the serving shape where
// one request invalidates while others are installing. Interleavings are
// nondeterministic, so only invariants are asserted: counters stay monotonic
// and re-plans never outrun the trigger arithmetic. Run under -race.
func TestFeedbackConcurrentReplanStress(t *testing.T) {
	c := NewCache()
	p, analyze := plannedEntry(t, c)
	var wg sync.WaitGroup
	prev := c.Stats()
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if gi%2 == 0 {
					q := analyze()
					q.PredictedNs = 1000
					ns := int64(1000)
					if i%3 == 0 {
						ns = 10000
					}
					c.Record(q, ns)
				} else {
					c.Record(p, 10000)
				}
			}
		}(gi)
	}
	wg.Wait()

	st := c.Stats()
	if st.Records < 1 {
		t.Fatalf("Records = %d, want ≥ 1", st.Records)
	}
	if st.Replans < 0 || st.Replans > st.Records/FeedbackTrigger {
		t.Fatalf("Replans = %d implausible for %d records", st.Replans, st.Records)
	}
	if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Records < prev.Records || st.Replans < prev.Replans {
		t.Fatalf("counters ran backwards: %+v", st)
	}
}

// TestExplainExecStampImmutable verifies the WithExec contract the cache
// depends on: execution observations are stamped onto a shallow copy, never
// onto the shared resident plan, so cache hits keep handing out plans with
// nil Exec.
func TestExplainExecStampImmutable(t *testing.T) {
	c := NewCache()
	p, analyze := plannedEntry(t, c)

	stamped := p.WithExec(ExecStats{ActualNs: 2000, BlockNs: []int64{2000}, Feedback: FeedbackState{EWMA: 2, Execs: 1}})
	if stamped == p {
		t.Fatal("WithExec returned the receiver, not a copy")
	}
	if stamped.Exec == nil || stamped.Exec.ActualNs != 2000 {
		t.Fatalf("stamp missing on copy: %+v", stamped.Exec)
	}
	if p.Exec != nil {
		t.Fatal("WithExec mutated the cached plan")
	}
	if stamped.fb != p.fb {
		t.Fatal("shallow copy lost the shared feedback pointer")
	}

	hit := analyze()
	if !hit.CacheHit {
		t.Fatal("second Analyze missed")
	}
	if hit.Exec != nil {
		t.Fatal("cache hit carried a previous caller's Exec stamp")
	}
	if !strings.Contains(stamped.Explain(), "feedback:") {
		t.Fatal("stamped plan's Explain lacks the feedback line")
	}
	if strings.Contains(p.Explain(), "feedback:") {
		t.Fatal("unstamped plan's Explain grew a feedback line")
	}
}

// TestExplainFeedbackGolden pins the exact rendering of the
// predicted-vs-actual feedback lines on a hand-built plan, so the format
// Session.Explain consumers parse cannot drift silently.
func TestExplainFeedbackGolden(t *testing.T) {
	p := &Plan{
		Stats: Stats{NRows: 4, NCols: 4, NNZM: 8, NNZA: 8, NNZB: 8, Flops: 16, Bound1P: 8},
		Phase: core.OnePhase,
		Blocks: []Block{
			{Lo: 0, Hi: 2, Alg: core.MSA, Rep: core.RepCSR, MaskNNZ: 4, Flops: 8, PredictedNs: 1000, Reason: "test block"},
			{Lo: 2, Hi: 4, Alg: core.Hash, Rep: core.RepBitmap, MaskNNZ: 4, Flops: 8, PredictedNs: 500, Reason: "test block"},
		},
		PredictedNs: 1500,
	}
	out := p.WithExec(ExecStats{
		ActualNs: 3000,
		BlockNs:  []int64{2000, 1000},
		Feedback: FeedbackState{EWMA: 1.25, Baseline: 1, Execs: 5},
	}).Explain()

	for _, want := range []string{
		"feedback: predicted 1.5µs, actual 3µs (ratio 2.00), ewma 1.25 over 5 exec(s)\n",
		" [predicted 1µs, actual 2µs]",
		" [predicted 500ns, actual 1µs]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}

	// Unpriced plans render without the ratio clause.
	unpriced := *p
	unpriced.PredictedNs = 0
	out = unpriced.WithExec(ExecStats{ActualNs: 3000}).Explain()
	if !strings.Contains(out, "feedback: predicted 0s, actual 3µs, ewma 0.00 over 0 exec(s)\n") {
		t.Fatalf("unpriced Explain feedback line wrong:\n%s", out)
	}
	if strings.Contains(out, "ratio") {
		t.Fatalf("unpriced Explain grew a ratio clause:\n%s", out)
	}
}
