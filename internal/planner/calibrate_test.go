package planner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHostModelSaveAtomic checks a forced calibration persists its model
// via temp-file-plus-rename: the cache file parses back, no temp files are
// left behind, and SaveErr stays empty.
func TestHostModelSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(CalibrationDirEnv, dir)

	m := HostModel(true)
	if m.SaveErr != "" {
		t.Fatalf("save failed: %s", m.SaveErr)
	}
	if loaded := loadHostModel(); loaded == nil {
		t.Fatal("freshly saved host model does not load back")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after save", e.Name())
		}
		if !strings.HasPrefix(e.Name(), "calibration-") {
			t.Fatalf("unexpected file %s in calibration dir", e.Name())
		}
	}
}

// TestHostModelSaveErrorSurfaced checks a failing save is reported on the
// model instead of swallowed: the cache "directory" is an existing file,
// so MkdirAll fails deterministically.
func TestHostModelSaveErrorSurfaced(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(CalibrationDirEnv, blocker)

	m := HostModel(true)
	if m.SaveErr == "" {
		t.Fatal("save into a non-directory reported no error")
	}
}
