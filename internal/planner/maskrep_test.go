package planner

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// denseRunPattern builds an nrows×ncols mask whose rows are full runs
// [0, ncols) — the dense direct-index shape.
func denseRunPattern(nrows, ncols Index) *matrix.Pattern {
	coo := &matrix.COO[float64]{NRows: nrows, NCols: ncols}
	for i := Index(0); i < nrows; i++ {
		for j := Index(0); j < ncols; j++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 }).Pattern()
}

// TestPlanBlocksCarryReps checks that every analyzed block resolves a
// concrete representation and that Explain reports it.
func TestPlanBlocksCarryReps(t *testing.T) {
	g := grgen.ErdosRenyi(1<<11, 16, 1)
	p := Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	for _, b := range p.Blocks {
		if b.Rep == core.RepAuto {
			t.Fatalf("block [%d,%d) left RepAuto unresolved", b.Lo, b.Hi)
		}
	}
	out := p.Explain()
	if !strings.Contains(out, "mask=") {
		t.Fatalf("Explain does not report the representation per block:\n%s", out)
	}
}

// TestDenseRunMaskSelectsDenseRep: a mask of contiguous runs must plan the
// dense direct-index representation (and record the run statistics).
func TestDenseRunMaskSelectsDenseRep(t *testing.T) {
	const n = 1 << 11
	mask := denseRunPattern(n, 64)
	a := grgen.ErdosRenyi(n, 8, 1)
	// B must be n-col-compatible: reuse a 64-col slice shape via a fresh
	// Erdős–Rényi rectangle built from COO.
	coo := &matrix.COO[float64]{NRows: n, NCols: 64}
	for i := Index(0); i < n; i++ {
		coo.Row = append(coo.Row, i)
		coo.Col = append(coo.Col, i%64)
		coo.Val = append(coo.Val, 1)
	}
	b := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return x + y })
	p := Analyze(mask, a.Pattern(), b.Pattern(), core.Options{})
	if p.Stats.MaskRunRows != int64(n) {
		t.Fatalf("MaskRunRows = %d, want %d", p.Stats.MaskRunRows, n)
	}
	sawDense := false
	for _, blk := range p.Blocks {
		if blk.Rep == core.RepDense {
			sawDense = true
		}
	}
	if !sawDense {
		t.Fatalf("no block selected the dense representation:\n%s", p.Explain())
	}
	// The plan must execute and match the CSR-pinned result exactly.
	sr := semiring.Arithmetic()
	got, err := Execute(p, mask, a, b, sr, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaskedSpGEMM(p.Variant(), mask, a, b, sr, core.Options{MaskRep: core.RepCSR})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
		t.Fatal("dense-rep plan result differs from CSR-pinned run")
	}
}

// TestMaskRepPinFlowsThroughPlan: a pinned representation is recorded in
// the stats, applied to the blocks, and key-separates the cache.
func TestMaskRepPinFlowsThroughPlan(t *testing.T) {
	g := grgen.ErdosRenyi(1<<11, 24, 7)
	m, a, b := g.Pattern(), g.Pattern(), g.Pattern()
	c := NewCache()
	auto := c.Analyze(m, a, b, core.Options{})
	pinned := c.Analyze(m, a, b, core.Options{MaskRep: core.RepBitmap})
	if pinned.CacheHit {
		t.Fatal("pinned analysis must not hit the auto plan's cache entry")
	}
	if pinned.Stats.MaskRepPin != core.RepBitmap {
		t.Fatalf("MaskRepPin = %s, want bitmap", pinned.Stats.MaskRepPin)
	}
	for _, blk := range pinned.Blocks {
		want := core.SupportedMaskRep(blk.Alg, core.RepBitmap, false)
		if blk.Rep != want {
			t.Fatalf("block [%d,%d) alg %s rep %s, want %s", blk.Lo, blk.Hi, blk.Alg, blk.Rep, want)
		}
	}
	if auto.Stats.MaskRepPin != core.RepAuto {
		t.Fatalf("auto plan recorded pin %s", auto.Stats.MaskRepPin)
	}
	// Executing a plan under a different pin is a mode mismatch.
	sr := semiring.Arithmetic()
	if _, err := Execute(auto, m, g, g, sr, core.Options{MaskRep: core.RepBitmap}, nil); err == nil {
		t.Fatal("expected MaskRep mismatch error")
	}
}
