package planner

import (
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Cache memoizes plans across calls. Iterative applications (BFS, BC, MCL,
// k-truss) re-multiply against a mask and frontier that change every sweep
// while the graph operand stays fixed; re-running the O(nnz(A)) analysis per
// sweep would waste exactly the overhead the planner is meant to hide.
//
// The key combines the *identity* of the static B operand (backing-array
// pointer, dimensions, nnz — all O(1)) with the mask dimensions, mask mode,
// and log2 size buckets of the changing M and A operands. Sweeps whose
// frontier stays in the same order of magnitude reuse the plan; when the
// frontier grows past a power of two the bucket changes and the call is
// re-analyzed, which is exactly when the right variant may change too.
type Cache struct {
	mu     sync.Mutex
	plans  map[cacheKey]*Plan
	hits   int64
	misses int64
}

// fingerprint identifies a matrix by storage identity, not content: the
// pointer to its RowPtr backing array plus shape. Rebuilding an identical
// matrix misses the cache, which costs only a re-analysis.
type fingerprint struct {
	ptr          *Index
	nrows, ncols Index
	nnz          int
}

func fp(p *matrix.Pattern) fingerprint {
	f := fingerprint{nrows: p.NRows, ncols: p.NCols, nnz: p.NNZ()}
	if len(p.RowPtr) > 0 {
		f.ptr = &p.RowPtr[0]
	}
	return f
}

type cacheKey struct {
	b            fingerprint
	mRows, mCols Index
	complement   bool
	rep          core.MaskRep // caller-pinned mask representation (RepAuto when unpinned)
	sched        core.Sched   // caller-pinned scheduling policy (SchedAuto when unpinned)
	mBucket      int8         // log2 bucket of nnz(M)
	aBucket      int8         // log2 bucket of nnz(A)
	aRows        Index
}

func bucket(nnz int) int8 { return int8(bits.Len64(uint64(nnz))) }

// NewCache returns an empty plan cache safe for concurrent use. Caches are
// session-scoped: masked.Session and apps.Session each own one, so
// concurrent workloads do not contend on (or evict) each other's plans.
// (A process-wide Shared cache existed before sessions; it was removed
// because a mutable global is exactly the wrong ownership for a serving
// system.)
func NewCache() *Cache { return &Cache{plans: make(map[cacheKey]*Plan)} }

// maxCacheEntries bounds the cache: each entry pins its B operand's RowPtr
// array through the fingerprint pointer, so growth must not be unbounded in
// long-lived processes. Eviction is arbitrary (any map entry); a re-analysis
// costs only one O(nnz(A)) sweep.
const maxCacheEntries = 256

// Analyze returns a cached plan for the operands if one exists, else runs
// the full analysis and stores the result. Cached plans are returned as
// shallow copies with CacheHit set.
//
// A cached plan whose kernels require sorted rows (the key buckets M and A
// only by size, and the sweep may present different matrices) is revalidated
// against the current M and A before reuse; B is part of the key's identity,
// so its sortedness cannot have changed.
func (c *Cache) Analyze(m, a, b *matrix.Pattern, opt core.Options) *Plan {
	key := cacheKey{
		b:          fp(b),
		mRows:      m.NRows,
		mCols:      m.NCols,
		complement: opt.Complement,
		rep:        opt.MaskRep,
		sched:      opt.Sched,
		mBucket:    bucket(m.NNZ()),
		aBucket:    bucket(a.NNZ()),
		aRows:      a.NRows,
	}
	c.mu.Lock()
	p, ok := c.plans[key]
	c.mu.Unlock()
	if ok && (!p.NeedsSortedRows() || (sortedRows(m, opt.Threads) && sortedRows(a, opt.Threads))) {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		hit := *p
		hit.CacheHit = true
		return &hit
	}
	p = Analyze(m, a, b, opt)
	c.mu.Lock()
	c.misses++
	if len(c.plans) >= maxCacheEntries {
		for k := range c.plans {
			delete(c.plans, k)
			break
		}
	}
	c.plans[key] = p
	c.mu.Unlock()
	return p
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops all cached plans and counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = make(map[cacheKey]*Plan)
	c.hits, c.misses = 0, 0
}
