package planner

import (
	"container/list"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Cache memoizes plans across calls. Iterative applications (BFS, BC, MCL,
// k-truss) re-multiply against a mask and frontier that change every sweep
// while the graph operand stays fixed; re-running the O(nnz(A)) analysis per
// sweep would waste exactly the overhead the planner is meant to hide.
//
// The key combines the *identity* of the static B operand (backing-array
// pointer, dimensions, nnz — all O(1)) with the mask dimensions, mask mode,
// and log2 size buckets of the changing M and A operands. Sweeps whose
// frontier stays in the same order of magnitude reuse the plan; when the
// frontier grows past a power of two the bucket changes and the call is
// re-analyzed, which is exactly when the right variant may change too.
//
// The cache is built for concurrent serving: entries are spread across
// lock-striped shards (a key visits exactly one shard, so concurrent
// lookups of different products rarely contend), each shard is bounded and
// evicts in LRU order, and the hit/miss/eviction counters are monotonic
// atomics — Stats taken at two points in time never runs backwards, so
// operators can difference snapshots. Eviction only unlinks a plan from the
// cache; plans are immutable after Analyze, so a caller holding an evicted
// plan can keep Executing it (see TestEvictedPlanStillExecutes).
type Cache struct {
	shards []cacheShard
	// perShard is the entry bound of each shard; the cache-wide capacity is
	// perShard * len(shards).
	perShard int
	// hits, misses and evictions are cache-wide and monotonic for the
	// lifetime of the cache (Reset drops entries, never history); records
	// and replans are the feedback loop's counters (Record observations and
	// feedback-triggered invalidations — see Record).
	hits, misses, evictions, records, replans atomic.Int64
	// model is the cost model misses analyze with; nil means DefaultModel.
	// Atomic so SetModel (session calibration) is safe against concurrent
	// analyses; the *Model it points to is immutable.
	model atomic.Pointer[Model]
}

// cacheShard is one lock stripe: a bounded map with LRU eviction order.
// lru.Front() is the most recently used entry.
type cacheShard struct {
	mu    sync.Mutex
	plans map[cacheKey]*list.Element // value: *cacheEntry
	lru   list.List
}

// cacheEntry is one cached plan with its key (needed to delete from the map
// when the LRU tail is evicted).
type cacheEntry struct {
	key  cacheKey
	plan *Plan
}

// fingerprint identifies a matrix by storage identity, not content: the
// pointer to its RowPtr backing array plus shape. Rebuilding an identical
// matrix misses the cache, which costs only a re-analysis.
type fingerprint struct {
	ptr          *Index
	nrows, ncols Index
	nnz          int
}

func fp(p *matrix.Pattern) fingerprint {
	f := fingerprint{nrows: p.NRows, ncols: p.NCols, nnz: p.NNZ()}
	if len(p.RowPtr) > 0 {
		f.ptr = &p.RowPtr[0]
	}
	return f
}

type cacheKey struct {
	b            fingerprint
	mRows, mCols Index
	complement   bool
	rep          core.MaskRep // caller-pinned mask representation (RepAuto when unpinned)
	sched        core.Sched   // caller-pinned scheduling policy (SchedAuto when unpinned)
	mBucket      int8         // log2 bucket of nnz(M)
	aBucket      int8         // log2 bucket of nnz(A)
	aRows        Index
}

func bucket(nnz int) int8 { return int8(bits.Len64(uint64(nnz))) }

// makeKey derives the cache key of one call — the single definition both
// Analyze and Peek use, so the two can never diverge on what plan identity
// means.
func makeKey(m, a, b *matrix.Pattern, opt core.Options) cacheKey {
	return cacheKey{
		b:          fp(b),
		mRows:      m.NRows,
		mCols:      m.NCols,
		complement: opt.Complement,
		rep:        opt.MaskRep,
		sched:      opt.Sched,
		mBucket:    bucket(m.NNZ()),
		aBucket:    bucket(a.NNZ()),
		aRows:      a.NRows,
	}
}

// Sharding and capacity defaults. 16 stripes keep lock hold times invisible
// up to far more concurrent requests than a session admits; the default
// capacity matches the pre-sharding bound (each entry pins its B operand's
// RowPtr array through the fingerprint pointer, so growth must be bounded
// in long-lived serving processes).
const (
	cacheShards     = 16
	defaultCacheCap = 256
)

// NewCache returns an empty plan cache with the default capacity
// (DefaultCacheCapacity entries), safe for concurrent use. Caches are
// session-scoped: masked.Session and apps.Session each own one, so
// concurrent workloads do not contend on (or evict) each other's plans.
// (A process-wide Shared cache existed before sessions; it was removed
// because a mutable global is exactly the wrong ownership for a serving
// system.)
func NewCache() *Cache { return NewCacheCapacity(0) }

// DefaultCacheCapacity is the entry bound NewCache uses.
const DefaultCacheCapacity = defaultCacheCap

// NewCacheCapacity returns an empty plan cache bounded to roughly the given
// number of entries (rounded up to a multiple of the shard count; <= 0
// means DefaultCacheCapacity). The bound is enforced per shard — capacity/
// shards entries each, LRU-evicted — so one hot product family cannot push
// every other tenant's plans out in one sweep.
func NewCacheCapacity(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]cacheShard, cacheShards), perShard: per}
	for i := range c.shards {
		c.shards[i].plans = make(map[cacheKey]*list.Element)
	}
	return c
}

// shard maps a key to its lock stripe by mixing the value fields that vary
// across workloads (shape, nnz and the size buckets — the fingerprint
// pointer participates only in key equality, so the hash needs no unsafe
// pointer arithmetic; distinct operands almost always differ in shape or
// nnz anyway, and a stripe collision only shares a mutex, never an entry).
func (c *Cache) shard(k cacheKey) *cacheShard {
	h := uint64(k.b.nnz)
	h ^= uint64(k.b.nrows)<<32 | uint64(uint32(k.b.ncols))
	h ^= uint64(k.mRows) * 0x9e3779b97f4a7c15
	h ^= uint64(k.aRows) << 17
	h ^= uint64(k.mBucket)<<8 | uint64(k.aBucket)
	if k.complement {
		h ^= 0xabcd
	}
	h ^= uint64(k.rep)<<4 | uint64(k.sched)<<2
	// Fibonacci fold so low-entropy inputs still spread across stripes.
	h *= 0x9e3779b97f4a7c15
	return &c.shards[h>>(64-4)] // top 4 bits: 16 shards
}

// CacheStats is a point-in-time snapshot of a plan cache's counters.
// Hits, Misses and Evictions are monotonic over the cache's lifetime (Reset
// drops entries, not history), so two snapshots can be differenced to rate
// a time window. Entries is the current resident plan count.
type CacheStats struct {
	// Hits counts Analyze calls answered from the cache.
	Hits int64
	// Misses counts Analyze calls that ran the full analysis.
	Misses int64
	// Evictions counts plans dropped to keep a shard under its bound.
	Evictions int64
	// Records counts feedback observations folded into cached entries
	// (Cache.Record calls that were not ignored).
	Records int64
	// Replans counts entries invalidated by the prediction-error feedback
	// loop (sustained drift; the next Analyze of the product re-plans).
	Replans int64
	// Entries is the resident plan count at snapshot time.
	Entries int
	// Capacity is the cache-wide entry bound (perShard × Shards).
	Capacity int
	// Shards is the number of lock stripes.
	Shards int
}

// Analyze returns a cached plan for the operands if one exists, else runs
// the full analysis and stores the result. Cached plans are returned as
// shallow copies with CacheHit set.
//
// A cached plan whose kernels require sorted rows (the key buckets M and A
// only by size, and the sweep may present different matrices) is revalidated
// against the current M and A before reuse; B is part of the key's identity,
// so its sortedness cannot have changed.
func (c *Cache) Analyze(m, a, b *matrix.Pattern, opt core.Options) *Plan {
	key := makeKey(m, a, b, opt)
	sh := c.shard(key)
	sh.mu.Lock()
	var p *Plan
	if el, ok := sh.plans[key]; ok {
		p = el.Value.(*cacheEntry).plan
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if p != nil && (!p.NeedsSortedRows() || (sortedRows(m, opt.Workers()) && sortedRows(a, opt.Workers()))) {
		c.hits.Add(1)
		hit := *p
		hit.CacheHit = true
		return &hit
	}
	p = AnalyzeModel(m, a, b, opt, c.Model())
	c.misses.Add(1)
	sh.mu.Lock()
	if el, ok := sh.plans[key]; ok {
		// Another request analyzed the same product while we did: the plans
		// are equivalent, so install ours in the resident entry (no pointer
		// identity is promised between Analyze results) and refresh its
		// recency. The entry's feedback state carries over — the plans
		// describe the same product, so its prediction history stays valid.
		p.fb = el.Value.(*cacheEntry).plan.fb
		el.Value.(*cacheEntry).plan = p
		sh.lru.MoveToFront(el)
	} else {
		if sh.lru.Len() >= c.perShard {
			tail := sh.lru.Back()
			sh.lru.Remove(tail)
			delete(sh.plans, tail.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
		p.fb = &feedback{key: key}
		sh.plans[key] = sh.lru.PushFront(&cacheEntry{key: key, plan: p})
	}
	sh.mu.Unlock()
	return p
}

// SetModel installs the cost model subsequent misses analyze with (nil
// resets to DefaultModel). Resident plans are not re-analyzed — their
// entries age out by LRU, bucket change or feedback invalidation — so a
// session calibrates once, before its first products, and serving sessions
// can still swap models live without a stop-the-world.
func (c *Cache) SetModel(m *Model) { c.model.Store(m) }

// Model returns the cost model cache misses analyze with (never nil).
func (c *Cache) Model() *Model {
	if m := c.model.Load(); m != nil {
		return m
	}
	return DefaultModel()
}

// Peek returns the cached plan for the operands without analyzing on a miss
// and without touching the hit/miss counters or the LRU order. The serving
// layer uses it to price a request (Plan.Stats.Flops feeds the worker-share
// arbitration) before deciding how many workers the real Analyze+Execute
// runs with.
func (c *Cache) Peek(m, a, b *matrix.Pattern, opt core.Options) (*Plan, bool) {
	key := makeKey(m, a, b, opt)
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.plans[key]; ok {
		return el.Value.(*cacheEntry).plan, true
	}
	return nil, false
}

// Stats returns a snapshot of the cache counters. Hits, Misses and
// Evictions never decrease over the cache's lifetime.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Records:   c.records.Load(),
		Replans:   c.replans.Load(),
		Capacity:  c.perShard * len(c.shards),
		Shards:    len(c.shards),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.plans)
		sh.mu.Unlock()
	}
	return st
}

// Reset drops all cached plans. The hit/miss/eviction counters are *not*
// reset: they are monotonic for the cache's lifetime so that stats
// snapshots can always be differenced (a serving dashboard must never see a
// counter run backwards).
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.plans = make(map[cacheKey]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}
